//===- verify/ArtifactVerifier.h - DP invariant cross-checker ---*- C++ -*-===//
///
/// \file
/// An independent verifier for the DeRemer–Pennello artifact chain: given
/// the LR(0) automaton, the grammar analysis and the computed look-ahead
/// artifacts (relations, Read/Follow/LA set families, parse table), it
/// re-derives every invariant the construction is supposed to satisfy and
/// reports violations as structured data instead of trusting the builder.
/// The checks, mapped to the paper's equations (the catalogue lives in
/// docs/STATIC_ANALYSIS.md):
///
///   set-shapes    families sized to the transition/reduction/terminal
///                 universes; relation edges target valid rows
///   nt-transitions  the dense index matches the automaton's nonterminal
///                 transitions exactly (both directions)
///   direct-read   DR(p,A) = { t : p --A--> r --t--> }, plus the $end
///                 seed on the start transition
///   reads         (p,A) reads (r,C) iff p --A--> r --C--> and C nullable
///   includes      (p,A) includes (p',B) iff B -> beta A gamma,
///                 gamma =>* eps, p' --beta--> p
///   lookback      (q, A->w) lookback (p,A) iff p --w--> q
///   read-subset   DR subset-of Read; Read(y) subset-of Read(x) for
///                 x reads y (Read is a solution of its equation)
///   follow-subset Read subset-of Follow; Follow(y) subset-of Follow(x)
///                 for x includes y
///   follow-bound  Follow(p,A) subset-of FOLLOW(A), LA(q, A->w)
///                 subset-of FOLLOW(A) (the SLR-containment theorem)
///   la-union      LA(q, A->w) = union of Follow over lookback, with the
///                 accept reduction's explicit {$end}
///   read-fixpoint / follow-fixpoint
///                 the digraph solution equals an independent naive
///                 iterate-to-fixpoint recomputation (least-fixed-point
///                 minimality; skipped above MaxFixpointNodes)
///   table-actions every ACTION cell is justified: shifts mirror
///                 automaton transitions, reduces lie inside LA,
///                 accept is (acceptState, $end), and any cell that
///                 deviates from its look-ahead is explained by a
///                 recorded conflict resolution
///
/// The verifier never throws on corrupt input: out-of-range edges and
/// malformed shapes are themselves reported, and checks that would have
/// to dereference them are skipped. Wired behind BuildOptions::Verify
/// (pipeline), BuildService::Options::VerifyBuilds / the manifest
/// `verify` token (service), and examples/lalr_verify (CLI).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_VERIFY_ARTIFACTVERIFIER_H
#define LALR_VERIFY_ARTIFACTVERIFIER_H

#include "grammar/Analysis.h"
#include "lalr/LalrLookaheads.h"
#include "lr/ParseTable.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lalr {

/// One invariant violation: which check failed and a human-readable
/// description naming the offending transition/slot/cell.
struct VerifyIssue {
  std::string Check;  ///< check name from the catalogue above
  std::string Detail; ///< e.g. "DR mismatch at nt-transition 12 (3, expr)"
};

/// What a verification run found. Issues retains the first
/// VerifyOptions::MaxIssues violations verbatim; TotalIssues and
/// IssueCounts keep exact totals beyond the cap.
struct VerifyReport {
  /// Individual invariant comparisons performed (deterministic for a
  /// given artifact set — exported as the verify_checks counter).
  uint64_t ChecksRun = 0;
  /// Violations found (>= Issues.size() when capped).
  uint64_t TotalIssues = 0;
  /// The first MaxIssues violations, in check order.
  std::vector<VerifyIssue> Issues;
  /// Exact violation count per check name, first-seen order.
  std::vector<std::pair<std::string, uint64_t>> IssueCounts;
  /// True when the naive fixed-point recomputation was skipped because
  /// the transition count exceeded VerifyOptions::MaxFixpointNodes.
  bool FixpointSkipped = false;

  bool ok() const { return TotalIssues == 0; }

  /// One line: "ok (N checks)" or "M issues in N checks (first: ...)".
  std::string summary() const;

  /// Structured JSON (checks_run, total_issues, issue_counts, issues,
  /// fixpoint_skipped) for the CLI's --json mode and logs.
  std::string toJson() const;
};

/// Tuning knobs; the defaults suit both the corpus sweep and the
/// in-pipeline gate.
struct VerifyOptions {
  /// Cap on verbatim Issues entries (totals stay exact).
  size_t MaxIssues = 32;
  /// Node bound above which the naive fixed-point recomputation is
  /// skipped (it is O(n * |R|) set operations — the exact cost the
  /// digraph algorithm exists to avoid).
  size_t MaxFixpointNodes = 20000;
  /// Master switch for the fixed-point minimality recheck.
  bool CheckFixpoint = true;
};

/// Borrowed, read-only views of the artifacts under verification. Tests
/// corrupt *copies* of relations/sets/tables and point a view at them;
/// production callers use the LalrLookaheads overload below.
struct LalrArtifactsView {
  const Lr0Automaton *A = nullptr;
  const GrammarAnalysis *An = nullptr;
  const NtTransitionIndex *NtIdx = nullptr;
  const ReductionIndex *RedIdx = nullptr;
  const LalrRelations *Rel = nullptr;
  const SetSlab *ReadSets = nullptr;
  const SetSlab *FollowSets = nullptr;
  const SetSlab *LaSets = nullptr;

  /// View over a computed LalrLookaheads (all pointers borrow; \p LA must
  /// outlive the view).
  static LalrArtifactsView of(const Lr0Automaton &A,
                              const GrammarAnalysis &An,
                              const LalrLookaheads &LA);
};

/// Verifies the relation/set chain (everything except table-actions).
VerifyReport verifyLalrArtifacts(const LalrArtifactsView &V,
                                 const VerifyOptions &Opts = {});

/// Appends the table-actions check for \p Table (an LR(0)-state-space
/// LALR table) to \p Report.
void verifyTableActions(const LalrArtifactsView &V, const ParseTable &Table,
                        VerifyReport &Report, const VerifyOptions &Opts = {});

/// One-stop verification of a finished LALR(1) build: the artifact chain
/// plus (when \p Table is non-null) the table-actions check.
VerifyReport verifyLalrBuild(const Lr0Automaton &A, const GrammarAnalysis &An,
                             const LalrLookaheads &LA,
                             const ParseTable *Table = nullptr,
                             const VerifyOptions &Opts = {});

} // namespace lalr

#endif // LALR_VERIFY_ARTIFACTVERIFIER_H
