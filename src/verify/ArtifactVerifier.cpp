//===- verify/ArtifactVerifier.cpp - DP invariant cross-checker -----------===//

#include "verify/ArtifactVerifier.h"

#include "lalr/DigraphSolver.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <string_view>

using namespace lalr;

//===----------------------------------------------------------------------===//
// VerifyReport rendering
//===----------------------------------------------------------------------===//

std::string VerifyReport::summary() const {
  if (ok())
    return "ok (" + std::to_string(ChecksRun) + " checks)";
  std::string S = std::to_string(TotalIssues) + " issue" +
                  (TotalIssues == 1 ? "" : "s") + " in " +
                  std::to_string(ChecksRun) + " checks";
  if (!Issues.empty())
    S += " (first: [" + Issues.front().Check + "] " + Issues.front().Detail +
         ")";
  return S;
}

namespace {

void appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

} // namespace

std::string VerifyReport::toJson() const {
  std::string J = "{\"checks_run\": " + std::to_string(ChecksRun) +
                  ", \"total_issues\": " + std::to_string(TotalIssues) +
                  ", \"fixpoint_skipped\": " +
                  (FixpointSkipped ? "true" : "false") +
                  ", \"issue_counts\": {";
  for (size_t I = 0; I < IssueCounts.size(); ++I) {
    if (I)
      J += ", ";
    appendJsonString(J, IssueCounts[I].first);
    J += ": " + std::to_string(IssueCounts[I].second);
  }
  J += "}, \"issues\": [";
  for (size_t I = 0; I < Issues.size(); ++I) {
    if (I)
      J += ", ";
    J += "{\"check\": ";
    appendJsonString(J, Issues[I].Check);
    J += ", \"detail\": ";
    appendJsonString(J, Issues[I].Detail);
    J += "}";
  }
  J += "]}";
  return J;
}

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

namespace {

/// Accumulates check results into a VerifyReport, capping verbatim issues
/// while keeping exact per-check totals.
class Checker {
public:
  Checker(VerifyReport &R, const VerifyOptions &Opts) : R(R), Opts(Opts) {}

  /// Records one comparison; \p Detail is only materialized on failure.
  template <typename DetailFn>
  bool check(bool Ok, const char *Check, DetailFn &&Detail) {
    ++R.ChecksRun;
    if (Ok)
      return true;
    addIssue(Check, Detail());
    return false;
  }

  void addIssue(const char *Check, std::string Detail) {
    ++R.TotalIssues;
    auto It = std::find_if(R.IssueCounts.begin(), R.IssueCounts.end(),
                           [&](const auto &E) { return E.first == Check; });
    if (It == R.IssueCounts.end())
      R.IssueCounts.emplace_back(Check, 1);
    else
      ++It->second;
    if (R.Issues.size() < Opts.MaxIssues)
      R.Issues.push_back({Check, std::move(Detail)});
  }

private:
  VerifyReport &R;
  const VerifyOptions &Opts;
};

/// "nt-transition 12 (state 3 --expr-->)" — the standard way issues name
/// a transition.
std::string describeNt(const LalrArtifactsView &V, uint32_t X) {
  const Grammar &G = V.A->grammar();
  const NtTransition &T = (*V.NtIdx)[X];
  std::string S = "nt-transition " + std::to_string(X);
  if (T.From < V.A->numStates() && T.Nt < G.numSymbols())
    S += " (state " + std::to_string(T.From) + " --" + G.name(T.Nt) + "-->)";
  return S;
}

std::string describeSlot(const LalrArtifactsView &V, uint32_t Slot) {
  StateId Q = V.RedIdx->stateOf(Slot);
  ProductionId P = V.RedIdx->prodOf(Slot);
  return "reduction slot " + std::to_string(Slot) + " (state " +
         std::to_string(Q) + ", production " + std::to_string(P) + ")";
}

bool rowInRange(std::span<const uint32_t> Row, size_t Bound) {
  return std::all_of(Row.begin(), Row.end(),
                     [&](uint32_t E) { return E < Bound; });
}

bool rowEquals(std::span<const uint32_t> Row,
               const std::vector<uint32_t> &Exp) {
  return std::equal(Row.begin(), Row.end(), Exp.begin(), Exp.end());
}

bool isReducibleIn(const Lr0Automaton &A, StateId S, ProductionId P) {
  const std::vector<ProductionId> &Reds = A.state(S).Reductions;
  return std::binary_search(Reds.begin(), Reds.end(), P);
}

void sortUnique(std::vector<uint32_t> &Edges) {
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
}

/// The reduction slot of production 0 in the accept state, or UINT32_MAX
/// when the automaton lacks it (itself reported by the caller).
uint32_t acceptSlot(const LalrArtifactsView &V) {
  StateId Acc = V.A->acceptState();
  if (Acc >= V.A->numStates() || !isReducibleIn(*V.A, Acc, 0))
    return UINT32_MAX;
  return V.RedIdx->slot(Acc, 0);
}

//===----------------------------------------------------------------------===//
// Individual checks
//===----------------------------------------------------------------------===//

/// Sizes, universes and edge ranges. Everything downstream indexes
/// through these, so a failed shape check ends the run (the report says
/// why). Returns true when the shapes are usable.
bool checkShapes(const LalrArtifactsView &V, Checker &C, bool &EdgesOk) {
  const Grammar &G = V.A->grammar();
  const size_t NumT = G.numTerminals();
  const size_t NumX = V.NtIdx->size();
  const size_t NumSlots = V.RedIdx->size();

  // CSR shape invariants first: row() indexes Edges through Offsets, so a
  // malformed offset array makes every row access unsafe, not just wrong.
  auto formed = [&](const CsrRelation &R, const char *What) {
    return C.check(R.wellFormed(), "set-shapes", [&] {
      return std::string(What) +
             " CSR offsets are malformed (must rise from 0 to the edge count)";
    });
  };
  bool Ok = true;
  Ok &= formed(V.Rel->Reads, "Reads");
  Ok &= formed(V.Rel->Includes, "Includes");
  Ok &= formed(V.Rel->Lookback, "Lookback");
  if (!Ok)
    return false;

  auto sized = [&](size_t Actual, size_t Expected, const char *What) {
    return C.check(Actual == Expected, "set-shapes", [&] {
      return std::string(What) + " has " + std::to_string(Actual) +
             " rows, expected " + std::to_string(Expected);
    });
  };
  Ok &= sized(V.Rel->DirectRead.size(), NumX, "DirectRead");
  Ok &= sized(V.Rel->Reads.rows(), NumX, "Reads");
  Ok &= sized(V.Rel->Includes.rows(), NumX, "Includes");
  Ok &= sized(V.Rel->Lookback.rows(), NumSlots, "Lookback");
  Ok &= sized(V.ReadSets->size(), NumX, "Read sets");
  Ok &= sized(V.FollowSets->size(), NumX, "Follow sets");
  Ok &= sized(V.LaSets->size(), NumSlots, "LA sets");

  auto universes = [&](const SetSlab &F, const char *What) {
    return C.check(F.size() == 0 || F.universe() == NumT, "set-shapes", [&] {
      return std::string(What) + " universe is not the terminal count";
    });
  };
  Ok &= universes(V.Rel->DirectRead, "DirectRead");
  Ok &= universes(*V.ReadSets, "Read sets");
  Ok &= universes(*V.FollowSets, "Follow sets");
  Ok &= universes(*V.LaSets, "LA sets");
  if (!Ok)
    return false;

  // Edge targets must be valid rows; a bad edge is reported here and the
  // checks that would dereference it are skipped (EdgesOk).
  EdgesOk = true;
  for (size_t X = 0; X < NumX; ++X) {
    EdgesOk &=
        C.check(rowInRange(V.Rel->Reads.row(X), NumX), "set-shapes", [&] {
          return "reads row of " + describeNt(V, static_cast<uint32_t>(X)) +
                 " targets an out-of-range transition";
        });
    EdgesOk &=
        C.check(rowInRange(V.Rel->Includes.row(X), NumX), "set-shapes", [&] {
          return "includes row of " + describeNt(V, static_cast<uint32_t>(X)) +
                 " targets an out-of-range transition";
        });
  }
  for (size_t S = 0; S < NumSlots; ++S)
    EdgesOk &=
        C.check(rowInRange(V.Rel->Lookback.row(S), NumX), "set-shapes", [&] {
          return "lookback row of " + describeSlot(V, static_cast<uint32_t>(S)) +
                 " targets an out-of-range transition";
        });
  return true;
}

/// The dense nonterminal-transition index against the automaton, both
/// directions. Fills \p XOk so later recompute checks skip rows whose
/// index entry is itself broken.
void checkNtTransitions(const LalrArtifactsView &V, Checker &C,
                        std::vector<bool> &XOk) {
  const Lr0Automaton &A = *V.A;
  const Grammar &G = A.grammar();
  const size_t NumX = V.NtIdx->size();
  XOk.assign(NumX, true);

  size_t InAutomaton = 0;
  for (StateId S = 0; S < A.numStates(); ++S)
    for (auto [Sym, Target] : A.state(S).Transitions) {
      (void)Target;
      if (G.isNonterminal(Sym))
        ++InAutomaton;
    }
  C.check(InAutomaton == NumX, "nt-transitions", [&] {
    return "index has " + std::to_string(NumX) +
           " transitions, automaton has " + std::to_string(InAutomaton);
  });

  for (uint32_t X = 0; X < NumX; ++X) {
    const NtTransition &T = (*V.NtIdx)[X];
    bool Valid =
        C.check(T.From < A.numStates() && T.To < A.numStates() &&
                    T.Nt < G.numSymbols() && G.isNonterminal(T.Nt),
                "nt-transitions",
                [&] {
                  return "nt-transition " + std::to_string(X) +
                         " has out-of-range fields";
                }) &&
        C.check(A.gotoState(T.From, T.Nt) == T.To, "nt-transitions",
                [&] {
                  return describeNt(V, X) + " disagrees with GOTO(" +
                         std::to_string(T.From) + ", " + G.name(T.Nt) + ")";
                }) &&
        C.check(V.NtIdx->indexOf(T.From, T.Nt) == X, "nt-transitions", [&] {
          return describeNt(V, X) + " is not its own indexOf image";
        });
    XOk[X] = Valid;
  }
}

/// DR and reads rows, re-derived from the transitions one step past each
/// (p, A) — equations (1) and "reads" of the paper, including the $end
/// seed on the start transition.
void checkDirectReadAndReads(const LalrArtifactsView &V, Checker &C,
                             const std::vector<bool> &XOk) {
  const Lr0Automaton &A = *V.A;
  const Grammar &G = A.grammar();
  const uint32_t StartX = V.NtIdx->indexOf(A.startState(), G.startSymbol());

  for (uint32_t X = 0; X < V.NtIdx->size(); ++X) {
    if (!XOk[X])
      continue;
    const NtTransition &T = (*V.NtIdx)[X];
    BitSet ExpDr(G.numTerminals());
    std::vector<uint32_t> ExpReads;
    for (auto [Sym, Target] : A.state(T.To).Transitions) {
      (void)Target;
      if (G.isTerminal(Sym)) {
        ExpDr.set(Sym);
      } else if (V.An->isNullable(Sym)) {
        uint32_t Y = V.NtIdx->indexOf(T.To, Sym);
        if (Y != NtTransitionIndex::Missing)
          ExpReads.push_back(Y);
        else
          C.addIssue("reads", "transition (state " + std::to_string(T.To) +
                                  ", " + G.name(Sym) + ") is not indexed");
      }
    }
    if (X == StartX)
      ExpDr.set(G.eofSymbol());

    C.check(V.Rel->DirectRead[X] == SetView(ExpDr), "direct-read", [&] {
      return "DR mismatch at " + describeNt(V, X) + ": stored " +
             std::to_string(V.Rel->DirectRead[X].count()) +
             " terminals, recomputed " + std::to_string(ExpDr.count());
    });
    C.check(rowEquals(V.Rel->Reads.row(X), ExpReads), "reads", [&] {
      return "reads row mismatch at " + describeNt(V, X) + ": stored " +
             std::to_string(V.Rel->Reads.rowSize(X)) + " edges, recomputed " +
             std::to_string(ExpReads.size());
    });
  }
}

/// includes and lookback, re-derived by replaying every production body
/// through the automaton (the paper's definitions verbatim). Rows are
/// compared in the builder's canonical sorted-unique form.
void checkIncludesAndLookback(const LalrArtifactsView &V, Checker &C,
                              const std::vector<bool> &XOk) {
  const Lr0Automaton &A = *V.A;
  const Grammar &G = A.grammar();
  const size_t NumX = V.NtIdx->size();

  std::vector<std::vector<uint32_t>> ExpInc(NumX);
  std::vector<std::vector<uint32_t>> ExpLb(V.RedIdx->size());

  for (uint32_t X = 0; X < NumX; ++X) {
    if (!XOk[X])
      continue;
    const NtTransition &T = (*V.NtIdx)[X];
    for (ProductionId PId : G.productionsOf(T.Nt)) {
      const Production &P = G.production(PId);
      StateId Cur = T.From;
      bool Walked = true;
      for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
        SymbolId S = P.Rhs[I];
        if (G.isNonterminal(S) &&
            V.An->isNullableSeq(std::span(P.Rhs).subspan(I + 1))) {
          uint32_t Inner = V.NtIdx->indexOf(Cur, S);
          if (Inner != NtTransitionIndex::Missing)
            ExpInc[Inner].push_back(X);
          else
            C.addIssue("includes",
                       "production " + std::to_string(PId) + " prefix from " +
                           describeNt(V, X) + " reaches state " +
                           std::to_string(Cur) + " with no " + G.name(S) +
                           " transition");
        }
        Cur = A.gotoState(Cur, S);
        if (Cur == InvalidState) {
          C.addIssue("includes", "production " + std::to_string(PId) +
                                     " body does not walk from state " +
                                     std::to_string(T.From));
          Walked = false;
          break;
        }
      }
      if (!Walked)
        continue;
      if (isReducibleIn(A, Cur, PId))
        ExpLb[V.RedIdx->slot(Cur, PId)].push_back(X);
      else
        C.addIssue("lookback", "production " + std::to_string(PId) +
                                   " is not reducible in state " +
                                   std::to_string(Cur) +
                                   ", the end of its body walk");
    }
  }

  for (auto &Row : ExpInc)
    sortUnique(Row);
  for (auto &Row : ExpLb)
    sortUnique(Row);

  for (uint32_t X = 0; X < NumX; ++X) {
    if (!XOk[X])
      continue;
    C.check(rowEquals(V.Rel->Includes.row(X), ExpInc[X]), "includes", [&] {
      return "includes row mismatch at " + describeNt(V, X) + ": stored " +
             std::to_string(V.Rel->Includes.rowSize(X)) +
             " edges, recomputed " + std::to_string(ExpInc[X].size());
    });
  }
  for (uint32_t S = 0; S < V.RedIdx->size(); ++S) {
    C.check(rowEquals(V.Rel->Lookback.row(S), ExpLb[S]), "lookback", [&] {
      return "lookback row mismatch at " + describeSlot(V, S) + ": stored " +
             std::to_string(V.Rel->Lookback.rowSize(S)) +
             " edges, recomputed " + std::to_string(ExpLb[S].size());
    });
  }
}

/// The solution-of-the-equation property: DR subset Read and
/// Read(y) subset Read(x) for x reads y; then the same shape one level
/// up for Follow over includes.
void checkSubsetChains(const LalrArtifactsView &V, Checker &C) {
  for (uint32_t X = 0; X < V.NtIdx->size(); ++X) {
    C.check(V.Rel->DirectRead[X].subsetOf((*V.ReadSets)[X]), "read-subset",
            [&] { return "DR is not within Read at " + describeNt(V, X); });
    for (uint32_t Y : V.Rel->Reads.row(X))
      C.check((*V.ReadSets)[Y].subsetOf((*V.ReadSets)[X]), "read-subset",
              [&] {
                return "Read(" + describeNt(V, Y) +
                       ") is not within Read(" + describeNt(V, X) +
                       ") despite a reads edge";
              });
    C.check((*V.ReadSets)[X].subsetOf((*V.FollowSets)[X]), "follow-subset",
            [&] { return "Read is not within Follow at " + describeNt(V, X); });
    for (uint32_t Y : V.Rel->Includes.row(X))
      C.check((*V.FollowSets)[Y].subsetOf((*V.FollowSets)[X]),
              "follow-subset", [&] {
                return "Follow(" + describeNt(V, Y) +
                       ") is not within Follow(" + describeNt(V, X) +
                       ") despite an includes edge";
              });
  }
}

/// The SLR-containment theorem: every DP Follow set refines the
/// grammar-level FOLLOW of its nonterminal, and every LA set refines the
/// FOLLOW of the production it reduces to.
void checkFollowBound(const LalrArtifactsView &V, Checker &C,
                      const std::vector<bool> &XOk) {
  const Grammar &G = V.A->grammar();
  for (uint32_t X = 0; X < V.NtIdx->size(); ++X) {
    if (!XOk[X])
      continue;
    const NtTransition &T = (*V.NtIdx)[X];
    C.check((*V.FollowSets)[X].subsetOf(V.An->follow(T.Nt)), "follow-bound",
            [&] {
              return "Follow exceeds FOLLOW(" + G.name(T.Nt) + ") at " +
                     describeNt(V, X);
            });
  }
  for (uint32_t S = 0; S < V.RedIdx->size(); ++S) {
    ProductionId P = V.RedIdx->prodOf(S);
    if (P >= G.numProductions())
      continue; // reported by the slot checks
    SymbolId Lhs = G.production(P).Lhs;
    C.check((*V.LaSets)[S].subsetOf(V.An->follow(Lhs)), "follow-bound", [&] {
      return "LA exceeds FOLLOW(" + G.name(Lhs) + ") at " + describeSlot(V, S);
    });
  }
}

/// LA(q, A->w) = union of Follow(p, A) over lookback — equation (2) —
/// with the accept reduction's explicit {$end} (it has no lookback; the
/// builder seeds it directly).
void checkLaUnion(const LalrArtifactsView &V, Checker &C) {
  const Grammar &G = V.A->grammar();
  const uint32_t AcceptSlot = acceptSlot(V);
  C.check(AcceptSlot != UINT32_MAX, "la-union", [&] {
    return std::string("the accept state cannot reduce production 0");
  });

  for (uint32_t S = 0; S < V.RedIdx->size(); ++S) {
    BitSet Exp(G.numTerminals());
    for (uint32_t X : V.Rel->Lookback.row(S))
      Exp.unionWith((*V.FollowSets)[X]);
    if (S == AcceptSlot)
      Exp.set(G.eofSymbol());
    C.check((*V.LaSets)[S] == SetView(Exp), "la-union", [&] {
      return "LA mismatch at " + describeSlot(V, S) + ": stored " +
             std::to_string((*V.LaSets)[S].count()) +
             " terminals, lookback union has " + std::to_string(Exp.count());
    });
  }
}

/// Least-fixed-point minimality: an independent naive iterate-to-fixpoint
/// solve of the same equations must land on exactly the same sets (the
/// least solution is unique; a digraph bug that over- or under-shoots it
/// cannot match).
void checkFixpoint(const LalrArtifactsView &V, Checker &C) {
  SetSlab NaiveRead = solveNaiveFixpoint(V.Rel->Reads, V.Rel->DirectRead);
  for (uint32_t X = 0; X < V.NtIdx->size(); ++X)
    C.check(NaiveRead[X] == (*V.ReadSets)[X], "read-fixpoint", [&] {
      return "Read at " + describeNt(V, X) +
             " is not the least fixed point of the reads equation";
    });

  SetSlab NaiveFollow =
      solveNaiveFixpoint(V.Rel->Includes, std::move(NaiveRead));
  for (uint32_t X = 0; X < V.NtIdx->size(); ++X)
    C.check(NaiveFollow[X] == (*V.FollowSets)[X], "follow-fixpoint", [&] {
      return "Follow at " + describeNt(V, X) +
             " is not the least fixed point of the includes equation";
    });
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

LalrArtifactsView LalrArtifactsView::of(const Lr0Automaton &A,
                                        const GrammarAnalysis &An,
                                        const LalrLookaheads &LA) {
  LalrArtifactsView V;
  V.A = &A;
  V.An = &An;
  V.NtIdx = &LA.ntTransitions();
  V.RedIdx = &LA.reductions();
  V.Rel = &LA.relations();
  V.ReadSets = &LA.readSets();
  V.FollowSets = &LA.followSets();
  V.LaSets = &LA.laSets();
  return V;
}

VerifyReport lalr::verifyLalrArtifacts(const LalrArtifactsView &V,
                                       const VerifyOptions &Opts) {
  VerifyReport R;
  Checker C(R, Opts);

  bool EdgesOk = false;
  if (!checkShapes(V, C, EdgesOk))
    return R; // nothing below is safe to index

  std::vector<bool> XOk;
  checkNtTransitions(V, C, XOk);
  checkDirectReadAndReads(V, C, XOk);
  checkIncludesAndLookback(V, C, XOk);
  checkFollowBound(V, C, XOk);

  if (EdgesOk) {
    checkSubsetChains(V, C);
    checkLaUnion(V, C);
    if (Opts.CheckFixpoint && V.NtIdx->size() <= Opts.MaxFixpointNodes)
      checkFixpoint(V, C);
    else
      R.FixpointSkipped = true;
  } else {
    R.FixpointSkipped = true;
  }
  return R;
}

void lalr::verifyTableActions(const LalrArtifactsView &V,
                              const ParseTable &Table, VerifyReport &Report,
                              const VerifyOptions &Opts) {
  Checker C(Report, Opts);
  const Lr0Automaton &A = *V.A;
  const Grammar &G = A.grammar();
  const size_t NumT = G.numTerminals();

  if (!C.check(Table.numStates() == A.numStates(), "table-actions", [&] {
        return "table has " + std::to_string(Table.numStates()) +
               " states, automaton has " + std::to_string(A.numStates());
      }))
    return;
  if ((*V.LaSets).size() != V.RedIdx->size())
    return; // shape issue already reported by verifyLalrArtifacts

  // Cells with a recorded conflict are allowed to deviate from their
  // look-ahead (precedence resolution rewrote them); everything else must
  // be exactly justified.
  auto cellKey = [NumT](uint32_t S, SymbolId T) { return S * NumT + T; };
  std::vector<bool> ConflictCell(Table.numStates() * NumT, false);
  for (const Conflict &Cf : Table.conflicts()) {
    bool InRange = C.check(
        Cf.State < Table.numStates() && Cf.Terminal < NumT, "table-actions",
        [&] {
          return "conflict record targets out-of-range cell (" +
                 std::to_string(Cf.State) + ", " +
                 std::to_string(Cf.Terminal) + ")";
        });
    if (InRange)
      ConflictCell[cellKey(Cf.State, Cf.Terminal)] = true;
  }

  // Forward direction: every cell justified by the automaton + LA sets.
  for (uint32_t S = 0; S < Table.numStates(); ++S) {
    for (SymbolId T = 0; T < NumT; ++T) {
      Action Act = Table.action(S, T);
      switch (Act.Kind) {
      case ActionKind::Shift:
        C.check(A.gotoState(S, T) == Act.Value, "table-actions", [&] {
          return "shift at (" + std::to_string(S) + ", " + G.name(T) +
                 ") targets state " + std::to_string(Act.Value) +
                 " but GOTO says " + std::to_string(A.gotoState(S, T));
        });
        break;
      case ActionKind::Reduce: {
        ProductionId P = Act.Value;
        bool Known =
            C.check(P != 0 && P < G.numProductions() &&
                        isReducibleIn(A, S, P),
                    "table-actions", [&] {
                      return "reduce at (" + std::to_string(S) + ", " +
                             G.name(T) + ") names production " +
                             std::to_string(P) +
                             ", which state " + std::to_string(S) +
                             " cannot reduce";
                    });
        if (Known)
          C.check((*V.LaSets)[V.RedIdx->slot(S, P)].test(T), "table-actions",
                  [&] {
                    return "reduce by production " + std::to_string(P) +
                           " at (" + std::to_string(S) + ", " + G.name(T) +
                           ") is outside LA";
                  });
        break;
      }
      case ActionKind::Accept:
        C.check(S == A.acceptState() && T == G.eofSymbol(), "table-actions",
                [&] {
                  return "accept at (" + std::to_string(S) + ", " +
                         G.name(T) + ") is not (acceptState, $end)";
                });
        break;
      case ActionKind::Error:
        // An error cell where the automaton can shift must be a recorded
        // %nonassoc resolution; LA-justified reduces landing on Error are
        // covered by the coverage pass below.
        if (A.gotoState(S, T) != InvalidState)
          C.check(ConflictCell[cellKey(S, T)], "table-actions", [&] {
            return "error cell at (" + std::to_string(S) + ", " + G.name(T) +
                   ") hides a shift with no conflict record";
          });
        break;
      }
    }
  }

  // GOTO side: one entry per nonterminal transition, nothing else is
  // reachable, so the dense index is the ground truth to mirror.
  for (uint32_t X = 0; X < V.NtIdx->size(); ++X) {
    const NtTransition &T = (*V.NtIdx)[X];
    if (T.From >= Table.numStates() || T.Nt >= G.numSymbols() ||
        !G.isNonterminal(T.Nt))
      continue; // reported by nt-transitions
    C.check(Table.gotoNt(T.From, T.Nt, G) == T.To, "table-actions", [&] {
      return "GOTO mismatch at " + describeNt(V, X) + ": table says " +
             std::to_string(Table.gotoNt(T.From, T.Nt, G)) +
             ", automaton says " + std::to_string(T.To);
    });
  }

  // Coverage direction: every LA terminal of every reduction either took
  // effect or lost a recorded conflict.
  for (uint32_t Slot = 0; Slot < V.RedIdx->size(); ++Slot) {
    StateId Q = V.RedIdx->stateOf(Slot);
    ProductionId P = V.RedIdx->prodOf(Slot);
    if (Q >= Table.numStates())
      continue; // shape issue already reported
    Action Expected = P == 0 ? Action{ActionKind::Accept, 0}
                             : Action{ActionKind::Reduce, P};
    for (size_t T : (*V.LaSets)[Slot]) {
      Action Act = Table.action(Q, static_cast<SymbolId>(T));
      C.check(Act == Expected || ConflictCell[cellKey(Q, T)],
              "table-actions", [&] {
                return "LA terminal " + G.name(static_cast<SymbolId>(T)) +
                       " of " + describeSlot(V, Slot) +
                       " is neither honored nor recorded as a conflict";
              });
    }
  }
}

VerifyReport lalr::verifyLalrBuild(const Lr0Automaton &A,
                                   const GrammarAnalysis &An,
                                   const LalrLookaheads &LA,
                                   const ParseTable *Table,
                                   const VerifyOptions &Opts) {
  LalrArtifactsView V = LalrArtifactsView::of(A, An, LA);
  VerifyReport R = verifyLalrArtifacts(V, Opts);
  if (Table)
    verifyTableActions(V, *Table, R, Opts);
  return R;
}
