//===- service/ContextCache.cpp - Keyed LRU cache of BuildContexts -------===//

#include "service/ContextCache.h"

#include <algorithm>

using namespace lalr;

ContextCache::ContextCache(size_t Capacity)
    : Capacity(std::max<size_t>(Capacity, 1)) {}

void ContextCache::retireLocked(LruList::iterator It) {
  std::shared_ptr<CachedGrammar> Entry = *It;
  {
    // Builds on this entry hold BuildMu while mutating its stats; take it
    // so the fold reads a quiescent snapshot even if a response holder is
    // still running a pipeline over the evicted entry.
    MutexLock BuildLock(Entry->BuildMu);
    Retired.mergeFrom(Entry->Ctx.stats());
  }
  Index.erase(Entry->Key);
  Lru.erase(It);
}

std::shared_ptr<CachedGrammar>
ContextCache::acquire(std::string_view Key, uint64_t SourceHash,
                      const GrammarFactory &Factory, bool *WasHit) {
  MutexLock Lock(Mu);
  std::string K(Key);

  auto It = Index.find(K);
  std::optional<Grammar> G;
  bool FactoryRan = false;
  if (It != Index.end()) {
    std::shared_ptr<CachedGrammar> Entry = *It->second;
    if (Entry->SourceHash == SourceHash) {
      // Current entry: promote and hand it out.
      Lru.splice(Lru.begin(), Lru, It->second);
      It->second = Lru.begin();
      ++Counts.Hits;
      if (WasHit)
        *WasHit = true;
      return Lru.front();
    }
    // The grammar text changed. Parse the new text first so the change
    // can be classified against the live entry: a conflict-local or
    // production-local edit is absorbed in place — the entry (and every
    // response holding it) sees the new grammar at the same address, and
    // its artifacts are kept or patched — instead of being thrown away.
    G = Factory();
    FactoryRan = true;
    if (G) {
      GrammarDelta Delta = computeGrammarDelta(Entry->G, *G);
      if (Delta.Class != GrammarEditClass::Structural) {
        BuildContext::EditOutcome Out;
        {
          // Lock order: BuildMu under the cache mutex is the sanctioned
          // direction (same as retireLocked's stat fold).
          MutexLock BuildLock(Entry->BuildMu);
          Entry->G = std::move(*G);
          Out = Entry->Ctx.applyDelta(Delta);
        }
        Entry->SourceHash = SourceHash;
        Lru.splice(Lru.begin(), Lru, It->second);
        It->second = Lru.begin();
        ++Counts.Hits;
        if (Out.Patched) {
          ++Counts.Patched;
        } else {
          // The patch declined (e.g. a nullability flip): the artifacts
          // were dropped, which is an invalidation in all but name.
          ++Counts.Invalidations;
          ++Counts.InvalidationsSource;
        }
        if (WasHit)
          *WasHit = true;
        return Entry;
      }
    }
    // Structural change (or the new text no longer parses): discard
    // exactly this grammar's artifacts (holders of the old entry keep it
    // alive) and rebuild below.
    ++Counts.Invalidations;
    ++Counts.InvalidationsSource;
    retireLocked(It->second);
  }

  if (WasHit)
    *WasHit = false;
  ++Counts.Misses;
  if (!FactoryRan)
    G = Factory();
  if (!G)
    return nullptr;

  auto Entry = std::make_shared<CachedGrammar>(K, SourceHash, std::move(*G));
  Lru.push_front(Entry);
  Index.emplace(std::move(K), Lru.begin());

  while (Lru.size() > Capacity) {
    ++Counts.Evictions;
    retireLocked(std::prev(Lru.end()));
  }
  return Entry;
}

std::shared_ptr<CachedGrammar> ContextCache::peek(std::string_view Key) {
  MutexLock Lock(Mu);
  auto It = Index.find(std::string(Key));
  return It == Index.end() ? nullptr : *It->second;
}

bool ContextCache::invalidate(std::string_view Key) {
  MutexLock Lock(Mu);
  auto It = Index.find(std::string(Key));
  if (It == Index.end())
    return false;
  std::shared_ptr<CachedGrammar> Entry = *It->second;
  {
    MutexLock BuildLock(Entry->BuildMu);
    Entry->Ctx.invalidateArtifacts();
  }
  ++Counts.Invalidations;
  ++Counts.InvalidationsExplicit;
  return true;
}

bool ContextCache::erase(std::string_view Key) {
  MutexLock Lock(Mu);
  auto It = Index.find(std::string(Key));
  if (It == Index.end())
    return false;
  ++Counts.Invalidations;
  ++Counts.InvalidationsExplicit;
  retireLocked(It->second);
  return true;
}

size_t ContextCache::size() const {
  MutexLock Lock(Mu);
  return Lru.size();
}

ContextCache::Counters ContextCache::counters() const {
  MutexLock Lock(Mu);
  return Counts;
}

std::vector<std::string> ContextCache::keysByRecency() const {
  MutexLock Lock(Mu);
  std::vector<std::string> Keys;
  Keys.reserve(Lru.size());
  for (const std::shared_ptr<CachedGrammar> &E : Lru)
    Keys.push_back(E->Key);
  return Keys;
}

void ContextCache::collectStats(PipelineStats &Into) const {
  MutexLock Lock(Mu);
  Into.mergeFrom(Retired);
  for (const std::shared_ptr<CachedGrammar> &E : Lru) {
    MutexLock BuildLock(E->BuildMu);
    Into.mergeFrom(E->Ctx.stats());
  }
}
