//===- service/Manifest.cpp - Batch request manifests --------------------===//

#include "service/Manifest.h"

#include <charconv>
#include <span>

using namespace lalr;

namespace {

std::vector<std::string_view> splitTokens(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Tokens.push_back(Line.substr(Start, I - Start));
  }
  return Tokens;
}

bool fail(std::string &Error, unsigned Line, std::string Message) {
  Error = "line " + std::to_string(Line) + ": " + std::move(Message);
  return false;
}

/// Parses the option tokens of one `build` line into \p Entry.
bool parseBuildOptions(std::span<const std::string_view> Tokens,
                       unsigned Line, ManifestEntry &Entry,
                       std::string &Error) {
  for (std::string_view Tok : Tokens) {
    if (Tok == "compress") {
      Entry.Request.Options.Compress = true;
    } else if (Tok == "verify") {
      Entry.Request.Options.Verify = true;
    } else if (Tok == "require-adequate") {
      Entry.Request.Options.Conflicts = ConflictPolicy::RequireAdequate;
    } else if (Tok.rfind("solver=", 0) == 0) {
      std::string_view V = Tok.substr(7);
      if (V == "digraph")
        Entry.Request.Options.Solver = SolverKind::Digraph;
      else if (V == "naive")
        Entry.Request.Options.Solver = SolverKind::NaiveFixpoint;
      else
        return fail(Error, Line,
                    "unknown solver '" + std::string(V) +
                        "' (expected digraph or naive)");
    } else if (Tok.rfind("deadline-ms=", 0) == 0) {
      std::string_view V = Tok.substr(12);
      double Ms = 0;
      auto [Ptr, Ec] = std::from_chars(V.data(), V.data() + V.size(), Ms);
      if (Ec != std::errc() || Ptr != V.data() + V.size() || Ms <= 0)
        return fail(Error, Line,
                    "bad deadline '" + std::string(V) +
                        "' (expected a positive millisecond count)");
      Entry.Request.DeadlineMs = Ms;
    } else if (Tok.rfind("repeat=", 0) == 0) {
      std::string_view V = Tok.substr(7);
      unsigned N = 0;
      auto [Ptr, Ec] = std::from_chars(V.data(), V.data() + V.size(), N);
      if (Ec != std::errc() || Ptr != V.data() + V.size() || N == 0)
        return fail(Error, Line,
                    "bad repeat count '" + std::string(V) +
                        "' (expected a positive integer)");
      Entry.Repeat = N;
    } else {
      return fail(Error, Line, "unknown option '" + std::string(Tok) + "'");
    }
  }
  return true;
}

/// Parses the option tokens of one `parse` line, consuming greedily
/// until the first token that is not a recognized option; returns the
/// index of that token (the start of the input sentence) or npos on a
/// malformed option.
size_t parseParseOptions(std::span<const std::string_view> Tokens,
                         unsigned Line, ManifestEntry &Entry,
                         std::string &Error) {
  size_t I = 0;
  for (; I < Tokens.size(); ++I) {
    std::string_view Tok = Tokens[I];
    if (Tok == "dense") {
      Entry.ParseDense = true;
    } else if (Tok.rfind("kind=", 0) == 0) {
      std::string_view V = Tok.substr(5);
      std::optional<TableKind> Kind = tableKindByName(V);
      if (!Kind) {
        fail(Error, Line, "unknown table kind '" + std::string(V) + "'");
        return std::string_view::npos;
      }
      Entry.Request.Options.Kind = *Kind;
    } else if (Tok.rfind("solver=", 0) == 0) {
      std::string_view V = Tok.substr(7);
      if (V == "digraph")
        Entry.Request.Options.Solver = SolverKind::Digraph;
      else if (V == "naive")
        Entry.Request.Options.Solver = SolverKind::NaiveFixpoint;
      else {
        fail(Error, Line,
             "unknown solver '" + std::string(V) +
                 "' (expected digraph or naive)");
        return std::string_view::npos;
      }
    } else if (Tok.rfind("deadline-ms=", 0) == 0) {
      std::string_view V = Tok.substr(12);
      double Ms = 0;
      auto [Ptr, Ec] = std::from_chars(V.data(), V.data() + V.size(), Ms);
      if (Ec != std::errc() || Ptr != V.data() + V.size() || Ms <= 0) {
        fail(Error, Line,
             "bad deadline '" + std::string(V) +
                 "' (expected a positive millisecond count)");
        return std::string_view::npos;
      }
      Entry.Request.DeadlineMs = Ms;
    } else if (Tok.rfind("repeat=", 0) == 0) {
      std::string_view V = Tok.substr(7);
      unsigned N = 0;
      auto [Ptr, Ec] = std::from_chars(V.data(), V.data() + V.size(), N);
      if (Ec != std::errc() || Ptr != V.data() + V.size() || N == 0) {
        fail(Error, Line,
             "bad repeat count '" + std::string(V) +
                 "' (expected a positive integer)");
        return std::string_view::npos;
      }
      Entry.Repeat = N;
    } else {
      break; // first input token
    }
  }
  return I;
}

} // namespace

std::optional<std::vector<ManifestEntry>>
lalr::parseManifest(std::string_view Text, std::string &Error) {
  std::vector<ManifestEntry> Entries;
  unsigned LineNo = 0;
  while (!Text.empty()) {
    size_t Eol = Text.find('\n');
    std::string_view Line =
        Eol == std::string_view::npos ? Text : Text.substr(0, Eol);
    Text = Eol == std::string_view::npos ? std::string_view()
                                         : Text.substr(Eol + 1);
    ++LineNo;

    if (size_t Hash = Line.find('#'); Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    std::vector<std::string_view> Tokens = splitTokens(Line);
    if (Tokens.empty())
      continue;

    ManifestEntry Entry;
    Entry.Line = LineNo;
    if (Tokens[0] == "invalidate") {
      if (Tokens.size() != 2) {
        fail(Error, LineNo, "expected: invalidate <grammar>");
        return std::nullopt;
      }
      Entry.Act = ManifestEntry::Action::Invalidate;
      Entry.Request.GrammarName = std::string(Tokens[1]);
    } else if (Tokens[0] == "edit") {
      if (Tokens.size() < 3) {
        fail(Error, LineNo, "expected: edit <grammar> <patch>");
        return std::nullopt;
      }
      Entry.Act = ManifestEntry::Action::Edit;
      Entry.Request.GrammarName = std::string(Tokens[1]);
      std::vector<std::string> PatchToks(Tokens.begin() + 2, Tokens.end());
      std::string PatchError;
      std::optional<GrammarEdit> Patch =
          parseGrammarEdit(PatchToks, PatchError);
      if (!Patch) {
        fail(Error, LineNo, std::move(PatchError));
        return std::nullopt;
      }
      Entry.Edit = std::move(*Patch);
    } else if (Tokens[0] == "build") {
      if (Tokens.size() < 3) {
        fail(Error, LineNo, "expected: build <grammar> <kind> [options]");
        return std::nullopt;
      }
      Entry.Act = ManifestEntry::Action::Build;
      Entry.Request.GrammarName = std::string(Tokens[1]);
      std::optional<TableKind> Kind = tableKindByName(Tokens[2]);
      if (!Kind) {
        fail(Error, LineNo,
             "unknown table kind '" + std::string(Tokens[2]) + "'");
        return std::nullopt;
      }
      Entry.Request.Options.Kind = *Kind;
      if (!parseBuildOptions(std::span(Tokens).subspan(3), LineNo, Entry,
                             Error))
        return std::nullopt;
    } else if (Tokens[0] == "parse") {
      if (Tokens.size() < 4) {
        fail(Error, LineNo,
             "expected: parse <grammar> <driver> [options] <input...>");
        return std::nullopt;
      }
      Entry.Act = ManifestEntry::Action::Parse;
      Entry.Request.GrammarName = std::string(Tokens[1]);
      std::optional<ParserKind> Driver = parserKindByName(Tokens[2]);
      if (!Driver) {
        fail(Error, LineNo,
             "unknown parse driver '" + std::string(Tokens[2]) +
                 "' (expected lr, glr, ll1 or earley)");
        return std::nullopt;
      }
      Entry.Driver = *Driver;
      std::span<const std::string_view> Rest = std::span(Tokens).subspan(3);
      size_t InputStart = parseParseOptions(Rest, LineNo, Entry, Error);
      if (InputStart == std::string_view::npos)
        return std::nullopt;
      if (InputStart >= Rest.size()) {
        fail(Error, LineNo,
             "parse line has no input sentence (terminal names or @file)");
        return std::nullopt;
      }
      for (size_t I = InputStart; I < Rest.size(); ++I) {
        if (I > InputStart)
          Entry.ParseInput += ' ';
        Entry.ParseInput += Rest[I];
      }
    } else {
      fail(Error, LineNo,
           "unknown command '" + std::string(Tokens[0]) +
               "' (expected build, edit, invalidate or parse)");
      return std::nullopt;
    }
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

std::vector<ServiceRequest>
lalr::manifestRequests(const std::vector<ManifestEntry> &Entries) {
  std::vector<ServiceRequest> Requests;
  for (const ManifestEntry &E : Entries) {
    if (E.Act != ManifestEntry::Action::Build)
      continue;
    for (unsigned I = 0; I < E.Repeat; ++I)
      Requests.push_back(E.Request);
  }
  return Requests;
}
