//===- service/BuildService.h - Batched multi-grammar builds ----*- C++ -*-===//
///
/// \file
/// The long-running serving layer over BuildPipeline: a BuildService
/// accepts batches of build requests ({grammar, table kind, solver,
/// conflict policy, compression}), shares one cached BuildContext per
/// grammar across all of them (ContextCache), and schedules independent
/// grammars onto the existing support/ThreadPool — so a batch of M table
/// kinds over one grammar constructs the LR(0) automaton once, and a
/// batch over N grammars builds N contexts concurrently. Results are
/// bit-identical to running each request through BuildPipeline standalone
/// (the pipeline is deterministic and parallel == serial); what the
/// service adds is amortization, which ServiceStats quantifies.
///
/// Two usage shapes:
///
///   BuildService Svc({.Workers = 4});
///   auto Responses = Svc.runBatch(Requests);      // synchronous batch
///
///   uint64_t T = Svc.submit(Req);                 // streaming front end
///   ServiceResponse R = Svc.wait(T);              // FIFO dispatcher
///
/// See docs/SERVICE.md for the manifest front end (lalr_batchd) and the
/// cache/invalidation semantics.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_BUILDSERVICE_H
#define LALR_SERVICE_BUILDSERVICE_H

#include "pipeline/BuildPipeline.h"
#include "service/ContextCache.h"
#include "service/RequestQueue.h"
#include "service/ServiceStats.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lalr {

class ThreadPool;

/// One build request. The grammar is named by \p GrammarName (the cache
/// key); \p Source carries its .y text, or is empty to resolve the name
/// in the corpus registry (corpusGrammarByName).
struct ServiceRequest {
  std::string GrammarName;
  std::string Source;
  /// Kind / solver / conflict policy / compression for this request.
  /// Options.Threads is ignored — the per-context DP worker count is the
  /// service's BuildService::Options::ContextThreads, applied uniformly.
  /// Options.Cancel and Options.Limits pass through to the build; any
  /// limit field the request leaves at 0 falls back to the service's
  /// Options::DefaultLimits.
  BuildOptions Options;
  /// Per-request deadline, milliseconds from acceptance (submit() for
  /// streaming requests, runBatch() entry for batch ones); 0 = none.
  /// Queue wait counts against it: an expired request is shed without
  /// building (BuildStatus::DeadlineExceeded, ServiceStats::Expired).
  /// When Options.Cancel is null the service creates the token; when the
  /// caller supplied one, the deadline is armed on it.
  double DeadlineMs = 0;
};

/// What one request produced. Failed requests (unknown grammar name,
/// source that does not parse) carry Ok = false and a diagnostic; they
/// never abort the rest of the batch.
struct ServiceResponse {
  bool Ok = false;
  std::string Error;
  /// Structured outcome: Ok mirrors Status.ok(). Resolution failures
  /// (unknown grammar, parse errors) are GrammarError; aborted builds
  /// carry the pipeline's Cancelled / DeadlineExceeded / LimitExceeded /
  /// Internal status; queue-rejected submits are DeadlineExceeded with a
  /// "queue full" message.
  BuildStatus Status;
  /// Whether the grammar's context was already cached when this request
  /// ran (the first request of a batch against a grammar is the miss the
  /// later ones amortize).
  bool CacheHit = false;
  /// Keeps the grammar and its artifacts alive past cache eviction; the
  /// BuildResult's grammar pointer targets Context->G.
  std::shared_ptr<CachedGrammar> Context;
  /// Engaged iff Ok: the same BuildResult a standalone BuildPipeline run
  /// would return (table, optional compressed form, stats, verdict).
  std::optional<BuildResult> Result;
  /// Service-side wall-clock for this request, microseconds.
  double WallUs = 0;
};

/// Batched multi-grammar table-construction service over a shared
/// ContextCache. Thread-safe: batches, submissions and invalidations may
/// race freely; builds on one grammar are serialized on its context.
class BuildService {
public:
  struct Options {
    /// Batch-level parallelism: distinct grammars of one batch build
    /// concurrently on a service-owned ThreadPool of this many workers
    /// (0 or 1 = in-line execution; requests against one grammar are
    /// always serialized on its shared context either way).
    unsigned Workers = 0;
    /// LRU bound on cached grammar contexts (clamped to >= 1).
    size_t CacheCapacity = 16;
    /// DP-core worker count applied to every context (BuildOptions
    /// semantics: 0 = serial, N = pool of N, -1 = inherit LALR_THREADS).
    int ContextThreads = -1;
    /// Service-wide resource ceilings, merged under each request's own
    /// Options.Limits (a request field set to nonzero wins; 0 inherits
    /// the default). All-zero = no service-side ceilings.
    BuildLimits DefaultLimits = {};
    /// Deadline applied to requests that carry none of their own
    /// (milliseconds; 0 = none).
    double DefaultDeadlineMs = 0;
    /// Bound on the streaming submission queue (0 = unbounded). With a
    /// bound, submit() blocks up to SubmitTimeoutMs for space, then sheds
    /// the request (ServiceStats::Rejected, a failed response with a
    /// "queue full" diagnostic).
    size_t QueueDepth = 0;
    /// How long a bounded submit() waits for queue space before shedding
    /// (milliseconds; 0 = reject immediately when full).
    double SubmitTimeoutMs = 0;
    /// Forces BuildOptions::Verify on for every request the service runs
    /// (requests may also opt in individually via their own Options).
    /// See verify/ArtifactVerifier.h for what verification checks.
    bool VerifyBuilds = false;
  };

  explicit BuildService(Options Opts);
  BuildService() : BuildService(Options{}) {}

  BuildService(const BuildService &) = delete;
  BuildService &operator=(const BuildService &) = delete;

  /// Closes the submission queue, drains the dispatcher and joins it.
  ~BuildService();

  /// Executes every request (Responses[i] answers Requests[i]).
  /// Requests are grouped by grammar: each group shares one cached
  /// context and runs in request order; distinct groups are claimed
  /// dynamically by the pool workers.
  std::vector<ServiceResponse> runBatch(std::span<const ServiceRequest> Requests);

  /// \name Streaming front end
  /// A FIFO dispatcher thread (started on first submit) executes
  /// submitted requests in order against the same shared cache.
  /// @{

  /// Enqueues one request; returns its ticket.
  uint64_t submit(ServiceRequest Request);

  /// Blocks until the request behind \p Ticket completes and returns its
  /// response. A ticket never issued by submit yields a failed response.
  ServiceResponse wait(uint64_t Ticket);
  /// @}

  /// Drops the memoized artifacts of one grammar; the next request
  /// against it rebuilds them (build counters keep accumulating, so the
  /// rebuild is observable). Returns false when the grammar is not
  /// cached. Grammar-text changes need no explicit call — a request
  /// whose source hash differs from the cached one invalidates that
  /// entry by itself.
  bool invalidateGrammar(std::string_view GrammarName);

  /// The shared context cache (tests assert build counts through it).
  ContextCache &cache() { return Cache; }

  /// Snapshot of the aggregate counters and merged pipeline stats.
  ServiceStats stats() const;

private:
  /// Resolves the request's grammar through the cache (corpus lookup for
  /// empty sources), runs the configured pipeline over the shared
  /// context, and fills \p Response. Never throws; failures become
  /// Ok = false responses.
  void resolveAndExecute(const ServiceRequest &Request,
                         ServiceResponse &Response);

  void dispatcherLoop();

  const Options Opts;
  ContextCache Cache;

  /// Batch scheduler. ThreadPool submissions are not concurrency-safe,
  /// so PoolMu serializes whole batches; requests inside one batch still
  /// fan out across the workers.
  Mutex PoolMu{"service.pool", lockrank::ServicePool};
  /// Engaged iff Opts.Workers > 1. The pointer itself is set once in the
  /// constructor and never reassigned, so only submissions (parallelFor
  /// calls) need PoolMu — not the pointer reads.
  std::unique_ptr<ThreadPool> Pool;

  mutable Mutex StatsMu{"service.stats", lockrank::ServiceStats};
  uint64_t Requests LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Succeeded LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Failed LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Batches LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Rejected LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Expired LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t Cancelled LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t LimitKilled LALR_GUARDED_BY(StatsMu) = 0;
  /// Builds over a cached context that failed after acquiring the entry:
  /// the pipeline dropped that context's memoized artifacts on abort, so
  /// the next request pays a cold build. The "why was this invalidated"
  /// report splits these from source-change and explicit invalidations.
  uint64_t AbortInvalidations LALR_GUARDED_BY(StatsMu) = 0;
  double RequestUs LALR_GUARDED_BY(StatsMu) = 0;

  /// Streaming state. Tickets are handed out under TicketMu; completed
  /// responses are parked in Completed until wait() claims them.
  Mutex TicketMu{"service.tickets", lockrank::ServiceTickets};
  CondVar TicketDone;
  uint64_t NextTicket LALR_GUARDED_BY(TicketMu) = 1;
  std::unordered_map<uint64_t, ServiceResponse> Completed
      LALR_GUARDED_BY(TicketMu);
  RequestQueue<std::pair<uint64_t, ServiceRequest>> Queue;
  std::thread Dispatcher LALR_GUARDED_BY(TicketMu); ///< started lazily
  bool DispatcherRunning LALR_GUARDED_BY(TicketMu) = false;
};

} // namespace lalr

#endif // LALR_SERVICE_BUILDSERVICE_H
