//===- service/RequestQueue.h - Thread-safe FIFO work queue -----*- C++ -*-===//
///
/// \file
/// The hand-off structure between the service front ends and the build
/// executor: a mutex-guarded FIFO with optional depth bound and close
/// semantics. Producers push requests (blocking while the queue is full),
/// the dispatcher pops them in submission order, and close() releases
/// everyone — pending items are still drained, so a closed queue finishes
/// the work it accepted before reporting exhaustion.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_REQUESTQUEUE_H
#define LALR_SERVICE_REQUESTQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lalr {

/// FIFO queue of pending work items, safe for any number of producer and
/// consumer threads.
template <typename T> class RequestQueue {
public:
  /// \p MaxDepth bounds the number of queued items (0 = unbounded);
  /// push blocks while the queue is full.
  explicit RequestQueue(size_t MaxDepth = 0) : MaxDepth(MaxDepth) {}

  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Enqueues \p Item, blocking while the queue is at MaxDepth. Returns
  /// false (and drops the item) once the queue is closed.
  bool push(T Item) {
    std::unique_lock<std::mutex> Lock(Mu);
    NotFull.wait(Lock, [&] {
      return Closed || MaxDepth == 0 || Items.size() < MaxDepth;
    });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty and
  /// open. Returns nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    NotFull.notify_one();
    return Item;
  }

  /// Rejects further pushes and wakes every blocked producer/consumer.
  /// Already-queued items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Closed;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

private:
  const size_t MaxDepth;
  mutable std::mutex Mu;
  std::condition_variable NotEmpty; ///< consumers wait here
  std::condition_variable NotFull;  ///< producers wait here (bounded mode)
  std::deque<T> Items;              ///< guarded by Mu
  bool Closed = false;              ///< guarded by Mu
};

} // namespace lalr

#endif // LALR_SERVICE_REQUESTQUEUE_H
