//===- service/RequestQueue.h - Thread-safe FIFO work queue -----*- C++ -*-===//
///
/// \file
/// The hand-off structure between the service front ends and the build
/// executor: a mutex-guarded FIFO with optional depth bound and close
/// semantics. Producers push requests (blocking while the queue is full),
/// the dispatcher pops them in submission order, and close() releases
/// everyone — pending items are still drained, so a closed queue finishes
/// the work it accepted before reporting exhaustion.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_REQUESTQUEUE_H
#define LALR_SERVICE_REQUESTQUEUE_H

#include "support/ThreadSafety.h"

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

namespace lalr {

/// FIFO queue of pending work items, safe for any number of producer and
/// consumer threads.
template <typename T> class RequestQueue {
public:
  /// \p MaxDepth bounds the number of queued items (0 = unbounded);
  /// push blocks while the queue is full.
  explicit RequestQueue(size_t MaxDepth = 0) : MaxDepth(MaxDepth) {}

  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Enqueues \p Item, blocking while the queue is at MaxDepth. Returns
  /// false (and drops the item) once the queue is closed.
  bool push(T Item) {
    MutexLock Lock(Mu);
    NotFull.wait(Lock, [&] {
      return Closed || MaxDepth == 0 || Items.size() < MaxDepth;
    });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notifyOne();
    return true;
  }

  /// Timed push: like push, but gives up (returning false, dropping the
  /// item) when the queue is still full after \p Timeout. This is the
  /// load-shedding hand-off: a bounded service rejects work instead of
  /// stacking producers behind a slow build. A zero/negative timeout is a
  /// try-push. Closed queues return false immediately either way.
  template <typename Rep, typename Period>
  bool pushFor(T Item, std::chrono::duration<Rep, Period> Timeout) {
    MutexLock Lock(Mu);
    if (!NotFull.waitFor(Lock, Timeout, [&] {
          return Closed || MaxDepth == 0 || Items.size() < MaxDepth;
        }))
      return false; // still full
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notifyOne();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty and
  /// open. Returns nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    MutexLock Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    NotFull.notifyOne();
    return Item;
  }

  /// Timed pop: like pop, but returns nullopt when the queue is still
  /// empty (and open) after \p Timeout — callers cannot distinguish
  /// "closed and drained" from "timed out" here; poll closed() if the
  /// difference matters.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> Timeout) {
    MutexLock Lock(Mu);
    if (!NotEmpty.waitFor(Lock, Timeout,
                           [&] { return Closed || !Items.empty(); }))
      return std::nullopt; // timed out
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    NotFull.notifyOne();
    return Item;
  }

  /// Rejects further pushes and wakes every blocked producer/consumer.
  /// Already-queued items remain poppable.
  void close() {
    {
      MutexLock Lock(Mu);
      Closed = true;
    }
    NotEmpty.notifyAll();
    NotFull.notifyAll();
  }

  bool closed() const {
    MutexLock Lock(Mu);
    return Closed;
  }

  size_t depth() const {
    MutexLock Lock(Mu);
    return Items.size();
  }

private:
  const size_t MaxDepth;
  mutable Mutex Mu{"service.queue", lockrank::ServiceQueue};
  CondVar NotEmpty; ///< consumers wait here
  CondVar NotFull;  ///< producers wait here (bounded mode)
  std::deque<T> Items LALR_GUARDED_BY(Mu);
  bool Closed LALR_GUARDED_BY(Mu) = false;
};

} // namespace lalr

#endif // LALR_SERVICE_REQUESTQUEUE_H
