//===- service/ContextCache.h - Keyed LRU cache of BuildContexts *- C++ -*-===//
///
/// \file
/// The memory of the grammar-build service: a capacity-bounded LRU cache
/// mapping grammar keys to long-lived BuildContexts, so N requests
/// against the same grammar share one GrammarAnalysis / Lr0Automaton /
/// LalrLookaheads chain instead of paying a cold build each. Entries are
/// handed out as shared_ptrs — an in-flight response keeps its artifacts
/// alive even after the entry is evicted. Each acquire carries the hash
/// of the request's grammar source: a hit with a different hash means the
/// grammar text changed, and exactly that grammar's artifacts are
/// discarded (the rest of the cache is untouched). Explicit invalidation
/// keeps the entry (and its cumulative build counters) but drops the
/// memoized artifacts, so "this rebuilt exactly once more" stays
/// assertable. Hit / miss / eviction / invalidation counts are exposed
/// for ServiceStats, and the PipelineStats of evicted entries are folded
/// into a retired accumulator so aggregate stats survive eviction.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_CONTEXTCACHE_H
#define LALR_SERVICE_CONTEXTCACHE_H

#include "pipeline/BuildContext.h"

#include "support/ThreadSafety.h"

#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace lalr {

/// FNV-1a over the grammar source text — the change-detection fingerprint
/// stored with each cache entry.
inline uint64_t hashGrammarSource(std::string_view Source) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Source) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

/// One cached grammar with its memoized build artifacts. Never copied or
/// moved (BuildContext pins its address); shared ownership lets responses
/// outlive eviction.
struct CachedGrammar {
  CachedGrammar(std::string Key, uint64_t SourceHash, Grammar Gr)
      : Key(std::move(Key)), SourceHash(SourceHash), G(std::move(Gr)),
        Ctx(G) {}

  CachedGrammar(const CachedGrammar &) = delete;
  CachedGrammar &operator=(const CachedGrammar &) = delete;

  const std::string Key;
  /// hashGrammarSource of the entry's current text. Updated (under the
  /// cache lock + BuildMu) when a source change is absorbed by the
  /// incremental patch path instead of a rebuild.
  uint64_t SourceHash;
  Grammar G;
  /// Borrows G; destroyed first (declared last). Deliberately NOT
  /// LALR_GUARDED_BY(BuildMu): builds mutate it under BuildMu, but tests
  /// and reports read its monotonic build counters quiescently (no build
  /// in flight) without the lock, which is safe and annotation-hostile.
  BuildContext Ctx;
  /// Serializes pipeline runs over Ctx: BuildContext memoization is not
  /// thread-safe, so concurrent requests against one grammar take turns.
  /// Lock order: this may be taken while holding the cache mutex (during
  /// eviction/invalidation stat folds); never take the cache mutex while
  /// holding a BuildMu.
  Mutex BuildMu{"cache.entry", lockrank::CacheEntry};
};

/// Keyed, capacity-bounded, thread-safe LRU cache of CachedGrammar
/// entries.
class ContextCache {
public:
  /// \p Capacity bounds the number of live entries (clamped to >= 1);
  /// acquiring beyond it evicts least-recently-used entries.
  explicit ContextCache(size_t Capacity);

  /// Monotonic event counts since construction.
  struct Counters {
    uint64_t Hits = 0;          ///< acquire found a current entry
    uint64_t Misses = 0;        ///< acquire had to build an entry
    uint64_t Evictions = 0;     ///< entries dropped by the LRU bound
    uint64_t Invalidations = 0; ///< explicit + source-change invalidations
    /// Source changes absorbed in place: the edit classified as
    /// conflict-local or production-local and the entry's artifacts were
    /// kept/patched rather than dropped. Counted as a Hit, not an
    /// invalidation.
    uint64_t Patched = 0;
    /// Why artifacts were dropped, summing to Invalidations:
    /// InvalidationsSource = the grammar text changed structurally (or a
    /// patch declined); InvalidationsExplicit = invalidate()/erase().
    uint64_t InvalidationsSource = 0;
    uint64_t InvalidationsExplicit = 0;
  };

  /// Builds the grammar for a cache miss; nullopt = unbuildable (parse
  /// error), which caches nothing.
  using GrammarFactory = std::function<std::optional<Grammar>()>;

  /// Returns the entry for \p Key, promoting it to most-recently-used.
  /// A hit requires the stored source hash to equal \p SourceHash. A
  /// stale hash first classifies the change (computeGrammarDelta over the
  /// factory's new grammar): a conflict-local or production-local edit is
  /// absorbed in place — the entry keeps its identity and its artifacts
  /// are kept or patched (counted as Hit + Patched) — while a structural
  /// change drops the old entry (holders keep it alive; counted as an
  /// invalidation) and rebuilds. On a miss the factory runs (inside the
  /// cache lock: concurrent misses for one key must not build twice); a
  /// factory failure returns nullptr and caches nothing. \p WasHit, when
  /// non-null, reports hit vs miss for the caller's per-request
  /// accounting.
  std::shared_ptr<CachedGrammar> acquire(std::string_view Key,
                                         uint64_t SourceHash,
                                         const GrammarFactory &Factory,
                                         bool *WasHit = nullptr);

  /// Looks up \p Key without promoting it or touching the counters (for
  /// tests and introspection); nullptr when absent.
  std::shared_ptr<CachedGrammar> peek(std::string_view Key);

  /// Drops the memoized artifacts of \p Key's entry (the entry itself,
  /// its stats and its build counters stay). Returns false when the key
  /// is not cached.
  bool invalidate(std::string_view Key);

  /// Evicts \p Key's entry entirely (folding its stats into the retired
  /// accumulator). Returns false when the key is not cached.
  bool erase(std::string_view Key);

  size_t size() const;
  size_t capacity() const { return Capacity; }
  Counters counters() const;

  /// Keys in most-recently-used-first order (the eviction order is the
  /// reverse); for tests and reports.
  std::vector<std::string> keysByRecency() const;

  /// Merges the PipelineStats of every live entry plus the retired
  /// accumulator (stats folded out of evicted/erased entries) into
  /// \p Into. The service's aggregate view of all build work ever done.
  void collectStats(PipelineStats &Into) const;

private:
  using LruList = std::list<std::shared_ptr<CachedGrammar>>;

  /// Folds the entry's stats into Retired and unlinks it.
  void retireLocked(LruList::iterator It) LALR_REQUIRES(Mu);

  const size_t Capacity;
  mutable Mutex Mu{"cache.map", lockrank::CacheMap};
  /// Front = most recently used.
  LruList Lru LALR_GUARDED_BY(Mu);
  std::unordered_map<std::string, LruList::iterator> Index LALR_GUARDED_BY(Mu);
  Counters Counts LALR_GUARDED_BY(Mu);
  /// Stats of evicted entries.
  PipelineStats Retired LALR_GUARDED_BY(Mu);
};

} // namespace lalr

#endif // LALR_SERVICE_CONTEXTCACHE_H
