//===- service/ServiceStats.cpp - Aggregate service metrics --------------===//

#include "service/ServiceStats.h"

#include "support/LockRank.h"

#include <cstdio>

using namespace lalr;

std::string ServiceStats::toJson(bool Pretty) const {
  const char *Nl = Pretty ? "\n" : "";
  const char *Ind = Pretty ? "  " : "";
  const char *Sp = Pretty ? " " : "";

  auto Field = [&](std::string &Out, const char *Name, uint64_t V,
                   bool Comma = true) {
    Out += Ind;
    Out += '"';
    Out += Name;
    Out += "\":";
    Out += Sp;
    Out += std::to_string(V);
    if (Comma)
      Out += ',';
    Out += Nl;
  };

  std::string Out;
  Out += '{';
  Out += Nl;
  Field(Out, "requests", Requests);
  Field(Out, "succeeded", Succeeded);
  Field(Out, "failed", Failed);
  Field(Out, "batches", Batches);
  Field(Out, "rejected", Rejected);
  Field(Out, "expired", Expired);
  Field(Out, "cancelled", Cancelled);
  Field(Out, "limit_killed", LimitKilled);
  Field(Out, "cache_hits", CacheHits);
  Field(Out, "cache_misses", CacheMisses);
  Field(Out, "cache_evictions", CacheEvictions);
  Field(Out, "cache_invalidations", CacheInvalidations);
  Field(Out, "cache_patched", CachePatched);
  Field(Out, "cache_invalidations_source", CacheInvalidationsSource);
  Field(Out, "cache_invalidations_explicit", CacheInvalidationsExplicit);
  Field(Out, "cache_invalidations_abort", CacheInvalidationsAbort);
  Field(Out, "cached_contexts", CachedContexts);
  Out += Ind;
  Out += "\"cache_hit_ratio\":";
  Out += Sp;
  {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f", cacheHitRatio());
    Out += Buf;
  }
  Out += ',';
  Out += Nl;
  Out += Ind;
  Out += "\"request_us\":";
  Out += Sp;
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", RequestUs);
    Out += Buf;
  }
  Out += ',';
  Out += Nl;
  Out += Ind;
  Out += "\"aggregate\":";
  Out += Sp;
  // The nested object keeps its own (compact) layout; pretty mode only
  // formats the service-level fields.
  Out += Aggregate.toJson(/*Pretty=*/false);
  Out += Nl;
  Out += '}';
  return Out;
}

PipelineStats ServiceStats::toPipelineStats(std::string Label) const {
  PipelineStats Out;
  Out.mergeFrom(Aggregate);
  Out.Label = std::move(Label);
  Out.setCounter("service_requests", Requests);
  Out.setCounter("service_succeeded", Succeeded);
  Out.setCounter("service_failed", Failed);
  Out.setCounter("service_rejected", Rejected);
  Out.setCounter("service_expired", Expired);
  Out.setCounter("service_cancelled", Cancelled);
  Out.setCounter("service_limit_killed", LimitKilled);
  Out.setCounter("service_cache_hits", CacheHits);
  Out.setCounter("service_cache_misses", CacheMisses);
  Out.setCounter("service_cache_evictions", CacheEvictions);
  Out.setCounter("service_cache_invalidations", CacheInvalidations);
  Out.setCounter("service_cache_patched", CachePatched);
  Out.setCounter("service_cache_invalidations_source",
                 CacheInvalidationsSource);
  Out.setCounter("service_cache_invalidations_explicit",
                 CacheInvalidationsExplicit);
  Out.setCounter("service_cache_invalidations_abort",
                 CacheInvalidationsAbort);
  // Lock-rank checker observability (support/LockRank.h). Process-wide,
  // snapshotted here so every service-stats JSON carries them. Both are 0
  // in release builds unless LALR_LOCK_CHECK arms the checker, and
  // lock_order_violations must be 0 in ANY healthy run — compare_stats.py
  // gates both as structural.
  Out.setCounter("lock_acquisitions", LockRank::acquisitions());
  Out.setCounter("lock_order_violations", LockRank::violations());
  Out.addStage("service-requests", RequestUs);
  return Out;
}

std::string lalr::reportServiceStats(const ServiceStats &S) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "service: %llu request(s) in %llu batch(es): %llu ok, %llu "
                "failed, %.1f ms service wall\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.Batches),
                static_cast<unsigned long long>(S.Succeeded),
                static_cast<unsigned long long>(S.Failed),
                S.RequestUs / 1000.0);
  Out += Buf;
  if (S.Rejected || S.Expired || S.Cancelled || S.LimitKilled) {
    std::snprintf(Buf, sizeof(Buf),
                  "shed:    %llu rejected (queue full), %llu expired, %llu "
                  "cancelled, %llu limit-killed\n",
                  static_cast<unsigned long long>(S.Rejected),
                  static_cast<unsigned long long>(S.Expired),
                  static_cast<unsigned long long>(S.Cancelled),
                  static_cast<unsigned long long>(S.LimitKilled));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "cache:   %llu hit(s), %llu miss(es) (%.0f%% hit ratio), "
                "%llu eviction(s), %llu invalidation(s), %llu live "
                "context(s)\n",
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.CacheMisses),
                S.cacheHitRatio() * 100.0,
                static_cast<unsigned long long>(S.CacheEvictions),
                static_cast<unsigned long long>(S.CacheInvalidations),
                static_cast<unsigned long long>(S.CachedContexts));
  Out += Buf;
  if (S.CachePatched || S.CacheInvalidations) {
    std::snprintf(Buf, sizeof(Buf),
                  "edits:   %llu patched in place; invalidations: %llu "
                  "source-change, %llu explicit, %llu build-abort\n",
                  static_cast<unsigned long long>(S.CachePatched),
                  static_cast<unsigned long long>(S.CacheInvalidationsSource),
                  static_cast<unsigned long long>(S.CacheInvalidationsExplicit),
                  static_cast<unsigned long long>(S.CacheInvalidationsAbort));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "build:   %.1f ms total pipeline wall\n",
                S.Aggregate.totalUs() / 1000.0);
  Out += Buf;
  return Out;
}
