//===- service/ServiceStats.h - Aggregate service metrics -------*- C++ -*-===//
///
/// \file
/// The service-level rollup of everything a BuildService did: request
/// outcome counts, the ContextCache's hit/miss/eviction/invalidation
/// counters, service-side wall-clock, and one aggregate PipelineStats
/// merging the per-context stage timings and size counters of every build
/// the service ever ran (including contexts since evicted). Emitted as
/// JSON by lalr_batchd and bench_service_throughput so the same
/// compare_stats.py tooling that tracks the offline benches tracks the
/// serving layer.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_SERVICESTATS_H
#define LALR_SERVICE_SERVICESTATS_H

#include "pipeline/PipelineStats.h"

#include <cstdint>
#include <string>

namespace lalr {

/// Snapshot of a BuildService's lifetime counters. Plain data: take a
/// copy via BuildService::stats() and read it without locking.
struct ServiceStats {
  /// \name Request accounting
  /// @{
  uint64_t Requests = 0;  ///< requests executed (batch + submitted)
  uint64_t Succeeded = 0; ///< produced a table
  uint64_t Failed = 0;    ///< unknown grammar, parse error, ...
  uint64_t Batches = 0;   ///< runBatch calls
  /// @}

  /// \name Robustness accounting
  /// Sub-classification of how requests failed (each is also counted in
  /// Failed, except Rejected — a rejected submit never executes and so is
  /// counted nowhere else).
  /// @{
  uint64_t Rejected = 0;   ///< shed at submit: bounded queue stayed full
  uint64_t Expired = 0;    ///< deadline passed (shed before or during build)
  uint64_t Cancelled = 0;  ///< token cancelled by the caller
  uint64_t LimitKilled = 0;///< a BuildLimits ceiling tripped
  /// @}

  /// \name ContextCache counters
  /// @{
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheInvalidations = 0;
  /// Source changes absorbed in place by the incremental patch path
  /// (conflict-local / production-local edits); these are cache hits.
  uint64_t CachePatched = 0;
  /// Why artifacts were invalidated (source + explicit sum to
  /// CacheInvalidations; abort invalidations happen inside the pipeline
  /// on failed builds and are counted separately by the service).
  uint64_t CacheInvalidationsSource = 0;   ///< grammar text changed
  uint64_t CacheInvalidationsExplicit = 0; ///< invalidate()/erase() calls
  uint64_t CacheInvalidationsAbort = 0;    ///< failed build dropped memos
  uint64_t CachedContexts = 0; ///< live entries at snapshot time
  /// @}

  /// Service-side wall-clock over all executed requests (queueing and
  /// grammar resolution included), microseconds.
  double RequestUs = 0;

  /// Merge of every context's PipelineStats — the per-stage build cost
  /// behind the requests, deduplicated by construction: a cache hit adds
  /// nothing here, which is the point of the cache.
  PipelineStats Aggregate;

  /// Hits / (hits + misses); 0 when no cache traffic happened.
  double cacheHitRatio() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) / Total : 0.0;
  }

  /// Serializes to one JSON object:
  ///   {"requests":..,"succeeded":..,...,"request_us":..,
  ///    "aggregate":<PipelineStats JSON>}
  /// \p Pretty adds newlines/indentation.
  std::string toJson(bool Pretty = false) const;

  /// Folds the service counters into \p Into as "service_*" counters and
  /// merges Aggregate, producing one PipelineStats a bench can hand to
  /// the standard StatsSink machinery. \p Label becomes Into's label.
  PipelineStats toPipelineStats(std::string Label) const;
};

/// Human-readable multi-line listing (the batch driver's summary block).
std::string reportServiceStats(const ServiceStats &S);

} // namespace lalr

#endif // LALR_SERVICE_SERVICESTATS_H
