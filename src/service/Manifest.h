//===- service/Manifest.h - Batch request manifests -------------*- C++ -*-===//
///
/// \file
/// The request-file dialect lalr_batchd reads: one command per line,
/// `#` comments and blank lines ignored.
///
///   build <grammar> <kind> [solver=digraph|naive] [compress] [verify]
///                          [require-adequate] [repeat=N] [deadline-ms=N]
///   invalidate <grammar>
///   edit <grammar> <patch>
///   parse <grammar> <driver> [dense] [kind=K] [solver=S] [deadline-ms=N]
///                            [repeat=N] <input ... | @file>
///
/// `parse` runs a sentence through the ParseService. `<driver>` is a
/// parserKindName ("lr", "glr", "ll1", "earley"); option tokens are
/// consumed greedily after it and everything from the first
/// unrecognized token on is the input sentence (whitespace-separated
/// terminal spellings). An input of the single token `@path` makes the
/// driver read the sentence from that file (parsing here stays
/// IO-free). `dense` runs the LR driver over the dense table instead of
/// the compressed one; `kind=` selects the LR table construction.
///
/// `<patch>` is one edit in the grammar/GrammarEdit.h dialect:
///   prec <token> <left|right|nonassoc|none> <level>
///   prodprec <prod-id> <token | ->
///   rhs <prod-id> [sym...]
///   add-prod <lhs> [sym...]
///   rm-prod <prod-id>
///   expect <n>
/// The driver applies the patch to its working copy of the grammar source
/// and subsequent builds of that grammar carry the edited text; the
/// service's ContextCache classifies the change (layered hashing) and
/// keeps or patches the cached artifacts when the edit is conflict-local
/// or production-local.
///
/// `<grammar>` is a corpus grammar name (see listCorpusGrammars) or a
/// path ending in `.y` — the driver loads path grammars from disk and
/// passes their text as the request's inline source; parsing here is
/// IO-free. `<kind>` is a tableKindName ("lalr1", "clr1", ...).
/// `repeat=N` expands into N identical requests (the warm-cache knob).
/// `verify` runs the ArtifactVerifier over the built artifacts (Lalr1
/// kind; see verify/ArtifactVerifier.h) and fails the request on any
/// invariant violation. See docs/SERVICE.md for the full schema.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SERVICE_MANIFEST_H
#define LALR_SERVICE_MANIFEST_H

#include "grammar/GrammarEdit.h"
#include "parse/ParserKind.h"
#include "service/BuildService.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lalr {

/// One parsed manifest line.
struct ManifestEntry {
  enum class Action : uint8_t {
    Build,      ///< Request is a full build request
    Invalidate, ///< Request.GrammarName names the grammar to invalidate
    Edit,       ///< Edit applies to Request.GrammarName's working source
    Parse,      ///< a ParseService request (driver + input in the fields
                ///< below; Request carries grammar/options/deadline)
  };
  Action Act = Action::Build;
  ServiceRequest Request;
  GrammarEdit Edit;    ///< Edit only: the parsed patch
  unsigned Repeat = 1; ///< Build/Parse: expansion count
  unsigned Line = 0;   ///< 1-based source line, for diagnostics

  /// \name Parse only
  /// @{
  ParserKind Driver = ParserKind::Lr;
  /// The input sentence verbatim (or "@path" for the driver to load).
  std::string ParseInput;
  /// Run the LR driver over the dense table (the `dense` option token).
  bool ParseDense = false;
  /// @}
};

/// True when the manifest grammar token is a .y path (to be loaded by the
/// driver) rather than a corpus name.
inline bool isGrammarPath(std::string_view Token) {
  return Token.size() > 2 && Token.substr(Token.size() - 2) == ".y";
}

/// Parses manifest text. On success returns the entries in file order;
/// on the first malformed line returns std::nullopt with a "line N: ..."
/// message in \p Error.
std::optional<std::vector<ManifestEntry>>
parseManifest(std::string_view Text, std::string &Error);

/// Expands parsed entries into the flat request list a batch run
/// executes: Build entries repeat `Repeat` times, Invalidate entries
/// become markers the driver replays between batch segments. Pure
/// convenience over parseManifest for callers that only build.
std::vector<ServiceRequest>
manifestRequests(const std::vector<ManifestEntry> &Entries);

} // namespace lalr

#endif // LALR_SERVICE_MANIFEST_H
