//===- service/BuildService.cpp - Batched multi-grammar builds -----------===//

#include "service/BuildService.h"

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

using namespace lalr;

BuildService::BuildService(Options Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity) {
  // Eager pool creation keeps runBatch free of construction races when
  // batches arrive from several threads at once.
  if (Opts.Workers > 1)
    Pool = std::make_unique<ThreadPool>(Opts.Workers);
}

BuildService::~BuildService() {
  Queue.close();
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> Lock(TicketMu);
    ToJoin = std::move(Dispatcher);
  }
  if (ToJoin.joinable())
    ToJoin.join();
}

void BuildService::resolveAndExecute(const ServiceRequest &Request,
                                     ServiceResponse &Response) {
  Timer T;

  // Resolve the grammar text: inline source wins, otherwise the name is
  // looked up in the corpus registry.
  std::string_view Source = Request.Source;
  std::string Error;
  if (Source.empty()) {
    const CorpusEntry *Entry = corpusGrammarByName(Request.GrammarName);
    if (!Entry) {
      Response.Ok = false;
      Response.Error =
          "unknown grammar '" + Request.GrammarName + "' (not in the corpus "
          "registry and no inline source given)";
    } else {
      Source = Entry->Source;
    }
  }

  if (!Source.empty()) {
    bool Hit = false;
    std::shared_ptr<CachedGrammar> Entry = Cache.acquire(
        Request.GrammarName, hashGrammarSource(Source),
        [&]() -> std::optional<Grammar> {
          DiagnosticEngine Diags;
          std::optional<Grammar> G =
              parseGrammar(Source, Diags, Request.GrammarName);
          if (!G)
            Error = "grammar '" + Request.GrammarName +
                    "' failed to parse:\n" + Diags.render();
          return G;
        },
        &Hit);
    Response.CacheHit = Hit;
    if (!Entry) {
      Response.Ok = false;
      Response.Error = std::move(Error);
    } else {
      Response.Context = Entry;
      BuildOptions BO = Request.Options;
      BO.Threads = Opts.ContextThreads;
      // Builds on one grammar take turns: BuildContext memoization is
      // not itself thread-safe.
      std::lock_guard<std::mutex> BuildLock(Entry->BuildMu);
      Response.Result.emplace(BuildPipeline(Entry->Ctx, BO).run());
      Response.Ok = true;
    }
  }

  Response.WallUs = T.elapsedUs();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Requests;
    ++(Response.Ok ? Succeeded : Failed);
    RequestUs += Response.WallUs;
  }
}

std::vector<ServiceResponse>
BuildService::runBatch(std::span<const ServiceRequest> Reqs) {
  std::vector<ServiceResponse> Responses(Reqs.size());
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Batches;
  }

  // Group request indices by grammar name (first-seen order): one group
  // shares one cached context and runs in submission order, so M kinds
  // over one grammar pay one cold build; distinct groups are independent
  // and fan out across the pool.
  std::vector<std::vector<size_t>> Groups;
  std::unordered_map<std::string_view, size_t> GroupOf;
  for (size_t I = 0; I < Reqs.size(); ++I) {
    auto [It, New] = GroupOf.try_emplace(Reqs[I].GrammarName, Groups.size());
    if (New)
      Groups.emplace_back();
    Groups[It->second].push_back(I);
  }

  auto RunGroup = [&](size_t G) {
    for (size_t I : Groups[G])
      resolveAndExecute(Reqs[I], Responses[I]);
  };

  if (Pool && Groups.size() > 1) {
    // One chunk per group: ThreadPool's atomic chunk claiming becomes
    // dynamic load balancing across grammars of very different sizes.
    // Responses land in pre-sized per-request slots, so claim order does
    // not affect the output.
    std::lock_guard<std::mutex> Lock(PoolMu);
    Pool->parallelFor(
        0, Groups.size(),
        [&](size_t, size_t Lo, size_t Hi) {
          for (size_t G = Lo; G < Hi; ++G)
            RunGroup(G);
        },
        /*NumChunks=*/Groups.size());
  } else {
    for (size_t G = 0; G < Groups.size(); ++G)
      RunGroup(G);
  }
  return Responses;
}

uint64_t BuildService::submit(ServiceRequest Request) {
  uint64_t Ticket;
  {
    std::lock_guard<std::mutex> Lock(TicketMu);
    Ticket = NextTicket++;
    if (!DispatcherRunning) {
      Dispatcher = std::thread([this] { dispatcherLoop(); });
      DispatcherRunning = true;
    }
  }
  if (!Queue.push({Ticket, std::move(Request)})) {
    // Closed while shutting down: park a failed response so a racing
    // wait() is not stranded.
    ServiceResponse R;
    R.Ok = false;
    R.Error = "service is shutting down";
    std::lock_guard<std::mutex> Lock(TicketMu);
    Completed.emplace(Ticket, std::move(R));
    TicketDone.notify_all();
  }
  return Ticket;
}

ServiceResponse BuildService::wait(uint64_t Ticket) {
  std::unique_lock<std::mutex> Lock(TicketMu);
  if (Ticket == 0 || Ticket >= NextTicket) {
    ServiceResponse R;
    R.Ok = false;
    R.Error = "unknown ticket";
    return R;
  }
  TicketDone.wait(Lock, [&] { return Completed.count(Ticket) != 0; });
  auto It = Completed.find(Ticket);
  ServiceResponse R = std::move(It->second);
  Completed.erase(It);
  return R;
}

void BuildService::dispatcherLoop() {
  while (std::optional<std::pair<uint64_t, ServiceRequest>> Item = Queue.pop()) {
    ServiceResponse R;
    resolveAndExecute(Item->second, R);
    {
      std::lock_guard<std::mutex> Lock(TicketMu);
      Completed.emplace(Item->first, std::move(R));
    }
    TicketDone.notify_all();
  }
}

bool BuildService::invalidateGrammar(std::string_view GrammarName) {
  return Cache.invalidate(GrammarName);
}

ServiceStats BuildService::stats() const {
  ServiceStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S.Requests = Requests;
    S.Succeeded = Succeeded;
    S.Failed = Failed;
    S.Batches = Batches;
    S.RequestUs = RequestUs;
  }
  ContextCache::Counters C = Cache.counters();
  S.CacheHits = C.Hits;
  S.CacheMisses = C.Misses;
  S.CacheEvictions = C.Evictions;
  S.CacheInvalidations = C.Invalidations;
  S.CachedContexts = Cache.size();
  S.Aggregate.Label = "service";
  Cache.collectStats(S.Aggregate);
  return S;
}
