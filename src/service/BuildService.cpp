//===- service/BuildService.cpp - Batched multi-grammar builds -----------===//

#include "service/BuildService.h"

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <chrono>

using namespace lalr;

namespace {

/// Arms the request's deadline on its token (creating one when absent).
/// Called at acceptance time — submit() for streaming requests, so queue
/// wait counts against the deadline — and again idempotently at execution
/// (a token that already has a deadline keeps it).
void armDeadline(ServiceRequest &Request, double DefaultDeadlineMs) {
  double Ms = Request.DeadlineMs > 0 ? Request.DeadlineMs : DefaultDeadlineMs;
  if (Ms <= 0)
    return;
  if (!Request.Options.Cancel)
    Request.Options.Cancel = CancellationToken::withDeadlineMs(Ms);
  else if (!Request.Options.Cancel->hasDeadline())
    Request.Options.Cancel->setDeadlineMs(Ms);
}

} // namespace

BuildService::BuildService(Options Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity), Queue(Opts.QueueDepth) {
  // Eager pool creation keeps runBatch free of construction races when
  // batches arrive from several threads at once.
  if (Opts.Workers > 1)
    Pool = std::make_unique<ThreadPool>(Opts.Workers);
}

BuildService::~BuildService() {
  Queue.close();
  std::thread ToJoin;
  {
    MutexLock Lock(TicketMu);
    ToJoin = std::move(Dispatcher);
  }
  if (ToJoin.joinable())
    ToJoin.join();
}

void BuildService::resolveAndExecute(const ServiceRequest &Request,
                                     ServiceResponse &Response) {
  Timer T;

  BuildOptions BO = Request.Options;
  BO.Threads = Opts.ContextThreads;
  BO.Verify = BO.Verify || Opts.VerifyBuilds;
  BO.Limits = mergeBuildLimits(BO.Limits, Opts.DefaultLimits);
  // Streaming requests were armed at submit() (queue wait counts); batch
  // requests are armed here, at execution = acceptance.
  if (!BO.Cancel || !BO.Cancel->hasDeadline()) {
    ServiceRequest Armed;
    Armed.DeadlineMs = Request.DeadlineMs;
    Armed.Options.Cancel = BO.Cancel;
    armDeadline(Armed, Opts.DefaultDeadlineMs);
    BO.Cancel = Armed.Options.Cancel;
  }

  bool BuildRanOnEntry = false;
  try {
    failPoint("service-execute");

    // Load shedding: a request whose caller already gave up (deadline
    // passed while queued, or token cancelled) is answered without
    // resolving or building anything.
    if (BO.Cancel && BO.Cancel->deadlineExpired()) {
      Response.Status = BuildStatus::deadlineExceeded(
          "deadline expired before the build started");
    } else if (BO.Cancel && BO.Cancel->cancelRequested()) {
      Response.Status = BuildStatus::cancelled();
    } else {
      // Resolve the grammar text: inline source wins, otherwise the name
      // is looked up in the corpus registry.
      std::string_view Source = Request.Source;
      std::string Error;
      if (Source.empty()) {
        const CorpusEntry *Entry = corpusGrammarByName(Request.GrammarName);
        if (!Entry)
          Error = "unknown grammar '" + Request.GrammarName +
                  "' (not in the corpus registry and no inline source given)";
        else
          Source = Entry->Source;
      }

      if (Source.empty()) {
        Response.Status = BuildStatus::grammarError(std::move(Error));
      } else {
        bool Hit = false;
        std::shared_ptr<CachedGrammar> Entry = Cache.acquire(
            Request.GrammarName, hashGrammarSource(Source),
            [&]() -> std::optional<Grammar> {
              DiagnosticEngine Diags;
              std::optional<Grammar> G =
                  parseGrammar(Source, Diags, Request.GrammarName);
              if (!G)
                Error = "grammar '" + Request.GrammarName +
                        "' failed to parse:\n" + Diags.render();
              return G;
            },
            &Hit);
        Response.CacheHit = Hit;
        if (!Entry) {
          Response.Status = BuildStatus::grammarError(std::move(Error));
        } else {
          Response.Context = Entry;
          // Builds on one grammar take turns: BuildContext memoization is
          // not itself thread-safe.
          MutexLock BuildLock(Entry->BuildMu);
          BuildRanOnEntry = true;
          Response.Result.emplace(BuildPipeline(Entry->Ctx, BO).run());
          Response.Status = Response.Result->Status;
        }
      }
    }
  } catch (const BuildAbort &Abort) {
    // Injected service-execute faults (and any abort escaping outside the
    // pipeline's own catch) land here as structured failures.
    Response.Status = Abort.status();
  } catch (const std::exception &E) {
    Response.Status = BuildStatus::internal(E.what());
  }

  Response.Ok = Response.Status.ok();
  if (!Response.Ok) {
    Response.Error = Response.Status.Message;
    Response.Result.reset(); // failed builds carry no (empty) table
  }

  Response.WallUs = T.elapsedUs();
  {
    MutexLock Lock(StatsMu);
    ++Requests;
    ++(Response.Ok ? Succeeded : Failed);
    switch (Response.Status.Code) {
    case BuildStatusCode::DeadlineExceeded:
      ++Expired;
      break;
    case BuildStatusCode::Cancelled:
      ++Cancelled;
      break;
    case BuildStatusCode::LimitExceeded:
      ++LimitKilled;
      break;
    default:
      break;
    }
    // A pipeline run that aborted after acquiring a cached entry dropped
    // that entry's memoized artifacts (BuildPipeline invalidates on
    // abort) — attribute the invalidation to the abort, not the cache.
    if (BuildRanOnEntry && !Response.Status.ok())
      ++AbortInvalidations;
    RequestUs += Response.WallUs;
  }
}

std::vector<ServiceResponse>
BuildService::runBatch(std::span<const ServiceRequest> Reqs) {
  std::vector<ServiceResponse> Responses(Reqs.size());
  {
    MutexLock Lock(StatsMu);
    ++Batches;
  }

  // Group request indices by grammar name (first-seen order): one group
  // shares one cached context and runs in submission order, so M kinds
  // over one grammar pay one cold build; distinct groups are independent
  // and fan out across the pool.
  std::vector<std::vector<size_t>> Groups;
  std::unordered_map<std::string_view, size_t> GroupOf;
  for (size_t I = 0; I < Reqs.size(); ++I) {
    auto [It, New] = GroupOf.try_emplace(Reqs[I].GrammarName, Groups.size());
    if (New)
      Groups.emplace_back();
    Groups[It->second].push_back(I);
  }

  auto RunGroup = [&](size_t G) {
    for (size_t I : Groups[G])
      resolveAndExecute(Reqs[I], Responses[I]);
  };

  if (Pool && Groups.size() > 1) {
    // One chunk per group: ThreadPool's atomic chunk claiming becomes
    // dynamic load balancing across grammars of very different sizes.
    // Responses land in pre-sized per-request slots, so claim order does
    // not affect the output.
    MutexLock Lock(PoolMu);
    Pool->parallelFor(
        0, Groups.size(),
        [&](size_t, size_t Lo, size_t Hi) {
          for (size_t G = Lo; G < Hi; ++G)
            RunGroup(G);
        },
        /*NumChunks=*/Groups.size());
  } else {
    for (size_t G = 0; G < Groups.size(); ++G)
      RunGroup(G);
  }
  return Responses;
}

uint64_t BuildService::submit(ServiceRequest Request) {
  uint64_t Ticket;
  {
    MutexLock Lock(TicketMu);
    Ticket = NextTicket++;
    if (!DispatcherRunning) {
      Dispatcher = std::thread([this] { dispatcherLoop(); });
      DispatcherRunning = true;
    }
  }

  // Acceptance is now: the deadline clock starts here, so time spent
  // queued behind slow builds counts against it and the dispatcher sheds
  // requests that expired while waiting.
  armDeadline(Request, Opts.DefaultDeadlineMs);

  bool Pushed;
  bool QueueFull = false;
  if (Opts.QueueDepth == 0) {
    Pushed = Queue.push({Ticket, std::move(Request)});
  } else {
    // Bounded mode: wait at most SubmitTimeoutMs for space, then shed.
    // Backpressure with a bound beats unbounded memory growth when
    // producers outrun the dispatcher.
    Pushed = Queue.pushFor(
        {Ticket, std::move(Request)},
        std::chrono::duration<double, std::milli>(Opts.SubmitTimeoutMs));
    QueueFull = !Pushed && !Queue.closed();
  }

  if (!Pushed) {
    // Shed (queue stayed full) or closed while shutting down: park a
    // failed response so a racing wait() is not stranded.
    ServiceResponse R;
    R.Ok = false;
    if (QueueFull) {
      R.Status = BuildStatus::deadlineExceeded(
          "submission rejected: queue full (load shed)");
      MutexLock Lock(StatsMu);
      ++Rejected;
    } else {
      R.Status = BuildStatus::internal("service is shutting down");
    }
    R.Error = R.Status.Message;
    MutexLock Lock(TicketMu);
    Completed.emplace(Ticket, std::move(R));
    TicketDone.notifyAll();
  }
  return Ticket;
}

ServiceResponse BuildService::wait(uint64_t Ticket) {
  MutexLock Lock(TicketMu);
  if (Ticket == 0 || Ticket >= NextTicket) {
    ServiceResponse R;
    R.Ok = false;
    R.Error = "unknown ticket";
    return R;
  }
  TicketDone.wait(Lock, [&] { return Completed.count(Ticket) != 0; });
  auto It = Completed.find(Ticket);
  ServiceResponse R = std::move(It->second);
  Completed.erase(It);
  return R;
}

void BuildService::dispatcherLoop() {
  while (std::optional<std::pair<uint64_t, ServiceRequest>> Item = Queue.pop()) {
    ServiceResponse R;
    resolveAndExecute(Item->second, R);
    {
      MutexLock Lock(TicketMu);
      Completed.emplace(Item->first, std::move(R));
    }
    TicketDone.notifyAll();
  }
}

bool BuildService::invalidateGrammar(std::string_view GrammarName) {
  return Cache.invalidate(GrammarName);
}

ServiceStats BuildService::stats() const {
  ServiceStats S;
  {
    MutexLock Lock(StatsMu);
    S.Requests = Requests;
    S.Succeeded = Succeeded;
    S.Failed = Failed;
    S.Batches = Batches;
    S.Rejected = Rejected;
    S.Expired = Expired;
    S.Cancelled = Cancelled;
    S.LimitKilled = LimitKilled;
    S.CacheInvalidationsAbort = AbortInvalidations;
    S.RequestUs = RequestUs;
  }
  ContextCache::Counters C = Cache.counters();
  S.CacheHits = C.Hits;
  S.CacheMisses = C.Misses;
  S.CacheEvictions = C.Evictions;
  S.CacheInvalidations = C.Invalidations;
  S.CachePatched = C.Patched;
  S.CacheInvalidationsSource = C.InvalidationsSource;
  S.CacheInvalidationsExplicit = C.InvalidationsExplicit;
  S.CachedContexts = Cache.size();
  S.Aggregate.Label = "service";
  Cache.collectStats(S.Aggregate);
  return S;
}
