//===- support/Cancellation.cpp - Deadlines, limits, build status ---------===//

#include "support/Cancellation.h"

#include <cinttypes>
#include <cstdio>

namespace lalr {

const char *buildStatusCodeName(BuildStatusCode Code) {
  switch (Code) {
  case BuildStatusCode::Ok:
    return "ok";
  case BuildStatusCode::GrammarError:
    return "grammar-error";
  case BuildStatusCode::LimitExceeded:
    return "limit-exceeded";
  case BuildStatusCode::DeadlineExceeded:
    return "deadline-exceeded";
  case BuildStatusCode::Cancelled:
    return "cancelled";
  case BuildStatusCode::Internal:
    return "internal";
  }
  return "internal";
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// mirrors the hand-rolled emitters in PipelineStats/ServiceStats.
void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C & 0xff);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

} // namespace

std::string BuildStatus::toJson() const {
  std::string Out = "{\"code\":\"";
  Out += buildStatusCodeName(Code);
  Out += '"';
  if (!Which.empty()) {
    Out += ",\"which\":";
    appendJsonString(Out, Which);
  }
  if (Observed || Limit) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), ",\"observed\":%" PRIu64 ",\"limit\":%" PRIu64,
                  Observed, Limit);
    Out += Buf;
  }
  if (!Message.empty()) {
    Out += ",\"message\":";
    appendJsonString(Out, Message);
  }
  Out += '}';
  return Out;
}

BuildStatus BuildStatus::grammarError(std::string Message) {
  BuildStatus S;
  S.Code = BuildStatusCode::GrammarError;
  S.Message = std::move(Message);
  return S;
}

BuildStatus BuildStatus::limitExceeded(std::string Which, uint64_t Observed,
                                       uint64_t Limit) {
  BuildStatus S;
  S.Code = BuildStatusCode::LimitExceeded;
  S.Which = std::move(Which);
  S.Observed = Observed;
  S.Limit = Limit;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "build limit exceeded: %s = %" PRIu64 " > limit %" PRIu64,
                S.Which.c_str(), Observed, Limit);
  S.Message = Buf;
  return S;
}

BuildStatus BuildStatus::deadlineExceeded(std::string Message) {
  BuildStatus S;
  S.Code = BuildStatusCode::DeadlineExceeded;
  S.Message = Message.empty() ? "build deadline exceeded" : std::move(Message);
  return S;
}

BuildStatus BuildStatus::cancelled() {
  BuildStatus S;
  S.Code = BuildStatusCode::Cancelled;
  S.Message = "build cancelled";
  return S;
}

BuildStatus BuildStatus::internal(std::string Message) {
  BuildStatus S;
  S.Code = BuildStatusCode::Internal;
  S.Message = Message.empty() ? "internal error" : std::move(Message);
  return S;
}

void BuildGuard::pollSlow() const {
  if (Token && Token->cancelRequested())
    throw BuildAbort(BuildStatus::cancelled());
  checkDeadline();
}

void BuildGuard::checkDeadline() const {
  if (Limits_.MaxWallMs > 0) {
    std::chrono::duration<double, std::milli> Elapsed =
        std::chrono::steady_clock::now() - Start;
    if (Elapsed.count() > Limits_.MaxWallMs) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "wall budget exceeded: %.1f ms elapsed > %.1f ms budget",
                    Elapsed.count(), Limits_.MaxWallMs);
      throw BuildAbort(BuildStatus::deadlineExceeded(Buf));
    }
  }
  if (Token && Token->deadlineExpired())
    throw BuildAbort(BuildStatus::deadlineExceeded("request deadline exceeded"));
}

} // namespace lalr
