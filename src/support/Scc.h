//===- support/Scc.h - Strongly connected components ------------*- C++ -*-===//
///
/// \file
/// Tarjan's strongly-connected-components algorithm over an adjacency-list
/// digraph. The look-ahead solver has its own fused Tarjan traversal (the
/// paper's "digraph" algorithm); this standalone version is used for
/// analysis and reporting — counting nontrivial SCCs in the reads and
/// includes relations (Table 2) and for the not-LR(k) diagnosis.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_SCC_H
#define LALR_SUPPORT_SCC_H

#include "support/Csr.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lalr {

/// Result of an SCC decomposition of a digraph with N nodes.
struct SccResult {
  /// Component index of each node; components are numbered in reverse
  /// topological order (a component's successors have smaller indices).
  std::vector<uint32_t> ComponentOf;
  /// Members of each component.
  std::vector<std::vector<uint32_t>> Components;

  size_t componentCount() const { return Components.size(); }

  /// A component is nontrivial if it has >= 2 nodes or a self-loop; the
  /// self-loop information must be supplied by the caller via
  /// \c countNontrivial.
  size_t countNontrivial(const std::vector<std::vector<uint32_t>> &Adj) const;
  size_t countNontrivial(const CsrRelation &Adj) const;
};

/// Computes the SCCs of the digraph given by \p Adj (Adj[u] lists the
/// successors of u). Iterative Tarjan; safe for large graphs.
SccResult computeSccs(const std::vector<std::vector<uint32_t>> &Adj);

/// CSR overload — identical traversal over the flat-edge representation
/// the DP relations use (same component numbering for the same graph).
SccResult computeSccs(const CsrRelation &Adj);

} // namespace lalr

#endif // LALR_SUPPORT_SCC_H
