//===- support/SetSlab.h - Arena-backed bank of bit sets --------*- C++ -*-===//
//
// Part of the lalr project, a reproduction of DeRemer & Pennello,
// "Efficient computation of LALR(1) look-ahead sets" (SIGPLAN '79).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bank of N fixed-width bit sets packed into one contiguous 64-byte-
/// aligned arena. The DeRemer–Pennello solvers spend essentially all of
/// their time unioning terminal sets; storing each set as its own
/// heap-allocated vector (std::vector<BitSet>) makes every union a pointer
/// chase into a cold cache line. The slab stores row i at words
/// [i * wordsPerSet(), (i+1) * wordsPerSet()), so the solvers' sequential
/// access patterns stream through one allocation, and the union loop is a
/// branchless word-at-a-time OR whose "did anything change" answer is
/// accumulated as an XOR diff — plain uint64_t code that auto-vectorizes
/// (AVX2/NEON) without intrinsics.
///
/// The arena size is known up front from the relation census (number of
/// nonterminal transitions / reduction slots x number of terminals), so one
/// allocation serves the whole family, and its byte size feeds the
/// BuildLimits::MaxSlabBytes memory ceiling before anything is allocated.
/// Process-wide live-byte/allocation counters are exported for tests and
/// the slab_bytes pipeline counter.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_SETSLAB_H
#define LALR_SUPPORT_SETSLAB_H

#include "support/BitSet.h"

#include <cstdint>
#include <cstddef>

namespace lalr {

/// N bit sets of a common universe in one aligned arena. Rows are
/// addressed by index; reads hand out SetView, so consumers are agnostic
/// to slab vs BitSet storage. Copyable (deep copy) and movable.
class SetSlab {
public:
  /// The arena alignment: one cache line, so no row's first word straddles
  /// a line and the vectorized union loop starts aligned.
  static constexpr size_t Alignment = 64;

  SetSlab() = default;

  /// A slab of \p NumSets empty sets over \p NumBits bits each. Fires the
  /// "slab" failpoint and allocates the whole arena up front.
  SetSlab(size_t NumSets, size_t NumBits);

  SetSlab(const SetSlab &Other);
  SetSlab &operator=(const SetSlab &Other);
  SetSlab(SetSlab &&Other) noexcept;
  SetSlab &operator=(SetSlab &&Other) noexcept;
  ~SetSlab();

  /// Number of sets in the bank.
  size_t size() const { return NumSets; }

  /// Universe size of every set.
  size_t universe() const { return NumBits; }

  /// Words per row (ceil(universe / 64); rows are not padded further, so
  /// the union loop touches no dead words).
  size_t wordsPerSet() const { return WordsPerSet; }

  /// Arena footprint in bytes (the single allocation backing the bank).
  size_t bytes() const { return ArenaBytes; }

  /// The byte size a (NumSets, NumBits) slab will allocate; lets callers
  /// check BuildLimits::MaxSlabBytes from the census before constructing.
  static size_t bytesFor(size_t NumSets, size_t NumBits) {
    size_t Raw = NumSets * ((NumBits + 63) / 64) * sizeof(uint64_t);
    return (Raw + Alignment - 1) / Alignment * Alignment;
  }

  /// Read-only view of row \p Row.
  SetView operator[](size_t Row) const {
    assert(Row < NumSets && "SetSlab row out of range");
    return SetView(Arena + Row * WordsPerSet, NumBits);
  }

  /// Mutable word pointer of row \p Row (wordsPerSet() words).
  uint64_t *rowWords(size_t Row) {
    assert(Row < NumSets && "SetSlab row out of range");
    return Arena + Row * WordsPerSet;
  }
  const uint64_t *rowWords(size_t Row) const {
    assert(Row < NumSets && "SetSlab row out of range");
    return Arena + Row * WordsPerSet;
  }

  /// Sets bit \p Bit of row \p Row; returns true if previously clear.
  bool set(size_t Row, size_t Bit) {
    assert(Bit < NumBits && "SetSlab bit out of range");
    uint64_t &W = rowWords(Row)[Bit / 64];
    uint64_t Mask = uint64_t(1) << (Bit % 64);
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  /// Clears bit \p Bit of row \p Row.
  void reset(size_t Row, size_t Bit) {
    assert(Bit < NumBits && "SetSlab bit out of range");
    rowWords(Row)[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  bool test(size_t Row, size_t Bit) const {
    return (*this)[Row].test(Bit);
  }

  size_t count(size_t Row) const { return (*this)[Row].count(); }

  /// Unions row \p Src into row \p Dst; returns true if any bit was
  /// added. The hot operation of the digraph algorithm: a stride-unrolled
  /// branchless OR over contiguous words, accumulating the change mask.
  bool unionInto(size_t Dst, size_t Src) {
    assert(Dst < NumSets && Src < NumSets && "SetSlab row out of range");
    return unionWords(rowWords(Dst), rowWords(Src), WordsPerSet);
  }

  /// Unions an external view (same universe) into row \p Dst.
  bool unionInto(size_t Dst, SetView Src) {
    assert(Src.size() == NumBits && "SetSlab universe mismatch");
    return unionWords(rowWords(Dst), Src.words(), WordsPerSet);
  }

  /// Unions every row of \p Other into the matching row of this slab.
  /// Because both banks share one geometry, the row boundaries need no
  /// per-row handling: the kernel runs once over the two arenas as a
  /// single contiguous span — the fused form no per-set representation
  /// can express. Returns true if any bit was added anywhere.
  bool unionFrom(const SetSlab &Other) {
    assert(NumSets == Other.NumSets && NumBits == Other.NumBits &&
           "SetSlab geometry mismatch");
    if (NumSets == 0)
      return false;
    return unionWords(Arena, Other.Arena, NumSets * WordsPerSet);
  }

  /// Copies row \p Src over row \p Dst.
  void copyRow(size_t Dst, size_t Src) {
    assert(Dst < NumSets && Src < NumSets && "SetSlab row out of range");
    uint64_t *D = rowWords(Dst);
    const uint64_t *S = rowWords(Src);
    for (size_t I = 0; I != WordsPerSet; ++I)
      D[I] = S[I];
  }

  /// Copies row \p Src of another slab (same universe) over row \p Dst.
  /// The cross-bank form the incremental patch path uses to pull solved
  /// rows from a previous build's slab into the new one.
  void copyFrom(size_t Dst, const SetSlab &Other, size_t Src) {
    assert(Other.NumBits == NumBits && "SetSlab universe mismatch");
    assert(Dst < NumSets && Src < Other.NumSets &&
           "SetSlab row out of range");
    uint64_t *D = rowWords(Dst);
    const uint64_t *S = Other.rowWords(Src);
    for (size_t I = 0; I != WordsPerSet; ++I)
      D[I] = S[I];
  }

  /// Zeroes row \p Row (row-granular reset for in-place patching).
  void resetRow(size_t Row) {
    uint64_t *D = rowWords(Row);
    for (size_t I = 0; I != WordsPerSet; ++I)
      D[I] = 0;
  }

  /// True when row \p Dst equals row \p Src of \p Other word-for-word.
  bool rowEquals(size_t Dst, const SetSlab &Other, size_t Src) const {
    assert(Other.NumBits == NumBits && "SetSlab universe mismatch");
    const uint64_t *D = rowWords(Dst);
    const uint64_t *S = Other.rowWords(Src);
    for (size_t I = 0; I != WordsPerSet; ++I)
      if (D[I] != S[I])
        return false;
    return true;
  }

  /// Copies an external view (same universe) over row \p Dst.
  void assignRow(size_t Dst, SetView Src) {
    assert(Src.size() == NumBits && "SetSlab universe mismatch");
    uint64_t *D = rowWords(Dst);
    for (size_t I = 0; I != WordsPerSet; ++I)
      D[I] = Src.words()[I];
  }

  bool operator==(const SetSlab &Other) const;
  bool operator!=(const SetSlab &Other) const { return !(*this == Other); }

  /// The word-level union kernel: OR \p N words of \p Src into \p Dst,
  /// returning whether any word changed. Unrolled by four so the compiler
  /// vectorizes it; the change test is an XOR-diff accumulated across the
  /// loop instead of a per-word branch.
  static bool unionWords(uint64_t *Dst, const uint64_t *Src, size_t N) {
    uint64_t Diff = 0;
    size_t I = 0;
    for (size_t E4 = N & ~size_t(3); I != E4; I += 4) {
      uint64_t A0 = Dst[I + 0] | Src[I + 0];
      uint64_t A1 = Dst[I + 1] | Src[I + 1];
      uint64_t A2 = Dst[I + 2] | Src[I + 2];
      uint64_t A3 = Dst[I + 3] | Src[I + 3];
      Diff |= (A0 ^ Dst[I + 0]) | (A1 ^ Dst[I + 1]) | (A2 ^ Dst[I + 2]) |
              (A3 ^ Dst[I + 3]);
      Dst[I + 0] = A0;
      Dst[I + 1] = A1;
      Dst[I + 2] = A2;
      Dst[I + 3] = A3;
    }
    for (; I != N; ++I) {
      uint64_t A = Dst[I] | Src[I];
      Diff |= A ^ Dst[I];
      Dst[I] = A;
    }
    return Diff != 0;
  }

  /// \name Process-wide arena accounting
  /// Live bytes across all slabs and total arena allocations performed;
  /// observability for tests and the slab_bytes counter.
  /// @{
  static uint64_t liveBytes();
  static uint64_t totalAllocations();
  /// @}

private:
  void allocate();
  void release();

  size_t NumSets = 0;
  size_t NumBits = 0;
  size_t WordsPerSet = 0;
  size_t ArenaBytes = 0;
  uint64_t *Arena = nullptr;
};

} // namespace lalr

#endif // LALR_SUPPORT_SETSLAB_H
