//===- support/Csr.h - Compressed sparse row adjacency ----------*- C++ -*-===//
//
// Part of the lalr project, a reproduction of DeRemer & Pennello,
// "Efficient computation of LALR(1) look-ahead sets" (SIGPLAN '79).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compressed-sparse-row digraph: row i's successors live in
/// Edges[Offsets[i] .. Offsets[i+1]), sorted ascending. This replaces the
/// ragged std::vector<std::vector<uint32_t>> the DP relations used to be —
/// one flat allocation instead of one per row, so the solvers' edge walks
/// stream sequentially instead of chasing row pointers. Rows are plain
/// spans; the struct is aggregate-like on purpose so tests can corrupt
/// copies directly (the ArtifactVerifier must catch malformed CSR too).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_CSR_H
#define LALR_SUPPORT_CSR_H

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace lalr {

/// CSR adjacency over nodes [0, rows()). Offsets always has rows()+1
/// entries (a default-constructed relation has the single 0 and no rows).
struct CsrRelation {
  std::vector<uint32_t> Offsets{0};
  std::vector<uint32_t> Edges;

  /// Number of rows (nodes).
  size_t rows() const { return Offsets.size() - 1; }

  /// Total edge count.
  size_t edgeCount() const { return Edges.size(); }

  /// Successors of \p Row, ascending.
  std::span<const uint32_t> row(size_t Row) const {
    assert(Row + 1 < Offsets.size() && "CsrRelation row out of range");
    return {Edges.data() + Offsets[Row],
            Edges.data() + Offsets[Row + 1]};
  }

  size_t rowSize(size_t Row) const {
    assert(Row + 1 < Offsets.size() && "CsrRelation row out of range");
    return Offsets[Row + 1] - Offsets[Row];
  }

  /// Appends one row (used by builders that discover rows in order).
  void appendRow(const uint32_t *Begin, const uint32_t *End) {
    Edges.insert(Edges.end(), Begin, End);
    Offsets.push_back(static_cast<uint32_t>(Edges.size()));
  }

  /// True when the shape invariants hold: Offsets non-empty, starts at 0,
  /// monotone, and ends at Edges.size(). The verifier gates every
  /// dereferencing check on this so corrupt artifacts are reported, not
  /// crashed on.
  bool wellFormed() const {
    if (Offsets.empty() || Offsets.front() != 0 ||
        Offsets.back() != Edges.size())
      return false;
    for (size_t I = 1; I < Offsets.size(); ++I)
      if (Offsets[I] < Offsets[I - 1])
        return false;
    return true;
  }

  /// Converts from a ragged adjacency (rows copied verbatim).
  static CsrRelation fromRows(const std::vector<std::vector<uint32_t>> &Rows) {
    CsrRelation R;
    size_t Total = 0;
    for (const auto &Row : Rows)
      Total += Row.size();
    R.Offsets.reserve(Rows.size() + 1);
    R.Edges.reserve(Total);
    for (const auto &Row : Rows)
      R.appendRow(Row.data(), Row.data() + Row.size());
    return R;
  }

  /// Expands back into a ragged adjacency (tests, baselines).
  std::vector<std::vector<uint32_t>> toRows() const {
    std::vector<std::vector<uint32_t>> Out(rows());
    for (size_t I = 0, E = rows(); I != E; ++I) {
      auto R = row(I);
      Out[I].assign(R.begin(), R.end());
    }
    return Out;
  }

  bool operator==(const CsrRelation &Other) const {
    return Offsets == Other.Offsets && Edges == Other.Edges;
  }
  bool operator!=(const CsrRelation &Other) const {
    return !(*this == Other);
  }
};

} // namespace lalr

#endif // LALR_SUPPORT_CSR_H
