//===- support/Diagnostics.cpp - Source locations and diagnostics ----------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace lalr;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    OS << severityName(D.Severity) << ": " << D.Message << '\n';
  }
  return OS.str();
}
