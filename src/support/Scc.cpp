//===- support/Scc.cpp - Strongly connected components ----------------------===//

#include "support/Scc.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

namespace {

/// Explicit stack frame for the iterative Tarjan traversal.
struct Frame {
  uint32_t Node;
  size_t EdgeIdx;
};

/// The traversal, generic over the adjacency representation: \p NumNodes
/// nodes, \p Successors(u) returning an indexable range of successor ids.
template <typename SuccessorsFn>
SccResult computeSccsImpl(size_t NumNodes, SuccessorsFn Successors) {
  const size_t N = NumNodes;
  constexpr uint32_t Unvisited = UINT32_MAX;

  SccResult Result;
  Result.ComponentOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  std::vector<Frame> CallStack;
  uint32_t NextIndex = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      uint32_t U = F.Node;
      auto Succ = Successors(U);
      if (F.EdgeIdx < Succ.size()) {
        uint32_t V = Succ[F.EdgeIdx++];
        if (Index[V] == Unvisited) {
          Index[V] = LowLink[V] = NextIndex++;
          Stack.push_back(V);
          OnStack[V] = true;
          CallStack.push_back({V, 0});
        } else if (OnStack[V]) {
          LowLink[U] = std::min(LowLink[U], Index[V]);
        }
        continue;
      }
      // All successors of U processed: maybe pop a component, then return
      // the low-link to the parent frame.
      if (LowLink[U] == Index[U]) {
        uint32_t Comp = static_cast<uint32_t>(Result.Components.size());
        Result.Components.emplace_back();
        uint32_t V;
        do {
          V = Stack.back();
          Stack.pop_back();
          OnStack[V] = false;
          Result.ComponentOf[V] = Comp;
          Result.Components[Comp].push_back(V);
        } while (V != U);
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        uint32_t Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[U]);
      }
    }
  }
  return Result;
}

} // namespace

SccResult lalr::computeSccs(const std::vector<std::vector<uint32_t>> &Adj) {
  return computeSccsImpl(Adj.size(),
                         [&](uint32_t U) -> const std::vector<uint32_t> & {
                           return Adj[U];
                         });
}

SccResult lalr::computeSccs(const CsrRelation &Adj) {
  return computeSccsImpl(Adj.rows(),
                         [&](uint32_t U) { return Adj.row(U); });
}

size_t SccResult::countNontrivial(
    const std::vector<std::vector<uint32_t>> &Adj) const {
  size_t Count = 0;
  for (const std::vector<uint32_t> &Comp : Components) {
    if (Comp.size() >= 2) {
      ++Count;
      continue;
    }
    // Singleton: nontrivial only with a self-loop.
    uint32_t U = Comp.front();
    if (std::find(Adj[U].begin(), Adj[U].end(), U) != Adj[U].end())
      ++Count;
  }
  return Count;
}

size_t SccResult::countNontrivial(const CsrRelation &Adj) const {
  size_t Count = 0;
  for (const std::vector<uint32_t> &Comp : Components) {
    if (Comp.size() >= 2) {
      ++Count;
      continue;
    }
    uint32_t U = Comp.front();
    auto Row = Adj.row(U);
    if (std::find(Row.begin(), Row.end(), U) != Row.end())
      ++Count;
  }
  return Count;
}
