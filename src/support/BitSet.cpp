//===- support/BitSet.cpp - Dynamic bit set --------------------------------===//

#include "support/BitSet.h"

#include <bit>

using namespace lalr;

size_t BitSet::count() const {
  size_t N = 0;
  for (uint64_t W : Words)
    N += std::popcount(W);
  return N;
}

size_t BitSet::findNext(size_t From) const {
  if (From >= NumBits)
    return NumBits;
  size_t WordIdx = From / 64;
  uint64_t W = Words[WordIdx] >> (From % 64);
  if (W)
    return From + std::countr_zero(W);
  for (++WordIdx; WordIdx < Words.size(); ++WordIdx)
    if (Words[WordIdx])
      return WordIdx * 64 + std::countr_zero(Words[WordIdx]);
  return NumBits;
}

std::vector<size_t> BitSet::toVector() const {
  std::vector<size_t> Out;
  Out.reserve(count());
  for (size_t Idx : *this)
    Out.push_back(Idx);
  return Out;
}
