//===- support/BitSet.cpp - Dynamic bit set --------------------------------===//

#include "support/BitSet.h"

using namespace lalr;

std::vector<size_t> BitSet::toVector() const {
  std::vector<size_t> Out;
  Out.reserve(count());
  for (size_t Idx : *this)
    Out.push_back(Idx);
  return Out;
}

std::vector<size_t> SetView::toVector() const {
  std::vector<size_t> Out;
  Out.reserve(count());
  for (size_t Idx : *this)
    Out.push_back(Idx);
  return Out;
}
