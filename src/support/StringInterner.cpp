//===- support/StringInterner.cpp - String uniquing ------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace lalr;

uint32_t StringInterner::intern(std::string_view Str) {
  auto It = Ids.find(std::string(Str));
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Spellings.size());
  Spellings.emplace_back(Str);
  Ids.emplace(Spellings.back(), Id);
  return Id;
}

uint32_t StringInterner::lookup(std::string_view Str) const {
  auto It = Ids.find(std::string(Str));
  return It == Ids.end() ? NotFound : It->second;
}

const std::string &StringInterner::spelling(uint32_t Id) const {
  assert(Id < Spellings.size() && "invalid interned id");
  return Spellings[Id];
}
