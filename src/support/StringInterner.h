//===- support/StringInterner.h - String uniquing ---------------*- C++ -*-===//
///
/// \file
/// Maps symbol spellings to dense integer ids and back. Grammar symbols are
/// referred to by id everywhere past the front end, so interning happens once
/// at grammar construction time.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_STRINGINTERNER_H
#define LALR_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lalr {

/// Assigns consecutive uint32_t ids to distinct strings.
class StringInterner {
public:
  /// Returns the id of \p Str, interning it if new.
  uint32_t intern(std::string_view Str);

  /// Returns the id of \p Str if it is already interned, or NotFound.
  uint32_t lookup(std::string_view Str) const;

  /// Returns the spelling for \p Id. \p Id must be a valid id.
  const std::string &spelling(uint32_t Id) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return Spellings.size(); }

  static constexpr uint32_t NotFound = UINT32_MAX;

private:
  std::unordered_map<std::string, uint32_t> Ids;
  std::vector<std::string> Spellings;
};

} // namespace lalr

#endif // LALR_SUPPORT_STRINGINTERNER_H
