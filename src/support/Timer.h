//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
///
/// \file
/// Minimal steady-clock stopwatch for the benchmark harnesses. The table
/// benches report medians of repeated runs; google-benchmark is used for the
/// micro benches only.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_TIMER_H
#define LALR_SUPPORT_TIMER_H

#include <algorithm>
#include <chrono>
#include <vector>

namespace lalr {

/// Steady-clock stopwatch measuring elapsed microseconds.
class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction/reset, in microseconds.
  double elapsedUs() const {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(Now - Start).count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Runs \p Fn \p Reps times and returns the median elapsed time in
/// microseconds. \p Fn must be idempotent.
template <typename FnT> double medianTimeUs(int Reps, FnT &&Fn) {
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    Fn();
    Samples.push_back(T.elapsedUs());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace lalr

#endif // LALR_SUPPORT_TIMER_H
