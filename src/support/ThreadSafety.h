//===- support/ThreadSafety.h - Clang thread-safety wrappers ----*- C++ -*-===//
///
/// \file
/// Macros wrapping Clang's thread-safety-analysis attributes plus
/// capability-annotated Mutex / MutexLock / CondVar types over the
/// standard primitives. Every lock-guarded member and locking function in
/// the concurrent layers (support/ThreadPool, support/FailPoint,
/// service/RequestQueue, service/ContextCache, service/BuildService) is
/// annotated through these, and the CI static-analysis job compiles the
/// tree with `-Wthread-safety -Werror`, so "guarded by Mu" stops being a
/// comment and becomes a compile error when violated. Under GCC (or any
/// compiler without the capability attributes) every macro expands to
/// nothing and the wrappers degrade to thin std::mutex /
/// std::condition_variable shims, so the annotations cost nothing where
/// they cannot be checked.
///
/// Conventions (see docs/STATIC_ANALYSIS.md):
///   * members guarded by a mutex carry LALR_GUARDED_BY(Mu) instead of a
///     "guarded by Mu" comment;
///   * functions that must be entered with a lock held carry
///     LALR_REQUIRES(Mu) (the Locked-suffix helpers);
///   * public entry points that take a lock themselves carry
///     LALR_EXCLUDES(Mu) so self-deadlock is a compile error;
///   * lock-free atomics are deliberately unannotated — the analysis has
///     no capability model for them (support/Cancellation.h is all
///     atomics and therefore annotation-free).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_THREADSAFETY_H
#define LALR_SUPPORT_THREADSAFETY_H

#include "support/LockRank.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LALR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LALR_THREAD_ANNOTATION
#define LALR_THREAD_ANNOTATION(x) // no thread-safety analysis available
#endif

/// Declares a type to be a capability (lockable).
#define LALR_CAPABILITY(x) LALR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define LALR_SCOPED_CAPABILITY LALR_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member may only be read or written while holding the
/// given capability.
#define LALR_GUARDED_BY(x) LALR_THREAD_ANNOTATION(guarded_by(x))

/// As LALR_GUARDED_BY, for the pointee of a pointer member.
#define LALR_PT_GUARDED_BY(x) LALR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the given capability on entry (and
/// still hold it on exit) — the Locked-suffix helper convention.
#define LALR_REQUIRES(...) \
  LALR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capability on entry;
/// makes self-deadlock through re-entry a compile error.
#define LALR_EXCLUDES(...) LALR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the function acquires the capability and does not
/// release it before returning.
#define LALR_ACQUIRE(...) \
  LALR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that the function releases a held capability.
#define LALR_RELEASE(...) \
  LALR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares a function that acquires the capability iff it returns the
/// given value.
#define LALR_TRY_ACQUIRE(...) \
  LALR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability.
#define LALR_RETURN_CAPABILITY(x) LALR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the access is nevertheless safe.
#define LALR_NO_THREAD_SAFETY_ANALYSIS \
  LALR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lalr {

class CondVar;

/// A std::mutex the analysis knows about. Prefer MutexLock for scoped
/// acquisition; the raw lock()/unlock() pair exists for the rare manual
/// protocol (none in-tree today).
///
/// Mutexes in the concurrent layers are constructed with a name and a
/// rank from the global table in support/LockRank.h
/// (`Mutex{"net.flights", lockrank::NetFlights}`): when lock checking is
/// enabled (LALR_LOCK_CHECK, or debug builds), every acquisition is
/// validated against the per-thread held-rank stack — ranks must strictly
/// increase along every chain, which makes the lock graph provably
/// acyclic. Default-constructed (unranked) mutexes skip the checker
/// entirely; `scripts/lalr_lint.py` requires every Mutex member under
/// src/ to be ranked.
class LALR_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  /// Named, ranked construction. \p Name must be a string literal (it is
  /// stored, not copied, and appears verbatim in violation reports);
  /// \p Rank comes from the lockrank:: table.
  Mutex(const char *Name, int Rank) : Name(Name), Rank(Rank) {}
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() LALR_ACQUIRE() {
    if (Name && LockRank::enabled())
      LockRank::onAcquire(Name, Rank);
    M.lock();
  }
  void unlock() LALR_RELEASE() {
    M.unlock();
    if (Name && LockRank::enabled())
      LockRank::onRelease(Name, Rank);
  }

  /// Rank-table name, or nullptr for an unranked scratch mutex.
  const char *rankName() const { return Name; }
  int rank() const { return Rank; }

private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex M;
  const char *Name = nullptr;
  int Rank = 0;
};

/// Scoped lock over a Mutex (the std::unique_lock underneath lets CondVar
/// wait on it). Construction acquires, destruction releases. The rank
/// check runs BEFORE blocking on the underlying mutex, so an acquisition
/// that would deadlock is reported (or aborts) instead of hanging.
class LALR_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &Mu) LALR_ACQUIRE(Mu)
      : Mu(&Mu), L(Mu.M, std::defer_lock) {
    if (Mu.Name && LockRank::enabled())
      LockRank::onAcquire(Mu.Name, Mu.Rank);
    L.lock();
  }
  ~MutexLock() LALR_RELEASE() {
    if (L.owns_lock())
      L.unlock();
    if (Mu->Name && LockRank::enabled())
      LockRank::onRelease(Mu->Name, Mu->Rank);
  }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  friend class CondVar;
  Mutex *Mu;
  std::unique_lock<std::mutex> L;
};

/// Condition variable paired with Mutex/MutexLock. The analysis treats a
/// wait as an ordinary guarded region: the capability is held across the
/// call (released and reacquired inside, invisibly to the caller), so
/// predicates reading guarded state check cleanly.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(MutexLock &Lock) { Cv.wait(Lock.L); }

  template <typename Pred> void wait(MutexLock &Lock, Pred P) {
    Cv.wait(Lock.L, std::move(P));
  }

  /// Returns the predicate's value (false = timed out with it still
  /// false), mirroring std::condition_variable::wait_for.
  template <typename Rep, typename Period, typename Pred>
  bool waitFor(MutexLock &Lock, std::chrono::duration<Rep, Period> Timeout,
               Pred P) {
    return Cv.wait_for(Lock.L, Timeout, std::move(P));
  }

  void notifyOne() { Cv.notify_one(); }
  void notifyAll() { Cv.notify_all(); }

private:
  std::condition_variable Cv;
};

} // namespace lalr

#endif // LALR_SUPPORT_THREADSAFETY_H
