//===- support/SetSlab.cpp - Arena-backed bank of bit sets ------------------===//

#include "support/SetSlab.h"

#include "support/FailPoint.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

using namespace lalr;

namespace {

std::atomic<uint64_t> LiveBytesCounter{0};
std::atomic<uint64_t> AllocationCounter{0};

} // namespace

uint64_t SetSlab::liveBytes() {
  return LiveBytesCounter.load(std::memory_order_relaxed);
}

uint64_t SetSlab::totalAllocations() {
  return AllocationCounter.load(std::memory_order_relaxed);
}

void SetSlab::allocate() {
  ArenaBytes = bytesFor(NumSets, NumBits);
  if (ArenaBytes == 0) {
    Arena = nullptr;
    return;
  }
  // bytesFor rounds up to a multiple of Alignment, as aligned_alloc
  // requires.
  Arena = static_cast<uint64_t *>(std::aligned_alloc(Alignment, ArenaBytes));
  if (!Arena)
    throw std::bad_alloc();
  std::memset(Arena, 0, ArenaBytes);
  LiveBytesCounter.fetch_add(ArenaBytes, std::memory_order_relaxed);
  AllocationCounter.fetch_add(1, std::memory_order_relaxed);
}

void SetSlab::release() {
  if (!Arena)
    return;
  std::free(Arena);
  LiveBytesCounter.fetch_sub(ArenaBytes, std::memory_order_relaxed);
  Arena = nullptr;
  ArenaBytes = 0;
}

SetSlab::SetSlab(size_t NumSets, size_t NumBits)
    : NumSets(NumSets), NumBits(NumBits), WordsPerSet((NumBits + 63) / 64) {
  // Fault-injection site for the arena allocation path (the 14th site of
  // the registry); only fired for real allocations so empty slabs stay
  // free.
  if (NumSets && WordsPerSet)
    failPoint("slab");
  allocate();
}

SetSlab::SetSlab(const SetSlab &Other)
    : NumSets(Other.NumSets), NumBits(Other.NumBits),
      WordsPerSet(Other.WordsPerSet) {
  allocate();
  if (Arena)
    std::memcpy(Arena, Other.Arena, ArenaBytes);
}

SetSlab &SetSlab::operator=(const SetSlab &Other) {
  if (this == &Other)
    return *this;
  release();
  NumSets = Other.NumSets;
  NumBits = Other.NumBits;
  WordsPerSet = Other.WordsPerSet;
  allocate();
  if (Arena)
    std::memcpy(Arena, Other.Arena, ArenaBytes);
  return *this;
}

SetSlab::SetSlab(SetSlab &&Other) noexcept
    : NumSets(Other.NumSets), NumBits(Other.NumBits),
      WordsPerSet(Other.WordsPerSet), ArenaBytes(Other.ArenaBytes),
      Arena(Other.Arena) {
  Other.Arena = nullptr;
  Other.ArenaBytes = 0;
  Other.NumSets = 0;
}

SetSlab &SetSlab::operator=(SetSlab &&Other) noexcept {
  if (this == &Other)
    return *this;
  release();
  NumSets = Other.NumSets;
  NumBits = Other.NumBits;
  WordsPerSet = Other.WordsPerSet;
  ArenaBytes = Other.ArenaBytes;
  Arena = Other.Arena;
  Other.Arena = nullptr;
  Other.ArenaBytes = 0;
  Other.NumSets = 0;
  return *this;
}

SetSlab::~SetSlab() { release(); }

bool SetSlab::operator==(const SetSlab &Other) const {
  if (NumSets != Other.NumSets || NumBits != Other.NumBits)
    return false;
  if (!Arena || !Other.Arena)
    return Arena == Other.Arena;
  return std::memcmp(Arena, Other.Arena, NumSets * WordsPerSet *
                                             sizeof(uint64_t)) == 0;
}
