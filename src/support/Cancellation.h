//===- support/Cancellation.h - Deadlines, limits, build status -*- C++ -*-===//
///
/// \file
/// The resource-governance primitives threaded through every build stage:
///
///   * CancellationToken — a shareable cancel flag plus optional absolute
///     deadline, polled cooperatively by the pipeline;
///   * BuildLimits — hard ceilings on the structures a build may create
///     (LR(0)/LR(1) states, kernel items, relation edges, allocated set
///     bits) plus a wall-clock budget;
///   * BuildStatus — the structured outcome taxonomy replacing string-only
///     errors (Ok | GrammarError | LimitExceeded | DeadlineExceeded |
///     Cancelled | Internal), JSON-serializable for the service front end;
///   * BuildAbort — the exception aborted stages throw, carrying a
///     BuildStatus; BuildPipeline::run catches it, invalidates the
///     context's artifacts (no half-built memo is ever kept) and returns
///     the status in the BuildResult;
///   * BuildGuard — the per-run bundle of token + limits + start time the
///     stages actually consult. poll() is a relaxed counter load+store and
///     a branch on the hot path; the token flag and the clock are read
///     only on the first and every 64th poll, so guarded and unguarded
///     builds differ by well under 1% (bench_micro's cancellation-overhead
///     benchmark tracks this).
///
/// Every stage entry point takes `const BuildGuard *` defaulted to
/// nullptr: ungoverned callers pay nothing and compile unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_CANCELLATION_H
#define LALR_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>

namespace lalr {

/// Outcome taxonomy of one build. The service and the batch driver
/// surface these verbatim; everything except Ok means "no table".
enum class BuildStatusCode : uint8_t {
  Ok,               ///< build completed (table produced)
  GrammarError,     ///< the grammar failed to parse/build (front-end error)
  LimitExceeded,    ///< a BuildLimits ceiling tripped (Which names it)
  DeadlineExceeded, ///< wall budget or token deadline expired
  Cancelled,        ///< CancellationToken::cancel() was observed
  Internal,         ///< unexpected exception (or an injected failpoint)
};

/// Stable kebab-case name, used in JSON and driver output.
const char *buildStatusCodeName(BuildStatusCode Code);

/// Structured outcome of one build: the code plus, for LimitExceeded, the
/// tripped limit's name and the observed-vs-limit values, and a rendered
/// human-readable message for every non-Ok code.
struct BuildStatus {
  BuildStatusCode Code = BuildStatusCode::Ok;
  /// LimitExceeded: the limit's name ("lr0_states", "wall_ms", ...).
  /// Internal: the failpoint or exception source when known.
  std::string Which;
  uint64_t Observed = 0; ///< LimitExceeded: the value that tripped
  uint64_t Limit = 0;    ///< LimitExceeded: the configured ceiling
  std::string Message;   ///< human-readable; empty iff Ok

  bool ok() const { return Code == BuildStatusCode::Ok; }

  /// {"code":"limit-exceeded","which":"lr0_states","observed":1001,
  ///  "limit":1000,"message":"..."} — which/observed/limit omitted when
  /// empty/zero, so Ok serializes as just {"code":"ok"}.
  std::string toJson() const;

  /// \name Factories
  /// @{
  static BuildStatus okStatus() { return {}; }
  static BuildStatus grammarError(std::string Message);
  static BuildStatus limitExceeded(std::string Which, uint64_t Observed,
                                   uint64_t Limit);
  static BuildStatus deadlineExceeded(std::string Message);
  static BuildStatus cancelled();
  static BuildStatus internal(std::string Message);
  /// @}
};

/// The exception aborted build stages throw. BuildPipeline::run is the
/// one catcher on the pipeline path; BuildService catches around
/// non-pipeline work. Derives std::exception so a stray escape still
/// terminates with the message visible.
class BuildAbort : public std::exception {
public:
  explicit BuildAbort(BuildStatus Status) : Status_(std::move(Status)) {}

  const BuildStatus &status() const { return Status_; }
  const char *what() const noexcept override { return Status_.Message.c_str(); }

private:
  BuildStatus Status_;
};

/// Hard ceilings for one build. 0 = unlimited (the default: an
/// all-defaults BuildLimits governs nothing and costs nothing).
struct BuildLimits {
  /// LR(0) automaton states (checked as states are interned).
  uint64_t MaxLr0States = 0;
  /// Canonical-LR(1) and Pager states (both report as "lr1_states").
  uint64_t MaxLr1States = 0;
  /// Total kernel items across all states of an automaton build.
  uint64_t MaxItems = 0;
  /// reads + includes + lookback edges of the DP relations.
  uint64_t MaxRelationEdges = 0;
  /// Bits allocated for one look-ahead set family (sets x terminals);
  /// checked up front from the known family sizes, before allocation.
  uint64_t MaxSetBits = 0;
  /// Arena bytes the DP set slabs (DR/Read/Follow/LA banks) may allocate;
  /// checked up front from the relation census, before allocation — the
  /// memory ceiling on the look-ahead computation proper.
  uint64_t MaxSlabBytes = 0;
  /// \name Parse-serving ceilings
  /// Polled by the runtime drivers (ParseService) rather than the table
  /// builders: the input-length ceiling is checked once after
  /// tokenization; the work ceilings bound the superlinear drivers (GLR
  /// GSS nodes, Earley chart items) on adversarial inputs.
  /// @{
  /// Tokens one parse request may submit (checked before the driver runs).
  uint64_t MaxInputTokens = 0;
  /// Total GSS nodes one GLR run may allocate.
  uint64_t MaxGssNodes = 0;
  /// Total chart items one Earley run may insert.
  uint64_t MaxEarleyItems = 0;
  /// @}
  /// Wall-clock budget for the whole pipeline run, milliseconds.
  double MaxWallMs = 0;

  bool anySet() const {
    return MaxLr0States || MaxLr1States || MaxItems || MaxRelationEdges ||
           MaxSetBits || MaxSlabBytes || MaxInputTokens || MaxGssNodes ||
           MaxEarleyItems || MaxWallMs > 0;
  }
};

/// Field-by-field limit inheritance: a request field set to nonzero wins;
/// an unset (0) field falls back to \p Default. Shared by BuildService
/// and ParseService so both layers inherit service-wide ceilings the
/// same way.
inline BuildLimits mergeBuildLimits(const BuildLimits &Req,
                                    const BuildLimits &Default) {
  BuildLimits L = Req;
  if (!L.MaxLr0States)
    L.MaxLr0States = Default.MaxLr0States;
  if (!L.MaxLr1States)
    L.MaxLr1States = Default.MaxLr1States;
  if (!L.MaxItems)
    L.MaxItems = Default.MaxItems;
  if (!L.MaxRelationEdges)
    L.MaxRelationEdges = Default.MaxRelationEdges;
  if (!L.MaxSetBits)
    L.MaxSetBits = Default.MaxSetBits;
  if (!L.MaxSlabBytes)
    L.MaxSlabBytes = Default.MaxSlabBytes;
  if (!L.MaxInputTokens)
    L.MaxInputTokens = Default.MaxInputTokens;
  if (!L.MaxGssNodes)
    L.MaxGssNodes = Default.MaxGssNodes;
  if (!L.MaxEarleyItems)
    L.MaxEarleyItems = Default.MaxEarleyItems;
  if (L.MaxWallMs <= 0)
    L.MaxWallMs = Default.MaxWallMs;
  return L;
}

/// Shareable cooperative-cancellation handle: a manual cancel flag plus
/// an optional absolute deadline. Thread-safe; typically held in a
/// shared_ptr by the requester and polled (via BuildGuard) by the build.
/// All state is lock-free atomics, so there is nothing for the
/// support/ThreadSafety.h annotations to guard here — the thread-safety
/// analysis has no capability model for atomics (see
/// docs/STATIC_ANALYSIS.md).
class CancellationToken {
public:
  CancellationToken() = default;

  /// Convenience: a fresh token whose deadline is \p Ms from now.
  static std::shared_ptr<CancellationToken> withDeadlineMs(double Ms) {
    auto T = std::make_shared<CancellationToken>();
    T->setDeadlineMs(Ms);
    return T;
  }

  /// Requests cancellation; sticky and idempotent.
  void cancel() { CancelFlag.store(true, std::memory_order_release); }

  bool cancelRequested() const {
    return CancelFlag.load(std::memory_order_acquire);
  }

  /// Arms (or re-arms) the deadline \p Ms from now. Ms <= 0 expires
  /// immediately.
  void setDeadlineMs(double Ms) {
    auto When = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(Ms));
    DeadlineNs.store(When.time_since_epoch().count(),
                     std::memory_order_release);
  }

  bool hasDeadline() const {
    return DeadlineNs.load(std::memory_order_acquire) != 0;
  }

  /// True once the armed deadline has passed (false when none is armed).
  bool deadlineExpired() const {
    int64_t D = DeadlineNs.load(std::memory_order_acquire);
    return D != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= D;
  }

private:
  std::atomic<bool> CancelFlag{false};
  /// steady_clock ticks since epoch; 0 = no deadline armed.
  std::atomic<int64_t> DeadlineNs{0};
};

/// The per-run governance bundle the stages consult: an optional token,
/// the limits, and the run's start time (for the wall budget). Stages
/// call poll() at cheap periodic points and checkLimit/check* as their
/// structures grow; both throw BuildAbort. Safe to share across the
/// worker threads of one build (poll's counter is atomic).
class BuildGuard {
public:
  explicit BuildGuard(const BuildLimits &Limits,
                      const CancellationToken *Token = nullptr)
      : Limits_(Limits), Token(Token),
        Start(std::chrono::steady_clock::now()) {}

  BuildGuard(const BuildGuard &) = delete;
  BuildGuard &operator=(const BuildGuard &) = delete;

  const BuildLimits &limits() const { return Limits_; }

  /// Cooperative check: on the first and every 64th call, throws
  /// BuildAbort(Cancelled) when the token is cancelled and
  /// BuildAbort(DeadlineExceeded) past the wall budget / token deadline.
  /// The 63 calls in between are a relaxed load+store+branch — no locked
  /// RMW (a fetch_add costs ~10x more), no token cache line, no clock —
  /// which keeps the guarded hot path within 1% of unguarded. Worst-case
  /// cancellation latency is 64 polls, i.e. microseconds of stage work.
  /// The count is observability only, so increments lost to concurrent
  /// pollers are an acceptable trade. The slow path lives out of line in
  /// the .cpp so no throw/BuildStatus construction is inlined into the
  /// stage loops that poll.
  void poll() const {
    uint64_t N = Polls.load(std::memory_order_relaxed);
    Polls.store(N + 1, std::memory_order_relaxed);
    if ((N & 63) == 0)
      pollSlow();
  }

  /// Unstrided deadline check (also run by every 64th poll).
  void checkDeadline() const;

  /// Throws BuildAbort(LimitExceeded) when \p LimitValue is set and
  /// \p Observed exceeds it.
  void checkLimit(const char *Which, uint64_t Observed,
                  uint64_t LimitValue) const {
    if (LimitValue && Observed > LimitValue)
      throw BuildAbort(BuildStatus::limitExceeded(Which, Observed, LimitValue));
  }

  /// \name Per-limit conveniences (no-ops when the limit is unset)
  /// @{
  void checkLr0States(uint64_t N) const {
    checkLimit("lr0_states", N, Limits_.MaxLr0States);
  }
  void checkLr1States(uint64_t N) const {
    checkLimit("lr1_states", N, Limits_.MaxLr1States);
  }
  void checkItems(uint64_t N) const {
    checkLimit("items", N, Limits_.MaxItems);
  }
  void checkRelationEdges(uint64_t N) const {
    checkLimit("relation_edges", N, Limits_.MaxRelationEdges);
  }
  void checkSetBits(uint64_t N) const {
    checkLimit("set_bits", N, Limits_.MaxSetBits);
  }
  void checkSlabBytes(uint64_t N) const {
    checkLimit("slab_bytes", N, Limits_.MaxSlabBytes);
  }
  void checkInputTokens(uint64_t N) const {
    checkLimit("input_tokens", N, Limits_.MaxInputTokens);
  }
  void checkGssNodes(uint64_t N) const {
    checkLimit("gss_nodes", N, Limits_.MaxGssNodes);
  }
  void checkEarleyItems(uint64_t N) const {
    checkLimit("earley_items", N, Limits_.MaxEarleyItems);
  }
  /// @}

  /// Number of poll() calls so far (deterministic for serial builds; an
  /// observability counter, not part of any result).
  uint64_t pollCount() const { return Polls.load(std::memory_order_relaxed); }

private:
  /// The strided tail of poll(): cancel-flag check plus checkDeadline.
  void pollSlow() const;

  BuildLimits Limits_;
  const CancellationToken *Token;
  std::chrono::steady_clock::time_point Start;
  mutable std::atomic<uint64_t> Polls{0};
};

/// Null-tolerant helper for stage code: `guardPoll(G)` instead of
/// `if (G) G->poll()`.
inline void guardPoll(const BuildGuard *G) {
  if (G)
    G->poll();
}

/// Strided variant for per-iteration hot loops (digraph node pushes,
/// relation rows, la-union slots): polls only when the low bits of
/// \p Index are zero, so the skipped iterations cost two predicted
/// branches and nothing else. Keyed on the loop index, not a shared
/// counter, so the resulting poll count stays a pure function of the
/// work done (guard_polls is gated as a structural counter).
inline void guardPollStrided(const BuildGuard *G, size_t Index) {
  if (G && (Index & 7) == 0)
    G->poll();
}

} // namespace lalr

#endif // LALR_SUPPORT_CANCELLATION_H
