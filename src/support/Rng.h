//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
///
/// \file
/// A small deterministic PRNG (xorshift*) used by the synthetic grammar
/// generators and property tests. Determinism matters: every random grammar
/// in the test suite and every synthetic benchmark workload is reproducible
/// from its seed, so failures can be replayed exactly.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_RNG_H
#define LALR_SUPPORT_RNG_H

#include <cstdint>

namespace lalr {

/// xorshift64* generator. Not cryptographic; stable across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi);

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

private:
  uint64_t State;
};

} // namespace lalr

#endif // LALR_SUPPORT_RNG_H
