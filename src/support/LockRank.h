//===- support/LockRank.h - Runtime lock-order enforcement ------*- C++ -*-===//
///
/// \file
/// Deadlock-freedom by construction: every `lalr::Mutex` in the concurrent
/// layers is built with a name and a *rank* (`Mutex{"net.flights",
/// lockrank::NetFlights}`), and a thread may only acquire a mutex whose
/// rank is strictly greater than every rank it already holds. Acquiring
/// out of order — or nesting two locks of the same rank — is a structured
/// violation: reported on stderr with both lock names and ranks, counted
/// in `lock_order_violations`, and (in abort mode, the default for the
/// test suite's death tests) fatal via std::abort. Since "ranks strictly
/// increase along every acquisition chain" implies the global lock graph
/// is acyclic, a clean run under `LALR_LOCK_CHECK=1` is a per-execution
/// proof of deadlock freedom — the dynamic complement to the static lock
/// graph `scripts/lalr_lint.py` extracts from the source.
///
/// Enablement (checked once, at the first acquisition):
///   * `LALR_LOCK_CHECK` unset  — enabled in debug builds (`!NDEBUG`),
///     disabled in release builds (the default CMake RelWithDebInfo
///     configuration defines NDEBUG, so benches and CI perf runs pay only
///     an untaken branch per lock);
///   * `LALR_LOCK_CHECK=0` / `off` — force-disabled;
///   * `LALR_LOCK_CHECK=abort` — enabled, violations call std::abort;
///   * any other non-empty value (canonically `1`) — enabled, violations
///     are counted and reported but execution continues.
///
/// Unranked mutexes (default-constructed `Mutex`) are invisible to the
/// checker: not counted, not ranked, never a violation. `lalr_lint.py`
/// separately requires that every `Mutex` member under `src/` *is* ranked,
/// so "unranked" is a property of scratch locks in tests, not of the tree.
///
/// The rank table below is the single source of truth: the constant names
/// double as machine-readable identities for `scripts/lalr_lint.py`
/// (which cross-checks every declared nesting edge against them) and for
/// the table in docs/STATIC_ANALYSIS.md. Ranks are spaced by 2 so a new
/// mutex can usually slot between two existing ones without renumbering.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_LOCKRANK_H
#define LALR_SUPPORT_LOCKRANK_H

#include <cstdint>
#include <string>

namespace lalr {

/// The global rank table. A thread must acquire in strictly increasing
/// rank order, so a lock that is taken while another is held must have the
/// *larger* rank: outermost locks get the smallest numbers, leaf locks
/// (stats sinks, taken last and released immediately) the largest.
///
/// How to pick a rank for a new mutex (see docs/STATIC_ANALYSIS.md):
///   1. list every lock that can be held when yours is acquired — your
///      rank must be greater than all of them;
///   2. list every lock your critical sections acquire — your rank must
///      be smaller than all of those;
///   3. pick an unused even value in that window, name it here, and run
///      `scripts/lalr_lint.py` + the suite under `LALR_LOCK_CHECK=1`.
namespace lockrank {
// Network front end (NetServer): connection registry, admission gate,
// worker handoff, single-flight coalescing map, drain token ledger.
inline constexpr int NetConns = 10;
inline constexpr int NetAdmit = 12;
inline constexpr int NetWork = 14;
inline constexpr int NetFlights = 16;
inline constexpr int NetTokens = 18;
// Build service: batch worker-pool serialization, ticket issue, queue.
// ServicePool is held across an entire batch's parallelFor, so every
// lock the build path can touch (cache, entries, pools, stats) outranks
// it.
inline constexpr int ServicePool = 20;
inline constexpr int ServiceTickets = 22;
inline constexpr int ServiceQueue = 24;
// Context cache: map lock, then per-entry build lock — "BuildMu under
// the cache mutex" is the sanctioned direction (service/ContextCache.h).
inline constexpr int CacheMap = 30;
inline constexpr int CacheEntry = 32;
// Parse serving snapshots: acquired under a per-entry build lock on a
// miss, so it outranks CacheEntry.
inline constexpr int ParseTables = 34;
// Thread pool internals: job publication, then first-error capture.
// Reached from under CacheEntry (the pipeline's parallel stages run
// while the entry's build lock is held).
inline constexpr int PoolJobs = 40;
inline constexpr int PoolJobError = 42;
// Fault-injection registry: probed from arbitrary build stages, i.e.
// under any of the build-side locks above.
inline constexpr int FailPointRegistry = 50;
// Stats sinks: leaf locks — taken last, held across a copy, released.
inline constexpr int ServiceStats = 60;
inline constexpr int ParseStats = 62;
inline constexpr int NetStats = 64;
} // namespace lockrank

/// One recorded lock-order violation: the lock being acquired and the
/// already-held lock whose rank contradicts it.
struct LockRankViolation {
  std::string Acquiring;    ///< name of the lock being acquired
  int AcquiringRank = 0;    ///< its declared rank
  std::string Held;         ///< held lock with the conflicting (>=) rank
  int HeldRank = 0;         ///< its declared rank
  bool Valid = false;       ///< false until the first violation
};

/// The per-thread held-rank checker. All state is static: the held stack
/// is thread_local, the counters and last-violation record are global.
/// `Mutex`/`MutexLock` (support/ThreadSafety.h) call the on* hooks; user
/// code only reads the counters (ServiceStats folds them into
/// `PipelineStats` as `lock_acquisitions` / `lock_order_violations`).
class LockRank {
public:
  /// True when checking is on (env / build-type rule in the file header).
  static bool enabled();

  /// Force checking on/off for this process, overriding the env rule.
  /// Test-only: lets lockrank_test exercise both modes deterministically.
  static void setEnabledForTesting(bool On);

  /// When true, a violation calls std::abort after reporting (what
  /// `LALR_LOCK_CHECK=abort` sets; death tests set it programmatically).
  static void setAbortOnViolation(bool On);

  /// Called by MutexLock / Mutex::lock BEFORE blocking on the underlying
  /// std::mutex, so a would-be deadlock is reported (or aborts) instead
  /// of hanging. \p Name must outlive the process (it is the Mutex's
  /// literal); \p Rank is its declared rank.
  static void onAcquire(const char *Name, int Rank);

  /// Called on release; pops the matching entry from this thread's stack
  /// (tolerant of a mid-process enable toggle leaving it absent).
  static void onRelease(const char *Name, int Rank);

  /// Total ranked acquisitions observed while enabled (process-wide).
  static uint64_t acquisitions();

  /// Total ordering violations observed while enabled (process-wide).
  static uint64_t violations();

  /// The most recent violation (Valid=false if none yet).
  static LockRankViolation lastViolation();

  /// Zeroes the counters and the last-violation record. Test-only.
  static void resetForTesting();
};

} // namespace lalr

#endif // LALR_SUPPORT_LOCKRANK_H
