//===- support/Rng.cpp - Deterministic random numbers ----------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace lalr;

uint64_t Rng::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "Rng::below requires a nonzero bound");
  return next() % Bound;
}

uint64_t Rng::range(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "Rng::range requires Lo <= Hi");
  return Lo + below(Hi - Lo + 1);
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "Rng::chance requires a nonzero denominator");
  return below(Den) < Num;
}
