//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
///
/// \file
/// Lightweight diagnostic machinery for the grammar front end. Grammar files
/// are small, so diagnostics carry full line/column locations and the engine
/// collects every diagnostic rather than stopping at the first, which lets
/// the tests assert on complete error lists.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_DIAGNOSTICS_H
#define LALR_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace lalr {

/// A 1-based line/column position within a grammar source buffer.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLocation &O) const {
    return Line == O.Line && Column == O.Column;
  }
};

/// Severity of a diagnostic. Errors make the front end fail; warnings and
/// notes are advisory.
enum class DiagSeverity { Error, Warning, Note };

/// One reported problem: severity, location, and rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;
};

/// Accumulates diagnostics during a front-end pass.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  size_t errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines,
  /// suitable for printing to stderr.
  std::string render() const;

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

} // namespace lalr

#endif // LALR_SUPPORT_DIAGNOSTICS_H
