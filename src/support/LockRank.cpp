//===- support/LockRank.cpp - Runtime lock-order enforcement --------------===//

#include "support/LockRank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace lalr {

namespace {

// Process-wide mode, resolved lazily at the first enabled() query so the
// env read happens after main() has had no chance to race it (static-init
// acquisitions resolve it too — CAS makes that safe).
enum Mode : int { ModeUninit = 0, ModeOff, ModeCheck, ModeCheckAbort };

std::atomic<int> ModeFlag{ModeUninit};
std::atomic<bool> AbortOverride{false};
std::atomic<uint64_t> AcquisitionCount{0};
std::atomic<uint64_t> ViolationCount{0};

// Raw std::mutex (NOT lalr::Mutex): the violation path must never
// re-enter the checker.
std::mutex LastViolationMu;
LockRankViolation LastViolationRecord; // guarded by LastViolationMu

struct HeldLock {
  const char *Name;
  int Rank;
};

std::vector<HeldLock> &heldStack() {
  static thread_local std::vector<HeldLock> Stack;
  return Stack;
}

int computeMode() {
  const char *Env = std::getenv("LALR_LOCK_CHECK");
  if (Env && *Env) {
    if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0)
      return ModeOff;
    if (std::strcmp(Env, "abort") == 0)
      return ModeCheckAbort;
    return ModeCheck;
  }
#ifndef NDEBUG
  return ModeCheck;
#else
  return ModeOff;
#endif
}

int mode() {
  int M = ModeFlag.load(std::memory_order_acquire);
  if (M == ModeUninit) {
    int Computed = computeMode();
    if (ModeFlag.compare_exchange_strong(M, Computed,
                                         std::memory_order_acq_rel))
      return Computed;
    return M; // lost the race; M now holds the winner's value
  }
  return M;
}

void reportViolation(const char *Name, int Rank, const HeldLock &Conflict) {
  ViolationCount.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> G(LastViolationMu);
    LastViolationRecord.Acquiring = Name;
    LastViolationRecord.AcquiringRank = Rank;
    LastViolationRecord.Held = Conflict.Name;
    LastViolationRecord.HeldRank = Conflict.Rank;
    LastViolationRecord.Valid = true;
  }
  std::fprintf(stderr,
               "lalr: lock-order violation: acquiring \"%s\" (rank %d) "
               "while holding \"%s\" (rank %d); ranks must strictly "
               "increase along every acquisition chain (rank table: "
               "support/LockRank.h; docs/STATIC_ANALYSIS.md \"Lock "
               "ranking\")\n",
               Name, Rank, Conflict.Name, Conflict.Rank);
  if (AbortOverride.load(std::memory_order_relaxed) ||
      mode() == ModeCheckAbort) {
    std::fflush(stderr);
    std::abort();
  }
}

} // namespace

bool LockRank::enabled() { return mode() != ModeOff; }

void LockRank::setEnabledForTesting(bool On) {
  ModeFlag.store(On ? ModeCheck : ModeOff, std::memory_order_release);
}

void LockRank::setAbortOnViolation(bool On) {
  AbortOverride.store(On, std::memory_order_relaxed);
}

void LockRank::onAcquire(const char *Name, int Rank) {
  AcquisitionCount.fetch_add(1, std::memory_order_relaxed);
  std::vector<HeldLock> &Stack = heldStack();
  // Compare against the MAX held rank, not the stack top: after a
  // tolerated (non-abort) violation the stack is no longer monotonic, and
  // the max is the lock that actually contradicts this acquisition.
  const HeldLock *Conflict = nullptr;
  for (const HeldLock &H : Stack)
    if (H.Rank >= Rank && (!Conflict || H.Rank > Conflict->Rank))
      Conflict = &H;
  if (Conflict)
    reportViolation(Name, Rank, *Conflict);
  Stack.push_back(HeldLock{Name, Rank});
}

void LockRank::onRelease(const char *Name, int Rank) {
  (void)Rank;
  std::vector<HeldLock> &Stack = heldStack();
  // Releases are LIFO in practice (MutexLock is scoped), but search back
  // to front so a manual lock()/unlock() protocol releases correctly too.
  for (size_t I = Stack.size(); I > 0; --I) {
    const HeldLock &H = Stack[I - 1];
    if (H.Name == Name || std::strcmp(H.Name, Name) == 0) {
      Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(I - 1));
      return;
    }
  }
  // Absent entry: checking was enabled between acquire and release (a
  // test toggled it). Ignoring is the only balanced choice.
}

uint64_t LockRank::acquisitions() {
  return AcquisitionCount.load(std::memory_order_relaxed);
}

uint64_t LockRank::violations() {
  return ViolationCount.load(std::memory_order_relaxed);
}

LockRankViolation LockRank::lastViolation() {
  std::lock_guard<std::mutex> G(LastViolationMu);
  return LastViolationRecord;
}

void LockRank::resetForTesting() {
  AcquisitionCount.store(0, std::memory_order_relaxed);
  ViolationCount.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(LastViolationMu);
  LastViolationRecord = LockRankViolation{};
}

} // namespace lalr
