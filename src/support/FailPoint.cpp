//===- support/FailPoint.cpp - Fault-injection sites ----------------------===//

#include "support/FailPoint.h"

#include "support/Cancellation.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lalr {

static const char *const kAllSites[] = {
    "analysis",   "lr0-build",    "nt-index",   "relations-build",
    "slab",       "solve-read",   "solve-follow", "la-union",
    "lr1-build",  "pager-build",  "table-fill", "compress",
    "verify",     "service-execute", "parse",   nullptr};

const char *const *allFailPointSites() { return kAllSites; }

FailPointRegistry &FailPointRegistry::instance() {
  static FailPointRegistry R;
  return R;
}

FailPointRegistry::FailPointRegistry() {
  // Env arming: LALR_FAILPOINTS=site[=throw|limit|cancel][,site...].
  // Unknown action names warn and default to throw; unknown sites are
  // armed as given (they simply never fire) so typos are visible via
  // armedSites() rather than silently dropped.
  const char *Env = std::getenv("LALR_FAILPOINTS");
  if (!Env || !*Env)
    return;
  MutexLock Lock(Mu); // uncontended (static-local init), checks cleanly
  std::string Spec(Env);
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Item.empty())
      continue;
    FailPointAction Action = FailPointAction::Throw;
    size_t Eq = Item.find('=');
    if (Eq != std::string::npos) {
      std::string Act = Item.substr(Eq + 1);
      Item.resize(Eq);
      if (Act == "limit")
        Action = FailPointAction::Limit;
      else if (Act == "cancel")
        Action = FailPointAction::Cancel;
      else if (Act != "throw" && Act != "")
        std::fprintf(stderr,
                     "lalr: LALR_FAILPOINTS: unknown action '%s' for site "
                     "'%s'; using 'throw'\n",
                     Act.c_str(), Item.c_str());
    }
    if (!Item.empty()) {
      Sites[Item] = Entry{Action, 0};
      ArmedCount.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void FailPointRegistry::arm(const std::string &Site, FailPointAction Action,
                            uint64_t SkipHits) {
  MutexLock Lock(Mu);
  auto It = Sites.find(Site);
  if (It == Sites.end()) {
    Sites.emplace(Site, Entry{Action, SkipHits});
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  } else {
    It->second = Entry{Action, SkipHits};
  }
}

bool FailPointRegistry::disarm(const std::string &Site) {
  MutexLock Lock(Mu);
  auto It = Sites.find(Site);
  if (It == Sites.end())
    return false;
  Sites.erase(It);
  ArmedCount.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FailPointRegistry::disarmAll() {
  MutexLock Lock(Mu);
  ArmedCount.fetch_sub(static_cast<int>(Sites.size()),
                       std::memory_order_relaxed);
  Sites.clear();
}

std::vector<std::string> FailPointRegistry::armedSites() const {
  MutexLock Lock(Mu);
  std::vector<std::string> Out;
  Out.reserve(Sites.size());
  for (const auto &KV : Sites)
    Out.push_back(KV.first);
  return Out;
}

void FailPointRegistry::onHit(const char *Site) {
  FailPointAction Action;
  {
    MutexLock Lock(Mu);
    auto It = Sites.find(Site);
    if (It == Sites.end())
      return;
    if (It->second.SkipHits > 0) {
      --It->second.SkipHits;
      return;
    }
    Action = It->second.Action;
  }
  Trips.fetch_add(1, std::memory_order_relaxed);
  switch (Action) {
  case FailPointAction::Throw: {
    BuildStatus S = BuildStatus::internal(std::string("injected fault at ") +
                                          Site);
    S.Which = Site;
    throw BuildAbort(std::move(S));
  }
  case FailPointAction::Limit: {
    BuildStatus S = BuildStatus::limitExceeded(Site, 0, 0);
    S.Message = std::string("injected limit hit at ") + Site;
    throw BuildAbort(std::move(S));
  }
  case FailPointAction::Cancel:
    throw BuildAbort(BuildStatus::cancelled());
  }
}

} // namespace lalr
