//===- support/FailPoint.cpp - Fault-injection sites ----------------------===//

#include "support/FailPoint.h"

#include "support/Cancellation.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace lalr {

static const char *const kAllSites[] = {
    "analysis",   "lr0-build",    "nt-index",   "relations-build",
    "slab",       "solve-read",   "solve-follow", "la-union",
    "lr1-build",  "pager-build",  "table-fill", "compress",
    "verify",     "service-execute", "parse",
    "net_accept", "net_read",     "net_write",  nullptr};

const char *const *allFailPointSites() { return kAllSites; }

FailPointRegistry &FailPointRegistry::instance() {
  static FailPointRegistry R;
  return R;
}

bool FailPointRegistry::isKnownSiteLocked(const std::string &Site) const {
  for (const std::string &K : Known)
    if (K == Site)
      return true;
  return false;
}

bool FailPointRegistry::isKnownSite(const std::string &Site) const {
  MutexLock Lock(Mu);
  return isKnownSiteLocked(Site);
}

void FailPointRegistry::registerSite(const char *Site) {
  MutexLock Lock(Mu);
  if (isKnownSiteLocked(Site))
    throw std::logic_error(
        std::string("FailPointRegistry::registerSite: duplicate failpoint "
                    "site '") +
        Site + "' (every site name must be registered exactly once)");
  Known.emplace_back(Site);
}

FailPointRegistry::FailPointRegistry() {
  // Env arming: LALR_FAILPOINTS=site[=throw|limit|cancel][,site...].
  // Hardened like LALR_THREADS (parseBuildThreads): a malformed item —
  // unknown site, unknown action, empty site — warns once on stderr and
  // is IGNORED instead of arming something the user did not ask for.
  // Silently misconfigured fault injection is worse than none: a typo'd
  // site would never fire and the test run would "pass" without testing
  // anything.
  MutexLock Lock(Mu); // uncontended (static-local init), checks cleanly
  for (const char *const *S = kAllSites; *S; ++S)
    Known.emplace_back(*S);
  const char *Env = std::getenv("LALR_FAILPOINTS");
  if (!Env || !*Env)
    return;
  std::string Spec(Env);
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Item.empty())
      continue;
    FailPointAction Action = FailPointAction::Throw;
    size_t Eq = Item.find('=');
    if (Eq != std::string::npos) {
      std::string Act = Item.substr(Eq + 1);
      Item.resize(Eq);
      if (Act == "limit") {
        Action = FailPointAction::Limit;
      } else if (Act == "cancel") {
        Action = FailPointAction::Cancel;
      } else if (Act != "throw") {
        std::fprintf(stderr,
                     "lalr: LALR_FAILPOINTS: unknown action '%s' for site "
                     "'%s'; ignoring this item (expected throw, limit or "
                     "cancel)\n",
                     Act.c_str(), Item.c_str());
        continue;
      }
    }
    if (Item.empty()) {
      std::fprintf(stderr,
                   "lalr: LALR_FAILPOINTS: empty site name in spec '%s'; "
                   "ignoring this item\n",
                   Env);
      continue;
    }
    if (!isKnownSiteLocked(Item)) {
      std::fprintf(stderr,
                   "lalr: LALR_FAILPOINTS: unknown site '%s'; ignoring "
                   "this item (see lalr_batchd --list-failpoints)\n",
                   Item.c_str());
      continue;
    }
    Sites[Item] = Entry{Action, 0, 0};
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::arm(const std::string &Site, FailPointAction Action,
                            uint64_t SkipHits, uint64_t MaxFires) {
  MutexLock Lock(Mu);
  auto It = Sites.find(Site);
  if (It == Sites.end()) {
    Sites.emplace(Site, Entry{Action, SkipHits, MaxFires});
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  } else {
    It->second = Entry{Action, SkipHits, MaxFires};
  }
}

bool FailPointRegistry::disarm(const std::string &Site) {
  MutexLock Lock(Mu);
  auto It = Sites.find(Site);
  if (It == Sites.end())
    return false;
  Sites.erase(It);
  ArmedCount.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FailPointRegistry::disarmAll() {
  MutexLock Lock(Mu);
  ArmedCount.fetch_sub(static_cast<int>(Sites.size()),
                       std::memory_order_relaxed);
  Sites.clear();
}

std::vector<std::string> FailPointRegistry::armedSites() const {
  MutexLock Lock(Mu);
  std::vector<std::string> Out;
  Out.reserve(Sites.size());
  for (const auto &KV : Sites)
    Out.push_back(KV.first);
  return Out;
}

void FailPointRegistry::onHit(const char *Site) {
  FailPointAction Action;
  {
    MutexLock Lock(Mu);
    auto It = Sites.find(Site);
    if (It == Sites.end())
      return;
    if (It->second.SkipHits > 0) {
      --It->second.SkipHits;
      return;
    }
    Action = It->second.Action;
    // One-shot (bounded-fire) sites disarm themselves once exhausted, so
    // a retry after the injected fault goes through clean.
    if (It->second.MaxFires > 0 && --It->second.MaxFires == 0) {
      Sites.erase(It);
      ArmedCount.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  Trips.fetch_add(1, std::memory_order_relaxed);
  switch (Action) {
  case FailPointAction::Throw: {
    BuildStatus S = BuildStatus::internal(std::string("injected fault at ") +
                                          Site);
    S.Which = Site;
    throw BuildAbort(std::move(S));
  }
  case FailPointAction::Limit: {
    BuildStatus S = BuildStatus::limitExceeded(Site, 0, 0);
    S.Message = std::string("injected limit hit at ") + Site;
    throw BuildAbort(std::move(S));
  }
  case FailPointAction::Cancel:
    throw BuildAbort(BuildStatus::cancelled());
  }
}

} // namespace lalr
