//===- support/ThreadPool.cpp - Fixed worker pool ---------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace lalr;

ThreadPool::ThreadPool(unsigned Workers) : NumWorkers(Workers) {
  assert(Workers >= 1 && "a pool needs at least the calling thread");
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

std::pair<size_t, size_t> ThreadPool::chunkRange(size_t Begin, size_t End,
                                                 size_t NumChunks,
                                                 size_t Chunk) {
  assert(NumChunks > 0 && Chunk < NumChunks);
  size_t Size = End - Begin;
  size_t Base = Size / NumChunks;
  size_t Rem = Size % NumChunks;
  size_t Lo = Begin + Chunk * Base + std::min(Chunk, Rem);
  size_t Len = Base + (Chunk < Rem ? 1 : 0);
  return {Lo, Lo + Len};
}

void ThreadPool::runChunks(Job &J) {
  for (;;) {
    size_t C = J.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (C >= J.NumChunks)
      return;
    if (J.Aborted.load(std::memory_order_relaxed))
      continue; // drain remaining claims without running bodies
    auto [Lo, Hi] = chunkRange(J.Begin, J.End, J.NumChunks, C);
    try {
      (*J.Body)(C, Lo, Hi);
    } catch (...) {
      std::lock_guard<std::mutex> L(J.ErrMu);
      if (!J.Error)
        J.Error = std::current_exception();
      J.Aborted.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenSeq = 0;
  for (;;) {
    Job *J;
    {
      std::unique_lock<std::mutex> L(Mu);
      CvWork.wait(L, [&] { return Stop || (Cur && SeenSeq != JobSeq); });
      if (Stop)
        return;
      J = Cur;
      SeenSeq = JobSeq;
      ++Attached;
    }
    runChunks(*J);
    {
      std::lock_guard<std::mutex> L(Mu);
      --Attached;
    }
    CvDone.notify_one();
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End, const ChunkBody &Body,
                             size_t NumChunks) {
  if (Begin >= End)
    return;
  if (NumChunks == 0)
    NumChunks = NumWorkers;
  NumChunks = std::min(NumChunks, End - Begin);

  Job J;
  J.Body = &Body;
  J.Begin = Begin;
  J.End = End;
  J.NumChunks = NumChunks;

  if (!Threads.empty()) {
    std::lock_guard<std::mutex> L(Mu);
    Cur = &J;
    ++JobSeq;
  }
  CvWork.notify_all();

  // The calling thread works too; with a 1-worker pool this is the whole
  // loop.
  runChunks(J);

  if (!Threads.empty()) {
    // All chunks are claimed once the caller's loop exits; wait for every
    // worker still inside the job to detach before the stack frame (and
    // the Body) die. Workers that never woke see Cur == nullptr and keep
    // sleeping.
    std::unique_lock<std::mutex> L(Mu);
    Cur = nullptr;
    CvDone.wait(L, [&] { return Attached == 0; });
  }

  if (J.Error)
    std::rethrow_exception(J.Error);
}
