//===- support/ThreadPool.cpp - Fixed worker pool ---------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace lalr;

ThreadPool::ThreadPool(unsigned Workers) : NumWorkers(Workers) {
  assert(Workers >= 1 && "a pool needs at least the calling thread");
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock L(Mu);
    Stop = true;
  }
  CvWork.notifyAll();
  for (std::thread &T : Threads)
    T.join();
}

std::pair<size_t, size_t> ThreadPool::chunkRange(size_t Begin, size_t End,
                                                 size_t NumChunks,
                                                 size_t Chunk) {
  assert(NumChunks > 0 && Chunk < NumChunks);
  size_t Size = End - Begin;
  size_t Base = Size / NumChunks;
  size_t Rem = Size % NumChunks;
  size_t Lo = Begin + Chunk * Base + std::min(Chunk, Rem);
  size_t Len = Base + (Chunk < Rem ? 1 : 0);
  return {Lo, Lo + Len};
}

void ThreadPool::runChunks(Job &J) {
  for (;;) {
    size_t C = J.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (C >= J.NumChunks)
      return;
    if (J.Aborted.load(std::memory_order_relaxed))
      continue; // drain remaining claims without running bodies
    auto [Lo, Hi] = chunkRange(J.Begin, J.End, J.NumChunks, C);
    try {
      (*J.Body)(C, Lo, Hi);
    } catch (...) {
      MutexLock L(J.ErrMu);
      if (!J.Error)
        J.Error = std::current_exception();
      J.Aborted.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenSeq = 0;
  for (;;) {
    Job *J;
    {
      MutexLock L(Mu);
      CvWork.wait(L, [&] { return Stop || (Cur && SeenSeq != JobSeq); });
      if (Stop)
        return;
      J = Cur;
      SeenSeq = JobSeq;
      ++Attached;
    }
    runChunks(*J);
    {
      MutexLock L(Mu);
      --Attached;
    }
    CvDone.notifyOne();
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End, const ChunkBody &Body,
                             size_t NumChunks) {
  if (Begin >= End)
    return;
  if (NumChunks == 0)
    NumChunks = NumWorkers;
  NumChunks = std::min(NumChunks, End - Begin);

  Job J;
  J.Body = &Body;
  J.Begin = Begin;
  J.End = End;
  J.NumChunks = NumChunks;

  if (!Threads.empty()) {
    MutexLock L(Mu);
    Cur = &J;
    ++JobSeq;
  }
  CvWork.notifyAll();

  // The calling thread works too; with a 1-worker pool this is the whole
  // loop.
  runChunks(J);

  if (!Threads.empty()) {
    // All chunks are claimed once the caller's loop exits; wait for every
    // worker still inside the job to detach before the stack frame (and
    // the Body) die. Workers that never woke see Cur == nullptr and keep
    // sleeping.
    MutexLock L(Mu);
    Cur = nullptr;
    CvDone.wait(L, [&] { return Attached == 0; });
  }

  // Every worker has detached, so no writer remains — but take ErrMu
  // anyway: the happens-before chain through Mu is real, yet an unlocked
  // read of a guarded member is exactly the discipline slip the analysis
  // exists to reject.
  std::exception_ptr Error;
  {
    MutexLock L(J.ErrMu);
    Error = J.Error;
  }
  if (Error)
    std::rethrow_exception(Error);
}
