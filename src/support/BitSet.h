//===- support/BitSet.h - Dynamic bit set -----------------------*- C++ -*-===//
//
// Part of the lalr project, a reproduction of DeRemer & Pennello,
// "Efficient computation of LALR(1) look-ahead sets" (SIGPLAN '79).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit set used throughout the library to represent
/// terminal sets (DR, Read, Follow, LA, FIRST, FOLLOW). Look-ahead
/// computation is dominated by set unions, so the representation is a packed
/// array of 64-bit words and every union reports whether it changed anything,
/// which the fixpoint algorithms rely on.
///
/// Two types live here:
///
///   * BitSet  — the owning set (one heap allocation per set), the API type
///     for everything outside the DP hot path: grammar analysis, LR(1)
///     closure, GLR, reports.
///   * SetView — a non-owning read-only view over packed words, the common
///     currency between BitSet and the arena-backed SetSlab
///     (support/SetSlab.h) that the DP pipeline stores its set families in.
///     A BitSet converts to a SetView implicitly, so APIs taking SetView
///     accept either representation.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_BITSET_H
#define LALR_SUPPORT_BITSET_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace lalr {

namespace detail {

/// Index of the first set bit at or after \p From in the packed words
/// \p W over a universe of \p NumBits, or NumBits if there is none.
inline size_t findNextBit(const uint64_t *W, size_t NumWords, size_t NumBits,
                          size_t From) {
  if (From >= NumBits)
    return NumBits;
  size_t WordIdx = From / 64;
  uint64_t Word = W[WordIdx] >> (From % 64);
  if (Word)
    return From + std::countr_zero(Word);
  for (++WordIdx; WordIdx < NumWords; ++WordIdx)
    if (W[WordIdx])
      return WordIdx * 64 + std::countr_zero(W[WordIdx]);
  return NumBits;
}

} // namespace detail

class BitSet;

/// A non-owning read-only view of a packed bit set: a word pointer plus the
/// universe size. Cheap to copy (two words); valid only while the owning
/// BitSet or SetSlab is alive and unresized. This is the type the look-ahead
/// pipeline hands out (LalrLookaheads::la, LookaheadFn) so that consumers
/// are agnostic to whether the bits live in a lone BitSet or a slab row.
class SetView {
public:
  SetView() = default;

  /// Views \p NumBits bits starting at word \p Words.
  SetView(const uint64_t *Words, size_t NumBits)
      : Data(Words), NumBits(NumBits) {}

  /// Implicit view of a whole BitSet (defined after BitSet below).
  SetView(const BitSet &Set); // NOLINT(google-explicit-constructor)

  /// Returns the universe size (number of addressable bits).
  size_t size() const { return NumBits; }

  size_t numWords() const { return (NumBits + 63) / 64; }

  /// Raw packed words; numWords() entries.
  const uint64_t *words() const { return Data; }

  /// Returns true if no bit is set.
  bool empty() const {
    for (size_t I = 0, E = numWords(); I != E; ++I)
      if (Data[I])
        return false;
    return true;
  }

  /// Returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (size_t I = 0, E = numWords(); I != E; ++I)
      N += std::popcount(Data[I]);
    return N;
  }

  /// Tests bit \p Idx.
  bool test(size_t Idx) const {
    assert(Idx < NumBits && "SetView::test out of range");
    return (Data[Idx / 64] >> (Idx % 64)) & 1;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(SetView Other) const {
    assert(NumBits == Other.NumBits && "SetView universe mismatch");
    for (size_t I = 0, E = numWords(); I != E; ++I)
      if (Data[I] & ~Other.Data[I])
        return false;
    return true;
  }

  bool operator==(SetView Other) const {
    if (NumBits != Other.NumBits)
      return false;
    for (size_t I = 0, E = numWords(); I != E; ++I)
      if (Data[I] != Other.Data[I])
        return false;
    return true;
  }
  bool operator!=(SetView Other) const { return !(*this == Other); }

  /// Returns the index of the first set bit at or after \p From, or
  /// size() if there is none. Drives the iterator.
  size_t findNext(size_t From) const {
    return detail::findNextBit(Data, numWords(), NumBits, From);
  }

  /// Forward iterator over the indices of set bits, smallest first.
  /// (Holds the raw words, not a SetView — SetView is incomplete here.)
  class ConstIterator {
  public:
    ConstIterator(const uint64_t *Data, size_t NumBits, size_t Idx)
        : Data(Data), NumBits(NumBits), Idx(Idx) {}
    size_t operator*() const { return Idx; }
    ConstIterator &operator++() {
      Idx = detail::findNextBit(Data, (NumBits + 63) / 64, NumBits, Idx + 1);
      return *this;
    }
    bool operator==(const ConstIterator &O) const { return Idx == O.Idx; }
    bool operator!=(const ConstIterator &O) const { return Idx != O.Idx; }

  private:
    const uint64_t *Data;
    size_t NumBits;
    size_t Idx;
  };

  ConstIterator begin() const {
    return ConstIterator(Data, NumBits, findNext(0));
  }
  ConstIterator end() const { return ConstIterator(Data, NumBits, NumBits); }

  /// Collects the set bits into a vector, in increasing order.
  std::vector<size_t> toVector() const;

private:
  const uint64_t *Data = nullptr;
  size_t NumBits = 0;
};

/// A fixed-universe dynamic bit set over indices [0, size()).
///
/// All binary operations require both operands to share the same universe
/// size; this is asserted rather than resized silently, because mixing
/// terminal sets from different grammars is always a bug.
class BitSet {
public:
  BitSet() = default;

  /// Creates an empty set over a universe of \p NumBits elements.
  explicit BitSet(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  /// Materializes a view (e.g. a slab row) into an owning set.
  static BitSet fromView(SetView V) {
    BitSet S(V.size());
    for (size_t I = 0, E = S.Words.size(); I != E; ++I)
      S.Words[I] = V.words()[I];
    return S;
  }

  /// Returns the universe size (number of addressable bits).
  size_t size() const { return NumBits; }

  /// Returns true if no bit is set.
  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Returns the number of set bits (one std::popcount per word).
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += std::popcount(W);
    return N;
  }

  /// Tests bit \p Idx.
  bool test(size_t Idx) const {
    assert(Idx < NumBits && "BitSet::test out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  /// Sets bit \p Idx. Returns true if the bit was previously clear.
  bool set(size_t Idx) {
    assert(Idx < NumBits && "BitSet::set out of range");
    uint64_t &W = Words[Idx / 64];
    uint64_t Mask = uint64_t(1) << (Idx % 64);
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  /// Clears bit \p Idx.
  void reset(size_t Idx) {
    assert(Idx < NumBits && "BitSet::reset out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  /// Clears all bits, keeping the universe size.
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Unions \p Other into this set. Returns true if any bit was added.
  /// This is the hot operation of the digraph algorithm.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Unions a view (e.g. a slab row) over the same universe into this set.
  bool unionWith(SetView Other) {
    assert(NumBits == Other.size() && "BitSet universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.words()[I];
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Unions a set over a smaller-or-equal universe into this one (the
  /// extra high indices of this set are unaffected). Used where a
  /// terminal set flows into a set with extra sentinel slots, e.g. the
  /// YACC baseline's dummy look-ahead symbol.
  bool unionWithSubset(const BitSet &Other) {
    assert(Other.NumBits <= NumBits && "subset union needs a smaller "
                                       "universe on the right");
    bool Changed = false;
    for (size_t I = 0, E = Other.Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Intersects this set with \p Other in place.
  void intersectWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
  }

  /// Removes every element of \p Other from this set.
  void subtract(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// Returns true if this set and \p Other share no element.
  bool disjointWith(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return false;
    return true;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & ~Other.Words[I])
        return false;
    return true;
  }

  bool operator==(const BitSet &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitSet &Other) const { return !(*this == Other); }

  /// Returns the index of the first set bit at or after \p From, or
  /// size() if there is none. Drives the iterator.
  size_t findNext(size_t From) const {
    return detail::findNextBit(Words.data(), Words.size(), NumBits, From);
  }

  /// Forward iterator over the indices of set bits, smallest first.
  class ConstIterator {
  public:
    ConstIterator(const BitSet &Parent, size_t Idx)
        : Parent(&Parent), Idx(Idx) {}
    size_t operator*() const { return Idx; }
    ConstIterator &operator++() {
      Idx = Parent->findNext(Idx + 1);
      return *this;
    }
    bool operator==(const ConstIterator &O) const { return Idx == O.Idx; }
    bool operator!=(const ConstIterator &O) const { return Idx != O.Idx; }

  private:
    const BitSet *Parent;
    size_t Idx;
  };

  ConstIterator begin() const { return ConstIterator(*this, findNext(0)); }
  ConstIterator end() const { return ConstIterator(*this, NumBits); }

  /// Collects the set bits into a vector, in increasing order.
  std::vector<size_t> toVector() const;

  /// Read-only view of the packed words; used for hashing/interning sets
  /// (e.g. canonical LR(1) state identity).
  const std::vector<uint64_t> &words() const { return Words; }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

inline SetView::SetView(const BitSet &Set)
    : Data(Set.words().data()), NumBits(Set.size()) {}

} // namespace lalr

#endif // LALR_SUPPORT_BITSET_H
