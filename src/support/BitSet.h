//===- support/BitSet.h - Dynamic bit set -----------------------*- C++ -*-===//
//
// Part of the lalr project, a reproduction of DeRemer & Pennello,
// "Efficient computation of LALR(1) look-ahead sets" (SIGPLAN '79).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit set used throughout the library to represent
/// terminal sets (DR, Read, Follow, LA, FIRST, FOLLOW). Look-ahead
/// computation is dominated by set unions, so the representation is a packed
/// array of 64-bit words and every union reports whether it changed anything,
/// which the fixpoint algorithms rely on.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_BITSET_H
#define LALR_SUPPORT_BITSET_H

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace lalr {

/// A fixed-universe dynamic bit set over indices [0, size()).
///
/// All binary operations require both operands to share the same universe
/// size; this is asserted rather than resized silently, because mixing
/// terminal sets from different grammars is always a bug.
class BitSet {
public:
  BitSet() = default;

  /// Creates an empty set over a universe of \p NumBits elements.
  explicit BitSet(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  /// Returns the universe size (number of addressable bits).
  size_t size() const { return NumBits; }

  /// Returns true if no bit is set.
  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Returns the number of set bits.
  size_t count() const;

  /// Tests bit \p Idx.
  bool test(size_t Idx) const {
    assert(Idx < NumBits && "BitSet::test out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  /// Sets bit \p Idx. Returns true if the bit was previously clear.
  bool set(size_t Idx) {
    assert(Idx < NumBits && "BitSet::set out of range");
    uint64_t &W = Words[Idx / 64];
    uint64_t Mask = uint64_t(1) << (Idx % 64);
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  /// Clears bit \p Idx.
  void reset(size_t Idx) {
    assert(Idx < NumBits && "BitSet::reset out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  /// Clears all bits, keeping the universe size.
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Unions \p Other into this set. Returns true if any bit was added.
  /// This is the hot operation of the digraph algorithm.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Unions a set over a smaller-or-equal universe into this one (the
  /// extra high indices of this set are unaffected). Used where a
  /// terminal set flows into a set with extra sentinel slots, e.g. the
  /// YACC baseline's dummy look-ahead symbol.
  bool unionWithSubset(const BitSet &Other) {
    assert(Other.NumBits <= NumBits && "subset union needs a smaller "
                                       "universe on the right");
    bool Changed = false;
    for (size_t I = 0, E = Other.Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Intersects this set with \p Other in place.
  void intersectWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
  }

  /// Removes every element of \p Other from this set.
  void subtract(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// Returns true if this set and \p Other share no element.
  bool disjointWith(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return false;
    return true;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "BitSet universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & ~Other.Words[I])
        return false;
    return true;
  }

  bool operator==(const BitSet &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitSet &Other) const { return !(*this == Other); }

  /// Returns the index of the first set bit at or after \p From, or
  /// size() if there is none. Drives the iterator.
  size_t findNext(size_t From) const;

  /// Forward iterator over the indices of set bits, smallest first.
  class ConstIterator {
  public:
    ConstIterator(const BitSet &Parent, size_t Idx)
        : Parent(&Parent), Idx(Idx) {}
    size_t operator*() const { return Idx; }
    ConstIterator &operator++() {
      Idx = Parent->findNext(Idx + 1);
      return *this;
    }
    bool operator==(const ConstIterator &O) const { return Idx == O.Idx; }
    bool operator!=(const ConstIterator &O) const { return Idx != O.Idx; }

  private:
    const BitSet *Parent;
    size_t Idx;
  };

  ConstIterator begin() const { return ConstIterator(*this, findNext(0)); }
  ConstIterator end() const { return ConstIterator(*this, NumBits); }

  /// Collects the set bits into a vector, in increasing order.
  std::vector<size_t> toVector() const;

  /// Read-only view of the packed words; used for hashing/interning sets
  /// (e.g. canonical LR(1) state identity).
  const std::vector<uint64_t> &words() const { return Words; }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace lalr

#endif // LALR_SUPPORT_BITSET_H
