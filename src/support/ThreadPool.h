//===- support/ThreadPool.h - Fixed worker pool -----------------*- C++ -*-===//
///
/// \file
/// A small fixed-size worker pool built for the parallel build path of the
/// look-ahead pipeline. The only primitive is parallelFor over an index
/// range, which splits the range into contiguous chunks whose boundaries
/// depend solely on (Begin, End, NumChunks) — so a caller that gives each
/// chunk its own output slice gets deterministic, bit-identical results no
/// matter which worker executes which chunk or in what order. The calling
/// thread participates as one of the workers, so a pool of size N uses N
/// OS threads in total (N-1 spawned), and a pool of size 1 degenerates to
/// an inline loop exercising the exact same chunked code path.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_THREADPOOL_H
#define LALR_SUPPORT_THREADPOOL_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace lalr {

/// Fixed pool of worker threads executing chunked index-range loops.
/// Reusable across any number of parallelFor submissions; submissions are
/// serialized (parallelFor blocks until the loop completes), matching the
/// pipeline's stage-at-a-time structure.
class ThreadPool {
public:
  /// Creates a pool of \p Workers total executors (must be >= 1). The
  /// constructor spawns Workers-1 OS threads; the thread calling
  /// parallelFor is the remaining executor.
  explicit ThreadPool(unsigned Workers);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Joins all workers. Must not be called while a parallelFor is
  /// running on another thread.
  ~ThreadPool();

  /// Total executor count (spawned threads + the calling thread).
  unsigned workerCount() const { return NumWorkers; }

  /// The body of one chunk: (ChunkIndex, ChunkBegin, ChunkEnd).
  using ChunkBody = std::function<void(size_t, size_t, size_t)>;

  /// Splits [Begin, End) into \p NumChunks contiguous chunks (0 = one per
  /// worker) and runs \p Body over them on the pool, the calling thread
  /// included. Blocks until every chunk has finished. Chunk boundaries
  /// are a pure function of (Begin, End, NumChunks) — see chunkRange.
  ///
  /// If a body throws, remaining unclaimed chunks are skipped and the
  /// first exception (in claim order) is rethrown here; the pool remains
  /// usable afterwards.
  void parallelFor(size_t Begin, size_t End, const ChunkBody &Body,
                   size_t NumChunks = 0);

  /// The half-open subrange of [Begin, End) owned by chunk \p Chunk when
  /// split into \p NumChunks parts: sizes differ by at most one, earlier
  /// chunks take the remainder. Exposed for callers pre-sizing per-chunk
  /// output storage (and for the unit tests).
  static std::pair<size_t, size_t> chunkRange(size_t Begin, size_t End,
                                              size_t NumChunks, size_t Chunk);

private:
  struct Job {
    const ChunkBody *Body = nullptr;
    size_t Begin = 0, End = 0, NumChunks = 0;
    std::atomic<size_t> NextChunk{0};
    std::atomic<bool> Aborted{false};
    Mutex ErrMu{"pool.job-error", lockrank::PoolJobError};
    std::exception_ptr Error LALR_GUARDED_BY(ErrMu);
  };

  void workerLoop();
  static void runChunks(Job &J);

  unsigned NumWorkers;
  std::vector<std::thread> Threads;

  Mutex Mu{"pool.jobs", lockrank::PoolJobs};
  CondVar CvWork; ///< workers wait here for a job
  CondVar CvDone; ///< parallelFor waits here for detach
  Job *Cur LALR_GUARDED_BY(Mu) = nullptr;
  uint64_t JobSeq LALR_GUARDED_BY(Mu) = 0; ///< bumps per submission
  size_t Attached LALR_GUARDED_BY(Mu) = 0; ///< workers currently inside Cur
  bool Stop LALR_GUARDED_BY(Mu) = false;
};

} // namespace lalr

#endif // LALR_SUPPORT_THREADPOOL_H
