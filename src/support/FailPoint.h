//===- support/FailPoint.h - Fault-injection sites for the pipeline -*- C++ -*-===//
///
/// \file
/// A tiny fault-injection harness: every build stage declares one named
/// site (`failPoint("lr0-build")`); tests (or the `LALR_FAILPOINTS`
/// environment variable) arm sites to force a structured failure there,
/// proving each abort path produces a clean BuildStatus and never a
/// poisoned cache entry.
///
/// Sites (one per stage, matching the stage names in PipelineStats, plus
/// the slab arena-allocation site inside the relations/la-union stages
/// and the daemon's wire-I/O sites):
///   analysis, lr0-build, nt-index, relations-build, slab, solve-read,
///   solve-follow, la-union, lr1-build, pager-build, table-fill,
///   compress, verify, service-execute, parse, net_accept, net_read,
///   net_write
///
/// The disarmed fast path is a single relaxed atomic load of a global
/// armed-site count — measured noise even inside the DP inner stages.
/// Arming is test-only and goes through a mutex.
///
/// Env syntax: `LALR_FAILPOINTS=site[=throw|limit|cancel][,site...]`
///   throw  (default) — BuildAbort(Internal, which=site)
///   limit  — BuildAbort(LimitExceeded, which=site)
///   cancel — BuildAbort(Cancelled)
/// Hardened like LALR_THREADS: a malformed item — unknown site name,
/// unknown action, or empty site — warns once on stderr and is ignored,
/// so a typo cannot silently misconfigure fault injection (programmatic
/// arm() stays unvalidated: tests may declare ad-hoc sites).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_SUPPORT_FAILPOINT_H
#define LALR_SUPPORT_FAILPOINT_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lalr {

/// What an armed failpoint does when its site is reached.
enum class FailPointAction : uint8_t {
  Throw,  ///< BuildAbort(Internal) naming the site — "unexpected" failure
  Limit,  ///< BuildAbort(LimitExceeded) naming the site as the limit
  Cancel, ///< BuildAbort(Cancelled) — as if a token fired exactly here
};

/// Global registry of armed sites. Process-wide singleton; thread-safe.
class FailPointRegistry {
public:
  static FailPointRegistry &instance();

  /// Declares \p Site as a known failpoint site, making it armable via
  /// `LALR_FAILPOINTS`. The built-in per-stage sites (allFailPointSites)
  /// are registered by the constructor; a new subsystem registers its
  /// sites at startup. Duplicate registration is a HARD ERROR
  /// (std::logic_error): two subsystems silently sharing a site name
  /// would make env arming ambiguous and fire faults in code the test
  /// never meant to touch.
  void registerSite(const char *Site);

  /// True when \p Site has been registered (built-in or registerSite).
  bool isKnownSite(const std::string &Site) const;

  /// Arms \p Site. \p SkipHits > 0 lets the first N hits pass (to fail
  /// on a later traversal of the same site). \p MaxFires > 0 auto-disarms
  /// the site after it has fired that many times — the one-shot mode the
  /// abort-then-retry tests use (fail exactly once, then let the retry
  /// through); 0 fires forever. Re-arming overwrites.
  void arm(const std::string &Site,
           FailPointAction Action = FailPointAction::Throw,
           uint64_t SkipHits = 0, uint64_t MaxFires = 0);

  /// Disarms \p Site; returns false when it was not armed.
  bool disarm(const std::string &Site);

  void disarmAll();

  std::vector<std::string> armedSites() const;

  /// Times any site fired since process start (test observability).
  uint64_t totalTrips() const {
    return Trips.load(std::memory_order_relaxed);
  }

  /// Slow path of failPoint(): called only when ArmedCount != 0.
  /// Throws BuildAbort if \p Site is armed and past its skip count.
  void onHit(const char *Site);

  /// Fast-path gate read by failPoint().
  int armedCount() const { return ArmedCount.load(std::memory_order_relaxed); }

private:
  FailPointRegistry();

  struct Entry {
    FailPointAction Action;
    uint64_t SkipHits; ///< hits still to let pass before firing
    uint64_t MaxFires; ///< fires left before auto-disarm; 0 = unlimited
  };

  bool isKnownSiteLocked(const std::string &Site) const LALR_REQUIRES(Mu);

  mutable Mutex Mu{"failpoint.registry", lockrank::FailPointRegistry};
  std::unordered_map<std::string, Entry> Sites LALR_GUARDED_BY(Mu);
  std::vector<std::string> Known LALR_GUARDED_BY(Mu);
  std::atomic<int> ArmedCount{0};
  std::atomic<uint64_t> Trips{0};
};

/// The probe stages call. Free when nothing is armed (one relaxed load).
inline void failPoint(const char *Site) {
  FailPointRegistry &R = FailPointRegistry::instance();
  if (R.armedCount() == 0)
    return;
  R.onHit(Site);
}

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor, so an ASSERT mid-test cannot leak an armed site into the
/// next test.
class ScopedFailPoint {
public:
  explicit ScopedFailPoint(std::string Site,
                           FailPointAction Action = FailPointAction::Throw,
                           uint64_t SkipHits = 0, uint64_t MaxFires = 0)
      : Site(std::move(Site)) {
    FailPointRegistry::instance().arm(this->Site, Action, SkipHits, MaxFires);
  }
  ~ScopedFailPoint() { FailPointRegistry::instance().disarm(Site); }

  ScopedFailPoint(const ScopedFailPoint &) = delete;
  ScopedFailPoint &operator=(const ScopedFailPoint &) = delete;

private:
  std::string Site;
};

/// The canonical site list (for tests that sweep every stage and for
/// `lalr_batchd --list-failpoints`). Terminated by nullptr.
const char *const *allFailPointSites();

} // namespace lalr

#endif // LALR_SUPPORT_FAILPOINT_H
