//===- glr/GlrParser.h - Generalized LR (Tomita) recognition ----*- C++ -*-===//
///
/// \file
/// A generalized-LR recognizer over a *multi-action* table: where a
/// deterministic LR table must resolve conflicts, the GLR table keeps
/// every action and the driver forks a graph-structured stack (GSS),
/// exploring all parses in parallel (Tomita's algorithm with Farshi's
/// re-reduction fix). With DP LALR(1) look-aheads feeding the table the
/// recognizer accepts exactly L(G) for any grammar — LALR look-ahead
/// sets over-approximate the exact right context, so they can never
/// prune a valid reduction, only impossible ones — which lets the
/// ambiguous and non-LR(k) corpus grammars be *parsed*, not just
/// Earley-recognized.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GLR_GLRPARSER_H
#define LALR_GLR_GLRPARSER_H

#include "grammar/Analysis.h"
#include "lr/Lr0Automaton.h"
#include "lr/ParseTable.h"
#include "support/Cancellation.h"

#include <span>
#include <vector>

namespace lalr {

/// An LR table that keeps every action per (state, terminal) cell.
class GlrTable {
public:
  /// Builds from the automaton and a look-ahead source (DP LALR(1) by
  /// default callers; SLR or reduce-everywhere LR(0) also work — coarser
  /// look-aheads only add doomed forks).
  static GlrTable build(const Lr0Automaton &A, const LookaheadFn &LA);

  /// Shift target for (State, T), or InvalidState.
  StateId shift(uint32_t State, SymbolId T) const;

  /// All productions reducible in State on look-ahead T (production 0 =
  /// accept is excluded; see accepts()).
  std::span<const ProductionId> reduces(uint32_t State, SymbolId T) const;

  /// True if (State, T) carries the accept action.
  bool accepts(uint32_t State, SymbolId T) const;

  /// GOTO by dense nonterminal index (Grammar::ntIndex).
  uint32_t gotoNt(uint32_t State, uint32_t NtIdx) const;

  size_t numStates() const { return NumStates; }

  /// Number of cells holding more than one action (the nondeterminism
  /// the GSS must fork on); 0 means the grammar was deterministic under
  /// the look-aheads used.
  size_t conflictCells() const;

private:
  size_t NumStates = 0;
  size_t NumTerminals = 0;
  std::vector<StateId> Shifts;                    // dense, InvalidState
  std::vector<std::vector<ProductionId>> Reduces; // dense cells
  std::vector<bool> Accepts;                      // dense
  std::vector<uint32_t> Gotos;                    // dense, InvalidState
  size_t NumNonterminals = 0;
};

/// Result of a GLR run.
struct GlrResult {
  bool Accepted = false;
  /// Peak number of parallel stacks alive after a shift — 1 everywhere
  /// means distinct LR states never coexisted.
  size_t PeakFrontier = 0;
  /// Total GSS nodes created (a work measure).
  size_t TotalNodes = 0;
  /// GSS merges: edges added to a node that already had a predecessor.
  /// 0 means the run was fully deterministic; nondeterminism (local
  /// conflicts or real ambiguity) shows up here even when same-state
  /// stacks immediately re-merge.
  size_t Merges = 0;
};

/// Recognizes \p Input (terminal ids, no $end) with the GSS algorithm.
/// When \p Guard is set, the GSS loops poll it (deadline/cancellation
/// abort via BuildAbort) and every node allocation is checked against
/// BuildLimits::MaxGssNodes — the work ceiling that bounds ambiguous
/// blowup under the parse service.
GlrResult glrRecognize(const Grammar &G, const GlrTable &Table,
                       std::span<const SymbolId> Input,
                       const BuildGuard *Guard = nullptr);

/// Convenience: build the table with DP LALR(1) look-aheads and run.
GlrResult glrRecognize(const Grammar &G, std::span<const SymbolId> Input,
                       const BuildGuard *Guard = nullptr);

} // namespace lalr

#endif // LALR_GLR_GLRPARSER_H
