//===- glr/GlrParser.cpp - Generalized LR (Tomita) recognition ----------------===//

#include "glr/GlrParser.h"

#include "lalr/LalrLookaheads.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

GlrTable GlrTable::build(const Lr0Automaton &A, const LookaheadFn &LA) {
  const Grammar &G = A.grammar();
  GlrTable T;
  T.NumStates = A.numStates();
  T.NumTerminals = G.numTerminals();
  T.NumNonterminals = G.numNonterminals();
  T.Shifts.assign(T.NumStates * T.NumTerminals, InvalidState);
  T.Reduces.assign(T.NumStates * T.NumTerminals, {});
  T.Accepts.assign(T.NumStates * T.NumTerminals, false);
  T.Gotos.assign(T.NumStates * T.NumNonterminals, InvalidState);

  // lalr_lint: no-poll(GlrTable::build takes no guard; the table fill is a
  // bounded post-pass over an automaton whose construction was guarded)
  for (StateId S = 0; S < A.numStates(); ++S) {
    for (auto [Sym, Target] : A.state(S).Transitions) {
      if (G.isTerminal(Sym))
        T.Shifts[S * T.NumTerminals + Sym] = Target;
      else
        T.Gotos[S * T.NumNonterminals + G.ntIndex(Sym)] = Target;
    }
    for (ProductionId P : A.state(S).Reductions) {
      SetView Set = LA(S, P);
      for (size_t Term : Set) {
        if (P == 0)
          T.Accepts[S * T.NumTerminals + Term] = true;
        else
          T.Reduces[S * T.NumTerminals + Term].push_back(P);
      }
    }
  }
  return T;
}

StateId GlrTable::shift(uint32_t State, SymbolId Term) const {
  return Shifts[State * NumTerminals + Term];
}

std::span<const ProductionId> GlrTable::reduces(uint32_t State,
                                                SymbolId Term) const {
  return Reduces[State * NumTerminals + Term];
}

bool GlrTable::accepts(uint32_t State, SymbolId Term) const {
  return Accepts[State * NumTerminals + Term];
}

uint32_t GlrTable::gotoNt(uint32_t State, uint32_t NtIdx) const {
  return Gotos[State * NumNonterminals + NtIdx];
}

size_t GlrTable::conflictCells() const {
  size_t N = 0;
  for (size_t Cell = 0; Cell < Reduces.size(); ++Cell) {
    size_t Actions = Reduces[Cell].size();
    if (Shifts[Cell] != InvalidState)
      ++Actions;
    if (Accepts[Cell])
      ++Actions;
    if (Actions > 1)
      ++N;
  }
  return N;
}

namespace {

/// One GSS node: an LR state within one input frontier, with edges to
/// its predecessor nodes (indices into the global node pool).
struct GssNode {
  StateId State;
  std::vector<uint32_t> Preds;
};

} // namespace

GlrResult lalr::glrRecognize(const Grammar &G, const GlrTable &Table,
                             std::span<const SymbolId> Input,
                             const BuildGuard *Guard) {
  GlrResult Result;
  std::vector<GssNode> Pool;
  // Work-ceiling check for every GSS node allocation: ambiguous grammars
  // can fork superlinearly, and TotalNodes is the natural work measure.
  auto checkNodeBudget = [&] {
    if (Guard)
      Guard->checkGssNodes(Result.TotalNodes);
  };
  // Current frontier: node indices, unique per LR state.
  std::vector<uint32_t> Frontier;

  auto nodeInFrontier = [&](StateId S) -> uint32_t {
    for (uint32_t N : Frontier)
      if (Pool[N].State == S)
        return N;
    return UINT32_MAX;
  };
  auto addEdge = [&](uint32_t From, uint32_t To) -> bool {
    auto &P = Pool[From].Preds;
    if (std::find(P.begin(), P.end(), To) != P.end())
      return false;
    if (!P.empty())
      ++Result.Merges;
    P.push_back(To);
    return true;
  };

  Pool.push_back({0, {}});
  Frontier.push_back(0);
  Result.TotalNodes = 1;
  Result.PeakFrontier = 1;

  const size_t N = Input.size();
  size_t WorkSteps = 0;
  for (size_t Pos = 0; Pos <= N; ++Pos) {
    guardPoll(Guard);
    SymbolId Tok = Pos < N ? Input[Pos] : G.eofSymbol();

    // Reduce phase: a worklist of (node, production) obligations. When a
    // reduction adds an edge to an existing node, that node's
    // reductions must be redone through the new edge (Farshi); redoing
    // them wholesale is correct because addEdge dedups.
    std::vector<std::pair<uint32_t, ProductionId>> Work;
    auto scheduleAll = [&](uint32_t Node) {
      for (ProductionId P : Table.reduces(Pool[Node].State, Tok))
        Work.emplace_back(Node, P);
    };
    for (uint32_t Node : Frontier)
      scheduleAll(Node);

    std::vector<uint32_t> PathEnds;
    while (!Work.empty()) {
      guardPollStrided(Guard, WorkSteps++);
      auto [Node, Prod] = Work.back();
      Work.pop_back();
      const size_t Len = G.production(Prod).Rhs.size();
      // Enumerate all predecessors at distance Len.
      PathEnds.clear();
      PathEnds.push_back(Node);
      for (size_t Step = 0; Step < Len; ++Step) {
        std::vector<uint32_t> Next;
        for (uint32_t V : PathEnds)
          for (uint32_t U : Pool[V].Preds)
            if (std::find(Next.begin(), Next.end(), U) == Next.end())
              Next.push_back(U);
        PathEnds = std::move(Next);
      }
      for (uint32_t U : PathEnds) {
        uint32_t Target =
            Table.gotoNt(Pool[U].State, G.ntIndex(G.production(Prod).Lhs));
        if (Target == InvalidState)
          continue; // pruned by a coarse look-ahead fork; impossible path
        uint32_t W = nodeInFrontier(Target);
        if (W == UINT32_MAX) {
          W = static_cast<uint32_t>(Pool.size());
          Pool.push_back({Target, {}});
          Frontier.push_back(W);
          ++Result.TotalNodes;
          checkNodeBudget();
          addEdge(W, U);
          scheduleAll(W);
        } else if (addEdge(W, U)) {
          // New edge into an existing node: any frontier reduction may
          // now have new paths through it (Farshi's fix). Redo them all;
          // edge dedup bounds the total work.
          for (uint32_t Node2 : Frontier)
            scheduleAll(Node2);
        }
      }
    }

    if (Pos == N) {
      for (uint32_t Node : Frontier)
        if (Table.accepts(Pool[Node].State, Tok)) {
          Result.Accepted = true;
          break;
        }
      return Result;
    }

    // Shift phase.
    std::vector<uint32_t> NextFrontier;
    for (uint32_t Node : Frontier) {
      StateId Target = Table.shift(Pool[Node].State, Tok);
      if (Target == InvalidState)
        continue;
      uint32_t W = UINT32_MAX;
      for (uint32_t M : NextFrontier)
        if (Pool[M].State == Target)
          W = M;
      if (W == UINT32_MAX) {
        W = static_cast<uint32_t>(Pool.size());
        Pool.push_back({Target, {}});
        NextFrontier.push_back(W);
        ++Result.TotalNodes;
        checkNodeBudget();
      }
      addEdge(W, Node);
    }
    if (NextFrontier.empty())
      return Result; // every stack died: syntax error
    // Live parallel stacks after consuming the token: >1 means the
    // parse genuinely forked.
    Result.PeakFrontier = std::max(Result.PeakFrontier, NextFrontier.size());
    Frontier = std::move(NextFrontier);
  }
  return Result;
}

GlrResult lalr::glrRecognize(const Grammar &G,
                             std::span<const SymbolId> Input,
                             const BuildGuard *Guard) {
  GrammarAnalysis An(G);
  Lr0Automaton A = Lr0Automaton::build(G);
  LalrLookaheads LA = LalrLookaheads::compute(A, An);
  GlrTable Table = GlrTable::build(
      A, [&LA](StateId S, ProductionId P) -> SetView {
        return LA.la(S, P);
      });
  return glrRecognize(G, Table, Input, Guard);
}
