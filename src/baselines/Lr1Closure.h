//===- baselines/Lr1Closure.h - Shared LR(1) item closure -------*- C++ -*-===//
///
/// \file
/// LR(1) item-set closure shared by the YACC propagation baseline and the
/// canonical LR(1) automaton. Items are grouped by core (production + dot)
/// with a look-ahead bitset each; the universe may include one extra slot
/// past the terminals for YACC's dummy propagation symbol '#'.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_LR1CLOSURE_H
#define LALR_BASELINES_LR1CLOSURE_H

#include "grammar/Analysis.h"
#include "lr/Lr0Item.h"
#include "support/BitSet.h"

#include <vector>

namespace lalr {

/// An LR(1) item group [core, look-ahead set].
struct Lr1ItemGroup {
  Lr0Item Item;
  BitSet Lookaheads;
};

/// Computes the LR(1) closure of \p Seed: for every [A -> a.Bd, L] and
/// production B -> g, the item [B -> .g, FIRST(d) U (L if d nullable)] is
/// added, merging look-aheads of equal cores, to a fixpoint. Returns all
/// groups (seeds included). \p LaUniverse is the look-ahead bitset size
/// (numTerminals, +1 when a dummy symbol is in play).
std::vector<Lr1ItemGroup> lr1Closure(const Grammar &G,
                                     const GrammarAnalysis &An,
                                     std::vector<Lr1ItemGroup> Seed,
                                     size_t LaUniverse);

} // namespace lalr

#endif // LALR_BASELINES_LR1CLOSURE_H
