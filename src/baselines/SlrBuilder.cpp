//===- baselines/SlrBuilder.cpp - SLR(1) baseline ---------------------------===//

#include "baselines/SlrBuilder.h"

using namespace lalr;

ParseTable lalr::buildSlrTable(const Lr0Automaton &A,
                               const GrammarAnalysis &Analysis,
                               const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  return fillParseTable(
      A,
      [&](StateId, ProductionId P) -> SetView {
        return Analysis.follow(G.production(P).Lhs);
      },
      Guard);
}
