//===- baselines/Lr1Automaton.h - Canonical LR(1) collection ----*- C++ -*-===//
///
/// \file
/// Knuth's canonical LR(1) automaton. This is the ground truth of the test
/// suite — the definition of LALR(1) look-ahead is "merge the LR(1) states
/// with equal LR(0) cores and union the item look-aheads", and the DP
/// algorithm must reproduce exactly those sets — and the CLR(1) baseline
/// of the precision experiment (Table 4). States group items by core with
/// a look-ahead bitset per kernel item; state identity includes the
/// look-ahead sets (canonical construction, no merging).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_LR1AUTOMATON_H
#define LALR_BASELINES_LR1AUTOMATON_H

#include "baselines/Lr1Closure.h"
#include "grammar/Analysis.h"
#include "lr/Lr0Automaton.h"
#include "support/Cancellation.h"

#include <vector>

namespace lalr {

/// One canonical LR(1) state.
struct Lr1State {
  /// Kernel cores, sorted by packed value, with their look-ahead sets.
  std::vector<Lr0Item> KernelItems;
  std::vector<BitSet> KernelLa;

  /// Outgoing transitions, sorted by symbol.
  std::vector<std::pair<SymbolId, uint32_t>> Transitions;

  /// Reductions: production plus its LR(1) look-ahead set (includes the
  /// non-kernel epsilon items).
  std::vector<std::pair<ProductionId, BitSet>> Reductions;
};

/// The canonical collection of LR(1) item sets.
class Lr1Automaton {
public:
  /// \p Guard, when non-null, is polled once per explored state and
  /// enforces MaxLr1States/MaxItems as states are interned — the defense
  /// against the exponential-LR(1) grammar families.
  static Lr1Automaton build(const Grammar &G, const GrammarAnalysis &An,
                            const BuildGuard *Guard = nullptr);

  const Grammar &grammar() const { return *G; }
  size_t numStates() const { return States.size(); }
  const Lr1State &state(uint32_t S) const { return States[S]; }

  uint32_t gotoState(uint32_t S, SymbolId X) const;

  /// The LR(0) core key of a state: the packed kernel items only. Two
  /// LR(1) states with equal cores merge into one LALR(1) state.
  std::vector<uint64_t> coreKey(uint32_t S) const;

private:
  explicit Lr1Automaton(const Grammar &G) : G(&G) {}

  const Grammar *G;
  std::vector<Lr1State> States;
};

} // namespace lalr

#endif // LALR_BASELINES_LR1AUTOMATON_H
