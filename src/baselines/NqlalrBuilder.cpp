//===- baselines/NqlalrBuilder.cpp - NQLALR baseline ------------------------===//

#include "baselines/NqlalrBuilder.h"

#include "lalr/DigraphSolver.h"
#include "lalr/NtTransitionIndex.h"

#include <algorithm>

using namespace lalr;

NqlalrLookaheads NqlalrLookaheads::compute(const Lr0Automaton &A,
                                           const GrammarAnalysis &Analysis,
                                           PipelineStats *Stats) {
  const Grammar &G = A.grammar();
  NqlalrLookaheads Out;
  StageTimer RelationsT(Stats, "nqlalr-relations");
  Out.RedIdx = std::make_unique<ReductionIndex>(A);
  NtTransitionIndex NtIdx(A);
  LalrRelations True = buildLalrRelations(A, Analysis, NtIdx, *Out.RedIdx);

  // Quotient: every nonterminal transition collapses onto its target
  // state. Assign dense node ids to the distinct target states.
  std::vector<uint32_t> NodeOfState(A.numStates(), UINT32_MAX);
  std::vector<uint32_t> NodeOfTrans(NtIdx.size());
  uint32_t NumNodes = 0;
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    StateId To = NtIdx[X].To;
    if (NodeOfState[To] == UINT32_MAX)
      NodeOfState[To] = NumNodes++;
    NodeOfTrans[X] = NodeOfState[To];
  }

  // Merge DR sets and adjacency through the quotient map.
  std::vector<BitSet> Dr(NumNodes, BitSet(G.numTerminals()));
  std::vector<std::vector<uint32_t>> Reads(NumNodes), Includes(NumNodes);
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    uint32_t N = NodeOfTrans[X];
    Dr[N].unionWith(True.DirectRead[X]);
    for (uint32_t Y : True.Reads.row(X))
      Reads[N].push_back(NodeOfTrans[Y]);
    for (uint32_t Y : True.Includes.row(X))
      Includes[N].push_back(NodeOfTrans[Y]);
  }
  for (auto &E : Reads) {
    std::sort(E.begin(), E.end());
    E.erase(std::unique(E.begin(), E.end()), E.end());
  }
  for (auto &E : Includes) {
    std::sort(E.begin(), E.end());
    E.erase(std::unique(E.begin(), E.end()), E.end());
  }

  RelationsT.stop();

  StageTimer SolveT(Stats, "nqlalr-solve");
  std::vector<BitSet> ReadSets = solveDigraph(Reads, std::move(Dr));
  std::vector<BitSet> FollowSets =
      solveDigraph(Includes, std::move(ReadSets));
  SolveT.stop();

  StageTimer UnionT(Stats, "nqlalr-la-union");
  Out.LaSets.assign(Out.RedIdx->size(), BitSet(G.numTerminals()));
  for (uint32_t Slot = 0; Slot < Out.RedIdx->size(); ++Slot)
    for (uint32_t X : True.Lookback.row(Slot))
      Out.LaSets[Slot].unionWith(FollowSets[NodeOfTrans[X]]);
  // The accept reduction's look-ahead is the end marker by definition
  // (no lookback exists for it; see LalrLookaheads::compute).
  Out.LaSets[Out.RedIdx->slot(A.acceptState(), 0)].set(G.eofSymbol());
  UnionT.stop();
  if (Stats)
    Stats->setCounter("nqlalr_nodes", NumNodes);
  return Out;
}

ParseTable lalr::buildNqlalrTable(const Lr0Automaton &A,
                                  const GrammarAnalysis &Analysis) {
  NqlalrLookaheads LA = NqlalrLookaheads::compute(A, Analysis);
  return fillParseTable(A, [&LA](StateId S, ProductionId P) -> SetView {
    return LA.la(S, P);
  });
}
