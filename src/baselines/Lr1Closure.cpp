//===- baselines/Lr1Closure.cpp - Shared LR(1) item closure -----------------===//

#include "baselines/Lr1Closure.h"

#include <unordered_map>

using namespace lalr;

std::vector<Lr1ItemGroup> lalr::lr1Closure(const Grammar &G,
                                           const GrammarAnalysis &An,
                                           std::vector<Lr1ItemGroup> Seed,
                                           size_t LaUniverse) {
  std::vector<Lr1ItemGroup> Items = std::move(Seed);
  std::unordered_map<uint64_t, size_t> IndexOf;
  for (size_t I = 0; I < Items.size(); ++I)
    IndexOf.emplace(Items[I].Item.packed(), I);

  std::vector<size_t> Work;
  for (size_t I = 0; I < Items.size(); ++I)
    Work.push_back(I);

  BitSet NewLa(LaUniverse);
  while (!Work.empty()) {
    size_t Idx = Work.back();
    Work.pop_back();
    // Copy the core: Items may reallocate while we expand.
    Lr0Item It = Items[Idx].Item;
    SymbolId B = It.nextSymbol(G);
    if (B == InvalidSymbol || G.isTerminal(B))
      continue;
    const Production &P = G.production(It.Prod);

    NewLa.clear();
    bool DeltaNullable = An.addFirstOfSeq(NewLa, P.Rhs, It.Dot + 1);
    if (DeltaNullable)
      NewLa.unionWith(Items[Idx].Lookaheads);

    for (ProductionId BP : G.productionsOf(B)) {
      Lr0Item New{BP, 0};
      auto [MapIt, Inserted] =
          IndexOf.try_emplace(New.packed(), Items.size());
      if (Inserted) {
        Items.push_back({New, BitSet(LaUniverse)});
        Items.back().Lookaheads.unionWith(NewLa);
        Work.push_back(MapIt->second);
      } else if (Items[MapIt->second].Lookaheads.unionWith(NewLa)) {
        Work.push_back(MapIt->second);
      }
    }
  }
  return Items;
}
