//===- baselines/SlrBuilder.h - SLR(1) baseline -----------------*- C++ -*-===//
///
/// \file
/// The SLR(1) baseline (DeRemer 1971): every reduction A -> w uses
/// FOLLOW(A) as its look-ahead set, ignoring the state. The paper compares
/// against SLR to show where the extra precision of true LALR(1) look-ahead
/// matters; SLR look-aheads are always supersets of the LALR(1) ones.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_SLRBUILDER_H
#define LALR_BASELINES_SLRBUILDER_H

#include "grammar/Analysis.h"
#include "lr/ParseTable.h"

namespace lalr {

/// Builds the SLR(1) parse table over the LR(0) automaton \p A.
ParseTable buildSlrTable(const Lr0Automaton &A, const GrammarAnalysis &Analysis,
                         const BuildGuard *Guard = nullptr);

} // namespace lalr

#endif // LALR_BASELINES_SLRBUILDER_H
