//===- baselines/BermudezLogothetis.h - LALR via derived FOLLOW -*- C++ -*-===//
///
/// \file
/// The Bermudez-Logothetis method ("Simple computation of LALR(1)
/// look-ahead sets", IPL 1989): build a *derived grammar* whose
/// nonterminals are the LR(0) automaton's nonterminal transitions —
///
///   for every transition (p, A) and production A -> X1...Xn:
///     (p, A) -> Y1...Yn,  Yi = (p_i, Xi) for nonterminal Xi
///                              (p_i = the state after walking X1..Xi-1
///                               from p), Yi = Xi for terminal Xi
///
/// — then the ordinary FOLLOW sets of the derived grammar are exactly
/// DeRemer-Pennello's per-transition Follow sets, and LA(q, A->w) is the
/// union of them over lookback. A fifth independent computation of the
/// same sets (after DP, YACC, LR(1)-merge and the definition itself),
/// closing the historical circle: LALR(1) is "SLR(1) of the derived
/// grammar".
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_BERMUDEZLOGOTHETIS_H
#define LALR_BASELINES_BERMUDEZLOGOTHETIS_H

#include "grammar/Analysis.h"
#include "lalr/Relations.h"
#include "lr/Lr0Automaton.h"
#include "pipeline/PipelineStats.h"

#include <memory>
#include <vector>

namespace lalr {

/// LALR(1) look-aheads computed as FOLLOW sets of the derived grammar.
class DerivedFollowLookaheads {
public:
  /// If \p Stats is nonnull, records stages bl-derive / bl-follow /
  /// bl-la-union and the derived grammar's size counters.
  static DerivedFollowLookaheads compute(const Lr0Automaton &A,
                                         const GrammarAnalysis &An,
                                         PipelineStats *Stats = nullptr);

  const BitSet &la(StateId State, ProductionId Prod) const {
    return LaSets[RedIdx->slot(State, Prod)];
  }
  const std::vector<BitSet> &laSets() const { return LaSets; }
  const ReductionIndex &reductions() const { return *RedIdx; }

  /// The derived grammar itself (nonterminals named "p@A"), exposed for
  /// inspection and tests. Its terminal id space equals the original's.
  const Grammar &derivedGrammar() const { return *Derived; }

private:
  std::unique_ptr<ReductionIndex> RedIdx;
  std::unique_ptr<Grammar> Derived;
  std::vector<BitSet> LaSets;
};

} // namespace lalr

#endif // LALR_BASELINES_BERMUDEZLOGOTHETIS_H
