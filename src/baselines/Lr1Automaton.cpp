//===- baselines/Lr1Automaton.cpp - Canonical LR(1) collection --------------===//

#include "baselines/Lr1Automaton.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace lalr;

namespace {

/// Canonical key of an LR(1) kernel: packed cores followed by the raw
/// look-ahead words of each item. Items must be sorted by core first.
std::vector<uint64_t> kernelKey(const std::vector<Lr0Item> &Items,
                                const std::vector<BitSet> &La) {
  std::vector<uint64_t> Key;
  Key.reserve(Items.size() * 3);
  for (size_t I = 0; I < Items.size(); ++I) {
    Key.push_back(Items[I].packed());
    for (uint64_t W : La[I].words())
      Key.push_back(W);
  }
  return Key;
}

} // namespace

Lr1Automaton Lr1Automaton::build(const Grammar &G, const GrammarAnalysis &An,
                                 const BuildGuard *Guard) {
  failPoint("lr1-build");
  const size_t NumT = G.numTerminals();
  Lr1Automaton A(G);

  std::map<std::vector<uint64_t>, uint32_t> StateByKernel;

  // Running kernel-item total across interned states, for MaxItems.
  uint64_t KernelItems = 0;

  // Interns a kernel given as parallel (unsorted) item/la vectors.
  auto internState = [&](std::vector<Lr0Item> Items,
                         std::vector<BitSet> La) -> uint32_t {
    // Sort both by the item core.
    std::vector<size_t> Order(Items.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t L, size_t R) {
      return Items[L].packed() < Items[R].packed();
    });
    std::vector<Lr0Item> SortedItems(Items.size());
    std::vector<BitSet> SortedLa(Items.size());
    for (size_t I = 0; I < Order.size(); ++I) {
      SortedItems[I] = Items[Order[I]];
      SortedLa[I] = std::move(La[Order[I]]);
    }
    std::vector<uint64_t> Key = kernelKey(SortedItems, SortedLa);
    auto [It, Inserted] =
        StateByKernel.try_emplace(std::move(Key), uint32_t(A.States.size()));
    if (Inserted) {
      Lr1State S;
      S.KernelItems = std::move(SortedItems);
      S.KernelLa = std::move(SortedLa);
      KernelItems += S.KernelItems.size();
      A.States.push_back(std::move(S));
      if (Guard) {
        Guard->checkLr1States(A.States.size());
        Guard->checkItems(KernelItems);
      }
    }
    return It->second;
  };

  {
    std::vector<Lr0Item> StartItems{Lr0Item{0, 0}};
    std::vector<BitSet> StartLa(1, BitSet(NumT));
    StartLa[0].set(G.eofSymbol());
    uint32_t Start = internState(std::move(StartItems), std::move(StartLa));
    assert(Start == 0 && "start state must be state 0");
    (void)Start;
  }

  for (uint32_t Cur = 0; Cur < A.States.size(); ++Cur) {
    guardPoll(Guard);
    // Closure of the kernel.
    std::vector<Lr1ItemGroup> Seed(A.States[Cur].KernelItems.size());
    for (size_t I = 0; I < Seed.size(); ++I) {
      Seed[I].Item = A.States[Cur].KernelItems[I];
      Seed[I].Lookaheads = A.States[Cur].KernelLa[I];
    }
    std::vector<Lr1ItemGroup> Closure =
        lr1Closure(G, An, std::move(Seed), NumT);

    // Group advances by symbol; collect reductions.
    std::map<SymbolId, std::pair<std::vector<Lr0Item>, std::vector<BitSet>>>
        Advances;
    std::vector<std::pair<ProductionId, BitSet>> Reductions;
    for (Lr1ItemGroup &CI : Closure) {
      SymbolId X = CI.Item.nextSymbol(G);
      if (X == InvalidSymbol) {
        Reductions.emplace_back(CI.Item.Prod, std::move(CI.Lookaheads));
        continue;
      }
      auto &[Items, La] = Advances[X];
      Items.push_back(Lr0Item{CI.Item.Prod, CI.Item.Dot + 1});
      La.push_back(std::move(CI.Lookaheads));
    }
    std::sort(Reductions.begin(), Reductions.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });

    std::vector<std::pair<SymbolId, uint32_t>> Transitions;
    Transitions.reserve(Advances.size());
    for (auto &[Sym, Kernel] : Advances) {
      uint32_t Target =
          internState(std::move(Kernel.first), std::move(Kernel.second));
      Transitions.emplace_back(Sym, Target);
    }
    A.States[Cur].Transitions = std::move(Transitions);
    A.States[Cur].Reductions = std::move(Reductions);
  }
  return A;
}

uint32_t Lr1Automaton::gotoState(uint32_t S, SymbolId X) const {
  const auto &T = States[S].Transitions;
  auto It = std::lower_bound(
      T.begin(), T.end(), X,
      [](const std::pair<SymbolId, uint32_t> &E, SymbolId X) {
        return E.first < X;
      });
  return (It != T.end() && It->first == X) ? It->second : UINT32_MAX;
}

std::vector<uint64_t> Lr1Automaton::coreKey(uint32_t S) const {
  std::vector<uint64_t> Key;
  Key.reserve(States[S].KernelItems.size());
  for (const Lr0Item &Item : States[S].KernelItems)
    Key.push_back(Item.packed());
  return Key;
}
