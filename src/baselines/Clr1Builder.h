//===- baselines/Clr1Builder.h - Canonical LR(1) tables ---------*- C++ -*-===//
///
/// \file
/// CLR(1) parse tables over the canonical LR(1) automaton. Maximum
/// precision, maximum state count — the other end of the trade-off the
/// paper's evaluation contrasts with LALR(1).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_CLR1BUILDER_H
#define LALR_BASELINES_CLR1BUILDER_H

#include "baselines/Lr1Automaton.h"
#include "lr/ParseTable.h"

namespace lalr {

/// Builds the canonical LR(1) parse table (states are \p A's LR(1)
/// states).
ParseTable buildClr1Table(const Lr1Automaton &A,
                          const BuildGuard *Guard = nullptr);

} // namespace lalr

#endif // LALR_BASELINES_CLR1BUILDER_H
