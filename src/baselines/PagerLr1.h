//===- baselines/PagerLr1.h - Pager's minimal LR(1) -------------*- C++ -*-===//
///
/// \file
/// Pager's practical general method (1977): build the LR(1) automaton but
/// merge a new state into an existing same-core state whenever the two
/// are *weakly compatible* — a sufficient condition guaranteeing the
/// merge cannot manufacture a conflict the canonical construction would
/// not have. The result has full LR(1) power at close to LR(0) size; it
/// is the modern resolution of the LALR-vs-canonical trade-off the
/// DeRemer-Pennello paper navigates, included as an extension baseline:
///
///   LR(0) states <= Pager states <= canonical LR(1) states,
///   Pager table conflict-free whenever the grammar is LR(1).
///
/// Weak compatibility of look-ahead vectors V (incoming) and W (existing)
/// over one core: for every item pair i != j,
///   (V_i ∩ W_j = ∅ and V_j ∩ W_i = ∅)  or  W_i ∩ W_j ≠ ∅  or
///   V_i ∩ V_j ≠ ∅.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_PAGERLR1_H
#define LALR_BASELINES_PAGERLR1_H

#include "baselines/Lr1Automaton.h"
#include "lr/ParseTable.h"
#include "pipeline/PipelineStats.h"

namespace lalr {

/// A minimal-LR(1) automaton built with weak-compatibility merging.
/// Shares the Lr1State representation with the canonical automaton.
class PagerLr1Automaton {
public:
  /// If \p Stats is nonnull, records the pager-build stage plus state and
  /// reprocess counters. \p Guard, when non-null, is polled per worklist
  /// step and enforces MaxLr1States/MaxItems (Pager states count against
  /// the LR(1) ceiling) as states are created.
  static PagerLr1Automaton build(const Grammar &G, const GrammarAnalysis &An,
                                 PipelineStats *Stats = nullptr,
                                 const BuildGuard *Guard = nullptr);

  const Grammar &grammar() const { return *G; }
  size_t numStates() const { return States.size(); }
  const Lr1State &state(uint32_t S) const { return States[S]; }

  /// Number of worklist reprocessings performed (merges that grew an
  /// existing state's look-aheads); an evaluation counter.
  size_t reprocessCount() const { return Reprocessed; }

private:
  explicit PagerLr1Automaton(const Grammar &G) : G(&G) {}

  const Grammar *G;
  std::vector<Lr1State> States;
  size_t Reprocessed = 0;
};

/// Builds the parse table over the Pager automaton.
ParseTable buildPagerTable(const PagerLr1Automaton &A,
                           const BuildGuard *Guard = nullptr);

} // namespace lalr

#endif // LALR_BASELINES_PAGERLR1_H
