//===- baselines/MergedLalrBuilder.cpp - LALR by LR(1) merging --------------===//

#include "baselines/MergedLalrBuilder.h"

#include <cassert>
#include <map>

using namespace lalr;

MergedLalrLookaheads MergedLalrLookaheads::compute(const Lr0Automaton &A,
                                                   const Lr1Automaton &L1) {
  const Grammar &G = A.grammar();
  assert(&G == &L1.grammar() && "automata must share one grammar");

  MergedLalrLookaheads Out;
  Out.RedIdx = std::make_unique<ReductionIndex>(A);
  Out.LaSets.assign(Out.RedIdx->size(), BitSet(G.numTerminals()));

  // Index the LR(0) states by their kernel core so LR(1) states can be
  // mapped onto them.
  std::map<std::vector<uint64_t>, StateId> Lr0ByCore;
  for (StateId S = 0; S < A.numStates(); ++S) {
    std::vector<uint64_t> Key;
    Key.reserve(A.state(S).Kernel.size());
    for (const Lr0Item &Item : A.state(S).Kernel)
      Key.push_back(Item.packed());
    Lr0ByCore.emplace(std::move(Key), S);
  }

  for (uint32_t S1 = 0; S1 < L1.numStates(); ++S1) {
    auto It = Lr0ByCore.find(L1.coreKey(S1));
    assert(It != Lr0ByCore.end() &&
           "every LR(1) core is an LR(0) kernel of the same grammar");
    StateId S0 = It->second;
    for (const auto &[Prod, LA] : L1.state(S1).Reductions)
      Out.LaSets[Out.RedIdx->slot(S0, Prod)].unionWith(LA);
  }
  return Out;
}

ParseTable lalr::buildMergedLalrTable(const Lr0Automaton &A,
                                      const GrammarAnalysis &Analysis) {
  Lr1Automaton L1 = Lr1Automaton::build(A.grammar(), Analysis);
  MergedLalrLookaheads LA = MergedLalrLookaheads::compute(A, L1);
  return fillParseTable(A, [&LA](StateId S, ProductionId P) -> SetView {
    return LA.la(S, P);
  });
}
