//===- baselines/YaccLalrBuilder.h - YACC propagation baseline --*- C++ -*-===//
///
/// \file
/// The look-ahead method used by YACC and described as Algorithm 4.63 in
/// Aho/Sethi/Ullman: for every kernel item, close it under LR(1) items
/// with a dummy look-ahead to discover *spontaneous* look-aheads and
/// *propagation links*, then iterate propagation over the links until
/// nothing changes, and finally re-close each state to attach look-aheads
/// to the (possibly non-kernel) reduction items.
///
/// This computes exactly the same LA sets as the DeRemer-Pennello pipeline
/// — the property suite asserts that — but does per-item LR(1) closures
/// and a multi-pass fixpoint, which is the running-time gap the paper's
/// evaluation reports (Table 3, Figs. 1-2).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_YACCLALRBUILDER_H
#define LALR_BASELINES_YACCLALRBUILDER_H

#include "grammar/Analysis.h"
#include "lalr/Relations.h"
#include "lr/ParseTable.h"
#include "pipeline/PipelineStats.h"

#include <memory>
#include <vector>

namespace lalr {

/// LALR(1) look-aheads computed by spontaneous generation + propagation.
class YaccLalrLookaheads {
public:
  /// If \p Stats is nonnull, records the three passes as stages
  /// (yacc-spontaneous, yacc-propagate, yacc-attach) plus the link and
  /// pass counters.
  static YaccLalrLookaheads compute(const Lr0Automaton &A,
                                    const GrammarAnalysis &Analysis,
                                    PipelineStats *Stats = nullptr);

  const BitSet &la(StateId State, ProductionId Prod) const {
    return LaSets[RedIdx->slot(State, Prod)];
  }
  const std::vector<BitSet> &laSets() const { return LaSets; }
  const ReductionIndex &reductions() const { return *RedIdx; }

  /// Evaluation counters: propagation links discovered and full passes
  /// over them until the fixpoint was reached.
  size_t propagationLinkCount() const { return NumLinks; }
  size_t propagationPassCount() const { return NumPasses; }

private:
  std::unique_ptr<ReductionIndex> RedIdx;
  std::vector<BitSet> LaSets;
  size_t NumLinks = 0;
  size_t NumPasses = 0;
};

/// Builds the LALR(1) parse table using the YACC method (identical table
/// to buildLalrTable, different computation).
ParseTable buildYaccLalrTable(const Lr0Automaton &A,
                              const GrammarAnalysis &Analysis);

} // namespace lalr

#endif // LALR_BASELINES_YACCLALRBUILDER_H
