//===- baselines/YaccLalrBuilder.cpp - YACC propagation baseline ------------===//

#include "baselines/YaccLalrBuilder.h"

#include "baselines/Lr1Closure.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

namespace {

/// Finds the position of \p Item within \p Kernel (sorted). Asserts on
/// absence: the closure of a state can only advance into kernels of its
/// successors.
size_t kernelIndexOf(const std::vector<Lr0Item> &Kernel, Lr0Item Item) {
  auto It = std::lower_bound(Kernel.begin(), Kernel.end(), Item);
  assert(It != Kernel.end() && *It == Item && "advanced item not in kernel");
  return static_cast<size_t>(It - Kernel.begin());
}

} // namespace

YaccLalrLookaheads
YaccLalrLookaheads::compute(const Lr0Automaton &A,
                            const GrammarAnalysis &An,
                            PipelineStats *Stats) {
  const Grammar &G = A.grammar();
  const size_t NumT = G.numTerminals();
  const size_t Dummy = NumT; // index of '#'
  const size_t LaUniverse = NumT + 1;

  YaccLalrLookaheads Out;
  Out.RedIdx = std::make_unique<ReductionIndex>(A);

  // Kernel look-ahead sets, per state and kernel-item position.
  std::vector<std::vector<BitSet>> KernelLa(A.numStates());
  // Flattened addressing of kernel items for the propagation links.
  std::vector<uint32_t> KernelOffset(A.numStates() + 1, 0);
  for (StateId S = 0; S < A.numStates(); ++S) {
    KernelLa[S].assign(A.state(S).Kernel.size(), BitSet(NumT));
    KernelOffset[S + 1] =
        KernelOffset[S] + static_cast<uint32_t>(A.state(S).Kernel.size());
  }
  struct Link {
    uint32_t From;
    uint32_t To;
  };
  std::vector<Link> Links;

  // Pass 1: discover spontaneous look-aheads and propagation links by
  // closing every kernel item with the dummy look-ahead.
  StageTimer SpontaneousT(Stats, "yacc-spontaneous");
  for (StateId S = 0; S < A.numStates(); ++S) {
    const auto &Kernel = A.state(S).Kernel;
    for (size_t KI = 0; KI < Kernel.size(); ++KI) {
      std::vector<Lr1ItemGroup> Seed(1);
      Seed[0].Item = Kernel[KI];
      Seed[0].Lookaheads = BitSet(LaUniverse);
      Seed[0].Lookaheads.set(Dummy);
      std::vector<Lr1ItemGroup> Closure =
          lr1Closure(G, An, std::move(Seed), LaUniverse);

      for (const Lr1ItemGroup &CI : Closure) {
        SymbolId X = CI.Item.nextSymbol(G);
        if (X == InvalidSymbol)
          continue; // complete items are handled in pass 3
        StateId T = A.gotoState(S, X);
        assert(T != InvalidState && "closure symbol must have a transition");
        size_t TIdx = kernelIndexOf(A.state(T).Kernel,
                                    Lr0Item{CI.Item.Prod, CI.Item.Dot + 1});
        // Spontaneous look-aheads: every concrete terminal in the set.
        for (size_t La : CI.Lookaheads) {
          if (La == Dummy)
            continue;
          KernelLa[T][TIdx].set(La);
        }
        if (CI.Lookaheads.test(Dummy))
          Links.push_back({KernelOffset[S] + static_cast<uint32_t>(KI),
                           KernelOffset[T] + static_cast<uint32_t>(TIdx)});
      }
    }
  }
  Out.NumLinks = Links.size();
  SpontaneousT.stop();

  // Initialization: the start item sees end-of-input.
  KernelLa[0][0].set(G.eofSymbol());

  // Pass 2: propagate over the links until the fixpoint.
  StageTimer PropagateT(Stats, "yacc-propagate");
  // Address decoding for the flattened link endpoints.
  auto slotSet = [&](uint32_t Flat) -> BitSet & {
    StateId S = static_cast<StateId>(
        std::upper_bound(KernelOffset.begin(), KernelOffset.end(), Flat) -
        KernelOffset.begin() - 1);
    return KernelLa[S][Flat - KernelOffset[S]];
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Out.NumPasses;
    for (const Link &L : Links)
      Changed |= slotSet(L.To).unionWith(slotSet(L.From));
  }

  PropagateT.stop();

  // Pass 3: attach look-aheads to reductions by re-closing each state's
  // kernel with its final look-aheads (non-kernel epsilon items get their
  // sets here).
  StageTimer AttachT(Stats, "yacc-attach");
  Out.LaSets.assign(Out.RedIdx->size(), BitSet(NumT));
  for (StateId S = 0; S < A.numStates(); ++S) {
    const auto &Kernel = A.state(S).Kernel;
    std::vector<Lr1ItemGroup> Seed(Kernel.size());
    for (size_t KI = 0; KI < Kernel.size(); ++KI) {
      Seed[KI].Item = Kernel[KI];
      Seed[KI].Lookaheads = KernelLa[S][KI]; // universe NumT, no dummy
    }
    std::vector<Lr1ItemGroup> Closure =
        lr1Closure(G, An, std::move(Seed), NumT);
    for (const Lr1ItemGroup &CI : Closure) {
      if (!CI.Item.isComplete(G))
        continue;
      Out.LaSets[Out.RedIdx->slot(S, CI.Item.Prod)].unionWith(CI.Lookaheads);
    }
  }
  AttachT.stop();
  if (Stats) {
    Stats->setCounter("yacc_links", Out.NumLinks);
    Stats->setCounter("yacc_passes", Out.NumPasses);
  }
  return Out;
}

ParseTable lalr::buildYaccLalrTable(const Lr0Automaton &A,
                                    const GrammarAnalysis &Analysis) {
  YaccLalrLookaheads LA = YaccLalrLookaheads::compute(A, Analysis);
  return fillParseTable(A, [&LA](StateId S, ProductionId P) -> SetView {
    return LA.la(S, P);
  });
}
