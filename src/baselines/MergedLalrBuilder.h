//===- baselines/MergedLalrBuilder.h - LALR by LR(1) merging ----*- C++ -*-===//
///
/// \file
/// The *defining* construction of LALR(1): build the canonical LR(1)
/// automaton and merge states with equal LR(0) cores, unioning item
/// look-aheads. Hopelessly slower than the DP algorithm (it materialises
/// the whole LR(1) state space) but it is the semantic ground truth the
/// property suite checks the DP and YACC computations against, and the
/// third column of the timing experiment (Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_MERGEDLALRBUILDER_H
#define LALR_BASELINES_MERGEDLALRBUILDER_H

#include "baselines/Lr1Automaton.h"
#include "lalr/Relations.h"
#include "lr/ParseTable.h"

#include <memory>

namespace lalr {

/// LALR(1) look-ahead sets obtained by merging the canonical LR(1) states
/// onto the LR(0) automaton, keyed like the DP ones by (state, prod).
class MergedLalrLookaheads {
public:
  /// \p A and \p L1 must be over the same grammar. Every LR(1) state maps
  /// to the unique LR(0) state with the same kernel core.
  static MergedLalrLookaheads compute(const Lr0Automaton &A,
                                      const Lr1Automaton &L1);

  const BitSet &la(StateId State, ProductionId Prod) const {
    return LaSets[RedIdx->slot(State, Prod)];
  }
  const std::vector<BitSet> &laSets() const { return LaSets; }
  const ReductionIndex &reductions() const { return *RedIdx; }

private:
  std::unique_ptr<ReductionIndex> RedIdx;
  std::vector<BitSet> LaSets;
};

/// Builds the LALR(1) table the slow way: full LR(1) construction, then
/// merging. Identical table to buildLalrTable.
ParseTable buildMergedLalrTable(const Lr0Automaton &A,
                                const GrammarAnalysis &Analysis);

} // namespace lalr

#endif // LALR_BASELINES_MERGEDLALRBUILDER_H
