//===- baselines/BermudezLogothetis.cpp - LALR via derived FOLLOW --------------===//

#include "baselines/BermudezLogothetis.h"

#include "grammar/GrammarBuilder.h"
#include "lalr/NtTransitionIndex.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lalr;

DerivedFollowLookaheads
DerivedFollowLookaheads::compute(const Lr0Automaton &A,
                                 const GrammarAnalysis &An,
                                 PipelineStats *Stats) {
  (void)An; // the derived grammar's own analysis does all the work
  const Grammar &G = A.grammar();
  StageTimer DeriveT(Stats, "bl-derive");
  NtTransitionIndex NtIdx(A);

  DerivedFollowLookaheads Out;
  Out.RedIdx = std::make_unique<ReductionIndex>(A);

  GrammarBuilder B("derived_" + G.grammarName());
  // Terminals in original id order so FOLLOW bitsets align with the
  // original grammar's terminal ids.
  for (SymbolId T = 1; T < G.numTerminals(); ++T)
    B.terminal(G.name(T));

  // One derived nonterminal per nonterminal transition, named "p@A".
  std::vector<SymbolId> Handle(NtIdx.size());
  std::vector<std::string> DerivedName(NtIdx.size());
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    DerivedName[X] = std::to_string(NtIdx[X].From) + "@" +
                     G.name(NtIdx[X].Nt);
    Handle[X] = B.nonterminal(DerivedName[X]);
  }

  // Derived productions: replay every production of A from every state
  // carrying an A-transition, replacing nonterminal occurrences by the
  // transition crossed at that point.
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    const NtTransition &T = NtIdx[X];
    for (ProductionId PId : G.productionsOf(T.Nt)) {
      const Production &P = G.production(PId);
      std::vector<SymbolId> Rhs;
      StateId Cur = T.From;
      for (SymbolId S : P.Rhs) {
        if (G.isTerminal(S)) {
          Rhs.push_back(B.terminal(G.name(S)));
        } else {
          uint32_t Inner = NtIdx.indexOf(Cur, S);
          assert(Inner != NtTransitionIndex::Missing);
          Rhs.push_back(Handle[Inner]);
        }
        Cur = A.gotoState(Cur, S);
        assert(Cur != InvalidState);
      }
      B.production(Handle[X], std::move(Rhs));
    }
  }

  uint32_t StartTrans = NtIdx.indexOf(A.startState(), G.startSymbol());
  assert(StartTrans != NtTransitionIndex::Missing);
  B.startSymbol(Handle[StartTrans]);

  DiagnosticEngine Diags;
  std::optional<Grammar> Derived = std::move(B).build(Diags);
  if (!Derived) {
    std::fprintf(stderr, "derived grammar failed to build:\n%s",
                 Diags.render().c_str());
    std::abort();
  }
  assert(Derived->numTerminals() == G.numTerminals() &&
         "terminal id spaces must align");
  Out.Derived = std::make_unique<Grammar>(std::move(*Derived));
  DeriveT.stop();

  // The theorem: FOLLOW in the derived grammar == DP's Follow(p, A).
  StageTimer FollowT(Stats, "bl-follow");
  GrammarAnalysis DerivedAn(*Out.Derived);
  FollowT.stop();

  // LA(q, A->w) = union of derived FOLLOW over lookback: walk every
  // production body from its transition's source to find the reducing
  // state.
  StageTimer UnionT(Stats, "bl-la-union");
  Out.LaSets.assign(Out.RedIdx->size(), BitSet(G.numTerminals()));
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    const NtTransition &T = NtIdx[X];
    SymbolId DerivedNt = Out.Derived->findSymbol(DerivedName[X]);
    assert(DerivedNt != InvalidSymbol);
    const BitSet &Follow = DerivedAn.follow(DerivedNt);
    for (ProductionId PId : G.productionsOf(T.Nt)) {
      StateId Q = A.walk(T.From, G.production(PId).Rhs);
      assert(Q != InvalidState);
      Out.LaSets[Out.RedIdx->slot(Q, PId)].unionWith(Follow);
    }
  }
  // The accept reduction, as in every other method.
  Out.LaSets[Out.RedIdx->slot(A.acceptState(), 0)].set(G.eofSymbol());
  UnionT.stop();
  if (Stats) {
    Stats->setCounter("bl_derived_productions", Out.Derived->numProductions());
    Stats->setCounter("bl_derived_nonterminals",
                      Out.Derived->numNonterminals());
  }
  return Out;
}
