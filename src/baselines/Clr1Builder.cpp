//===- baselines/Clr1Builder.cpp - Canonical LR(1) tables -------------------===//

#include "baselines/Clr1Builder.h"

using namespace lalr;

ParseTable lalr::buildClr1Table(const Lr1Automaton &A,
                                const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  return fillTableGeneric(
      G, A.numStates(),
      [&](uint32_t S, auto Emit) {
        for (auto [Sym, Target] : A.state(S).Transitions)
          Emit(Sym, Target);
      },
      [&](uint32_t S, auto Emit) {
        for (const auto &[Prod, LA] : A.state(S).Reductions)
          Emit(Prod, LA);
      },
      Guard);
}
