//===- baselines/NqlalrBuilder.h - NQLALR baseline --------------*- C++ -*-===//
///
/// \file
/// The "not-quite LALR(1)" method the paper analyses: several practical
/// generators of the era attached follow information to *states* instead
/// of *nonterminal transitions*. Because every state of an LR(0) automaton
/// has a unique accessing symbol, this quotients the DP relations by the
/// transition's target state — merging the contexts of all predecessors —
/// and therefore computes supersets of the true LALR(1) look-ahead sets
/// (strict supersets on grammars that are LALR(1) but not NQLALR-adequate).
///
/// Implementation: build the true DP relations, then collapse every
/// nonterminal transition (p, A) onto its target state GOTO(p, A) and run
/// the same digraph solver on the quotient graph.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BASELINES_NQLALRBUILDER_H
#define LALR_BASELINES_NQLALRBUILDER_H

#include "grammar/Analysis.h"
#include "lalr/Relations.h"
#include "lr/ParseTable.h"
#include "pipeline/PipelineStats.h"

#include <memory>
#include <vector>

namespace lalr {

/// NQLALR look-ahead sets, keyed like the DP ones by (state, production).
class NqlalrLookaheads {
public:
  /// If \p Stats is nonnull, records stages nqlalr-relations /
  /// nqlalr-solve / nqlalr-la-union and the quotient node count.
  static NqlalrLookaheads compute(const Lr0Automaton &A,
                                  const GrammarAnalysis &Analysis,
                                  PipelineStats *Stats = nullptr);

  const BitSet &la(StateId State, ProductionId Prod) const {
    return LaSets[RedIdx->slot(State, Prod)];
  }
  const std::vector<BitSet> &laSets() const { return LaSets; }
  const ReductionIndex &reductions() const { return *RedIdx; }

private:
  std::unique_ptr<ReductionIndex> RedIdx;
  std::vector<BitSet> LaSets;
};

/// Builds the NQLALR parse table over \p A.
ParseTable buildNqlalrTable(const Lr0Automaton &A,
                            const GrammarAnalysis &Analysis);

} // namespace lalr

#endif // LALR_BASELINES_NQLALRBUILDER_H
