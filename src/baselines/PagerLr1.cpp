//===- baselines/PagerLr1.cpp - Pager's minimal LR(1) -------------------------===//

#include "baselines/PagerLr1.h"

#include "baselines/Lr1Closure.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace lalr;

namespace {

/// Core key: the packed kernel items (no look-aheads).
std::vector<uint64_t> coreKeyOf(const std::vector<Lr0Item> &Items) {
  std::vector<uint64_t> Key;
  Key.reserve(Items.size());
  for (const Lr0Item &I : Items)
    Key.push_back(I.packed());
  return Key;
}

/// Pager's weak compatibility of the incoming vector \p New with the
/// existing state's vector \p Old (same core, parallel order).
bool weaklyCompatible(const std::vector<BitSet> &New,
                      const std::vector<BitSet> &Old) {
  const size_t N = New.size();
  // lalr_lint: no-poll(pure pairwise compatibility check on one state's
  // lookahead vectors; the worklist loop polls every popped state)
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = I + 1; J < N; ++J) {
      bool CrossDisjoint =
          New[I].disjointWith(Old[J]) && New[J].disjointWith(Old[I]);
      if (CrossDisjoint)
        continue;
      if (!Old[I].disjointWith(Old[J]))
        continue;
      if (!New[I].disjointWith(New[J]))
        continue;
      return false;
    }
  }
  return true;
}

} // namespace

PagerLr1Automaton PagerLr1Automaton::build(const Grammar &G,
                                           const GrammarAnalysis &An,
                                           PipelineStats *Stats,
                                           const BuildGuard *Guard) {
  StageTimer BuildT(Stats, "pager-build");
  failPoint("pager-build");
  const size_t NumT = G.numTerminals();
  PagerLr1Automaton A(G);

  // Running kernel-item total across created states, for MaxItems.
  uint64_t KernelItems = 0;

  // All states sharing one core.
  std::map<std::vector<uint64_t>, std::vector<uint32_t>> StatesByCore;
  std::deque<uint32_t> Worklist;
  std::vector<bool> InWorklist;

  auto pushWork = [&](uint32_t S) {
    if (S >= InWorklist.size())
      InWorklist.resize(S + 1, false);
    if (!InWorklist[S]) {
      InWorklist[S] = true;
      Worklist.push_back(S);
    }
  };

  // Finds a weakly compatible same-core state and merges (returns its
  // id), or creates a fresh state. Pushes to the worklist when the
  // target's look-aheads changed or it is new.
  auto internOrMerge = [&](std::vector<Lr0Item> Items,
                           std::vector<BitSet> La) -> uint32_t {
    // Sort by core.
    std::vector<size_t> Order(Items.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t L, size_t R) {
      return Items[L].packed() < Items[R].packed();
    });
    std::vector<Lr0Item> SortedItems(Items.size());
    std::vector<BitSet> SortedLa(Items.size());
    for (size_t I = 0; I < Order.size(); ++I) {
      SortedItems[I] = Items[Order[I]];
      SortedLa[I] = std::move(La[Order[I]]);
    }
    std::vector<uint64_t> Key = coreKeyOf(SortedItems);
    std::vector<uint32_t> &Candidates = StatesByCore[Key];
    // lalr_lint: no-poll(intern scan bounded by same-core candidates; the
    // worklist loop polls every iteration)
    for (uint32_t S : Candidates) {
      if (!weaklyCompatible(SortedLa, A.States[S].KernelLa))
        continue;
      bool Changed = false;
      for (size_t I = 0; I < SortedLa.size(); ++I)
        Changed |= A.States[S].KernelLa[I].unionWith(SortedLa[I]);
      if (Changed) {
        ++A.Reprocessed;
        pushWork(S);
      }
      return S;
    }
    uint32_t Id = static_cast<uint32_t>(A.States.size());
    Lr1State S;
    S.KernelItems = std::move(SortedItems);
    S.KernelLa = std::move(SortedLa);
    KernelItems += S.KernelItems.size();
    A.States.push_back(std::move(S));
    if (Guard) {
      Guard->checkLr1States(A.States.size());
      Guard->checkItems(KernelItems);
    }
    Candidates.push_back(Id);
    pushWork(Id);
    return Id;
  };

  {
    std::vector<Lr0Item> StartItems{Lr0Item{0, 0}};
    std::vector<BitSet> StartLa(1, BitSet(NumT));
    StartLa[0].set(G.eofSymbol());
    uint32_t Start = internOrMerge(std::move(StartItems), std::move(StartLa));
    assert(Start == 0 && "start state must be state 0");
    (void)Start;
  }

  while (!Worklist.empty()) {
    guardPoll(Guard);
    uint32_t Cur = Worklist.front();
    Worklist.pop_front();
    InWorklist[Cur] = false;

    std::vector<Lr1ItemGroup> Seed(A.States[Cur].KernelItems.size());
    for (size_t I = 0; I < Seed.size(); ++I) {
      Seed[I].Item = A.States[Cur].KernelItems[I];
      Seed[I].Lookaheads = A.States[Cur].KernelLa[I];
    }
    std::vector<Lr1ItemGroup> Closure =
        lr1Closure(G, An, std::move(Seed), NumT);

    std::map<SymbolId, std::pair<std::vector<Lr0Item>, std::vector<BitSet>>>
        Advances;
    std::vector<std::pair<ProductionId, BitSet>> Reductions;
    for (Lr1ItemGroup &CI : Closure) {
      SymbolId X = CI.Item.nextSymbol(G);
      if (X == InvalidSymbol) {
        Reductions.emplace_back(CI.Item.Prod, std::move(CI.Lookaheads));
        continue;
      }
      auto &[ItemsV, LaV] = Advances[X];
      ItemsV.push_back(Lr0Item{CI.Item.Prod, CI.Item.Dot + 1});
      LaV.push_back(std::move(CI.Lookaheads));
    }
    std::sort(Reductions.begin(), Reductions.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });

    std::vector<std::pair<SymbolId, uint32_t>> Transitions;
    Transitions.reserve(Advances.size());
    for (auto &[Sym, Kernel] : Advances) {
      uint32_t Target =
          internOrMerge(std::move(Kernel.first), std::move(Kernel.second));
      Transitions.emplace_back(Sym, Target);
    }
    A.States[Cur].Transitions = std::move(Transitions);
    A.States[Cur].Reductions = std::move(Reductions);
  }

  // Reprocessing can redirect edges away from a state that a merge
  // split, leaving orphans; compact to the reachable subautomaton so
  // state counts are honest.
  std::vector<uint32_t> Remap(A.States.size(), UINT32_MAX);
  std::vector<uint32_t> Order{0};
  Remap[0] = 0;
  for (size_t I = 0; I < Order.size(); ++I)
    for (auto [Sym, Target] : A.States[Order[I]].Transitions) {
      (void)Sym;
      if (Remap[Target] == UINT32_MAX) {
        Remap[Target] = static_cast<uint32_t>(Order.size());
        Order.push_back(Target);
      }
    }
  if (Order.size() != A.States.size()) {
    std::vector<Lr1State> Compacted;
    Compacted.reserve(Order.size());
    for (uint32_t Old : Order)
      Compacted.push_back(std::move(A.States[Old]));
    for (Lr1State &S : Compacted)
      for (auto &[Sym, Target] : S.Transitions)
        Target = Remap[Target];
    A.States = std::move(Compacted);
  }
  BuildT.stop();
  if (Stats) {
    Stats->setCounter("pager_states", A.States.size());
    Stats->setCounter("pager_reprocessed", A.Reprocessed);
  }
  return A;
}

ParseTable lalr::buildPagerTable(const PagerLr1Automaton &A,
                                 const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  return fillTableGeneric(
      G, A.numStates(),
      [&](uint32_t S, auto Emit) {
        for (auto [Sym, Target] : A.state(S).Transitions)
          Emit(Sym, Target);
      },
      [&](uint32_t S, auto Emit) {
        for (const auto &[Prod, LA] : A.state(S).Reductions)
          Emit(Prod, LA);
      },
      Guard);
}
