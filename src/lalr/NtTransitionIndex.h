//===- lalr/NtTransitionIndex.h - Nonterminal transitions -------*- C++ -*-===//
///
/// \file
/// Dense numbering of the nonterminal transitions (p, A) of an LR(0)
/// automaton. The DeRemer–Pennello relations (reads, includes) are digraphs
/// over these transitions and the Read/Follow sets are arrays indexed by
/// them, so a stable dense index is the first thing the algorithm builds.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_NTTRANSITIONINDEX_H
#define LALR_LALR_NTTRANSITIONINDEX_H

#include "lr/Lr0Automaton.h"

#include <unordered_map>
#include <vector>

namespace lalr {

/// One nonterminal transition p --A--> r.
struct NtTransition {
  StateId From = InvalidState;
  SymbolId Nt = InvalidSymbol;
  StateId To = InvalidState;
};

/// Dense index over all nonterminal transitions of one automaton.
class NtTransitionIndex {
public:
  explicit NtTransitionIndex(const Lr0Automaton &A);

  size_t size() const { return Transitions.size(); }

  const NtTransition &operator[](uint32_t Idx) const {
    return Transitions[Idx];
  }

  /// Index of transition (From, Nt), or Missing when GOTO(From, Nt) is
  /// undefined.
  uint32_t indexOf(StateId From, SymbolId Nt) const {
    auto It = IdxByKey.find(key(From, Nt));
    return It == IdxByKey.end() ? Missing : It->second;
  }

  static constexpr uint32_t Missing = UINT32_MAX;

private:
  static uint64_t key(StateId From, SymbolId Nt) {
    return (uint64_t(From) << 32) | Nt;
  }

  std::vector<NtTransition> Transitions;
  std::unordered_map<uint64_t, uint32_t> IdxByKey;
};

} // namespace lalr

#endif // LALR_LALR_NTTRANSITIONINDEX_H
