//===- lalr/LalrTableBuilder.h - LALR(1) tables via DP ----------*- C++ -*-===//
///
/// \file
/// Convenience entry point: grammar -> LR(0) automaton -> DP look-aheads
/// -> ACTION/GOTO table. This is the "one call" API the quickstart example
/// uses; callers that want the intermediate artifacts run the pipeline
/// pieces themselves.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_LALRTABLEBUILDER_H
#define LALR_LALR_LALRTABLEBUILDER_H

#include "lalr/LalrLookaheads.h"
#include "lr/ParseTable.h"

namespace lalr {

/// Builds the LALR(1) parse table for \p A using look-aheads computed by
/// the DeRemer-Pennello algorithm.
ParseTable buildLalrTable(const Lr0Automaton &A,
                          const GrammarAnalysis &Analysis);

/// Same, from already computed look-aheads.
ParseTable buildLalrTable(const Lr0Automaton &A, const LalrLookaheads &LA);

} // namespace lalr

#endif // LALR_LALR_LALRTABLEBUILDER_H
