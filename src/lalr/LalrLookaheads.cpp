//===- lalr/LalrLookaheads.cpp - DP LALR(1) look-ahead sets -----------------===//

#include "lalr/LalrLookaheads.h"

using namespace lalr;

LalrLookaheads LalrLookaheads::compute(const Lr0Automaton &A,
                                       const GrammarAnalysis &Analysis,
                                       SolverKind Solver) {
  const Grammar &G = A.grammar();
  LalrLookaheads Out;
  Out.NtIdx = std::make_unique<NtTransitionIndex>(A);
  Out.RedIdx = std::make_unique<ReductionIndex>(A);
  Out.Relations =
      buildLalrRelations(A, Analysis, *Out.NtIdx, *Out.RedIdx);

  // Read = digraph(reads, DR). The initial sets are copies: the relations
  // (with DR) are retained for reporting.
  std::vector<BitSet> Initial = Out.Relations.DirectRead;
  if (Solver == SolverKind::Digraph)
    Out.ReadSets = solveDigraph(Out.Relations.Reads, std::move(Initial),
                                &Out.ReadsStats, &Out.ReadsCycleMembers);
  else {
    Out.ReadSets = solveNaiveFixpoint(Out.Relations.Reads,
                                      std::move(Initial), &Out.ReadsStats);
    // Cycle membership still comes from the digraph structure; run a
    // cheap no-set pass for the certificate.
    std::vector<BitSet> Empty(Out.Relations.Reads.size(), BitSet(1));
    DigraphStats Tmp;
    solveDigraph(Out.Relations.Reads, std::move(Empty), &Tmp,
                 &Out.ReadsCycleMembers);
    Out.ReadsStats.NontrivialSccs = Tmp.NontrivialSccs;
  }

  // Follow = digraph(includes, Read).
  Initial = Out.ReadSets;
  if (Solver == SolverKind::Digraph)
    Out.FollowSets = solveDigraph(Out.Relations.Includes,
                                  std::move(Initial), &Out.IncludesStats);
  else
    Out.FollowSets = solveNaiveFixpoint(
        Out.Relations.Includes, std::move(Initial), &Out.IncludesStats);

  // LA(q, A->w) = union of Follow over lookback.
  Out.LaSets.assign(Out.RedIdx->size(), BitSet(G.numTerminals()));
  for (uint32_t Slot = 0; Slot < Out.RedIdx->size(); ++Slot)
    for (uint32_t X : Out.Relations.Lookback[Slot])
      Out.LaSets[Slot].unionWith(Out.FollowSets[X]);

  // The accept reduction $accept -> start has no lookback (no state has a
  // $accept transition); its look-ahead is the end marker by definition.
  Out.LaSets[Out.RedIdx->slot(A.acceptState(), 0)].set(G.eofSymbol());

  return Out;
}
