//===- lalr/LalrLookaheads.cpp - DP LALR(1) look-ahead sets -----------------===//

#include "lalr/LalrLookaheads.h"

#include "support/FailPoint.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace lalr;

namespace {

/// Largest population count over a family of sets (the paper's evaluation
/// reports peak set sizes; only computed when someone is listening).
uint64_t peakBits(const SetSlab &Sets) {
  uint64_t Peak = 0;
  for (size_t I = 0, E = Sets.size(); I != E; ++I)
    Peak = std::max<uint64_t>(Peak, Sets.count(I));
  return Peak;
}

} // namespace

LalrLookaheads LalrLookaheads::compute(const Lr0Automaton &A,
                                       const GrammarAnalysis &Analysis,
                                       SolverKind Solver,
                                       PipelineStats *Stats,
                                       ThreadPool *Pool,
                                       const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  const unsigned Workers = Pool ? Pool->workerCount() : 0;
  LalrLookaheads Out;
  {
    StageTimer T(Stats, "nt-index");
    failPoint("nt-index");
    guardPoll(Guard);
    Out.NtIdx = std::make_unique<NtTransitionIndex>(A);
    Out.RedIdx = std::make_unique<ReductionIndex>(A);
  }

  // The set families this pipeline allocates: DR + Read over nt
  // transitions, Follow over nt transitions, LA over reduction slots —
  // each slab row is numTerminals() wide. Deterministic up-front checks
  // (bit census for MaxSetBits, arena census for MaxSlabBytes), so limits
  // trip before any allocation rather than mid-solve.
  if (Guard) {
    uint64_t Bits = (3 * uint64_t(Out.NtIdx->size()) +
                     uint64_t(Out.RedIdx->size())) *
                    G.numTerminals();
    Guard->checkSetBits(Bits);
    uint64_t Bytes =
        3 * uint64_t(SetSlab::bytesFor(Out.NtIdx->size(), G.numTerminals())) +
        uint64_t(SetSlab::bytesFor(Out.RedIdx->size(), G.numTerminals()));
    Guard->checkSlabBytes(Bytes);
  }

  {
    StageTimer T(Stats, "relations");
    Out.Relations =
        buildLalrRelations(A, Analysis, *Out.NtIdx, *Out.RedIdx, Pool, Guard);
  }

  // Read = digraph(reads, DR). The initial sets are copies: the relations
  // (with DR) are retained for reporting.
  {
    StageTimer T(Stats, "solve-read");
    failPoint("solve-read");
    SetSlab Initial = Out.Relations.DirectRead;
    if (Solver == SolverKind::Digraph) {
      if (Pool)
        Out.ReadSets =
            solveDigraphParallel(Out.Relations.Reads, std::move(Initial),
                                 *Pool, &Out.ReadsStats,
                                 &Out.ReadsCycleMembers, Guard);
      else
        Out.ReadSets = solveDigraph(Out.Relations.Reads, std::move(Initial),
                                    &Out.ReadsStats, &Out.ReadsCycleMembers,
                                    Guard);
    } else {
      Out.ReadSets = solveNaiveFixpoint(Out.Relations.Reads,
                                        std::move(Initial), &Out.ReadsStats,
                                        /*ReverseOrder=*/false, Guard);
      // Cycle membership still comes from the digraph structure; the
      // structure-only pass recovers the certificate without touching any
      // sets.
      Out.ReadsStats.NontrivialSccs =
          digraphCycleMembers(Out.Relations.Reads, Out.ReadsCycleMembers);
    }
  }

  // Follow = digraph(includes, Read).
  {
    StageTimer T(Stats, "solve-follow");
    failPoint("solve-follow");
    SetSlab Initial = Out.ReadSets;
    if (Solver == SolverKind::Digraph) {
      if (Pool)
        Out.FollowSets =
            solveDigraphParallel(Out.Relations.Includes, std::move(Initial),
                                 *Pool, &Out.IncludesStats, nullptr, Guard);
      else
        Out.FollowSets =
            solveDigraph(Out.Relations.Includes, std::move(Initial),
                         &Out.IncludesStats, nullptr, Guard);
    } else {
      Out.FollowSets = solveNaiveFixpoint(
          Out.Relations.Includes, std::move(Initial), &Out.IncludesStats,
          /*ReverseOrder=*/false, Guard);
    }
  }

  // LA(q, A->w) = union of Follow over lookback. Each reduction slot
  // unions into its own slab row only (rows never share a word), so the
  // pass shards over slot ranges.
  {
    StageTimer T(Stats, "la-union");
    failPoint("la-union");
    Out.LaSets = SetSlab(Out.RedIdx->size(), G.numTerminals());
    auto UnionSlots = [&](size_t Lo, size_t Hi) {
      for (size_t Slot = Lo; Slot < Hi; ++Slot) {
        guardPollStrided(Guard, Slot);
        for (uint32_t X : Out.Relations.Lookback.row(Slot))
          Out.LaSets.unionInto(Slot, Out.FollowSets[X]);
      }
    };
    if (Pool)
      Pool->parallelFor(0, Out.RedIdx->size(),
                        [&](size_t, size_t Lo, size_t Hi) {
                          UnionSlots(Lo, Hi);
                        });
    else
      UnionSlots(0, Out.RedIdx->size());

    // The accept reduction $accept -> start has no lookback (no state has
    // a $accept transition); its look-ahead is the end marker by
    // definition.
    Out.LaSets.set(Out.RedIdx->slot(A.acceptState(), 0), G.eofSymbol());
  }

  // Everything below is observability only: counter scans (peak set
  // sizes, edge counts) run strictly under the Stats check so the hot
  // path does zero extra work when nobody is listening.
  Out.recordStats(Stats, Workers);

  return Out;
}

void LalrLookaheads::recordStats(PipelineStats *Stats,
                                 unsigned Workers) const {
  if (!Stats)
    return;
  if (Workers)
    for (const char *Stage :
         {"relations", "solve-read", "solve-follow", "la-union"})
      Stats->setStageThreads(Stage, Workers);
  Stats->setCounter("build_threads", Workers);
  Stats->setCounter("nt_transitions", NtIdx->size());
  Stats->setCounter("reduction_slots", RedIdx->size());
  Stats->setCounter("reads_edges", Relations.readsEdgeCount());
  Stats->setCounter("includes_edges", Relations.includesEdgeCount());
  Stats->setCounter("lookback_edges", Relations.lookbackEdgeCount());
  Stats->setCounter("read_union_ops", ReadsStats.UnionOps);
  Stats->setCounter("follow_union_ops", IncludesStats.UnionOps);
  Stats->setCounter("reads_nontrivial_sccs", ReadsStats.NontrivialSccs);
  Stats->setCounter("includes_nontrivial_sccs",
                    IncludesStats.NontrivialSccs);
  Stats->setCounter("peak_read_bits", peakBits(ReadSets));
  Stats->setCounter("peak_follow_bits", peakBits(FollowSets));
  Stats->setCounter("peak_la_bits", peakBits(LaSets));
  // Data-layout counters: the arena footprint of the four set slabs
  // and the flat relation edge total (structural — gated by
  // scripts/compare_stats.py).
  Stats->setCounter("slab_bytes", slabBytes());
  Stats->setCounter("slab_sets",
                    Relations.DirectRead.size() + ReadSets.size() +
                        FollowSets.size() + LaSets.size());
  Stats->setCounter("relation_csr_edges",
                    Relations.readsEdgeCount() +
                        Relations.includesEdgeCount() +
                        Relations.lookbackEdgeCount());
}
