//===- lalr/NtTransitionIndex.cpp - Nonterminal transitions -----------------===//

#include "lalr/NtTransitionIndex.h"

using namespace lalr;

NtTransitionIndex::NtTransitionIndex(const Lr0Automaton &A) {
  const Grammar &G = A.grammar();
  for (StateId S = 0; S < A.numStates(); ++S) {
    for (auto [Sym, Target] : A.state(S).Transitions) {
      if (G.isTerminal(Sym))
        continue;
      uint32_t Idx = static_cast<uint32_t>(Transitions.size());
      Transitions.push_back({S, Sym, Target});
      IdxByKey.emplace(key(S, Sym), Idx);
    }
  }
}
