//===- lalr/Classify.h - LR grammar-class detection -------------*- C++ -*-===//
///
/// \file
/// Places a grammar in the LR hierarchy LR(0) ⊂ SLR(1) ⊂ NQLALR ⊂ LALR(1)
/// ⊂ LR(1) by building each method's table and counting conflicts (all
/// collisions count, whether or not precedence declarations would resolve
/// them — classification is a property of the bare grammar). Also carries
/// the paper's not-LR(k) certificate: a nontrivial SCC in the `reads`
/// relation proves the grammar is LR(k) for no k.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_CLASSIFY_H
#define LALR_LALR_CLASSIFY_H

#include "grammar/Grammar.h"
#include "pipeline/PipelineStats.h"

#include <string>

namespace lalr {

/// The strongest (smallest) class a grammar falls in.
enum class LrClass : uint8_t { Lr0, Slr1, Nqlalr, Lalr1, Lr1, NotLr1 };

/// Printable name ("LR(0)", "SLR(1)", ...).
const char *lrClassName(LrClass C);

/// Full classification result with per-method conflict counts (Table 4's
/// row for one grammar).
struct Classification {
  bool IsLr0 = false;
  bool IsSlr1 = false;
  bool IsNqlalr = false;
  bool IsLalr1 = false;
  bool IsLr1 = false;
  /// LL(1) membership — orthogonal to the LR chain (every LL(1) grammar
  /// is LR(1), but not conversely).
  bool IsLl1 = false;
  /// Nontrivial `reads` SCC found: not LR(k) for any k.
  bool NotLrK = false;

  size_t Lr0Conflicts = 0;
  size_t SlrConflicts = 0;
  size_t NqlalrConflicts = 0;
  size_t LalrConflicts = 0;
  size_t Lr1Conflicts = 0;

  size_t Lr0States = 0;
  size_t Lr1States = 0;

  LrClass strongestClass() const {
    if (IsLr0)
      return LrClass::Lr0;
    if (IsSlr1)
      return LrClass::Slr1;
    if (IsNqlalr)
      return LrClass::Nqlalr;
    if (IsLalr1)
      return LrClass::Lalr1;
    if (IsLr1)
      return LrClass::Lr1;
    return LrClass::NotLr1;
  }

  /// One-paragraph human-readable summary.
  std::string toString() const;
};

/// Runs every method over \p G (sharing one BuildContext, so the LR(0)
/// automaton and grammar analysis are computed once) and classifies it.
/// If \p Stats is nonnull, the context's stage timings and counters are
/// merged into it.
Classification classifyGrammar(const Grammar &G,
                               PipelineStats *Stats = nullptr);

} // namespace lalr

#endif // LALR_LALR_CLASSIFY_H
