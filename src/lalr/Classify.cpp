//===- lalr/Classify.cpp - LR grammar-class detection ------------------------===//

#include "lalr/Classify.h"

#include "baselines/Clr1Builder.h"
#include "baselines/MergedLalrBuilder.h"
#include "baselines/NqlalrBuilder.h"
#include "baselines/SlrBuilder.h"
#include "grammar/Analysis.h"
#include "ll/Ll1Table.h"
#include "lalr/LalrLookaheads.h"
#include "lalr/LalrTableBuilder.h"
#include "lr/Lr0Automaton.h"

#include <sstream>

using namespace lalr;

const char *lalr::lrClassName(LrClass C) {
  switch (C) {
  case LrClass::Lr0:
    return "LR(0)";
  case LrClass::Slr1:
    return "SLR(1)";
  case LrClass::Nqlalr:
    return "NQLALR(1)";
  case LrClass::Lalr1:
    return "LALR(1)";
  case LrClass::Lr1:
    return "LR(1)";
  case LrClass::NotLr1:
    return "not LR(1)";
  }
  return "unknown";
}

std::string Classification::toString() const {
  std::ostringstream OS;
  OS << "class: " << lrClassName(strongestClass());
  if (NotLrK)
    OS << " (reads-cycle: not LR(k) for any k)";
  OS << "; conflicts LR(0)/SLR/NQLALR/LALR/LR(1): " << Lr0Conflicts << '/'
     << SlrConflicts << '/' << NqlalrConflicts << '/' << LalrConflicts << '/'
     << Lr1Conflicts << "; states LR(0)=" << Lr0States
     << " LR(1)=" << Lr1States << "; LL(1): " << (IsLl1 ? "yes" : "no");
  return OS.str();
}

Classification lalr::classifyGrammar(const Grammar &G) {
  Classification Out;
  GrammarAnalysis An(G);
  Lr0Automaton A = Lr0Automaton::build(G);
  Out.Lr0States = A.numStates();

  // LR(0): every reduction applies on every terminal — except the accept
  // reduction, which (by the end-marker convention) applies on $end only.
  // A grammar is LR(0) iff that table is conflict-free.
  {
    BitSet All(G.numTerminals());
    for (SymbolId T = 0; T < G.numTerminals(); ++T)
      All.set(T);
    BitSet EofOnly(G.numTerminals());
    EofOnly.set(G.eofSymbol());
    ParseTable T = fillParseTable(
        A, [&](StateId, ProductionId P) -> const BitSet & {
          return P == 0 ? EofOnly : All;
        });
    Out.Lr0Conflicts = T.conflicts().size();
    Out.IsLr0 = Out.Lr0Conflicts == 0;
  }

  {
    ParseTable T = buildSlrTable(A, An);
    Out.SlrConflicts = T.conflicts().size();
    Out.IsSlr1 = Out.SlrConflicts == 0;
  }
  {
    ParseTable T = buildNqlalrTable(A, An);
    Out.NqlalrConflicts = T.conflicts().size();
    Out.IsNqlalr = Out.NqlalrConflicts == 0;
  }
  {
    LalrLookaheads LA = LalrLookaheads::compute(A, An);
    Out.NotLrK = LA.grammarNotLrK();
    ParseTable T = buildLalrTable(A, LA);
    Out.LalrConflicts = T.conflicts().size();
    Out.IsLalr1 = Out.LalrConflicts == 0;
  }
  {
    Lr1Automaton L1 = Lr1Automaton::build(G, An);
    Out.Lr1States = L1.numStates();
    ParseTable T = buildClr1Table(L1);
    Out.Lr1Conflicts = T.conflicts().size();
    Out.IsLr1 = Out.Lr1Conflicts == 0;
  }
  Out.IsLl1 = Ll1Table::build(G, An).isLl1();
  return Out;
}
