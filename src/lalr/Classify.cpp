//===- lalr/Classify.cpp - LR grammar-class detection ------------------------===//

#include "lalr/Classify.h"

#include "ll/Ll1Table.h"
#include "pipeline/BuildPipeline.h"

#include <sstream>

using namespace lalr;

const char *lalr::lrClassName(LrClass C) {
  switch (C) {
  case LrClass::Lr0:
    return "LR(0)";
  case LrClass::Slr1:
    return "SLR(1)";
  case LrClass::Nqlalr:
    return "NQLALR(1)";
  case LrClass::Lalr1:
    return "LALR(1)";
  case LrClass::Lr1:
    return "LR(1)";
  case LrClass::NotLr1:
    return "not LR(1)";
  }
  return "unknown";
}

std::string Classification::toString() const {
  std::ostringstream OS;
  OS << "class: " << lrClassName(strongestClass());
  if (NotLrK)
    OS << " (reads-cycle: not LR(k) for any k)";
  OS << "; conflicts LR(0)/SLR/NQLALR/LALR/LR(1): " << Lr0Conflicts << '/'
     << SlrConflicts << '/' << NqlalrConflicts << '/' << LalrConflicts << '/'
     << Lr1Conflicts << "; states LR(0)=" << Lr0States
     << " LR(1)=" << Lr1States << "; LL(1): " << (IsLl1 ? "yes" : "no");
  return OS.str();
}

Classification lalr::classifyGrammar(const Grammar &G,
                                     PipelineStats *Stats) {
  Classification Out;
  // One context: every method below shares the grammar analysis, the
  // LR(0) automaton, and (for LALR and CLR) the look-ahead sets and the
  // LR(1) automaton.
  BuildContext Ctx(G);

  auto conflictsOf = [&](TableKind K) {
    return BuildPipeline(Ctx, {.Kind = K}).run().Table.conflicts().size();
  };

  Out.Lr0Conflicts = conflictsOf(TableKind::Lr0);
  Out.IsLr0 = Out.Lr0Conflicts == 0;
  Out.Lr0States = Ctx.lr0().numStates();

  Out.SlrConflicts = conflictsOf(TableKind::Slr1);
  Out.IsSlr1 = Out.SlrConflicts == 0;

  Out.NqlalrConflicts = conflictsOf(TableKind::Nqlalr);
  Out.IsNqlalr = Out.NqlalrConflicts == 0;

  Out.LalrConflicts = conflictsOf(TableKind::Lalr1);
  Out.IsLalr1 = Out.LalrConflicts == 0;
  Out.NotLrK = Ctx.lookaheads().grammarNotLrK();

  Out.Lr1Conflicts = conflictsOf(TableKind::Clr1);
  Out.IsLr1 = Out.Lr1Conflicts == 0;
  Out.Lr1States = Ctx.lr1().numStates();

  Out.IsLl1 = Ll1Table::build(G, Ctx.analysis()).isLl1();

  if (Stats)
    Stats->mergeFrom(Ctx.stats());
  return Out;
}
