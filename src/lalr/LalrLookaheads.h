//===- lalr/LalrLookaheads.h - DP LALR(1) look-ahead sets -------*- C++ -*-===//
///
/// \file
/// The top of the DeRemer–Pennello pipeline: given an LR(0) automaton,
/// compute LA(q, A->w) for every reduction by
///
///   1. indexing nonterminal transitions,
///   2. building DR / reads / includes / lookback,
///   3. Read  = digraph(reads,    DR),
///   4. Follow = digraph(includes, Read),
///   5. LA(q, A->w) = union of Follow over lookback.
///
/// The intermediate artifacts (relations, Read/Follow sets, digraph stats)
/// are retained: the evaluation section reports their sizes (Table 2) and
/// the not-LR(k) certificate is a nontrivial SCC in `reads`.
///
/// Set families live in arena-backed SetSlab banks (one contiguous
/// allocation per family) and the relations are CSR — the flat layout the
/// solvers stream through; see docs/ALGORITHM.md "Data layout". Consumers
/// read individual sets as SetView (la() below), which a BitSet also
/// converts to, so downstream code is representation-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_LALRLOOKAHEADS_H
#define LALR_LALR_LALRLOOKAHEADS_H

#include "grammar/Analysis.h"
#include "lalr/DigraphSolver.h"
#include "lalr/NtTransitionIndex.h"
#include "lalr/Relations.h"
#include "lr/Lr0Automaton.h"
#include "pipeline/PipelineStats.h"

#include <memory>

namespace lalr {

class ThreadPool;
struct DpPatchStats;

/// Which equation solver to use; the naive fixpoint exists only for the
/// Fig. 3 ablation.
enum class SolverKind { Digraph, NaiveFixpoint };

/// Computed LALR(1) look-ahead sets plus all intermediate artifacts.
class LalrLookaheads {
public:
  /// Runs the full DP pipeline over \p A. \p Analysis must be for the
  /// same grammar. If \p Stats is nonnull, records the five stages
  /// (nt-index, relations, solve-read, solve-follow, la-union) with
  /// relation edge counts, solver union-op/SCC counters, peak set sizes
  /// and the slab arena footprint. With a non-null \p Pool the relations
  /// build, the digraph solves and the la-union pass run sharded on the
  /// pool; the computed sets are bit-identical to the serial path
  /// (asserted by tests/parallel_test.cpp across the corpus). \p Guard,
  /// when non-null, is polled throughout every stage
  /// (cancellation/deadline) and enforces MaxRelationEdges during the
  /// relations build plus MaxSetBits / MaxSlabBytes against the total
  /// bits/bytes the Read/Follow/LA set families will allocate, checked up
  /// front from the known family sizes.
  static LalrLookaheads compute(const Lr0Automaton &A,
                                const GrammarAnalysis &Analysis,
                                SolverKind Solver = SolverKind::Digraph,
                                PipelineStats *Stats = nullptr,
                                ThreadPool *Pool = nullptr,
                                const BuildGuard *Guard = nullptr);

  /// Incrementally re-derives the artifacts for \p NewA from \p Old
  /// (computed over \p OldA): matches states by kernel, recomputes DR and
  /// reads rows, replays includes/lookback only for transitions a dirty
  /// frontier (changed states and \p DirtyNts) reaches, and re-solves only
  /// the tainted SCCs of the two digraphs, copying every untouched solved
  /// row from \p Old's slabs. The result is bit-identical to
  /// compute(NewA, ...) — the least solution is unique, so a row whose
  /// equation inputs are unchanged keeps its old value verbatim. Returns
  /// nullptr when the delta is too invasive to pay off (the caller then
  /// falls back to a full compute). Serial; defined in
  /// lalr/IncrementalDp.cpp.
  static std::unique_ptr<LalrLookaheads>
  patchFrom(const Lr0Automaton &OldA, const LalrLookaheads &Old,
            const Lr0Automaton &NewA, const GrammarAnalysis &NewAn,
            std::span<const SymbolId> DirtyNts, DpPatchStats &PS,
            PipelineStats *Stats, const BuildGuard *Guard);

  /// LA(q, A->w): look-ahead set of reduction (State, Prod), over
  /// terminal ids; a view into the LA slab (valid while this object
  /// lives). The reduction must exist in that state.
  SetView la(StateId State, ProductionId Prod) const {
    return LaSets[RedIdx->slot(State, Prod)];
  }

  /// True if `reads` has a nontrivial SCC; by Theorem (DeRemer–Pennello)
  /// the grammar is then not LR(k) for any k.
  bool grammarNotLrK() const { return ReadsStats.NontrivialSccs != 0; }

  /// \name Introspection for reports, tests and the evaluation harness
  /// @{
  const NtTransitionIndex &ntTransitions() const { return *NtIdx; }
  const ReductionIndex &reductions() const { return *RedIdx; }
  const LalrRelations &relations() const { return Relations; }
  const SetSlab &readSets() const { return ReadSets; }
  const SetSlab &followSets() const { return FollowSets; }
  const SetSlab &laSets() const { return LaSets; }
  const DigraphStats &readsSolverStats() const { return ReadsStats; }
  const DigraphStats &includesSolverStats() const { return IncludesStats; }
  /// Nonterminal transitions lying on a `reads` cycle (the not-LR(k)
  /// witnesses).
  const std::vector<bool> &readsCycleMembers() const {
    return ReadsCycleMembers;
  }
  /// Total arena bytes across the DR/Read/Follow/LA slabs (the
  /// slab_bytes counter).
  uint64_t slabBytes() const {
    return Relations.DirectRead.bytes() + ReadSets.bytes() +
           FollowSets.bytes() + LaSets.bytes();
  }
  /// @}

private:
  LalrLookaheads() = default;

  /// Writes the structural counters (nt_transitions, *_edges, peak_*_bits,
  /// slab_bytes, ...) into \p Stats; shared by compute() and patchFrom()
  /// so patched and fresh builds report identical structure.
  void recordStats(PipelineStats *Stats, unsigned Workers) const;

  std::unique_ptr<NtTransitionIndex> NtIdx;
  std::unique_ptr<ReductionIndex> RedIdx;
  LalrRelations Relations;
  SetSlab ReadSets;
  SetSlab FollowSets;
  SetSlab LaSets;
  DigraphStats ReadsStats;
  DigraphStats IncludesStats;
  std::vector<bool> ReadsCycleMembers;
};

} // namespace lalr

#endif // LALR_LALR_LALRLOOKAHEADS_H
