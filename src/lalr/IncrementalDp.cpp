//===- lalr/IncrementalDp.cpp - Dirty-delta DP re-solve ---------------------===//
///
/// LalrLookaheads::patchFrom: re-derive the DP artifacts for an edited
/// grammar by reusing everything a dirty frontier does not reach.
///
/// The plan, in paper terms. Every artifact downstream of the automaton is
/// indexed by nonterminal transitions (p, A) or reduction slots (q, A->w),
/// and the relations are *local*: the pairs a transition X = (p', B)
/// contributes depend only on B's productions and on the automaton within
/// max|w| GOTO steps of p'. So after matching new states to old states by
/// kernel, a transition keeps its old includes/lookback pairs verbatim
/// unless (a) its source state lies within that walk radius of a changed
/// state, (b) its nonterminal's productions were edited, or (c) it has no
/// old counterpart. DR and reads look exactly one transition past X and
/// are cheap (no production replay), so they are recomputed outright.
///
/// The solves exploit the least-solution property: Read(x) (and likewise
/// Follow) is the union of initial sets over everything reachable from x,
/// so an SCC of the relation whose members all kept their initial sets and
/// whose successor components all kept their solutions keeps its solution
/// verbatim — copy the old slab rows. Components are evaluated in the
/// reverse-topological order computeSccs emits (successors first), each
/// tainted component from its members' initial sets plus its successors'
/// final solutions, which is the standard condensation evaluation and
/// yields the unique least solution. LA slots then copy unless their
/// lookback row moved or any source transition's Follow set changed.
///
/// Bit-identity with a from-scratch compute() is asserted by
/// tests/incremental_test.cpp over the realistic corpus and a fuzz loop,
/// and independently re-checked by ArtifactVerifier on every patched
/// build.
///
//===----------------------------------------------------------------------===//

#include "lalr/IncrementalDp.h"

#include "support/Scc.h"

#include <algorithm>
#include <cstring>
#include <map>

using namespace lalr;

namespace {

/// Maps every value of \p NewRow through \p ToOld and compares the result,
/// as a set, with \p OldRow (both CSR rows are sorted ascending, but the
/// mapping need not be monotone). False when any value has no old
/// counterpart.
bool rowsEqualMapped(std::span<const uint32_t> NewRow,
                     std::span<const uint32_t> OldRow,
                     const std::vector<uint32_t> &ToOld,
                     std::vector<uint32_t> &Scratch) {
  if (NewRow.size() != OldRow.size())
    return false;
  Scratch.clear();
  for (uint32_t V : NewRow) {
    uint32_t M = ToOld[V];
    if (M == NtTransitionIndex::Missing)
      return false;
    Scratch.push_back(M);
  }
  std::sort(Scratch.begin(), Scratch.end());
  return std::equal(Scratch.begin(), Scratch.end(), OldRow.begin());
}

/// One patched digraph solve (shared by the Read and Follow phases).
/// Components arrive in reverse topological order from computeSccs, so a
/// linear walk sees every successor before its predecessors. \p Seed
/// marks nodes whose equation inputs changed (initial set or out-edges);
/// taint propagates against the edges through the condensation.
/// \p RowChanged is filled with whether each node's solved row differs
/// from its old mapped row (the next stage's seed input).
void solvePatched(const CsrRelation &Edges, const SetSlab &Init,
                  const SetSlab &OldSol, const std::vector<uint32_t> &ToOld,
                  const std::vector<bool> &Seed, const SccResult &Scc,
                  SetSlab &Sol, std::vector<bool> &RowChanged,
                  DpPatchStats &PS, size_t &UnionOps,
                  const BuildGuard *Guard) {
  const size_t NumComps = Scc.Components.size();
  std::vector<bool> CompTainted(NumComps, false);
  RowChanged.assign(Edges.rows(), false);

  for (size_t C = 0; C < NumComps; ++C) {
    guardPollStrided(Guard, C);
    const std::vector<uint32_t> &Members = Scc.Components[C];
    bool Tainted = false;
    for (uint32_t M : Members) {
      if (Seed[M]) {
        Tainted = true;
        break;
      }
      for (uint32_t Y : Edges.row(M)) {
        uint32_t SC = Scc.ComponentOf[Y];
        if (SC != C && CompTainted[SC]) {
          Tainted = true;
          break;
        }
      }
      if (Tainted)
        break;
    }
    CompTainted[C] = Tainted;

    if (!Tainted) {
      // Every reachable equation input is unchanged: the least solution
      // of these rows is the old one, verbatim.
      for (uint32_t M : Members) {
        Sol.copyFrom(M, OldSol, ToOld[M]);
        ++PS.ReusedRows;
      }
      continue;
    }

    ++PS.DirtySccs;
    // Evaluate the component into its first member's row, then replicate:
    // members of one SCC share a solution.
    uint32_t R0 = Members[0];
    for (uint32_t M : Members) {
      Sol.unionInto(R0, Init[M]);
      ++UnionOps;
      for (uint32_t Y : Edges.row(M)) {
        if (Scc.ComponentOf[Y] == C)
          continue;
        // Successor components are final by the processing order.
        Sol.unionInto(R0, Sol[Y]);
        ++UnionOps;
      }
    }
    for (uint32_t M : Members) {
      if (M != R0)
        Sol.copyRow(M, R0);
      uint32_t Old = ToOld[M];
      RowChanged[M] = Old == NtTransitionIndex::Missing ||
                      !Sol.rowEquals(M, OldSol, Old);
    }
  }
}

/// Cycle certificate from an SCC decomposition: nodes in a component of
/// size >= 2 or with a self-loop. Identical to digraphCycleMembers (both
/// define "nontrivial" the same way); computed here from the
/// decomposition the patch already has. Returns the nontrivial count.
size_t cycleMembersFromSccs(const CsrRelation &Edges, const SccResult &Scc,
                            std::vector<bool> &Members) {
  Members.assign(Edges.rows(), false);
  size_t Nontrivial = 0;
  // lalr_lint: no-poll(pure post-pass over the SCC decomposition; no guard
  // is plumbed to this helper)
  for (const std::vector<uint32_t> &Comp : Scc.Components) {
    bool Cyclic = Comp.size() >= 2;
    if (!Cyclic) {
      auto Row = Edges.row(Comp[0]);
      Cyclic = std::binary_search(Row.begin(), Row.end(), Comp[0]);
    }
    if (!Cyclic)
      continue;
    ++Nontrivial;
    for (uint32_t M : Comp)
      Members[M] = true;
  }
  return Nontrivial;
}

} // namespace

std::unique_ptr<LalrLookaheads> LalrLookaheads::patchFrom(
    const Lr0Automaton &OldA, const LalrLookaheads &Old,
    const Lr0Automaton &NewA, const GrammarAnalysis &NewAn,
    std::span<const SymbolId> DirtyNts, DpPatchStats &PS,
    PipelineStats *Stats, const BuildGuard *Guard) {
  const Grammar &G = NewA.grammar();
  std::unique_ptr<LalrLookaheads> OutPtr(new LalrLookaheads());
  LalrLookaheads &Out = *OutPtr;

  const NtTransitionIndex &OldNt = Old.ntTransitions();
  const ReductionIndex &OldRed = Old.reductions();
  const LalrRelations &OldR = Old.relations();
  constexpr uint32_t Missing = NtTransitionIndex::Missing;

  //===--------------------------------------------------------------------===//
  // Plan: match states, propagate taint, map transitions and slots.
  //===--------------------------------------------------------------------===//
  StageTimer PlanT(Stats, "patch-plan");

  const size_t NumNewStates = NewA.numStates();
  std::map<std::vector<uint64_t>, StateId> OldByKernel;
  {
    std::vector<uint64_t> Key;
    for (StateId S = 0; S < OldA.numStates(); ++S) {
      guardPollStrided(Guard, S);
      Key.clear();
      for (const Lr0Item &I : OldA.state(S).Kernel)
        Key.push_back(I.packed());
      OldByKernel.emplace(Key, S);
    }
  }

  std::vector<StateId> NewToOld(NumNewStates, InvalidState);
  {
    std::vector<uint64_t> Key;
    for (StateId S = 0; S < NumNewStates; ++S) {
      guardPollStrided(Guard, S);
      Key.clear();
      for (const Lr0Item &I : NewA.state(S).Kernel)
        Key.push_back(I.packed());
      auto It = OldByKernel.find(Key);
      if (It != OldByKernel.end())
        NewToOld[S] = It->second;
    }
  }

  // A new state is "changed" when it has no kernel match or its content
  // (accessing symbol, reductions, transitions under the state map)
  // differs from the match.
  std::vector<bool> ChangedState(NumNewStates, false);
  for (StateId S = 0; S < NumNewStates; ++S) {
    guardPollStrided(Guard, S);
    StateId OS = NewToOld[S];
    if (OS == InvalidState) {
      ChangedState[S] = true;
      continue;
    }
    const Lr0State &N = NewA.state(S);
    const Lr0State &O = OldA.state(OS);
    bool Same = N.AccessingSymbol == O.AccessingSymbol &&
                N.Reductions == O.Reductions &&
                N.Transitions.size() == O.Transitions.size();
    for (size_t I = 0; Same && I < N.Transitions.size(); ++I)
      Same = N.Transitions[I].first == O.Transitions[I].first &&
             NewToOld[N.Transitions[I].second] == O.Transitions[I].second;
    ChangedState[S] = !Same;
  }

  // Taint radius: the includes/lookback pairs of X = (p', B) are decided
  // by states at most max|rhs| GOTO steps from p' (the production walks)
  // plus the walk transitions' targets; +1 covers that final hop.
  size_t Radius = 0;
  for (ProductionId P = 0; P < G.numProductions(); ++P)
    Radius = std::max(Radius, G.production(P).Rhs.size());
  Radius += 1;

  // Reverse BFS from the changed states over the new automaton, bounded
  // by the radius: TaintedFrom[s] = some changed state within Radius
  // forward steps of s.
  std::vector<bool> TaintedFrom(NumNewStates, false);
  {
    std::vector<std::vector<StateId>> Preds(NumNewStates);
    for (StateId S = 0; S < NumNewStates; ++S)
      for (auto [Sym, T] : NewA.state(S).Transitions) {
        (void)Sym;
        Preds[T].push_back(S);
      }
    std::vector<StateId> Frontier;
    for (StateId S = 0; S < NumNewStates; ++S)
      if (ChangedState[S]) {
        TaintedFrom[S] = true;
        Frontier.push_back(S);
      }
    for (size_t Depth = 0; Depth < Radius && !Frontier.empty(); ++Depth) {
      std::vector<StateId> Next;
      for (StateId S : Frontier)
        for (StateId P : Preds[S])
          if (!TaintedFrom[P]) {
            TaintedFrom[P] = true;
            Next.push_back(P);
          }
      Frontier = std::move(Next);
    }
  }

  Out.NtIdx = std::make_unique<NtTransitionIndex>(NewA);
  Out.RedIdx = std::make_unique<ReductionIndex>(NewA);
  const NtTransitionIndex &NtIdx = *Out.NtIdx;
  const ReductionIndex &RedIdx = *Out.RedIdx;
  const size_t NumNt = NtIdx.size();
  const size_t NumSlots = RedIdx.size();

  // Transition correspondence: (From, Nt) matches when both endpoints map.
  std::vector<uint32_t> ToOldNt(NumNt, Missing);
  std::vector<uint32_t> ToNewNt(OldNt.size(), Missing);
  for (uint32_t X = 0; X < NumNt; ++X) {
    const NtTransition &T = NtIdx[X];
    StateId OS = NewToOld[T.From];
    if (OS == InvalidState)
      continue;
    uint32_t OldX = OldNt.indexOf(OS, T.Nt);
    if (OldX == Missing || OldNt[OldX].To != NewToOld[T.To])
      continue;
    ToOldNt[X] = OldX;
    ToNewNt[OldX] = X;
  }

  // Reduction slot correspondence.
  std::vector<uint32_t> SlotToOld(NumSlots, Missing);
  std::vector<uint32_t> SlotToNew(OldRed.size(), Missing);
  for (uint32_t Slot = 0; Slot < NumSlots; ++Slot) {
    guardPollStrided(Guard, Slot);
    StateId Q = RedIdx.stateOf(Slot);
    StateId OS = NewToOld[Q];
    if (OS == InvalidState)
      continue;
    ProductionId P = RedIdx.prodOf(Slot);
    const auto &OldReds = OldA.state(OS).Reductions;
    if (!std::binary_search(OldReds.begin(), OldReds.end(), P))
      continue;
    uint32_t OldSlot = OldRed.slot(OS, P);
    SlotToOld[Slot] = OldSlot;
    SlotToNew[OldSlot] = Slot;
  }

  // The dirty frontier: transitions that must replay their pairs.
  std::vector<bool> DirtyNtSym(G.numSymbols(), false);
  for (SymbolId S : DirtyNts)
    DirtyNtSym[S] = true;
  std::vector<bool> Dirty(NumNt, false);
  size_t DirtyCount = 0;
  for (uint32_t X = 0; X < NumNt; ++X) {
    const NtTransition &T = NtIdx[X];
    if (TaintedFrom[T.From] || DirtyNtSym[T.Nt] || ToOldNt[X] == Missing) {
      Dirty[X] = true;
      ++DirtyCount;
    }
  }
  PS.DirtySources = DirtyCount;

  // When most of the graph is dirty the patch machinery costs more than
  // it saves — hand back to the full build.
  if (DirtyCount * 4 > NumNt * 3)
    return nullptr;
  PlanT.stop();

  //===--------------------------------------------------------------------===//
  // Relations: DR/reads recomputed outright (one-hop, cheap); the
  // replay-built includes/lookback keep every clean source's pairs.
  //===--------------------------------------------------------------------===//
  StageTimer RelT(Stats, "patch-relations");
  LalrRelations &R = Out.Relations;
  R.DirectRead = SetSlab(NumNt, G.numTerminals());
  {
    std::vector<uint32_t> RowBuf;
    for (uint32_t X = 0; X < NumNt; ++X) {
      guardPollStrided(Guard, X);
      RowBuf.clear();
      buildDrReadsRow(X, NewA, NewAn, NtIdx, R.DirectRead, RowBuf);
      R.Reads.appendRow(RowBuf.data(), RowBuf.data() + RowBuf.size());
    }
    uint32_t StartTrans = NtIdx.indexOf(NewA.startState(), G.startSymbol());
    assert(StartTrans != Missing && "the start transition always exists");
    R.DirectRead.set(StartTrans, G.eofSymbol());
  }

  {
    std::vector<std::vector<uint32_t>> IncludesRows(NumNt);
    std::vector<std::vector<uint32_t>> LookbackRows(NumSlots);

    // Clean sources: remap their old pairs. A clean source's replay walk
    // is confined to unchanged automaton structure, so the mapped old
    // pairs are exactly what a fresh replay would emit; an unmappable
    // target would contradict that, and we fall back rather than guess.
    for (size_t Inner = 0, E = OldR.Includes.rows(); Inner < E; ++Inner) {
      guardPollStrided(Guard, Inner);
      for (uint32_t OldX : OldR.Includes.row(Inner)) {
        uint32_t X = ToNewNt[OldX];
        if (X == Missing || Dirty[X])
          continue;
        uint32_t NewInner = ToNewNt[Inner];
        if (NewInner == Missing)
          return nullptr;
        IncludesRows[NewInner].push_back(X);
      }
    }
    for (size_t Slot = 0, E = OldR.Lookback.rows(); Slot < E; ++Slot) {
      guardPollStrided(Guard, Slot);
      for (uint32_t OldX : OldR.Lookback.row(Slot)) {
        uint32_t X = ToNewNt[OldX];
        if (X == Missing || Dirty[X])
          continue;
        uint32_t NewSlot = SlotToNew[Slot];
        if (NewSlot == Missing)
          return nullptr;
        LookbackRows[NewSlot].push_back(X);
      }
    }

    // Dirty sources: replay their productions against the new automaton.
    {
      std::vector<std::pair<uint32_t, uint32_t>> Inc, Lb;
      for (uint32_t X = 0; X < NumNt; ++X) {
        if (!Dirty[X])
          continue;
        guardPollStrided(Guard, X);
        Inc.clear();
        Lb.clear();
        replayProductionEdges(X, NewA, NewAn, NtIdx, RedIdx, Inc, Lb);
        for (auto [Target, Src] : Inc)
          IncludesRows[Target].push_back(Src);
        for (auto [Slot, Src] : Lb)
          LookbackRows[Slot].push_back(Src);
      }
    }

    for (auto &Row : IncludesRows) {
      std::sort(Row.begin(), Row.end());
      Row.erase(std::unique(Row.begin(), Row.end()), Row.end());
    }
    for (auto &Row : LookbackRows) {
      std::sort(Row.begin(), Row.end());
      Row.erase(std::unique(Row.begin(), Row.end()), Row.end());
    }
    R.Includes = CsrRelation::fromRows(IncludesRows);
    R.Lookback = CsrRelation::fromRows(LookbackRows);
  }
  RelT.stop();

  //===--------------------------------------------------------------------===//
  // Read = digraph(reads, DR), patched.
  //===--------------------------------------------------------------------===//
  std::vector<bool> ReadChanged;
  {
    StageTimer T(Stats, "patch-solve-read");
    std::vector<bool> Seed(NumNt, false);
    std::vector<uint32_t> Scratch;
    for (uint32_t X = 0; X < NumNt; ++X) {
      uint32_t OldX = ToOldNt[X];
      Seed[X] = OldX == Missing ||
                !R.DirectRead.rowEquals(X, OldR.DirectRead, OldX) ||
                !rowsEqualMapped(R.Reads.row(X), OldR.Reads.row(OldX),
                                 ToOldNt, Scratch);
    }
    SccResult Scc = computeSccs(R.Reads);
    Out.ReadSets = SetSlab(NumNt, G.numTerminals());
    size_t UnionOps = 0;
    solvePatched(R.Reads, R.DirectRead, Old.readSets(), ToOldNt, Seed, Scc,
                 Out.ReadSets, ReadChanged, PS, UnionOps, Guard);
    Out.ReadsStats.UnionOps = UnionOps;
    Out.ReadsStats.Sweeps = 1;
    Out.ReadsStats.NontrivialSccs =
        cycleMembersFromSccs(R.Reads, Scc, Out.ReadsCycleMembers);
  }

  //===--------------------------------------------------------------------===//
  // Follow = digraph(includes, Read), patched.
  //===--------------------------------------------------------------------===//
  std::vector<bool> FollowChanged;
  {
    StageTimer T(Stats, "patch-solve-follow");
    std::vector<bool> Seed(NumNt, false);
    std::vector<uint32_t> Scratch;
    for (uint32_t X = 0; X < NumNt; ++X) {
      uint32_t OldX = ToOldNt[X];
      Seed[X] = OldX == Missing || ReadChanged[X] ||
                !rowsEqualMapped(R.Includes.row(X), OldR.Includes.row(OldX),
                                 ToOldNt, Scratch);
    }
    SccResult Scc = computeSccs(R.Includes);
    Out.FollowSets = SetSlab(NumNt, G.numTerminals());
    size_t UnionOps = 0;
    std::vector<bool> CycleScratch;
    solvePatched(R.Includes, Out.ReadSets, Old.followSets(), ToOldNt, Seed,
                 Scc, Out.FollowSets, FollowChanged, PS, UnionOps, Guard);
    Out.IncludesStats.UnionOps = UnionOps;
    Out.IncludesStats.Sweeps = 1;
    Out.IncludesStats.NontrivialSccs =
        cycleMembersFromSccs(R.Includes, Scc, CycleScratch);
  }

  //===--------------------------------------------------------------------===//
  // LA = union of Follow over lookback, patched per slot.
  //===--------------------------------------------------------------------===//
  {
    StageTimer T(Stats, "patch-la");
    Out.LaSets = SetSlab(NumSlots, G.numTerminals());
    std::vector<uint32_t> Scratch;
    for (uint32_t Slot = 0; Slot < NumSlots; ++Slot) {
      guardPollStrided(Guard, Slot);
      uint32_t OldSlot = SlotToOld[Slot];
      bool Clean =
          OldSlot != Missing &&
          rowsEqualMapped(R.Lookback.row(Slot), OldR.Lookback.row(OldSlot),
                          ToOldNt, Scratch);
      if (Clean)
        for (uint32_t X : R.Lookback.row(Slot))
          if (FollowChanged[X]) {
            Clean = false;
            break;
          }
      if (Clean) {
        Out.LaSets.copyFrom(Slot, Old.laSets(), OldSlot);
        ++PS.ReusedLaSlots;
      } else {
        for (uint32_t X : R.Lookback.row(Slot))
          Out.LaSets.unionInto(Slot, Out.FollowSets[X]);
      }
    }
    // The accept reduction's LA is {$end} by definition (it has no
    // lookback); idempotent when the slot was copied clean.
    Out.LaSets.set(Out.RedIdx->slot(NewA.acceptState(), 0), G.eofSymbol());
  }

  Out.recordStats(Stats, 0);
  return OutPtr;
}
