//===- lalr/Relations.cpp - The DeRemer-Pennello relations ------------------===//

#include "lalr/Relations.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

ReductionIndex::ReductionIndex(const Lr0Automaton &A) : A(A) {
  Offsets.reserve(A.numStates() + 1);
  Offsets.push_back(0);
  for (StateId S = 0; S < A.numStates(); ++S) {
    for (ProductionId P : A.state(S).Reductions)
      Prods.push_back(P);
    Offsets.push_back(static_cast<uint32_t>(Prods.size()));
  }
  Total = Prods.size();
}

uint32_t ReductionIndex::slot(StateId State, ProductionId Prod) const {
  const auto &Reds = A.state(State).Reductions;
  auto It = std::lower_bound(Reds.begin(), Reds.end(), Prod);
  assert(It != Reds.end() && *It == Prod &&
         "reduction (state, production) does not exist");
  return Offsets[State] + static_cast<uint32_t>(It - Reds.begin());
}

StateId ReductionIndex::stateOf(uint32_t Slot) const {
  auto It = std::upper_bound(Offsets.begin(), Offsets.end(), Slot);
  return static_cast<StateId>(It - Offsets.begin() - 1);
}

size_t LalrRelations::readsEdgeCount() const {
  size_t N = 0;
  for (const auto &E : Reads)
    N += E.size();
  return N;
}
size_t LalrRelations::includesEdgeCount() const {
  size_t N = 0;
  for (const auto &E : Includes)
    N += E.size();
  return N;
}
size_t LalrRelations::lookbackEdgeCount() const {
  size_t N = 0;
  for (const auto &E : Lookback)
    N += E.size();
  return N;
}

LalrRelations lalr::buildLalrRelations(const Lr0Automaton &A,
                                       const GrammarAnalysis &Analysis,
                                       const NtTransitionIndex &NtIdx,
                                       const ReductionIndex &RedIdx) {
  const Grammar &G = A.grammar();
  const size_t NumNt = NtIdx.size();
  LalrRelations R;
  R.DirectRead.assign(NumNt, BitSet(G.numTerminals()));
  R.Reads.resize(NumNt);
  R.Includes.resize(NumNt);
  R.Lookback.resize(RedIdx.size());

  // DR and reads both look one transition past (p, A).
  for (uint32_t X = 0; X < NumNt; ++X) {
    const NtTransition &T = NtIdx[X];
    for (auto [Sym, Target] : A.state(T.To).Transitions) {
      (void)Target;
      if (G.isTerminal(Sym)) {
        R.DirectRead[X].set(Sym);
        continue;
      }
      if (Analysis.isNullable(Sym)) {
        uint32_t Y = NtIdx.indexOf(T.To, Sym);
        assert(Y != NtTransitionIndex::Missing &&
               "transition enumerated from the automaton must be indexed");
        R.Reads[X].push_back(Y);
      }
    }
  }

  // The augmented grammar has no explicit end marker in production 0
  // ($accept -> start), so the initial start-transition "reads" $end:
  // seed its DR set. This makes LA(accept state, production 0) = {$end}
  // fall out of the normal computation.
  {
    uint32_t StartTrans = NtIdx.indexOf(A.startState(), G.startSymbol());
    assert(StartTrans != NtTransitionIndex::Missing &&
           "the start transition always exists");
    R.DirectRead[StartTrans].set(G.eofSymbol());
  }

  // includes and lookback are both built by replaying every production
  // B -> w from every state p' that carries a B-transition: walking w
  // through the automaton visits the states where each suffix begins.
  for (uint32_t X = 0; X < NumNt; ++X) {
    const NtTransition &T = NtIdx[X]; // (p', B)
    for (ProductionId PId : G.productionsOf(T.Nt)) {
      const Production &P = G.production(PId);
      StateId Cur = T.From;
      for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
        SymbolId S = P.Rhs[I];
        if (G.isNonterminal(S)) {
          // (Cur, S) includes (p', B) iff the rest of the body is
          // nullable.
          bool SuffixNullable = true;
          for (size_t J = I + 1; J != E; ++J)
            if (!Analysis.isNullable(P.Rhs[J])) {
              SuffixNullable = false;
              break;
            }
          if (SuffixNullable) {
            uint32_t Inner = NtIdx.indexOf(Cur, S);
            assert(Inner != NtTransitionIndex::Missing &&
                   "every prefix of a production is traceable in the "
                   "automaton");
            R.Includes[Inner].push_back(X);
          }
        }
        Cur = A.gotoState(Cur, S);
        assert(Cur != InvalidState &&
               "production bodies always walk within the automaton");
      }
      // Cur is now the state reached on the full body: the reduction
      // (Cur, B -> w) looks back to (p', B).
      R.Lookback[RedIdx.slot(Cur, PId)].push_back(X);
    }
  }

  // Deduplicate includes edges: distinct occurrences of A in one body, or
  // different productions, can generate the same edge.
  for (auto &Edges : R.Includes) {
    std::sort(Edges.begin(), Edges.end());
    Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  }
  for (auto &Edges : R.Lookback) {
    std::sort(Edges.begin(), Edges.end());
    Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  }
  return R;
}
