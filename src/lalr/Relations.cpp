//===- lalr/Relations.cpp - The DeRemer-Pennello relations ------------------===//

#include "lalr/Relations.h"

#include "support/FailPoint.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

using namespace lalr;

ReductionIndex::ReductionIndex(const Lr0Automaton &A) : A(A) {
  Offsets.reserve(A.numStates() + 1);
  Offsets.push_back(0);
  for (StateId S = 0; S < A.numStates(); ++S) {
    for (ProductionId P : A.state(S).Reductions)
      Prods.push_back(P);
    Offsets.push_back(static_cast<uint32_t>(Prods.size()));
  }
  Total = Prods.size();
}

uint32_t ReductionIndex::slot(StateId State, ProductionId Prod) const {
  const auto &Reds = A.state(State).Reductions;
  auto It = std::lower_bound(Reds.begin(), Reds.end(), Prod);
  assert(It != Reds.end() && *It == Prod &&
         "reduction (state, production) does not exist");
  return Offsets[State] + static_cast<uint32_t>(It - Reds.begin());
}

StateId ReductionIndex::stateOf(uint32_t Slot) const {
  auto It = std::upper_bound(Offsets.begin(), Offsets.end(), Slot);
  return static_cast<StateId>(It - Offsets.begin() - 1);
}

namespace {

/// Fills DR row X and appends X's reads edges to \p ReadsOut: both look
/// one transition past (p, A). Writes only to row X of the slab, so
/// slices of the transition range are independent.
void buildDrAndReadsRow(uint32_t X, const Lr0Automaton &A, const Grammar &G,
                        const GrammarAnalysis &Analysis,
                        const NtTransitionIndex &NtIdx, SetSlab &DirectRead,
                        std::vector<uint32_t> &ReadsOut) {
  const NtTransition &T = NtIdx[X];
  // lalr_lint: no-poll(per-row helper; every caller polls per row X before
  // invoking it)
  for (auto [Sym, Target] : A.state(T.To).Transitions) {
    (void)Target;
    if (G.isTerminal(Sym)) {
      DirectRead.set(X, Sym);
      continue;
    }
    if (Analysis.isNullable(Sym)) {
      uint32_t Y = NtIdx.indexOf(T.To, Sym);
      assert(Y != NtTransitionIndex::Missing &&
             "transition enumerated from the automaton must be indexed");
      ReadsOut.push_back(Y);
    }
  }
}

/// Replays every production B -> w from the source state of transition
/// X = (p', B): walking w through the automaton visits the states where
/// each suffix begins. Emits includes edges (Inner includes X) and the
/// lookback edge (slot lookback X) through the callbacks, so the serial
/// path can scatter directly while the sharded path buffers per slice.
template <typename IncludesFn, typename LookbackFn>
void replayProductions(uint32_t X, const Lr0Automaton &A, const Grammar &G,
                       const GrammarAnalysis &Analysis,
                       const NtTransitionIndex &NtIdx,
                       const ReductionIndex &RedIdx, IncludesFn EmitIncludes,
                       LookbackFn EmitLookback) {
  const NtTransition &T = NtIdx[X]; // (p', B)
  // lalr_lint: no-poll(per-transition replay helper; every caller polls per
  // transition X before invoking it)
  for (ProductionId PId : G.productionsOf(T.Nt)) {
    const Production &P = G.production(PId);
    StateId Cur = T.From;
    for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
      SymbolId S = P.Rhs[I];
      if (G.isNonterminal(S)) {
        // (Cur, S) includes (p', B) iff the rest of the body is
        // nullable.
        bool SuffixNullable = true;
        for (size_t J = I + 1; J != E; ++J)
          if (!Analysis.isNullable(P.Rhs[J])) {
            SuffixNullable = false;
            break;
          }
        if (SuffixNullable) {
          uint32_t Inner = NtIdx.indexOf(Cur, S);
          assert(Inner != NtTransitionIndex::Missing &&
                 "every prefix of a production is traceable in the "
                 "automaton");
          EmitIncludes(Inner, X);
        }
      }
      Cur = A.gotoState(Cur, S);
      assert(Cur != InvalidState &&
             "production bodies always walk within the automaton");
    }
    // Cur is now the state reached on the full body: the reduction
    // (Cur, B -> w) looks back to (p', B).
    EmitLookback(RedIdx.slot(Cur, PId), X);
  }
}

void sortUnique(std::vector<uint32_t> &Edges) {
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
}

/// Compacts ragged scratch rows into CSR (one flat pass; the scratch is
/// the builders' transient working set, the CSR the published artifact).
CsrRelation compactRows(const std::vector<std::vector<uint32_t>> &Rows) {
  return CsrRelation::fromRows(Rows);
}

/// The sharded build: workers own contiguous slices of the transition
/// range. DR rows are written in place (row X belongs to exactly one
/// slice) and reads edges are buffered flat per slice — a slice's rows
/// are contiguous, so after a per-row-count prefix sum each slice copies
/// its buffer verbatim into its CSR segment. includes/lookback edges
/// target arbitrary rows, so each slice buffers (target, source) pairs
/// and a second parallel pass merges them — each merge worker owns a
/// contiguous range of *target* rows and appends matching pairs in slice
/// order, locklessly, then sort+dedups (the serial build's canonical
/// order) before a final sharded compaction into CSR.
void buildShardedRelations(const Lr0Automaton &A, const GrammarAnalysis &An,
                           const NtTransitionIndex &NtIdx,
                           const ReductionIndex &RedIdx, ThreadPool &Pool,
                           LalrRelations &R, const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  const size_t NumNt = NtIdx.size();
  const size_t NumChunks = Pool.workerCount();

  struct SliceEdges {
    std::vector<uint32_t> Reads; // flat, rows in slice order
    std::vector<std::pair<uint32_t, uint32_t>> Includes; // (target, source)
    std::vector<std::pair<uint32_t, uint32_t>> Lookback; // (slot, source)
  };
  std::vector<SliceEdges> Slices(NumChunks);
  std::vector<uint32_t> ReadsCount(NumNt, 0);

  // Shared running edge total for MaxRelationEdges: each worker adds its
  // per-row delta (relaxed — the trip point is approximate but the trip
  // itself is guaranteed once the total passes the limit).
  std::atomic<uint64_t> EdgeTotal{0};

  Pool.parallelFor(
      0, NumNt,
      [&](size_t Chunk, size_t Lo, size_t Hi) {
        SliceEdges &Out = Slices[Chunk];
        for (size_t X = Lo; X < Hi; ++X) {
          guardPollStrided(Guard, X);
          size_t ReadsBefore = Out.Reads.size();
          size_t Before = Out.Includes.size() + Out.Lookback.size() +
                          ReadsBefore;
          buildDrAndReadsRow(static_cast<uint32_t>(X), A, G, An, NtIdx,
                             R.DirectRead, Out.Reads);
          ReadsCount[X] =
              static_cast<uint32_t>(Out.Reads.size() - ReadsBefore);
          replayProductions(
              static_cast<uint32_t>(X), A, G, An, NtIdx, RedIdx,
              [&](uint32_t Inner, uint32_t Src) {
                Out.Includes.emplace_back(Inner, Src);
              },
              [&](uint32_t Slot, uint32_t Src) {
                Out.Lookback.emplace_back(Slot, Src);
              });
          if (Guard) {
            size_t After = Out.Includes.size() + Out.Lookback.size() +
                           Out.Reads.size();
            uint64_t Total =
                EdgeTotal.fetch_add(After - Before,
                                    std::memory_order_relaxed) +
                (After - Before);
            Guard->checkRelationEdges(Total);
          }
        }
      },
      NumChunks);

  // reads CSR: prefix-sum the per-row counts, then each slice copies its
  // flat buffer into its contiguous segment (slice rows are contiguous,
  // so the segment is [Offsets[Lo], Offsets[Hi])).
  R.Reads.Offsets.resize(NumNt + 1);
  R.Reads.Offsets[0] = 0;
  for (size_t X = 0; X < NumNt; ++X)
    R.Reads.Offsets[X + 1] = R.Reads.Offsets[X] + ReadsCount[X];
  R.Reads.Edges.resize(R.Reads.Offsets[NumNt]);
  Pool.parallelFor(
      0, NumChunks,
      [&](size_t, size_t Lo, size_t Hi) {
        for (size_t Chunk = Lo; Chunk < Hi; ++Chunk) {
          auto [RowLo, RowHi] =
              ThreadPool::chunkRange(0, NumNt, NumChunks, Chunk);
          std::copy(Slices[Chunk].Reads.begin(), Slices[Chunk].Reads.end(),
                    R.Reads.Edges.begin() + R.Reads.Offsets[RowLo]);
          (void)RowHi;
        }
      },
      NumChunks);

  // Merge: worker W owns target rows [Lo, Hi) and scans every slice in
  // slice order, so each row sees its edges in the same global order the
  // serial build produced them — then canonicalizes by sort+dedup anyway.
  std::vector<std::vector<uint32_t>> IncludesRows(NumNt);
  Pool.parallelFor(
      0, NumNt,
      [&](size_t, size_t Lo, size_t Hi) {
        for (const SliceEdges &S : Slices)
          for (auto [Target, Src] : S.Includes)
            if (Target >= Lo && Target < Hi)
              IncludesRows[Target].push_back(Src);
        for (size_t T = Lo; T < Hi; ++T)
          sortUnique(IncludesRows[T]);
      },
      NumChunks);
  std::vector<std::vector<uint32_t>> LookbackRows(RedIdx.size());
  Pool.parallelFor(
      0, RedIdx.size(),
      [&](size_t, size_t Lo, size_t Hi) {
        for (const SliceEdges &S : Slices)
          for (auto [Slot, Src] : S.Lookback)
            if (Slot >= Lo && Slot < Hi)
              LookbackRows[Slot].push_back(Src);
        for (size_t T = Lo; T < Hi; ++T)
          sortUnique(LookbackRows[T]);
      },
      NumChunks);

  // Compaction into CSR, sharded: prefix sums are serial (cheap), the
  // edge copies run per target range.
  auto compactParallel = [&](std::vector<std::vector<uint32_t>> &Rows,
                             CsrRelation &Csr) {
    const size_t N = Rows.size();
    Csr.Offsets.resize(N + 1);
    Csr.Offsets[0] = 0;
    for (size_t I = 0; I < N; ++I)
      Csr.Offsets[I + 1] =
          Csr.Offsets[I] + static_cast<uint32_t>(Rows[I].size());
    Csr.Edges.resize(Csr.Offsets[N]);
    Pool.parallelFor(
        0, N,
        [&](size_t, size_t Lo, size_t Hi) {
          for (size_t I = Lo; I < Hi; ++I)
            std::copy(Rows[I].begin(), Rows[I].end(),
                      Csr.Edges.begin() + Csr.Offsets[I]);
        },
        NumChunks);
  };
  compactParallel(IncludesRows, R.Includes);
  compactParallel(LookbackRows, R.Lookback);
}

} // namespace

void lalr::buildDrReadsRow(uint32_t X, const Lr0Automaton &A,
                           const GrammarAnalysis &Analysis,
                           const NtTransitionIndex &NtIdx, SetSlab &DirectRead,
                           std::vector<uint32_t> &ReadsOut) {
  buildDrAndReadsRow(X, A, A.grammar(), Analysis, NtIdx, DirectRead, ReadsOut);
}

void lalr::replayProductionEdges(
    uint32_t X, const Lr0Automaton &A, const GrammarAnalysis &Analysis,
    const NtTransitionIndex &NtIdx, const ReductionIndex &RedIdx,
    std::vector<std::pair<uint32_t, uint32_t>> &Includes,
    std::vector<std::pair<uint32_t, uint32_t>> &Lookback) {
  replayProductions(
      X, A, A.grammar(), Analysis, NtIdx, RedIdx,
      [&](uint32_t Inner, uint32_t Src) { Includes.emplace_back(Inner, Src); },
      [&](uint32_t Slot, uint32_t Src) { Lookback.emplace_back(Slot, Src); });
}

LalrRelations lalr::buildLalrRelations(const Lr0Automaton &A,
                                       const GrammarAnalysis &Analysis,
                                       const NtTransitionIndex &NtIdx,
                                       const ReductionIndex &RedIdx,
                                       ThreadPool *Pool,
                                       const BuildGuard *Guard) {
  failPoint("relations-build");
  const Grammar &G = A.grammar();
  const size_t NumNt = NtIdx.size();
  LalrRelations R;
  R.DirectRead = SetSlab(NumNt, G.numTerminals());

  if (Pool) {
    buildShardedRelations(A, Analysis, NtIdx, RedIdx, *Pool, R, Guard);
  } else {
    uint64_t Edges = 0;
    std::vector<uint32_t> RowBuf;
    for (uint32_t X = 0; X < NumNt; ++X) {
      guardPollStrided(Guard, X);
      RowBuf.clear();
      buildDrAndReadsRow(X, A, G, Analysis, NtIdx, R.DirectRead, RowBuf);
      // Rows are discovered in index order, so the reads CSR appends
      // directly — no scratch adjacency at all for this relation.
      R.Reads.appendRow(RowBuf.data(), RowBuf.data() + RowBuf.size());
      if (Guard) {
        Edges += RowBuf.size();
        Guard->checkRelationEdges(Edges);
      }
    }

    // includes and lookback are both built by replaying every production
    // from every state that carries a transition on its left-hand side.
    std::vector<std::vector<uint32_t>> IncludesRows(NumNt);
    std::vector<std::vector<uint32_t>> LookbackRows(RedIdx.size());
    for (uint32_t X = 0; X < NumNt; ++X) {
      guardPollStrided(Guard, X);
      replayProductions(
          X, A, G, Analysis, NtIdx, RedIdx,
          [&](uint32_t Inner, uint32_t Src) {
            IncludesRows[Inner].push_back(Src);
            ++Edges;
          },
          [&](uint32_t Slot, uint32_t Src) {
            LookbackRows[Slot].push_back(Src);
            ++Edges;
          });
      // The limit bounds construction growth, so count pre-dedup edges.
      if (Guard)
        Guard->checkRelationEdges(Edges);
    }

    // Deduplicate includes edges: distinct occurrences of A in one body,
    // or different productions, can generate the same edge.
    for (auto &Row : IncludesRows)
      sortUnique(Row);
    for (auto &Row : LookbackRows)
      sortUnique(Row);
    R.Includes = compactRows(IncludesRows);
    R.Lookback = compactRows(LookbackRows);
  }

  // The augmented grammar has no explicit end marker in production 0
  // ($accept -> start), so the initial start-transition "reads" $end:
  // seed its DR set. This makes LA(accept state, production 0) = {$end}
  // fall out of the normal computation.
  {
    uint32_t StartTrans = NtIdx.indexOf(A.startState(), G.startSymbol());
    assert(StartTrans != NtTransitionIndex::Missing &&
           "the start transition always exists");
    R.DirectRead.set(StartTrans, G.eofSymbol());
  }

  return R;
}
