//===- lalr/LalrTableBuilder.cpp - LALR(1) tables via DP --------------------===//

#include "lalr/LalrTableBuilder.h"

using namespace lalr;

ParseTable lalr::buildLalrTable(const Lr0Automaton &A,
                                const LalrLookaheads &LA) {
  return fillParseTable(A, [&LA](StateId S, ProductionId P) -> SetView {
    return LA.la(S, P);
  });
}

ParseTable lalr::buildLalrTable(const Lr0Automaton &A,
                                const GrammarAnalysis &Analysis) {
  LalrLookaheads LA = LalrLookaheads::compute(A, Analysis);
  return buildLalrTable(A, LA);
}
