//===- lalr/DigraphSolver.cpp - The paper's digraph algorithm ---------------===//

#include "lalr/DigraphSolver.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

namespace {

/// Explicit DFS frame: the paper presents the traversal recursively; we
/// run it iteratively so synthetic grammars with very deep includes chains
/// cannot overflow the C++ stack.
struct Frame {
  uint32_t Node;
  uint32_t Depth;   ///< stack depth at the time Node was pushed (1-based)
  size_t EdgeIdx;   ///< next out-edge to examine
  bool SelfLoop;    ///< saw an edge Node -> Node
};

} // namespace

std::vector<BitSet>
lalr::solveDigraph(const std::vector<std::vector<uint32_t>> &Edges,
                   std::vector<BitSet> Init, DigraphStats *Stats,
                   std::vector<bool> *InNontrivialScc) {
  const size_t NumNodes = Edges.size();
  assert(Init.size() == NumNodes && "one initial set per node");
  std::vector<BitSet> F = std::move(Init);

  constexpr uint32_t Unvisited = 0;
  constexpr uint32_t Done = UINT32_MAX;
  std::vector<uint32_t> N(NumNodes, Unvisited);
  std::vector<uint32_t> Stack;     // Tarjan's node stack
  std::vector<Frame> CallStack;    // explicit recursion

  DigraphStats LocalStats;
  if (InNontrivialScc)
    InNontrivialScc->assign(NumNodes, false);

  auto pushNode = [&](uint32_t X) {
    Stack.push_back(X);
    uint32_t Depth = static_cast<uint32_t>(Stack.size());
    N[X] = Depth;
    CallStack.push_back({X, Depth, 0, false});
  };

  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (N[Root] != Unvisited)
      continue;
    pushNode(Root);

    while (!CallStack.empty()) {
      Frame &Fr = CallStack.back();
      uint32_t X = Fr.Node;

      if (Fr.EdgeIdx < Edges[X].size()) {
        uint32_t Y = Edges[X][Fr.EdgeIdx++];
        if (Y == X)
          Fr.SelfLoop = true;
        if (N[Y] == Unvisited) {
          pushNode(Y);
          continue; // descend; the parent update happens at Y's pop
        }
        // Y already visited (on-stack, or completed): fold it in now,
        // exactly as the recursive formulation does after traverse(Y).
        N[X] = std::min(N[X], N[Y]);
        F[X].unionWith(F[Y]);
        ++LocalStats.UnionOps;
        continue;
      }

      // All out-edges of X handled. If X is its component's root, pop the
      // whole SCC and freeze its set.
      bool PoppedComponent = false;
      if (N[X] == Fr.Depth) {
        bool Nontrivial = Stack.back() != X || Fr.SelfLoop;
        if (Nontrivial) {
          ++LocalStats.NontrivialSccs;
          if (InNontrivialScc) {
            // Mark every member (they are the stack suffix down to X).
            for (size_t I = Stack.size(); I-- > 0;) {
              (*InNontrivialScc)[Stack[I]] = true;
              if (Stack[I] == X)
                break;
            }
          }
        }
        while (true) {
          uint32_t Z = Stack.back();
          Stack.pop_back();
          N[Z] = Done;
          if (Z == X)
            break;
          // Every member of the component shares the root's solution.
          F[Z] = F[X];
          ++LocalStats.UnionOps;
        }
        PoppedComponent = true;
      }
      (void)PoppedComponent;

      uint32_t ChildLow = N[X]; // Done if popped, else X's low-link
      uint32_t Child = X;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        Frame &Parent = CallStack.back();
        N[Parent.Node] = std::min(N[Parent.Node], ChildLow);
        F[Parent.Node].unionWith(F[Child]);
        ++LocalStats.UnionOps;
      }
    }
  }

  LocalStats.Sweeps = 1;
  if (Stats)
    *Stats = LocalStats;
  return F;
}

std::vector<BitSet>
lalr::solveNaiveFixpoint(const std::vector<std::vector<uint32_t>> &Edges,
                         std::vector<BitSet> Init, DigraphStats *Stats,
                         bool ReverseOrder) {
  std::vector<BitSet> F = std::move(Init);
  DigraphStats LocalStats;
  const size_t N = Edges.size();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++LocalStats.Sweeps;
    for (size_t I = 0; I < N; ++I) {
      size_t X = ReverseOrder ? N - 1 - I : I;
      for (uint32_t Y : Edges[X]) {
        Changed |= F[X].unionWith(F[Y]);
        ++LocalStats.UnionOps;
      }
    }
  }
  if (Stats)
    *Stats = LocalStats;
  return F;
}
