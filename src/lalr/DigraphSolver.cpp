//===- lalr/DigraphSolver.cpp - The paper's digraph algorithm ---------------===//

#include "lalr/DigraphSolver.h"

#include "support/Scc.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace lalr;

namespace {

/// Explicit DFS frame: the paper presents the traversal recursively; we
/// run it iteratively so synthetic grammars with very deep includes chains
/// cannot overflow the C++ stack.
struct Frame {
  uint32_t Node;
  uint32_t Depth;   ///< stack depth at the time Node was pushed (1-based)
  size_t EdgeIdx;   ///< next out-edge to examine
  bool SelfLoop;    ///< saw an edge Node -> Node
};

// The algorithm bodies are templated over two tiny adapters so the
// CSR+slab form (the DP pipeline) and the ragged+BitSet form (baselines)
// share one implementation:
//
//   EdgesAdapter:  numNodes(), row(X) -> indexable range, hasSelfLoop(X)
//   FamilyAdapter: unionInto(Dst, Src) -> changed, copyRow(Dst, Src)

struct CsrEdges {
  const CsrRelation &R;
  size_t numNodes() const { return R.rows(); }
  std::span<const uint32_t> row(uint32_t X) const { return R.row(X); }
};

struct RaggedEdges {
  const std::vector<std::vector<uint32_t>> &R;
  size_t numNodes() const { return R.size(); }
  const std::vector<uint32_t> &row(uint32_t X) const { return R[X]; }
};

struct SlabFamily {
  SetSlab &F;
  bool unionInto(size_t Dst, size_t Src) { return F.unionInto(Dst, Src); }
  void copyRow(size_t Dst, size_t Src) { F.copyRow(Dst, Src); }
};

struct BitSetFamily {
  std::vector<BitSet> &F;
  bool unionInto(size_t Dst, size_t Src) { return F[Dst].unionWith(F[Src]); }
  void copyRow(size_t Dst, size_t Src) { F[Dst] = F[Src]; }
};

template <typename EdgesT, typename FamilyT>
void solveDigraphImpl(EdgesT Edges, FamilyT F, DigraphStats *Stats,
                      std::vector<bool> *InNontrivialScc,
                      const BuildGuard *Guard) {
  const size_t NumNodes = Edges.numNodes();

  constexpr uint32_t Unvisited = 0;
  constexpr uint32_t Done = UINT32_MAX;
  std::vector<uint32_t> N(NumNodes, Unvisited);
  std::vector<uint32_t> Stack;     // Tarjan's node stack
  std::vector<Frame> CallStack;    // explicit recursion

  DigraphStats LocalStats;
  if (InNontrivialScc)
    InNontrivialScc->assign(NumNodes, false);

  auto pushNode = [&](uint32_t X) {
    guardPollStrided(Guard, X);
    Stack.push_back(X);
    uint32_t Depth = static_cast<uint32_t>(Stack.size());
    N[X] = Depth;
    CallStack.push_back({X, Depth, 0, false});
  };

  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (N[Root] != Unvisited)
      continue;
    pushNode(Root);

    while (!CallStack.empty()) {
      Frame &Fr = CallStack.back();
      uint32_t X = Fr.Node;

      auto Row = Edges.row(X);
      if (Fr.EdgeIdx < Row.size()) {
        uint32_t Y = Row[Fr.EdgeIdx++];
        if (Y == X)
          Fr.SelfLoop = true;
        if (N[Y] == Unvisited) {
          pushNode(Y);
          continue; // descend; the parent update happens at Y's pop
        }
        // Y already visited (on-stack, or completed): fold it in now,
        // exactly as the recursive formulation does after traverse(Y).
        N[X] = std::min(N[X], N[Y]);
        F.unionInto(X, Y);
        ++LocalStats.UnionOps;
        continue;
      }

      // All out-edges of X handled. If X is its component's root, pop the
      // whole SCC and freeze its set.
      if (N[X] == Fr.Depth) {
        bool Nontrivial = Stack.back() != X || Fr.SelfLoop;
        if (Nontrivial) {
          ++LocalStats.NontrivialSccs;
          if (InNontrivialScc) {
            // Mark every member (they are the stack suffix down to X).
            for (size_t I = Stack.size(); I-- > 0;) {
              (*InNontrivialScc)[Stack[I]] = true;
              if (Stack[I] == X)
                break;
            }
          }
        }
        while (true) {
          uint32_t Z = Stack.back();
          Stack.pop_back();
          N[Z] = Done;
          if (Z == X)
            break;
          // Every member of the component shares the root's solution.
          F.copyRow(Z, X);
          ++LocalStats.UnionOps;
        }
      }

      uint32_t ChildLow = N[X]; // Done if popped, else X's low-link
      uint32_t Child = X;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        Frame &Parent = CallStack.back();
        N[Parent.Node] = std::min(N[Parent.Node], ChildLow);
        F.unionInto(Parent.Node, Child);
        ++LocalStats.UnionOps;
      }
    }
  }

  LocalStats.Sweeps = 1;
  if (Stats)
    *Stats = LocalStats;
}

/// True iff component \p Comp is nontrivial (>= 2 nodes, or a self-loop
/// on its single node).
template <typename EdgesT>
bool isNontrivialComponent(const std::vector<uint32_t> &Comp, EdgesT Edges) {
  if (Comp.size() >= 2)
    return true;
  uint32_t U = Comp.front();
  auto Row = Edges.row(U);
  return std::find(Row.begin(), Row.end(), U) != Row.end();
}

template <typename EdgesT>
size_t cycleMembersImpl(EdgesT Edges, const SccResult &Scc,
                        std::vector<bool> &InNontrivialScc) {
  InNontrivialScc.assign(Edges.numNodes(), false);
  size_t Nontrivial = 0;
  for (const std::vector<uint32_t> &Comp : Scc.Components) {
    if (!isNontrivialComponent(Comp, Edges))
      continue;
    ++Nontrivial;
    for (uint32_t U : Comp)
      InNontrivialScc[U] = true;
  }
  return Nontrivial;
}

template <typename EdgesT, typename FamilyT>
void solveDigraphParallelImpl(EdgesT Edges, FamilyT F, ThreadPool &Pool,
                              DigraphStats *Stats,
                              std::vector<bool> *InNontrivialScc,
                              const BuildGuard *Guard, const SccResult &Scc) {
  DigraphStats LocalStats;
  if (InNontrivialScc)
    InNontrivialScc->assign(Edges.numNodes(), false);

  // Components are numbered in reverse topological order: every successor
  // component of C has an index < C, so one ascending pass computes both
  // the deduped successor lists and the wavefront level (longest path to
  // a sink) of every component.
  const size_t NumComps = Scc.componentCount();
  std::vector<std::vector<uint32_t>> CompSucc(NumComps);
  std::vector<uint32_t> Level(NumComps, 0);
  uint32_t MaxLevel = 0;
  for (uint32_t C = 0; C < NumComps; ++C) {
    guardPollStrided(Guard, C);
    std::vector<uint32_t> &Succ = CompSucc[C];
    for (uint32_t U : Scc.Components[C])
      for (uint32_t V : Edges.row(U))
        if (Scc.ComponentOf[V] != C)
          Succ.push_back(Scc.ComponentOf[V]);
    std::sort(Succ.begin(), Succ.end());
    Succ.erase(std::unique(Succ.begin(), Succ.end()), Succ.end());
    for (uint32_t D : Succ)
      Level[C] = std::max(Level[C], Level[D] + 1);
    MaxLevel = std::max(MaxLevel, Level[C]);
    if (isNontrivialComponent(Scc.Components[C], Edges)) {
      ++LocalStats.NontrivialSccs;
      if (InNontrivialScc)
        for (uint32_t U : Scc.Components[C])
          (*InNontrivialScc)[U] = true;
    }
  }

  std::vector<std::vector<uint32_t>> Wavefronts(MaxLevel + 1);
  for (uint32_t C = 0; C < NumComps; ++C)
    Wavefronts[Level[C]].push_back(C);

  // Evaluate level by level: a component only reads the frozen solutions
  // of strictly lower levels plus its own members' initial sets, so the
  // components of one wavefront are data-independent. Union-op counts are
  // accumulated per chunk and reduced after each level, keeping the
  // reported total deterministic.
  std::vector<size_t> ChunkOps(Pool.workerCount(), 0);
  for (const std::vector<uint32_t> &Wave : Wavefronts) {
    Pool.parallelFor(0, Wave.size(), [&](size_t Chunk, size_t Lo, size_t Hi) {
      size_t Ops = 0;
      for (size_t I = Lo; I < Hi; ++I) {
        guardPollStrided(Guard, I);
        const std::vector<uint32_t> &Members = Scc.Components[Wave[I]];
        uint32_t Rep = Members.front();
        for (size_t M = 1; M < Members.size(); ++M) {
          F.unionInto(Rep, Members[M]);
          ++Ops;
        }
        for (uint32_t D : CompSucc[Wave[I]]) {
          F.unionInto(Rep, Scc.Components[D].front());
          ++Ops;
        }
        for (size_t M = 1; M < Members.size(); ++M) {
          F.copyRow(Members[M], Rep);
          ++Ops;
        }
      }
      ChunkOps[Chunk] += Ops;
    });
  }
  for (size_t Ops : ChunkOps)
    LocalStats.UnionOps += Ops;

  LocalStats.Sweeps = 1;
  if (Stats)
    *Stats = LocalStats;
}

template <typename EdgesT, typename FamilyT>
void solveNaiveFixpointImpl(EdgesT Edges, FamilyT F, DigraphStats *Stats,
                            bool ReverseOrder, const BuildGuard *Guard) {
  DigraphStats LocalStats;
  const size_t N = Edges.numNodes();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++LocalStats.Sweeps;
    for (size_t I = 0; I < N; ++I) {
      guardPollStrided(Guard, I);
      size_t X = ReverseOrder ? N - 1 - I : I;
      for (uint32_t Y : Edges.row(static_cast<uint32_t>(X))) {
        Changed |= F.unionInto(X, Y);
        ++LocalStats.UnionOps;
      }
    }
  }
  if (Stats)
    *Stats = LocalStats;
}

} // namespace

// ---------------------------------------------------------------------------
// CSR + SetSlab forms (the DP pipeline's layout)
// ---------------------------------------------------------------------------

SetSlab lalr::solveDigraph(const CsrRelation &Edges, SetSlab Init,
                           DigraphStats *Stats,
                           std::vector<bool> *InNontrivialScc,
                           const BuildGuard *Guard) {
  assert(Init.size() == Edges.rows() && "one initial set per node");
  solveDigraphImpl(CsrEdges{Edges}, SlabFamily{Init}, Stats, InNontrivialScc,
                   Guard);
  return Init;
}

size_t lalr::digraphCycleMembers(const CsrRelation &Edges,
                                 std::vector<bool> &InNontrivialScc) {
  return cycleMembersImpl(CsrEdges{Edges}, computeSccs(Edges),
                          InNontrivialScc);
}

SetSlab lalr::solveDigraphParallel(const CsrRelation &Edges, SetSlab Init,
                                   ThreadPool &Pool, DigraphStats *Stats,
                                   std::vector<bool> *InNontrivialScc,
                                   const BuildGuard *Guard) {
  assert(Init.size() == Edges.rows() && "one initial set per node");
  solveDigraphParallelImpl(CsrEdges{Edges}, SlabFamily{Init}, Pool, Stats,
                           InNontrivialScc, Guard, computeSccs(Edges));
  return Init;
}

SetSlab lalr::solveNaiveFixpoint(const CsrRelation &Edges, SetSlab Init,
                                 DigraphStats *Stats, bool ReverseOrder,
                                 const BuildGuard *Guard) {
  assert(Init.size() == Edges.rows() && "one initial set per node");
  solveNaiveFixpointImpl(CsrEdges{Edges}, SlabFamily{Init}, Stats,
                         ReverseOrder, Guard);
  return Init;
}

// ---------------------------------------------------------------------------
// Ragged + BitSet compatibility forms (baselines, ablations, tests)
// ---------------------------------------------------------------------------

std::vector<BitSet>
lalr::solveDigraph(const std::vector<std::vector<uint32_t>> &Edges,
                   std::vector<BitSet> Init, DigraphStats *Stats,
                   std::vector<bool> *InNontrivialScc,
                   const BuildGuard *Guard) {
  assert(Init.size() == Edges.size() && "one initial set per node");
  solveDigraphImpl(RaggedEdges{Edges}, BitSetFamily{Init}, Stats,
                   InNontrivialScc, Guard);
  return Init;
}

size_t
lalr::digraphCycleMembers(const std::vector<std::vector<uint32_t>> &Edges,
                          std::vector<bool> &InNontrivialScc) {
  return cycleMembersImpl(RaggedEdges{Edges}, computeSccs(Edges),
                          InNontrivialScc);
}

std::vector<BitSet>
lalr::solveDigraphParallel(const std::vector<std::vector<uint32_t>> &Edges,
                           std::vector<BitSet> Init, ThreadPool &Pool,
                           DigraphStats *Stats,
                           std::vector<bool> *InNontrivialScc,
                           const BuildGuard *Guard) {
  assert(Init.size() == Edges.size() && "one initial set per node");
  solveDigraphParallelImpl(RaggedEdges{Edges}, BitSetFamily{Init}, Pool,
                           Stats, InNontrivialScc, Guard, computeSccs(Edges));
  return Init;
}

std::vector<BitSet>
lalr::solveNaiveFixpoint(const std::vector<std::vector<uint32_t>> &Edges,
                         std::vector<BitSet> Init, DigraphStats *Stats,
                         bool ReverseOrder, const BuildGuard *Guard) {
  assert(Init.size() == Edges.size() && "one initial set per node");
  solveNaiveFixpointImpl(RaggedEdges{Edges}, BitSetFamily{Init}, Stats,
                         ReverseOrder, Guard);
  return Init;
}
