//===- lalr/IncrementalDp.h - Dirty-delta DP re-solve -----------*- C++ -*-===//
///
/// \file
/// Counters for LalrLookaheads::patchFrom — the incremental re-derivation
/// of the DeRemer-Pennello artifacts after a production-local grammar
/// edit. The relations are defined per nonterminal transition, so an edit
/// perturbs only the transitions whose source state lies within one
/// production-walk of a changed automaton region (plus the transitions on
/// the edited nonterminals themselves); everything else keeps its rows
/// and its solved Read/Follow/LA sets verbatim. See docs/ALGORITHM.md
/// "Incremental re-solve" for the dirty-frontier semantics.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_INCREMENTALDP_H
#define LALR_LALR_INCREMENTALDP_H

#include "lalr/LalrLookaheads.h"

#include <cstdint>

namespace lalr {

/// What a patchFrom run reused vs recomputed; feeds the incremental_*
/// pipeline counters.
struct DpPatchStats {
  /// Nonterminal transitions whose includes/lookback pairs were replayed
  /// (the dirty frontier after taint propagation).
  uint64_t DirtySources = 0;
  /// Digraph SCCs re-evaluated across the Read and Follow solves.
  uint64_t DirtySccs = 0;
  /// Solved Read/Follow rows copied verbatim from the previous build.
  uint64_t ReusedRows = 0;
  /// LA slots copied verbatim from the previous build.
  uint64_t ReusedLaSlots = 0;
};

} // namespace lalr

#endif // LALR_LALR_INCREMENTALDP_H
