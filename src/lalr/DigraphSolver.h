//===- lalr/DigraphSolver.h - The paper's digraph algorithm -----*- C++ -*-===//
///
/// \file
/// Solver for set equations of the form
///
///     F(x) = F'(x)  UNION  { F(y) : x R y }        (least solution)
///
/// — the shape of both the Read and the Follow equations in DeRemer &
/// Pennello. The algorithm is a single Tarjan-style depth-first traversal
/// that unions child sets into parents and collapses strongly connected
/// components so every node's set is computed once: O(|R|) set operations,
/// which is the efficiency claim of the paper. A naive iterate-to-fixpoint
/// solver is provided as the ablation baseline (Fig. 3).
///
/// Each solver exists in two representations sharing one algorithm body:
/// the primary form takes the relation as CSR (support/Csr.h) and the set
/// family as an arena-backed SetSlab (support/SetSlab.h) — the DP
/// pipeline's layout, where the union loop streams contiguous memory —
/// and a compatibility form takes ragged adjacency + std::vector<BitSet>
/// for the baselines (NQLALR's quotient graph, the ablation benches).
/// The least solution is unique, so both forms produce bit-identical
/// sets and identical UnionOps counts for the same graph.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_DIGRAPHSOLVER_H
#define LALR_LALR_DIGRAPHSOLVER_H

#include "support/BitSet.h"
#include "support/Cancellation.h"
#include "support/Csr.h"
#include "support/SetSlab.h"

#include <cstdint>
#include <vector>

namespace lalr {

class ThreadPool;

/// Counters exposed for the evaluation harness.
struct DigraphStats {
  /// Number of set-union operations performed.
  size_t UnionOps = 0;
  /// Number of nontrivial SCCs (>= 2 nodes, or a self-loop) encountered.
  /// A nontrivial SCC in `reads` certifies the grammar is not LR(k).
  size_t NontrivialSccs = 0;
  /// Fixpoint sweeps (naive solver only; 1 conceptual pass for digraph).
  size_t Sweeps = 0;
};

/// Solves the equation system over nodes [0, Edges.rows()) with initial
/// sets \p Init (consumed and returned as the solution). If \p Stats is
/// nonnull it is filled; if \p InNontrivialScc is nonnull it is resized
/// and marks every node lying on a cycle of the relation.
/// All three solvers poll \p Guard (when non-null) once per node visit /
/// component / sweep node, so cancellation and deadlines interrupt even
/// adversarially deep traversals.
SetSlab solveDigraph(const CsrRelation &Edges, SetSlab Init,
                     DigraphStats *Stats = nullptr,
                     std::vector<bool> *InNontrivialScc = nullptr,
                     const BuildGuard *Guard = nullptr);

/// Ragged/BitSet compatibility form (baseline builders and tests).
std::vector<BitSet>
solveDigraph(const std::vector<std::vector<uint32_t>> &Edges,
             std::vector<BitSet> Init, DigraphStats *Stats = nullptr,
             std::vector<bool> *InNontrivialScc = nullptr,
             const BuildGuard *Guard = nullptr);

/// Structure-only variant of solveDigraph: computes the cycle certificate
/// (which nodes lie on a nontrivial SCC of the relation) without touching
/// any sets. \p InNontrivialScc is resized and filled; the return value is
/// the number of nontrivial SCCs. Used where only the not-LR(k) witness is
/// wanted — e.g. the naive-fixpoint ablation path, which has the sets but
/// not the SCC structure.
size_t digraphCycleMembers(const CsrRelation &Edges,
                           std::vector<bool> &InNontrivialScc);
size_t digraphCycleMembers(const std::vector<std::vector<uint32_t>> &Edges,
                           std::vector<bool> &InNontrivialScc);

/// Parallel solver computing the same least solution as solveDigraph (the
/// solution is unique, so the result is bit-identical): condenses the
/// relation into SCCs, then evaluates one component per task across
/// topological wavefronts — components whose successors are all solved are
/// independent and run concurrently on \p Pool. The serial Tarjan
/// traversal above remains the Threads == 0 path; this one pays an extra
/// O(V+E) condensation pass to expose the parallelism. Stats counters are
/// deterministic but not identical to the serial traversal's (the
/// per-component evaluation order differs). Slab rows never share a
/// 64-bit word, so concurrent chunks touching distinct components are
/// race-free by construction.
SetSlab solveDigraphParallel(const CsrRelation &Edges, SetSlab Init,
                             ThreadPool &Pool, DigraphStats *Stats = nullptr,
                             std::vector<bool> *InNontrivialScc = nullptr,
                             const BuildGuard *Guard = nullptr);

std::vector<BitSet>
solveDigraphParallel(const std::vector<std::vector<uint32_t>> &Edges,
                     std::vector<BitSet> Init, ThreadPool &Pool,
                     DigraphStats *Stats = nullptr,
                     std::vector<bool> *InNontrivialScc = nullptr,
                     const BuildGuard *Guard = nullptr);

/// Ablation baseline: Gauss-Seidel sweeps over all edges until nothing
/// changes. Produces the same least solution with O(n * |R|) worst-case
/// set operations. Its sweep count depends on how well the node
/// processing order matches the edge direction; \p ReverseOrder processes
/// nodes in descending index order, the adversarial order for relations
/// whose edges point from later to earlier nodes (as the includes
/// relation of a BFS-numbered automaton mostly does). The digraph
/// algorithm above is order-independent — that contrast is the Fig. 3
/// ablation.
SetSlab solveNaiveFixpoint(const CsrRelation &Edges, SetSlab Init,
                           DigraphStats *Stats = nullptr,
                           bool ReverseOrder = false,
                           const BuildGuard *Guard = nullptr);

std::vector<BitSet>
solveNaiveFixpoint(const std::vector<std::vector<uint32_t>> &Edges,
                   std::vector<BitSet> Init, DigraphStats *Stats = nullptr,
                   bool ReverseOrder = false,
                   const BuildGuard *Guard = nullptr);

} // namespace lalr

#endif // LALR_LALR_DIGRAPHSOLVER_H
