//===- lalr/Relations.h - The DeRemer-Pennello relations --------*- C++ -*-===//
///
/// \file
/// Construction of the four relations of the paper over an LR(0)
/// automaton's nonterminal transitions:
///
///   DR(p,A)   = { t : p --A--> r --t--> }           (direct read sets)
///   (p,A) reads (r,C)    iff p --A--> r --C--> and C nullable
///   (p,A) includes (p',B) iff B -> beta A gamma, gamma =>* eps,
///                              p' --beta--> p
///   (q, A->w) lookback (p,A) iff p --w--> q
///
/// The relations are pure data; the solving happens in DigraphSolver /
/// LalrLookaheads. The representation is flat: DR is a SetSlab (all rows
/// in one aligned arena) and the three adjacencies are CSR
/// (support/Csr.h), so the solvers walk contiguous memory instead of
/// per-row heap allocations. Rows are sorted ascending and deduplicated —
/// the same canonical edge order the old ragged build produced, so
/// artifacts stay bit-identical across the representation change.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LALR_RELATIONS_H
#define LALR_LALR_RELATIONS_H

#include "grammar/Analysis.h"
#include "lalr/NtTransitionIndex.h"
#include "support/BitSet.h"
#include "support/Cancellation.h"
#include "support/Csr.h"
#include "support/SetSlab.h"

#include <cstdint>
#include <vector>

namespace lalr {

/// Dense index over the reductions (q, A->w) of an automaton: slot =
/// ReductionOffset[q] + position of the production among state q's sorted
/// Reductions list.
class ReductionIndex {
public:
  explicit ReductionIndex(const Lr0Automaton &A);

  size_t size() const { return Total; }

  /// Slot of reduction (State, Prod). Asserts the reduction exists.
  uint32_t slot(StateId State, ProductionId Prod) const;

  /// Inverse mapping: the state and production of a slot.
  StateId stateOf(uint32_t Slot) const;
  ProductionId prodOf(uint32_t Slot) const { return Prods[Slot]; }

private:
  const Lr0Automaton &A;
  std::vector<uint32_t> Offsets; // by state, size numStates+1
  std::vector<ProductionId> Prods; // by slot
  size_t Total = 0;
};

/// The assembled relations for one automaton.
struct LalrRelations {
  /// Direct read sets, by nonterminal-transition index, over terminals;
  /// one arena-backed slab row per transition. Seeded with $end on the
  /// (0, start) transition so that the accept action falls out of the
  /// ordinary computation.
  SetSlab DirectRead;

  /// reads adjacency (CSR), by nonterminal-transition index.
  CsrRelation Reads;

  /// includes adjacency (CSR), by nonterminal-transition index.
  CsrRelation Includes;

  /// lookback (CSR): for each reduction slot, the nonterminal transitions
  /// whose Follow sets union into its LA set.
  CsrRelation Lookback;

  size_t readsEdgeCount() const { return Reads.edgeCount(); }
  size_t includesEdgeCount() const { return Includes.edgeCount(); }
  size_t lookbackEdgeCount() const { return Lookback.edgeCount(); }
};

class ThreadPool;

/// Builds all four relations. \p Analysis must belong to the automaton's
/// grammar (only nullability is consulted). With a non-null \p Pool the
/// build is sharded over contiguous slices of the nonterminal-transition
/// range (per-slice buffers, lock-free merge, CSR compaction by slice
/// ownership); the result is bit-identical to the serial build. \p Guard,
/// when non-null, is polled once per transition row and enforces
/// MaxRelationEdges over the running reads+includes+lookback edge total
/// (exactly on the serial path; via a shared relaxed counter — so the
/// trip row, not the outcome, may vary — on the sharded path).
LalrRelations buildLalrRelations(const Lr0Automaton &A,
                                 const GrammarAnalysis &Analysis,
                                 const NtTransitionIndex &NtIdx,
                                 const ReductionIndex &RedIdx,
                                 ThreadPool *Pool = nullptr,
                                 const BuildGuard *Guard = nullptr);

/// \name Row-granular builders (incremental rebuild hooks)
/// The same per-transition primitives the full build above is made of,
/// exposed so lalr/IncrementalDp.cpp can recompute exactly the rows a
/// dirty frontier reaches. Outputs are bit-identical to the corresponding
/// rows of a full build.
/// @{

/// Fills DR row \p X of \p DirectRead and appends X's reads successors
/// (ascending) to \p ReadsOut.
void buildDrReadsRow(uint32_t X, const Lr0Automaton &A,
                     const GrammarAnalysis &Analysis,
                     const NtTransitionIndex &NtIdx, SetSlab &DirectRead,
                     std::vector<uint32_t> &ReadsOut);

/// Replays the productions of transition X's nonterminal from X's source
/// state, appending (target row, X) pairs: includes pairs keyed by inner
/// transition, lookback pairs keyed by reduction slot. Pre-dedup, in the
/// same emission order as the full serial build.
void replayProductionEdges(
    uint32_t X, const Lr0Automaton &A, const GrammarAnalysis &Analysis,
    const NtTransitionIndex &NtIdx, const ReductionIndex &RedIdx,
    std::vector<std::pair<uint32_t, uint32_t>> &Includes,
    std::vector<std::pair<uint32_t, uint32_t>> &Lookback);

/// @}

} // namespace lalr

#endif // LALR_LALR_RELATIONS_H
