//===- report/ConflictWitness.cpp - Full-sentence conflict examples -----------===//

#include "report/ConflictWitness.h"

#include "grammar/SentenceGen.h"
#include "parser/ParserDriver.h"
#include "support/Rng.h"

using namespace lalr;

std::optional<std::vector<SymbolId>>
lalr::findConflictWitness(const Grammar &G, const ParseTable &Table,
                          const Conflict &C, unsigned Tries, size_t MaxLen,
                          uint64_t Seed) {
  CellSpyTable Spy(Table, C.State, C.Terminal);
  Rng R(Seed);
  for (unsigned I = 0; I < Tries; ++I) {
    std::vector<SymbolId> S = randomSentence(G, R, MaxLen);
    std::vector<Token> Tokens;
    Tokens.reserve(S.size());
    for (SymbolId Sym : S) {
      Token T;
      T.Kind = Sym;
      Tokens.push_back(std::move(T));
    }
    Spy.reset();
    auto Out = recognize(G, Spy, Tokens,
                         ParseOptions{/*Recover=*/false, /*MaxErrors=*/1});
    if (Spy.hit() && Out.clean())
      return S;
  }
  return std::nullopt;
}
