//===- report/AutomatonReport.h - yacc -v style reports ---------*- C++ -*-===//
///
/// \file
/// Human-readable dumps of the automaton, look-ahead sets, relations and
/// conflicts — the equivalent of yacc's y.output. Used by the
/// grammar_report example and handy when debugging grammars.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_REPORT_AUTOMATONREPORT_H
#define LALR_REPORT_AUTOMATONREPORT_H

#include "lalr/LalrLookaheads.h"
#include "lr/Lr0Automaton.h"
#include "lr/ParseTable.h"
#include "pipeline/PipelineStats.h"

#include <string>

namespace lalr {

/// Renders every state: its full item set, transitions, and reductions
/// with their LA sets (when \p LA is nonnull).
std::string reportStates(const Lr0Automaton &A, const LalrLookaheads *LA);

/// Renders the DP artifacts: nonterminal transitions with DR/Read/Follow
/// sets, and the reads/includes edges.
std::string reportRelations(const Lr0Automaton &A, const LalrLookaheads &LA);

/// Renders the conflict list of a table (resolved and unresolved).
std::string reportConflicts(const Grammar &G, const ParseTable &Table);

/// Renders a compact terminal-set "{ a b c }". Takes a view so BitSets
/// and slab rows both print.
std::string renderTerminalSet(const Grammar &G, SetView Set);

/// Renders pipeline stage timings and counters as an aligned two-column
/// listing (the human-readable companion of PipelineStats::toJson).
std::string reportPipelineStats(const PipelineStats &Stats);

} // namespace lalr

#endif // LALR_REPORT_AUTOMATONREPORT_H
