//===- report/ConflictWitness.h - Full-sentence conflict examples -*- C++ -*-===//
///
/// \file
/// Upgrades the viable-prefix conflict explanation to a *complete
/// sentence*: a member of L(G) whose parse actually consults the
/// conflicted (state, terminal) cell. Found by sampling random sentences
/// through a cell-spying wrapper around the parse table — probabilistic
/// (an unlucky budget returns nothing), but when it returns a sentence,
/// that sentence provably exercises the conflict.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_REPORT_CONFLICTWITNESS_H
#define LALR_REPORT_CONFLICTWITNESS_H

#include "grammar/Grammar.h"
#include "lr/ParseTable.h"

#include <optional>
#include <vector>

namespace lalr {

/// A wrapper exposing ParseTable's interface while recording whether one
/// particular cell was consulted. Works with the templated driver.
class CellSpyTable {
public:
  CellSpyTable(const ParseTable &Inner, uint32_t State, SymbolId Terminal)
      : Inner(Inner), SpyState(State), SpyTerminal(Terminal) {}

  Action action(uint32_t State, SymbolId Terminal) const {
    if (State == SpyState && Terminal == SpyTerminal)
      Hit = true;
    return Inner.action(State, Terminal);
  }
  uint32_t gotoNt(uint32_t State, SymbolId Nt, const Grammar &G) const {
    return Inner.gotoNt(State, Nt, G);
  }
  size_t numStates() const { return Inner.numStates(); }

  bool hit() const { return Hit; }
  void reset() { Hit = false; }

private:
  const ParseTable &Inner;
  uint32_t SpyState;
  SymbolId SpyTerminal;
  mutable bool Hit = false;
};

/// Searches up to \p Tries random sentences (seeded deterministically
/// from \p Seed) for one whose parse consults \p C's cell. Requires the
/// reaching parse to succeed under the table's resolution, so the
/// returned sentence is a real program exercising the conflict.
std::optional<std::vector<SymbolId>>
findConflictWitness(const Grammar &G, const ParseTable &Table,
                    const Conflict &C, unsigned Tries = 2000,
                    size_t MaxLen = 30, uint64_t Seed = 1);

} // namespace lalr

#endif // LALR_REPORT_CONFLICTWITNESS_H
