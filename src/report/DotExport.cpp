//===- report/DotExport.cpp - Graphviz export of automata ---------------------===//

#include "report/DotExport.h"

#include "report/AutomatonReport.h"

#include <sstream>

using namespace lalr;

namespace {

/// Escapes a string for a DOT label.
std::string dotEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string lalr::exportDot(const Lr0Automaton &A, const LalrLookaheads *LA,
                            const DotOptions &Opts) {
  const Grammar &G = A.grammar();
  const bool Detailed =
      Opts.ShowItems && A.numStates() <= Opts.MaxDetailedStates;
  std::ostringstream OS;
  OS << "digraph \"" << dotEscape(G.grammarName()) << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";

  for (StateId S = 0; S < A.numStates(); ++S) {
    OS << "  s" << S << " [label=\"";
    if (!Detailed) {
      OS << "state " << S;
    } else {
      OS << "state " << S << "\\n";
      for (const Lr0Item &Item : A.closureItems(S))
        OS << dotEscape(Item.toString(G)) << "\\l";
      if (Opts.ShowLookaheads && LA)
        for (ProductionId P : A.state(S).Reductions)
          OS << dotEscape("reduce " + std::to_string(P) + " on " +
                          renderTerminalSet(G, LA->la(S, P)))
             << "\\l";
    }
    OS << "\"";
    if (S == A.acceptState())
      OS << ", peripheries=2";
    OS << "];\n";
  }

  for (StateId S = 0; S < A.numStates(); ++S)
    for (auto [Sym, Target] : A.state(S).Transitions) {
      OS << "  s" << S << " -> s" << Target << " [label=\""
         << dotEscape(G.name(Sym)) << "\"";
      if (G.isNonterminal(Sym))
        OS << ", style=dashed";
      OS << "];\n";
    }
  OS << "}\n";
  return OS.str();
}
