//===- report/AutomatonReport.cpp - yacc -v style reports -------------------===//

#include "report/AutomatonReport.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

using namespace lalr;

std::string lalr::renderTerminalSet(const Grammar &G, SetView Set) {
  std::ostringstream OS;
  OS << "{";
  for (size_t T : Set)
    OS << ' ' << G.name(static_cast<SymbolId>(T));
  OS << " }";
  return OS.str();
}

std::string lalr::reportStates(const Lr0Automaton &A,
                               const LalrLookaheads *LA) {
  const Grammar &G = A.grammar();
  std::ostringstream OS;
  for (StateId S = 0; S < A.numStates(); ++S) {
    OS << "state " << S;
    if (A.state(S).AccessingSymbol != InvalidSymbol)
      OS << "  (on " << G.name(A.state(S).AccessingSymbol) << ")";
    OS << "\n";
    for (const Lr0Item &Item : A.closureItems(S))
      OS << "    " << Item.toString(G) << "\n";
    if (!A.state(S).Transitions.empty()) {
      OS << "  transitions:\n";
      for (auto [Sym, Target] : A.state(S).Transitions)
        OS << "    " << G.name(Sym) << " -> state " << Target << "\n";
    }
    if (!A.state(S).Reductions.empty()) {
      OS << "  reductions:\n";
      for (ProductionId P : A.state(S).Reductions) {
        OS << "    by " << P << " (" << G.productionToString(P) << ")";
        if (LA)
          OS << "  on " << renderTerminalSet(G, LA->la(S, P));
        OS << "\n";
      }
    }
    OS << "\n";
  }
  return OS.str();
}

std::string lalr::reportRelations(const Lr0Automaton &A,
                                  const LalrLookaheads &LA) {
  const Grammar &G = A.grammar();
  const NtTransitionIndex &NtIdx = LA.ntTransitions();
  const LalrRelations &R = LA.relations();
  std::ostringstream OS;

  auto transName = [&](uint32_t X) {
    std::ostringstream N;
    N << "(" << NtIdx[X].From << ", " << G.name(NtIdx[X].Nt) << ")";
    return N.str();
  };

  OS << "nonterminal transitions: " << NtIdx.size() << "\n";
  for (uint32_t X = 0; X < NtIdx.size(); ++X) {
    OS << "  " << transName(X) << " -> state " << NtIdx[X].To << "\n";
    OS << "    DR     = " << renderTerminalSet(G, R.DirectRead[X]) << "\n";
    OS << "    Read   = " << renderTerminalSet(G, LA.readSets()[X]) << "\n";
    OS << "    Follow = " << renderTerminalSet(G, LA.followSets()[X])
       << "\n";
    if (R.Reads.rowSize(X)) {
      OS << "    reads:";
      for (uint32_t Y : R.Reads.row(X))
        OS << ' ' << transName(Y);
      OS << "\n";
    }
    if (R.Includes.rowSize(X)) {
      OS << "    includes:";
      for (uint32_t Y : R.Includes.row(X))
        OS << ' ' << transName(Y);
      OS << "\n";
    }
  }
  OS << "reads edges: " << R.readsEdgeCount()
     << ", includes edges: " << R.includesEdgeCount()
     << ", lookback edges: " << R.lookbackEdgeCount() << "\n";
  if (LA.grammarNotLrK())
    OS << "NOTE: nontrivial SCC in reads -- grammar is not LR(k) for any "
          "k\n";
  return OS.str();
}

std::string lalr::reportConflicts(const Grammar &G, const ParseTable &Table) {
  std::ostringstream OS;
  if (Table.conflicts().empty())
    return "no conflicts\n";
  for (const Conflict &C : Table.conflicts())
    OS << C.toString(G) << "\n";
  OS << Table.unresolvedShiftReduce() << " shift/reduce and "
     << Table.unresolvedReduceReduce()
     << " reduce/reduce conflicts unresolved\n";
  return OS.str();
}

std::string lalr::reportPipelineStats(const PipelineStats &Stats) {
  std::ostringstream OS;
  OS << "pipeline stats";
  if (!Stats.Label.empty())
    OS << " for " << Stats.Label;
  OS << ":\n";
  size_t Width = 0;
  for (const StageRecord &S : Stats.stages())
    Width = std::max(Width, S.Name.size());
  for (const CounterRecord &C : Stats.counters())
    Width = std::max(Width, C.Name.size());
  OS << "  stages:\n";
  OS << std::fixed << std::setprecision(1);
  for (const StageRecord &S : Stats.stages())
    OS << "    " << std::left << std::setw(static_cast<int>(Width)) << S.Name
       << "  " << S.WallUs << " us\n";
  OS << "    " << std::left << std::setw(static_cast<int>(Width)) << "total"
     << "  " << Stats.totalUs() << " us\n";
  if (!Stats.counters().empty()) {
    OS << "  counters:\n";
    for (const CounterRecord &C : Stats.counters())
      OS << "    " << std::left << std::setw(static_cast<int>(Width))
         << C.Name << "  " << C.Value << "\n";
  }
  return OS.str();
}
