//===- report/DotExport.h - Graphviz export of automata ---------*- C++ -*-===//
///
/// \file
/// Renders an LR(0) automaton as a Graphviz digraph, optionally
/// annotating reductions with their DP look-ahead sets — the picture
/// every LR textbook draws, generated mechanically for any grammar.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_REPORT_DOTEXPORT_H
#define LALR_REPORT_DOTEXPORT_H

#include "lalr/LalrLookaheads.h"
#include "lr/Lr0Automaton.h"

#include <string>

namespace lalr {

/// Options for the rendering.
struct DotOptions {
  /// Include the full item sets in state labels (false: state ids only).
  bool ShowItems = true;
  /// Annotate reductions with LA sets (requires a LalrLookaheads).
  bool ShowLookaheads = true;
  /// Cap on states rendered with items (larger automata fall back to
  /// id-only labels to stay readable).
  size_t MaxDetailedStates = 64;
};

/// Renders \p A as a DOT digraph. \p LA may be null.
std::string exportDot(const Lr0Automaton &A, const LalrLookaheads *LA,
                      const DotOptions &Opts = {});

} // namespace lalr

#endif // LALR_REPORT_DOTEXPORT_H
