//===- parser/ParserDriver.h - Table-driven LR parsing ----------*- C++ -*-===//
///
/// \file
/// The runtime half of the generator: a shift-reduce driver over any
/// ParseTable (LALR, SLR, or canonical LR(1) tables all run through the
/// same loop). Semantic values are supplied by callbacks, so the driver is
/// a header template usable with any value type; tree building and
/// recognize-only parsing are thin wrappers.
///
/// Error handling is panic-mode: on a syntax error the driver reports the
/// offending token and the expected set, then discards input tokens until
/// one becomes shiftable (or gives up at end of input / after a bounded
/// number of errors).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PARSER_PARSERDRIVER_H
#define LALR_PARSER_PARSERDRIVER_H

#include "grammar/Grammar.h"
#include "lr/ParseTable.h"
#include "parser/ParseTree.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

namespace lalr {

/// One input token for the runtime parser.
struct Token {
  SymbolId Kind = InvalidSymbol;
  std::string Text;
  SourceLocation Loc;
};

/// Driver knobs.
struct ParseOptions {
  /// Attempt recovery instead of stopping at the first error.
  bool Recover = true;
  /// Hard cap on reported errors before giving up.
  size_t MaxErrors = 25;
  /// When the grammar declares an 'error' terminal, recover yacc-style:
  /// pop states until 'error' is shiftable, shift it, then discard input
  /// until a token has an action. Falls back to panic mode (discard one
  /// token) when no state on the stack can shift 'error'.
  bool UseErrorToken = true;
  /// Optional governance for the parse loop itself: when set, the driver
  /// polls it once per shift/reduce step, so a deadline or cancellation
  /// aborts a runaway parse with BuildAbort exactly like a build stage.
  /// Not owned; null = ungoverned (the default, costs nothing).
  const BuildGuard *Guard = nullptr;

  /// Stop at the first error, no recovery — the configuration the
  /// error-detection-latency experiment runs under.
  static ParseOptions strict() { return {false, 1, true}; }
};

/// One syntax error: where, what was seen, what was possible.
struct ParseError {
  SourceLocation Loc;
  std::string Message;
  /// Reductions performed with the offending token as look-ahead before
  /// the error was reported. Canonical LR(1) tables detect immediately
  /// (0); LALR/SLR tables may reduce first (their LA sets merge
  /// contexts); default-reduction-compressed tables reduce the most.
  /// This is the error-detection-latency experiment's measurement.
  size_t ReductionsBeforeDetection = 0;
};

/// Result of a parse, with or without a semantic value.
template <typename ValueT> struct ParseOutcome {
  bool Accepted = false;
  std::optional<ValueT> Value;
  std::vector<ParseError> Errors;
  /// Reduction sequence = the reversed rightmost derivation.
  std::vector<ProductionId> Reductions;
  size_t Shifts = 0;

  bool clean() const { return Accepted && Errors.empty(); }
};

namespace detail {

/// Formats "unexpected X, expected one of: a b c". \p TableT is any type
/// with ParseTable's action() interface (e.g. CompressedTable).
template <typename TableT>
std::string describeSyntaxError(const Grammar &G, const TableT &T,
                                uint32_t State, SymbolId Got) {
  std::ostringstream OS;
  OS << "unexpected " << G.name(Got) << ", expected";
  size_t Listed = 0;
  for (SymbolId X = 0; X < G.numTerminals(); ++X) {
    if (T.action(State, X).Kind == ActionKind::Error)
      continue;
    OS << (Listed == 0 ? ": " : " ") << G.name(X);
    if (++Listed == 12) {
      OS << " ...";
      break;
    }
  }
  if (Listed == 0)
    OS << " nothing (parser state " << State << " is a dead end)";
  return OS.str();
}

} // namespace detail

/// Runs the LR driver over \p Input (an implicit $end is appended).
/// \p OnToken maps a shifted token to a value; \p OnReduce maps a
/// production and the values of its right-hand side (a mutable span —
/// move out of it) to the value of the left-hand side. \p TableT is
/// ParseTable or any type with the same action()/gotoNt() interface
/// (CompressedTable).
template <typename ValueT, typename TokenFnT, typename ReduceFnT,
          typename TableT>
ParseOutcome<ValueT>
parseWithActions(const Grammar &G, const TableT &Table,
                 std::span<const Token> Input, TokenFnT OnToken,
                 ReduceFnT OnReduce, const ParseOptions &Opts = {}) {
  ParseOutcome<ValueT> Out;
  std::vector<uint32_t> States{0};
  std::vector<ValueT> Values;

  Token EofTok;
  EofTok.Kind = G.eofSymbol();
  EofTok.Text = "$end";

  size_t Pos = 0;
  size_t ReducesOnCurrentToken = 0;
  size_t Steps = 0;
  while (true) {
    guardPollStrided(Opts.Guard, Steps++);
    const Token &Tok = Pos < Input.size() ? Input[Pos] : EofTok;
    assert(Tok.Kind < G.numTerminals() && "token kind must be a terminal");
    Action A = Table.action(States.back(), Tok.Kind);

    if (A.Kind == ActionKind::Shift) {
      States.push_back(A.Value);
      Values.push_back(OnToken(Tok));
      ++Out.Shifts;
      ++Pos;
      ReducesOnCurrentToken = 0;
      continue;
    }
    if (A.Kind == ActionKind::Reduce) {
      // Safety valve: with default-reduction tables an erroneous token
      // can trigger a chain of reduces; a chain longer than the state
      // count times the production count cannot be making progress.
      if (ReducesOnCurrentToken >
          Table.numStates() * G.numProductions() + 16) {
        Out.Errors.push_back({Tok.Loc,
                              "parser made no progress (runaway "
                              "reduction chain); giving up",
                              ReducesOnCurrentToken});
        return Out;
      }
      const Production &P = G.production(A.Value);
      size_t N = P.Rhs.size();
      assert(Values.size() >= N && States.size() > N &&
             "stack underflow on reduce");
      std::span<ValueT> Popped(Values.data() + (Values.size() - N), N);
      ValueT V = OnReduce(A.Value, Popped);
      Values.resize(Values.size() - N);
      States.resize(States.size() - N);
      uint32_t Next = Table.gotoNt(States.back(), P.Lhs, G);
      assert(Next != InvalidState && "missing GOTO after reduce");
      States.push_back(Next);
      Values.push_back(std::move(V));
      Out.Reductions.push_back(A.Value);
      ++ReducesOnCurrentToken;
      continue;
    }
    if (A.Kind == ActionKind::Accept) {
      Out.Reductions.push_back(0);
      Out.Accepted = true;
      if (!Values.empty())
        Out.Value = std::move(Values.back());
      return Out;
    }

    // Syntax error.
    Out.Errors.push_back({Tok.Loc,
                          detail::describeSyntaxError(G, Table,
                                                      States.back(),
                                                      Tok.Kind),
                          ReducesOnCurrentToken});
    ReducesOnCurrentToken = 0;
    if (!Opts.Recover || Out.Errors.size() >= Opts.MaxErrors)
      return Out;

    // Yacc-style recovery via the reserved 'error' terminal, when the
    // grammar declares one and some stacked state can shift it.
    SymbolId ErrorTok =
        Opts.UseErrorToken ? G.findSymbol("error") : InvalidSymbol;
    if (ErrorTok != InvalidSymbol && G.isTerminal(ErrorTok)) {
      size_t Depth = States.size();
      while (Depth > 0 &&
             Table.action(States[Depth - 1], ErrorTok).Kind !=
                 ActionKind::Shift)
        --Depth;
      if (Depth > 0) {
        // Pop to the recovery state, shift 'error' with a default value.
        States.resize(Depth);
        Values.erase(Values.begin() + (Depth - 1), Values.end());
        Action ShiftErr = Table.action(States.back(), ErrorTok);
        States.push_back(ShiftErr.Value);
        Token Synth;
        Synth.Kind = ErrorTok;
        Synth.Text = "error";
        Synth.Loc = Tok.Loc;
        Values.push_back(OnToken(Synth));
        // Discard input until a token with any action in the new state
        // ($end always stops the scan).
        while (Pos < Input.size() &&
               Table.action(States.back(), Input[Pos].Kind).Kind ==
                   ActionKind::Error)
          ++Pos;
        continue;
      }
    }

    if (Pos >= Input.size())
      return Out; // error at $end: nothing left to discard
    // Panic mode: discard the offending token and retry.
    ++Pos;
  }
}

/// Recognize-only parse: no semantic values, cheapest possible run.
template <typename TableT>
ParseOutcome<int> recognize(const Grammar &G, const TableT &Table,
                            std::span<const Token> Input,
                            const ParseOptions &Opts = {}) {
  return parseWithActions<int>(
      G, Table, Input, [](const Token &) { return 0; },
      [](ProductionId, std::span<int>) { return 0; }, Opts);
}

/// Parse into a concrete parse tree.
template <typename TableT>
ParseOutcome<std::unique_ptr<ParseNode>>
parseToTree(const Grammar &G, const TableT &Table,
            std::span<const Token> Input, const ParseOptions &Opts = {}) {
  return parseWithActions<std::unique_ptr<ParseNode>>(
      G, Table, Input,
      [](const Token &Tok) { return makeLeaf(Tok.Kind, Tok.Text); },
      [&G](ProductionId Prod, std::span<std::unique_ptr<ParseNode>> Rhs) {
        std::vector<std::unique_ptr<ParseNode>> Children;
        Children.reserve(Rhs.size());
        for (auto &Child : Rhs)
          Children.push_back(std::move(Child));
        return makeInterior(G.production(Prod).Lhs, Prod,
                            std::move(Children));
      },
      Opts);
}

/// Structured tokenization failure: which lexeme was not a terminal of
/// the grammar, and where it sat in the input text.
struct TokenizeError {
  /// Byte offset of the offending lexeme in the input text.
  size_t Offset = 0;
  /// 0-based index of the offending lexeme in the token stream.
  size_t Index = 0;
  /// The offending lexeme verbatim.
  std::string Lexeme;

  /// "unknown terminal 'x' at offset 7 (token #2)" — the rendering
  /// tokenizeSymbols puts in its flat error string and ParseService puts
  /// in its ParseError.
  std::string message() const;
  /// The error as a driver-style ParseError (column = 1-based token
  /// index, matching the locations tokenizeSymbols assigns to tokens).
  ParseError toParseError() const;
};

/// Outcome of tokenizeText: the tokens, or a structured error.
struct TokenizeResult {
  std::vector<Token> Tokens;
  std::optional<TokenizeError> Error;

  bool ok() const { return !Error.has_value(); }
};

/// Tokenizes a whitespace-separated string of symbol names into Tokens
/// for the given grammar (convenience for tests/examples and the parse
/// service; real front ends use their own lexers). Bare literal
/// spellings are accepted ("+" finds "'+'"). A name that is not a
/// terminal of \p G stops the scan and reports a structured
/// TokenizeError (offset + lexeme) instead of a bare failure.
TokenizeResult tokenizeText(const Grammar &G, std::string_view Text);

/// Flat-error wrapper over tokenizeText, kept for existing callers:
/// nullopt on failure with the rendered message in \p Error.
std::optional<std::vector<Token>> tokenizeSymbols(const Grammar &G,
                                                  std::string_view Text,
                                                  std::string *Error = nullptr);

} // namespace lalr

#endif // LALR_PARSER_PARSERDRIVER_H
