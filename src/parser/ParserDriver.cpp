//===- parser/ParserDriver.cpp - Table-driven LR parsing --------------------===//

#include "parser/ParserDriver.h"

using namespace lalr;

std::string TokenizeError::message() const {
  return "unknown terminal '" + Lexeme + "' at offset " +
         std::to_string(Offset) + " (token #" + std::to_string(Index) + ")";
}

ParseError TokenizeError::toParseError() const {
  ParseError E;
  E.Loc = {1, static_cast<uint32_t>(Index + 1)};
  E.Message = message();
  return E;
}

TokenizeResult lalr::tokenizeText(const Grammar &G, std::string_view Text) {
  TokenizeResult Out;
  uint32_t Col = 1;
  size_t I = 0;
  while (I < Text.size()) {
    while (I < Text.size() &&
           (Text[I] == ' ' || Text[I] == '\t' || Text[I] == '\n' ||
            Text[I] == '\r'))
      ++I;
    size_t Start = I;
    while (I < Text.size() && Text[I] != ' ' && Text[I] != '\t' &&
           Text[I] != '\n' && Text[I] != '\r')
      ++I;
    if (I == Start)
      break;
    std::string Word(Text.substr(Start, I - Start));
    SymbolId S = G.findSymbol(Word);
    // Allow bare literal spellings: "+" finds "'+'".
    if (S == InvalidSymbol)
      S = G.findSymbol("'" + Word + "'");
    if (S == InvalidSymbol || G.isNonterminal(S)) {
      TokenizeError E;
      E.Offset = Start;
      E.Index = Out.Tokens.size();
      E.Lexeme = std::move(Word);
      Out.Error = std::move(E);
      return Out;
    }
    Token Tok;
    Tok.Kind = S;
    Tok.Text = std::move(Word);
    Tok.Loc = {1, Col++};
    Out.Tokens.push_back(std::move(Tok));
  }
  return Out;
}

std::optional<std::vector<Token>>
lalr::tokenizeSymbols(const Grammar &G, std::string_view Text,
                      std::string *Error) {
  TokenizeResult R = tokenizeText(G, Text);
  if (!R.ok()) {
    if (Error)
      *Error = R.Error->message();
    return std::nullopt;
  }
  return std::move(R.Tokens);
}
