//===- parser/ParserDriver.cpp - Table-driven LR parsing --------------------===//

#include "parser/ParserDriver.h"

#include <sstream>

using namespace lalr;

std::optional<std::vector<Token>>
lalr::tokenizeSymbols(const Grammar &G, std::string_view Text,
                      std::string *Error) {
  std::vector<Token> Out;
  std::istringstream IS{std::string(Text)};
  std::string Word;
  uint32_t Col = 1;
  while (IS >> Word) {
    SymbolId S = G.findSymbol(Word);
    // Allow bare literal spellings: "+" finds "'+'".
    if (S == InvalidSymbol)
      S = G.findSymbol("'" + Word + "'");
    if (S == InvalidSymbol || G.isNonterminal(S)) {
      if (Error)
        *Error = "unknown terminal '" + Word + "'";
      return std::nullopt;
    }
    Token Tok;
    Tok.Kind = S;
    Tok.Text = Word;
    Tok.Loc = {1, Col++};
    Out.push_back(std::move(Tok));
  }
  return Out;
}
