//===- parser/ParseTree.h - Concrete parse trees ----------------*- C++ -*-===//
///
/// \file
/// Concrete syntax trees produced by the table-driven parser. Leaves carry
/// the token text; interior nodes carry the production that built them, so
/// a tree encodes the full (reversed rightmost) derivation.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PARSER_PARSETREE_H
#define LALR_PARSER_PARSETREE_H

#include "grammar/Grammar.h"

#include <memory>
#include <string>
#include <vector>

namespace lalr {

/// One node of a concrete parse tree.
struct ParseNode {
  SymbolId Symbol = InvalidSymbol;
  /// Production that produced this node; InvalidProduction for leaves.
  ProductionId Prod = InvalidProduction;
  /// Token text (leaves only).
  std::string Text;
  std::vector<std::unique_ptr<ParseNode>> Children;

  bool isLeaf() const { return Prod == InvalidProduction; }

  /// Renders the subtree as an s-expression, e.g.
  /// "(expr (expr (NUM 1)) + (term (NUM 2)))". Stable output used by the
  /// round-trip tests.
  std::string toSExpr(const Grammar &G) const;

  /// Number of nodes in the subtree (this one included).
  size_t size() const;

  /// Concatenates the leaf texts left to right (the parsed terminal
  /// string, for round-trip checks).
  std::string leafText() const;
};

/// Makes a leaf node.
std::unique_ptr<ParseNode> makeLeaf(SymbolId Terminal, std::string Text);

/// Makes an interior node from popped children.
std::unique_ptr<ParseNode>
makeInterior(SymbolId Nt, ProductionId Prod,
             std::vector<std::unique_ptr<ParseNode>> Children);

} // namespace lalr

#endif // LALR_PARSER_PARSETREE_H
