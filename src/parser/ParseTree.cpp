//===- parser/ParseTree.cpp - Concrete parse trees --------------------------===//

#include "parser/ParseTree.h"

#include <sstream>

using namespace lalr;

std::string ParseNode::toSExpr(const Grammar &G) const {
  std::ostringstream OS;
  if (isLeaf()) {
    OS << '(' << G.name(Symbol);
    if (!Text.empty() && Text != G.name(Symbol))
      OS << ' ' << Text;
    OS << ')';
    return OS.str();
  }
  OS << '(' << G.name(Symbol);
  for (const auto &Child : Children)
    OS << ' ' << Child->toSExpr(G);
  OS << ')';
  return OS.str();
}

size_t ParseNode::size() const {
  size_t N = 1;
  for (const auto &Child : Children)
    N += Child->size();
  return N;
}

std::string ParseNode::leafText() const {
  if (isLeaf())
    return Text;
  std::string Out;
  for (const auto &Child : Children) {
    std::string Part = Child->leafText();
    if (!Out.empty() && !Part.empty())
      Out += ' ';
    Out += Part;
  }
  return Out;
}

std::unique_ptr<ParseNode> lalr::makeLeaf(SymbolId Terminal,
                                          std::string Text) {
  auto Node = std::make_unique<ParseNode>();
  Node->Symbol = Terminal;
  Node->Text = std::move(Text);
  return Node;
}

std::unique_ptr<ParseNode>
lalr::makeInterior(SymbolId Nt, ProductionId Prod,
                   std::vector<std::unique_ptr<ParseNode>> Children) {
  auto Node = std::make_unique<ParseNode>();
  Node->Symbol = Nt;
  Node->Prod = Prod;
  Node->Children = std::move(Children);
  return Node;
}
