//===- lr/Lr0Item.h - LR(0) items -------------------------------*- C++ -*-===//
///
/// \file
/// An LR(0) item is a production with a dot position: A -> alpha . beta.
/// Items are value types packed into 64 bits for hashing and ordering;
/// states of the LR(0) automaton are identified by their sorted kernels.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LR_LR0ITEM_H
#define LALR_LR_LR0ITEM_H

#include "grammar/Grammar.h"

#include <cstdint>
#include <string>

namespace lalr {

/// A dotted production A -> alpha . beta.
struct Lr0Item {
  ProductionId Prod = 0;
  uint32_t Dot = 0;

  /// Packs the item into one comparable/hashable word.
  uint64_t packed() const { return (uint64_t(Prod) << 32) | Dot; }

  bool operator==(const Lr0Item &O) const { return packed() == O.packed(); }
  bool operator<(const Lr0Item &O) const { return packed() < O.packed(); }

  /// True if the dot is at the end of the production (a complete item,
  /// i.e. a reduction candidate).
  bool isComplete(const Grammar &G) const {
    return Dot == G.production(Prod).Rhs.size();
  }

  /// Symbol immediately after the dot, or InvalidSymbol for complete items.
  SymbolId nextSymbol(const Grammar &G) const {
    const Production &P = G.production(Prod);
    return Dot < P.Rhs.size() ? P.Rhs[Dot] : InvalidSymbol;
  }

  /// Renders "A -> alpha . beta" for reports.
  std::string toString(const Grammar &G) const;
};

} // namespace lalr

#endif // LALR_LR_LR0ITEM_H
