//===- lr/ParseTable.cpp - LR parse tables and conflicts --------------------===//

#include "lr/ParseTable.h"

#include "lr/Precedence.h"

#include <cassert>
#include <sstream>

using namespace lalr;

std::string Conflict::toString(const Grammar &G) const {
  std::ostringstream OS;
  OS << "state " << State << " on '" << G.name(Terminal) << "': ";
  if (Kind == ShiftReduce)
    OS << "shift/reduce (shift to " << ShiftTarget << " vs reduce by "
       << ReduceProd << ": " << G.productionToString(ReduceProd) << ")";
  else
    OS << "reduce/reduce (" << ReduceProd << " vs " << ReduceProd2 << ")";
  switch (Resolution) {
  case Unresolved:
    break;
  case TookShift:
    OS << " [resolved: shift]";
    break;
  case TookReduce:
    OS << " [resolved: reduce]";
    break;
  case MadeError:
    OS << " [resolved: error (%nonassoc)]";
    break;
  }
  return OS.str();
}

size_t ParseTable::unresolvedShiftReduce() const {
  size_t N = 0;
  for (const Conflict &C : Conflicts)
    if (C.Kind == Conflict::ShiftReduce && C.Resolution == Conflict::Unresolved)
      ++N;
  return N;
}

size_t ParseTable::unresolvedReduceReduce() const {
  size_t N = 0;
  for (const Conflict &C : Conflicts)
    if (C.Kind == Conflict::ReduceReduce &&
        C.Resolution == Conflict::Unresolved)
      ++N;
  return N;
}

size_t ParseTable::countActions(ActionKind K) const {
  size_t N = 0;
  for (const Action &A : Actions)
    if (A.Kind == K)
      ++N;
  return N;
}

void lalr::detail::insertReduceAction(ParseTable &Table, const Grammar &G,
                                      uint32_t State, SymbolId Terminal,
                                      ProductionId Prod) {
  // Reducing the augmentation production on $end is the accept.
  Action New = Prod == 0 ? Action{ActionKind::Accept, 0}
                         : Action{ActionKind::Reduce, Prod};
  Action Cur = Table.action(State, Terminal);
  if (Cur.Kind == ActionKind::Error) {
    Table.setAction(State, Terminal, New);
    return;
  }
  if (Cur.Kind == ActionKind::Shift) {
    Conflict C;
    C.Kind = Conflict::ShiftReduce;
    C.State = State;
    C.Terminal = Terminal;
    C.ReduceProd = Prod;
    C.ShiftTarget = Cur.Value;
    switch (resolveShiftReduce(G, Prod, Terminal)) {
    case PrecDecision::Shift:
      C.Resolution = Conflict::TookShift;
      break;
    case PrecDecision::Reduce:
      C.Resolution = Conflict::TookReduce;
      Table.setAction(State, Terminal, New);
      break;
    case PrecDecision::Error:
      C.Resolution = Conflict::MadeError;
      Table.setAction(State, Terminal, {ActionKind::Error, 0});
      break;
    case PrecDecision::NoPrecedence:
      // yacc default: prefer the shift, report the conflict.
      C.Resolution = Conflict::Unresolved;
      break;
    }
    Table.conflicts().push_back(C);
    return;
  }
  // Reduce or Accept already present.
  ProductionId CurProd = Cur.Kind == ActionKind::Accept ? 0 : Cur.Value;
  if (CurProd == Prod)
    return; // the same reduction arriving twice is no conflict
  Conflict C;
  C.Kind = Conflict::ReduceReduce;
  C.State = State;
  C.Terminal = Terminal;
  C.ReduceProd = std::min(CurProd, Prod);
  C.ReduceProd2 = std::max(CurProd, Prod);
  C.Resolution = Conflict::Unresolved;
  Table.conflicts().push_back(C);
  // yacc default: the earlier production wins.
  if (Prod < CurProd)
    Table.setAction(State, Terminal, New);
}

ParseTable lalr::fillParseTable(const Lr0Automaton &A,
                                const LookaheadFn &Lookaheads,
                                const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  return fillTableGeneric(
      G, A.numStates(),
      [&](uint32_t S, auto Emit) {
        for (auto [Sym, Target] : A.state(S).Transitions)
          Emit(Sym, Target);
      },
      [&](uint32_t S, auto Emit) {
        for (ProductionId Prod : A.state(S).Reductions)
          Emit(Prod, Lookaheads(S, Prod));
      },
      Guard);
}
