//===- lr/CompressedTable.h - Default reductions + sparse rows --*- C++ -*-===//
///
/// \file
/// The classic yacc space optimization, included here as an ablation of
/// the generator pipeline (Table 7): each state stores a sparse list of
/// its non-default actions plus one *default reduction* (its most common
/// reduce action); GOTO columns store exceptions against a per-column
/// default target. On valid inputs the parse is identical to the dense
/// table's; on erroneous inputs the default reductions fire before the
/// error is detected, which is measured by the error-detection-latency
/// experiment (Table 6).
///
/// CompressedTable exposes ParseTable's action()/gotoNt()/numStates()
/// interface, so the templated ParserDriver runs on either.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LR_COMPRESSEDTABLE_H
#define LALR_LR_COMPRESSEDTABLE_H

#include "lr/ParseTable.h"

#include <vector>

namespace lalr {

/// A row-compressed ACTION/GOTO table with default reductions.
class CompressedTable {
public:
  /// Compresses \p Dense. Accept actions and shift actions are always
  /// explicit; the most frequent Reduce of each row becomes its default
  /// (applied to every terminal without an explicit entry). Rows without
  /// reductions default to Error, preserving immediate detection there.
  ///
  /// Error cells that %nonassoc *manufactured* (Conflict::MadeError) are
  /// kept as explicit Error entries: they reject sentences the automaton
  /// could otherwise parse, so letting the default reduction fire there
  /// would eventually shift the forbidden token and accept input the
  /// dense table rejects — changing the language, not just the error
  /// latency (bison keeps such cells explicit for the same reason).
  static CompressedTable compress(const ParseTable &Dense,
                                  const Grammar &G);

  size_t numStates() const { return Rows.size(); }

  /// Same contract as ParseTable::action, with defaults applied.
  Action action(uint32_t State, SymbolId Terminal) const;

  /// Same contract as ParseTable::gotoNt, with column defaults applied.
  uint32_t gotoNt(uint32_t State, SymbolId Nt, const Grammar &G) const;

  /// \name Size accounting (Table 7)
  /// @{
  /// Explicit ACTION entries stored across all rows.
  size_t explicitActionEntries() const;
  /// Explicit GOTO exceptions stored across all rows.
  size_t explicitGotoEntries() const;
  /// Rows whose default is a reduction (not error).
  size_t defaultReductionRows() const;
  /// Rough memory footprint in bytes (entries * entry size + row
  /// headers), comparable against the dense table's
  /// states*(terminals+nonterminals)*4.
  size_t footprintBytes() const;
  /// @}

private:
  struct Row {
    /// Sorted by terminal id.
    std::vector<std::pair<SymbolId, Action>> Explicit;
    Action Default; // Reduce or Error
  };
  std::vector<Row> Rows;
  /// Per state: sorted (nt index, target) exceptions.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> GotoRows;
  /// Per nonterminal index: the default target.
  std::vector<uint32_t> GotoDefault;
};

} // namespace lalr

#endif // LALR_LR_COMPRESSEDTABLE_H
