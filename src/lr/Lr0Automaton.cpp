//===- lr/Lr0Automaton.cpp - Canonical LR(0) collection ---------------------===//

#include "lr/Lr0Automaton.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace lalr;

std::string Lr0Item::toString(const Grammar &G) const {
  const Production &P = G.production(Prod);
  std::ostringstream OS;
  OS << G.name(P.Lhs) << " ->";
  for (size_t I = 0; I <= P.Rhs.size(); ++I) {
    if (I == Dot)
      OS << " .";
    if (I < P.Rhs.size())
      OS << ' ' << G.name(P.Rhs[I]);
  }
  return OS.str();
}

namespace {

/// Computes the set of nonterminals contributing non-kernel items to the
/// closure of \p Kernel: every B with an item X -> alpha . B gamma in the
/// closure. Returned sorted.
std::vector<SymbolId> closureNtsOfKernel(const Grammar &G,
                                         const std::vector<Lr0Item> &Kernel) {
  std::vector<bool> InSet(G.numNonterminals(), false);
  std::vector<SymbolId> Worklist;
  auto add = [&](SymbolId Nt) {
    uint32_t Idx = G.ntIndex(Nt);
    if (!InSet[Idx]) {
      InSet[Idx] = true;
      Worklist.push_back(Nt);
    }
  };
  for (const Lr0Item &Item : Kernel) {
    SymbolId Next = Item.nextSymbol(G);
    if (Next != InvalidSymbol && G.isNonterminal(Next))
      add(Next);
  }
  for (size_t I = 0; I < Worklist.size(); ++I) {
    SymbolId B = Worklist[I];
    for (ProductionId PId : G.productionsOf(B)) {
      const Production &P = G.production(PId);
      if (!P.Rhs.empty() && G.isNonterminal(P.Rhs[0]))
        add(P.Rhs[0]);
    }
  }
  std::vector<SymbolId> Out;
  for (uint32_t Idx = 0; Idx < G.numNonterminals(); ++Idx)
    if (InSet[Idx])
      Out.push_back(G.ntSymbol(Idx));
  return Out;
}

} // namespace

Lr0Automaton Lr0Automaton::build(const Grammar &G, const BuildGuard *Guard) {
  failPoint("lr0-build");
  Lr0Automaton A(G);

  // Deduplicate states by their (sorted) packed kernel.
  std::map<std::vector<uint64_t>, StateId> StateByKernel;

  // Running kernel-item total across all interned states, for MaxItems.
  uint64_t KernelItems = 0;

  auto internState = [&](std::vector<Lr0Item> Kernel,
                         SymbolId Accessing) -> StateId {
    std::sort(Kernel.begin(), Kernel.end());
    Kernel.erase(std::unique(Kernel.begin(), Kernel.end()), Kernel.end());
    std::vector<uint64_t> Key;
    Key.reserve(Kernel.size());
    for (const Lr0Item &Item : Kernel)
      Key.push_back(Item.packed());
    auto [It, Inserted] =
        StateByKernel.try_emplace(std::move(Key), StateId(A.States.size()));
    if (Inserted) {
      Lr0State S;
      S.Kernel = std::move(Kernel);
      S.AccessingSymbol = Accessing;
      KernelItems += S.Kernel.size();
      A.States.push_back(std::move(S));
      if (Guard) {
        Guard->checkLr0States(A.States.size());
        Guard->checkItems(KernelItems);
      }
    }
    return It->second;
  };

  StateId Start =
      internState({Lr0Item{/*Prod=*/0, /*Dot=*/0}}, InvalidSymbol);
  assert(Start == 0 && "start state must be state 0");
  (void)Start;

  // Breadth-first exploration so state numbering is stable and matches
  // the usual textbook presentation.
  for (StateId Cur = 0; Cur < A.States.size(); ++Cur) {
    guardPoll(Guard);
    // Collect the closure item list: kernel items plus (P, 0) for every
    // production P of every closure nonterminal.
    std::vector<Lr0Item> Items = A.States[Cur].Kernel;
    for (SymbolId B : closureNtsOfKernel(G, A.States[Cur].Kernel))
      for (ProductionId PId : G.productionsOf(B))
        Items.push_back(Lr0Item{PId, 0});

    // Group advances by the symbol after the dot; complete items become
    // reductions.
    std::map<SymbolId, std::vector<Lr0Item>> Advances;
    std::vector<ProductionId> Reductions;
    for (const Lr0Item &Item : Items) {
      SymbolId Next = Item.nextSymbol(G);
      if (Next == InvalidSymbol) {
        Reductions.push_back(Item.Prod);
        continue;
      }
      Advances[Next].push_back(Lr0Item{Item.Prod, Item.Dot + 1});
    }
    std::sort(Reductions.begin(), Reductions.end());
    Reductions.erase(std::unique(Reductions.begin(), Reductions.end()),
                     Reductions.end());

    std::vector<std::pair<SymbolId, StateId>> Transitions;
    Transitions.reserve(Advances.size());
    for (auto &[Sym, Kernel] : Advances) {
      StateId Target = internState(std::move(Kernel), Sym);
      Transitions.emplace_back(Sym, Target);
    }
    // Note: interning may reallocate States, so write fields afterwards.
    A.States[Cur].Transitions = std::move(Transitions);
    A.States[Cur].Reductions = std::move(Reductions);
  }

  A.AcceptState = A.gotoState(0, G.startSymbol());
  assert(A.AcceptState != InvalidState &&
         "the start symbol transition always exists");
  return A;
}

StateId Lr0Automaton::gotoState(StateId S, SymbolId X) const {
  const auto &T = States[S].Transitions;
  auto It = std::lower_bound(
      T.begin(), T.end(), X,
      [](const std::pair<SymbolId, StateId> &E, SymbolId X) {
        return E.first < X;
      });
  return (It != T.end() && It->first == X) ? It->second : InvalidState;
}

StateId Lr0Automaton::walk(StateId From,
                           std::span<const SymbolId> Word) const {
  StateId Cur = From;
  for (SymbolId X : Word) {
    Cur = gotoState(Cur, X);
    if (Cur == InvalidState)
      return InvalidState;
  }
  return Cur;
}

std::vector<Lr0Item> Lr0Automaton::closureItems(StateId S) const {
  std::vector<Lr0Item> Items = States[S].Kernel;
  for (SymbolId B : closureNtsOfKernel(*G, States[S].Kernel))
    for (ProductionId PId : G->productionsOf(B))
      Items.push_back(Lr0Item{PId, 0});
  std::sort(Items.begin(), Items.end());
  Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  return Items;
}

std::vector<SymbolId> Lr0Automaton::closureNonterminals(StateId S) const {
  return closureNtsOfKernel(*G, States[S].Kernel);
}

size_t Lr0Automaton::numTransitions() const {
  size_t N = 0;
  for (const Lr0State &S : States)
    N += S.Transitions.size();
  return N;
}
