//===- lr/Lr0Automaton.h - Canonical LR(0) collection -----------*- C++ -*-===//
///
/// \file
/// The LR(0) automaton (canonical collection of LR(0) item sets) over a
/// frozen Grammar. States are stored kernel-only — non-kernel items are a
/// pure function of the kernel and are recomputed on demand for reports —
/// which keeps state identity checks and memory linear in kernel size.
/// This is the substrate the DeRemer–Pennello relations are defined on.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LR_LR0AUTOMATON_H
#define LALR_LR_LR0AUTOMATON_H

#include "grammar/Grammar.h"
#include "lr/Lr0Item.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <vector>

namespace lalr {

/// Identifier of a state in an Lr0Automaton (dense, 0 = start state).
using StateId = uint32_t;

/// Sentinel for "no state".
constexpr StateId InvalidState = UINT32_MAX;

/// One state: its kernel, its outgoing transitions, and the reductions
/// available in it (complete items of its closure).
struct Lr0State {
  /// Kernel items, sorted by packed value. State 0's kernel is the start
  /// item {$accept -> . start}; every other kernel contains only items
  /// with the dot past position 0.
  std::vector<Lr0Item> Kernel;

  /// Outgoing transitions, sorted by symbol id for binary search.
  std::vector<std::pair<SymbolId, StateId>> Transitions;

  /// Productions reducible in this state (complete closure items),
  /// sorted by production id.
  std::vector<ProductionId> Reductions;

  /// The symbol every in-edge of this state is labelled with (states of
  /// an LR(0) automaton have a unique accessing symbol); InvalidSymbol
  /// for the start state.
  SymbolId AccessingSymbol = InvalidSymbol;
};

/// The canonical collection of LR(0) item sets.
class Lr0Automaton {
public:
  /// Builds the automaton for \p G. Deterministic: state ids depend only
  /// on the grammar (breadth-first discovery order from state 0).
  /// \p Guard, when non-null, is polled once per explored state and
  /// enforces MaxLr0States/MaxItems as states are interned (BuildAbort).
  static Lr0Automaton build(const Grammar &G,
                            const BuildGuard *Guard = nullptr);

  const Grammar &grammar() const { return *G; }
  size_t numStates() const { return States.size(); }
  const Lr0State &state(StateId S) const { return States[S]; }
  StateId startState() const { return 0; }

  /// GOTO(S, X): target of the X-transition from S, or InvalidState.
  StateId gotoState(StateId S, SymbolId X) const;

  /// Walks GOTO along \p Word starting at \p From; returns InvalidState if
  /// any step is undefined. Used to build the lookback/includes relations.
  StateId walk(StateId From, std::span<const SymbolId> Word) const;

  /// Full item set (kernel + non-kernel closure items) of \p S, sorted.
  /// Recomputed on demand; used by reports and tests only.
  std::vector<Lr0Item> closureItems(StateId S) const;

  /// Nonterminals whose productions appear as non-kernel items in the
  /// closure of \p S (i.e. nonterminals B with an item X -> alpha . B
  /// gamma in the closure). Sorted by symbol id.
  std::vector<SymbolId> closureNonterminals(StateId S) const;

  /// The state reducing production 0 ($accept -> start .), i.e.
  /// GOTO(0, start). Reading $end there is the accept action.
  StateId acceptState() const { return AcceptState; }

  /// Total number of transitions (edges) in the automaton.
  size_t numTransitions() const;

private:
  explicit Lr0Automaton(const Grammar &G) : G(&G) {}

  const Grammar *G;
  std::vector<Lr0State> States;
  StateId AcceptState = InvalidState;
};

} // namespace lalr

#endif // LALR_LR_LR0AUTOMATON_H
