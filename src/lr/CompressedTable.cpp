//===- lr/CompressedTable.cpp - Default reductions + sparse rows -------------===//

#include "lr/CompressedTable.h"

#include <algorithm>
#include <map>
#include <set>

using namespace lalr;

CompressedTable CompressedTable::compress(const ParseTable &Dense,
                                          const Grammar &G) {
  CompressedTable Out;
  const size_t NumStates = Dense.numStates();
  const size_t NumT = G.numTerminals();
  const size_t NumNt = G.numNonterminals();

  // %nonassoc-manufactured error cells must stay explicit (see header).
  std::set<std::pair<uint32_t, SymbolId>> ForcedErrors;
  for (const Conflict &C : Dense.conflicts())
    if (C.Resolution == Conflict::MadeError)
      ForcedErrors.emplace(C.State, C.Terminal);

  Out.Rows.resize(NumStates);
  for (uint32_t S = 0; S < NumStates; ++S) {
    // Count reduce frequencies to pick the row default.
    std::map<uint32_t, size_t> ReduceFreq;
    for (SymbolId T = 0; T < NumT; ++T) {
      Action A = Dense.action(S, T);
      if (A.Kind == ActionKind::Reduce)
        ++ReduceFreq[A.Value];
    }
    Action Default{ActionKind::Error, 0};
    size_t BestFreq = 0;
    for (auto [Prod, Freq] : ReduceFreq)
      if (Freq > BestFreq) {
        BestFreq = Freq;
        Default = {ActionKind::Reduce, Prod};
      }
    Row &R = Out.Rows[S];
    R.Default = Default;
    for (SymbolId T = 0; T < NumT; ++T) {
      Action A = Dense.action(S, T);
      if (A == Default)
        continue;
      if (A.Kind == ActionKind::Error && Default.Kind == ActionKind::Error)
        continue;
      // Error cells under a reduce default are *not* stored: the default
      // reduction fires there, trading detection latency for space (the
      // yacc behaviour) — except %nonassoc-forced errors, which carry
      // language, not latency. Everything else is explicit.
      if (A.Kind == ActionKind::Error && !ForcedErrors.count({S, T}))
        continue;
      R.Explicit.emplace_back(T, A);
    }
  }

  // GOTO columns: default = most frequent target of the column.
  Out.GotoDefault.assign(NumNt, InvalidState);
  Out.GotoRows.resize(NumStates);
  for (uint32_t NtIdx = 0; NtIdx < NumNt; ++NtIdx) {
    std::map<uint32_t, size_t> Freq;
    for (uint32_t S = 0; S < NumStates; ++S) {
      uint32_t Target = Dense.gotoNt(S, G.ntSymbol(NtIdx), G);
      if (Target != InvalidState)
        ++Freq[Target];
    }
    size_t BestFreq = 0;
    for (auto [Target, F] : Freq)
      if (F > BestFreq) {
        BestFreq = F;
        Out.GotoDefault[NtIdx] = Target;
      }
  }
  for (uint32_t S = 0; S < NumStates; ++S)
    for (uint32_t NtIdx = 0; NtIdx < NumNt; ++NtIdx) {
      uint32_t Target = Dense.gotoNt(S, G.ntSymbol(NtIdx), G);
      if (Target != InvalidState && Target != Out.GotoDefault[NtIdx])
        Out.GotoRows[S].emplace_back(NtIdx, Target);
    }
  return Out;
}

Action CompressedTable::action(uint32_t State, SymbolId Terminal) const {
  const Row &R = Rows[State];
  auto It = std::lower_bound(
      R.Explicit.begin(), R.Explicit.end(), Terminal,
      [](const std::pair<SymbolId, Action> &E, SymbolId T) {
        return E.first < T;
      });
  if (It != R.Explicit.end() && It->first == Terminal)
    return It->second;
  return R.Default;
}

uint32_t CompressedTable::gotoNt(uint32_t State, SymbolId Nt,
                                 const Grammar &G) const {
  uint32_t NtIdx = G.ntIndex(Nt);
  const auto &Row = GotoRows[State];
  auto It = std::lower_bound(
      Row.begin(), Row.end(), NtIdx,
      [](const std::pair<uint32_t, uint32_t> &E, uint32_t I) {
        return E.first < I;
      });
  if (It != Row.end() && It->first == NtIdx)
    return It->second;
  return GotoDefault[NtIdx];
}

size_t CompressedTable::explicitActionEntries() const {
  size_t N = 0;
  for (const Row &R : Rows)
    N += R.Explicit.size();
  return N;
}

size_t CompressedTable::explicitGotoEntries() const {
  size_t N = 0;
  for (const auto &Row : GotoRows)
    N += Row.size();
  return N;
}

size_t CompressedTable::defaultReductionRows() const {
  size_t N = 0;
  for (const Row &R : Rows)
    if (R.Default.Kind == ActionKind::Reduce)
      ++N;
  return N;
}

size_t CompressedTable::footprintBytes() const {
  // Entries are (symbol, action) ~ 8 bytes; each row has an 8-byte
  // header (default action + count); goto exceptions 8 bytes each.
  size_t Bytes = 0;
  for (const Row &R : Rows)
    Bytes += 8 + R.Explicit.size() * 8;
  for (const auto &Row : GotoRows)
    Bytes += Row.size() * 8;
  Bytes += GotoDefault.size() * 4;
  return Bytes;
}
