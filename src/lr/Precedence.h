//===- lr/Precedence.h - Yacc-style conflict resolution ---------*- C++ -*-===//
///
/// \file
/// The yacc precedence/associativity rules for deciding shift-reduce
/// conflicts, factored out so every table builder (and the tests) resolve
/// identically.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LR_PRECEDENCE_H
#define LALR_LR_PRECEDENCE_H

#include "grammar/Grammar.h"

namespace lalr {

/// Outcome of consulting precedence on a shift(T)/reduce(P) conflict.
enum class PrecDecision : uint8_t {
  NoPrecedence, ///< one side lacks a declared level: genuine conflict
  Shift,        ///< shift wins (token binds tighter, or equal level %right)
  Reduce,       ///< reduce wins (rule binds tighter, or equal level %left)
  Error,        ///< equal level %nonassoc: the cell becomes a syntax error
};

/// Applies yacc's rules: compare the production's precedence symbol level
/// with the shifted terminal's level; on a tie use the terminal's
/// associativity.
PrecDecision resolveShiftReduce(const Grammar &G, ProductionId Reduce,
                                SymbolId ShiftTerminal);

} // namespace lalr

#endif // LALR_LR_PRECEDENCE_H
