//===- lr/Precedence.cpp - Yacc-style conflict resolution -------------------===//

#include "lr/Precedence.h"

using namespace lalr;

PrecDecision lalr::resolveShiftReduce(const Grammar &G, ProductionId Reduce,
                                      SymbolId ShiftTerminal) {
  const Production &P = G.production(Reduce);
  if (P.PrecSymbol == InvalidSymbol)
    return PrecDecision::NoPrecedence;
  const Precedence &RulePrec = G.precedence(P.PrecSymbol);
  const Precedence &TokPrec = G.precedence(ShiftTerminal);
  if (!RulePrec.isDeclared() || !TokPrec.isDeclared())
    return PrecDecision::NoPrecedence;
  if (RulePrec.Level > TokPrec.Level)
    return PrecDecision::Reduce;
  if (RulePrec.Level < TokPrec.Level)
    return PrecDecision::Shift;
  switch (TokPrec.Associativity) {
  case Assoc::Left:
    return PrecDecision::Reduce;
  case Assoc::Right:
    return PrecDecision::Shift;
  case Assoc::NonAssoc:
    return PrecDecision::Error;
  case Assoc::None:
    break;
  }
  return PrecDecision::NoPrecedence;
}
