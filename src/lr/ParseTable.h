//===- lr/ParseTable.h - LR parse tables and conflicts ----------*- C++ -*-===//
///
/// \file
/// Dense ACTION/GOTO tables plus the conflict records produced while
/// filling them. A ParseTable is method-agnostic: the LALR (DeRemer–
/// Pennello), SLR, NQLALR and canonical-LR(1) builders all produce one, so
/// the precision experiments (Table 4) and the runtime parser work over a
/// single representation.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LR_PARSETABLE_H
#define LALR_LR_PARSETABLE_H

#include "grammar/Grammar.h"
#include "lr/Lr0Automaton.h"
#include "support/BitSet.h"
#include "support/Cancellation.h"
#include "support/FailPoint.h"

#include <functional>
#include <string>
#include <vector>

namespace lalr {

/// What the parser does on (state, terminal).
enum class ActionKind : uint8_t {
  Error,  ///< no entry: syntax error
  Shift,  ///< push terminal, go to Value
  Reduce, ///< reduce by production Value
  Accept, ///< input accepted
};

/// One ACTION entry.
struct Action {
  ActionKind Kind = ActionKind::Error;
  uint32_t Value = 0; ///< Shift: target state; Reduce: production id

  bool operator==(const Action &O) const {
    return Kind == O.Kind && Value == O.Value;
  }
};

/// A conflict discovered while filling a table cell. If precedence
/// declarations decide it, Resolution says how and the conflict is not
/// counted as unresolved.
struct Conflict {
  enum KindT : uint8_t { ShiftReduce, ReduceReduce } Kind = ShiftReduce;
  enum ResolutionT : uint8_t {
    Unresolved,     ///< kept default action (shift / lower production)
    TookShift,      ///< precedence chose the shift
    TookReduce,     ///< precedence chose the reduce
    MadeError,      ///< %nonassoc turned the cell into an error
  } Resolution = Unresolved;
  uint32_t State = 0;
  SymbolId Terminal = InvalidSymbol;
  ProductionId ReduceProd = InvalidProduction;  ///< the (first) reduction
  ProductionId ReduceProd2 = InvalidProduction; ///< RR: the second one
  uint32_t ShiftTarget = 0;                     ///< SR: the shift target

  /// Human-readable one-line description.
  std::string toString(const Grammar &G) const;
};

/// Dense ACTION/GOTO tables for some LR automaton (LR(0)-based methods
/// share the LR(0) state space; canonical LR(1) has its own, larger one).
class ParseTable {
public:
  ParseTable(size_t NumStates, const Grammar &G)
      : NumStates(NumStates), NumTerminals(G.numTerminals()),
        NumNonterminals(G.numNonterminals()),
        Actions(NumStates * G.numTerminals()),
        Gotos(NumStates * G.numNonterminals(), InvalidState) {}

  size_t numStates() const { return NumStates; }

  Action action(uint32_t State, SymbolId Terminal) const {
    return Actions[State * NumTerminals + Terminal];
  }
  void setAction(uint32_t State, SymbolId Terminal, Action A) {
    Actions[State * NumTerminals + Terminal] = A;
  }

  uint32_t gotoNt(uint32_t State, SymbolId Nt, const Grammar &G) const {
    return Gotos[State * NumNonterminals + G.ntIndex(Nt)];
  }
  void setGotoNt(uint32_t State, uint32_t NtIdx, uint32_t Target) {
    Gotos[State * NumNonterminals + NtIdx] = Target;
  }

  const std::vector<Conflict> &conflicts() const { return Conflicts; }
  std::vector<Conflict> &conflicts() { return Conflicts; }

  /// Number of conflicts precedence did not resolve, by kind. These are
  /// the numbers yacc prints ("N shift/reduce, M reduce/reduce").
  size_t unresolvedShiftReduce() const;
  size_t unresolvedReduceReduce() const;
  bool isAdequate() const {
    return unresolvedShiftReduce() == 0 && unresolvedReduceReduce() == 0;
  }

  /// Table statistics for the benchmark reports.
  size_t countActions(ActionKind K) const;

private:
  size_t NumStates;
  size_t NumTerminals;
  size_t NumNonterminals;
  std::vector<Action> Actions;
  std::vector<uint32_t> Gotos;
  std::vector<Conflict> Conflicts;
};

/// Produces per-(state, production) look-ahead terminal sets; the glue
/// between a look-ahead method and fillParseTable. Returns a SetView so a
/// method can hand out slab rows (DP LALR) or plain BitSets (SLR, NQLALR,
/// YACC propagation — BitSet converts implicitly); the view must stay
/// valid for the duration of the fill. Implementations: DP LALR, SLR
/// (FOLLOW), NQLALR, YACC propagation.
using LookaheadFn = std::function<SetView(StateId State, ProductionId Prod)>;

/// Fills a ParseTable for the LR(0) automaton \p A: shifts/gotos from the
/// transitions, reduces from \p Lookaheads, accept for production 0 on
/// $end. Conflicts are resolved with the grammar's precedence declarations
/// (yacc rules) and recorded either way.
ParseTable fillParseTable(const Lr0Automaton &A, const LookaheadFn &Lookaheads,
                          const BuildGuard *Guard = nullptr);

namespace detail {

/// Inserts the reduce action (or accept, for production 0) for
/// (State, Terminal) into \p Table, applying yacc conflict resolution
/// against whatever occupies the cell. Shared by every table builder.
void insertReduceAction(ParseTable &Table, const Grammar &G, uint32_t State,
                        SymbolId Terminal, ProductionId Prod);

} // namespace detail

/// Generic table filler shared by the LR(0)-state-space builders and the
/// canonical LR(1) builder. \p ForEachTransition(State, Emit) must call
/// Emit(Symbol, Target) for every transition of State; \p ForEachReduction
/// (State, Emit) must call Emit(Prod, LaSet) for every reduction of State.
template <typename TransCbT, typename RedCbT>
ParseTable fillTableGeneric(const Grammar &G, size_t NumStates,
                            TransCbT ForEachTransition,
                            RedCbT ForEachReduction,
                            const BuildGuard *Guard = nullptr) {
  failPoint("table-fill");
  ParseTable Table(NumStates, G);
  for (uint32_t S = 0; S < NumStates; ++S) {
    guardPollStrided(Guard, S);
    ForEachTransition(S, [&](SymbolId Sym, uint32_t Target) {
      if (G.isTerminal(Sym))
        Table.setAction(S, Sym, {ActionKind::Shift, Target});
      else
        Table.setGotoNt(S, G.ntIndex(Sym), Target);
    });
  }
  for (uint32_t S = 0; S < NumStates; ++S) {
    guardPollStrided(Guard, S);
    ForEachReduction(S, [&](ProductionId Prod, SetView LA) {
      for (size_t T : LA)
        detail::insertReduceAction(Table, G, S, static_cast<SymbolId>(T),
                                   Prod);
    });
  }
  return Table;
}

} // namespace lalr

#endif // LALR_LR_PARSETABLE_H
