//===- grammar/Lint.h - Grammar hygiene warnings ----------------*- C++ -*-===//
///
/// \file
/// A lint pass over frozen grammars, reporting the hygiene problems a
/// generator should warn about before table construction: unused
/// terminals, unreachable/unproductive nonterminals, duplicate
/// productions, derivation cycles (A =>+ A) and null-only nonterminals.
/// Findings are warnings, not errors — every finding names the symbols
/// involved so the report is directly actionable.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_LINT_H
#define LALR_GRAMMAR_LINT_H

#include "grammar/Grammar.h"

#include <string>
#include <vector>

namespace lalr {

/// One lint finding.
struct LintFinding {
  enum KindT : uint8_t {
    UnusedTerminal,          ///< declared but never used in a production
    UnreachableNonterminal,  ///< not derivable from the start symbol
    UnproductiveNonterminal, ///< derives no terminal string
    DuplicateProduction,     ///< textually identical production repeated
    DerivationCycle,         ///< A =>+ A (the grammar is then ambiguous
                             ///< or infinitely ambiguous)
    NullOnlyNonterminal,     ///< derives only the empty string
  } Kind;
  /// Principal symbol (or the production's Lhs for duplicates).
  SymbolId Symbol = InvalidSymbol;
  /// For DuplicateProduction: the two production ids.
  ProductionId Prod1 = InvalidProduction;
  ProductionId Prod2 = InvalidProduction;

  std::string toString(const Grammar &G) const;
};

/// Runs all checks; findings are ordered by kind then symbol id, so the
/// output is deterministic.
std::vector<LintFinding> lintGrammar(const Grammar &G);

} // namespace lalr

#endif // LALR_GRAMMAR_LINT_H
