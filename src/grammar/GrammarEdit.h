//===- grammar/GrammarEdit.h - Layered hashes and grammar edits -*- C++ -*-===//
///
/// \file
/// The grammar-side half of selective incremental rebuild. A frozen
/// Grammar never changes, but interactive traffic edits grammars all the
/// time; what matters for the build pipeline is *which layer* an edit
/// touched:
///
///   * the symbol layer (token declarations, symbol names, the start
///     symbol) — feeds everything;
///   * the production layer (per-production Lhs/Rhs structure) — feeds
///     the LR(0) automaton and the DeRemer-Pennello relations;
///   * the conflict layer (precedence levels/associativity, per-production
///     %prec, %expect) — feeds only conflict resolution in table fill.
///
/// computeGrammarLayerHashes() splits the flat source hash into one FNV-1a
/// hash per layer plus a per-production hash vector, so that
/// computeGrammarDelta() can classify an old/new grammar pair as
/// Identical, ConflictLocal (keep every DP artifact, re-run table fill),
/// ProductionLocal (seed a dirty frontier through reads/includes), or
/// Structural (full rebuild). GrammarEdit/applyGrammarEdit implement the
/// small-edit dialect the service manifest exposes (`edit <grammar>
/// <patch>`), producing the edited frozen Grammar that the delta planner
/// then classifies.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMAREDIT_H
#define LALR_GRAMMAR_GRAMMAREDIT_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lalr {

/// Component hashes of a frozen grammar, one per construction layer.
struct GrammarLayerHashes {
  /// Token & symbol declarations: terminal/nonterminal counts, every
  /// symbol name in id order, and the start symbol.
  uint64_t SymbolsHash = 0;
  /// All per-production structure combined (order-sensitive).
  uint64_t ProductionSetHash = 0;
  /// Conflict-policy metadata: per-terminal precedence records,
  /// per-production %prec symbols, and the %expect declaration.
  uint64_t ConflictHash = 0;
  /// Per-production structure hash (Lhs + Rhs), by production id.
  std::vector<uint64_t> ProductionHashes;

  bool operator==(const GrammarLayerHashes &) const = default;
};

GrammarLayerHashes computeGrammarLayerHashes(const Grammar &G);

/// How invasive an old -> new grammar change is, from least to most.
enum class GrammarEditClass : uint8_t {
  /// No semantic difference; every artifact stays valid.
  Identical,
  /// Only the conflict layer changed: the LR(0) automaton, relations,
  /// Read/Follow/LA sets and even the canonical LR(1) automaton all stay
  /// valid — only conflict resolution and table emission re-run.
  ConflictLocal,
  /// A bounded number of productions changed Rhs (or were appended) with
  /// the symbol space intact: the automaton is rebuilt but the DP solve
  /// is patched from a dirty frontier at the affected transitions.
  ProductionLocal,
  /// Anything else: full rebuild.
  Structural,
};

const char *grammarEditClassName(GrammarEditClass C);

/// Classification of one old -> new grammar pair plus the data the patch
/// planner needs.
struct GrammarDelta {
  GrammarEditClass Class = GrammarEditClass::Structural;
  /// Production ids (new grammar) whose structure hash changed or which
  /// were appended. Only populated for ProductionLocal.
  std::vector<ProductionId> ChangedProductions;
  /// Distinct left-hand sides of the changed productions — the dirty
  /// frontier seeds. Only populated for ProductionLocal.
  std::vector<SymbolId> DirtyNts;
  GrammarLayerHashes OldHashes;
  GrammarLayerHashes NewHashes;
};

/// Edits touching more productions than this fall back to Structural;
/// beyond a handful of dirty frontiers the patch stops paying for itself.
inline constexpr size_t MaxProductionLocalEdits = 4;

/// Classifies the change from \p Old to \p New by comparing layer hashes.
GrammarDelta computeGrammarDelta(const Grammar &Old, const Grammar &New);
GrammarDelta computeGrammarDelta(const GrammarLayerHashes &Old,
                                 const GrammarLayerHashes &New);

/// One small edit in the manifest dialect. Symbols are referenced by
/// spelling (resolved against the grammar being edited), productions by
/// frozen id (production 0 — the augmentation — is never editable).
struct GrammarEdit {
  enum class Kind : uint8_t {
    SetPrecedence,     ///< prec <token> <left|right|nonassoc|none> <level>
    SetProductionPrec, ///< prodprec <prod-id> <token | '-'>
    SetRhs,            ///< rhs <prod-id> [sym...]
    AddProduction,     ///< add-prod <lhs> [sym...]
    RemoveProduction,  ///< rm-prod <prod-id>
    SetExpect,         ///< expect <n>
  };

  Kind K = Kind::SetPrecedence;
  std::string Symbol;            ///< token (prec) or lhs (add-prod)
  Assoc Associativity = Assoc::Left; ///< for SetPrecedence
  uint16_t Level = 0;            ///< for SetPrecedence; 0 removes the decl
  ProductionId Prod = InvalidProduction;
  std::vector<std::string> Rhs;  ///< for SetRhs / AddProduction
  std::string PrecToken;         ///< for SetProductionPrec; empty = infer
  int Expect = -1;               ///< for SetExpect
};

/// Parses the whitespace-tokenized tail of a manifest `edit` line (the
/// part after the grammar name). On failure fills \p Error and returns
/// std::nullopt.
std::optional<GrammarEdit> parseGrammarEdit(std::span<const std::string> Toks,
                                            std::string &Error);

/// Applies \p E to a copy of \p G, returning the edited frozen grammar.
/// Symbol ids and (except for RemoveProduction) production ids are
/// preserved verbatim, so computeGrammarDelta over the pair sees exactly
/// the layer the edit touched. Validation failures (unknown symbol,
/// out-of-range production, removal that leaves a nonterminal — possibly
/// the start symbol — without productions) report into \p Diags and
/// return std::nullopt.
std::optional<Grammar> applyGrammarEdit(const Grammar &G, const GrammarEdit &E,
                                        DiagnosticEngine &Diags);

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMAREDIT_H
