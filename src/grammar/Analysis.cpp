//===- grammar/Analysis.cpp - Nullable / FIRST / FOLLOW --------------------===//

#include "grammar/Analysis.h"

#include <cassert>

using namespace lalr;

GrammarAnalysis::GrammarAnalysis(const Grammar &G) : G(G) {
  computeNullable();
  computeFirst();
  computeFollow();
}

void GrammarAnalysis::computeNullable() {
  NullableNt.assign(G.numNonterminals(), false);
  // Standard worklist-free fixpoint: grammars are small enough that the
  // quadratic sweep is dominated by everything else in the pipeline.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      uint32_t NtIdx = G.ntIndex(P.Lhs);
      if (NullableNt[NtIdx])
        continue;
      bool AllNullable = true;
      for (SymbolId S : P.Rhs) {
        if (G.isTerminal(S) || !NullableNt[G.ntIndex(S)]) {
          AllNullable = false;
          break;
        }
      }
      if (AllNullable) {
        NullableNt[NtIdx] = true;
        Changed = true;
      }
    }
  }
}

bool GrammarAnalysis::isNullableSeq(std::span<const SymbolId> Seq) const {
  for (SymbolId S : Seq)
    if (!isNullable(S))
      return false;
  return true;
}

void GrammarAnalysis::computeFirst() {
  const size_t NumT = G.numTerminals();
  FirstSets.assign(G.numSymbols(), BitSet(NumT));
  for (SymbolId T = 0; T < NumT; ++T)
    FirstSets[T].set(T);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      BitSet &LhsFirst = FirstSets[P.Lhs];
      for (SymbolId S : P.Rhs) {
        Changed |= LhsFirst.unionWith(FirstSets[S]);
        if (!isNullable(S))
          break;
      }
    }
  }
}

BitSet GrammarAnalysis::firstOfSeq(std::span<const SymbolId> Seq,
                                   size_t From) const {
  BitSet Out(G.numTerminals());
  addFirstOfSeq(Out, Seq, From);
  return Out;
}

bool GrammarAnalysis::addFirstOfSeq(BitSet &Out,
                                    std::span<const SymbolId> Seq,
                                    size_t From) const {
  // Out may live in a universe with extra slots past the terminals
  // (e.g. the YACC baseline's dummy propagation symbol), hence the
  // subset union.
  for (size_t I = From, E = Seq.size(); I != E; ++I) {
    Out.unionWithSubset(FirstSets[Seq[I]]);
    if (!isNullable(Seq[I]))
      return false;
  }
  return true;
}

void GrammarAnalysis::computeFollow() {
  const size_t NumT = G.numTerminals();
  FollowSets.assign(G.numNonterminals(), BitSet(NumT));
  // $accept is followed by end of input; through the augmentation
  // production this seeds FOLLOW(start) as well.
  FollowSets[G.ntIndex(G.acceptSymbol())].set(G.eofSymbol());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      const BitSet &LhsFollow = FollowSets[G.ntIndex(P.Lhs)];
      for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
        SymbolId S = P.Rhs[I];
        if (G.isTerminal(S))
          continue;
        BitSet &F = FollowSets[G.ntIndex(S)];
        bool SuffixNullable = true;
        for (size_t J = I + 1; J != E; ++J) {
          Changed |= F.unionWith(FirstSets[P.Rhs[J]]);
          if (!isNullable(P.Rhs[J])) {
            SuffixNullable = false;
            break;
          }
        }
        if (SuffixNullable)
          Changed |= F.unionWith(LhsFollow);
      }
    }
  }
}

std::vector<bool> lalr::computeProductive(const Grammar &G) {
  std::vector<bool> Productive(G.numNonterminals(), false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      uint32_t NtIdx = G.ntIndex(P.Lhs);
      if (Productive[NtIdx])
        continue;
      bool All = true;
      for (SymbolId S : P.Rhs)
        if (G.isNonterminal(S) && !Productive[G.ntIndex(S)]) {
          All = false;
          break;
        }
      if (All) {
        Productive[NtIdx] = true;
        Changed = true;
      }
    }
  }
  return Productive;
}

std::vector<bool> lalr::computeReachable(const Grammar &G) {
  std::vector<bool> Reachable(G.numSymbols(), false);
  std::vector<SymbolId> Worklist;
  Reachable[G.acceptSymbol()] = true;
  Worklist.push_back(G.acceptSymbol());
  while (!Worklist.empty()) {
    SymbolId Nt = Worklist.back();
    Worklist.pop_back();
    for (ProductionId PId : G.productionsOf(Nt))
      for (SymbolId S : G.production(PId).Rhs)
        if (!Reachable[S]) {
          Reachable[S] = true;
          if (G.isNonterminal(S))
            Worklist.push_back(S);
        }
  }
  return Reachable;
}

namespace {

/// Builds the "left corner" graph: edge A -> B when A -> alpha B beta with
/// alpha nullable (LeftOnly), or when B is surrounded by nullable strings
/// on both sides (unit graph for cycle detection).
std::vector<std::vector<uint32_t>> buildNtGraph(const Grammar &G,
                                                bool RequireRightNullable) {
  GrammarAnalysis A(G);
  std::vector<std::vector<uint32_t>> Adj(G.numNonterminals());
  for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
      SymbolId S = P.Rhs[I];
      if (G.isTerminal(S))
        break; // a terminal ends the nullable prefix
      bool PrefixNullable = true;
      for (size_t J = 0; J < I; ++J)
        if (!A.isNullable(P.Rhs[J])) {
          PrefixNullable = false;
          break;
        }
      if (!PrefixNullable)
        break;
      bool SuffixOk = !RequireRightNullable ||
                      A.isNullableSeq(std::span(P.Rhs).subspan(I + 1));
      if (SuffixOk)
        Adj[G.ntIndex(P.Lhs)].push_back(G.ntIndex(S));
      if (!A.isNullable(S))
        break; // symbols past a non-nullable one are not in the left corner
    }
  }
  return Adj;
}

} // namespace

std::vector<bool> lalr::computeLeftRecursive(const Grammar &G) {
  std::vector<std::vector<uint32_t>> Adj =
      buildNtGraph(G, /*RequireRightNullable=*/false);
  // A is left-recursive iff A reaches A through the left-corner graph.
  // Grammars are small; a per-node DFS is fine and keeps this independent
  // of the SCC helper's ordering guarantees.
  const size_t N = Adj.size();
  std::vector<bool> Result(N, false);
  std::vector<uint8_t> Mark(N);
  std::vector<uint32_t> Stack;
  for (uint32_t Root = 0; Root < N; ++Root) {
    std::fill(Mark.begin(), Mark.end(), 0);
    Stack.assign(Adj[Root].begin(), Adj[Root].end());
    while (!Stack.empty()) {
      uint32_t U = Stack.back();
      Stack.pop_back();
      if (U == Root) {
        Result[Root] = true;
        break;
      }
      if (Mark[U])
        continue;
      Mark[U] = 1;
      for (uint32_t V : Adj[U])
        Stack.push_back(V);
    }
  }
  return Result;
}

bool lalr::hasCycle(const Grammar &G) {
  std::vector<std::vector<uint32_t>> Adj =
      buildNtGraph(G, /*RequireRightNullable=*/true);
  const size_t N = Adj.size();
  std::vector<uint8_t> Mark(N);
  std::vector<uint32_t> Stack;
  for (uint32_t Root = 0; Root < N; ++Root) {
    std::fill(Mark.begin(), Mark.end(), 0);
    Stack.assign(Adj[Root].begin(), Adj[Root].end());
    bool Found = false;
    while (!Stack.empty() && !Found) {
      uint32_t U = Stack.back();
      Stack.pop_back();
      if (U == Root) {
        Found = true;
        break;
      }
      if (Mark[U])
        continue;
      Mark[U] = 1;
      for (uint32_t V : Adj[U])
        Stack.push_back(V);
    }
    if (Found)
      return true;
  }
  return false;
}
