//===- grammar/GrammarBuilder.h - Programmatic grammar construction -------===//
///
/// \file
/// Mutable builder producing frozen Grammar objects. This is the public
/// programmatic API (the quickstart example uses it directly); the .y-dialect
/// parser is implemented on top of it. The builder accepts symbols and
/// productions in any order, then build() validates the grammar, lays out
/// symbol ids canonically, and augments with $accept -> start.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMARBUILDER_H
#define LALR_GRAMMAR_GRAMMARBUILDER_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lalr {

/// Incrementally assembles a grammar, then freezes it into a Grammar.
///
/// Symbol handles returned by terminal()/nonterminal() are builder-local.
/// Terminal handles survive the freeze unchanged ($end is pre-declared at
/// id 0, so user terminals start at 1 in declaration order); nonterminal
/// handles are remapped to ids following the terminals. Recover frozen ids
/// with Grammar::findSymbol(name).
class GrammarBuilder {
public:
  explicit GrammarBuilder(std::string Name = "grammar");

  /// Declares (or finds) a terminal named \p Name. Returns a builder-local
  /// handle that is also valid in the frozen Grammar (ids are stable).
  SymbolId terminal(std::string_view Name);

  /// Declares (or finds) a nonterminal named \p Name.
  SymbolId nonterminal(std::string_view Name);

  /// Adds production Lhs -> Rhs. \p Lhs must be a nonterminal handle.
  /// Returns the production's index among user productions; the frozen
  /// grammar offsets these by 1 (production 0 is the augmentation).
  /// \p PrecToken, if valid, is the %prec terminal for the production.
  ProductionId production(SymbolId Lhs, std::vector<SymbolId> Rhs,
                          SymbolId PrecToken = InvalidSymbol);

  /// Sets the start symbol. If never called, the Lhs of the first
  /// production is used.
  void startSymbol(SymbolId Nt);

  /// Declares one precedence level (higher levels bind tighter; levels are
  /// assigned in call order, mirroring yacc's %left/%right/%nonassoc).
  void precedenceLevel(Assoc Associativity,
                       const std::vector<SymbolId> &Terminals);

  /// Returns true if \p Name is already declared (as either kind).
  bool isDeclared(std::string_view Name) const;

  /// Declares the %expect value (-1 = unspecified), recorded on the
  /// frozen grammar for consumers to check against the built table.
  void expectedShiftReduce(int N) { ExpectedSr = N; }

  /// Validates and freezes. On failure, reports into \p Diags and returns
  /// std::nullopt. Errors: no productions, undefined start symbol,
  /// terminal used as a production Lhs (prevented by typing but validated
  /// for the parser path), nonterminal with no productions.
  std::optional<Grammar> build(DiagnosticEngine &Diags) &&;

private:
  struct SymbolRecord {
    std::string Name;
    bool IsTerminal;
    Precedence Prec;
  };
  struct ProdRecord {
    SymbolId Lhs;
    std::vector<SymbolId> Rhs;
    SymbolId PrecToken;
  };

  std::string Name;
  // Builder-local handles: terminals get even-spaced ids in declaration
  // order starting at 1 ($end is pre-declared at handle 0); nonterminals
  // are tracked separately and remapped at build time.
  std::vector<SymbolRecord> Terminals;    // index == final terminal id
  std::vector<SymbolRecord> Nonterminals; // index == final nt index
  std::unordered_map<std::string, SymbolId> HandleByName;
  std::vector<ProdRecord> Prods;
  SymbolId Start = InvalidSymbol;
  uint16_t NextPrecLevel = 1;
  int ExpectedSr = -1;

  static constexpr SymbolId NonterminalFlag = 0x80000000u;
  static bool isNtHandle(SymbolId H) { return H & NonterminalFlag; }
  static uint32_t ntSlot(SymbolId H) { return H & ~NonterminalFlag; }
};

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMARBUILDER_H
