//===- grammar/Transforms.h - Grammar transformations -----------*- C++ -*-===//
///
/// \file
/// Language-preserving grammar rewrites. These are not needed by the DP
/// look-ahead computation itself, but they are part of the generator
/// pipeline a practical tool exposes (and the synthetic-grammar benchmarks
/// use reduction to guarantee well-formed inputs):
///   * reduceGrammar: drop unproductive nonterminals and unreachable
///     symbols (the "reduced grammar" canonical form);
///   * removeEpsilonRules: classic epsilon-elimination producing a grammar
///     with L(G') = L(G) \ {epsilon}.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_TRANSFORMS_H
#define LALR_GRAMMAR_TRANSFORMS_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <optional>

namespace lalr {

/// Removes unproductive nonterminals, then unreachable symbols, rebuilding
/// a fresh Grammar. Fails (with a diagnostic) if the start symbol is
/// unproductive, i.e. the grammar generates the empty language.
std::optional<Grammar> reduceGrammar(const Grammar &G,
                                     DiagnosticEngine &Diags);

/// Rewrites \p G into an epsilon-free grammar generating L(G) \ {epsilon}.
/// Every production containing nullable nonterminals is expanded into the
/// variants obtained by omitting subsets of them (empty expansions are
/// dropped). Productions with more than \p MaxNullablePositions nullable
/// occurrences are rejected with a diagnostic to bound the 2^k expansion.
std::optional<Grammar> removeEpsilonRules(const Grammar &G,
                                          DiagnosticEngine &Diags,
                                          unsigned MaxNullablePositions = 16);

/// True if \p G already contains no epsilon production (ignoring the
/// augmentation production, which never is one).
bool isEpsilonFree(const Grammar &G);

} // namespace lalr

#endif // LALR_GRAMMAR_TRANSFORMS_H
