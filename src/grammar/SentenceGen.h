//===- grammar/SentenceGen.h - Deriving sentences from grammars -*- C++ -*-===//
///
/// \file
/// Sentence derivation utilities used for grammar debugging and for the
/// end-to-end property suites:
///
///   * minimum terminal-yield lengths per symbol (Knuth-style
///     relaxation), the basis of everything else;
///   * shortest terminal expansion of any symbol (deterministic);
///   * bounded random sentences of L(G) — every generated sentence must
///     be accepted by every adequate parse table for the grammar, which
///     is one of the strongest end-to-end checks in the test suite;
///   * conflict examples: a viable prefix of terminals driving the
///     parser into a given automaton state (how a generator explains
///     conflicts to its user).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_SENTENCEGEN_H
#define LALR_GRAMMAR_SENTENCEGEN_H

#include "grammar/Grammar.h"
#include "lr/Lr0Automaton.h"
#include "support/Rng.h"

#include <limits>
#include <vector>

namespace lalr {

/// Sentinel for "derives no terminal string".
constexpr uint32_t UnproductiveLength = UINT32_MAX;

/// Minimum length of a terminal string derivable from each symbol
/// (terminals: 1; unproductive nonterminals: UnproductiveLength).
/// Indexed by symbol id.
std::vector<uint32_t> computeMinYieldLengths(const Grammar &G);

/// For each production, the summed min yield of its body, or
/// UnproductiveLength if some body symbol is unproductive.
std::vector<uint32_t>
computeProductionMinYields(const Grammar &G,
                           const std::vector<uint32_t> &MinLen);

/// The shortest terminal string derivable from \p S (ties broken by the
/// lowest production id, so the result is deterministic). \p S may be a
/// terminal (yields {S}). Asserts \p S is productive.
std::vector<SymbolId> shortestExpansion(const Grammar &G, SymbolId S);

/// Expands a sentential form to its shortest terminal yield.
std::vector<SymbolId> shortestExpansion(const Grammar &G,
                                        std::span<const SymbolId> Form);

/// Derives a pseudo-random sentence of L(G) with at most ~MaxLen
/// terminals: productions are chosen uniformly while the budget allows,
/// then steered to minimal expansions. Deterministic in \p R's state.
std::vector<SymbolId> randomSentence(const Grammar &G, Rng &R,
                                     size_t MaxLen);

/// A worked example of how to reach an automaton state: the shortest
/// symbol path from the start state and its terminal expansion (a
/// viable prefix of the sentences passing through the state).
struct StateExample {
  std::vector<SymbolId> SymbolPath;
  std::vector<SymbolId> TerminalPrefix;
};

/// Computes the example for \p Target via BFS over the automaton's
/// transitions. Every state of an LR(0) automaton is reachable.
StateExample exampleForState(const Lr0Automaton &A, StateId Target);

/// Renders a terminal sequence as space-separated names (quotes of
/// literal tokens stripped), suitable for tokenizeSymbols round-trips.
std::string renderSentence(const Grammar &G, std::span<const SymbolId> S);

} // namespace lalr

#endif // LALR_GRAMMAR_SENTENCEGEN_H
