//===- grammar/SentenceGen.cpp - Deriving sentences from grammars ------------===//

#include "grammar/SentenceGen.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

using namespace lalr;

std::vector<uint32_t> lalr::computeMinYieldLengths(const Grammar &G) {
  std::vector<uint32_t> MinLen(G.numSymbols(), UnproductiveLength);
  for (SymbolId T = 0; T < G.numTerminals(); ++T)
    MinLen[T] = 1;
  // Bellman-Ford style relaxation; grammars are small enough that the
  // simple sweep converges quickly.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      uint64_t Sum = 0;
      bool Ok = true;
      for (SymbolId S : P.Rhs) {
        if (MinLen[S] == UnproductiveLength) {
          Ok = false;
          break;
        }
        Sum += MinLen[S];
      }
      if (!Ok)
        continue;
      uint32_t Candidate =
          Sum > UnproductiveLength - 1 ? UnproductiveLength - 1
                                       : static_cast<uint32_t>(Sum);
      if (Candidate < MinLen[P.Lhs]) {
        MinLen[P.Lhs] = Candidate;
        Changed = true;
      }
    }
  }
  return MinLen;
}

std::vector<uint32_t>
lalr::computeProductionMinYields(const Grammar &G,
                                 const std::vector<uint32_t> &MinLen) {
  std::vector<uint32_t> Out(G.numProductions(), UnproductiveLength);
  for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    uint64_t Sum = 0;
    bool Ok = true;
    for (SymbolId S : P.Rhs) {
      if (MinLen[S] == UnproductiveLength) {
        Ok = false;
        break;
      }
      Sum += MinLen[S];
    }
    if (Ok)
      Out[PId] = static_cast<uint32_t>(
          std::min<uint64_t>(Sum, UnproductiveLength - 1));
  }
  return Out;
}

namespace {

/// Appends the shortest yield of \p S to \p Out using precomputed
/// min-lengths (lowest-id production among the minimal ones).
void expandShortest(const Grammar &G, const std::vector<uint32_t> &MinLen,
                    const std::vector<uint32_t> &ProdMin, SymbolId S,
                    std::vector<SymbolId> &Out) {
  if (G.isTerminal(S)) {
    Out.push_back(S);
    return;
  }
  assert(MinLen[S] != UnproductiveLength &&
         "cannot expand an unproductive nonterminal");
  ProductionId Best = InvalidProduction;
  for (ProductionId PId : G.productionsOf(S))
    if (ProdMin[PId] == MinLen[S]) {
      Best = PId;
      break;
    }
  assert(Best != InvalidProduction && "min length must be witnessed");
  for (SymbolId X : G.production(Best).Rhs)
    expandShortest(G, MinLen, ProdMin, X, Out);
}

} // namespace

std::vector<SymbolId> lalr::shortestExpansion(const Grammar &G,
                                              SymbolId S) {
  std::vector<SymbolId> Form{S};
  return shortestExpansion(G, Form);
}

std::vector<SymbolId>
lalr::shortestExpansion(const Grammar &G, std::span<const SymbolId> Form) {
  std::vector<uint32_t> MinLen = computeMinYieldLengths(G);
  std::vector<uint32_t> ProdMin = computeProductionMinYields(G, MinLen);
  std::vector<SymbolId> Out;
  for (SymbolId S : Form)
    expandShortest(G, MinLen, ProdMin, S, Out);
  return Out;
}

std::vector<SymbolId> lalr::randomSentence(const Grammar &G, Rng &R,
                                           size_t MaxLen) {
  std::vector<uint32_t> MinLen = computeMinYieldLengths(G);
  std::vector<uint32_t> ProdMin = computeProductionMinYields(G, MinLen);

  // Leftmost derivation over an explicit sentential form, kept as a
  // stack of pending suffix symbols (reversed).
  std::vector<SymbolId> Pending{G.startSymbol()};
  std::vector<SymbolId> Sentence;
  while (!Pending.empty()) {
    SymbolId S = Pending.back();
    Pending.pop_back();
    if (G.isTerminal(S)) {
      Sentence.push_back(S);
      continue;
    }
    // Remaining minimal budget of everything still pending.
    uint64_t PendingMin = 0;
    for (SymbolId P : Pending)
      PendingMin += MinLen[P];

    auto Prods = G.productionsOf(S);
    ProductionId Chosen = InvalidProduction;
    // Try a uniformly random production whose minimal completion fits
    // the budget; fall back to the overall minimal one.
    ProductionId Candidate = Prods[R.below(Prods.size())];
    if (ProdMin[Candidate] != UnproductiveLength &&
        Sentence.size() + PendingMin + ProdMin[Candidate] <= MaxLen)
      Chosen = Candidate;
    if (Chosen == InvalidProduction) {
      for (ProductionId PId : Prods)
        if (ProdMin[PId] == MinLen[S]) {
          Chosen = PId;
          break;
        }
    }
    assert(Chosen != InvalidProduction && "grammar must be productive");
    const Production &P = G.production(Chosen);
    for (auto It = P.Rhs.rbegin(); It != P.Rhs.rend(); ++It)
      Pending.push_back(*It);
  }
  return Sentence;
}

StateExample lalr::exampleForState(const Lr0Automaton &A, StateId Target) {
  const Grammar &G = A.grammar();
  // BFS for the shortest symbol path.
  std::vector<StateId> PrevState(A.numStates(), InvalidState);
  std::vector<SymbolId> PrevSymbol(A.numStates(), InvalidSymbol);
  std::vector<bool> Seen(A.numStates(), false);
  std::deque<StateId> Queue{A.startState()};
  Seen[A.startState()] = true;
  while (!Queue.empty()) {
    StateId Cur = Queue.front();
    Queue.pop_front();
    if (Cur == Target)
      break;
    for (auto [Sym, Next] : A.state(Cur).Transitions) {
      if (Seen[Next])
        continue;
      Seen[Next] = true;
      PrevState[Next] = Cur;
      PrevSymbol[Next] = Sym;
      Queue.push_back(Next);
    }
  }
  assert(Seen[Target] && "all LR(0) states are reachable");

  StateExample Out;
  for (StateId S = Target; S != A.startState(); S = PrevState[S])
    Out.SymbolPath.push_back(PrevSymbol[S]);
  std::reverse(Out.SymbolPath.begin(), Out.SymbolPath.end());
  Out.TerminalPrefix = shortestExpansion(G, Out.SymbolPath);
  return Out;
}

std::string lalr::renderSentence(const Grammar &G,
                                 std::span<const SymbolId> Sentence) {
  std::ostringstream OS;
  bool First = true;
  for (SymbolId S : Sentence) {
    if (!First)
      OS << ' ';
    First = false;
    const std::string &Name = G.name(S);
    if (Name.size() >= 2 && Name.front() == '\'' && Name.back() == '\'')
      OS << Name.substr(1, Name.size() - 2);
    else
      OS << Name;
  }
  return OS.str();
}
