//===- grammar/Lint.cpp - Grammar hygiene warnings -----------------------------===//

#include "grammar/Lint.h"

#include "grammar/Analysis.h"

#include <map>
#include <sstream>

using namespace lalr;

std::string LintFinding::toString(const Grammar &G) const {
  std::ostringstream OS;
  switch (Kind) {
  case UnusedTerminal:
    OS << "terminal '" << G.name(Symbol)
       << "' is declared but never used";
    break;
  case UnreachableNonterminal:
    OS << "nonterminal '" << G.name(Symbol)
       << "' is unreachable from the start symbol";
    break;
  case UnproductiveNonterminal:
    OS << "nonterminal '" << G.name(Symbol)
       << "' derives no terminal string";
    break;
  case DuplicateProduction:
    OS << "production " << Prod2 << " duplicates production " << Prod1
       << " (" << G.productionToString(Prod1) << ")";
    break;
  case DerivationCycle:
    OS << "nonterminal '" << G.name(Symbol)
       << "' derives itself (cycle): the grammar cannot be LR(k)";
    break;
  case NullOnlyNonterminal:
    OS << "nonterminal '" << G.name(Symbol)
       << "' derives only the empty string";
    break;
  }
  return OS.str();
}

std::vector<LintFinding> lalr::lintGrammar(const Grammar &G) {
  std::vector<LintFinding> Out;
  GrammarAnalysis An(G);
  std::vector<bool> Reachable = computeReachable(G);
  std::vector<bool> Productive = computeProductive(G);

  // Unused terminals ($end is special and always "used"). Appearing in
  // a production body or as a %prec symbol both count as uses.
  std::vector<bool> UsedTerminal(G.numTerminals(), false);
  for (ProductionId P = 0; P < G.numProductions(); ++P) {
    for (SymbolId S : G.production(P).Rhs)
      if (G.isTerminal(S))
        UsedTerminal[S] = true;
    if (G.production(P).PrecSymbol != InvalidSymbol)
      UsedTerminal[G.production(P).PrecSymbol] = true;
  }
  for (SymbolId T = 1; T < G.numTerminals(); ++T)
    if (!UsedTerminal[T])
      Out.push_back({LintFinding::UnusedTerminal, T, InvalidProduction,
                     InvalidProduction});

  for (uint32_t NtIdx = 0; NtIdx + 1 < G.numNonterminals(); ++NtIdx) {
    SymbolId Nt = G.ntSymbol(NtIdx);
    if (!Reachable[Nt])
      Out.push_back({LintFinding::UnreachableNonterminal, Nt,
                     InvalidProduction, InvalidProduction});
    if (!Productive[NtIdx])
      Out.push_back({LintFinding::UnproductiveNonterminal, Nt,
                     InvalidProduction, InvalidProduction});
    else if (An.isNullable(Nt) && An.first(Nt).empty())
      Out.push_back({LintFinding::NullOnlyNonterminal, Nt,
                     InvalidProduction, InvalidProduction});
  }

  // Duplicate productions.
  std::map<std::pair<SymbolId, std::vector<SymbolId>>, ProductionId> Seen;
  for (ProductionId P = 1; P < G.numProductions(); ++P) {
    auto Key = std::make_pair(G.production(P).Lhs, G.production(P).Rhs);
    auto [It, Inserted] = Seen.try_emplace(Key, P);
    if (!Inserted)
      Out.push_back({LintFinding::DuplicateProduction,
                     G.production(P).Lhs, It->second, P});
  }

  // Derivation cycles: detect per nonterminal via the nullable-bracketed
  // unit graph (see hasCycle); report each nonterminal on a cycle.
  if (hasCycle(G)) {
    // Identify members: A is on a cycle iff A =>+ A; reuse the
    // left-recursion machinery on the both-sides-nullable graph by
    // checking reachability in that graph per node. Small grammars: do
    // the simple quadratic scan.
    GrammarAnalysis An2(G);
    std::vector<std::vector<uint32_t>> Adj(G.numNonterminals());
    for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
      const Production &P = G.production(PId);
      for (size_t I = 0; I < P.Rhs.size(); ++I) {
        SymbolId S = P.Rhs[I];
        if (G.isTerminal(S))
          break;
        bool PrefixNullable = true;
        for (size_t J = 0; J < I; ++J)
          if (!An2.isNullable(P.Rhs[J]))
            PrefixNullable = false;
        bool SuffixNullable = true;
        for (size_t J = I + 1; J < P.Rhs.size(); ++J)
          if (!An2.isNullable(P.Rhs[J]))
            SuffixNullable = false;
        if (PrefixNullable && SuffixNullable)
          Adj[G.ntIndex(P.Lhs)].push_back(G.ntIndex(S));
        if (!An2.isNullable(S))
          break;
      }
    }
    for (uint32_t Root = 0; Root < Adj.size(); ++Root) {
      std::vector<uint8_t> Mark(Adj.size());
      std::vector<uint32_t> Stack(Adj[Root].begin(), Adj[Root].end());
      while (!Stack.empty()) {
        uint32_t U = Stack.back();
        Stack.pop_back();
        if (U == Root) {
          Out.push_back({LintFinding::DerivationCycle, G.ntSymbol(Root),
                         InvalidProduction, InvalidProduction});
          break;
        }
        if (Mark[U])
          continue;
        Mark[U] = 1;
        for (uint32_t V : Adj[U])
          Stack.push_back(V);
      }
    }
  }
  return Out;
}
