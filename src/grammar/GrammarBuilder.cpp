//===- grammar/GrammarBuilder.cpp - Programmatic grammar construction ------===//

#include "grammar/GrammarBuilder.h"

#include <algorithm>

using namespace lalr;

GrammarBuilder::GrammarBuilder(std::string Name) : Name(std::move(Name)) {
  // $end is terminal 0 in every grammar; it never appears in user
  // productions but participates in look-ahead sets and the accept action.
  Terminals.push_back({"$end", /*IsTerminal=*/true, Precedence{}});
  HandleByName.emplace("$end", 0);
}

SymbolId GrammarBuilder::terminal(std::string_view NameStr) {
  auto It = HandleByName.find(std::string(NameStr));
  if (It != HandleByName.end()) {
    assert(!isNtHandle(It->second) &&
           "symbol already declared as a nonterminal");
    return It->second;
  }
  SymbolId Handle = static_cast<SymbolId>(Terminals.size());
  Terminals.push_back({std::string(NameStr), true, Precedence{}});
  HandleByName.emplace(std::string(NameStr), Handle);
  return Handle;
}

SymbolId GrammarBuilder::nonterminal(std::string_view NameStr) {
  auto It = HandleByName.find(std::string(NameStr));
  if (It != HandleByName.end()) {
    assert(isNtHandle(It->second) && "symbol already declared as a terminal");
    return It->second;
  }
  SymbolId Handle =
      NonterminalFlag | static_cast<SymbolId>(Nonterminals.size());
  Nonterminals.push_back({std::string(NameStr), false, Precedence{}});
  HandleByName.emplace(std::string(NameStr), Handle);
  return Handle;
}

ProductionId GrammarBuilder::production(SymbolId Lhs, std::vector<SymbolId> Rhs,
                                        SymbolId PrecToken) {
  ProductionId Id = static_cast<ProductionId>(Prods.size());
  Prods.push_back({Lhs, std::move(Rhs), PrecToken});
  return Id;
}

void GrammarBuilder::startSymbol(SymbolId Nt) {
  assert(isNtHandle(Nt) && "start symbol must be a nonterminal");
  Start = Nt;
}

void GrammarBuilder::precedenceLevel(Assoc Associativity,
                                     const std::vector<SymbolId> &Tokens) {
  uint16_t Level = NextPrecLevel++;
  for (SymbolId T : Tokens) {
    assert(!isNtHandle(T) && T < Terminals.size() &&
           "precedence applies to terminals only");
    Terminals[T].Prec = Precedence{Level, Associativity};
  }
}

bool GrammarBuilder::isDeclared(std::string_view NameStr) const {
  return HandleByName.count(std::string(NameStr)) != 0;
}

std::optional<Grammar> GrammarBuilder::build(DiagnosticEngine &Diags) && {
  if (Prods.empty()) {
    Diags.error({}, "grammar has no productions");
    return std::nullopt;
  }
  if (Start == InvalidSymbol)
    Start = Prods.front().Lhs;
  if (!isNtHandle(Start)) {
    Diags.error({}, "start symbol must be a nonterminal");
    return std::nullopt;
  }

  // Every nonterminal needs at least one production; a nonterminal without
  // one can never derive a terminal string and almost always indicates a
  // typo in the grammar file.
  std::vector<bool> HasProduction(Nonterminals.size(), false);
  for (const ProdRecord &P : Prods) {
    if (!isNtHandle(P.Lhs)) {
      Diags.error({}, "terminal '" + Terminals[P.Lhs].Name +
                          "' appears as the left-hand side of a production");
      continue;
    }
    HasProduction[ntSlot(P.Lhs)] = true;
  }
  for (size_t I = 0; I < Nonterminals.size(); ++I)
    if (!HasProduction[I])
      Diags.error({}, "nonterminal '" + Nonterminals[I].Name +
                          "' has no productions");
  if (Diags.hasErrors())
    return std::nullopt;

  Grammar G;
  G.GrammarName = std::move(Name);
  G.ExpectedSr = ExpectedSr;
  G.NumTerminals = Terminals.size();

  // Canonical layout: terminals (declaration order, $end first), then
  // nonterminals (declaration order), then $accept.
  const uint32_t NumT = static_cast<uint32_t>(Terminals.size());
  auto remap = [&](SymbolId Handle) -> SymbolId {
    return isNtHandle(Handle) ? NumT + ntSlot(Handle) : Handle;
  };

  for (SymbolRecord &R : Terminals) {
    G.Precedences.push_back(R.Prec);
    G.Names.push_back(std::move(R.Name));
  }
  for (SymbolRecord &R : Nonterminals)
    G.Names.push_back(std::move(R.Name));
  G.Names.push_back("$accept");
  for (uint32_t Id = 0; Id < G.Names.size(); ++Id)
    G.IdByName.emplace(G.Names[Id], Id);

  G.Start = remap(Start);
  const SymbolId Accept = static_cast<SymbolId>(G.Names.size() - 1);

  // Production 0: $accept -> start. Its reduction on $end is "accept".
  Production AcceptProd;
  AcceptProd.Id = 0;
  AcceptProd.Lhs = Accept;
  AcceptProd.Rhs = {G.Start};
  G.Productions.push_back(std::move(AcceptProd));

  for (ProdRecord &P : Prods) {
    Production Prod;
    Prod.Id = static_cast<ProductionId>(G.Productions.size());
    Prod.Lhs = remap(P.Lhs);
    Prod.Rhs.reserve(P.Rhs.size());
    for (SymbolId S : P.Rhs)
      Prod.Rhs.push_back(remap(S));
    // Yacc rule: a production's precedence is its %prec token's, or the
    // precedence of the rightmost terminal in its body.
    if (P.PrecToken != InvalidSymbol) {
      assert(!isNtHandle(P.PrecToken) && "%prec takes a terminal");
      Prod.PrecSymbol = P.PrecToken;
    } else {
      for (auto It = Prod.Rhs.rbegin(); It != Prod.Rhs.rend(); ++It) {
        if (*It < NumT) {
          Prod.PrecSymbol = *It;
          break;
        }
      }
    }
    G.Productions.push_back(std::move(Prod));
  }

  G.ProductionsByNt.resize(G.numNonterminals());
  for (const Production &P : G.Productions)
    G.ProductionsByNt[G.ntIndex(P.Lhs)].push_back(P.Id);

  return G;
}
