//===- grammar/GrammarParser.cpp - Parser for the .y dialect ----------------===//

#include "grammar/GrammarParser.h"

#include "grammar/GrammarBuilder.h"
#include "grammar/GrammarLexer.h"

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

using namespace lalr;

namespace {

/// Name + location, before symbol resolution.
struct NameRef {
  std::string Name;
  SourceLocation Loc;
  bool IsLiteral = false;
};

/// One parsed alternative of a rule.
struct AltAst {
  std::vector<NameRef> Symbols;
  NameRef PrecToken; // empty Name when absent
};

/// One parsed rule (one lhs, >= 1 alternatives).
struct RuleAst {
  NameRef Lhs;
  std::vector<AltAst> Alts;
};

/// One precedence level from %left/%right/%nonassoc, in declaration order.
struct PrecLevelAst {
  Assoc Associativity;
  std::vector<NameRef> Tokens;
};

/// The whole parsed file before resolution.
struct FileAst {
  std::string Name;
  std::vector<NameRef> TokenDecls;
  std::vector<PrecLevelAst> PrecLevels;
  NameRef Start;
  std::vector<RuleAst> Rules;
  int ExpectedSr = -1; // %expect N, or -1 when absent
};

/// Recursive-descent parser over GrammarLexer tokens.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags)
      : Lexer(Source, Diags), Diags(Diags) {
    Tok = Lexer.next();
  }

  /// Parses the full file; returns false if a structural error makes the
  /// AST unusable (diagnostics have been reported either way).
  bool parseFile(FileAst &Out);

private:
  void consume() { Tok = Lexer.next(); }

  bool expect(GTokKind Kind, const char *What) {
    if (Tok.Kind == Kind) {
      consume();
      return true;
    }
    Diags.error(Tok.Loc, std::string("expected ") + What + " before " +
                             tokenKindName(Tok.Kind));
    return false;
  }

  void parseDeclarations(FileAst &Out);
  void parseRules(FileAst &Out);
  bool parseRule(FileAst &Out);

  GrammarLexer Lexer;
  DiagnosticEngine &Diags;
  GToken Tok;
};

} // namespace

void Parser::parseDeclarations(FileAst &Out) {
  while (true) {
    switch (Tok.Kind) {
    case GTokKind::KwToken: {
      consume();
      size_t Declared = 0;
      while (Tok.Kind == GTokKind::Ident || Tok.Kind == GTokKind::Literal) {
        Out.TokenDecls.push_back(
            {Tok.Text, Tok.Loc, Tok.Kind == GTokKind::Literal});
        consume();
        ++Declared;
      }
      if (Declared == 0)
        Diags.error(Tok.Loc, "%token requires at least one name");
      break;
    }
    case GTokKind::KwLeft:
    case GTokKind::KwRight:
    case GTokKind::KwNonassoc: {
      Assoc A = Tok.Kind == GTokKind::KwLeft    ? Assoc::Left
                : Tok.Kind == GTokKind::KwRight ? Assoc::Right
                                                : Assoc::NonAssoc;
      SourceLocation DirLoc = Tok.Loc;
      consume();
      PrecLevelAst Level;
      Level.Associativity = A;
      while (Tok.Kind == GTokKind::Ident || Tok.Kind == GTokKind::Literal) {
        Level.Tokens.push_back(
            {Tok.Text, Tok.Loc, Tok.Kind == GTokKind::Literal});
        consume();
      }
      if (Level.Tokens.empty())
        Diags.error(DirLoc, "precedence directive requires at least one "
                            "token");
      else
        Out.PrecLevels.push_back(std::move(Level));
      break;
    }
    case GTokKind::KwStart: {
      consume();
      if (Tok.Kind != GTokKind::Ident) {
        Diags.error(Tok.Loc, "%start requires a nonterminal name");
        break;
      }
      if (!Out.Start.Name.empty())
        Diags.warning(Tok.Loc, "%start given more than once; the last one "
                               "wins");
      Out.Start = {Tok.Text, Tok.Loc, false};
      consume();
      break;
    }
    case GTokKind::KwName: {
      consume();
      if (Tok.Kind != GTokKind::Ident) {
        Diags.error(Tok.Loc, "%name requires an identifier");
        break;
      }
      Out.Name = Tok.Text;
      consume();
      break;
    }
    case GTokKind::KwExpect: {
      consume();
      if (Tok.Kind != GTokKind::Number) {
        Diags.error(Tok.Loc, "%expect requires an integer");
        break;
      }
      Out.ExpectedSr = std::atoi(Tok.Text.c_str());
      consume();
      break;
    }
    case GTokKind::Invalid:
      consume(); // diagnostics already emitted by the lexer
      break;
    default:
      return; // '%%' or anything else ends the declaration section
    }
  }
}

bool Parser::parseRule(FileAst &Out) {
  if (Tok.Kind != GTokKind::Ident) {
    Diags.error(Tok.Loc, std::string("expected a rule name before ") +
                             tokenKindName(Tok.Kind));
    // Recover: skip to the next ';' so later rules still parse.
    while (Tok.Kind != GTokKind::Semi && Tok.Kind != GTokKind::EndOfFile &&
           Tok.Kind != GTokKind::PercentPercent)
      consume();
    if (Tok.Kind == GTokKind::Semi)
      consume();
    return Tok.Kind != GTokKind::EndOfFile &&
           Tok.Kind != GTokKind::PercentPercent;
  }

  RuleAst Rule;
  Rule.Lhs = {Tok.Text, Tok.Loc, false};
  consume();
  if (!expect(GTokKind::Colon, "':'"))
    return true;

  AltAst Alt;
  bool SawEmptyMarker = false;
  auto finishAlt = [&]() {
    if (SawEmptyMarker && !Alt.Symbols.empty())
      Diags.error(Rule.Lhs.Loc, "%empty used in a nonempty alternative of '" +
                                    Rule.Lhs.Name + "'");
    Rule.Alts.push_back(std::move(Alt));
    Alt = AltAst();
    SawEmptyMarker = false;
  };

  while (true) {
    switch (Tok.Kind) {
    case GTokKind::Ident:
    case GTokKind::Literal:
      Alt.Symbols.push_back(
          {Tok.Text, Tok.Loc, Tok.Kind == GTokKind::Literal});
      consume();
      break;
    case GTokKind::KwEmpty:
      SawEmptyMarker = true;
      consume();
      break;
    case GTokKind::KwPrec:
      consume();
      if (Tok.Kind == GTokKind::Ident || Tok.Kind == GTokKind::Literal) {
        Alt.PrecToken = {Tok.Text, Tok.Loc, Tok.Kind == GTokKind::Literal};
        consume();
      } else {
        Diags.error(Tok.Loc, "%prec requires a token name");
      }
      break;
    case GTokKind::Pipe:
      finishAlt();
      consume();
      break;
    case GTokKind::Semi:
      finishAlt();
      consume();
      Out.Rules.push_back(std::move(Rule));
      return true;
    case GTokKind::EndOfFile:
    case GTokKind::PercentPercent:
      Diags.error(Tok.Loc, "rule '" + Rule.Lhs.Name +
                               "' is not terminated by ';'");
      finishAlt();
      Out.Rules.push_back(std::move(Rule));
      return false;
    case GTokKind::Invalid:
      consume();
      break;
    default:
      Diags.error(Tok.Loc, std::string("unexpected ") +
                               tokenKindName(Tok.Kind) + " in rule '" +
                               Rule.Lhs.Name + "'");
      consume();
      break;
    }
  }
}

void Parser::parseRules(FileAst &Out) {
  while (Tok.Kind != GTokKind::EndOfFile &&
         Tok.Kind != GTokKind::PercentPercent)
    if (!parseRule(Out))
      return;
}

bool Parser::parseFile(FileAst &Out) {
  parseDeclarations(Out);
  if (!expect(GTokKind::PercentPercent, "'%%'"))
    return false;
  parseRules(Out);
  // A second '%%' (and everything after it) is ignored, like yacc's user
  // code section.
  if (Out.Rules.empty()) {
    Diags.error(Tok.Loc, "grammar has no rules");
    return false;
  }
  return true;
}

std::optional<Grammar> lalr::parseGrammar(std::string_view Source,
                                          DiagnosticEngine &Diags,
                                          std::string_view DefaultName) {
  FileAst Ast;
  {
    Parser P(Source, Diags);
    if (!P.parseFile(Ast) || Diags.hasErrors())
      return std::nullopt;
  }

  GrammarBuilder Builder(Ast.Name.empty() ? std::string(DefaultName)
                                          : Ast.Name);

  // Pass 1: left-hand sides define the nonterminals. 'error' is the
  // reserved recovery terminal and cannot have rules.
  std::set<std::string> NtNames;
  for (const RuleAst &Rule : Ast.Rules) {
    if (Rule.Lhs.Name == "error") {
      Diags.error(Rule.Lhs.Loc,
                  "'error' is the reserved recovery token and cannot "
                  "have rules");
      continue;
    }
    NtNames.insert(Rule.Lhs.Name);
  }

  // Declared tokens become terminals; clashing with a rule name is an
  // error (a symbol cannot be both).
  std::set<std::string> TokenNames;
  for (const NameRef &Decl : Ast.TokenDecls) {
    if (NtNames.count(Decl.Name)) {
      Diags.error(Decl.Loc, "'" + Decl.Name +
                                "' is declared %token but also has rules");
      continue;
    }
    if (!TokenNames.insert(Decl.Name).second)
      Diags.warning(Decl.Loc, "token '" + Decl.Name + "' declared twice");
    Builder.terminal(Decl.Name);
  }
  // Precedence tokens are implicitly terminals too (yacc behaviour).
  for (const PrecLevelAst &Level : Ast.PrecLevels)
    for (const NameRef &T : Level.Tokens) {
      if (NtNames.count(T.Name)) {
        Diags.error(T.Loc, "'" + T.Name +
                               "' has rules and cannot carry precedence");
        continue;
      }
      TokenNames.insert(T.Name);
      Builder.terminal(T.Name);
    }
  if (Diags.hasErrors())
    return std::nullopt;

  // Resolves a right-hand-side name to a builder handle, diagnosing
  // undefined identifiers. Literals are always terminals, and the name
  // 'error' is the implicitly declared recovery terminal (yacc).
  auto resolve = [&](const NameRef &Ref) -> SymbolId {
    if (Ref.IsLiteral)
      return Builder.terminal(Ref.Name);
    if (NtNames.count(Ref.Name))
      return Builder.nonterminal(Ref.Name);
    if (TokenNames.count(Ref.Name) || Ref.Name == "error")
      return Builder.terminal(Ref.Name);
    Diags.error(Ref.Loc, "symbol '" + Ref.Name +
                             "' is used but is not declared %token and has "
                             "no rules");
    return InvalidSymbol;
  };

  for (const PrecLevelAst &Level : Ast.PrecLevels) {
    std::vector<SymbolId> Toks;
    for (const NameRef &T : Level.Tokens)
      Toks.push_back(Builder.terminal(T.Name));
    Builder.precedenceLevel(Level.Associativity, Toks);
  }

  for (const RuleAst &Rule : Ast.Rules) {
    SymbolId Lhs = Builder.nonterminal(Rule.Lhs.Name);
    for (const AltAst &Alt : Rule.Alts) {
      std::vector<SymbolId> Rhs;
      bool Bad = false;
      for (const NameRef &Ref : Alt.Symbols) {
        SymbolId S = resolve(Ref);
        if (S == InvalidSymbol)
          Bad = true;
        else
          Rhs.push_back(S);
      }
      SymbolId PrecTok = InvalidSymbol;
      if (!Alt.PrecToken.Name.empty()) {
        if (!Alt.PrecToken.IsLiteral && NtNames.count(Alt.PrecToken.Name)) {
          Diags.error(Alt.PrecToken.Loc,
                      "%prec argument '" + Alt.PrecToken.Name +
                          "' must be a token");
          Bad = true;
        } else {
          PrecTok = Builder.terminal(Alt.PrecToken.Name);
        }
      }
      if (!Bad)
        Builder.production(Lhs, std::move(Rhs), PrecTok);
    }
  }
  if (Diags.hasErrors())
    return std::nullopt;

  if (!Ast.Start.Name.empty()) {
    if (!NtNames.count(Ast.Start.Name)) {
      Diags.error(Ast.Start.Loc, "%start symbol '" + Ast.Start.Name +
                                     "' has no rules");
      return std::nullopt;
    }
    Builder.startSymbol(Builder.nonterminal(Ast.Start.Name));
  }

  Builder.expectedShiftReduce(Ast.ExpectedSr);
  return std::move(Builder).build(Diags);
}
