//===- grammar/GrammarPrinter.cpp - Render grammars as text ----------------===//

#include "grammar/GrammarPrinter.h"

#include <sstream>

using namespace lalr;

/// Renders a symbol name as dialect text. Literal names already carry their
/// quotes; identifiers pass through.
static const std::string &renderName(const Grammar &G, SymbolId S) {
  return G.name(S);
}

std::string lalr::printGrammarText(const Grammar &G) {
  std::ostringstream OS;
  OS << "%name " << G.grammarName() << "\n";

  // Token declarations: every terminal except $end, in id order — pure
  // literals included. Literals do not need declaring, but declaring them
  // here pins every terminal's first appearance to this line, so a
  // reparse assigns terminal ids in exactly this order no matter how a
  // precedence edit reshuffles the %left/%right lines below. That
  // id-stability is what lets the service's layered-hash classifier see a
  // printed-and-reparsed edit as the local change it is.
  bool AnyToken = false;
  for (SymbolId T = 1; T < G.numTerminals(); ++T) {
    if (!AnyToken) {
      OS << "%token";
      AnyToken = true;
    }
    OS << ' ' << G.name(T);
  }
  if (AnyToken)
    OS << "\n";

  // Precedence levels, in increasing level order.
  uint16_t MaxLevel = 0;
  for (SymbolId T = 0; T < G.numTerminals(); ++T)
    MaxLevel = std::max(MaxLevel, G.precedence(T).Level);
  for (uint16_t L = 1; L <= MaxLevel; ++L) {
    Assoc A = Assoc::None;
    std::ostringstream Toks;
    bool Any = false;
    for (SymbolId T = 0; T < G.numTerminals(); ++T)
      if (G.precedence(T).Level == L) {
        A = G.precedence(T).Associativity;
        Toks << ' ' << renderName(G, T);
        Any = true;
      }
    // A level can be left empty by a precedence edit; a bare directive
    // line would not re-parse, so skip it (relative order of the
    // remaining levels — all conflict resolution uses — is preserved).
    if (!Any)
      continue;
    const char *Dir = A == Assoc::Left    ? "%left"
                      : A == Assoc::Right ? "%right"
                                          : "%nonassoc";
    OS << Dir << Toks.str() << "\n";
  }

  OS << "%start " << G.name(G.startSymbol()) << "\n";
  if (G.expectedShiftReduce() >= 0)
    OS << "%expect " << G.expectedShiftReduce() << "\n";
  OS << "%%\n";

  // Rules grouped by nonterminal, skipping $accept.
  for (uint32_t NtIdx = 0; NtIdx + 1 < G.numNonterminals(); ++NtIdx) {
    SymbolId Nt = G.ntSymbol(NtIdx);
    auto Prods = G.productionsOf(Nt);
    if (Prods.empty())
      continue;
    OS << G.name(Nt) << " :";
    bool First = true;
    for (ProductionId PId : Prods) {
      const Production &P = G.production(PId);
      if (!First)
        OS << "\n  |";
      First = false;
      if (P.Rhs.empty())
        OS << " %empty";
      for (SymbolId S : P.Rhs)
        OS << ' ' << renderName(G, S);
      // Emit %prec only when it differs from the default inference, to
      // keep round-trips stable.
      SymbolId Inferred = InvalidSymbol;
      for (auto It = P.Rhs.rbegin(); It != P.Rhs.rend(); ++It)
        if (G.isTerminal(*It)) {
          Inferred = *It;
          break;
        }
      if (P.PrecSymbol != InvalidSymbol && P.PrecSymbol != Inferred)
        OS << " %prec " << renderName(G, P.PrecSymbol);
    }
    OS << "\n  ;\n";
  }
  return OS.str();
}

std::string lalr::printProductionListing(const Grammar &G) {
  std::ostringstream OS;
  for (ProductionId P = 0; P < G.numProductions(); ++P)
    OS << "  " << P << ". " << G.productionToString(P) << "\n";
  return OS.str();
}
