//===- grammar/Symbol.h - Grammar symbol ids --------------------*- C++ -*-===//
///
/// \file
/// Dense integer ids for grammar symbols. A frozen Grammar lays its symbols
/// out canonically: terminal ids occupy [0, numTerminals()) with the
/// end-of-input marker at id 0, and nonterminal ids occupy
/// [numTerminals(), numSymbols()) with the augmented start symbol last.
/// Everything downstream of the front end — item sets, relations, tables —
/// indexes by these ids, so they are plain integers rather than a class.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_SYMBOL_H
#define LALR_GRAMMAR_SYMBOL_H

#include <cstdint>

namespace lalr {

/// Identifier of a grammar symbol within one frozen Grammar.
using SymbolId = uint32_t;

/// Identifier of a production within one frozen Grammar. Production 0 is
/// always the augmentation production $accept -> start.
using ProductionId = uint32_t;

/// Sentinel for "no symbol".
constexpr SymbolId InvalidSymbol = UINT32_MAX;

/// Sentinel for "no production".
constexpr ProductionId InvalidProduction = UINT32_MAX;

/// Associativity of a terminal at some precedence level, declared with
/// %left / %right / %nonassoc.
enum class Assoc : uint8_t { None, Left, Right, NonAssoc };

/// Precedence record of a terminal. Level 0 means "no declared precedence";
/// declared levels start at 1 and higher binds tighter.
struct Precedence {
  uint16_t Level = 0;
  Assoc Associativity = Assoc::None;

  bool isDeclared() const { return Level != 0; }
};

} // namespace lalr

#endif // LALR_GRAMMAR_SYMBOL_H
