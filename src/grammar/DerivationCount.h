//===- grammar/DerivationCount.h - Counting parse trees ---------*- C++ -*-===//
///
/// \file
/// Counts the distinct parse trees of a sentence — the sentence's degree
/// of ambiguity. A span-based dynamic program (memoized over
/// (symbol, i, j) and production positions) that works for any
/// *cycle-free* grammar; grammars with derivation cycles (A =>+ A) have
/// sentences with infinitely many trees, which is reported instead of
/// looping. Used by the test suite to verify that
///
///   * ambiguous grammars show their textbook counts (Catalan numbers
///     for e : e '+' e | 'a'),
///   * every sentence of an LR-adequate grammar has exactly one tree
///     (adequate tables really do imply unambiguity on the sample), and
///   * the non-LR(k) palindrome grammar is nevertheless unambiguous.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_DERIVATIONCOUNT_H
#define LALR_GRAMMAR_DERIVATIONCOUNT_H

#include "grammar/Grammar.h"

#include <cstdint>
#include <optional>
#include <span>

namespace lalr {

/// Result of a counting run. Counts saturate at Saturated to avoid
/// overflow on explosively ambiguous inputs.
struct DerivationCount {
  static constexpr uint64_t Saturated = UINT64_MAX;
  /// Number of distinct parse trees (Saturated = "at least 2^64-1").
  uint64_t Count = 0;

  bool isMember() const { return Count > 0; }
  bool isAmbiguous() const { return Count > 1; }
};

/// Counts parse trees of \p Sentence (terminal ids) from the start
/// symbol. Returns std::nullopt when the grammar has a derivation cycle
/// (counts may be infinite there).
std::optional<DerivationCount>
countParseTrees(const Grammar &G, std::span<const SymbolId> Sentence);

} // namespace lalr

#endif // LALR_GRAMMAR_DERIVATIONCOUNT_H
