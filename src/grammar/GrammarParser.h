//===- grammar/GrammarParser.h - Parser for the .y dialect ------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser turning .y-dialect text into a frozen Grammar.
/// Resolution rules mirror yacc: a name is a nonterminal iff it appears as
/// the left-hand side of some rule; literals and %token-declared names are
/// terminals; any other name used on a right-hand side is an error ("used
/// but not defined as a token and has no rules").
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMARPARSER_H
#define LALR_GRAMMAR_GRAMMARPARSER_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>

namespace lalr {

/// Parses \p Source and builds the grammar. On any error, diagnostics are
/// reported into \p Diags and std::nullopt is returned. \p DefaultName is
/// used when the source has no %name directive.
std::optional<Grammar> parseGrammar(std::string_view Source,
                                    DiagnosticEngine &Diags,
                                    std::string_view DefaultName = "grammar");

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMARPARSER_H
