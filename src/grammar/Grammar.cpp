//===- grammar/Grammar.cpp - Immutable context-free grammar -----------------===//

#include "grammar/Grammar.h"

#include <sstream>

using namespace lalr;

SymbolId Grammar::findSymbol(std::string_view Name) const {
  auto It = IdByName.find(std::string(Name));
  return It == IdByName.end() ? InvalidSymbol : It->second;
}

size_t Grammar::grammarSize() const {
  size_t Size = 0;
  for (const Production &P : Productions)
    Size += 1 + P.Rhs.size();
  return Size;
}

std::string Grammar::productionToString(ProductionId P) const {
  const Production &Prod = production(P);
  std::ostringstream OS;
  OS << name(Prod.Lhs) << " ->";
  if (Prod.Rhs.empty()) {
    OS << " %empty";
    return OS.str();
  }
  for (SymbolId S : Prod.Rhs)
    OS << ' ' << name(S);
  return OS.str();
}
