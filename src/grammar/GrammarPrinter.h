//===- grammar/GrammarPrinter.h - Render grammars as text ------*- C++ -*-===//
///
/// \file
/// Renders a frozen Grammar back into the .y dialect (round-trippable
/// through parseGrammar) and as a numbered production listing for reports.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMARPRINTER_H
#define LALR_GRAMMAR_GRAMMARPRINTER_H

#include "grammar/Grammar.h"

#include <string>

namespace lalr {

/// Renders \p G in the .y dialect. The augmentation production and $end /
/// $accept symbols are omitted, so parsing the output reproduces an
/// equivalent grammar.
std::string printGrammarText(const Grammar &G);

/// Renders a numbered listing "  3. expr -> expr '+' term" of all
/// productions including the augmentation, as used by reports and tests.
std::string printProductionListing(const Grammar &G);

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMARPRINTER_H
