//===- grammar/GrammarLexer.h - Lexer for the .y dialect --------*- C++ -*-===//
///
/// \file
/// Tokenizer for the yacc/bison-style grammar dialect accepted by this
/// library. The dialect covers what the evaluation corpus needs:
///
///   %token NAME...            declare terminals
///   %left / %right / %nonassoc TOK...   declare one precedence level
///   %start name               select the start nonterminal
///   %name ident               optional grammar name for reports
///   %%                        separates declarations from rules
///   lhs : a 'lit' b | %empty | c %prec TOK ;
///
/// Comments are // to end of line and /* ... */. A second %% ends the
/// grammar; anything after it is ignored (yacc's user-code section).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMARLEXER_H
#define LALR_GRAMMAR_GRAMMARLEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>

namespace lalr {

/// Token kinds of the grammar dialect.
enum class GTokKind {
  Ident,          ///< rule or token name
  Literal,        ///< 'c' or "str" literal terminal (text keeps the quotes)
  Number,         ///< decimal integer (only used by %expect)
  Colon,          ///< :
  Pipe,           ///< |
  Semi,           ///< ;
  PercentPercent, ///< %%
  KwToken,        ///< %token
  KwLeft,         ///< %left
  KwRight,        ///< %right
  KwNonassoc,     ///< %nonassoc
  KwStart,        ///< %start
  KwPrec,         ///< %prec
  KwEmpty,        ///< %empty
  KwName,         ///< %name
  KwExpect,       ///< %expect
  EndOfFile,
  Invalid,
};

/// One lexed token with its spelling and location.
struct GToken {
  GTokKind Kind = GTokKind::Invalid;
  std::string Text;
  SourceLocation Loc;
};

/// Returns a printable name for a token kind, used in diagnostics.
const char *tokenKindName(GTokKind Kind);

/// Hand-written single-pass lexer. Invalid input produces Invalid tokens
/// with a diagnostic; the lexer always makes progress so the parser can
/// recover by skipping.
class GrammarLexer {
public:
  GrammarLexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes and returns the next token.
  GToken next();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLocation location() const { return {Line, Column}; }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMARLEXER_H
