//===- grammar/DerivationCount.cpp - Counting parse trees ----------------------===//

#include "grammar/DerivationCount.h"

#include "grammar/Analysis.h"

#include <unordered_map>
#include <vector>

using namespace lalr;

namespace {

/// Saturating addition and multiplication.
uint64_t satAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? DerivationCount::Saturated : S;
}
uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > DerivationCount::Saturated / B)
    return DerivationCount::Saturated;
  return A * B;
}

/// The memoized counting engine over spans of the input.
class Counter {
public:
  Counter(const Grammar &G, std::span<const SymbolId> Input)
      : G(G), Input(Input) {}

  /// Trees deriving Input[i, j) from symbol S.
  uint64_t symbolCount(SymbolId S, uint32_t I, uint32_t J) {
    if (G.isTerminal(S))
      return (J == I + 1 && Input[I] == S) ? 1 : 0;
    uint64_t Key = key(G.ntIndex(S), I, J, /*Tag=*/0, /*Pos=*/0);
    auto It = SymMemo.find(Key);
    if (It != SymMemo.end())
      return It->second;
    // Seed with 0: the grammar is cycle-free, so a recursive query of
    // the same (S, i, j) cannot contribute trees... but it cannot occur
    // at all, because a cycle-free grammar never derives S from S over
    // the same span. Seeding keeps the lookup structure simple.
    SymMemo.emplace(Key, 0);
    uint64_t Total = 0;
    for (ProductionId P : G.productionsOf(S))
      Total = satAdd(Total, seqCount(P, 0, I, J));
    SymMemo[Key] = Total;
    return Total;
  }

private:
  /// Trees deriving Input[i, j) from the rhs suffix of production P
  /// starting at position Pos.
  uint64_t seqCount(ProductionId P, uint32_t Pos, uint32_t I, uint32_t J) {
    const Production &Prod = G.production(P);
    if (Pos == Prod.Rhs.size())
      return I == J ? 1 : 0;
    uint64_t Key = key(P, I, J, /*Tag=*/1, Pos);
    auto It = SeqMemo.find(Key);
    if (It != SeqMemo.end())
      return It->second;
    SeqMemo.emplace(Key, 0);
    uint64_t Total = 0;
    SymbolId Head = Prod.Rhs[Pos];
    for (uint32_t Mid = I; Mid <= J; ++Mid) {
      uint64_t Left = symbolCount(Head, I, Mid);
      if (Left == 0)
        continue;
      uint64_t Right = seqCount(P, Pos + 1, Mid, J);
      Total = satAdd(Total, satMul(Left, Right));
    }
    SeqMemo[Key] = Total;
    return Total;
  }

  static uint64_t key(uint32_t A, uint32_t I, uint32_t J, uint32_t Tag,
                      uint32_t Pos) {
    // Inputs in tests are short (< 2^12); ids < 2^20.
    return (uint64_t(A) << 44) | (uint64_t(Pos) << 32) |
           (uint64_t(Tag) << 28) | (uint64_t(I) << 14) | J;
  }

  const Grammar &G;
  std::span<const SymbolId> Input;
  std::unordered_map<uint64_t, uint64_t> SymMemo;
  std::unordered_map<uint64_t, uint64_t> SeqMemo;
};

} // namespace

std::optional<DerivationCount>
lalr::countParseTrees(const Grammar &G, std::span<const SymbolId> Sentence) {
  if (hasCycle(G))
    return std::nullopt;
  // The key packing above bounds spans to 2^14.
  if (Sentence.size() >= (1u << 14))
    return std::nullopt;

  // A terminal symbol deriving an empty span recurses through epsilon
  // productions; with no cycles, nullable recursion terminates because
  // every recursive step consumes a production position or splits the
  // span... except same-span nonterminal recursion through nullable
  // siblings: A -> B C with B nullable re-queries C over the same span,
  // which is fine (C != A chain is acyclic by the no-cycle guarantee).
  Counter C(G, Sentence);
  DerivationCount Out;
  Out.Count = C.symbolCount(G.startSymbol(), 0,
                            static_cast<uint32_t>(Sentence.size()));
  return Out;
}
