//===- grammar/Grammar.h - Immutable context-free grammar -------*- C++ -*-===//
///
/// \file
/// The frozen, augmented context-free grammar that every analysis in this
/// library consumes. Instances are created by GrammarBuilder (programmatic
/// API) or GrammarParser (the .y-dialect front end); once built, a Grammar
/// never changes, so analyses can cache results keyed by reference.
///
/// Layout invariants (checked by assertions and relied on everywhere):
///   * symbol ids [0, numTerminals()) are terminals; id 0 is "$end";
///   * symbol ids [numTerminals(), numSymbols()) are nonterminals;
///     the last nonterminal is the augmented start "$accept";
///   * production 0 is "$accept -> start" (the augmentation production);
///     reducing it on $end is the accept action.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_GRAMMAR_H
#define LALR_GRAMMAR_GRAMMAR_H

#include "grammar/Symbol.h"

#include <cassert>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lalr {

/// One production A -> X1 ... Xn. Rhs may be empty (an epsilon production).
struct Production {
  ProductionId Id = 0;
  SymbolId Lhs = InvalidSymbol;
  std::vector<SymbolId> Rhs;
  /// Terminal whose precedence governs this production in conflict
  /// resolution: the %prec token if given, else the rightmost terminal of
  /// Rhs, else InvalidSymbol.
  SymbolId PrecSymbol = InvalidSymbol;

  size_t length() const { return Rhs.size(); }
  bool isEpsilon() const { return Rhs.empty(); }
};

/// A frozen, augmented context-free grammar.
class Grammar {
public:
  /// \name Symbol space
  /// @{
  size_t numTerminals() const { return NumTerminals; }
  size_t numNonterminals() const { return Names.size() - NumTerminals; }
  size_t numSymbols() const { return Names.size(); }

  bool isTerminal(SymbolId S) const {
    assert(S < numSymbols() && "symbol id out of range");
    return S < NumTerminals;
  }
  bool isNonterminal(SymbolId S) const { return !isTerminal(S); }

  /// The end-of-input terminal "$end".
  SymbolId eofSymbol() const { return 0; }
  /// The augmented start nonterminal "$accept" (always the last symbol).
  SymbolId acceptSymbol() const {
    return static_cast<SymbolId>(numSymbols() - 1);
  }
  /// The user's start nonterminal.
  SymbolId startSymbol() const { return Start; }

  /// Dense index of a nonterminal in [0, numNonterminals()).
  uint32_t ntIndex(SymbolId S) const {
    assert(isNonterminal(S) && "ntIndex of a terminal");
    return S - static_cast<uint32_t>(NumTerminals);
  }
  /// Inverse of ntIndex.
  SymbolId ntSymbol(uint32_t NtIdx) const {
    assert(NtIdx < numNonterminals() && "nonterminal index out of range");
    return static_cast<SymbolId>(NumTerminals + NtIdx);
  }

  const std::string &name(SymbolId S) const {
    assert(S < numSymbols() && "symbol id out of range");
    return Names[S];
  }

  /// Finds a symbol by spelling; returns InvalidSymbol if absent. This is
  /// how clients of GrammarBuilder recover frozen ids (builder handles for
  /// nonterminals are remapped during build()).
  SymbolId findSymbol(std::string_view Name) const;

  /// Declared precedence of a terminal (Level 0 if undeclared).
  const Precedence &precedence(SymbolId Terminal) const {
    assert(isTerminal(Terminal) && "precedence of a nonterminal");
    return Precedences[Terminal];
  }
  /// @}

  /// \name Productions
  /// @{
  size_t numProductions() const { return Productions.size(); }

  const Production &production(ProductionId P) const {
    assert(P < Productions.size() && "production id out of range");
    return Productions[P];
  }

  /// Ids of the productions whose left-hand side is \p Nt.
  std::span<const ProductionId> productionsOf(SymbolId Nt) const {
    assert(isNonterminal(Nt) && "productionsOf of a terminal");
    return ProductionsByNt[ntIndex(Nt)];
  }

  /// The augmentation production $accept -> start.
  const Production &acceptProduction() const { return Productions[0]; }
  /// @}

  /// Total number of symbols on all right-hand sides (a standard grammar
  /// size measure, |G| = sum of (1 + |rhs|)).
  size_t grammarSize() const;

  /// Human-readable one-line rendering "lhs -> x y z" of a production.
  std::string productionToString(ProductionId P) const;

  /// Optional name for reports; set by the front ends.
  const std::string &grammarName() const { return GrammarName; }

  /// %expect value: the number of unresolved shift/reduce conflicts the
  /// grammar author declared acceptable, or -1 when not declared.
  /// Consumers (grammar_report, generators) compare it against the built
  /// table.
  int expectedShiftReduce() const { return ExpectedSr; }

private:
  friend class GrammarBuilder;
  /// grammar/GrammarEdit.cpp: applyGrammarEdit produces a near-copy with
  /// identical symbol/production ids, which the builder's canonical
  /// re-layout cannot guarantee (e.g. mixed associativity within one
  /// precedence level is representable here but not constructible
  /// through precedenceLevel()).
  friend struct GrammarEditAccess;
  Grammar() = default;

  std::string GrammarName;
  size_t NumTerminals = 0;
  std::vector<std::string> Names;
  std::vector<Precedence> Precedences; // indexed by terminal id
  std::vector<Production> Productions;
  std::vector<std::vector<ProductionId>> ProductionsByNt;
  std::unordered_map<std::string, SymbolId> IdByName;
  SymbolId Start = InvalidSymbol;
  int ExpectedSr = -1;
};

} // namespace lalr

#endif // LALR_GRAMMAR_GRAMMAR_H
