//===- grammar/GrammarLexer.cpp - Lexer for the .y dialect ------------------===//

#include "grammar/GrammarLexer.h"

#include <cctype>

using namespace lalr;

const char *lalr::tokenKindName(GTokKind Kind) {
  switch (Kind) {
  case GTokKind::Ident:
    return "identifier";
  case GTokKind::Literal:
    return "literal";
  case GTokKind::Number:
    return "number";
  case GTokKind::Colon:
    return "':'";
  case GTokKind::Pipe:
    return "'|'";
  case GTokKind::Semi:
    return "';'";
  case GTokKind::PercentPercent:
    return "'%%'";
  case GTokKind::KwToken:
    return "%token";
  case GTokKind::KwLeft:
    return "%left";
  case GTokKind::KwRight:
    return "%right";
  case GTokKind::KwNonassoc:
    return "%nonassoc";
  case GTokKind::KwStart:
    return "%start";
  case GTokKind::KwPrec:
    return "%prec";
  case GTokKind::KwEmpty:
    return "%empty";
  case GTokKind::KwName:
    return "%name";
  case GTokKind::KwExpect:
    return "%expect";
  case GTokKind::EndOfFile:
    return "end of file";
  case GTokKind::Invalid:
    return "invalid token";
  }
  return "unknown";
}

char GrammarLexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void GrammarLexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Open = location();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Open, "unterminated block comment");
      continue;
    }
    break;
  }
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}
static bool isIdentCont(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

GToken GrammarLexer::next() {
  skipTrivia();
  GToken Tok;
  Tok.Loc = location();
  if (Pos >= Source.size()) {
    Tok.Kind = GTokKind::EndOfFile;
    return Tok;
  }

  char C = peek();
  switch (C) {
  case ':':
    advance();
    Tok.Kind = GTokKind::Colon;
    Tok.Text = ":";
    return Tok;
  case '|':
    advance();
    Tok.Kind = GTokKind::Pipe;
    Tok.Text = "|";
    return Tok;
  case ';':
    advance();
    Tok.Kind = GTokKind::Semi;
    Tok.Text = ";";
    return Tok;
  default:
    break;
  }

  if (C == '%') {
    advance();
    if (peek() == '%') {
      advance();
      Tok.Kind = GTokKind::PercentPercent;
      Tok.Text = "%%";
      return Tok;
    }
    std::string Word;
    while (Pos < Source.size() && isIdentCont(peek()))
      Word.push_back(advance());
    Tok.Text = "%" + Word;
    if (Word == "token")
      Tok.Kind = GTokKind::KwToken;
    else if (Word == "left")
      Tok.Kind = GTokKind::KwLeft;
    else if (Word == "right")
      Tok.Kind = GTokKind::KwRight;
    else if (Word == "nonassoc")
      Tok.Kind = GTokKind::KwNonassoc;
    else if (Word == "start")
      Tok.Kind = GTokKind::KwStart;
    else if (Word == "prec")
      Tok.Kind = GTokKind::KwPrec;
    else if (Word == "empty")
      Tok.Kind = GTokKind::KwEmpty;
    else if (Word == "name")
      Tok.Kind = GTokKind::KwName;
    else if (Word == "expect")
      Tok.Kind = GTokKind::KwExpect;
    else {
      Diags.error(Tok.Loc, "unknown directive '%" + Word + "'");
      Tok.Kind = GTokKind::Invalid;
    }
    return Tok;
  }

  if (C == '\'' || C == '"') {
    char Quote = advance();
    std::string Body;
    bool Closed = false;
    while (Pos < Source.size()) {
      char D = advance();
      if (D == Quote) {
        Closed = true;
        break;
      }
      if (D == '\n')
        break;
      if (D == '\\' && Pos < Source.size())
        D = advance();
      Body.push_back(D);
    }
    if (!Closed) {
      Diags.error(Tok.Loc, "unterminated literal");
      Tok.Kind = GTokKind::Invalid;
      return Tok;
    }
    if (Body.empty()) {
      Diags.error(Tok.Loc, "empty literal");
      Tok.Kind = GTokKind::Invalid;
      return Tok;
    }
    // The symbol keeps its quotes so literals can never collide with
    // identifier-named tokens.
    Tok.Kind = GTokKind::Literal;
    Tok.Text = "'" + Body + "'";
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Digits;
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
    Tok.Kind = GTokKind::Number;
    Tok.Text = std::move(Digits);
    return Tok;
  }

  if (isIdentStart(C)) {
    std::string Word;
    while (Pos < Source.size() && isIdentCont(peek()))
      Word.push_back(advance());
    Tok.Kind = GTokKind::Ident;
    Tok.Text = std::move(Word);
    return Tok;
  }

  Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
  advance();
  Tok.Kind = GTokKind::Invalid;
  return Tok;
}
