//===- grammar/Transforms.cpp - Grammar transformations ---------------------===//

#include "grammar/Transforms.h"

#include "grammar/Analysis.h"
#include "grammar/GrammarBuilder.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <utility>

using namespace lalr;

namespace {

/// Copies the user-visible part of \p G (skipping $end/$accept and the
/// augmentation production) into \p Builder, keeping only productions for
/// which \p KeepProduction returns true and only symbols for which
/// \p KeepSymbol returns true. Returns false if the start symbol was
/// dropped.
template <typename KeepSymbolT, typename KeepProductionT>
bool copyFiltered(const Grammar &G, GrammarBuilder &Builder,
                  KeepSymbolT KeepSymbol, KeepProductionT KeepProduction) {
  if (!KeepSymbol(G.startSymbol()))
    return false;
  // Declare terminals first so precedence levels can be re-established in
  // order. Builder levels are assigned by call order, so walk levels.
  uint16_t MaxLevel = 0;
  for (SymbolId T = 1; T < G.numTerminals(); ++T)
    MaxLevel = std::max(MaxLevel, G.precedence(T).Level);
  for (uint16_t L = 1; L <= MaxLevel; ++L) {
    std::vector<SymbolId> LevelToks;
    Assoc A = Assoc::None;
    for (SymbolId T = 1; T < G.numTerminals(); ++T)
      if (KeepSymbol(T) && G.precedence(T).Level == L) {
        A = G.precedence(T).Associativity;
        LevelToks.push_back(Builder.terminal(G.name(T)));
      }
    if (!LevelToks.empty())
      Builder.precedenceLevel(A, LevelToks);
  }

  for (ProductionId PId = 1; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    if (!KeepProduction(P))
      continue;
    SymbolId Lhs = Builder.nonterminal(G.name(P.Lhs));
    std::vector<SymbolId> Rhs;
    Rhs.reserve(P.Rhs.size());
    for (SymbolId S : P.Rhs)
      Rhs.push_back(G.isTerminal(S) ? Builder.terminal(G.name(S))
                                    : Builder.nonterminal(G.name(S)));
    SymbolId PrecTok = InvalidSymbol;
    if (P.PrecSymbol != InvalidSymbol && KeepSymbol(P.PrecSymbol))
      PrecTok = Builder.terminal(G.name(P.PrecSymbol));
    Builder.production(Lhs, std::move(Rhs), PrecTok);
  }
  Builder.startSymbol(Builder.nonterminal(G.name(G.startSymbol())));
  return true;
}

} // namespace

std::optional<Grammar> lalr::reduceGrammar(const Grammar &G,
                                           DiagnosticEngine &Diags) {
  std::vector<bool> Productive = computeProductive(G);
  if (!Productive[G.ntIndex(G.startSymbol())]) {
    Diags.error({}, "start symbol '" + G.name(G.startSymbol()) +
                        "' derives no terminal string; the grammar "
                        "generates the empty language");
    return std::nullopt;
  }

  // A production survives pass 1 if every nonterminal in it is productive.
  auto ProductionProductive = [&](const Production &P) {
    for (SymbolId S : P.Rhs)
      if (G.isNonterminal(S) && !Productive[G.ntIndex(S)])
        return false;
    return true;
  };

  // Pass 2: reachability over the grammar restricted to productive
  // productions.
  std::vector<bool> Reach(G.numSymbols(), false);
  std::vector<SymbolId> Work;
  Reach[G.startSymbol()] = true;
  Work.push_back(G.startSymbol());
  while (!Work.empty()) {
    SymbolId Nt = Work.back();
    Work.pop_back();
    for (ProductionId PId : G.productionsOf(Nt)) {
      const Production &P = G.production(PId);
      if (!ProductionProductive(P))
        continue;
      for (SymbolId S : P.Rhs)
        if (!Reach[S]) {
          Reach[S] = true;
          if (G.isNonterminal(S))
            Work.push_back(S);
        }
    }
  }

  GrammarBuilder Builder(G.grammarName());
  bool Ok = copyFiltered(
      G, Builder, [&](SymbolId S) { return Reach[S] || S == G.startSymbol(); },
      [&](const Production &P) {
        return Reach[P.Lhs] && ProductionProductive(P);
      });
  assert(Ok && "start symbol must survive reduction here");
  (void)Ok;
  return std::move(Builder).build(Diags);
}

bool lalr::isEpsilonFree(const Grammar &G) {
  for (ProductionId PId = 1; PId < G.numProductions(); ++PId)
    if (G.production(PId).isEpsilon())
      return false;
  return true;
}

std::optional<Grammar>
lalr::removeEpsilonRules(const Grammar &G, DiagnosticEngine &Diags,
                         unsigned MaxNullablePositions) {
  GrammarAnalysis A(G);
  GrammarBuilder Builder(G.grammarName());

  // Re-establish precedence declarations.
  uint16_t MaxLevel = 0;
  for (SymbolId T = 1; T < G.numTerminals(); ++T)
    MaxLevel = std::max(MaxLevel, G.precedence(T).Level);
  for (uint16_t L = 1; L <= MaxLevel; ++L) {
    std::vector<SymbolId> LevelToks;
    Assoc Asc = Assoc::None;
    for (SymbolId T = 1; T < G.numTerminals(); ++T)
      if (G.precedence(T).Level == L) {
        Asc = G.precedence(T).Associativity;
        LevelToks.push_back(Builder.terminal(G.name(T)));
      }
    if (!LevelToks.empty())
      Builder.precedenceLevel(Asc, LevelToks);
  }

  // Track which (lhs, rhs) pairs we already emitted: expansions of
  // different productions can collide.
  std::set<std::pair<std::string, std::vector<std::string>>> Emitted;
  auto emit = [&](SymbolId LhsOld, const std::vector<SymbolId> &RhsOld) {
    std::vector<std::string> Key;
    for (SymbolId S : RhsOld)
      Key.push_back(G.name(S));
    if (!Emitted.insert({G.name(LhsOld), Key}).second)
      return;
    SymbolId Lhs = Builder.nonterminal(G.name(LhsOld));
    std::vector<SymbolId> Rhs;
    for (SymbolId S : RhsOld)
      Rhs.push_back(G.isTerminal(S) ? Builder.terminal(G.name(S))
                                    : Builder.nonterminal(G.name(S)));
    Builder.production(Lhs, std::move(Rhs));
  };

  for (ProductionId PId = 1; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    // Positions of nullable nonterminals in the body. A "null-only"
    // nonterminal (nullable with empty FIRST, i.e. L(B) = {epsilon}) is
    // always omitted rather than enumerated: keeping it would reference a
    // nonterminal that loses all of its productions.
    std::vector<size_t> NullablePos;
    std::vector<bool> AlwaysOmit(P.Rhs.size(), false);
    for (size_t I = 0; I < P.Rhs.size(); ++I) {
      if (!A.isNullable(P.Rhs[I]))
        continue;
      if (A.first(P.Rhs[I]).empty())
        AlwaysOmit[I] = true;
      else
        NullablePos.push_back(I);
    }
    if (NullablePos.size() > MaxNullablePositions) {
      Diags.error({}, "production '" + G.productionToString(PId) +
                          "' has too many nullable positions (" +
                          std::to_string(NullablePos.size()) +
                          ") for epsilon elimination");
      return std::nullopt;
    }
    // Enumerate all subsets of nullable positions to omit.
    const size_t NumSubsets = size_t(1) << NullablePos.size();
    for (size_t Mask = 0; Mask < NumSubsets; ++Mask) {
      std::vector<SymbolId> Rhs;
      for (size_t I = 0; I < P.Rhs.size(); ++I) {
        if (AlwaysOmit[I])
          continue;
        auto It = std::find(NullablePos.begin(), NullablePos.end(), I);
        if (It != NullablePos.end()) {
          size_t Bit = It - NullablePos.begin();
          if (Mask & (size_t(1) << Bit))
            continue; // omit this nullable occurrence
        }
        Rhs.push_back(P.Rhs[I]);
      }
      if (Rhs.empty())
        continue; // never emit an epsilon production
      emit(P.Lhs, Rhs);
    }
  }

  Builder.startSymbol(Builder.nonterminal(G.name(G.startSymbol())));
  std::optional<Grammar> Out = std::move(Builder).build(Diags);
  if (!Out)
    return std::nullopt;
  // Nonterminals that only derived epsilon lose all their productions and
  // with them any production mentioning them; a reduction pass cleans
  // those up. (build() has already failed above if some nonterminal kept
  // references but lost all productions; in that case fall through with
  // the diagnostics.)
  DiagnosticEngine ReduceDiags;
  std::optional<Grammar> Reduced = reduceGrammar(*Out, ReduceDiags);
  return Reduced ? std::move(Reduced) : std::move(Out);
}
