//===- grammar/GrammarEdit.cpp - Layered hashes and grammar edits ----------===//

#include "grammar/GrammarEdit.h"

#include <algorithm>
#include <charconv>

using namespace lalr;

namespace lalr {

/// Private-field access for applyGrammarEdit (befriended by Grammar): the
/// edits below must preserve symbol and production ids bit-for-bit so the
/// delta classifier sees only the layer that actually changed, and the
/// canonicalizing GrammarBuilder cannot express every reachable state
/// (mixed associativity within one precedence level, preserved level
/// gaps).
struct GrammarEditAccess {
  static std::vector<Precedence> &precedences(Grammar &G) {
    return G.Precedences;
  }
  static std::vector<Production> &productions(Grammar &G) {
    return G.Productions;
  }
  static std::vector<std::vector<ProductionId>> &productionsByNt(Grammar &G) {
    return G.ProductionsByNt;
  }
  static int &expectedSr(Grammar &G) { return G.ExpectedSr; }
};

} // namespace lalr

//===----------------------------------------------------------------------===//
// Layered hashing
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t hashBytes(uint64_t H, const void *Data, size_t N) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t hashU64(uint64_t H, uint64_t V) { return hashBytes(H, &V, sizeof V); }

uint64_t hashString(uint64_t H, const std::string &S) {
  H = hashU64(H, S.size());
  return hashBytes(H, S.data(), S.size());
}

uint64_t hashProduction(const Production &P) {
  uint64_t H = FnvOffset;
  H = hashU64(H, P.Lhs);
  H = hashU64(H, P.Rhs.size());
  for (SymbolId S : P.Rhs)
    H = hashU64(H, S);
  return H;
}

/// The rightmost terminal of \p Rhs — the default %prec a production gets
/// when none is declared. Mirrors GrammarBuilder::build's inference.
SymbolId inferredPrecSymbol(const Grammar &G, std::span<const SymbolId> Rhs) {
  for (size_t I = Rhs.size(); I != 0; --I)
    if (G.isTerminal(Rhs[I - 1]))
      return Rhs[I - 1];
  return InvalidSymbol;
}

} // namespace

GrammarLayerHashes lalr::computeGrammarLayerHashes(const Grammar &G) {
  GrammarLayerHashes Out;

  uint64_t H = FnvOffset;
  H = hashU64(H, G.numTerminals());
  H = hashU64(H, G.numSymbols());
  H = hashU64(H, G.startSymbol());
  for (SymbolId S = 0; S < G.numSymbols(); ++S)
    H = hashString(H, G.name(S));
  Out.SymbolsHash = H;

  Out.ProductionHashes.reserve(G.numProductions());
  H = FnvOffset;
  for (ProductionId P = 0; P < G.numProductions(); ++P) {
    uint64_t PH = hashProduction(G.production(P));
    Out.ProductionHashes.push_back(PH);
    H = hashU64(H, PH);
  }
  Out.ProductionSetHash = H;

  H = FnvOffset;
  for (SymbolId T = 0; T < G.numTerminals(); ++T) {
    const Precedence &P = G.precedence(T);
    H = hashU64(H, P.Level);
    H = hashU64(H, static_cast<uint64_t>(P.Associativity));
  }
  for (ProductionId P = 0; P < G.numProductions(); ++P)
    H = hashU64(H, G.production(P).PrecSymbol);
  H = hashU64(H, static_cast<uint64_t>(G.expectedShiftReduce()));
  Out.ConflictHash = H;

  return Out;
}

const char *lalr::grammarEditClassName(GrammarEditClass C) {
  switch (C) {
  case GrammarEditClass::Identical:
    return "identical";
  case GrammarEditClass::ConflictLocal:
    return "conflict-local";
  case GrammarEditClass::ProductionLocal:
    return "production-local";
  case GrammarEditClass::Structural:
    return "structural";
  }
  return "unknown";
}

GrammarDelta lalr::computeGrammarDelta(const GrammarLayerHashes &Old,
                                       const GrammarLayerHashes &New) {
  GrammarDelta D;
  D.OldHashes = Old;
  D.NewHashes = New;

  // A symbol-layer change (or a production removal, which renumbers ids)
  // invalidates the id spaces every artifact indexes by.
  if (New.SymbolsHash != Old.SymbolsHash ||
      New.ProductionHashes.size() < Old.ProductionHashes.size()) {
    D.Class = GrammarEditClass::Structural;
    return D;
  }

  for (size_t P = 0; P < Old.ProductionHashes.size(); ++P)
    if (New.ProductionHashes[P] != Old.ProductionHashes[P])
      D.ChangedProductions.push_back(static_cast<ProductionId>(P));
  for (size_t P = Old.ProductionHashes.size();
       P < New.ProductionHashes.size(); ++P)
    D.ChangedProductions.push_back(static_cast<ProductionId>(P));

  if (D.ChangedProductions.empty()) {
    D.Class = New.ConflictHash == Old.ConflictHash
                  ? GrammarEditClass::Identical
                  : GrammarEditClass::ConflictLocal;
    return D;
  }
  if (D.ChangedProductions.size() > MaxProductionLocalEdits) {
    D.ChangedProductions.clear();
    D.Class = GrammarEditClass::Structural;
    return D;
  }
  D.Class = GrammarEditClass::ProductionLocal;
  return D;
}

GrammarDelta lalr::computeGrammarDelta(const Grammar &Old,
                                       const Grammar &New) {
  GrammarDelta D = computeGrammarDelta(computeGrammarLayerHashes(Old),
                                       computeGrammarLayerHashes(New));
  if (D.Class == GrammarEditClass::ProductionLocal) {
    for (ProductionId P : D.ChangedProductions)
      D.DirtyNts.push_back(New.production(P).Lhs);
    std::sort(D.DirtyNts.begin(), D.DirtyNts.end());
    D.DirtyNts.erase(std::unique(D.DirtyNts.begin(), D.DirtyNts.end()),
                     D.DirtyNts.end());
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Edit parsing
//===----------------------------------------------------------------------===//

namespace {

bool parseUnsigned(const std::string &Tok, uint64_t &Out) {
  auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), Out);
  return Ec == std::errc() && Ptr == Tok.data() + Tok.size();
}

bool parseAssoc(const std::string &Tok, Assoc &Out) {
  if (Tok == "left")
    Out = Assoc::Left;
  else if (Tok == "right")
    Out = Assoc::Right;
  else if (Tok == "nonassoc")
    Out = Assoc::NonAssoc;
  else if (Tok == "none")
    Out = Assoc::None;
  else
    return false;
  return true;
}

} // namespace

std::optional<GrammarEdit>
lalr::parseGrammarEdit(std::span<const std::string> Toks, std::string &Error) {
  if (Toks.empty()) {
    Error = "empty edit";
    return std::nullopt;
  }
  GrammarEdit E;
  const std::string &Op = Toks[0];
  uint64_t N = 0;
  if (Op == "prec") {
    // prec <token> <left|right|nonassoc|none> <level>
    if (Toks.size() != 4) {
      Error = "prec wants: prec <token> <assoc> <level>";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::SetPrecedence;
    E.Symbol = Toks[1];
    if (!parseAssoc(Toks[2], E.Associativity)) {
      Error = "bad associativity '" + Toks[2] +
              "' (want left|right|nonassoc|none)";
      return std::nullopt;
    }
    if (!parseUnsigned(Toks[3], N) || N > UINT16_MAX) {
      Error = "bad precedence level '" + Toks[3] + "'";
      return std::nullopt;
    }
    E.Level = static_cast<uint16_t>(N);
    return E;
  }
  if (Op == "prodprec") {
    // prodprec <prod-id> <token | '-'>
    if (Toks.size() != 3 || !parseUnsigned(Toks[1], N)) {
      Error = "prodprec wants: prodprec <prod-id> <token|->";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::SetProductionPrec;
    E.Prod = static_cast<ProductionId>(N);
    if (Toks[2] != "-")
      E.PrecToken = Toks[2];
    return E;
  }
  if (Op == "rhs") {
    // rhs <prod-id> [sym...]
    if (Toks.size() < 2 || !parseUnsigned(Toks[1], N)) {
      Error = "rhs wants: rhs <prod-id> [sym...]";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::SetRhs;
    E.Prod = static_cast<ProductionId>(N);
    E.Rhs.assign(Toks.begin() + 2, Toks.end());
    return E;
  }
  if (Op == "add-prod") {
    // add-prod <lhs> [sym...]
    if (Toks.size() < 2) {
      Error = "add-prod wants: add-prod <lhs> [sym...]";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::AddProduction;
    E.Symbol = Toks[1];
    E.Rhs.assign(Toks.begin() + 2, Toks.end());
    return E;
  }
  if (Op == "rm-prod") {
    if (Toks.size() != 2 || !parseUnsigned(Toks[1], N)) {
      Error = "rm-prod wants: rm-prod <prod-id>";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::RemoveProduction;
    E.Prod = static_cast<ProductionId>(N);
    return E;
  }
  if (Op == "expect") {
    if (Toks.size() != 2 || !parseUnsigned(Toks[1], N) || N > INT32_MAX) {
      Error = "expect wants: expect <n>";
      return std::nullopt;
    }
    E.K = GrammarEdit::Kind::SetExpect;
    E.Expect = static_cast<int>(N);
    return E;
  }
  Error = "unknown edit op '" + Op +
          "' (want prec|prodprec|rhs|add-prod|rm-prod|expect)";
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Edit application
//===----------------------------------------------------------------------===//

namespace {

SourceLocation noLoc() { return SourceLocation(); }

/// Resolves a spelled symbol against \p G, reporting when absent. Edits
/// deliberately cannot introduce new symbols: the symbol layer stays
/// frozen, which is what keeps small edits out of the Structural class.
SymbolId resolveSymbol(const Grammar &G, const std::string &Name,
                       DiagnosticEngine &Diags) {
  SymbolId S = G.findSymbol(Name);
  if (S == InvalidSymbol)
    Diags.error(noLoc(), "edit references unknown symbol '" + Name + "'");
  return S;
}

bool checkUserProduction(const Grammar &G, ProductionId P,
                         DiagnosticEngine &Diags) {
  if (P == 0) {
    Diags.error(noLoc(), "production 0 is the augmentation and cannot be "
                         "edited");
    return false;
  }
  if (P >= G.numProductions()) {
    Diags.error(noLoc(), "production id " + std::to_string(P) +
                             " out of range (grammar has " +
                             std::to_string(G.numProductions()) +
                             " productions)");
    return false;
  }
  return true;
}

std::optional<std::vector<SymbolId>>
resolveRhs(const Grammar &G, const std::vector<std::string> &Names,
           DiagnosticEngine &Diags) {
  std::vector<SymbolId> Rhs;
  Rhs.reserve(Names.size());
  for (const std::string &N : Names) {
    SymbolId S = resolveSymbol(G, N, Diags);
    if (S == InvalidSymbol)
      return std::nullopt;
    if (S == G.eofSymbol() || S == G.acceptSymbol()) {
      Diags.error(noLoc(), "'" + N + "' cannot appear on a right-hand side");
      return std::nullopt;
    }
    Rhs.push_back(S);
  }
  return Rhs;
}

} // namespace

std::optional<Grammar> lalr::applyGrammarEdit(const Grammar &G,
                                              const GrammarEdit &E,
                                              DiagnosticEngine &Diags) {
  Grammar Out = G;
  switch (E.K) {
  case GrammarEdit::Kind::SetPrecedence: {
    SymbolId T = resolveSymbol(G, E.Symbol, Diags);
    if (T == InvalidSymbol)
      return std::nullopt;
    if (!G.isTerminal(T)) {
      Diags.error(noLoc(),
                  "precedence of nonterminal '" + E.Symbol + "'");
      return std::nullopt;
    }
    Precedence P;
    P.Level = E.Level;
    P.Associativity = E.Level == 0 ? Assoc::None : E.Associativity;
    GrammarEditAccess::precedences(Out)[T] = P;
    return Out;
  }

  case GrammarEdit::Kind::SetProductionPrec: {
    if (!checkUserProduction(G, E.Prod, Diags))
      return std::nullopt;
    Production &P = GrammarEditAccess::productions(Out)[E.Prod];
    if (E.PrecToken.empty()) {
      P.PrecSymbol = inferredPrecSymbol(G, P.Rhs);
    } else {
      SymbolId T = resolveSymbol(G, E.PrecToken, Diags);
      if (T == InvalidSymbol)
        return std::nullopt;
      if (!G.isTerminal(T)) {
        Diags.error(noLoc(), "%prec symbol '" + E.PrecToken +
                                 "' is not a terminal");
        return std::nullopt;
      }
      P.PrecSymbol = T;
    }
    return Out;
  }

  case GrammarEdit::Kind::SetRhs: {
    if (!checkUserProduction(G, E.Prod, Diags))
      return std::nullopt;
    auto Rhs = resolveRhs(G, E.Rhs, Diags);
    if (!Rhs)
      return std::nullopt;
    Production &P = GrammarEditAccess::productions(Out)[E.Prod];
    // A %prec declared explicitly (detectable as "differs from the
    // inferred default") survives the rewrite; an inferred one is
    // re-inferred from the new body — the same rule GrammarPrinter uses
    // to decide whether %prec must be printed.
    bool ExplicitPrec = P.PrecSymbol != inferredPrecSymbol(G, P.Rhs);
    P.Rhs = std::move(*Rhs);
    if (!ExplicitPrec)
      P.PrecSymbol = inferredPrecSymbol(G, P.Rhs);
    return Out;
  }

  case GrammarEdit::Kind::AddProduction: {
    SymbolId Lhs = resolveSymbol(G, E.Symbol, Diags);
    if (Lhs == InvalidSymbol)
      return std::nullopt;
    if (!G.isNonterminal(Lhs) || Lhs == G.acceptSymbol()) {
      Diags.error(noLoc(), "add-prod left-hand side '" + E.Symbol +
                               "' is not a user nonterminal");
      return std::nullopt;
    }
    auto Rhs = resolveRhs(G, E.Rhs, Diags);
    if (!Rhs)
      return std::nullopt;
    Production P;
    P.Id = static_cast<ProductionId>(G.numProductions());
    P.Lhs = Lhs;
    P.Rhs = std::move(*Rhs);
    P.PrecSymbol = inferredPrecSymbol(G, P.Rhs);
    GrammarEditAccess::productionsByNt(Out)[G.ntIndex(Lhs)].push_back(P.Id);
    GrammarEditAccess::productions(Out).push_back(std::move(P));
    return Out;
  }

  case GrammarEdit::Kind::RemoveProduction: {
    if (!checkUserProduction(G, E.Prod, Diags))
      return std::nullopt;
    SymbolId Lhs = G.production(E.Prod).Lhs;
    if (G.productionsOf(Lhs).size() == 1) {
      Diags.error(noLoc(), "removing production " + std::to_string(E.Prod) +
                               " leaves nonterminal '" + G.name(Lhs) +
                               "' without productions");
      return std::nullopt;
    }
    auto &Prods = GrammarEditAccess::productions(Out);
    Prods.erase(Prods.begin() + E.Prod);
    for (size_t I = 0; I < Prods.size(); ++I)
      Prods[I].Id = static_cast<ProductionId>(I);
    auto &ByNt = GrammarEditAccess::productionsByNt(Out);
    for (auto &Row : ByNt) {
      Row.erase(std::remove(Row.begin(), Row.end(), E.Prod), Row.end());
      for (ProductionId &P : Row)
        if (P > E.Prod)
          --P;
    }
    return Out;
  }

  case GrammarEdit::Kind::SetExpect:
    GrammarEditAccess::expectedSr(Out) = E.Expect;
    return Out;
  }
  Diags.error(noLoc(), "unhandled edit kind");
  return std::nullopt;
}
