//===- grammar/Analysis.h - Nullable / FIRST / FOLLOW -----------*- C++ -*-===//
///
/// \file
/// Classic grammar analyses used as substrates by every table-construction
/// method in the library:
///   * nullable(X): X derives the empty string — used by the DP `reads`
///     and `includes` relations;
///   * FIRST sets — used by canonical LR(1) item closures and the YACC
///     propagation baseline;
///   * FOLLOW sets — the SLR(1) baseline's look-ahead sets.
/// All fixpoints are computed eagerly at construction; a GrammarAnalysis is
/// immutable afterwards and cheap to query.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GRAMMAR_ANALYSIS_H
#define LALR_GRAMMAR_ANALYSIS_H

#include "grammar/Grammar.h"
#include "support/BitSet.h"

#include <span>
#include <vector>

namespace lalr {

/// Eagerly computed nullable/FIRST/FOLLOW facts about one grammar.
class GrammarAnalysis {
public:
  explicit GrammarAnalysis(const Grammar &G);

  const Grammar &grammar() const { return G; }

  /// \name Nullability
  /// @{
  /// True if symbol \p S derives epsilon (terminals never do).
  bool isNullable(SymbolId S) const {
    return G.isNonterminal(S) && NullableNt[G.ntIndex(S)];
  }
  /// True if every symbol of \p Seq is nullable (true for the empty
  /// sequence).
  bool isNullableSeq(std::span<const SymbolId> Seq) const;
  /// @}

  /// \name FIRST sets
  /// @{
  /// FIRST of a single symbol, as a bitset over terminal ids. For a
  /// terminal t this is {t}.
  const BitSet &first(SymbolId S) const { return FirstSets[S]; }

  /// FIRST of the sequence Seq[From..), not including epsilon (use
  /// isNullableSeq for that bit). This is the paper's FIRST(beta) used in
  /// LR(1) closures.
  BitSet firstOfSeq(std::span<const SymbolId> Seq, size_t From = 0) const;

  /// Appends FIRST(Seq[From..)) into \p Out; returns true if the whole
  /// suffix is nullable. This fused form is the hot path of LR(1)
  /// closure. \p Out's universe may be larger than the terminal count
  /// (extra sentinel slots are left untouched).
  bool addFirstOfSeq(BitSet &Out, std::span<const SymbolId> Seq,
                     size_t From = 0) const;
  /// @}

  /// \name FOLLOW sets
  /// @{
  /// FOLLOW of nonterminal \p Nt over terminal ids; FOLLOW($accept) is
  /// {$end}.
  const BitSet &follow(SymbolId Nt) const {
    return FollowSets[G.ntIndex(Nt)];
  }
  /// @}

private:
  void computeNullable();
  void computeFirst();
  void computeFollow();

  const Grammar &G;
  std::vector<bool> NullableNt;     // by nt index
  std::vector<BitSet> FirstSets;    // by symbol id, over terminals
  std::vector<BitSet> FollowSets;   // by nt index, over terminals
};

/// Returns, by nt index, whether each nonterminal is productive (derives
/// some terminal string).
std::vector<bool> computeProductive(const Grammar &G);

/// Returns, by symbol id, whether each symbol is reachable from $accept.
std::vector<bool> computeReachable(const Grammar &G);

/// Returns by nt index whether each nonterminal is left-recursive
/// (A =>+ A gamma). Used by grammar reports and the LL-side diagnostics.
std::vector<bool> computeLeftRecursive(const Grammar &G);

/// True if the grammar has a cycle (some A =>+ A). Cyclic grammars are
/// never LR(k); the DP solver independently detects them through a
/// nontrivial `reads`/`includes` structure, and this predicate is the
/// cheap syntactic check used in reports.
bool hasCycle(const Grammar &G);

} // namespace lalr

#endif // LALR_GRAMMAR_ANALYSIS_H
