//===- parse/ParseService.h - Parse traffic over cached tables --*- C++ -*-===//
///
/// \file
/// The parse-serving layer over BuildService: a ParseService accepts
/// parse requests ({grammar, input, driver, options}), resolves the
/// grammar through the shared ContextCache (so N requests against one
/// grammar pay one table build), and runs the input through one of the
/// four runtime drivers — the deterministic LR driver (over the
/// compressed table by default, the dense one on request), the GLR GSS
/// recognizer, the LL(1) predictive parser, or the Earley oracle.
///
/// Hot parses run over immutable *serving tables*: per
/// (grammar, driver, table kind, solver, dense) snapshots holding their
/// own Grammar copy plus the built table, cached in a small LRU beside
/// the context cache. A snapshot is keyed by the grammar's source hash,
/// so in-place grammar edits (PR 7's patch path) stale exactly the
/// snapshots of the edited grammar and nothing else — and because a
/// snapshot owns its grammar, a parse in flight is immune to a
/// concurrent edit swapping the cached context's grammar underneath it.
///
/// Requests are governed like builds: a per-request deadline (or the
/// service default) is armed on the cancellation token, BuildLimits
/// ceilings are merged field-by-field under the service defaults
/// (mergeBuildLimits), and the drivers poll a BuildGuard — so a runaway
/// GLR/Earley run on an adversarial input dies with a structured
/// BuildStatus (LimitExceeded naming gss_nodes / earley_items /
/// input_tokens, or DeadlineExceeded) instead of spinning. Shed and
/// killed requests are counted in ParseStats, which exports through the
/// same PipelineStats JSON pipeline as ServiceStats.
///
/// Typical use:
///
///   BuildService Build({.CacheCapacity = 8});
///   ParseService Parse(Build);
///   ParseResponse R = Parse.run({.GrammarName = "json",
///                                .Input = "'{' string ':' number '}'"});
///   // R.Accepted, R.Tokens, R.ParseUs, ...
///
/// See docs/SERVICE.md for the manifest front end (lalr_batchd's `parse`
/// token) and the serving-table staleness rules.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PARSE_PARSESERVICE_H
#define LALR_PARSE_PARSESERVICE_H

#include "parse/ParserKind.h"
#include "parser/ParserDriver.h"
#include "service/BuildService.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace lalr {

/// One parse request. The grammar is named by \p GrammarName (the cache
/// key); \p Source carries its .y text, or is empty to resolve the name
/// in the corpus registry — the same resolution rule as ServiceRequest.
struct ParseRequest {
  std::string GrammarName;
  std::string Source;
  /// The sentence to parse: whitespace-separated terminal spellings
  /// (literals may drop their quotes, "+" finds "'+'"), tokenized by
  /// tokenizeText against the resolved grammar.
  std::string Input;
  /// Which runtime driver runs the input.
  ParserKind Driver = ParserKind::Lr;
  /// Table configuration for the Lr driver (Kind, Solver, conflict
  /// policy) and governance for every driver (Limits, Cancel, Verify).
  /// Options.Compress is ignored — \p Dense decides the LR
  /// representation; Options.Threads is ignored like in BuildService.
  /// Any limit field left at 0 falls back to the service's
  /// Options::DefaultLimits.
  BuildOptions Options;
  /// Run the Lr driver over the dense ParseTable instead of the
  /// row-compressed CompressedTable (the default). Ignored by the other
  /// drivers. Dense and compressed runs accept exactly the same inputs;
  /// the differential tests assert it.
  bool Dense = false;
  /// Per-request deadline, milliseconds from acceptance; 0 = none.
  /// Covers grammar resolution, the table build (on a cold snapshot) and
  /// the parse itself. Armed on Options.Cancel (created when absent).
  double DeadlineMs = 0;
};

/// What one parse request produced. \p Ok distinguishes "the request
/// executed" from "the input was accepted": a syntactically invalid
/// input is Ok with Accepted = false and the errors attached, while an
/// unknown grammar, a failed table build, or a tripped limit/deadline is
/// not Ok and carries the structured BuildStatus.
struct ParseResponse {
  bool Ok = false;
  std::string Error;
  /// Structured outcome. Resolution failures are GrammarError; an
  /// aborted table build or parse carries Cancelled / DeadlineExceeded /
  /// LimitExceeded / Internal.
  BuildStatus Status;
  ParserKind Driver = ParserKind::Lr;

  /// The verdict: input is in L(G) as far as this driver can tell.
  bool Accepted = false;
  /// Syntax errors (LR/LL drivers report location + message; a tokenize
  /// failure surfaces as one error with the unknown lexeme).
  std::vector<ParseError> Errors;

  /// Whether the grammar's BuildContext was already cached (shared with
  /// build traffic through the same ContextCache).
  bool CacheHit = false;
  /// Whether the serving-table snapshot was already built — the flag the
  /// "N parses, one build" amortization tests assert on.
  bool TableHit = false;

  /// Input length in tokens (after tokenization).
  size_t Tokens = 0;
  /// LR: reductions performed; LL(1): productions of the leftmost
  /// derivation. 0 for the recognizer-only drivers.
  size_t Reductions = 0;
  /// GLR: total GSS nodes; Earley: total chart items — the parse-forest
  /// work measure the ambiguity benches report. 0 for LR/LL.
  size_t ForestNodes = 0;
  /// GLR only: peak parallel stacks and GSS merges (0 = deterministic).
  size_t PeakFrontier = 0;
  size_t Merges = 0;

  /// Time spent building the serving table for this request (0 on a
  /// table hit), the driver run itself, and the whole request,
  /// microseconds.
  double TableBuildUs = 0;
  double ParseUs = 0;
  double WallUs = 0;
};

/// Snapshot of a ParseService's lifetime counters. Plain data: take a
/// copy via ParseService::stats() and read it without locking.
struct ParseStats {
  uint64_t Requests = 0; ///< parse requests executed
  uint64_t Accepted = 0; ///< input in L(G)
  uint64_t Rejected = 0; ///< request ran, input not in L(G) (or no lex)
  uint64_t Failed = 0;   ///< request did not run to a verdict (!Ok)

  /// \name Robustness accounting (each also counted in Failed)
  /// @{
  uint64_t Expired = 0;     ///< deadline passed before or during the run
  uint64_t Cancelled = 0;   ///< token cancelled by the caller
  uint64_t LimitKilled = 0; ///< a BuildLimits ceiling tripped
  /// @}

  /// \name Serving-table cache
  /// @{
  uint64_t TableHits = 0;      ///< request reused a serving snapshot
  uint64_t TableBuilds = 0;    ///< request built (or rebuilt) one
  /// Snapshots dropped for any reason — the LRU bound, a stale-source
  /// replacement, or invalidateGrammar (the three paths sum here, so the
  /// count never undercounts after churn).
  uint64_t TableEvictions = 0;
  uint64_t ServingTables = 0;  ///< live snapshots at snapshot time
  /// Requests served from a snapshot (its build-use plus every hit),
  /// summed over live snapshots AND the retired accumulator — dropping a
  /// snapshot folds its serve count in rather than losing it, mirroring
  /// ContextCache's retired PipelineStats.
  uint64_t TableServes = 0;
  uint64_t RetiredTables = 0;  ///< snapshots folded into the accumulator
  /// @}

  /// \name Work measures
  /// @{
  uint64_t TokensParsed = 0; ///< input tokens across executed parses
  uint64_t ForestNodes = 0;  ///< GSS nodes + Earley items across runs
  /// @}

  /// Requests per driver, indexed by ParserKind.
  uint64_t DriverRequests[4] = {0, 0, 0, 0};

  /// Driver run time / serving-table build time / whole-request
  /// wall-clock, microseconds.
  double ParseUs = 0;
  double TableBuildUs = 0;
  double RequestUs = 0;

  /// Mean driver throughput; 0 without traffic.
  double tokensPerSecond() const {
    return ParseUs > 0 ? TokensParsed / (ParseUs / 1e6) : 0.0;
  }

  /// Serializes to one JSON object (all counters + timings; see
  /// toPipelineStats for the counter-name mapping).
  std::string toJson(bool Pretty = false) const;

  /// Folds the counters into \p Into as "parse_*" counters plus
  /// "parse-requests" / "parse-table-build" stages, producing one
  /// PipelineStats the standard StatsSink machinery can emit. \p Label
  /// becomes the stats label.
  PipelineStats toPipelineStats(std::string Label) const;
};

/// Human-readable multi-line listing (the batch driver's summary block).
std::string reportParseStats(const ParseStats &S);

/// Parse-serving front end over a BuildService's grammar cache.
/// Thread-safe: concurrent run() calls against hot grammars share
/// immutable snapshots lock-free; cold snapshots are built once under
/// the grammar's BuildMu (the same serialization builds use).
class ParseService {
public:
  struct Options {
    /// LRU bound on serving-table snapshots (clamped to >= 1). Distinct
    /// (grammar, driver, kind, solver, dense) combinations occupy
    /// distinct slots.
    size_t TableCapacity = 32;
    /// Service-wide ceilings merged under each request's Options.Limits
    /// (mergeBuildLimits: a nonzero request field wins; 0 inherits).
    BuildLimits DefaultLimits = {};
    /// Deadline applied to requests that carry none of their own
    /// (milliseconds; 0 = none).
    double DefaultDeadlineMs = 0;
  };

  /// Borrows \p Build (which must outlive this service) and shares its
  /// ContextCache: parse traffic and build traffic against one grammar
  /// amortize into the same BuildContext.
  ParseService(BuildService &Build, Options Opts);
  explicit ParseService(BuildService &Build)
      : ParseService(Build, Options{}) {}
  ~ParseService();

  ParseService(const ParseService &) = delete;
  ParseService &operator=(const ParseService &) = delete;

  /// Executes one request. Never throws; failures become !Ok responses
  /// with a structured Status.
  ParseResponse run(const ParseRequest &Request);

  /// Executes every request in order (Responses[i] answers Requests[i]).
  std::vector<ParseResponse> runBatch(std::span<const ParseRequest> Requests);

  /// The underlying build service (shared cache, build counters).
  BuildService &buildService() { return Build; }

  /// Drops every serving snapshot of \p GrammarName (all drivers/kinds);
  /// returns how many were dropped. Source-text changes need no explicit
  /// call — a request whose source hash differs from the snapshot's
  /// rebuilds it by itself.
  size_t invalidateGrammar(std::string_view GrammarName);

  /// Live serving snapshots (tests assert eviction behavior through it).
  size_t servingTableCount() const;

  /// Snapshot of the aggregate counters.
  ParseStats stats() const;

private:
  /// One immutable serving snapshot; defined in the .cpp.
  struct ServingTable;

  /// Resolves the serving snapshot for (Request, Source, Hash), building
  /// it under the grammar entry's BuildMu on a miss. Returns nullptr
  /// with Response.Status set on failure.
  std::shared_ptr<const ServingTable>
  acquireTable(const ParseRequest &Request, const BuildOptions &BO,
               std::string_view Source, uint64_t Hash,
               ParseResponse &Response);

  /// The one executor behind run(); fills \p Response.
  void execute(const ParseRequest &Request, ParseResponse &Response);

  BuildService &Build;
  const Options Opts;

  /// Serving-table LRU: front = most recently used. Snapshots are
  /// immutable once published; the lock covers only lookup/insert.
  using TableList =
      std::list<std::pair<std::string, std::shared_ptr<const ServingTable>>>;
  mutable Mutex TableMu{"parse.tables", lockrank::ParseTables};
  TableList Tables LALR_GUARDED_BY(TableMu);
  std::unordered_map<std::string, TableList::iterator>
      TableIndex LALR_GUARDED_BY(TableMu);

  /// Folds a dropped snapshot's per-snapshot counters into the retired
  /// accumulator (ContextCache::retireLocked's parity twin). Lock order:
  /// TableMu is held by every caller; StatsMu nests inside.
  void retireTableLocked(const ServingTable &Snap) LALR_REQUIRES(TableMu);

  mutable Mutex StatsMu{"parse.stats", lockrank::ParseStats};
  ParseStats Counts LALR_GUARDED_BY(StatsMu);
  /// Retired accumulator: serve counts of snapshots since dropped, so
  /// aggregate stats survive LRU churn (TableServes never undercounts).
  uint64_t RetiredServes LALR_GUARDED_BY(StatsMu) = 0;
  uint64_t RetiredTables LALR_GUARDED_BY(StatsMu) = 0;
};

} // namespace lalr

#endif // LALR_PARSE_PARSESERVICE_H
