//===- parse/ParserKind.h - Parse-driver vocabulary -------------*- C++ -*-===//
///
/// \file
/// Names the four runtime drivers the parse service can route a request
/// through, mirroring pipeline/BuildOptions.h's TableKind vocabulary:
/// a stable kebab-case name per kind plus by-name lookup, so manifests,
/// CLI flags and stats labels all speak the same strings. Deliberately
/// dependency-free: service/Manifest.h includes this without pulling the
/// whole parse service in.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PARSE_PARSERKIND_H
#define LALR_PARSE_PARSERKIND_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace lalr {

/// Which runtime driver a parse request runs.
enum class ParserKind : uint8_t {
  Lr,     ///< deterministic shift-reduce over a (compressed) LR table
  Glr,    ///< Tomita/Farshi GSS over the multi-action GLR table
  Ll1,    ///< predictive top-down over the LL(1) table
  Earley, ///< the chart-parsing oracle (no table)
};

/// Stable name: "lr", "glr", "ll1", "earley".
inline const char *parserKindName(ParserKind Kind) {
  switch (Kind) {
  case ParserKind::Lr:
    return "lr";
  case ParserKind::Glr:
    return "glr";
  case ParserKind::Ll1:
    return "ll1";
  case ParserKind::Earley:
    return "earley";
  }
  return "?";
}

/// Inverse of parserKindName; nullopt for unknown names.
inline std::optional<ParserKind> parserKindByName(std::string_view Name) {
  if (Name == "lr")
    return ParserKind::Lr;
  if (Name == "glr")
    return ParserKind::Glr;
  if (Name == "ll1")
    return ParserKind::Ll1;
  if (Name == "earley")
    return ParserKind::Earley;
  return std::nullopt;
}

/// All kinds, in declaration order (bench/test sweeps).
inline constexpr ParserKind AllParserKinds[] = {
    ParserKind::Lr, ParserKind::Glr, ParserKind::Ll1, ParserKind::Earley};

} // namespace lalr

#endif // LALR_PARSE_PARSERKIND_H
