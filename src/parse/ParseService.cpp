//===- parse/ParseService.cpp - Parse traffic over cached tables ---------===//

#include "parse/ParseService.h"

#include "corpus/CorpusGrammars.h"
#include "earley/EarleyParser.h"
#include "glr/GlrParser.h"
#include "grammar/GrammarParser.h"
#include "ll/Ll1Table.h"
#include "support/FailPoint.h"
#include "support/Timer.h"

#include <cstdio>

using namespace lalr;

//===----------------------------------------------------------------------===//
// Serving-table snapshots
//===----------------------------------------------------------------------===//

/// One immutable serving snapshot: everything a hot parse touches, owned
/// by the snapshot itself. The Grammar is a *copy* of the cached
/// context's — in-place edits (the patch path) swap the context's
/// grammar under its locks, and a snapshot that borrowed it would race
/// with parses in flight. Copying decouples the hot path completely:
/// once published, a snapshot is never written again.
struct ParseService::ServingTable {
  explicit ServingTable(const Grammar &Gr) : G(Gr) {}

  std::string GrammarName;
  uint64_t SourceHash = 0;
  ParserKind Driver = ParserKind::Lr;
  bool Dense = false;

  Grammar G;
  /// Over G; engaged for the table-free drivers (LL(1), Earley).
  std::unique_ptr<GrammarAnalysis> An;
  /// Exactly one of these is engaged, per Driver/Dense.
  std::optional<ParseTable> DenseTable;
  std::optional<CompressedTable> Compressed;
  std::optional<GlrTable> Glr;
  std::optional<Ll1Table> Ll;

  /// What building this snapshot cost (the build the later hits skip).
  double BuildUs = 0;

  /// Requests served from this snapshot (the build-use plus every hit).
  /// Atomic because hits bump it after the snapshot is published
  /// immutable; folded into the service's retired accumulator when the
  /// snapshot is dropped, so ParseStats::TableServes survives churn.
  mutable std::atomic<uint64_t> Serves{0};
};

namespace {

/// Serving-table cache key. Normalized per driver so requests that
/// cannot observe a knob share a snapshot: the LR driver keys on
/// (kind, solver, dense); GLR always runs LALR(1) look-aheads so it keys
/// on the solver only; LL(1) and Earley have one snapshot per grammar.
std::string servingKey(std::string_view GrammarName, ParserKind Driver,
                       const BuildOptions &BO, bool Dense) {
  std::string Key(GrammarName);
  Key += '\0';
  Key += parserKindName(Driver);
  switch (Driver) {
  case ParserKind::Lr:
    Key += '/';
    Key += tableKindName(BO.Kind);
    Key += '/';
    Key += std::to_string(static_cast<int>(BO.Solver));
    Key += Dense ? "/dense" : "/compressed";
    break;
  case ParserKind::Glr:
    Key += '/';
    Key += std::to_string(static_cast<int>(BO.Solver));
    break;
  case ParserKind::Ll1:
  case ParserKind::Earley:
    break;
  }
  return Key;
}

/// Arms the request's deadline on its token (creating one when absent),
/// mirroring BuildService's acceptance-time arming.
std::shared_ptr<CancellationToken>
armParseDeadline(std::shared_ptr<CancellationToken> Cancel, double DeadlineMs,
                 double DefaultDeadlineMs) {
  double Ms = DeadlineMs > 0 ? DeadlineMs : DefaultDeadlineMs;
  if (Ms <= 0)
    return Cancel;
  if (!Cancel)
    return CancellationToken::withDeadlineMs(Ms);
  if (!Cancel->hasDeadline())
    Cancel->setDeadlineMs(Ms);
  return Cancel;
}

} // namespace

//===----------------------------------------------------------------------===//
// ParseService
//===----------------------------------------------------------------------===//

ParseService::ParseService(BuildService &Build, Options Opts)
    : Build(Build), Opts(Opts) {}

ParseService::~ParseService() = default;

std::shared_ptr<const ParseService::ServingTable>
ParseService::acquireTable(const ParseRequest &Request, const BuildOptions &BO,
                           std::string_view Source, uint64_t Hash,
                           ParseResponse &Response) {
  // Resolve the grammar's shared BuildContext first — parse and build
  // traffic amortize into the same cache entry, and a source-text change
  // invalidates (or patches) it here before we consult snapshots.
  std::string Error;
  bool Hit = false;
  std::shared_ptr<CachedGrammar> Entry = Build.cache().acquire(
      Request.GrammarName, Hash,
      [&]() -> std::optional<Grammar> {
        DiagnosticEngine Diags;
        std::optional<Grammar> G =
            parseGrammar(Source, Diags, Request.GrammarName);
        if (!G)
          Error = "grammar '" + Request.GrammarName + "' failed to parse:\n" +
                  Diags.render();
        return G;
      },
      &Hit);
  Response.CacheHit = Hit;
  if (!Entry) {
    Response.Status = BuildStatus::grammarError(std::move(Error));
    return nullptr;
  }

  const std::string Key =
      servingKey(Request.GrammarName, Request.Driver, BO, Request.Dense);

  auto LookupLocked = [&]() -> std::shared_ptr<const ServingTable> {
    auto It = TableIndex.find(Key);
    if (It == TableIndex.end())
      return nullptr;
    // A snapshot of stale source is as good as absent: tables are pure
    // functions of the grammar text, so the hash is the only staleness
    // signal (explicit context invalidation does not stale snapshots).
    if (It->second->second->SourceHash != Hash)
      return nullptr;
    Tables.splice(Tables.begin(), Tables, It->second); // promote to MRU
    It->second->second->Serves.fetch_add(1, std::memory_order_relaxed);
    return It->second->second;
  };

  {
    MutexLock Lock(TableMu);
    if (std::shared_ptr<const ServingTable> S = LookupLocked()) {
      Response.TableHit = true;
      MutexLock Stats(StatsMu);
      ++Counts.TableHits;
      return S;
    }
  }

  // Miss: build under the grammar's BuildMu — the same serialization
  // pipeline builds use — then double-check the cache (a racing request
  // may have published the snapshot while we waited for the lock).
  MutexLock BuildLock(Entry->BuildMu);
  {
    MutexLock Lock(TableMu);
    if (std::shared_ptr<const ServingTable> S = LookupLocked()) {
      Response.TableHit = true;
      MutexLock Stats(StatsMu);
      ++Counts.TableHits;
      return S;
    }
  }

  Timer BuildTimer;
  auto Snap = std::make_shared<ServingTable>(Entry->G);
  Snap->GrammarName = Request.GrammarName;
  Snap->SourceHash = Hash;
  Snap->Driver = Request.Driver;
  Snap->Dense = Request.Dense;

  switch (Request.Driver) {
  case ParserKind::Lr: {
    BuildOptions TBO = BO;
    TBO.Compress = !Request.Dense;
    BuildResult R = BuildPipeline(Entry->Ctx, TBO).run();
    if (!R.Status.ok()) {
      Response.Status = R.Status;
      return nullptr;
    }
    if (Request.Dense)
      Snap->DenseTable.emplace(std::move(R.Table));
    else
      Snap->Compressed.emplace(std::move(*R.Compressed));
    break;
  }
  case ParserKind::Glr: {
    // Materialize the LR(0) automaton and the DP look-ahead sets under
    // the pipeline's guard/status machinery, then assemble the
    // multi-action table from the memoized artifacts. GLR always runs
    // LALR(1) look-aheads — coarser sets only add doomed forks, and the
    // request's Kind selects a *deterministic* construction, which is
    // the Lr driver's business.
    BuildOptions TBO = BO;
    TBO.Kind = TableKind::Lalr1;
    TBO.Compress = false;
    BuildResult R = BuildPipeline(Entry->Ctx, TBO).run();
    if (!R.Status.ok()) {
      Response.Status = R.Status;
      return nullptr;
    }
    const LalrLookaheads &LA = Entry->Ctx.lookaheads(TBO.Solver);
    Snap->Glr.emplace(GlrTable::build(
        Entry->Ctx.lr0(),
        [&LA](StateId S, ProductionId P) { return LA.la(S, P); }));
    break;
  }
  case ParserKind::Ll1:
  case ParserKind::Earley: {
    // Table-free (or table-cheap) drivers: analysis over the snapshot's
    // own grammar. A pre-expired deadline still sheds before the work.
    if (BO.Cancel && BO.Cancel->deadlineExpired()) {
      Response.Status = BuildStatus::deadlineExceeded(
          "deadline expired before the table build");
      return nullptr;
    }
    Snap->An = std::make_unique<GrammarAnalysis>(Snap->G);
    if (Request.Driver == ParserKind::Ll1) {
      Snap->Ll.emplace(Ll1Table::build(Snap->G, *Snap->An));
      // A conflicted LL(1) table resolves cells to the lowest production
      // id, and on a left-recursive grammar that sends the predictive
      // parser into an expansion loop that never consumes input. The
      // serving layer refuses such grammars outright: the ll1 driver
      // only runs grammars it can decide.
      if (!Snap->Ll->isLl1()) {
        Response.Status = BuildStatus::grammarError(
            "grammar is not LL(1): " +
            std::to_string(Snap->Ll->conflicts().size()) +
            " predict conflict(s); the ll1 driver refuses conflicted "
            "tables");
        return nullptr;
      }
    }
    break;
  }
  }
  Snap->BuildUs = BuildTimer.elapsedUs();
  Response.TableBuildUs = Snap->BuildUs;

  Snap->Serves.fetch_add(1, std::memory_order_relaxed); // the build-use

  {
    MutexLock Lock(TableMu);
    // Replace any stale same-key snapshot, then publish and bound. Every
    // dropped snapshot — stale replacement here, LRU trim below — is
    // retired: its serve count folds into the accumulator and it counts
    // as an eviction, so the aggregate stats never undercount.
    auto It = TableIndex.find(Key);
    if (It != TableIndex.end()) {
      retireTableLocked(*It->second->second);
      Tables.erase(It->second);
      TableIndex.erase(It);
    }
    Tables.emplace_front(Key, Snap);
    TableIndex[Key] = Tables.begin();
    size_t Capacity = Opts.TableCapacity ? Opts.TableCapacity : 1;
    while (Tables.size() > Capacity) {
      retireTableLocked(*Tables.back().second);
      TableIndex.erase(Tables.back().first);
      Tables.pop_back();
    }
    MutexLock Stats(StatsMu);
    ++Counts.TableBuilds;
    Counts.TableBuildUs += Snap->BuildUs;
  }
  return Snap;
}

void ParseService::retireTableLocked(const ServingTable &Snap) {
  MutexLock Stats(StatsMu);
  RetiredServes += Snap.Serves.load(std::memory_order_relaxed);
  ++RetiredTables;
  ++Counts.TableEvictions;
}

void ParseService::execute(const ParseRequest &Request,
                           ParseResponse &Response) {
  Timer T;
  Response.Driver = Request.Driver;

  BuildOptions BO = Request.Options;
  BO.Limits = mergeBuildLimits(BO.Limits, Opts.DefaultLimits);
  BO.Cancel = armParseDeadline(BO.Cancel, Request.DeadlineMs,
                               Opts.DefaultDeadlineMs);

  try {
    failPoint("parse");

    // Load shedding: a request whose caller already gave up is answered
    // without resolving, building, or parsing anything.
    if (BO.Cancel && BO.Cancel->deadlineExpired()) {
      Response.Status = BuildStatus::deadlineExceeded(
          "deadline expired before the parse started");
    } else if (BO.Cancel && BO.Cancel->cancelRequested()) {
      Response.Status = BuildStatus::cancelled();
    } else {
      // Resolve the grammar text: inline source wins, otherwise the
      // name is looked up in the corpus registry.
      std::string_view Source = Request.Source;
      if (Source.empty()) {
        if (const CorpusEntry *Entry = corpusGrammarByName(Request.GrammarName))
          Source = Entry->Source;
        else
          Response.Status = BuildStatus::grammarError(
              "unknown grammar '" + Request.GrammarName +
              "' (not in the corpus registry and no inline source given)");
      }

      if (!Source.empty()) {
        std::shared_ptr<const ServingTable> Snap = acquireTable(
            Request, BO, Source, hashGrammarSource(Source), Response);
        if (Snap) {
          // Tokenize against the snapshot's grammar; an unknown lexeme
          // is a *rejection* (the request executed), not a failure.
          TokenizeResult Lexed = tokenizeText(Snap->G, Request.Input);
          if (!Lexed.ok()) {
            Response.Errors.push_back(Lexed.Error->toParseError());
          } else {
            BuildGuard Guard(BO.Limits, BO.Cancel.get());
            Guard.checkInputTokens(Lexed.Tokens.size());
            Response.Tokens = Lexed.Tokens.size();

            Timer ParseTimer;
            switch (Request.Driver) {
            case ParserKind::Lr: {
              ParseOptions PO;
              PO.Recover = false;
              PO.MaxErrors = 1;
              PO.Guard = &Guard;
              ParseOutcome<int> Out =
                  Snap->Dense
                      ? recognize(Snap->G, *Snap->DenseTable, Lexed.Tokens, PO)
                      : recognize(Snap->G, *Snap->Compressed, Lexed.Tokens, PO);
              Response.Accepted = Out.Accepted;
              Response.Errors = std::move(Out.Errors);
              Response.Reductions = Out.Reductions.size();
              break;
            }
            case ParserKind::Glr: {
              std::vector<SymbolId> Ids;
              Ids.reserve(Lexed.Tokens.size());
              for (const Token &Tok : Lexed.Tokens)
                Ids.push_back(Tok.Kind);
              GlrResult Out = glrRecognize(Snap->G, *Snap->Glr, Ids, &Guard);
              Response.Accepted = Out.Accepted;
              Response.ForestNodes = Out.TotalNodes;
              Response.PeakFrontier = Out.PeakFrontier;
              Response.Merges = Out.Merges;
              break;
            }
            case ParserKind::Ll1: {
              LlParseResult Out =
                  llParse(Snap->G, *Snap->Ll, Lexed.Tokens, &Guard);
              Response.Accepted = Out.Accepted;
              Response.Errors = std::move(Out.Errors);
              Response.Reductions = Out.Derivation.size();
              break;
            }
            case ParserKind::Earley: {
              std::vector<SymbolId> Ids;
              Ids.reserve(Lexed.Tokens.size());
              for (const Token &Tok : Lexed.Tokens)
                Ids.push_back(Tok.Kind);
              size_t Items = 0;
              Response.Accepted =
                  earleyRecognize(Snap->G, *Snap->An, Ids, &Guard, &Items);
              Response.ForestNodes = Items;
              break;
            }
            }
            Response.ParseUs = ParseTimer.elapsedUs();
          }
        }
      }
    }
  } catch (const BuildAbort &Abort) {
    Response.Status = Abort.status();
  } catch (const std::exception &E) {
    Response.Status = BuildStatus::internal(E.what());
  }

  Response.Ok = Response.Status.ok();
  if (!Response.Ok)
    Response.Error = Response.Status.Message;

  Response.WallUs = T.elapsedUs();
  {
    MutexLock Lock(StatsMu);
    ++Counts.Requests;
    ++Counts.DriverRequests[static_cast<size_t>(Request.Driver)];
    if (!Response.Ok)
      ++Counts.Failed;
    else
      ++(Response.Accepted ? Counts.Accepted : Counts.Rejected);
    switch (Response.Status.Code) {
    case BuildStatusCode::DeadlineExceeded:
      ++Counts.Expired;
      break;
    case BuildStatusCode::Cancelled:
      ++Counts.Cancelled;
      break;
    case BuildStatusCode::LimitExceeded:
      ++Counts.LimitKilled;
      break;
    default:
      break;
    }
    Counts.TokensParsed += Response.Tokens;
    Counts.ForestNodes += Response.ForestNodes;
    Counts.ParseUs += Response.ParseUs;
    Counts.RequestUs += Response.WallUs;
  }
}

ParseResponse ParseService::run(const ParseRequest &Request) {
  ParseResponse Response;
  execute(Request, Response);
  return Response;
}

std::vector<ParseResponse>
ParseService::runBatch(std::span<const ParseRequest> Requests) {
  std::vector<ParseResponse> Responses(Requests.size());
  for (size_t I = 0; I < Requests.size(); ++I)
    execute(Requests[I], Responses[I]);
  return Responses;
}

size_t ParseService::invalidateGrammar(std::string_view GrammarName) {
  MutexLock Lock(TableMu);
  size_t Dropped = 0;
  for (auto It = Tables.begin(); It != Tables.end();) {
    if (It->second->GrammarName == GrammarName) {
      retireTableLocked(*It->second);
      TableIndex.erase(It->first);
      It = Tables.erase(It);
      ++Dropped;
    } else {
      ++It;
    }
  }
  return Dropped;
}

size_t ParseService::servingTableCount() const {
  MutexLock Lock(TableMu);
  return Tables.size();
}

ParseStats ParseService::stats() const {
  ParseStats S;
  {
    MutexLock Lock(StatsMu);
    S = Counts;
    S.TableServes = RetiredServes;
    S.RetiredTables = RetiredTables;
  }
  {
    MutexLock Lock(TableMu);
    S.ServingTables = Tables.size();
    // Live snapshots contribute their current serve counts; retired ones
    // already folded theirs in above, so the sum is churn-proof.
    for (const auto &KV : Tables)
      S.TableServes += KV.second->Serves.load(std::memory_order_relaxed);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ParseStats
//===----------------------------------------------------------------------===//

std::string ParseStats::toJson(bool Pretty) const {
  const char *Nl = Pretty ? "\n" : "";
  const char *Ind = Pretty ? "  " : "";
  const char *Sp = Pretty ? " " : "";

  auto Field = [&](std::string &Out, const char *Name, uint64_t V,
                   bool Comma = true) {
    Out += Ind;
    Out += '"';
    Out += Name;
    Out += "\":";
    Out += Sp;
    Out += std::to_string(V);
    if (Comma)
      Out += ',';
    Out += Nl;
  };
  auto TimeField = [&](std::string &Out, const char *Name, double V,
                       bool Comma = true) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    Out += Ind;
    Out += '"';
    Out += Name;
    Out += "\":";
    Out += Sp;
    Out += Buf;
    if (Comma)
      Out += ',';
    Out += Nl;
  };

  std::string Out;
  Out += '{';
  Out += Nl;
  Field(Out, "requests", Requests);
  Field(Out, "accepted", Accepted);
  Field(Out, "rejected", Rejected);
  Field(Out, "failed", Failed);
  Field(Out, "expired", Expired);
  Field(Out, "cancelled", Cancelled);
  Field(Out, "limit_killed", LimitKilled);
  Field(Out, "table_hits", TableHits);
  Field(Out, "table_builds", TableBuilds);
  Field(Out, "table_evictions", TableEvictions);
  Field(Out, "serving_tables", ServingTables);
  Field(Out, "table_serves", TableServes);
  Field(Out, "retired_tables", RetiredTables);
  Field(Out, "tokens", TokensParsed);
  Field(Out, "forest_nodes", ForestNodes);
  for (ParserKind K : AllParserKinds) {
    std::string Name = std::string("requests_") + parserKindName(K);
    Field(Out, Name.c_str(), DriverRequests[static_cast<size_t>(K)]);
  }
  TimeField(Out, "parse_us", ParseUs);
  TimeField(Out, "table_build_us", TableBuildUs);
  TimeField(Out, "request_us", RequestUs, /*Comma=*/false);
  Out += '}';
  return Out;
}

PipelineStats ParseStats::toPipelineStats(std::string Label) const {
  PipelineStats Out;
  Out.Label = std::move(Label);
  Out.setCounter("parse_requests", Requests);
  Out.setCounter("parse_accepted", Accepted);
  Out.setCounter("parse_rejected", Rejected);
  Out.setCounter("parse_failed", Failed);
  Out.setCounter("parse_expired", Expired);
  Out.setCounter("parse_cancelled", Cancelled);
  Out.setCounter("parse_limit_killed", LimitKilled);
  Out.setCounter("parse_table_hits", TableHits);
  Out.setCounter("parse_table_builds", TableBuilds);
  Out.setCounter("parse_table_evictions", TableEvictions);
  Out.setCounter("parse_table_serves", TableServes);
  Out.setCounter("parse_retired_tables", RetiredTables);
  Out.setCounter("parse_tokens", TokensParsed);
  Out.setCounter("parse_forest_nodes", ForestNodes);
  for (ParserKind K : AllParserKinds)
    Out.setCounter(std::string("parse_requests_") + parserKindName(K),
                   DriverRequests[static_cast<size_t>(K)]);
  Out.addStage("parse-requests", RequestUs);
  Out.addStage("parse-table-build", TableBuildUs);
  Out.addStage("parse-run", ParseUs);
  return Out;
}

std::string lalr::reportParseStats(const ParseStats &S) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "parse:   %llu request(s): %llu accepted, %llu rejected, "
                "%llu failed; %llu token(s), %.0f tok/s\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.Accepted),
                static_cast<unsigned long long>(S.Rejected),
                static_cast<unsigned long long>(S.Failed),
                static_cast<unsigned long long>(S.TokensParsed),
                S.tokensPerSecond());
  Out += Buf;
  if (S.Expired || S.Cancelled || S.LimitKilled) {
    std::snprintf(Buf, sizeof(Buf),
                  "shed:    %llu expired, %llu cancelled, %llu limit-killed\n",
                  static_cast<unsigned long long>(S.Expired),
                  static_cast<unsigned long long>(S.Cancelled),
                  static_cast<unsigned long long>(S.LimitKilled));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "tables:  %llu hit(s), %llu build(s), %llu eviction(s), "
                "%llu live snapshot(s)\n",
                static_cast<unsigned long long>(S.TableHits),
                static_cast<unsigned long long>(S.TableBuilds),
                static_cast<unsigned long long>(S.TableEvictions),
                static_cast<unsigned long long>(S.ServingTables));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "drivers: lr %llu, glr %llu, ll1 %llu, earley %llu\n",
                static_cast<unsigned long long>(
                    S.DriverRequests[static_cast<size_t>(ParserKind::Lr)]),
                static_cast<unsigned long long>(
                    S.DriverRequests[static_cast<size_t>(ParserKind::Glr)]),
                static_cast<unsigned long long>(
                    S.DriverRequests[static_cast<size_t>(ParserKind::Ll1)]),
                static_cast<unsigned long long>(
                    S.DriverRequests[static_cast<size_t>(ParserKind::Earley)]));
  Out += Buf;
  return Out;
}
