//===- earley/EarleyParser.cpp - Earley recognition oracle --------------------===//

#include "earley/EarleyParser.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

using namespace lalr;

namespace {

/// An Earley item: production, dot, and origin position, packed for
/// hashing. Dot and production fit 20 bits each comfortably; origin gets
/// 24.
struct Item {
  ProductionId Prod;
  uint32_t Dot;
  uint32_t Origin;

  uint64_t packed() const {
    return (uint64_t(Prod) << 44) | (uint64_t(Dot) << 24) | Origin;
  }
};

} // namespace

bool lalr::earleyRecognize(const Grammar &G, const GrammarAnalysis &An,
                           std::span<const SymbolId> Input,
                           const BuildGuard *Guard, size_t *TotalItems) {
  const size_t N = Input.size();
  // Chart: one item list + dedup set per position.
  std::vector<std::vector<Item>> Chart(N + 1);
  std::vector<std::unordered_set<uint64_t>> InChart(N + 1);

  size_t Items = 0;
  auto add = [&](size_t Pos, Item It) {
    if (InChart[Pos].insert(It.packed()).second) {
      Chart[Pos].push_back(It);
      ++Items;
      // Work ceiling on the cubic chart growth; no-op when unset.
      if (Guard)
        Guard->checkEarleyItems(Items);
    }
  };

  add(0, {0, 0, 0}); // $accept -> . start

  size_t Steps = 0;
  for (size_t Pos = 0; Pos <= N; ++Pos) {
    // Worklist semantics: Chart[Pos] grows while we scan it.
    for (size_t I = 0; I < Chart[Pos].size(); ++I) {
      guardPollStrided(Guard, Steps++);
      Item It = Chart[Pos][I];
      const Production &P = G.production(It.Prod);
      if (It.Dot < P.Rhs.size()) {
        SymbolId Next = P.Rhs[It.Dot];
        if (G.isTerminal(Next)) {
          // Scan.
          if (Pos < N && Input[Pos] == Next)
            add(Pos + 1, {It.Prod, It.Dot + 1, It.Origin});
          continue;
        }
        // Predict.
        for (ProductionId BP : G.productionsOf(Next))
          add(Pos, {BP, 0, static_cast<uint32_t>(Pos)});
        // Aycock-Horspool: a nullable nonterminal can be skipped
        // immediately, covering empty completions that the plain
        // worklist can miss.
        if (An.isNullable(Next))
          add(Pos, {It.Prod, It.Dot + 1, It.Origin});
        continue;
      }
      // Complete: advance every item in Chart[Origin] waiting on Lhs.
      for (size_t J = 0; J < Chart[It.Origin].size(); ++J) {
        Item Wait = Chart[It.Origin][J];
        const Production &WP = G.production(Wait.Prod);
        if (Wait.Dot < WP.Rhs.size() && WP.Rhs[Wait.Dot] == P.Lhs)
          add(Pos, {Wait.Prod, Wait.Dot + 1, Wait.Origin});
      }
    }
  }

  // Accept iff [$accept -> start . , 0] is in the final set.
  if (TotalItems)
    *TotalItems = Items;
  Item Accept{0, 1, 0};
  return InChart[N].count(Accept.packed()) != 0;
}

bool lalr::earleyRecognize(const Grammar &G,
                           std::span<const SymbolId> Input,
                           const BuildGuard *Guard, size_t *TotalItems) {
  GrammarAnalysis An(G);
  return earleyRecognize(G, An, Input, Guard, TotalItems);
}
