//===- earley/EarleyParser.h - Earley recognition oracle --------*- C++ -*-===//
///
/// \file
/// An Earley recognizer — a general CFG parser with no LR machinery in
/// common with the rest of the library. Its role here is *oracle*: for
/// any grammar (ambiguous, non-LR, anything) it decides membership in
/// L(G), so the differential test suites can check that every LR table
/// kind accepts exactly the grammar's language, and that sentence
/// generation really produces members. Implements the classic
/// predict/scan/complete algorithm with the Aycock–Horspool nullable
/// fix.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_EARLEY_EARLEYPARSER_H
#define LALR_EARLEY_EARLEYPARSER_H

#include "grammar/Analysis.h"
#include "grammar/Grammar.h"
#include "support/Cancellation.h"

#include <cstddef>
#include <span>

namespace lalr {

/// True iff the terminal sequence \p Input (ids of \p G, no $end) is in
/// L(G). Runs in O(n^3 * |G|) worst case — fine for test workloads.
/// When \p Guard is set, the chart loops poll it (deadline/cancellation
/// abort via BuildAbort) and every chart insertion is checked against
/// BuildLimits::MaxEarleyItems — the work ceiling the parse service
/// applies to the cubic oracle. \p TotalItems, when non-null, receives
/// the number of chart items built (a work/forest-size measure).
bool earleyRecognize(const Grammar &G, const GrammarAnalysis &An,
                     std::span<const SymbolId> Input,
                     const BuildGuard *Guard = nullptr,
                     size_t *TotalItems = nullptr);

/// Convenience overload computing the analysis internally.
bool earleyRecognize(const Grammar &G, std::span<const SymbolId> Input,
                     const BuildGuard *Guard = nullptr,
                     size_t *TotalItems = nullptr);

} // namespace lalr

#endif // LALR_EARLEY_EARLEYPARSER_H
