//===- ll/Ll1Table.cpp - LL(1) analysis and parsing ---------------------------===//

#include "ll/Ll1Table.h"

#include <sstream>

using namespace lalr;

std::string LlConflict::toString(const Grammar &G) const {
  std::ostringstream OS;
  OS << (Kind == FirstFirst ? "FIRST/FIRST" : "FIRST/FOLLOW")
     << " conflict on '" << G.name(Terminal) << "' for nonterminal '"
     << G.name(Nonterminal) << "': productions " << Prod1 << " ("
     << G.productionToString(Prod1) << ") and " << Prod2 << " ("
     << G.productionToString(Prod2) << ")";
  return OS.str();
}

Ll1Table Ll1Table::build(const Grammar &G, const GrammarAnalysis &An) {
  Ll1Table T(G.numNonterminals(), G.numTerminals());
  T.G = &G;
  T.Predicts.assign(G.numProductions(), BitSet(G.numTerminals()));

  // PREDICT sets.
  for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    BitSet &Pred = T.Predicts[PId];
    bool RhsNullable = An.addFirstOfSeq(Pred, P.Rhs);
    if (RhsNullable)
      Pred.unionWith(An.follow(P.Lhs));
  }

  // Fill cells; collisions become conflicts. To classify the collision
  // kind: if the terminal is in both productions' FIRST(rhs) it is
  // FIRST/FIRST; otherwise one of them sees it only via FOLLOW
  // (FIRST/FOLLOW).
  // lalr_lint: no-poll(Ll1Table::build takes no guard; the fill is bounded
  // by grammar size and runs inside the caller's guarded build stage)
  for (ProductionId PId = 0; PId < G.numProductions(); ++PId) {
    const Production &P = G.production(PId);
    uint32_t NtIdx = G.ntIndex(P.Lhs);
    BitSet FirstOfRhs = An.firstOfSeq(P.Rhs);
    for (size_t Term : T.Predicts[PId]) {
      ProductionId &Cell = T.Cells[NtIdx * T.NumTerminals + Term];
      if (Cell == InvalidProduction) {
        Cell = PId;
        continue;
      }
      if (Cell == PId)
        continue;
      LlConflict C;
      C.Nonterminal = P.Lhs;
      C.Terminal = static_cast<SymbolId>(Term);
      C.Prod1 = std::min(Cell, PId);
      C.Prod2 = std::max(Cell, PId);
      BitSet OtherFirst = An.firstOfSeq(G.production(Cell).Rhs);
      C.Kind = FirstOfRhs.test(Term) && OtherFirst.test(Term)
                   ? LlConflict::FirstFirst
                   : LlConflict::FirstFollow;
      T.Conflicts.push_back(C);
      // Keep the earlier production (stable, yacc-like default).
      if (PId < Cell)
        Cell = PId;
    }
  }
  return T;
}

ProductionId Ll1Table::cell(SymbolId Nt, SymbolId Terminal) const {
  return Cells[G->ntIndex(Nt) * NumTerminals + Terminal];
}

size_t Ll1Table::firstFirstConflicts() const {
  size_t N = 0;
  for (const LlConflict &C : Conflicts)
    if (C.Kind == LlConflict::FirstFirst)
      ++N;
  return N;
}

size_t Ll1Table::firstFollowConflicts() const {
  size_t N = 0;
  for (const LlConflict &C : Conflicts)
    if (C.Kind == LlConflict::FirstFollow)
      ++N;
  return N;
}

LlParseResult lalr::llParse(const Grammar &G, const Ll1Table &Table,
                            std::span<const Token> Input,
                            const BuildGuard *Guard) {
  LlParseResult Out;
  // Predictive stack: start with [$end-marker is implicit] $accept's
  // body, i.e. just the start symbol.
  std::vector<SymbolId> Stack{G.startSymbol()};
  size_t Pos = 0;

  Token EofTok;
  EofTok.Kind = G.eofSymbol();
  EofTok.Text = "$end";

  size_t Steps = 0;
  while (true) {
    guardPollStrided(Guard, Steps++);
    const Token &Tok = Pos < Input.size() ? Input[Pos] : EofTok;
    if (Stack.empty()) {
      if (Tok.Kind == G.eofSymbol()) {
        Out.Accepted = true;
        return Out;
      }
      Out.Errors.push_back(
          {Tok.Loc, "input continues after a complete sentence"});
      return Out;
    }
    SymbolId Top = Stack.back();
    if (G.isTerminal(Top)) {
      if (Top != Tok.Kind) {
        Out.Errors.push_back({Tok.Loc, "expected " + G.name(Top) +
                                           ", found " + G.name(Tok.Kind)});
        return Out;
      }
      Stack.pop_back();
      ++Pos;
      continue;
    }
    ProductionId PId = Table.cell(Top, Tok.Kind);
    if (PId == InvalidProduction) {
      Out.Errors.push_back({Tok.Loc, "unexpected " + G.name(Tok.Kind) +
                                         " while expanding " +
                                         G.name(Top)});
      return Out;
    }
    Out.Derivation.push_back(PId);
    Stack.pop_back();
    const Production &P = G.production(PId);
    for (auto It = P.Rhs.rbegin(); It != P.Rhs.rend(); ++It)
      Stack.push_back(*It);
  }
}

bool lalr::isLl1Grammar(const Grammar &G) {
  GrammarAnalysis An(G);
  return Ll1Table::build(G, An).isLl1();
}
