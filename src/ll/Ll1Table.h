//===- ll/Ll1Table.h - LL(1) analysis and parsing ---------------*- C++ -*-===//
///
/// \file
/// The top-down counterpart, included because the LALR-era papers framed
/// their results against LL(1) and because grammar classification is only
/// complete with it: PREDICT sets per production, the LL(1) parse table
/// with FIRST/FIRST and FIRST/FOLLOW conflict detection, and a predictive
/// (stack-driven) parser over the table. Also provides the LL(1)
/// membership test used by the extended classifier.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_LL_LL1TABLE_H
#define LALR_LL_LL1TABLE_H

#include "grammar/Analysis.h"
#include "parser/ParserDriver.h"
#include "support/BitSet.h"

#include <string>
#include <vector>

namespace lalr {

/// An LL(1) table-cell conflict.
struct LlConflict {
  enum KindT : uint8_t {
    FirstFirst,  ///< two productions of one nonterminal share a predict
                 ///< terminal through their FIRST sets
    FirstFollow, ///< a nullable production's FOLLOW overlaps a sibling's
                 ///< FIRST
  } Kind = FirstFirst;
  SymbolId Nonterminal = InvalidSymbol;
  SymbolId Terminal = InvalidSymbol;
  ProductionId Prod1 = InvalidProduction;
  ProductionId Prod2 = InvalidProduction;

  std::string toString(const Grammar &G) const;
};

/// The LL(1) parse table of a grammar: cell (nonterminal, terminal) ->
/// production, plus PREDICT sets and conflicts.
class Ll1Table {
public:
  /// Builds the table. Conflicted cells keep the lowest production id
  /// (so a parser can still run, like yacc's default resolution), and
  /// every collision is recorded.
  static Ll1Table build(const Grammar &G, const GrammarAnalysis &An);

  /// PREDICT(p) = FIRST(rhs) ∪ (FOLLOW(lhs) if rhs nullable); over
  /// terminal ids, indexed by production.
  const BitSet &predict(ProductionId P) const { return Predicts[P]; }

  /// The production chosen for (Nt, Terminal), or InvalidProduction.
  ProductionId cell(SymbolId Nt, SymbolId Terminal) const;

  const std::vector<LlConflict> &conflicts() const { return Conflicts; }
  bool isLl1() const { return Conflicts.empty(); }

  /// Counts by kind, for the reports.
  size_t firstFirstConflicts() const;
  size_t firstFollowConflicts() const;

private:
  Ll1Table(size_t NumNts, size_t NumTs)
      : NumTerminals(NumTs),
        Cells(NumNts * NumTs, InvalidProduction) {}

  size_t NumTerminals;
  std::vector<ProductionId> Cells; // [ntIndex * NumTerminals + terminal]
  std::vector<BitSet> Predicts;
  std::vector<LlConflict> Conflicts;
  const Grammar *G = nullptr;
};

/// Runs the predictive parser over \p Input using \p Table (which should
/// be conflict-free for meaningful results). Returns the sequence of
/// productions of the leftmost derivation, or the first syntax error.
/// When \p Guard is set, the parse loop polls it so a deadline or
/// cancellation aborts via BuildAbort like every other governed stage.
struct LlParseResult {
  bool Accepted = false;
  std::vector<ProductionId> Derivation; // leftmost derivation order
  std::vector<ParseError> Errors;
};
LlParseResult llParse(const Grammar &G, const Ll1Table &Table,
                      std::span<const Token> Input,
                      const BuildGuard *Guard = nullptr);

/// True if \p G is LL(1) (no table conflicts and no left recursion —
/// left-recursive grammars always conflict, but the explicit check makes
/// the reason reportable).
bool isLl1Grammar(const Grammar &G);

} // namespace lalr

#endif // LALR_LL_LL1TABLE_H
