//===- gen/TableSerializer.cpp - Binary table persistence ----------------------===//

#include "gen/TableSerializer.h"

#include "grammar/GrammarBuilder.h"

#include <cstring>

using namespace lalr;

namespace {

constexpr uint32_t Magic = 0x4C414C52; // "LALR"
constexpr uint32_t Version = 2;

/// Little-endian u32/string writer.
class Writer {
public:
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked reader; any overrun poisons the reader.
class Reader {
public:
  explicit Reader(std::span<const uint8_t> Blob) : Blob(Blob) {}

  bool ok() const { return Ok; }

  uint32_t u32() {
    if (Pos + 4 > Blob.size()) {
      Ok = false;
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Blob[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  std::string str() {
    uint32_t Len = u32();
    if (!Ok || Pos + Len > Blob.size() || Len > (1u << 20)) {
      Ok = false;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Blob.data() + Pos), Len);
    Pos += Len;
    return S;
  }

  bool atEnd() const { return Ok && Pos == Blob.size(); }

private:
  std::span<const uint8_t> Blob;
  size_t Pos = 0;
  bool Ok = true;
};

} // namespace

std::vector<uint8_t> lalr::serializeTable(const Grammar &G,
                                          const ParseTable &T) {
  Writer W;
  W.u32(Magic);
  W.u32(Version);
  W.str(G.grammarName());
  W.u32(static_cast<uint32_t>(G.expectedShiftReduce() + 1)); // 0 = unset

  // Symbols: terminal names (skipping $end), then nonterminal names
  // (skipping $accept) — the builder re-adds the specials in the same
  // canonical positions.
  W.u32(static_cast<uint32_t>(G.numTerminals()));
  for (SymbolId S = 1; S < G.numTerminals(); ++S) {
    W.str(G.name(S));
    W.u32(G.precedence(S).Level);
    W.u32(static_cast<uint32_t>(G.precedence(S).Associativity));
  }
  W.u32(static_cast<uint32_t>(G.numNonterminals()));
  for (uint32_t NtIdx = 0; NtIdx + 1 < G.numNonterminals(); ++NtIdx)
    W.str(G.name(G.ntSymbol(NtIdx)));
  W.u32(G.startSymbol());

  // Productions, skipping the augmentation (rebuilt automatically).
  W.u32(static_cast<uint32_t>(G.numProductions()));
  for (ProductionId P = 1; P < G.numProductions(); ++P) {
    const Production &Prod = G.production(P);
    W.u32(Prod.Lhs);
    W.u32(Prod.PrecSymbol == InvalidSymbol ? UINT32_MAX : Prod.PrecSymbol);
    W.u32(static_cast<uint32_t>(Prod.Rhs.size()));
    for (SymbolId S : Prod.Rhs)
      W.u32(S);
  }

  // Table cells.
  W.u32(static_cast<uint32_t>(T.numStates()));
  for (uint32_t S = 0; S < T.numStates(); ++S) {
    for (SymbolId X = 0; X < G.numTerminals(); ++X) {
      Action A = T.action(S, X);
      W.u32(static_cast<uint32_t>(A.Kind));
      W.u32(A.Value);
    }
    for (uint32_t NtIdx = 0; NtIdx < G.numNonterminals(); ++NtIdx)
      W.u32(T.gotoNt(S, G.ntSymbol(NtIdx), G));
  }
  return W.take();
}

std::optional<LoadedTable>
lalr::deserializeTable(std::span<const uint8_t> Blob) {
  Reader R(Blob);
  if (R.u32() != Magic || R.u32() != Version)
    return std::nullopt;
  std::string Name = R.str();
  uint32_t ExpectPlus1 = R.u32();

  uint32_t NumT = R.u32();
  if (!R.ok() || NumT == 0 || NumT > (1u << 20))
    return std::nullopt;
  GrammarBuilder B(Name);
  struct TermPrec {
    SymbolId Handle;
    uint16_t Level;
    Assoc A;
  };
  std::vector<TermPrec> Precs;
  for (uint32_t S = 1; S < NumT; ++S) {
    std::string TName = R.str();
    uint32_t Level = R.u32();
    uint32_t AssocV = R.u32();
    if (!R.ok() || TName.empty() || AssocV > 3)
      return std::nullopt;
    SymbolId H = B.terminal(TName);
    if (Level != 0)
      Precs.push_back({H, static_cast<uint16_t>(Level),
                       static_cast<Assoc>(AssocV)});
  }
  uint32_t NumNt = R.u32();
  if (!R.ok() || NumNt == 0 || NumNt > (1u << 20))
    return std::nullopt;
  std::vector<SymbolId> NtHandles;
  for (uint32_t I = 0; I + 1 < NumNt; ++I) {
    std::string NName = R.str();
    if (!R.ok() || NName.empty())
      return std::nullopt;
    NtHandles.push_back(B.nonterminal(NName));
  }
  uint32_t Start = R.u32();

  // Re-establish precedence levels in increasing order (levels are dense
  // by construction but be liberal: group by level value).
  uint16_t MaxLevel = 0;
  for (const TermPrec &P : Precs)
    MaxLevel = std::max(MaxLevel, P.Level);
  for (uint16_t L = 1; L <= MaxLevel; ++L) {
    std::vector<SymbolId> Toks;
    Assoc A = Assoc::None;
    for (const TermPrec &P : Precs)
      if (P.Level == L) {
        Toks.push_back(P.Handle);
        A = P.A;
      }
    if (!Toks.empty())
      B.precedenceLevel(A, Toks);
  }

  // Productions. Symbol ids in the blob use the canonical layout:
  // terminal id == handle; nonterminal id NumT+i == NtHandles[i]
  // (with NumT+NumNt-1 = $accept, which must not appear).
  auto mapSym = [&](uint32_t Id, bool AllowAccept = false) -> SymbolId {
    if (Id < NumT)
      return Id; // terminal handles are the canonical ids
    uint32_t NtIdx = Id - NumT;
    if (NtIdx + (AllowAccept ? 0 : 1) >= NumNt ||
        NtIdx >= NtHandles.size())
      return InvalidSymbol;
    return NtHandles[NtIdx];
  };

  uint32_t NumProds = R.u32();
  if (!R.ok() || NumProds == 0 || NumProds > (1u << 22))
    return std::nullopt;
  for (uint32_t P = 1; P < NumProds; ++P) {
    uint32_t Lhs = R.u32();
    uint32_t PrecSym = R.u32();
    uint32_t Len = R.u32();
    if (!R.ok() || Len > (1u << 16))
      return std::nullopt;
    SymbolId LhsHandle = mapSym(Lhs);
    if (LhsHandle == InvalidSymbol || Lhs < NumT)
      return std::nullopt;
    std::vector<SymbolId> Rhs;
    for (uint32_t I = 0; I < Len; ++I) {
      SymbolId S = mapSym(R.u32());
      if (S == InvalidSymbol)
        return std::nullopt;
      Rhs.push_back(S);
    }
    SymbolId PrecHandle = InvalidSymbol;
    if (PrecSym != UINT32_MAX) {
      if (PrecSym >= NumT)
        return std::nullopt;
      PrecHandle = PrecSym;
    }
    if (!R.ok())
      return std::nullopt;
    B.production(LhsHandle, std::move(Rhs), PrecHandle);
  }

  SymbolId StartHandle = mapSym(Start);
  if (StartHandle == InvalidSymbol || Start < NumT)
    return std::nullopt;
  B.startSymbol(StartHandle);
  if (ExpectPlus1 != 0)
    B.expectedShiftReduce(static_cast<int>(ExpectPlus1) - 1);

  DiagnosticEngine Diags;
  std::optional<Grammar> G = std::move(B).build(Diags);
  if (!G)
    return std::nullopt;
  // The rebuilt grammar must have the same canonical dimensions.
  if (G->numTerminals() != NumT || G->numNonterminals() != NumNt ||
      G->numProductions() != NumProds)
    return std::nullopt;

  uint32_t NumStates = R.u32();
  if (!R.ok() || NumStates == 0 || NumStates > (1u << 22))
    return std::nullopt;
  ParseTable T(NumStates, *G);
  for (uint32_t S = 0; S < NumStates; ++S) {
    for (SymbolId X = 0; X < NumT; ++X) {
      uint32_t Kind = R.u32();
      uint32_t Value = R.u32();
      if (!R.ok() || Kind > 3)
        return std::nullopt;
      Action A{static_cast<ActionKind>(Kind), Value};
      if (A.Kind == ActionKind::Shift && A.Value >= NumStates)
        return std::nullopt;
      if (A.Kind == ActionKind::Reduce && A.Value >= NumProds)
        return std::nullopt;
      T.setAction(S, X, A);
    }
    for (uint32_t NtIdx = 0; NtIdx < NumNt; ++NtIdx) {
      uint32_t Target = R.u32();
      if (!R.ok() || (Target != InvalidState && Target >= NumStates))
        return std::nullopt;
      T.setGotoNt(S, NtIdx, Target);
    }
  }
  if (!R.atEnd())
    return std::nullopt;
  return LoadedTable{std::move(*G), std::move(T)};
}
