//===- gen/TableSerializer.h - Binary table persistence ---------*- C++ -*-===//
///
/// \file
/// Versioned binary serialization of a grammar + its parse table, so a
/// generator can compile once and load at runtime (the moral equivalent
/// of shipping y.tab.c in data form). The format is a little-endian u32
/// stream with a magic/version header; deserialization validates
/// structure and rejects truncated or corrupted blobs instead of
/// crashing.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GEN_TABLESERIALIZER_H
#define LALR_GEN_TABLESERIALIZER_H

#include "grammar/Grammar.h"
#include "lr/ParseTable.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lalr {

/// A deserialized bundle: the rebuilt grammar and its table. The grammar
/// reconstructs symbol names, productions, precedence and %expect; the
/// table reconstructs every ACTION/GOTO cell (conflict records are not
/// persisted — they are a build-time artifact).
struct LoadedTable {
  Grammar G;
  ParseTable Table;
};

/// Serializes \p G and \p T into a self-contained blob.
std::vector<uint8_t> serializeTable(const Grammar &G, const ParseTable &T);

/// Parses a blob produced by serializeTable. Returns std::nullopt on any
/// structural problem (bad magic, wrong version, truncation, counts that
/// do not add up, dangling symbol references).
std::optional<LoadedTable> deserializeTable(std::span<const uint8_t> Blob);

} // namespace lalr

#endif // LALR_GEN_TABLESERIALIZER_H
