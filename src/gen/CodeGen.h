//===- gen/CodeGen.h - Standalone parser emission ---------------*- C++ -*-===//
///
/// \file
/// Turns a grammar + parse table into a self-contained C++17 header with
/// no dependency on this library — what yacc/bison emit as y.tab.c. The
/// generated header contains the packed ACTION/GOTO tables, token-name
/// metadata, and a table-driven parse function with an optional reduce
/// callback. The test suite compiles a generated parser with the system
/// compiler and runs it against sentences the library parser also
/// judges, closing the loop on the whole generator pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_GEN_CODEGEN_H
#define LALR_GEN_CODEGEN_H

#include "grammar/Grammar.h"
#include "lr/ParseTable.h"

#include <string>
#include <string_view>

namespace lalr {

/// Options for the emitted code.
struct CodeGenOptions {
  /// Namespace the parser lives in.
  std::string Namespace = "genparser";
  /// Emit a `#define <NAME> <id>` style constant for each
  /// identifier-named terminal (TOK_<NAME> constexpr).
  bool EmitTokenConstants = true;
  /// When nonempty, stamped into the generated header as a
  /// "// Provenance: ..." comment — the pipeline façade puts its
  /// PipelineStats JSON here so a generated parser records how its table
  /// was built. Must be a single line.
  std::string ProvenanceJson;
};

/// Renders the standalone parser header for \p G and \p T. The generated
/// interface is:
///
///   namespace <ns> {
///     constexpr int tokEof = 0;             // token ids == SymbolId
///     extern const char *const kTokenNames[];
///     struct Result { bool accepted; size_t errorPos; int errorState; };
///     template <typename OnReduce>          // OnReduce(int production)
///     Result parse(const int *toks, size_t n, OnReduce onReduce);
///     Result parse(const int *toks, size_t n);
///   }
///
/// Tokens are terminal ids of \p G (eof is implicit; do not pass it).
std::string generateParserSource(const Grammar &G, const ParseTable &T,
                                 const CodeGenOptions &Opts = {});

} // namespace lalr

#endif // LALR_GEN_CODEGEN_H
