//===- pipeline/BuildPipeline.h - Grammar -> table façade -------*- C++ -*-===//
///
/// \file
/// The one entry point downstream consumers use to turn a grammar into a
/// parse table. A pipeline runs over a BuildContext (which memoizes the
/// shared artifacts) under a BuildOptions (which table construction,
/// which solver, conflict policy, compression) and returns a BuildResult
/// bundling the table, the optional compressed form, and a PipelineStats
/// snapshot. Typical use:
///
///   BuildContext Ctx(std::move(G));
///   BuildResult R = BuildPipeline(Ctx).run();          // LALR(1)
///   BuildResult S = BuildPipeline(Ctx, {.Kind = TableKind::Clr1}).run();
///   // Ctx computed GrammarAnalysis and the LR(0) automaton once.
///
/// The building blocks (GrammarAnalysis, Lr0Automaton::build,
/// LalrLookaheads::compute, fillParseTable, the baselines) remain public
/// as the low-level path — see docs/API.md — but benches and examples go
/// through this façade.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PIPELINE_BUILDPIPELINE_H
#define LALR_PIPELINE_BUILDPIPELINE_H

#include "gen/CodeGen.h"
#include "gen/TableSerializer.h"
#include "lr/CompressedTable.h"
#include "parser/ParserDriver.h"
#include "pipeline/BuildContext.h"
#include "pipeline/BuildOptions.h"
#include "verify/ArtifactVerifier.h"

#include <optional>

namespace lalr {

/// Everything one pipeline run produced. References the context's
/// grammar, so the context must outlive the result.
struct BuildResult {
  BuildResult(const Grammar &G, TableKind Kind, ParseTable Table)
      : G(&G), Kind(Kind), Table(std::move(Table)) {}

  /// A failed run: no table (an empty 0-state one stands in), the reason
  /// in Status. Constructed by BuildPipeline::run when a build aborts on
  /// cancellation, a deadline, a tripped limit, or an internal error.
  BuildResult(const Grammar &G, TableKind Kind, BuildStatus FailureStatus)
      : G(&G), Kind(Kind), Table(0, G), Status(std::move(FailureStatus)) {}

  const Grammar *G;
  TableKind Kind;
  ParseTable Table;
  /// Why the run succeeded or failed. Status.ok() implies Table is the
  /// complete table; otherwise Table is empty and the context's memoized
  /// artifacts were invalidated (a retry rebuilds from scratch).
  BuildStatus Status;
  /// Engaged when BuildOptions::Compress was set.
  std::optional<CompressedTable> Compressed;
  /// Engaged when BuildOptions::Verify ran (Lalr1 kind only): the
  /// ArtifactVerifier's report. A failing report also fails the build
  /// (Status becomes Internal with Which = "verify"), but the report
  /// stays attached so callers can render the structured findings.
  std::optional<VerifyReport> Verify;
  /// Snapshot of the context's stats at the end of the run, labelled
  /// "<grammar>/<kind>".
  PipelineStats Stats;
  /// False iff ConflictPolicy::RequireAdequate was requested and the
  /// table has unresolved conflicts.
  bool PolicySatisfied = true;

  const Grammar &grammar() const { return *G; }
  bool ok() const { return Status.ok() && PolicySatisfied; }
};

/// Façade running one configured table construction over a context.
class BuildPipeline {
public:
  explicit BuildPipeline(BuildContext &Ctx, BuildOptions Opts = {})
      : Ctx(Ctx), Opts(Opts) {}

  /// Runs the configured construction. Artifacts already memoized in the
  /// context are reused; new ones are built (and timed) on demand.
  BuildResult run();

private:
  BuildContext &Ctx;
  BuildOptions Opts;
};

/// \name Downstream conveniences over a BuildResult
/// These dispatch to the compressed table when the build produced one.
/// @{

/// Recognize-only parse of \p Input with the result's table.
ParseOutcome<int> recognize(const BuildResult &R, std::span<const Token> Input,
                            const ParseOptions &Opts = {});

/// Parse \p Input into a concrete parse tree with the result's table.
ParseOutcome<std::unique_ptr<ParseNode>>
parseToTree(const BuildResult &R, std::span<const Token> Input,
            const ParseOptions &Opts = {});

/// Emits the standalone parser for the result's (dense) table, stamping
/// the result's PipelineStats JSON into the header comment as provenance
/// unless \p Opts already set one.
std::string generateParserSource(const BuildResult &R,
                                 CodeGenOptions Opts = {});

/// Serializes the result's (dense) table.
std::vector<uint8_t> serializeTable(const BuildResult &R);
/// @}

} // namespace lalr

#endif // LALR_PIPELINE_BUILDPIPELINE_H
