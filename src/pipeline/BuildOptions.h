//===- pipeline/BuildOptions.h - Pipeline configuration ---------*- C++ -*-===//
///
/// \file
/// One options struct selecting everything that varies across the repo's
/// table builders: which look-ahead method (the precision ladder LR(0) ⊂
/// SLR(1) ⊂ NQLALR ⊂ LALR(1) ⊂ LR(1), plus the alternative LALR
/// computations and Pager's minimal LR(1)), which equation solver, the
/// conflict policy, and whether to row-compress the result.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PIPELINE_BUILDOPTIONS_H
#define LALR_PIPELINE_BUILDOPTIONS_H

#include "lalr/LalrLookaheads.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string_view>

namespace lalr {

/// Which table construction the pipeline runs. The first five form the
/// precision ladder; YaccLalr / MergedLalr / DerivedFollowLalr compute the
/// same table as Lalr1 by different algorithms (the paper's timing
/// baselines); Pager is the minimal-LR(1) extension.
enum class TableKind : uint8_t {
  Lr0,              ///< reduce on every terminal
  Slr1,             ///< FOLLOW-set look-aheads (DeRemer 1971)
  Nqlalr,           ///< state-quotiented "not quite LALR"
  Lalr1,            ///< DeRemer-Pennello relations + digraph (the paper)
  Clr1,             ///< canonical LR(1) (Knuth)
  YaccLalr,         ///< spontaneous + propagation (Algorithm 4.63)
  MergedLalr,       ///< canonical LR(1) merged by core (the definition)
  DerivedFollowLalr,///< Bermudez-Logothetis derived-grammar FOLLOW
  Pager,            ///< weak-compatibility minimal LR(1)
};

/// Stable lower-case name, used in stats labels and JSON.
inline const char *tableKindName(TableKind K) {
  switch (K) {
  case TableKind::Lr0:
    return "lr0";
  case TableKind::Slr1:
    return "slr1";
  case TableKind::Nqlalr:
    return "nqlalr";
  case TableKind::Lalr1:
    return "lalr1";
  case TableKind::Clr1:
    return "clr1";
  case TableKind::YaccLalr:
    return "yacc-lalr";
  case TableKind::MergedLalr:
    return "merged-lalr";
  case TableKind::DerivedFollowLalr:
    return "derived-follow";
  case TableKind::Pager:
    return "pager";
  }
  return "unknown";
}

/// All table kinds in pipeline order; iterate this instead of spelling
/// the enumerators out (the service manifest and the benches both sweep
/// the full matrix).
inline constexpr TableKind AllTableKinds[] = {
    TableKind::Lr0,        TableKind::Slr1,
    TableKind::Nqlalr,     TableKind::Lalr1,
    TableKind::Clr1,       TableKind::YaccLalr,
    TableKind::MergedLalr, TableKind::DerivedFollowLalr,
    TableKind::Pager,
};

/// Inverse of tableKindName; nullopt for unknown names.
inline std::optional<TableKind> tableKindByName(std::string_view Name) {
  for (TableKind K : AllTableKinds)
    if (Name == tableKindName(K))
      return K;
  return std::nullopt;
}

/// What to do about unresolved conflicts in the built table.
enum class ConflictPolicy : uint8_t {
  Allow,           ///< keep the table; conflicts are data (classification)
  RequireAdequate, ///< flag the build as failed unless conflict-free
};

/// Largest worker count LALR_THREADS / BuildService accept; anything
/// above is treated as a typo rather than a request for 10^6 threads.
inline constexpr long MaxBuildThreads = 256;

/// Parses a LALR_THREADS-style worker-count string: a plain decimal
/// integer in [0, MaxBuildThreads], where 0 means serial. Garbage
/// (non-numeric text, trailing characters), negative values and
/// out-of-range counts set \p *Valid to false and fall back to 0 (serial)
/// instead of silently misbehaving. Exposed separately from
/// defaultBuildThreads so the rejection rules are unit-testable without
/// mutating the environment.
inline unsigned parseBuildThreads(const char *Text, bool *Valid = nullptr) {
  if (Valid)
    *Valid = true;
  if (!Text || !*Text)
    return 0;
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (!End || *End != '\0' || V < 0 || V > MaxBuildThreads) {
    if (Valid)
      *Valid = false;
    return 0;
  }
  return static_cast<unsigned>(V);
}

/// Worker count forced by the LALR_THREADS environment variable, or 0
/// (serial) when unset. Read once; lets scripts/check.sh run the whole
/// tier-1 suite over the parallel path without touching call sites. An
/// invalid setting warns once on stderr and builds serially.
inline unsigned defaultBuildThreads() {
  static const unsigned Cached = [] {
    const char *Env = std::getenv("LALR_THREADS");
    if (!Env || !*Env)
      return 0u;
    bool Valid = true;
    unsigned N = parseBuildThreads(Env, &Valid);
    if (!Valid)
      std::fprintf(stderr,
                   "warning: invalid LALR_THREADS='%s' (expected an integer "
                   "in [0, %ld]); building serially\n",
                   Env, MaxBuildThreads);
    return N;
  }();
  return Cached;
}

/// Everything a BuildPipeline run can vary.
struct BuildOptions {
  TableKind Kind = TableKind::Lalr1;
  /// Equation solver for the Lalr1 kind (Fig. 3 ablation knob).
  SolverKind Solver = SolverKind::Digraph;
  ConflictPolicy Conflicts = ConflictPolicy::Allow;
  /// Row-compress the dense table (default reductions + sparse rows).
  bool Compress = false;
  /// Worker count for the DP core (relations build, digraph solves,
  /// la-union): 0 = serial, N = pool of N workers (calling thread
  /// included), -1 = inherit defaultBuildThreads(). Parallel and serial
  /// builds produce bit-identical sets and tables.
  int Threads = -1;
  /// Hard resource ceilings for this run; all-zero (the default) governs
  /// nothing. A tripped limit aborts the build with
  /// BuildStatus::LimitExceeded naming the limit. (The explicit
  /// initializers keep designated-initializer call sites clean under
  /// -Wmissing-field-initializers.)
  BuildLimits Limits = {};
  /// Optional cooperative-cancellation handle (manual cancel and/or
  /// deadline), shared with whoever may want to cancel the build. Null =
  /// not cancellable.
  std::shared_ptr<CancellationToken> Cancel = nullptr;
  /// Run the ArtifactVerifier over the build's DP artifacts and table
  /// (Lalr1 kind; other kinds have no DP artifact chain to verify and
  /// ignore the flag). A failed verification fails the build with
  /// BuildStatus::Internal (Which = "verify") and the structured report
  /// attached to BuildResult::Verify. Off (the default) costs nothing —
  /// the pipeline never constructs verifier state, mirroring the
  /// StageTimer null-sink discipline.
  bool Verify = false;
};

} // namespace lalr

#endif // LALR_PIPELINE_BUILDOPTIONS_H
