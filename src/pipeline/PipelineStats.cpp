//===- pipeline/PipelineStats.cpp - Per-stage build metrics --------------===//

#include "pipeline/PipelineStats.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace lalr;

//===----------------------------------------------------------------------===//
// Accumulation
//===----------------------------------------------------------------------===//

void PipelineStats::addStage(std::string_view Name, double WallUs) {
  for (StageRecord &S : Stages)
    if (S.Name == Name) {
      S.WallUs += WallUs;
      return;
    }
  Stages.push_back({std::string(Name), WallUs, 0});
}

void PipelineStats::setStageThreads(std::string_view Name, uint64_t Threads) {
  for (StageRecord &S : Stages)
    if (S.Name == Name) {
      S.Threads = std::max(S.Threads, Threads);
      return;
    }
  Stages.push_back({std::string(Name), 0, Threads});
}

void PipelineStats::addCounter(std::string_view Name, uint64_t Delta) {
  for (CounterRecord &C : Counters)
    if (C.Name == Name) {
      C.Value += Delta;
      return;
    }
  Counters.push_back({std::string(Name), Delta});
}

void PipelineStats::setCounter(std::string_view Name, uint64_t Value) {
  for (CounterRecord &C : Counters)
    if (C.Name == Name) {
      C.Value = Value;
      return;
    }
  Counters.push_back({std::string(Name), Value});
}

bool PipelineStats::hasStage(std::string_view Name) const {
  for (const StageRecord &S : Stages)
    if (S.Name == Name)
      return true;
  return false;
}

double PipelineStats::stageUs(std::string_view Name) const {
  for (const StageRecord &S : Stages)
    if (S.Name == Name)
      return S.WallUs;
  return 0;
}

uint64_t PipelineStats::stageThreads(std::string_view Name) const {
  for (const StageRecord &S : Stages)
    if (S.Name == Name)
      return S.Threads;
  return 0;
}

uint64_t PipelineStats::counter(std::string_view Name) const {
  for (const CounterRecord &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return 0;
}

double PipelineStats::totalUs() const {
  double Total = 0;
  for (const StageRecord &S : Stages)
    Total += S.WallUs;
  return Total;
}

void PipelineStats::mergeFrom(const PipelineStats &O) {
  for (const StageRecord &S : O.Stages) {
    addStage(S.Name, S.WallUs);
    if (S.Threads)
      setStageThreads(S.Name, S.Threads);
  }
  for (const CounterRecord &C : O.Counters)
    addCounter(C.Name, C.Value);
}

//===----------------------------------------------------------------------===//
// JSON emission
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

// Fixed precision so that emit -> parse -> emit is byte-identical.
void appendUs(std::string &Out, double Us) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  Out += Buf;
}

} // namespace

std::string PipelineStats::toJson(bool Pretty) const {
  const char *Nl = Pretty ? "\n" : "";
  const char *Ind = Pretty ? "  " : "";
  const char *Ind2 = Pretty ? "    " : "";
  const char *Sp = Pretty ? " " : "";

  std::string Out;
  Out += '{';
  Out += Nl;
  Out += Ind;
  Out += "\"label\":";
  Out += Sp;
  appendEscaped(Out, Label);
  Out += ',';
  Out += Nl;
  Out += Ind;
  Out += "\"total_us\":";
  Out += Sp;
  appendUs(Out, totalUs());
  Out += ',';
  Out += Nl;
  Out += Ind;
  Out += "\"stages\":";
  Out += Sp;
  Out += '[';
  for (size_t I = 0; I < Stages.size(); ++I) {
    if (I)
      Out += ',';
    Out += Nl;
    Out += Ind2;
    Out += "{\"name\":";
    Out += Sp;
    appendEscaped(Out, Stages[I].Name);
    Out += ",";
    Out += Sp;
    Out += "\"wall_us\":";
    Out += Sp;
    appendUs(Out, Stages[I].WallUs);
    if (Stages[I].Threads) {
      Out += ",";
      Out += Sp;
      Out += "\"threads\":";
      Out += Sp;
      Out += std::to_string(Stages[I].Threads);
    }
    Out += '}';
  }
  if (!Stages.empty()) {
    Out += Nl;
    Out += Ind;
  }
  Out += "],";
  Out += Nl;
  Out += Ind;
  Out += "\"counters\":";
  Out += Sp;
  Out += '[';
  for (size_t I = 0; I < Counters.size(); ++I) {
    if (I)
      Out += ',';
    Out += Nl;
    Out += Ind2;
    Out += "{\"name\":";
    Out += Sp;
    appendEscaped(Out, Counters[I].Name);
    Out += ",";
    Out += Sp;
    Out += "\"value\":";
    Out += Sp;
    Out += std::to_string(Counters[I].Value);
    Out += '}';
  }
  if (!Counters.empty()) {
    Out += Nl;
    Out += Ind;
  }
  Out += ']';
  Out += Nl;
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON parsing (just enough for toJson round-trips)
//===----------------------------------------------------------------------===//

namespace {

/// Cursor over the JSON text. Every parse* method returns false on
/// malformed input and the caller unwinds to fromJson's nullopt.
class JsonCursor {
public:
  explicit JsonCursor(std::string_view S) : S(S) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= S.size() || S[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool atEnd() {
    skipWs();
    return Pos >= S.size();
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return false;
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return false;
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        if (V > 0x7f) // only escapes toJson itself emits
          return false;
        Out += static_cast<char>(V);
        break;
      }
      default:
        return false;
      }
    }
    return consume('"');
  }

  bool parseNumber(double &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = std::strtod(std::string(S.substr(Start, Pos - Start)).c_str(),
                      nullptr);
    return true;
  }

private:
  std::string_view S;
  size_t Pos = 0;
};

/// Parses one {"name":..., "<ValueKey>":...} element. Stage records
/// (\p AllowThreads) may carry an optional "threads" field.
bool parseRecord(JsonCursor &C, const char *ValueKey, bool AllowThreads,
                 std::string &Name, double &Value, double &Threads) {
  if (!C.consume('{'))
    return false;
  bool SawName = false, SawValue = false, SawAny = false;
  while (!C.peek('}')) {
    if (SawAny && !C.consume(','))
      return false;
    SawAny = true;
    std::string Key;
    if (!C.parseString(Key) || !C.consume(':'))
      return false;
    if (Key == "name") {
      if (!C.parseString(Name))
        return false;
      SawName = true;
    } else if (Key == ValueKey) {
      if (!C.parseNumber(Value))
        return false;
      SawValue = true;
    } else if (AllowThreads && Key == "threads") {
      if (!C.parseNumber(Threads))
        return false;
    } else {
      return false;
    }
  }
  return C.consume('}') && SawName && SawValue;
}

bool parseRecordArray(JsonCursor &C, const char *ValueKey, bool IsCounter,
                      PipelineStats &Out) {
  if (!C.consume('['))
    return false;
  bool First = true;
  while (!C.peek(']')) {
    if (!First && !C.consume(','))
      return false;
    First = false;
    std::string Name;
    double Value = 0;
    double Threads = 0;
    if (!parseRecord(C, ValueKey, /*AllowThreads=*/!IsCounter, Name, Value,
                     Threads))
      return false;
    if (IsCounter) {
      Out.addCounter(Name, static_cast<uint64_t>(Value));
    } else {
      Out.addStage(Name, Value);
      if (Threads > 0)
        Out.setStageThreads(Name, static_cast<uint64_t>(Threads));
    }
  }
  return C.consume(']');
}

} // namespace

std::optional<PipelineStats> PipelineStats::fromJson(std::string_view Json) {
  JsonCursor C(Json);
  PipelineStats Out;
  if (!C.consume('{'))
    return std::nullopt;
  bool First = true;
  while (!C.peek('}')) {
    if (!First && !C.consume(','))
      return std::nullopt;
    First = false;
    std::string Key;
    if (!C.parseString(Key) || !C.consume(':'))
      return std::nullopt;
    if (Key == "label") {
      if (!C.parseString(Out.Label))
        return std::nullopt;
    } else if (Key == "total_us") {
      double Ignored; // derived from stages; re-derived after parsing
      if (!C.parseNumber(Ignored))
        return std::nullopt;
    } else if (Key == "stages") {
      if (!parseRecordArray(C, "wall_us", /*IsCounter=*/false, Out))
        return std::nullopt;
    } else if (Key == "counters") {
      if (!parseRecordArray(C, "value", /*IsCounter=*/true, Out))
        return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!C.consume('}') || !C.atEnd())
    return std::nullopt;
  return Out;
}
