//===- pipeline/BuildContext.cpp - Memoized build artifacts --------------===//

#include "pipeline/BuildContext.h"

#include "pipeline/BuildOptions.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"

using namespace lalr;

namespace {

void recordGrammarCounters(PipelineStats &Stats, const Grammar &G) {
  Stats.Label = G.grammarName();
  Stats.setCounter("terminals", G.numTerminals());
  Stats.setCounter("nonterminals", G.numNonterminals());
  Stats.setCounter("productions", G.numProductions());
  Stats.setCounter("grammar_size", G.grammarSize());
}

} // namespace

BuildContext::BuildContext(Grammar &&Gr)
    : Owned(std::move(Gr)), G(&*Owned), Threads(defaultBuildThreads()) {
  recordGrammarCounters(Stats, *G);
}

BuildContext::BuildContext(const Grammar &Gr)
    : G(&Gr), Threads(defaultBuildThreads()) {
  recordGrammarCounters(Stats, *G);
}

// Out of line for the ThreadPool member's incomplete type in the header.
BuildContext::~BuildContext() = default;

void BuildContext::setThreads(unsigned N) {
  if (N == Threads)
    return;
  Threads = N;
  Pool.reset(); // rebuilt lazily at the next threadPool() call
}

ThreadPool *BuildContext::threadPool() {
  if (Threads == 0)
    return nullptr;
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Threads);
  return Pool.get();
}

void BuildContext::invalidateArtifacts() {
  An.reset();
  A.reset();
  DigraphLa.reset();
  NaiveLa.reset();
  L1.reset();
}

const GrammarAnalysis &BuildContext::analysis() {
  if (!An) {
    StageTimer T(&Stats, "analysis");
    failPoint("analysis");
    if (ActiveGuard)
      ActiveGuard->poll();
    An = std::make_unique<GrammarAnalysis>(*G);
    ++AnalysisBuilds;
  }
  return *An;
}

const Lr0Automaton &BuildContext::lr0() {
  if (!A) {
    StageTimer T(&Stats, "lr0");
    A = std::make_unique<Lr0Automaton>(Lr0Automaton::build(*G, ActiveGuard));
    ++Lr0Builds;
    T.stop();
    Stats.setCounter("lr0_states", A->numStates());
    Stats.setCounter("lr0_transitions", A->numTransitions());
  }
  return *A;
}

const LalrLookaheads &BuildContext::lookaheads(SolverKind Solver) {
  std::unique_ptr<LalrLookaheads> &Slot =
      Solver == SolverKind::Digraph ? DigraphLa : NaiveLa;
  if (!Slot) {
    const Lr0Automaton &Auto = lr0();
    const GrammarAnalysis &Analysis = analysis();
    Slot = std::make_unique<LalrLookaheads>(
        LalrLookaheads::compute(Auto, Analysis, Solver, &Stats, threadPool(),
                                ActiveGuard));
    ++LookaheadBuilds;
  }
  return *Slot;
}

const Lr1Automaton &BuildContext::lr1() {
  if (!L1) {
    const GrammarAnalysis &Analysis = analysis();
    StageTimer T(&Stats, "lr1");
    L1 = std::make_unique<Lr1Automaton>(
        Lr1Automaton::build(*G, Analysis, ActiveGuard));
    ++Lr1Builds;
    T.stop();
    Stats.setCounter("lr1_states", L1->numStates());
  }
  return *L1;
}
