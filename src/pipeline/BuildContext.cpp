//===- pipeline/BuildContext.cpp - Memoized build artifacts --------------===//

#include "pipeline/BuildContext.h"

#include "lalr/IncrementalDp.h"
#include "pipeline/BuildOptions.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"

using namespace lalr;

namespace {

void recordGrammarCounters(PipelineStats &Stats, const Grammar &G) {
  Stats.Label = G.grammarName();
  Stats.setCounter("terminals", G.numTerminals());
  Stats.setCounter("nonterminals", G.numNonterminals());
  Stats.setCounter("productions", G.numProductions());
  Stats.setCounter("grammar_size", G.grammarSize());
}

} // namespace

BuildContext::BuildContext(Grammar &&Gr)
    : Owned(std::move(Gr)), G(&*Owned), Threads(defaultBuildThreads()) {
  recordGrammarCounters(Stats, *G);
}

BuildContext::BuildContext(const Grammar &Gr)
    : G(&Gr), Threads(defaultBuildThreads()) {
  recordGrammarCounters(Stats, *G);
}

// Out of line for the ThreadPool member's incomplete type in the header.
BuildContext::~BuildContext() = default;

void BuildContext::setThreads(unsigned N) {
  if (N == Threads)
    return;
  Threads = N;
  Pool.reset(); // rebuilt lazily at the next threadPool() call
}

ThreadPool *BuildContext::threadPool() {
  if (Threads == 0)
    return nullptr;
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Threads);
  return Pool.get();
}

void BuildContext::invalidateArtifacts() {
  An.reset();
  A.reset();
  DigraphLa.reset();
  NaiveLa.reset();
  L1.reset();
}

BuildContext::EditOutcome BuildContext::applyEdit(Grammar &&NewG) {
  GrammarDelta Delta = computeGrammarDelta(*G, NewG);
  if (Owned) {
    // Move-assign into the existing object: every artifact references the
    // grammar by address, so an address-stable swap keeps ConflictLocal
    // artifacts valid and reading the new precedences.
    *Owned = std::move(NewG);
  } else {
    // A borrowing context's artifacts point at the caller's grammar
    // object, which we cannot update in place — take ownership of the new
    // grammar and rebuild from scratch.
    Owned.emplace(std::move(NewG));
    G = &*Owned;
    Delta.Class = GrammarEditClass::Structural;
  }
  return applyDelta(Delta);
}

BuildContext::EditOutcome BuildContext::applyDelta(const GrammarDelta &Delta) {
  ++Edits;
  recordGrammarCounters(Stats, *G);

  switch (Delta.Class) {
  case GrammarEditClass::Identical:
    return {Delta.Class, true};

  case GrammarEditClass::ConflictLocal:
    // Precedence / %prec / %expect feed only conflict resolution, which
    // BuildPipeline re-runs on every table fill anyway: every memoized
    // artifact (including the canonical LR(1) automaton) stays valid.
    Stats.addCounter("incremental_builds", 1);
    ++IncrementalPatches;
    return {Delta.Class, true};

  case GrammarEditClass::ProductionLocal: {
    if (!An || !A || !DigraphLa) {
      // Nothing worth patching was ever built.
      invalidateArtifacts();
      return {Delta.Class, false};
    }
    // Nullability feeds reads/includes globally; a flip means the clean
    // old relation rows are not trustworthy — full rebuild.
    std::unique_ptr<GrammarAnalysis> NewAn;
    {
      StageTimer T(&Stats, "analysis");
      NewAn = std::make_unique<GrammarAnalysis>(*G);
      ++AnalysisBuilds;
    }
    bool NullabilityChanged = false;
    for (uint32_t I = 0, E = G->numNonterminals(); I < E; ++I)
      if (An->isNullable(G->ntSymbol(I)) != NewAn->isNullable(G->ntSymbol(I))) {
        NullabilityChanged = true;
        break;
      }
    if (NullabilityChanged) {
      invalidateArtifacts();
      An = std::move(NewAn);
      return {Delta.Class, false};
    }

    // The automaton is a function of the production structure, so any
    // body edit rebuilds it from scratch (state numbering must stay
    // BFS-canonical for bit-identity); the DP solve is where the paper's
    // locality pays, and that is what patchFrom reuses.
    std::unique_ptr<Lr0Automaton> NewA;
    {
      StageTimer T(&Stats, "lr0");
      NewA = std::make_unique<Lr0Automaton>(
          Lr0Automaton::build(*G, ActiveGuard));
      ++Lr0Builds;
      T.stop();
      Stats.setCounter("lr0_states", NewA->numStates());
      Stats.setCounter("lr0_transitions", NewA->numTransitions());
    }

    DpPatchStats PS;
    std::unique_ptr<LalrLookaheads> Patched = LalrLookaheads::patchFrom(
        *A, *DigraphLa, *NewA, *NewAn, Delta.DirtyNts, PS, &Stats,
        ActiveGuard);
    An = std::move(NewAn);
    A = std::move(NewA);
    NaiveLa.reset();
    L1.reset();
    if (!Patched) {
      DigraphLa.reset();
      return {Delta.Class, false};
    }
    DigraphLa = std::move(Patched);
    ++LookaheadBuilds;
    ++IncrementalPatches;
    Stats.addCounter("incremental_builds", 1);
    Stats.addCounter("dirty_nts", PS.DirtySources);
    Stats.addCounter("dirty_sccs", PS.DirtySccs);
    Stats.addCounter("resolved_sets_reused",
                     PS.ReusedRows + PS.ReusedLaSlots);
    return {Delta.Class, true};
  }

  case GrammarEditClass::Structural:
    break;
  }
  invalidateArtifacts();
  return {GrammarEditClass::Structural, false};
}

const GrammarAnalysis &BuildContext::analysis() {
  if (!An) {
    StageTimer T(&Stats, "analysis");
    failPoint("analysis");
    if (ActiveGuard)
      ActiveGuard->poll();
    An = std::make_unique<GrammarAnalysis>(*G);
    ++AnalysisBuilds;
  }
  return *An;
}

const Lr0Automaton &BuildContext::lr0() {
  if (!A) {
    StageTimer T(&Stats, "lr0");
    A = std::make_unique<Lr0Automaton>(Lr0Automaton::build(*G, ActiveGuard));
    ++Lr0Builds;
    T.stop();
    Stats.setCounter("lr0_states", A->numStates());
    Stats.setCounter("lr0_transitions", A->numTransitions());
  }
  return *A;
}

const LalrLookaheads &BuildContext::lookaheads(SolverKind Solver) {
  std::unique_ptr<LalrLookaheads> &Slot =
      Solver == SolverKind::Digraph ? DigraphLa : NaiveLa;
  if (!Slot) {
    const Lr0Automaton &Auto = lr0();
    const GrammarAnalysis &Analysis = analysis();
    Slot = std::make_unique<LalrLookaheads>(
        LalrLookaheads::compute(Auto, Analysis, Solver, &Stats, threadPool(),
                                ActiveGuard));
    ++LookaheadBuilds;
  }
  return *Slot;
}

const Lr1Automaton &BuildContext::lr1() {
  if (!L1) {
    const GrammarAnalysis &Analysis = analysis();
    StageTimer T(&Stats, "lr1");
    L1 = std::make_unique<Lr1Automaton>(
        Lr1Automaton::build(*G, Analysis, ActiveGuard));
    ++Lr1Builds;
    T.stop();
    Stats.setCounter("lr1_states", L1->numStates());
  }
  return *L1;
}
