//===- pipeline/BuildPipeline.cpp - Grammar -> table façade --------------===//

#include "pipeline/BuildPipeline.h"

#include "baselines/BermudezLogothetis.h"
#include "baselines/Clr1Builder.h"
#include "baselines/MergedLalrBuilder.h"
#include "baselines/NqlalrBuilder.h"
#include "baselines/PagerLr1.h"
#include "baselines/SlrBuilder.h"
#include "baselines/YaccLalrBuilder.h"
#include "lalr/LalrTableBuilder.h"
#include "support/FailPoint.h"

#include <exception>

using namespace lalr;

namespace {

/// The LR(0) "table": every reduction applies on every terminal — except
/// the accept reduction, which (by the end-marker convention) applies on
/// $end only.
ParseTable buildLr0Table(const Lr0Automaton &A, const BuildGuard *Guard) {
  const Grammar &G = A.grammar();
  BitSet All(G.numTerminals());
  for (SymbolId T = 0; T < G.numTerminals(); ++T)
    All.set(T);
  BitSet EofOnly(G.numTerminals());
  EofOnly.set(G.eofSymbol());
  return fillParseTable(
      A,
      [&](StateId, ProductionId P) -> SetView {
        return P == 0 ? EofOnly : All;
      },
      Guard);
}

} // namespace

BuildResult BuildPipeline::run() {
  const Grammar &G = Ctx.grammar();
  PipelineStats &S = Ctx.stats();

  // Threads < 0 inherits the context's current setting (itself seeded
  // from LALR_THREADS); an explicit 0/N overrides it for this and later
  // runs on the context.
  if (Opts.Threads >= 0)
    Ctx.setThreads(static_cast<unsigned>(Opts.Threads));

  // Install the run's guard on the context (so the lazy artifact builds
  // are governed too) only when there is something to enforce; unguarded
  // runs pay nothing. The scope clears the context pointer on every exit
  // path, including unwinding.
  std::optional<BuildGuard> GuardStorage;
  if (Opts.Cancel || Opts.Limits.anySet())
    GuardStorage.emplace(Opts.Limits, Opts.Cancel.get());
  const BuildGuard *Guard = GuardStorage ? &*GuardStorage : nullptr;
  struct GuardScope {
    BuildContext &Ctx;
    ~GuardScope() { Ctx.setActiveGuard(nullptr); }
  } Scope{Ctx};
  Ctx.setActiveGuard(Guard);

  auto failed = [&](BuildStatus Status) {
    // Never leave a half-built memo behind: a ContextCache entry must be
    // either fully built or empty, so the retry after a failure is
    // bit-identical to an uninterrupted build.
    Ctx.invalidateArtifacts();
    if (Guard)
      S.setCounter("guard_polls", Guard->pollCount());
    BuildResult R(G, Opts.Kind, std::move(Status));
    R.Stats = S;
    R.Stats.Label = G.grammarName() + "/" + tableKindName(Opts.Kind);
    return R;
  };

  try {
    ParseTable Table = [&]() -> ParseTable {
      switch (Opts.Kind) {
      case TableKind::Lr0: {
        const Lr0Automaton &A = Ctx.lr0();
        StageTimer T(&S, "table-fill");
        return buildLr0Table(A, Guard);
      }
      case TableKind::Slr1: {
        const GrammarAnalysis &An = Ctx.analysis();
        const Lr0Automaton &A = Ctx.lr0();
        StageTimer T(&S, "table-fill");
        return buildSlrTable(A, An, Guard);
      }
      case TableKind::Nqlalr: {
        NqlalrLookaheads LA =
            NqlalrLookaheads::compute(Ctx.lr0(), Ctx.analysis(), &S);
        StageTimer T(&S, "table-fill");
        return fillParseTable(
            Ctx.lr0(),
            [&LA](StateId St, ProductionId P) -> SetView {
              return LA.la(St, P);
            },
            Guard);
      }
      case TableKind::Lalr1: {
        const LalrLookaheads &LA = Ctx.lookaheads(Opts.Solver);
        StageTimer T(&S, "table-fill");
        return fillParseTable(
            Ctx.lr0(),
            [&LA](StateId St, ProductionId P) -> SetView {
              return LA.la(St, P);
            },
            Guard);
      }
      case TableKind::Clr1: {
        const Lr1Automaton &L1 = Ctx.lr1();
        StageTimer T(&S, "table-fill");
        return buildClr1Table(L1, Guard);
      }
      case TableKind::YaccLalr: {
        YaccLalrLookaheads LA =
            YaccLalrLookaheads::compute(Ctx.lr0(), Ctx.analysis(), &S);
        StageTimer T(&S, "table-fill");
        return fillParseTable(
            Ctx.lr0(),
            [&LA](StateId St, ProductionId P) -> SetView {
              return LA.la(St, P);
            },
            Guard);
      }
      case TableKind::MergedLalr: {
        const Lr1Automaton &L1 = Ctx.lr1();
        const Lr0Automaton &A = Ctx.lr0();
        StageTimer MergeT(&S, "merge");
        MergedLalrLookaheads LA = MergedLalrLookaheads::compute(A, L1);
        MergeT.stop();
        StageTimer T(&S, "table-fill");
        return fillParseTable(
            A,
            [&LA](StateId St, ProductionId P) -> SetView {
              return LA.la(St, P);
            },
            Guard);
      }
      case TableKind::DerivedFollowLalr: {
        DerivedFollowLookaheads LA =
            DerivedFollowLookaheads::compute(Ctx.lr0(), Ctx.analysis(), &S);
        StageTimer T(&S, "table-fill");
        return fillParseTable(
            Ctx.lr0(),
            [&LA](StateId St, ProductionId P) -> SetView {
              return LA.la(St, P);
            },
            Guard);
      }
      case TableKind::Pager: {
        PagerLr1Automaton P =
            PagerLr1Automaton::build(G, Ctx.analysis(), &S, Guard);
        StageTimer T(&S, "table-fill");
        return buildPagerTable(P, Guard);
      }
      }
      __builtin_unreachable();
    }();

    BuildResult R(G, Opts.Kind, std::move(Table));

    S.setCounter("table_states", R.Table.numStates());
    S.setCounter("table_conflicts", R.Table.conflicts().size());
    S.setCounter("unresolved_shift_reduce", R.Table.unresolvedShiftReduce());
    S.setCounter("unresolved_reduce_reduce", R.Table.unresolvedReduceReduce());

    // Verification is opt-in and scoped to the DP construction: the other
    // kinds have no relations/Read/Follow/LA chain to cross-check. Off,
    // this block costs one branch (the StageTimer discipline).
    if (Opts.Verify && Opts.Kind == TableKind::Lalr1) {
      StageTimer T(&S, "verify");
      failPoint("verify");
      VerifyReport VR = verifyLalrBuild(Ctx.lr0(), Ctx.analysis(),
                                        Ctx.lookaheads(Opts.Solver), &R.Table);
      T.stop();
      S.setCounter("verify_checks", VR.ChecksRun);
      S.setCounter("verify_issues", VR.TotalIssues);
      bool VerifyOk = VR.ok();
      if (!VerifyOk) {
        BuildStatus St = BuildStatus::internal("artifact verification failed: " +
                                               VR.summary());
        St.Which = "verify";
        BuildResult F = failed(std::move(St));
        F.Verify = std::move(VR);
        return F;
      }
      R.Verify = std::move(VR);
    }

    if (Opts.Compress) {
      StageTimer T(&S, "compress");
      failPoint("compress");
      R.Compressed = CompressedTable::compress(R.Table, G);
      T.stop();
      S.setCounter("compressed_bytes", R.Compressed->footprintBytes());
      S.setCounter("compressed_explicit_actions",
                   R.Compressed->explicitActionEntries());
      S.setCounter("default_reduction_rows",
                   R.Compressed->defaultReductionRows());
    }

    R.PolicySatisfied = Opts.Conflicts == ConflictPolicy::Allow ||
                        R.Table.isAdequate();

    // Deterministic for serial builds (a pure function of the work done),
    // so compare_stats.py gates it as a structural counter.
    if (Guard)
      S.setCounter("guard_polls", Guard->pollCount());

    R.Stats = S;
    R.Stats.Label = G.grammarName() + "/" + tableKindName(Opts.Kind);
    return R;
  } catch (const BuildAbort &Abort) {
    return failed(Abort.status());
  } catch (const std::exception &E) {
    return failed(BuildStatus::internal(E.what()));
  }
}

//===----------------------------------------------------------------------===//
// Downstream conveniences
//===----------------------------------------------------------------------===//

ParseOutcome<int> lalr::recognize(const BuildResult &R,
                                  std::span<const Token> Input,
                                  const ParseOptions &Opts) {
  if (R.Compressed)
    return recognize(R.grammar(), *R.Compressed, Input, Opts);
  return recognize(R.grammar(), R.Table, Input, Opts);
}

ParseOutcome<std::unique_ptr<ParseNode>>
lalr::parseToTree(const BuildResult &R, std::span<const Token> Input,
                  const ParseOptions &Opts) {
  if (R.Compressed)
    return parseToTree(R.grammar(), *R.Compressed, Input, Opts);
  return parseToTree(R.grammar(), R.Table, Input, Opts);
}

std::string lalr::generateParserSource(const BuildResult &R,
                                       CodeGenOptions Opts) {
  if (Opts.ProvenanceJson.empty())
    Opts.ProvenanceJson = R.Stats.toJson();
  return generateParserSource(R.grammar(), R.Table, Opts);
}

std::vector<uint8_t> lalr::serializeTable(const BuildResult &R) {
  return serializeTable(R.grammar(), R.Table);
}
