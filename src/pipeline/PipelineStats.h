//===- pipeline/PipelineStats.h - Per-stage build metrics -------*- C++ -*-===//
///
/// \file
/// Observability for the grammar -> table pipeline: named wall-clock stage
/// records plus integer counters (relation edge counts, digraph SCC
/// counts, peak set sizes, table sizes), kept in first-seen order and
/// exportable as JSON. The paper's headline result is a running-time
/// comparison, so per-stage timing is the experiment itself — every bench
/// serializes one of these per grammar, giving the perf trajectory a
/// uniform machine-readable format.
///
/// This header is dependency-free (support/Timer.h only), so any layer —
/// lalr, baselines, gen, report — can record into a PipelineStats without
/// creating an include cycle with the pipeline façade.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PIPELINE_PIPELINESTATS_H
#define LALR_PIPELINE_PIPELINESTATS_H

#include "support/Timer.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lalr {

/// One named pipeline stage with its accumulated wall-clock time and the
/// worker count it ran with (0 = serial / not recorded — the JSON omits
/// the field then, keeping pre-parallel consumers working unchanged).
struct StageRecord {
  std::string Name;
  double WallUs = 0;
  uint64_t Threads = 0;
};

/// One named integer counter (edge counts, state counts, ...).
struct CounterRecord {
  std::string Name;
  uint64_t Value = 0;
};

/// Accumulator for one pipeline's stage timings and size counters.
/// Stages and counters are keyed by name: repeated additions accumulate
/// into the existing record, and records keep first-seen order so the
/// listing reads in pipeline order.
class PipelineStats {
public:
  /// Free-form label, e.g. "ansic" or "ansic/lalr1".
  std::string Label;

  /// Accumulates \p WallUs into stage \p Name (appending it on first use).
  void addStage(std::string_view Name, double WallUs);

  /// Records that stage \p Name ran with \p Threads workers (appending
  /// the stage with zero time on first use). Repeated settings keep the
  /// maximum, so a context that reran a stage wider reports the widest.
  void setStageThreads(std::string_view Name, uint64_t Threads);

  /// Accumulates \p Delta into counter \p Name.
  void addCounter(std::string_view Name, uint64_t Delta);

  /// Overwrites counter \p Name (appending it on first use).
  void setCounter(std::string_view Name, uint64_t Value);

  const std::vector<StageRecord> &stages() const { return Stages; }
  const std::vector<CounterRecord> &counters() const { return Counters; }

  bool hasStage(std::string_view Name) const;
  /// Accumulated wall-clock of one stage; 0 when absent.
  double stageUs(std::string_view Name) const;
  /// Worker count of one stage; 0 when absent or serial.
  uint64_t stageThreads(std::string_view Name) const;
  /// Value of one counter; 0 when absent.
  uint64_t counter(std::string_view Name) const;

  /// Sum of all stage wall-clock times. Monotonically non-decreasing as
  /// stages are added.
  double totalUs() const;

  bool empty() const { return Stages.empty() && Counters.empty(); }

  /// Sums \p O into this (stages and counters merge by name, new names
  /// append in \p O's order). The label is kept. Used to aggregate stats
  /// over many runs, e.g. the random-grammar census.
  void mergeFrom(const PipelineStats &O);

  /// Serializes to JSON:
  ///   {"label":"...","total_us":..,"stages":[{"name":..,"wall_us":..}],
  ///    "counters":[{"name":..,"value":..}]}
  /// \p Pretty adds newlines/indentation for files meant for humans.
  std::string toJson(bool Pretty = false) const;

  /// Parses JSON produced by toJson (either form). Returns std::nullopt
  /// on malformed input. toJson/fromJson round-trip exactly (wall-clock
  /// values are emitted with fixed precision).
  static std::optional<PipelineStats> fromJson(std::string_view Json);

private:
  std::vector<StageRecord> Stages;
  std::vector<CounterRecord> Counters;
};

/// Scope guard recording elapsed wall-clock into one stage. A null stats
/// sink makes it a true no-op — the constructor then neither copies the
/// name nor reads the clock, so instrumented hot paths cost nothing when
/// nobody is listening. \p Name must outlive the timer (every call site
/// passes a string literal).
class StageTimer {
public:
  StageTimer(PipelineStats *Stats, std::string_view Name)
      : Stats(Stats), Name(Name) {
    if (Stats)
      T.emplace();
  }
  StageTimer(const StageTimer &) = delete;
  StageTimer &operator=(const StageTimer &) = delete;
  ~StageTimer() { stop(); }

  /// Records the elapsed time now instead of at scope exit. Idempotent.
  void stop() {
    if (!Stats || Stopped)
      return;
    Stopped = true;
    Stats->addStage(Name, T->elapsedUs());
  }

private:
  PipelineStats *Stats;
  std::string_view Name;
  std::optional<Timer> T; ///< engaged (and the clock read) only with stats
  bool Stopped = false;
};

} // namespace lalr

#endif // LALR_PIPELINE_PIPELINESTATS_H
