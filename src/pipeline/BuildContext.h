//===- pipeline/BuildContext.h - Memoized build artifacts -------*- C++ -*-===//
///
/// \file
/// Owns the artifacts every table construction shares — the Grammar, its
/// GrammarAnalysis, the LR(0) automaton, the DeRemer-Pennello look-ahead
/// sets, and (for the LR(1)-family baselines) the canonical LR(1)
/// automaton — and memoizes each so that a bench comparing four builders
/// over one grammar computes the LR(0) automaton once instead of four
/// times. All accessors hand out references whose lifetime is the
/// context's; build counters expose how often each artifact was actually
/// constructed, which the reuse regression tests assert on.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_PIPELINE_BUILDCONTEXT_H
#define LALR_PIPELINE_BUILDCONTEXT_H

#include "baselines/Lr1Automaton.h"
#include "grammar/Analysis.h"
#include "grammar/GrammarEdit.h"
#include "lalr/LalrLookaheads.h"
#include "lr/Lr0Automaton.h"
#include "pipeline/PipelineStats.h"
#include "support/Cancellation.h"

#include <memory>
#include <optional>

namespace lalr {

class ThreadPool;

/// Shared, lazily-built, memoized artifacts for one grammar.
/// Not copyable or movable: BuildResult and every accessor hand out
/// pointers into this object.
class BuildContext {
public:
  /// Takes ownership of \p G (the common case: build the grammar, hand it
  /// to the context, use the context from then on).
  explicit BuildContext(Grammar &&G);

  /// Borrows \p G, which must outlive the context (for callers that keep
  /// the grammar in a corpus registry).
  explicit BuildContext(const Grammar &G);

  BuildContext(const BuildContext &) = delete;
  BuildContext &operator=(const BuildContext &) = delete;

  ~BuildContext();

  const Grammar &grammar() const { return *G; }

  /// \name Worker configuration
  /// The DP core (relations build, digraph solves, la-union) shards onto
  /// a context-owned ThreadPool when Threads > 0; 0 reverts to the serial
  /// path. New contexts start at defaultBuildThreads() (the LALR_THREADS
  /// environment override, normally 0). Parallel and serial builds are
  /// bit-identical, so artifacts memoized under one setting stay valid
  /// under another.
  /// @{
  void setThreads(unsigned N);
  unsigned threads() const { return Threads; }
  /// The pool when threads() > 0, else nullptr. Created lazily, reused
  /// across every build on this context.
  ThreadPool *threadPool();
  /// @}

  /// \name Active build guard
  /// BuildPipeline::run installs its BuildGuard here (RAII) so the lazy
  /// artifact builds the accessors below trigger are governed by the
  /// current run's cancellation token and limits. Null outside a guarded
  /// run; not owned.
  /// @{
  void setActiveGuard(const BuildGuard *Guard) { ActiveGuard = Guard; }
  const BuildGuard *activeGuard() const { return ActiveGuard; }
  /// @}

  /// \name Memoized artifacts
  /// Each is built on first access (timed into stats()) and returned by
  /// reference on every subsequent call. When a guard is installed and a
  /// build aborts (BuildAbort), the accessor leaves its memo slot empty —
  /// a later retry rebuilds from scratch.
  /// @{
  const GrammarAnalysis &analysis();
  const Lr0Automaton &lr0();
  /// DeRemer-Pennello look-ahead sets; one memo slot per solver kind, so
  /// the Fig. 3 ablation can hold both without recomputation.
  const LalrLookaheads &lookaheads(SolverKind Solver = SolverKind::Digraph);
  /// Canonical LR(1) automaton (the merged-LALR / CLR(1) substrate).
  const Lr1Automaton &lr1();
  /// @}

  /// Drops every memoized artifact (analysis, LR(0) automaton, look-ahead
  /// sets, LR(1) automaton) so the next accessor call rebuilds it. The
  /// grammar, the thread configuration, the accumulated stats and the
  /// build counters are kept — counters keep counting across an
  /// invalidation, which is what lets a cache prove "invalidating this
  /// grammar rebuilt the automaton exactly once more". This is the
  /// invalidation hook for long-lived contexts (the service-layer
  /// ContextCache and future incremental-rebuild tooling).
  void invalidateArtifacts();

  /// What applyEdit / applyDelta did with the memoized artifacts.
  struct EditOutcome {
    GrammarEditClass Class = GrammarEditClass::Structural;
    /// True when artifacts were kept (ConflictLocal) or patched in place
    /// (ProductionLocal); false means everything was dropped and the next
    /// build is from scratch.
    bool Patched = false;
  };

  /// Replaces the grammar with \p NewG and selectively invalidates: the
  /// edit is classified by layered hashing (grammar/GrammarEdit.h) and
  /// only the artifacts the touched layer feeds are dropped or patched.
  /// A ConflictLocal edit (precedence / %prec / %expect) keeps the
  /// automaton, relations, look-ahead sets and LR(1) automaton — the next
  /// pipeline run re-does conflict resolution and table emission only. A
  /// ProductionLocal edit rebuilds the automaton and patches the DP
  /// artifacts through LalrLookaheads::patchFrom. Everything else (or a
  /// patch that declines) is a full invalidation. Only valid on contexts
  /// constructed with the owning constructor; a borrowing context
  /// invalidates wholesale (its artifacts reference the caller's grammar
  /// object, which this call does not own).
  EditOutcome applyEdit(Grammar &&NewG);

  /// The artifact-side half of applyEdit, for callers that already
  /// swapped the grammar object in place (the service cache, which must
  /// keep the Grammar's address stable): applies \p Delta's
  /// classification to the memo slots. grammar() must already be the new
  /// grammar.
  EditOutcome applyDelta(const GrammarDelta &Delta);

  /// \name Edit counters
  /// @{
  size_t editCount() const { return Edits; }
  size_t incrementalPatchCount() const { return IncrementalPatches; }
  /// @}

  /// \name Build counters
  /// How many times each artifact was actually constructed. Memoization
  /// working means these stay at 1 no matter how many builders ran.
  /// @{
  size_t analysisBuildCount() const { return AnalysisBuilds; }
  size_t lr0BuildCount() const { return Lr0Builds; }
  size_t lookaheadBuildCount() const { return LookaheadBuilds; }
  size_t lr1BuildCount() const { return Lr1Builds; }
  /// @}

  /// Stage timings and size counters accumulated by this context and by
  /// every BuildPipeline run over it.
  PipelineStats &stats() { return Stats; }
  const PipelineStats &stats() const { return Stats; }

private:
  std::optional<Grammar> Owned; ///< engaged iff the owning ctor was used
  const Grammar *G;

  unsigned Threads; ///< 0 = serial; initialized from defaultBuildThreads()
  std::unique_ptr<ThreadPool> Pool; ///< engaged iff Threads > 0

  const BuildGuard *ActiveGuard = nullptr; ///< not owned; see setActiveGuard

  std::unique_ptr<GrammarAnalysis> An;
  std::unique_ptr<Lr0Automaton> A;
  std::unique_ptr<LalrLookaheads> DigraphLa;
  std::unique_ptr<LalrLookaheads> NaiveLa;
  std::unique_ptr<Lr1Automaton> L1;

  size_t AnalysisBuilds = 0;
  size_t Lr0Builds = 0;
  size_t LookaheadBuilds = 0;
  size_t Lr1Builds = 0;
  size_t Edits = 0;
  size_t IncrementalPatches = 0;

  PipelineStats Stats;
};

} // namespace lalr

#endif // LALR_PIPELINE_BUILDCONTEXT_H
