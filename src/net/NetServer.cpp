//===- net/NetServer.cpp - Loopback serving daemon ------------------------===//

#include "net/NetServer.h"

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarEdit.h"
#include "grammar/GrammarParser.h"
#include "grammar/GrammarPrinter.h"
#include "net/WireProtocol.h"
#include "service/ContextCache.h"
#include "service/Manifest.h"
#include "support/FailPoint.h"

#include <chrono>
#include <poll.h>
#include <unistd.h>

namespace lalr {

//===----------------------------------------------------------------------===//
// NetStats
//===----------------------------------------------------------------------===//

std::string NetStats::toJson(bool Pretty) const {
  const char *Sep = Pretty ? ",\n  " : ", ";
  std::string Out = Pretty ? "{\n  " : "{";
  bool First = true;
  auto Field = [&](const char *Name, uint64_t V) {
    if (!First)
      Out += Sep;
    First = false;
    Out += '"';
    Out += Name;
    Out += "\": ";
    Out += std::to_string(V);
  };
  Field("connections", Connections);
  Field("requests", Requests);
  Field("ok_responses", OkResponses);
  Field("err_responses", ErrResponses);
  Field("bad_requests", BadRequests);
  Field("flights", Flights);
  Field("coalesced", Coalesced);
  Field("shed", Shed);
  Field("drained", Drained);
  Field("accept_faults", AcceptFaults);
  Field("read_faults", ReadFaults);
  Field("write_faults", WriteFaults);
  Out += Pretty ? "\n}" : "}";
  return Out;
}

PipelineStats NetStats::toPipelineStats(std::string Label) const {
  PipelineStats Out;
  Out.Label = std::move(Label);
  Out.setCounter("net_connections", Connections);
  Out.setCounter("net_requests", Requests);
  Out.setCounter("net_ok_responses", OkResponses);
  Out.setCounter("net_err_responses", ErrResponses);
  Out.setCounter("net_bad_requests", BadRequests);
  Out.setCounter("net_flights", Flights);
  Out.setCounter("net_coalesced", Coalesced);
  Out.setCounter("net_shed", Shed);
  Out.setCounter("net_drained", Drained);
  Out.setCounter("net_accept_faults", AcceptFaults);
  Out.setCounter("net_read_faults", ReadFaults);
  Out.setCounter("net_write_faults", WriteFaults);
  return Out;
}

std::string reportNetStats(const NetStats &S) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "net: %llu connections, %llu requests (%llu ok, %llu err), "
                "%llu flights + %llu coalesced, %llu shed, %llu drained, "
                "faults a/r/w %llu/%llu/%llu\n",
                static_cast<unsigned long long>(S.Connections),
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.OkResponses),
                static_cast<unsigned long long>(S.ErrResponses),
                static_cast<unsigned long long>(S.Flights),
                static_cast<unsigned long long>(S.Coalesced),
                static_cast<unsigned long long>(S.Shed),
                static_cast<unsigned long long>(S.Drained),
                static_cast<unsigned long long>(S.AcceptFaults),
                static_cast<unsigned long long>(S.ReadFaults),
                static_cast<unsigned long long>(S.WriteFaults));
  return Buf;
}

//===----------------------------------------------------------------------===//
// NetServer
//===----------------------------------------------------------------------===//

/// One in-flight single-flight execution. Guarded by the server's
/// FlightsMu; followers hold the shared_ptr past map erasure.
struct NetServer::Flight {
  bool Done = false;
  std::string Line; ///< the response every attached request receives
};

namespace {

/// Identity of a coalescable request: everything that decides the
/// response bytes (grammar name + effective source hash, action,
/// table/driver configuration, limits, parse input). Deadlines are
/// deliberately excluded — requests differing only in deadline coalesce
/// and the leader's governance applies.
std::string requestFingerprint(const ManifestEntry &E,
                               std::string_view EffectiveSource) {
  const BuildOptions &O = E.Request.Options;
  std::string F = E.Act == ManifestEntry::Action::Parse ? "p|" : "b|";
  F += E.Request.GrammarName;
  F += '|';
  F += std::to_string(hashGrammarSource(EffectiveSource));
  F += '|';
  F += tableKindName(O.Kind);
  F += '|';
  F += std::to_string(static_cast<int>(O.Solver));
  F += O.Compress ? 'c' : '-';
  F += O.Verify ? 'v' : '-';
  F += O.Conflicts == ConflictPolicy::RequireAdequate ? 'a' : '-';
  F += '|';
  const BuildLimits &L = O.Limits;
  for (uint64_t V : {L.MaxLr0States, L.MaxLr1States, L.MaxItems,
                     L.MaxRelationEdges, L.MaxSetBits, L.MaxSlabBytes,
                     L.MaxInputTokens, L.MaxGssNodes, L.MaxEarleyItems}) {
    F += std::to_string(V);
    F += ',';
  }
  F += std::to_string(L.MaxWallMs);
  if (E.Act == ManifestEntry::Action::Parse) {
    F += '|';
    F += parserKindName(E.Driver);
    F += E.ParseDense ? 'd' : '-';
    F += '|';
    F += E.ParseInput;
  }
  return F;
}

/// Fills in a human-readable message for statuses whose renderer left it
/// empty (the wire always carries msg=).
std::string statusLine(BuildStatus Status, const std::string &Fallback) {
  if (Status.Message.empty())
    Status.Message = Fallback.empty() ? buildStatusCodeName(Status.Code)
                                      : Fallback;
  return formatStatusLine(Status);
}

} // namespace

NetServer::NetServer(Options O)
    : Opts(std::move(O)), Build(Opts.Build), Parse(Build, Opts.Parse) {}

NetServer::~NetServer() {
  if (Started.load(std::memory_order_acquire))
    drain();
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool NetServer::start(std::string &Error) {
  Listener = listenLoopback(Opts.Port, BoundPort, Error);
  if (!Listener.valid())
    return false;
  if (::pipe(WakePipe) != 0) {
    Error = "pipe failed";
    return false;
  }
  Started.store(true, std::memory_order_release);
  AcceptThread = std::thread(&NetServer::acceptLoop, this);
  return true;
}

void NetServer::notifyDrainAsync() {
  Draining.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 'q';
    // Best effort; the accept loop also re-checks the flag. The result
    // is ignored deliberately (async-signal-safe context).
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  }
}

void NetServer::drain() {
  notifyDrainAsync();
  waitDrained();
}

void NetServer::waitDrained() {
  if (!Started.load(std::memory_order_acquire))
    return;
  Draining.store(true, std::memory_order_release);
  if (AcceptThread.joinable())
    AcceptThread.join();
  // Wake admission waiters so they shed instead of sitting out their
  // timeout against a draining server.
  SlotFree.notifyAll();
  // Give in-flight executions the grace period, then cancel whatever is
  // still running; the cancelled builds return structured statuses.
  bool Idle;
  {
    MutexLock Lock(ConnMu);
    Idle = ConnsIdle.waitFor(
        Lock, std::chrono::duration<double, std::milli>(Opts.DrainGraceMs),
        [&]() LALR_REQUIRES(ConnMu) { return ActiveConns == 0; });
  }
  if (!Idle) {
    MutexLock Lock(TokensMu);
    for (auto &KV : LiveTokens)
      KV.second->cancel();
  }
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(ConnMu);
    ToJoin.swap(ConnThreads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
}

NetStats NetServer::stats() const {
  MutexLock Lock(StatsMu);
  return Counts;
}

void NetServer::acceptLoop() {
  while (!draining()) {
    pollfd Fds[2] = {{Listener.fd(), POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0)
      continue;
    if (Fds[1].revents & POLLIN)
      break;
    if (!(Fds[0].revents & POLLIN))
      continue;
    std::string Error;
    Socket Conn = acceptOn(Listener, Error);
    if (!Conn.valid())
      continue;
    bool Fault = false;
    try {
      failPoint("net_accept");
    } catch (const BuildAbort &) {
      Fault = true;
    }
    if (Fault) {
      // Simulated accept failure: the connection is dropped before any
      // byte is exchanged; the client sees EOF and retries.
      MutexLock Lock(StatsMu);
      ++Counts.AcceptFaults;
      continue;
    }
    {
      MutexLock Lock(StatsMu);
      ++Counts.Connections;
    }
    MutexLock Lock(ConnMu);
    ++ActiveConns;
    ConnThreads.emplace_back(&NetServer::handleConnection, this,
                             std::move(Conn));
  }
  Listener.close();
}

void NetServer::handleConnection(Socket Conn) {
  LineChannel Chan(std::move(Conn), "net_read", "net_write");
  constexpr double kSliceMs = 25; ///< drain-reaction latency bound
  double IdleMs = 0;
  std::string Line;

  auto Respond = [&](const std::string &Resp) -> bool {
    {
      MutexLock Lock(StatsMu);
      if (Resp.compare(0, 2, "ok") == 0)
        ++Counts.OkResponses;
      else
        ++Counts.ErrResponses;
    }
    LineChannel::Io W = Chan.writeLine(Resp, Opts.WriteTimeoutMs);
    if (W == LineChannel::Io::Fault) {
      MutexLock Lock(StatsMu);
      ++Counts.WriteFaults;
    }
    return W == LineChannel::Io::Ok;
  };

  for (;;) {
    if (draining()) {
      // Answer every request line already on the wire with a structured
      // draining status before closing — no silent drops. readLine(0)
      // returns buffered lines plus whatever is immediately readable.
      while (Chan.readLine(Line, 0) == LineChannel::Io::Ok) {
        {
          MutexLock Lock(StatsMu);
          ++Counts.Requests;
          ++Counts.Drained;
        }
        if (!Respond(formatErrLine(kWireDraining, "server draining",
                                   Opts.RetryAfterMs)))
          break;
      }
      break;
    }
    LineChannel::Io St = Chan.readLine(Line, kSliceMs);
    if (St == LineChannel::Io::Timeout) {
      IdleMs += kSliceMs;
      if (Opts.IdleTimeoutMs > 0 && IdleMs >= Opts.IdleTimeoutMs)
        break;
      continue;
    }
    IdleMs = 0;
    if (St == LineChannel::Io::Eof)
      break;
    if (St == LineChannel::Io::Fault) {
      MutexLock Lock(StatsMu);
      ++Counts.ReadFaults;
      break;
    }
    {
      MutexLock Lock(StatsMu);
      ++Counts.Requests;
    }
    if (!Respond(handleRequest(Line)))
      break;
  }

  MutexLock Lock(ConnMu);
  if (--ActiveConns == 0)
    ConnsIdle.notifyAll();
}

std::string NetServer::handleRequest(const std::string &Line) {
  if (Line == "ping")
    return formatOkLine("pong");
  if (Line == "stats")
    return formatOkLine(stats().toJson());
  if (draining()) {
    MutexLock Lock(StatsMu);
    ++Counts.Drained;
    return formatErrLine(kWireDraining, "server draining", Opts.RetryAfterMs);
  }

  auto BadRequest = [&](const std::string &Msg) {
    MutexLock Lock(StatsMu);
    ++Counts.BadRequests;
    return formatErrLine(kWireBadRequest, Msg);
  };

  std::string Error;
  std::optional<std::vector<ManifestEntry>> Entries =
      parseManifest(Line, Error);
  if (!Entries)
    return BadRequest(Error);
  if (Entries->size() != 1)
    return BadRequest("expected exactly one request per line");
  const ManifestEntry &E = (*Entries)[0];
  if (E.Repeat != 1)
    return BadRequest("repeat= is not supported over the wire");
  if (isGrammarPath(E.Request.GrammarName))
    return BadRequest("path grammars are not served (the daemon does no "
                      "file IO); inline the source or use a corpus name");
  if (E.Act == ManifestEntry::Action::Parse && !E.ParseInput.empty() &&
      E.ParseInput[0] == '@')
    return BadRequest("@file parse inputs are not served (the daemon does "
                      "no file IO); inline the sentence");
  return dispatchEntry(E);
}

std::string NetServer::dispatchEntry(const ManifestEntry &E) {
  // Fast administrative verbs: no admission, no coalescing.
  if (E.Act == ManifestEntry::Action::Invalidate ||
      E.Act == ManifestEntry::Action::Edit)
    return executeEntry(E);

  // Single-flight: followers attach to an in-flight identical request
  // without consuming an admission slot and receive the leader's
  // byte-identical response line.
  std::string EffectiveSource = E.Request.Source;
  {
    MutexLock Lock(WorkMu);
    auto It = Working.find(E.Request.GrammarName);
    if (It != Working.end())
      EffectiveSource = It->second;
  }
  std::string Key = requestFingerprint(E, EffectiveSource);
  std::shared_ptr<Flight> F;
  {
    MutexLock Lock(FlightsMu);
    auto It = Flights.find(Key);
    if (It != Flights.end()) {
      F = It->second;
      {
        MutexLock Stats(StatsMu);
        ++Counts.Coalesced;
      }
      FlightDone.wait(Lock, [&]() LALR_REQUIRES(FlightsMu) { return F->Done; });
      return F->Line;
    }
    F = std::make_shared<Flight>();
    Flights.emplace(Key, F);
    MutexLock Stats(StatsMu);
    ++Counts.Flights;
  }
  std::string Resp;
  try {
    Resp = executeEntry(E);
  } catch (...) {
    Resp = formatErrLine("internal", "unexpected exception executing request");
  }
  {
    MutexLock Lock(FlightsMu);
    F->Done = true;
    F->Line = Resp;
    Flights.erase(Key);
  }
  FlightDone.notifyAll();
  return Resp;
}

bool NetServer::acquireSlot(const CancellationToken &Token) {
  size_t Max = Opts.MaxInflight > 0 ? Opts.MaxInflight : 1;
  MutexLock Lock(AdmitMu);
  if (Inflight < Max) {
    ++Inflight;
    return true;
  }
  if (Waiters >= Opts.MaxQueueDepth)
    return false;
  ++Waiters;
  // Slices so an armed deadline or a drain can end the wait promptly
  // (neither signals the condition variable).
  double Remaining = Opts.AdmissionTimeoutMs;
  bool Admitted = false;
  while (Remaining > 0 && !Token.deadlineExpired() && !draining()) {
    double Slice = Remaining < 10 ? Remaining : 10;
    Admitted = SlotFree.waitFor(
        Lock, std::chrono::duration<double, std::milli>(Slice),
        [&]() LALR_REQUIRES(AdmitMu) { return Inflight < Max; });
    if (Admitted)
      break;
    Remaining -= Slice;
  }
  --Waiters;
  if (Admitted)
    ++Inflight;
  return Admitted;
}

void NetServer::releaseSlot() {
  {
    MutexLock Lock(AdmitMu);
    --Inflight;
  }
  SlotFree.notifyOne();
}

std::string NetServer::executeEntry(const ManifestEntry &E) {
  const std::string &Name = E.Request.GrammarName;

  if (E.Act == ManifestEntry::Action::Invalidate) {
    bool DroppedCtx = Build.invalidateGrammar(Name);
    size_t DroppedTables = Parse.invalidateGrammar(Name);
    return formatOkLine("invalidate " + Name + " " +
                        (DroppedCtx || DroppedTables ? "dropped"
                                                     : "not-cached"));
  }

  if (E.Act == ManifestEntry::Action::Edit) {
    MutexLock Lock(WorkMu);
    auto It = Working.find(Name);
    std::string Base;
    if (It != Working.end()) {
      Base = It->second;
    } else {
      // First edit of this grammar: normalize the base text via
      // print(parse(text)) so successive edits keep a stable symbol-id
      // space (same discipline as lalr_batchd's working copies).
      std::string_view Raw = E.Request.Source;
      if (Raw.empty()) {
        const CorpusEntry *CE = corpusGrammarByName(Name);
        if (!CE)
          return statusLine(BuildStatus::grammarError(
                                "edit target '" + Name +
                                "' is not a corpus grammar"),
                            {});
        Raw = CE->Source;
      }
      DiagnosticEngine Diags;
      std::optional<Grammar> G = parseGrammar(Raw, Diags, Name);
      if (!G)
        return statusLine(BuildStatus::grammarError(
                              "edit target '" + Name + "' failed to parse"),
                          {});
      Base = printGrammarText(*G);
    }
    DiagnosticEngine Diags;
    std::optional<Grammar> G = parseGrammar(Base, Diags, Name);
    std::optional<Grammar> Edited =
        G ? applyGrammarEdit(*G, E.Edit, Diags) : std::nullopt;
    if (!Edited)
      return statusLine(
          BuildStatus::grammarError("edit failed: " + Diags.render()), {});
    GrammarEditClass Class = computeGrammarDelta(*G, *Edited).Class;
    Working[Name] = printGrammarText(*Edited);
    return formatOkLine(std::string("edit ") + Name + " applied " +
                        grammarEditClassName(Class));
  }

  // Build / parse: acceptance-time governance. The token is armed the
  // moment the request is executed-from-the-wire, so admission wait
  // counts against the deadline; limits merge under the service
  // defaults inside the services themselves.
  auto Token = std::make_shared<CancellationToken>();
  double DeadlineMs =
      E.Request.DeadlineMs > 0 ? E.Request.DeadlineMs : Opts.DefaultDeadlineMs;
  if (DeadlineMs > 0)
    Token->setDeadlineMs(DeadlineMs);

  if (Token->deadlineExpired())
    return statusLine(
        BuildStatus::deadlineExceeded("deadline expired before execution"),
        {});

  if (!acquireSlot(*Token)) {
    if (Token->deadlineExpired())
      return statusLine(BuildStatus::deadlineExceeded(
                            "deadline expired waiting for admission"),
                        {});
    if (draining()) {
      MutexLock Lock(StatsMu);
      ++Counts.Drained;
      return formatErrLine(kWireDraining, "server draining",
                           Opts.RetryAfterMs);
    }
    MutexLock Lock(StatsMu);
    ++Counts.Shed;
    return formatErrLine(kWireShed, "admission queue full",
                         Opts.RetryAfterMs);
  }

  uint64_t TokenId;
  {
    MutexLock Lock(TokensMu);
    TokenId = NextTokenId++;
    LiveTokens.emplace(TokenId, Token);
  }

  // Test-determinism hook: the flight is published (followers can
  // attach and be counted) and the admission slot is held (a blocked
  // hook saturates admission), but nothing has executed yet.
  if (Opts.OnLeaderExecute)
    Opts.OnLeaderExecute();

  std::string Resp;
  if (E.Act == ManifestEntry::Action::Parse) {
    ParseRequest PR;
    PR.GrammarName = Name;
    PR.Source = E.Request.Source;
    PR.Options = E.Request.Options;
    PR.Options.Cancel = Token;
    PR.Driver = E.Driver;
    PR.Dense = E.ParseDense;
    PR.Input = E.ParseInput;
    {
      MutexLock Lock(WorkMu);
      auto It = Working.find(Name);
      if (It != Working.end())
        PR.Source = It->second;
    }
    ParseResponse R = Parse.run(PR);
    if (!R.Ok) {
      Resp = statusLine(R.Status, R.Error);
    } else {
      std::string Body = "parse ";
      Body += Name;
      Body += ' ';
      Body += parserKindName(R.Driver);
      Body += R.Accepted ? " accepted" : " rejected";
      Body += " tokens=" + std::to_string(R.Tokens);
      Body += " reductions=" + std::to_string(R.Reductions);
      if (R.ForestNodes)
        Body += " forest=" + std::to_string(R.ForestNodes);
      if (!R.Errors.empty())
        Body += " errors=" + std::to_string(R.Errors.size());
      if (E.ParseDense)
        Body += " dense";
      Resp = formatOkLine(Body);
    }
  } else {
    ServiceRequest R = E.Request;
    R.Options.Cancel = Token;
    R.DeadlineMs = 0; // armed above, at wire acceptance
    {
      MutexLock Lock(WorkMu);
      auto It = Working.find(Name);
      if (It != Working.end())
        R.Source = It->second;
    }
    std::vector<ServiceResponse> Out = Build.runBatch({&R, 1});
    const ServiceResponse &SR = Out[0];
    if (!SR.Ok) {
      Resp = statusLine(SR.Status, SR.Error);
    } else {
      const ParseTable &T = SR.Result->Table;
      std::string Body = "build ";
      Body += Name;
      Body += ' ';
      Body += tableKindName(R.Options.Kind);
      Body += " states=" + std::to_string(T.numStates());
      Body += " conflicts=" + std::to_string(T.conflicts().size());
      if (SR.Result->Compressed)
        Body += " compressed";
      if (SR.Result->Verify)
        Body += " verified";
      if (!SR.Result->PolicySatisfied)
        Body += " policy-violated";
      Resp = formatOkLine(Body);
    }
  }

  {
    MutexLock Lock(TokensMu);
    LiveTokens.erase(TokenId);
  }
  releaseSlot();
  return Resp;
}

} // namespace lalr
