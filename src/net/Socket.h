//===- net/Socket.h - Loopback TCP primitives -------------------*- C++ -*-===//
///
/// \file
/// The thin POSIX layer under the serving daemon: an RAII socket handle,
/// loopback-only listen/accept/connect helpers, and a poll-driven
/// LineChannel that frames the wire protocol's newline-terminated lines
/// with per-operation timeouts. Everything is non-blocking underneath so
/// a slow or stalled peer can never wedge a server thread past its
/// timeout slice (the accept loop and the connection loops poll in
/// bounded slices and re-check the drain flag between them).
///
/// Fault injection: a LineChannel constructed with failpoint site names
/// consults them (`net_read` / `net_write`) at the top of each
/// operation and converts an injected BuildAbort into Io::Fault — the
/// same observable outcome as a torn read or a mid-response disconnect,
/// which is exactly what the sites simulate. The server passes the site
/// names; the client passes none, so in-process loopback tests inject
/// faults into exactly one side of the wire.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_NET_SOCKET_H
#define LALR_NET_SOCKET_H

#include <cstdint>
#include <string>
#include <string_view>

namespace lalr {

/// Move-only RAII file-descriptor handle.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  void close();

  /// Half-closes the read side (wakes a blocked peer write with EOF);
  /// used by drain to refuse further requests without losing the
  /// response in flight.
  void shutdownRead();

private:
  int Fd = -1;
};

/// Binds and listens on 127.0.0.1:\p Port (0 = ephemeral) and fills
/// \p BoundPort with the actual port. Invalid socket + \p Error on
/// failure.
Socket listenLoopback(uint16_t Port, uint16_t &BoundPort, std::string &Error);

/// Accepts one pending connection (call after poll says readable).
/// Invalid socket + \p Error when the accept fails or would block.
Socket acceptOn(const Socket &Listener, std::string &Error);

/// Connects to 127.0.0.1:\p Port, waiting up to \p TimeoutMs. Invalid
/// socket + \p Error on failure/timeout.
Socket connectLoopback(uint16_t Port, double TimeoutMs, std::string &Error);

/// Waits up to \p TimeoutMs for \p Fd to become readable. Returns 1 when
/// readable, 0 on timeout, -1 on error. TimeoutMs < 0 waits forever.
int waitReadable(int Fd, double TimeoutMs);

/// Newline-framed, poll-driven channel over one connection.
class LineChannel {
public:
  enum class Io : uint8_t {
    Ok,      ///< line transferred
    Eof,     ///< peer closed (read) / connection gone (write)
    Timeout, ///< the per-operation deadline passed
    Fault,   ///< transport error or an injected net_read/net_write fault
  };

  /// \p ReadSite / \p WriteSite are failpoint site names consulted at
  /// the top of readLine/writeLine (nullptr = no injection on this
  /// side). Must be string literals (not copied).
  explicit LineChannel(Socket Conn, const char *ReadSite = nullptr,
                       const char *WriteSite = nullptr)
      : Conn(std::move(Conn)), ReadSite(ReadSite), WriteSite(WriteSite) {}

  /// Reads one line (newline stripped) into \p Out, waiting up to
  /// \p TimeoutMs (< 0 = forever; 0 = only what is already buffered or
  /// immediately readable).
  Io readLine(std::string &Out, double TimeoutMs);

  /// Writes \p Line plus a newline, waiting up to \p TimeoutMs for the
  /// socket to drain.
  Io writeLine(std::string_view Line, double TimeoutMs);

  /// True when a complete line is already buffered (readLine(0) will
  /// succeed without touching the socket).
  bool hasBufferedLine() const { return Buf.find('\n') != std::string::npos; }

  Socket &socket() { return Conn; }

private:
  Socket Conn;
  std::string Buf; ///< bytes read past the last returned line
  const char *ReadSite;
  const char *WriteSite;
};

} // namespace lalr

#endif // LALR_NET_SOCKET_H
