//===- net/WireProtocol.h - Line protocol for the serving daemon -*- C++ -*-===//
///
/// \file
/// The wire dialect `lalr_served` speaks: requests are single lines in
/// the existing manifest vocabulary (service/Manifest.h — `build`,
/// `parse`, `edit`, `invalidate` with the same option tokens), plus the
/// daemon verbs `ping` and `stats`. Every request gets exactly one
/// response line:
///
///   ok <body>
///   err <code> [which=W] [observed=N] [limit=N] [retry-after-ms=N]
///       msg=<escaped text>
///
/// `<code>` is a buildStatusCodeName (grammar-error, limit-exceeded,
/// deadline-exceeded, cancelled, internal) or one of the daemon's own
/// codes: `shed` (admission control rejected the request; retry after
/// the hinted delay), `draining` (the server is shutting down; the
/// request was not executed), `bad-request` (the line did not parse or
/// used a feature the wire forbids, e.g. file IO). `msg=` is always the
/// last field and consumes the rest of the line.
///
/// Bodies and messages are escaped so a response is always exactly one
/// line: `\n` -> `\\n`, `\r` -> `\\r`, `\\` -> `\\\\`. Response bodies
/// deliberately contain no timings and no cache hit/miss markers — a
/// coalesced follower and a retry after a torn write both receive a
/// byte-identical line for the same request (the idempotency the retry
/// tests assert); observability goes through the `stats` verb instead.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_NET_WIREPROTOCOL_H
#define LALR_NET_WIREPROTOCOL_H

#include "support/Cancellation.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace lalr {

/// \name Daemon-level status codes (beyond BuildStatusCode)
/// @{
inline constexpr const char *kWireShed = "shed";
inline constexpr const char *kWireDraining = "draining";
inline constexpr const char *kWireBadRequest = "bad-request";
/// @}

/// Escapes \p Text into a single-line-safe form (newline, carriage
/// return and backslash become two-character escapes).
std::string escapeWire(std::string_view Text);

/// Inverse of escapeWire. Unknown escapes pass through verbatim.
std::string unescapeWire(std::string_view Text);

/// One parsed response line (either form).
struct WireResponse {
  bool Ok = false;
  /// ok: the unescaped body. err: empty.
  std::string Body;
  /// err: the status code token ("shed", "grammar-error", ...).
  std::string Code;
  /// err: structured LimitExceeded detail when present.
  std::string Which;
  uint64_t Observed = 0;
  uint64_t Limit = 0;
  /// err: backoff hint for shed/draining, milliseconds; 0 = none.
  double RetryAfterMs = 0;
  /// err: the unescaped human-readable message.
  std::string Message;

  /// True for the two codes a client may always retry (the server did
  /// not execute the request).
  bool retryable() const { return Code == kWireShed || Code == kWireDraining; }
};

/// Renders `ok <body>` (body escaped).
std::string formatOkLine(std::string_view Body);

/// Renders an `err` line for a daemon-level code. \p RetryAfterMs > 0
/// adds the backoff hint field.
std::string formatErrLine(std::string_view Code, std::string_view Message,
                          double RetryAfterMs = 0);

/// Renders an `err` line from a structured BuildStatus (never call with
/// an Ok status). Carries which/observed/limit for LimitExceeded.
std::string formatStatusLine(const BuildStatus &Status);

/// Parses one response line into \p Out. Returns false (with \p Error
/// set) when the line matches neither form.
bool parseResponseLine(std::string_view Line, WireResponse &Out,
                       std::string &Error);

} // namespace lalr

#endif // LALR_NET_WIREPROTOCOL_H
