//===- net/Socket.cpp - Loopback TCP primitives ---------------------------===//

#include "net/Socket.h"

#include "support/Cancellation.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lalr {

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

static bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

static std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

Socket listenLoopback(uint16_t Port, uint16_t &BoundPort, std::string &Error) {
  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    Error = errnoMessage("socket");
    return {};
  }
  int One = 1;
  ::setsockopt(S.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoMessage("bind");
    return {};
  }
  if (::listen(S.fd(), 64) != 0) {
    Error = errnoMessage("listen");
    return {};
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(S.fd(), reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Error = errnoMessage("getsockname");
    return {};
  }
  BoundPort = ntohs(Addr.sin_port);
  if (!setNonBlocking(S.fd())) {
    Error = errnoMessage("fcntl");
    return {};
  }
  return S;
}

Socket acceptOn(const Socket &Listener, std::string &Error) {
  int Fd = ::accept(Listener.fd(), nullptr, nullptr);
  if (Fd < 0) {
    Error = errnoMessage("accept");
    return {};
  }
  Socket S(Fd);
  if (!setNonBlocking(Fd)) {
    Error = errnoMessage("fcntl");
    return {};
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return S;
}

Socket connectLoopback(uint16_t Port, double TimeoutMs, std::string &Error) {
  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    Error = errnoMessage("socket");
    return {};
  }
  if (!setNonBlocking(S.fd())) {
    Error = errnoMessage("fcntl");
    return {};
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      Error = errnoMessage("connect");
      return {};
    }
    pollfd P{S.fd(), POLLOUT, 0};
    int N = ::poll(&P, 1, TimeoutMs < 0 ? -1 : static_cast<int>(TimeoutMs));
    if (N <= 0) {
      Error = N == 0 ? "connect: timed out" : errnoMessage("poll");
      return {};
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(S.fd(), SOL_SOCKET, SO_ERROR, &Err, &Len) != 0 ||
        Err != 0) {
      errno = Err;
      Error = errnoMessage("connect");
      return {};
    }
  }
  int One = 1;
  ::setsockopt(S.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return S;
}

int waitReadable(int Fd, double TimeoutMs) {
  pollfd P{Fd, POLLIN, 0};
  return ::poll(&P, 1, TimeoutMs < 0 ? -1 : static_cast<int>(TimeoutMs));
}

/// Consults \p Site (when set) and reports whether an injected fault
/// fired. The BuildAbort a failpoint throws is translated into the
/// transport-error return the site simulates.
static bool injectedFault(const char *Site) {
  if (!Site)
    return false;
  try {
    failPoint(Site);
  } catch (const BuildAbort &) {
    return true;
  }
  return false;
}

/// Milliseconds remaining until \p Deadline (clamped at 0), or -1 for
/// the wait-forever sentinel.
static double remainingMs(
    const std::chrono::steady_clock::time_point *Deadline) {
  if (!Deadline)
    return -1;
  auto Now = std::chrono::steady_clock::now();
  double Ms =
      std::chrono::duration<double, std::milli>(*Deadline - Now).count();
  return Ms > 0 ? Ms : 0;
}

LineChannel::Io LineChannel::readLine(std::string &Out, double TimeoutMs) {
  if (injectedFault(ReadSite))
    return Io::Fault;
  std::chrono::steady_clock::time_point DeadlineStorage;
  const std::chrono::steady_clock::time_point *Deadline = nullptr;
  if (TimeoutMs >= 0) {
    DeadlineStorage = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(TimeoutMs));
    Deadline = &DeadlineStorage;
  }
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Out.assign(Buf, 0, Nl);
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      Buf.erase(0, Nl + 1);
      return Io::Ok;
    }
    double Wait = remainingMs(Deadline);
    int N = waitReadable(Conn.fd(), Wait);
    if (N == 0)
      return Io::Timeout;
    if (N < 0)
      return errno == EINTR ? Io::Timeout : Io::Fault;
    char Chunk[4096];
    ssize_t Got = ::recv(Conn.fd(), Chunk, sizeof(Chunk), 0);
    if (Got == 0)
      return Io::Eof;
    if (Got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        continue;
      return Io::Fault;
    }
    Buf.append(Chunk, static_cast<size_t>(Got));
  }
}

LineChannel::Io LineChannel::writeLine(std::string_view Line,
                                       double TimeoutMs) {
  if (injectedFault(WriteSite))
    return Io::Fault;
  std::string Frame(Line);
  Frame += '\n';
  std::chrono::steady_clock::time_point DeadlineStorage;
  const std::chrono::steady_clock::time_point *Deadline = nullptr;
  if (TimeoutMs >= 0) {
    DeadlineStorage = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(TimeoutMs));
    Deadline = &DeadlineStorage;
  }
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t Sent = ::send(Conn.fd(), Frame.data() + Off, Frame.size() - Off,
                          MSG_NOSIGNAL);
    if (Sent > 0) {
      Off += static_cast<size_t>(Sent);
      continue;
    }
    if (Sent < 0 && (errno == EPIPE || errno == ECONNRESET))
      return Io::Eof;
    if (Sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return Io::Fault;
    pollfd P{Conn.fd(), POLLOUT, 0};
    double Wait = remainingMs(Deadline);
    int N = ::poll(&P, 1, Wait < 0 ? -1 : static_cast<int>(Wait));
    if (N == 0)
      return Io::Timeout;
    if (N < 0 && errno != EINTR)
      return Io::Fault;
  }
  return Io::Ok;
}

} // namespace lalr
