//===- net/WireProtocol.cpp - Line protocol for the serving daemon --------===//

#include "net/WireProtocol.h"

#include <charconv>

namespace lalr {

std::string escapeWire(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescapeWire(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size(); ++I) {
    if (Text[I] != '\\' || I + 1 == Text.size()) {
      Out += Text[I];
      continue;
    }
    switch (Text[++I]) {
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case '\\':
      Out += '\\';
      break;
    default: // unknown escape: keep both characters
      Out += '\\';
      Out += Text[I];
    }
  }
  return Out;
}

std::string formatOkLine(std::string_view Body) {
  std::string Out = "ok ";
  Out += escapeWire(Body);
  return Out;
}

std::string formatErrLine(std::string_view Code, std::string_view Message,
                          double RetryAfterMs) {
  std::string Out = "err ";
  Out += Code;
  if (RetryAfterMs > 0) {
    Out += " retry-after-ms=";
    Out += std::to_string(static_cast<uint64_t>(RetryAfterMs));
  }
  Out += " msg=";
  Out += escapeWire(Message);
  return Out;
}

std::string formatStatusLine(const BuildStatus &Status) {
  std::string Out = "err ";
  Out += buildStatusCodeName(Status.Code);
  if (!Status.Which.empty()) {
    Out += " which=";
    Out += escapeWire(Status.Which);
  }
  if (Status.Observed) {
    Out += " observed=";
    Out += std::to_string(Status.Observed);
  }
  if (Status.Limit) {
    Out += " limit=";
    Out += std::to_string(Status.Limit);
  }
  Out += " msg=";
  Out += escapeWire(Status.Message);
  return Out;
}

static bool parseU64(std::string_view Text, uint64_t &Out) {
  const char *B = Text.data(), *E = B + Text.size();
  auto [P, Ec] = std::from_chars(B, E, Out);
  return Ec == std::errc() && P == E;
}

bool parseResponseLine(std::string_view Line, WireResponse &Out,
                       std::string &Error) {
  Out = WireResponse{};
  if (Line.size() >= 3 && Line.substr(0, 3) == "ok ") {
    Out.Ok = true;
    Out.Body = unescapeWire(Line.substr(3));
    return true;
  }
  if (Line == "ok") {
    Out.Ok = true;
    return true;
  }
  if (Line.size() < 4 || Line.substr(0, 4) != "err ") {
    Error = "malformed response line: '" + std::string(Line) + "'";
    return false;
  }
  std::string_view Rest = Line.substr(4);
  size_t Sp = Rest.find(' ');
  Out.Code = std::string(Rest.substr(0, Sp));
  if (Out.Code.empty()) {
    Error = "err response with empty code";
    return false;
  }
  Rest = Sp == std::string_view::npos ? std::string_view() : Rest.substr(Sp + 1);
  // Key=value fields; msg= is last and consumes the remainder.
  while (!Rest.empty()) {
    if (Rest.substr(0, 4) == "msg=") {
      Out.Message = unescapeWire(Rest.substr(4));
      return true;
    }
    size_t End = Rest.find(' ');
    std::string_view Field = Rest.substr(0, End);
    Rest = End == std::string_view::npos ? std::string_view()
                                         : Rest.substr(End + 1);
    size_t Eq = Field.find('=');
    if (Eq == std::string_view::npos) {
      Error = "malformed err field '" + std::string(Field) + "'";
      return false;
    }
    std::string_view Key = Field.substr(0, Eq);
    std::string_view Val = Field.substr(Eq + 1);
    uint64_t N = 0;
    if (Key == "which") {
      Out.Which = unescapeWire(Val);
    } else if (Key == "observed" && parseU64(Val, N)) {
      Out.Observed = N;
    } else if (Key == "limit" && parseU64(Val, N)) {
      Out.Limit = N;
    } else if (Key == "retry-after-ms" && parseU64(Val, N)) {
      Out.RetryAfterMs = static_cast<double>(N);
    } else {
      // Unknown fields are skipped so the protocol can grow; malformed
      // numeric values in known fields are an error.
      if (Key == "observed" || Key == "limit" || Key == "retry-after-ms") {
        Error = "malformed numeric field '" + std::string(Field) + "'";
        return false;
      }
    }
  }
  Error = "err response missing msg= field";
  return false;
}

} // namespace lalr
