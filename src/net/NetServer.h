//===- net/NetServer.h - Loopback serving daemon ----------------*- C++ -*-===//
///
/// \file
/// The fault-tolerant network front end over BuildService/ParseService:
/// a loopback TCP daemon speaking the manifest dialect one line per
/// request, one response line per request (net/WireProtocol.h). One
/// thread per connection; requests on a connection are strictly
/// serialized (the protocol's ordering guarantee doubles as the
/// per-connection queue bound — at most one request is ever admitted
/// per connection, and pipelined bytes beyond it sit in the kernel
/// socket buffer, which is itself bounded).
///
/// Robustness machinery:
///
///  * Acceptance-time governance: each request's deadline is armed on a
///    fresh CancellationToken the moment its line is read, so admission
///    wait counts against it; BuildLimits merge field-by-field under the
///    service defaults exactly like in-process requests.
///  * Admission control: a global in-flight ceiling plus a bounded wait
///    queue. A request that cannot be admitted within its timeout (or
///    finds the wait queue full) is shed with `err shed
///    retry-after-ms=N` — the server never stalls a client silently.
///  * Single-flight coalescing: identical in-flight requests (same
///    grammar source hash, action, kind/driver, options, input) across
///    all connections attach to one execution; followers bypass
///    admission and receive the leader's byte-identical response line.
///    NetStats::Coalesced counts the followers, so K concurrent
///    duplicates prove exactly one build (counters assert it).
///  * Graceful drain: notifyDrainAsync() (async-signal-safe, called
///    from SIGTERM handlers) stops the accept loop; connection threads
///    answer every request line already on the wire with `err draining`
///    and close; in-flight executions get DrainGraceMs to finish before
///    their tokens are cancelled — every accepted request ends with a
///    structured status, never a silent drop.
///  * Fault injection: the accept loop honors `net_accept` (the
///    accepted connection is dropped, as if accept failed) and every
///    connection channel honors `net_read`/`net_write`, so torn reads
///    and mid-response disconnects are testable; NetClient's retries
///    survive all three.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_NET_NETSERVER_H
#define LALR_NET_NETSERVER_H

#include "net/Socket.h"
#include "parse/ParseService.h"
#include "service/BuildService.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lalr {

struct ManifestEntry;

/// Snapshot of a NetServer's lifetime counters. Plain data: take a copy
/// via NetServer::stats() and read it without locking.
struct NetStats {
  uint64_t Connections = 0;  ///< connections accepted
  uint64_t Requests = 0;     ///< request lines read (every disposition)
  uint64_t OkResponses = 0;  ///< answered `ok`
  uint64_t ErrResponses = 0; ///< answered `err` (any code)
  uint64_t BadRequests = 0;  ///< answered `err bad-request`
  uint64_t Flights = 0;      ///< single-flight groups executed (leaders)
  uint64_t Coalesced = 0;    ///< followers attached to an in-flight leader
  uint64_t Shed = 0;         ///< admission control rejected (err shed)
  uint64_t Drained = 0;      ///< answered `err draining` during drain
  uint64_t AcceptFaults = 0; ///< net_accept faults (connection dropped)
  uint64_t ReadFaults = 0;   ///< net_read faults (connection closed)
  uint64_t WriteFaults = 0;  ///< net_write faults (response torn)

  /// Serializes to one JSON object (all counters).
  std::string toJson(bool Pretty = false) const;

  /// Folds the counters into a PipelineStats as "net_*" counters
  /// (net_requests / net_coalesced / net_shed / net_drained are gated
  /// structural counters in scripts/compare_stats.py).
  PipelineStats toPipelineStats(std::string Label) const;
};

/// Human-readable multi-line listing (the daemon's shutdown summary).
std::string reportNetStats(const NetStats &S);

/// The loopback serving daemon. start() binds and spawns the accept
/// loop; drain() (or notifyDrainAsync() from a signal handler followed
/// by waitDrained()) shuts it down gracefully.
class NetServer {
public:
  struct Options {
    /// Port to bind on 127.0.0.1 (0 = ephemeral; read back via port()).
    uint16_t Port = 0;
    /// Configuration for the owned BuildService / ParseService.
    BuildService::Options Build;
    ParseService::Options Parse;
    /// Deadline armed on requests that carry no deadline-ms of their
    /// own (milliseconds from line read; 0 = none).
    double DefaultDeadlineMs = 0;
    /// Global ceiling on concurrently executing requests (admission
    /// slots; clamped to >= 1).
    size_t MaxInflight = 8;
    /// Bound on requests waiting for a slot across all connections;
    /// a request arriving with the wait queue full is shed at once.
    size_t MaxQueueDepth = 16;
    /// How long an admission wait may last before the request is shed
    /// (milliseconds; an armed request deadline caps it further).
    double AdmissionTimeoutMs = 100;
    /// Backoff hint attached to shed/draining responses, milliseconds.
    double RetryAfterMs = 25;
    /// Per-operation wire timeouts (milliseconds; <= 0 = no limit).
    double WriteTimeoutMs = 5000;
    /// Idle cutoff: a connection with no request line for this long is
    /// closed (milliseconds; <= 0 = never).
    double IdleTimeoutMs = 0;
    /// Drain: how long in-flight executions may keep running after the
    /// drain began before their cancellation tokens fire.
    double DrainGraceMs = 2000;
    /// Test-determinism hook: run by a single-flight leader after its
    /// flight is published (followers can attach) and its admission
    /// slot is acquired, before anything executes. Tests block here
    /// until NetStats::Coalesced reaches the expected count (race-free
    /// coalescing proof) or to hold the slot and prove shedding.
    std::function<void()> OnLeaderExecute;
  };

  explicit NetServer(Options Opts);
  ~NetServer();

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds the listener and starts the accept loop. False + \p Error on
  /// bind failure.
  bool start(std::string &Error);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Begins a graceful drain. Async-signal-safe: one atomic store plus
  /// one write() to the accept loop's wake pipe. Call waitDrained() (or
  /// drain()) from normal context to finish the shutdown.
  void notifyDrainAsync();

  /// notifyDrainAsync() + waitDrained().
  void drain();

  /// Blocks until the accept loop and every connection thread have
  /// exited: in-flight requests finish (or are cancelled after
  /// DrainGraceMs), queued lines are answered `err draining`, and all
  /// connections are closed.
  void waitDrained();

  /// True once a drain has been requested.
  bool draining() const { return Draining.load(std::memory_order_acquire); }

  NetStats stats() const;
  BuildService &buildService() { return Build; }
  ParseService &parseService() { return Parse; }

private:
  struct Flight;

  void acceptLoop();
  void handleConnection(Socket Conn);

  /// Parses and executes one request line; returns the response line.
  std::string handleRequest(const std::string &Line);

  /// Validates the parsed entry for wire use and executes it (through
  /// the single-flight map for build/parse).
  std::string dispatchEntry(const ManifestEntry &Entry);

  /// Executes one admitted entry against the services.
  std::string executeEntry(const ManifestEntry &Entry);

  /// Admission control. True = a slot is held (release with
  /// releaseSlot()); false = shed (response already decided).
  bool acquireSlot(const CancellationToken &Token);
  void releaseSlot();

  const Options Opts;
  BuildService Build;
  ParseService Parse;

  Socket Listener;
  uint16_t BoundPort = 0;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Started{false};
  int WakePipe[2] = {-1, -1};
  std::thread AcceptThread;

  Mutex ConnMu{"net.conns", lockrank::NetConns};
  std::vector<std::thread> ConnThreads LALR_GUARDED_BY(ConnMu);
  size_t ActiveConns LALR_GUARDED_BY(ConnMu) = 0;
  CondVar ConnsIdle;

  /// Admission slots + bounded wait queue.
  Mutex AdmitMu{"net.admit", lockrank::NetAdmit};
  CondVar SlotFree;
  size_t Inflight LALR_GUARDED_BY(AdmitMu) = 0;
  size_t Waiters LALR_GUARDED_BY(AdmitMu) = 0;

  /// Single-flight: fingerprint -> in-flight execution. Followers hold
  /// the shared_ptr and wait on FlightDone; the leader publishes the
  /// response line and erases the map entry.
  Mutex FlightsMu{"net.flights", lockrank::NetFlights};
  CondVar FlightDone;
  std::unordered_map<std::string, std::shared_ptr<Flight>>
      Flights LALR_GUARDED_BY(FlightsMu);

  /// Working sources for wire `edit` targets (normalized on first
  /// edit, exactly like lalr_batchd's working copies).
  Mutex WorkMu{"net.work", lockrank::NetWork};
  std::unordered_map<std::string, std::string> Working LALR_GUARDED_BY(WorkMu);

  /// Tokens of requests currently executing, so drain can cancel
  /// whatever outlives the grace period.
  Mutex TokensMu{"net.tokens", lockrank::NetTokens};
  uint64_t NextTokenId LALR_GUARDED_BY(TokensMu) = 1;
  std::unordered_map<uint64_t, std::shared_ptr<CancellationToken>>
      LiveTokens LALR_GUARDED_BY(TokensMu);

  mutable Mutex StatsMu{"net.stats", lockrank::NetStats};
  NetStats Counts LALR_GUARDED_BY(StatsMu);
};

} // namespace lalr

#endif // LALR_NET_NETSERVER_H
