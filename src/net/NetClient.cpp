//===- net/NetClient.cpp - Retrying daemon client -------------------------===//

#include "net/NetClient.h"

#include <chrono>
#include <thread>

namespace lalr {

bool isIdempotentRequestLine(std::string_view Line) {
  size_t Start = Line.find_first_not_of(" \t");
  if (Start == std::string_view::npos)
    return true;
  size_t End = Line.find_first_of(" \t", Start);
  std::string_view Verb = Line.substr(
      Start, End == std::string_view::npos ? std::string_view::npos
                                           : End - Start);
  return Verb != "edit";
}

void NetClient::backoff(unsigned AttemptIdx, double MinMs) {
  double Ms = Opts.BackoffBaseMs;
  for (unsigned I = 0; I < AttemptIdx && Ms < Opts.BackoffCapMs; ++I)
    Ms *= 2;
  if (Ms > Opts.BackoffCapMs)
    Ms = Opts.BackoffCapMs;
  if (Opts.BackoffBaseMs >= 1)
    Ms += static_cast<double>(
        Jitter.below(static_cast<uint64_t>(Opts.BackoffBaseMs)));
  if (Ms < MinMs)
    Ms = MinMs;
  if (Ms > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(Ms));
}

NetClient::Attempt NetClient::attemptOnce(std::string_view Line,
                                          WireResponse &Out,
                                          std::string &Error) {
  if (!Chan) {
    Socket Conn = connectLoopback(Opts.Port, Opts.ConnectTimeoutMs, Error);
    if (!Conn.valid())
      return Attempt::NotSent;
    Chan = std::make_unique<LineChannel>(std::move(Conn));
  }
  LineChannel::Io W = Chan->writeLine(Line, Opts.IoTimeoutMs);
  if (W != LineChannel::Io::Ok) {
    Error = "request write failed";
    Chan.reset();
    // A failed write may still have pushed bytes into the socket before
    // the connection died; only a failed connect is provably unsent.
    return Attempt::MaybeSent;
  }
  std::string Resp;
  LineChannel::Io R = Chan->readLine(Resp, Opts.IoTimeoutMs);
  if (R != LineChannel::Io::Ok) {
    Error = R == LineChannel::Io::Timeout ? "response timed out"
            : R == LineChannel::Io::Eof   ? "connection closed mid-response"
                                          : "response read failed";
    Chan.reset();
    return Attempt::MaybeSent;
  }
  if (!parseResponseLine(Resp, Out, Error)) {
    Chan.reset();
    return Attempt::MaybeSent;
  }
  return Attempt::Ok;
}

bool NetClient::request(std::string_view Line, WireResponse &Out,
                        std::string &Error) {
  unsigned MaxAttempts = Opts.MaxAttempts > 0 ? Opts.MaxAttempts : 1;
  bool Idempotent = isIdempotentRequestLine(Line) || Opts.RetryNonIdempotent;
  Error.clear();
  for (unsigned A = 0;; ++A) {
    std::string AttemptError;
    Attempt St = attemptOnce(Line, Out, AttemptError);
    if (St == Attempt::Ok) {
      // A shed/draining response is an explicit "try again later": the
      // server did not execute the request, so resending is safe for
      // every verb. Honor its delay hint as the backoff floor.
      if (!Out.Ok && Out.retryable() && A + 1 < MaxAttempts) {
        ++Retries;
        backoff(A, Out.RetryAfterMs);
        continue;
      }
      return true;
    }
    Error = AttemptError;
    bool CanRetry = Idempotent || St == Attempt::NotSent;
    if (!CanRetry || A + 1 >= MaxAttempts) {
      if (!CanRetry)
        Error += " (not retried: non-idempotent request may have been "
                 "received)";
      return false;
    }
    ++Retries;
    backoff(A, 0);
  }
}

} // namespace lalr
