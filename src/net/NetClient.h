//===- net/NetClient.h - Retrying daemon client -----------------*- C++ -*-===//
///
/// \file
/// The client library for `lalr_served`: sends one manifest-dialect
/// request line at a time and parses the structured response, with the
/// retry discipline a flaky wire demands:
///
///  * transport failures (refused connect, torn read, mid-response
///    disconnect) reconnect and retry with capped exponential backoff
///    plus deterministic jitter (support/Rng — a seeded client replays
///    its exact backoff schedule);
///  * `err shed` / `err draining` responses retry after
///    max(backoff, retry-after-ms) — the server is explicitly asking
///    for the delay, and it did not execute the request, so even
///    non-idempotent verbs are safe to resend;
///  * idempotency is respected: `edit` (the one non-idempotent verb) is
///    retried after a transport failure only when the request line was
///    provably never sent (connect failed) — once bytes may have
///    reached the server, the client reports the failure instead of
///    risking a double apply. Everything else (build, parse,
///    invalidate, ping, stats) retries freely: responses carry no
///    timings or hit/miss markers, so a retry is byte-identical.
///
/// The client consults no failpoints — in-process loopback tests inject
/// faults on the server side only (net/Socket.h), so a client talking
/// through the same process's registry stays deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_NET_NETCLIENT_H
#define LALR_NET_NETCLIENT_H

#include "net/Socket.h"
#include "net/WireProtocol.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace lalr {

/// One connection to a lalr_served daemon with retrying request().
class NetClient {
public:
  struct Options {
    /// Loopback port the daemon listens on.
    uint16_t Port = 0;
    double ConnectTimeoutMs = 2000;
    /// Per-request response timeout (covers the build/parse itself).
    double IoTimeoutMs = 30000;
    /// Total tries per request (1 = no retries; clamped to >= 1).
    unsigned MaxAttempts = 4;
    /// Backoff schedule: min(cap, base * 2^attempt) + jitter in
    /// [0, base), milliseconds.
    double BackoffBaseMs = 5;
    double BackoffCapMs = 200;
    /// Seed for the deterministic jitter stream.
    uint64_t JitterSeed = 0x6c616c72; // "lalr"
    /// Retry `edit` even when the request may have reached the server
    /// (accepts possible double-apply; off by default).
    bool RetryNonIdempotent = false;
  };

  explicit NetClient(Options Opts)
      : Opts(Opts), Jitter(Opts.JitterSeed ? Opts.JitterSeed : 1) {}

  NetClient(const NetClient &) = delete;
  NetClient &operator=(const NetClient &) = delete;

  /// Sends \p Line and fills \p Out with the parsed response. Returns
  /// false only when every attempt failed at the transport level (or
  /// the response was unparseable); \p Error says why. A structured
  /// `err` response from the server returns true with Out.Ok == false —
  /// the request was answered.
  bool request(std::string_view Line, WireResponse &Out, std::string &Error);

  /// Retries performed across all request() calls (test observability).
  uint64_t retries() const { return Retries; }

  /// Drops the connection (the next request reconnects).
  void close() { Chan.reset(); }

private:
  enum class Attempt : uint8_t {
    Ok,          ///< response parsed into Out
    NotSent,     ///< transport failed before any request byte went out
    MaybeSent,   ///< transport failed after the send began
  };
  Attempt attemptOnce(std::string_view Line, WireResponse &Out,
                      std::string &Error);
  void backoff(unsigned AttemptIdx, double MinMs);

  const Options Opts;
  Rng Jitter;
  std::unique_ptr<LineChannel> Chan;
  uint64_t Retries = 0;
};

/// True for verbs whose wire responses are byte-identical across
/// re-execution (everything except `edit`).
bool isIdempotentRequestLine(std::string_view Line);

} // namespace lalr

#endif // LALR_NET_NETCLIENT_H
