//===- corpus/CorpusGrammars.h - Evaluation grammar corpus ------*- C++ -*-===//
///
/// \file
/// The grammar corpus the experiments run on. The paper evaluated on
/// programming-language grammars of its era (ALGOL, FORTRAN, Ada, ...);
/// those exact grammar files are unavailable, so this corpus contains
/// comparable-scale grammars written for this repository (documented
/// substitution, see EXPERIMENTS.md): ten realistic language grammars and
/// six small specimens that separate the LR classes
/// (LR(0) ⊂ SLR ⊂ LALR ⊂ LR(1), plus not-LR(1) and not-LR(k) witnesses).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_CORPUS_CORPUSGRAMMARS_H
#define LALR_CORPUS_CORPUSGRAMMARS_H

#include "grammar/Grammar.h"
#include "lalr/Classify.h"

#include <span>
#include <string_view>
#include <vector>

namespace lalr {

/// One corpus grammar with its documented expectations (asserted by the
/// corpus test suite).
struct CorpusEntry {
  const char *Name;
  const char *Description;
  /// Grammar text in the .y dialect.
  const char *Source;
  /// The strongest LR class this grammar is expected to fall in.
  LrClass Expected;
  /// A sample sentence (space-separated terminal names, literals without
  /// quotes) that the generated parser must accept; nullptr if the
  /// grammar is not meant to be conflict-free under its declared
  /// precedence.
  const char *SampleInput;
  /// Whether the grammar is a realistic language grammar (true) or a
  /// class-separation specimen (false); Table 1/2/3 use realistic ones.
  bool Realistic;
};

/// All corpus entries, specimens last.
std::span<const CorpusEntry> corpusEntries();

/// Entries with Realistic == true (the Table 1-3 workload).
std::span<const CorpusEntry> realisticCorpusEntries();

/// Finds an entry by name; nullptr if absent.
const CorpusEntry *findCorpusEntry(std::string_view Name);

/// \name By-name registry
/// The string-keyed view of the corpus: service manifests, grammar_report
/// and any future tooling reference corpus grammars by name through these
/// instead of linking bespoke grammar headers.
/// @{

/// Same lookup as findCorpusEntry under the registry's naming convention.
const CorpusEntry *corpusGrammarByName(std::string_view Name);

/// All corpus grammar names in registry (listing) order; realistic
/// grammars first. \p RealisticOnly restricts to the Table 1-3 workload.
std::vector<std::string_view> listCorpusGrammars(bool RealisticOnly = false);
/// @}

/// Parses a corpus grammar. The corpus is trusted: a parse failure here is
/// a bug and aborts with the diagnostics printed.
Grammar loadCorpusGrammar(const CorpusEntry &Entry);
Grammar loadCorpusGrammar(std::string_view Name);

/// True when SentenceGen can derive sentences of the entry's language:
/// the start symbol is productive (derives some terminal string) per
/// computeMinYieldLengths. The corpus keeps deliberately defective
/// specimens, so random-input workloads (bench_parse_throughput,
/// lalr_batchd --list's "sentencegen" marker) filter through this.
bool corpusGrammarSupportsSentenceGen(const CorpusEntry &Entry);

} // namespace lalr

#endif // LALR_CORPUS_CORPUSGRAMMARS_H
