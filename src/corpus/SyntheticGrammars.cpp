//===- corpus/SyntheticGrammars.cpp - Parameterized grammar families ---------===//

#include "corpus/SyntheticGrammars.h"

#include "grammar/GrammarBuilder.h"
#include "grammar/Transforms.h"
#include "support/Rng.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace lalr;

namespace {

/// "a" + std::to_string(I) without operator+(const char*, std::string&&),
/// which GCC 12's -Wrestrict mis-analyzes when inlined at -O2.
std::string numbered(const char *Prefix, unsigned I) {
  std::string S(Prefix);
  S += std::to_string(I);
  return S;
}

/// Fails loudly: the generators only build well-formed grammars, so a
/// build() failure here is a bug in the generator itself.
Grammar buildOrDie(GrammarBuilder &&Builder, const char *What) {
  DiagnosticEngine Diags;
  std::optional<Grammar> G = std::move(Builder).build(Diags);
  if (!G) {
    std::fprintf(stderr, "synthetic generator '%s' built a bad grammar:\n%s",
                 What, Diags.render().c_str());
    std::abort();
  }
  return std::move(*G);
}

} // namespace

Grammar lalr::makeExprTower(unsigned Levels, unsigned OpsPerLevel) {
  assert(Levels >= 1 && OpsPerLevel >= 1);
  GrammarBuilder B("expr_tower_" + std::to_string(Levels) + "x" +
                   std::to_string(OpsPerLevel));
  SymbolId Num = B.terminal("NUM");
  SymbolId LParen = B.terminal("'('");
  SymbolId RParen = B.terminal("')'");

  std::vector<SymbolId> Nts;
  for (unsigned L = 0; L <= Levels; ++L)
    Nts.push_back(B.nonterminal(numbered("e", L)));

  for (unsigned L = 0; L < Levels; ++L) {
    for (unsigned K = 0; K < OpsPerLevel; ++K) {
      SymbolId Op =
          B.terminal(numbered("op", L) + "_" + std::to_string(K));
      // Left-associative: e_L -> e_L op e_{L+1}.
      B.production(Nts[L], {Nts[L], Op, Nts[L + 1]});
    }
    B.production(Nts[L], {Nts[L + 1]});
  }
  B.production(Nts[Levels], {LParen, Nts[0], RParen});
  B.production(Nts[Levels], {Num});
  B.startSymbol(Nts[0]);
  return buildOrDie(std::move(B), "makeExprTower");
}

Grammar lalr::makeNullableChain(unsigned N) {
  assert(N >= 1);
  GrammarBuilder B("nullable_chain_" + std::to_string(N));
  SymbolId S = B.nonterminal("s");
  std::vector<SymbolId> Rhs;
  for (unsigned I = 1; I <= N; ++I) {
    SymbolId A = B.nonterminal(numbered("a", I));
    SymbolId T = B.terminal(numbered("t", I));
    B.production(A, {T});
    B.production(A, {});
    Rhs.push_back(A);
  }
  Rhs.push_back(B.terminal("'x'"));
  B.production(S, std::move(Rhs));
  B.startSymbol(S);
  return buildOrDie(std::move(B), "makeNullableChain");
}

Grammar lalr::makeIncludesRing(unsigned N) {
  assert(N >= 2);
  GrammarBuilder B("includes_ring_" + std::to_string(N));
  std::vector<SymbolId> Nts;
  for (unsigned I = 1; I <= N; ++I)
    Nts.push_back(B.nonterminal(numbered("a", I)));
  for (unsigned I = 0; I < N; ++I) {
    SymbolId T = B.terminal(numbered("t", I + 1));
    B.production(Nts[I], {T, Nts[(I + 1) % N]});
  }
  // Break the derivation (not the includes ring) with a terminal escape.
  B.production(Nts[N - 1], {B.terminal("'z'")});
  B.startSymbol(Nts[0]);
  return buildOrDie(std::move(B), "makeIncludesRing");
}

Grammar lalr::makeStateBlowup(unsigned N) {
  assert(N >= 1);
  GrammarBuilder B("state_blowup_" + std::to_string(N));
  SymbolId A = B.terminal("'a'");
  SymbolId C = B.terminal("'b'");
  SymbolId X = B.terminal("'x'");
  SymbolId S = B.nonterminal("s");
  std::vector<SymbolId> Ts;
  for (unsigned I = 1; I <= N; ++I)
    Ts.push_back(B.nonterminal(numbered("t", I)));

  // "(a|b)*" prefix loop, then the nondeterministic commit on 'a'.
  B.production(S, {A, S});
  B.production(S, {C, S});
  B.production(S, {A, Ts[0]});
  // The N-1 suffix positions the determinized automaton must remember.
  for (unsigned I = 0; I + 1 < N; ++I) {
    B.production(Ts[I], {A, Ts[I + 1]});
    B.production(Ts[I], {C, Ts[I + 1]});
  }
  B.production(Ts[N - 1], {X});
  B.startSymbol(S);
  return buildOrDie(std::move(B), "makeStateBlowup");
}

std::optional<Grammar>
lalr::makeRandomGrammar(uint64_t Seed, const RandomGrammarParams &Params) {
  assert(Params.NumTerminals >= 1 && Params.NumNonterminals >= 1);
  assert(Params.MinProdsPerNt >= 1 &&
         Params.MinProdsPerNt <= Params.MaxProdsPerNt);
  Rng R(Seed);
  GrammarBuilder B("random_" + std::to_string(Seed));

  std::vector<SymbolId> Terms, Nts;
  for (unsigned I = 0; I < Params.NumTerminals; ++I)
    Terms.push_back(B.terminal(numbered("t", I)));
  for (unsigned I = 0; I < Params.NumNonterminals; ++I)
    Nts.push_back(B.nonterminal(numbered("n", I)));

  for (unsigned I = 0; I < Params.NumNonterminals; ++I) {
    unsigned NumProds = static_cast<unsigned>(
        R.range(Params.MinProdsPerNt, Params.MaxProdsPerNt));
    for (unsigned P = 0; P < NumProds; ++P) {
      if (R.chance(Params.EpsilonPercent, 100)) {
        B.production(Nts[I], {});
        continue;
      }
      unsigned Len = static_cast<unsigned>(R.range(1, Params.MaxRhsLen));
      std::vector<SymbolId> Rhs;
      for (unsigned S = 0; S < Len; ++S) {
        // Slight bias toward terminals keeps most draws productive.
        if (R.chance(55, 100))
          Rhs.push_back(Terms[R.below(Terms.size())]);
        else
          Rhs.push_back(Nts[R.below(Nts.size())]);
      }
      B.production(Nts[I], std::move(Rhs));
    }
  }
  B.startSymbol(Nts[0]);

  DiagnosticEngine BuildDiags;
  std::optional<Grammar> Raw = std::move(B).build(BuildDiags);
  if (!Raw)
    return std::nullopt; // cannot happen with this generator, but be safe
  DiagnosticEngine ReduceDiags;
  return reduceGrammar(*Raw, ReduceDiags);
}

Grammar lalr::makeRandomReducedGrammar(uint64_t Seed,
                                       const RandomGrammarParams &Params) {
  for (uint64_t Attempt = 0; Attempt < 100; ++Attempt) {
    std::optional<Grammar> G = makeRandomGrammar(Seed + Attempt, Params);
    if (G)
      return std::move(*G);
  }
  std::fprintf(stderr,
               "makeRandomReducedGrammar: 100 draws produced empty "
               "languages; parameters are degenerate\n");
  std::abort();
}
