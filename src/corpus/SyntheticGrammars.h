//===- corpus/SyntheticGrammars.h - Parameterized grammar families -*-C++-*-===//
///
/// \file
/// Grammar generators for the scaling experiments (Figs. 1-3) and the
/// randomized property suites. All generators are deterministic functions
/// of their parameters/seed.
///
///   * expression towers  — LALR(1) grammars whose LR(0) automata grow
///     linearly with the tower height; the Fig. 1/2 sweep workload;
///   * nullable chains    — long `reads` chains (stress the Read pass);
///   * includes rings     — one large SCC in `includes` (the digraph-vs-
///     naive-fixpoint ablation of Fig. 3 separates on these);
///   * random CFGs        — arbitrary reduced grammars for differential
///     testing of the look-ahead methods;
///   * state blowups      — adversarial right-linear grammars with
///     exponentially many LR states from O(N) productions (the
///     BuildLimits stress family).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_CORPUS_SYNTHETICGRAMMARS_H
#define LALR_CORPUS_SYNTHETICGRAMMARS_H

#include "grammar/Grammar.h"

#include <cstdint>
#include <optional>

namespace lalr {

/// A tower of \p Levels binary-operator precedence levels with
/// \p OpsPerLevel distinct operators each, over NUM and parentheses.
/// Unambiguous and LALR(1); ~linear growth of states with Levels.
Grammar makeExprTower(unsigned Levels, unsigned OpsPerLevel);

/// s -> a_1 a_2 ... a_N 'x' with every a_i -> 't_i' | %empty: produces
/// `reads` chains of length up to N.
Grammar makeNullableChain(unsigned N);

/// A ring a_1 -> 't_1' a_2, ..., a_N -> 't_N' a_1 | 'z': a strongly
/// connected `includes` component threading all N nonterminals.
Grammar makeIncludesRing(unsigned N);

/// Knobs for the random grammar generator.
struct RandomGrammarParams {
  unsigned NumTerminals = 6;
  unsigned NumNonterminals = 8;
  unsigned MinProdsPerNt = 1;
  unsigned MaxProdsPerNt = 3;
  unsigned MaxRhsLen = 4;
  /// Percent chance that a generated production is epsilon.
  unsigned EpsilonPercent = 15;
};

/// Generates a random grammar from \p Seed and reduces it. Returns
/// std::nullopt when the draw produced an empty language (caller retries
/// with the next seed); makeRandomReducedGrammar does the retrying.
std::optional<Grammar> makeRandomGrammar(uint64_t Seed,
                                         const RandomGrammarParams &Params);

/// Retries makeRandomGrammar over consecutive seeds until one succeeds
/// (bounded; aborts if 100 draws in a row generate empty languages, which
/// indicates nonsensical parameters).
Grammar makeRandomReducedGrammar(uint64_t Seed,
                                 const RandomGrammarParams &Params);

/// Adversarial family with exponential LR growth from a linear-size
/// grammar: the right-linear encoding of the NFA for "(a|b)* a (a|b)^{N-1} x"
///
///   s   -> 'a' s | 'b' s | 'a' t1
///   t_i -> 'a' t_{i+1} | 'b' t_{i+1}      (1 <= i < N)
///   t_N -> 'x'
///
/// The grammar has 3N + O(1) symbols/productions, but the LR(0)
/// automaton is the determinization of that NFA and must remember which
/// of the last N inputs were 'a': Theta(2^N) states (2^N subset states
/// plus the accept tail). Grammars like this are why BuildLimits exists —
/// a handful of manifest lines can demand gigabyte-scale tables, and
/// MaxLr0States / MaxItems trips deterministically (serial and parallel)
/// at the same interned-state count. Unambiguous and LALR(1), so every
/// table kind is exercised, including the LR(1) builders (whose blowup is
/// the same, counted against MaxLr1States).
Grammar makeStateBlowup(unsigned N);

} // namespace lalr

#endif // LALR_CORPUS_SYNTHETICGRAMMARS_H
