//===- corpus/JavaGrammar.h - JLS-style Java subset -------------*- C++ -*-===//
///
/// \file
/// A Java (1.0-era, no generics) grammar in the style of the JLS
/// appendix-19 LALR(1) grammar: class and interface declarations, fields,
/// methods and constructors, the statement set, and the full expression
/// grammar including the JLS cast-expression formulation (the part that
/// makes naive Java grammars non-LR). ~150 productions; third large
/// corpus entry.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_CORPUS_JAVAGRAMMAR_H
#define LALR_CORPUS_JAVAGRAMMAR_H

namespace lalr {

extern const char JavaGrammarSource[];

} // namespace lalr

#endif // LALR_CORPUS_JAVAGRAMMAR_H
