//===- corpus/JavaGrammar.cpp - JLS-style Java subset --------------------------===//

#include "corpus/JavaGrammar.h"

namespace lalr {

const char JavaGrammarSource[] = R"y(
%name javasub
%token IDENTIFIER INT_LIT FLOAT_LIT BOOL_LIT CHAR_LIT STRING_LIT NULL_LIT
%token PACKAGE IMPORT CLASS INTERFACE EXTENDS IMPLEMENTS
%token PUBLIC PROTECTED PRIVATE STATIC ABSTRACT FINAL NATIVE
%token BOOLEAN BYTE SHORT INT LONG CHAR FLOAT DOUBLE VOID
%token IF ELSE WHILE FOR RETURN BREAK CONTINUE THROW NEW THIS SUPER
%token INSTANCEOF
%token EQ_OP NE_OP LE_OP GE_OP AND_OP OR_OP INC_OP DEC_OP SHL_OP SHR_OP
%token ADD_ASSIGN SUB_ASSIGN MUL_ASSIGN DIV_ASSIGN
%start compilation_unit
%%

compilation_unit
	: package_opt imports_opt type_decls_opt
	;
package_opt
	: %empty
	| PACKAGE name ';'
	;
imports_opt
	: %empty
	| imports_opt IMPORT name ';'
	| imports_opt IMPORT name '.' '*' ';'
	;
type_decls_opt
	: %empty
	| type_decls_opt type_decl
	;
type_decl
	: class_decl
	| interface_decl
	| ';'
	;

name
	: IDENTIFIER
	| name '.' IDENTIFIER
	;

type
	: primitive_type
	| reference_type
	;
primitive_type
	: BOOLEAN | BYTE | SHORT | INT | LONG | CHAR | FLOAT | DOUBLE
	;
reference_type
	: name
	| array_type
	;
array_type
	: primitive_type '[' ']'
	| name '[' ']'
	| array_type '[' ']'
	;

modifiers_opt
	: %empty
	| modifiers
	;
modifiers
	: modifier
	| modifiers modifier
	;
modifier
	: PUBLIC | PROTECTED | PRIVATE | STATIC | ABSTRACT | FINAL | NATIVE
	;

class_decl
	: modifiers_opt CLASS IDENTIFIER super_opt interfaces_opt class_body
	;
super_opt
	: %empty
	| EXTENDS name
	;
interfaces_opt
	: %empty
	| IMPLEMENTS name_list
	;
name_list
	: name
	| name_list ',' name
	;
class_body
	: '{' class_body_decls_opt '}'
	;
class_body_decls_opt
	: %empty
	| class_body_decls_opt class_body_decl
	;
class_body_decl
	: field_decl
	| method_decl
	| constructor_decl
	;

interface_decl
	: modifiers_opt INTERFACE IDENTIFIER extends_ifaces_opt iface_body
	;
extends_ifaces_opt
	: %empty
	| EXTENDS name_list
	;
iface_body
	: '{' iface_members_opt '}'
	;
iface_members_opt
	: %empty
	| iface_members_opt iface_member
	;
iface_member
	: abstract_method_decl
	| field_decl
	;
abstract_method_decl
	: method_header ';'
	;

field_decl
	: modifiers_opt type variable_declarators ';'
	;
variable_declarators
	: variable_declarator
	| variable_declarators ',' variable_declarator
	;
variable_declarator
	: declarator_id
	| declarator_id '=' variable_initializer
	;
declarator_id
	: IDENTIFIER
	| declarator_id '[' ']'
	;
variable_initializer
	: expression
	| array_initializer
	;
array_initializer
	: '{' '}'
	| '{' initializer_list '}'
	;
initializer_list
	: variable_initializer
	| initializer_list ',' variable_initializer
	;

method_decl
	: method_header method_body
	;
method_header
	: modifiers_opt type method_declarator
	| modifiers_opt VOID method_declarator
	;
method_declarator
	: IDENTIFIER '(' params_opt ')'
	| method_declarator '[' ']'
	;
params_opt
	: %empty
	| param_list
	;
param_list
	: param
	| param_list ',' param
	;
param
	: type declarator_id
	;
method_body
	: block
	| ';'
	;

constructor_decl
	: modifiers_opt IDENTIFIER '(' params_opt ')' block
	;

block
	: '{' block_statements_opt '}'
	;
block_statements_opt
	: %empty
	| block_statements_opt block_statement
	;
block_statement
	: local_var_decl ';'
	| statement
	;
local_var_decl
	: type variable_declarators
	;
statement
	: statement_no_trailing
	| if_then_statement
	| if_then_else_statement
	| while_statement
	| for_statement
	;
statement_no_short_if
	: statement_no_trailing
	| if_then_else_statement_no_short_if
	| while_statement_no_short_if
	| for_statement_no_short_if
	;
statement_no_trailing
	: block
	| ';'
	| expression_statement
	| return_statement
	| break_statement
	| continue_statement
	| throw_statement
	;
expression_statement
	: statement_expression ';'
	;
statement_expression
	: assignment
	| pre_increment
	| pre_decrement
	| post_increment
	| post_decrement
	| method_invocation
	| class_instance_creation
	;
if_then_statement
	: IF '(' expression ')' statement
	;
if_then_else_statement
	: IF '(' expression ')' statement_no_short_if ELSE statement
	;
if_then_else_statement_no_short_if
	: IF '(' expression ')' statement_no_short_if ELSE
	  statement_no_short_if
	;
while_statement
	: WHILE '(' expression ')' statement
	;
while_statement_no_short_if
	: WHILE '(' expression ')' statement_no_short_if
	;
for_statement
	: FOR '(' for_init_opt ';' expression_opt ';' for_update_opt ')'
	  statement
	;
for_statement_no_short_if
	: FOR '(' for_init_opt ';' expression_opt ';' for_update_opt ')'
	  statement_no_short_if
	;
for_init_opt
	: %empty
	| statement_expression_list
	| local_var_decl
	;
for_update_opt
	: %empty
	| statement_expression_list
	;
statement_expression_list
	: statement_expression
	| statement_expression_list ',' statement_expression
	;
expression_opt
	: %empty
	| expression
	;
return_statement
	: RETURN expression_opt ';'
	;
break_statement
	: BREAK ';'
	;
continue_statement
	: CONTINUE ';'
	;
throw_statement
	: THROW expression ';'
	;

primary
	: primary_no_new_array
	| array_creation
	;
primary_no_new_array
	: literal
	| THIS
	| '(' expression ')'
	| class_instance_creation
	| field_access
	| method_invocation
	| array_access
	;
literal
	: INT_LIT | FLOAT_LIT | BOOL_LIT | CHAR_LIT | STRING_LIT | NULL_LIT
	;
class_instance_creation
	: NEW name '(' args_opt ')'
	;
args_opt
	: %empty
	| arg_list
	;
arg_list
	: expression
	| arg_list ',' expression
	;
array_creation
	: NEW primitive_type dim_exprs dims_opt
	| NEW name dim_exprs dims_opt
	| NEW primitive_type dims array_initializer
	| NEW name dims array_initializer
	;
dim_exprs
	: dim_expr
	| dim_exprs dim_expr
	;
dim_expr
	: '[' expression ']'
	;
dims_opt
	: %empty
	| dims
	;
dims
	: '[' ']'
	| dims '[' ']'
	;
field_access
	: primary '.' IDENTIFIER
	| SUPER '.' IDENTIFIER
	;
method_invocation
	: name '(' args_opt ')'
	| primary '.' IDENTIFIER '(' args_opt ')'
	| SUPER '.' IDENTIFIER '(' args_opt ')'
	;
array_access
	: name '[' expression ']'
	| primary_no_new_array '[' expression ']'
	;

postfix_expression
	: primary
	| name
	| post_increment
	| post_decrement
	;
post_increment
	: postfix_expression INC_OP
	;
post_decrement
	: postfix_expression DEC_OP
	;
unary_expression
	: pre_increment
	| pre_decrement
	| '+' unary_expression
	| '-' unary_expression
	| unary_expression_not_plus_minus
	;
pre_increment
	: INC_OP unary_expression
	;
pre_decrement
	: DEC_OP unary_expression
	;
unary_expression_not_plus_minus
	: postfix_expression
	| '~' unary_expression
	| '!' unary_expression
	| cast_expression
	;
cast_expression
	: '(' primitive_type dims_opt ')' unary_expression
	| '(' expression ')' unary_expression_not_plus_minus
	| '(' name dims ')' unary_expression_not_plus_minus
	;
multiplicative_expression
	: unary_expression
	| multiplicative_expression '*' unary_expression
	| multiplicative_expression '/' unary_expression
	| multiplicative_expression '%' unary_expression
	;
additive_expression
	: multiplicative_expression
	| additive_expression '+' multiplicative_expression
	| additive_expression '-' multiplicative_expression
	;
shift_expression
	: additive_expression
	| shift_expression SHL_OP additive_expression
	| shift_expression SHR_OP additive_expression
	;
relational_expression
	: shift_expression
	| relational_expression '<' shift_expression
	| relational_expression '>' shift_expression
	| relational_expression LE_OP shift_expression
	| relational_expression GE_OP shift_expression
	| relational_expression INSTANCEOF reference_type
	;
equality_expression
	: relational_expression
	| equality_expression EQ_OP relational_expression
	| equality_expression NE_OP relational_expression
	;
and_expression
	: equality_expression
	| and_expression '&' equality_expression
	;
exclusive_or_expression
	: and_expression
	| exclusive_or_expression '^' and_expression
	;
inclusive_or_expression
	: exclusive_or_expression
	| inclusive_or_expression '|' exclusive_or_expression
	;
conditional_and_expression
	: inclusive_or_expression
	| conditional_and_expression AND_OP inclusive_or_expression
	;
conditional_or_expression
	: conditional_and_expression
	| conditional_or_expression OR_OP conditional_and_expression
	;
conditional_expression
	: conditional_or_expression
	| conditional_or_expression '?' expression ':' conditional_expression
	;
assignment_expression
	: conditional_expression
	| assignment
	;
assignment
	: left_hand_side assignment_operator assignment_expression
	;
left_hand_side
	: name
	| field_access
	| array_access
	;
assignment_operator
	: '='
	| ADD_ASSIGN
	| SUB_ASSIGN
	| MUL_ASSIGN
	| DIV_ASSIGN
	;
expression
	: assignment_expression
	;
)y";

} // namespace lalr
