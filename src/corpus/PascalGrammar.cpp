//===- corpus/PascalGrammar.cpp - ISO-7185-style Pascal -----------------------===//

#include "corpus/PascalGrammar.h"

namespace lalr {

const char PascalGrammarSource[] = R"y(
%name pascal
%token PROGRAM LABEL CONST TYPE VAR PROCEDURE FUNCTION BEGIN END
%token IF THEN ELSE CASE OF WHILE DO REPEAT UNTIL FOR TO DOWNTO WITH
%token GOTO ARRAY RECORD SET FILE PACKED NIL NOT DIV MOD AND OR IN
%token IDENT UNSIGNED_INT UNSIGNED_REAL STRING CHAR_LIT
%token ASSIGN NE LE GE DOTDOT UPARROW
%start program
%%

program
	: program_heading ';' block '.'
	;
program_heading
	: PROGRAM IDENT
	| PROGRAM IDENT '(' identifier_list ')'
	;
identifier_list
	: IDENT
	| identifier_list ',' IDENT
	;

block
	: label_part const_part type_part var_part proc_part compound_statement
	;

label_part
	: %empty
	| LABEL label_list ';'
	;
label_list
	: label
	| label_list ',' label
	;
label
	: UNSIGNED_INT
	;

const_part
	: %empty
	| CONST const_defs
	;
const_defs
	: const_def ';'
	| const_defs const_def ';'
	;
const_def
	: IDENT '=' constant
	;
constant
	: unsigned_number
	| sign unsigned_number
	| IDENT
	| sign IDENT
	| STRING
	| CHAR_LIT
	;
unsigned_number
	: UNSIGNED_INT
	| UNSIGNED_REAL
	;
sign
	: '+'
	| '-'
	;

type_part
	: %empty
	| TYPE type_defs
	;
type_defs
	: type_def ';'
	| type_defs type_def ';'
	;
type_def
	: IDENT '=' type_denoter
	;
type_denoter
	: simple_type
	| structured_type
	| UPARROW IDENT
	;
simple_type
	: IDENT
	| '(' identifier_list ')'
	| constant DOTDOT constant
	;
structured_type
	: unpacked_structured_type
	| PACKED unpacked_structured_type
	;
unpacked_structured_type
	: array_type
	| record_type
	| set_type
	| file_type
	;
array_type
	: ARRAY '[' index_types ']' OF type_denoter
	;
index_types
	: simple_type
	| index_types ',' simple_type
	;
record_type
	: RECORD field_list END
	;
field_list
	: %empty
	| fixed_part
	| fixed_part ';' variant_part
	| variant_part
	| fixed_part ';'
	;
fixed_part
	: record_section
	| fixed_part ';' record_section
	;
record_section
	: identifier_list ':' type_denoter
	;
variant_part
	: CASE variant_selector OF variant_list
	;
variant_selector
	: IDENT ':' IDENT
	| IDENT
	;
variant_list
	: variant
	| variant_list ';' variant
	;
variant
	: case_constant_list ':' '(' field_list ')'
	;
case_constant_list
	: constant
	| case_constant_list ',' constant
	;
set_type
	: SET OF simple_type
	;
file_type
	: FILE OF type_denoter
	;

var_part
	: %empty
	| VAR var_decls
	;
var_decls
	: var_decl ';'
	| var_decls var_decl ';'
	;
var_decl
	: identifier_list ':' type_denoter
	;

proc_part
	: %empty
	| proc_part proc_or_func_decl ';'
	;
proc_or_func_decl
	: procedure_heading ';' block
	| function_heading ';' block
	;
procedure_heading
	: PROCEDURE IDENT
	| PROCEDURE IDENT '(' formal_parameter_list ')'
	;
function_heading
	: FUNCTION IDENT ':' IDENT
	| FUNCTION IDENT '(' formal_parameter_list ')' ':' IDENT
	;
formal_parameter_list
	: formal_parameter_section
	| formal_parameter_list ';' formal_parameter_section
	;
formal_parameter_section
	: identifier_list ':' IDENT
	| VAR identifier_list ':' IDENT
	| procedure_heading
	| function_heading
	;

compound_statement
	: BEGIN statement_sequence END
	;
statement_sequence
	: statement
	| statement_sequence ';' statement
	;
statement
	: open_statement
	;
open_statement
	: label ':' unlabelled_statement
	| unlabelled_statement
	;
unlabelled_statement
	: %empty
	| assignment_or_call
	| compound_statement
	| GOTO label
	| if_statement
	| case_statement
	| WHILE expression DO statement
	| REPEAT statement_sequence UNTIL expression
	| for_statement
	| with_statement
	;
assignment_or_call
	: variable_access ASSIGN expression
	| IDENT
	| IDENT '(' actual_parameter_list ')'
	;
if_statement
	: IF expression THEN statement
	| IF expression THEN statement ELSE statement
	;
case_statement
	: CASE expression OF case_elements END
	| CASE expression OF case_elements ';' END
	;
case_elements
	: case_element
	| case_elements ';' case_element
	;
case_element
	: case_constant_list ':' statement
	;
for_statement
	: FOR IDENT ASSIGN expression TO expression DO statement
	| FOR IDENT ASSIGN expression DOWNTO expression DO statement
	;
with_statement
	: WITH variable_access_list DO statement
	;
variable_access_list
	: variable_access
	| variable_access_list ',' variable_access
	;

actual_parameter_list
	: actual_parameter
	| actual_parameter_list ',' actual_parameter
	;
actual_parameter
	: expression
	;

variable_access
	: IDENT
	| variable_access '[' expression_list ']'
	| variable_access '.' IDENT
	| variable_access UPARROW
	;
expression_list
	: expression
	| expression_list ',' expression
	;

expression
	: simple_expression
	| simple_expression relational_operator simple_expression
	;
relational_operator
	: '=' | NE | '<' | LE | '>' | GE | IN
	;
simple_expression
	: term
	| sign term
	| simple_expression adding_operator term
	;
adding_operator
	: '+' | '-' | OR
	;
term
	: factor
	| term multiplying_operator factor
	;
multiplying_operator
	: '*' | '/' | DIV | MOD | AND
	;
factor
	: variable_access
	| IDENT '(' actual_parameter_list ')'
	| unsigned_number
	| STRING
	| CHAR_LIT
	| NIL
	| set_constructor
	| '(' expression ')'
	| NOT factor
	;
set_constructor
	: '[' ']'
	| '[' member_designator_list ']'
	;
member_designator_list
	: member_designator
	| member_designator_list ',' member_designator
	;
member_designator
	: expression
	| expression DOTDOT expression
	;
)y";

} // namespace lalr
