//===- corpus/PascalGrammar.h - ISO-7185-style Pascal -----------*- C++ -*-===//
///
/// \file
/// A full Pascal grammar (ISO 7185 flavour): labels, constants, type
/// definitions with subranges / enumerations / arrays / records with
/// variant parts / sets / files / pointers, procedures and functions with
/// value and VAR parameters, the full statement set (assignment, call,
/// goto, compound, if, case, repeat, while, for, with) and the full
/// expression grammar including set constructors and IN. Roughly 160
/// productions — the second large corpus entry besides ANSI C.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_CORPUS_PASCALGRAMMAR_H
#define LALR_CORPUS_PASCALGRAMMAR_H

namespace lalr {

extern const char PascalGrammarSource[];

} // namespace lalr

#endif // LALR_CORPUS_PASCALGRAMMAR_H
