//===- corpus/AnsiCGrammar.h - The classic ANSI C89 grammar -----*- C++ -*-===//
///
/// \file
/// The full ANSI C89 grammar in the .y dialect — the canonical large
/// LALR(1) test case (the well-known yacc grammar with the lexer-resolved
/// TYPE_NAME token), transcribed for this corpus. ~64 nonterminals and
/// ~210 productions; its only conflict is the dangling else. This is the
/// scale of grammar the paper's evaluation ran on.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_CORPUS_ANSICGRAMMAR_H
#define LALR_CORPUS_ANSICGRAMMAR_H

namespace lalr {

/// Grammar text; parse with parseGrammar or load the "ansic" corpus
/// entry.
extern const char AnsiCGrammarSource[];

} // namespace lalr

#endif // LALR_CORPUS_ANSICGRAMMAR_H
