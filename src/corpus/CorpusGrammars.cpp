//===- corpus/CorpusGrammars.cpp - Evaluation grammar corpus -----------------===//

#include "corpus/CorpusGrammars.h"

#include "corpus/AnsiCGrammar.h"
#include "corpus/JavaGrammar.h"
#include "corpus/PascalGrammar.h"
#include "grammar/GrammarParser.h"
#include "grammar/SentenceGen.h"

#include <cstdio>
#include <cstdlib>

using namespace lalr;

namespace {

// -------------------------------------------------------------------------
// Realistic grammars
// -------------------------------------------------------------------------

/// Classic unambiguous arithmetic expressions (the dragon-book E/T/F
/// grammar with unary minus and two extra levels).
const char ExprSrc[] = R"y(
%name expr
%token NUM IDENT
%%
expr    : expr '+' term
        | expr '-' term
        | term
        ;
term    : term '*' factor
        | term '/' factor
        | factor
        ;
factor  : '(' expr ')'
        | '-' factor
        | NUM
        | IDENT
        ;
)y";

/// Ambiguous expressions disambiguated by precedence declarations; the
/// bare grammar is not LR(1), the declared table is conflict-free.
const char ExprPrecSrc[] = R"y(
%name expr_prec
%token NUM IDENT
%left '+' '-'
%left '*' '/'
%right POW
%right UMINUS
%%
e : e '+' e
  | e '-' e
  | e '*' e
  | e '/' e
  | e POW e
  | '-' e %prec UMINUS
  | '(' e ')'
  | NUM
  | IDENT
  ;
)y";

/// JSON (RFC 8259 structure, lexical tokens abstracted).
const char JsonSrc[] = R"y(
%name json
%token STRING NUMBER TRUE FALSE NULL
%%
json     : value ;
value    : object
         | array
         | STRING
         | NUMBER
         | TRUE
         | FALSE
         | NULL
         ;
object   : '{' '}'
         | '{' members '}'
         ;
members  : member
         | members ',' member
         ;
member   : STRING ':' value ;
array    : '[' ']'
         | '[' elements ']'
         ;
elements : value
         | elements ',' value
         ;
)y";

/// A Pascal subset: program header, declarations, procedures/functions,
/// statements, and the full Pascal expression hierarchy. Keeps Pascal's
/// dangling else, so the bare grammar has the classic shift/reduce
/// conflict (resolved toward shift, the standard interpretation).
const char MiniPascalSrc[] = R"y(
%name minipascal
%token PROGRAM VAR BEGIN END IF THEN ELSE WHILE DO REPEAT UNTIL FOR TO
%token PROCEDURE FUNCTION INTEGER REAL BOOLEAN IDENT NUMBER
%token ASSIGN NE LE GE TRUE FALSE NOT OR AND DIV MOD
%%
program    : PROGRAM IDENT ';' block '.' ;
block      : var_part proc_part compound ;
var_part   : %empty
           | VAR var_decls
           ;
var_decls  : var_decl
           | var_decls var_decl
           ;
var_decl   : ident_list ':' type ';' ;
ident_list : IDENT
           | ident_list ',' IDENT
           ;
type       : INTEGER | REAL | BOOLEAN ;
proc_part  : %empty
           | proc_part proc_decl
           ;
proc_decl  : PROCEDURE IDENT params ';' block ';'
           | FUNCTION IDENT params ':' type ';' block ';'
           ;
params     : %empty
           | '(' param_list ')'
           ;
param_list : param
           | param_list ';' param
           ;
param      : ident_list ':' type ;
compound   : BEGIN stmt_list END ;
stmt_list  : stmt
           | stmt_list ';' stmt
           ;
stmt       : %empty
           | IDENT ASSIGN expr
           | IDENT '(' expr_list ')'
           | compound
           | IF expr THEN stmt
           | IF expr THEN stmt ELSE stmt
           | WHILE expr DO stmt
           | REPEAT stmt_list UNTIL expr
           | FOR IDENT ASSIGN expr TO expr DO stmt
           ;
expr_list  : expr
           | expr_list ',' expr
           ;
expr       : simple_expr
           | simple_expr relop simple_expr
           ;
relop      : '=' | NE | '<' | LE | '>' | GE ;
simple_expr : term
           | sign term
           | simple_expr addop term
           ;
sign       : '+' | '-' ;
addop      : '+' | '-' | OR ;
term       : factor
           | term mulop factor
           ;
mulop      : '*' | '/' | DIV | MOD | AND ;
factor     : IDENT
           | IDENT '(' expr_list ')'
           | NUMBER
           | TRUE
           | FALSE
           | '(' expr ')'
           | NOT factor
           ;
)y";

/// A C subset: declarations, function definitions, the statement set, and
/// the unambiguous binary-operator tower. Dangling else retained.
const char MiniCSrc[] = R"y(
%name minic
%token IDENT CONSTANT STRING INT CHAR VOID IF ELSE WHILE FOR RETURN
%token BREAK CONTINUE EQ NE LE GE ANDAND OROR INC DEC
%%
translation_unit : external_decl
                 | translation_unit external_decl
                 ;
external_decl    : function_def
                 | decl
                 ;
function_def     : type_spec IDENT '(' param_decls ')' compound_stmt
                 ;
decl             : type_spec declarators ';' ;
type_spec        : INT | CHAR | VOID ;
declarators      : declarator
                 | declarators ',' declarator
                 ;
declarator       : IDENT
                 | IDENT '=' assign_expr
                 | IDENT '[' CONSTANT ']'
                 ;
param_decls      : %empty
                 | VOID
                 | param_list
                 ;
param_list       : param
                 | param_list ',' param
                 ;
param            : type_spec IDENT ;
compound_stmt    : '{' block_items '}' ;
block_items      : %empty
                 | block_items block_item
                 ;
block_item       : decl
                 | stmt
                 ;
stmt             : expr_stmt
                 | compound_stmt
                 | if_stmt
                 | while_stmt
                 | for_stmt
                 | jump_stmt
                 ;
expr_stmt        : ';'
                 | expr ';'
                 ;
if_stmt          : IF '(' expr ')' stmt
                 | IF '(' expr ')' stmt ELSE stmt
                 ;
while_stmt       : WHILE '(' expr ')' stmt ;
for_stmt         : FOR '(' expr_stmt expr_stmt ')' stmt
                 | FOR '(' expr_stmt expr_stmt expr ')' stmt
                 ;
jump_stmt        : RETURN ';'
                 | RETURN expr ';'
                 | BREAK ';'
                 | CONTINUE ';'
                 ;
expr             : assign_expr
                 | expr ',' assign_expr
                 ;
assign_expr      : logical_or
                 | unary_expr '=' assign_expr
                 ;
logical_or       : logical_and
                 | logical_or OROR logical_and
                 ;
logical_and      : equality
                 | logical_and ANDAND equality
                 ;
equality         : relational
                 | equality EQ relational
                 | equality NE relational
                 ;
relational       : additive
                 | relational '<' additive
                 | relational '>' additive
                 | relational LE additive
                 | relational GE additive
                 ;
additive         : multiplicative
                 | additive '+' multiplicative
                 | additive '-' multiplicative
                 ;
multiplicative   : unary_expr
                 | multiplicative '*' unary_expr
                 | multiplicative '/' unary_expr
                 | multiplicative '%' unary_expr
                 ;
unary_expr       : postfix_expr
                 | '-' unary_expr
                 | '!' unary_expr
                 | '&' unary_expr
                 | '*' unary_expr
                 | INC unary_expr
                 | DEC unary_expr
                 ;
postfix_expr     : primary_expr
                 | postfix_expr '[' expr ']'
                 | postfix_expr '(' args ')'
                 | postfix_expr INC
                 | postfix_expr DEC
                 ;
args             : %empty
                 | arg_list
                 ;
arg_list         : assign_expr
                 | arg_list ',' assign_expr
                 ;
primary_expr     : IDENT
                 | CONSTANT
                 | STRING
                 | '(' expr ')'
                 ;
)y";

/// An Ada-flavoured subset: end-terminated compound statements (END IF /
/// END LOOP), so no dangling else; declarations with initialisers;
/// procedure bodies. Conflict-free.
const char MiniAdaSrc[] = R"y(
%name miniada
%token PROCEDURE IS BEGIN END IF THEN ELSIF ELSE WHILE LOOP EXIT RETURN
%token DECLARE CONSTANT IDENT NUMBER STRING ASSIGN ARROW NE LE GE
%token AND OR NOT MOD TRUE FALSE NULL
%%
compilation   : proc_body ;
proc_body     : PROCEDURE IDENT IS decl_part BEGIN stmts END IDENT ';'
              | PROCEDURE IDENT IS decl_part BEGIN stmts END ';'
              ;
decl_part     : %empty
              | decl_part decl
              ;
decl          : IDENT ':' type_mark ';'
              | IDENT ':' type_mark ASSIGN expr ';'
              | IDENT ':' CONSTANT type_mark ASSIGN expr ';'
              | proc_body
              ;
type_mark     : IDENT ;
stmts         : stmt
              | stmts stmt
              ;
stmt          : NULL ';'
              | IDENT ASSIGN expr ';'
              | IDENT ';'
              | IDENT '(' arg_list ')' ';'
              | if_stmt
              | while_stmt
              | block_stmt
              | EXIT ';'
              | RETURN ';'
              | RETURN expr ';'
              ;
if_stmt       : IF expr THEN stmts elsif_list else_part END IF ';' ;
elsif_list    : %empty
              | elsif_list ELSIF expr THEN stmts
              ;
else_part     : %empty
              | ELSE stmts
              ;
while_stmt    : WHILE expr LOOP stmts END LOOP ';' ;
block_stmt    : DECLARE decl_part BEGIN stmts END ';' ;
arg_list      : arg
              | arg_list ',' arg
              ;
arg           : expr
              | IDENT ARROW expr
              ;
expr          : relation
              | expr AND relation
              | expr OR relation
              ;
relation      : simple_expr
              | simple_expr relop simple_expr
              ;
relop         : '=' | NE | '<' | LE | '>' | GE ;
simple_expr   : term
              | '-' term
              | simple_expr '+' term
              | simple_expr '-' term
              | simple_expr '&' term
              ;
term          : factor
              | term '*' factor
              | term '/' factor
              | term MOD factor
              ;
factor        : primary
              | NOT primary
              ;
primary       : IDENT
              | IDENT '(' arg_list ')'
              | NUMBER
              | STRING
              | TRUE
              | FALSE
              | '(' expr ')'
              ;
)y";

/// An Oberon-flavoured module language: modules, typed declarations,
/// END-terminated control flow. Conflict-free.
const char OberonSrc[] = R"y(
%name oberon
%token MODULE IMPORT TYPE VAR PROCEDURE BEGIN END IF THEN ELSIF ELSE
%token WHILE DO RECORD ARRAY OF POINTER TO RETURN IDENT NUMBER STRING
%token ASSIGN NE LE GE OR DIV MOD NIL
%%
module       : MODULE IDENT ';' imports decls body END IDENT '.' ;
imports      : %empty
             | IMPORT import_list ';'
             ;
import_list  : IDENT
             | import_list ',' IDENT
             ;
decls        : %empty
             | decls decl_section
             ;
decl_section : TYPE type_decls
             | VAR var_decls
             | proc_decl
             ;
type_decls   : %empty
             | type_decls IDENT '=' type ';'
             ;
var_decls    : %empty
             | var_decls ident_list ':' type ';'
             ;
ident_list   : IDENT
             | ident_list ',' IDENT
             ;
type         : IDENT
             | ARRAY NUMBER OF type
             | RECORD field_list END
             | POINTER TO type
             ;
field_list   : field
             | field_list ';' field
             ;
field        : %empty
             | ident_list ':' type
             ;
proc_decl    : PROCEDURE IDENT formal_params ';' decls body END IDENT ';' ;
formal_params : %empty
             | '(' fp_sections ')'
             | '(' fp_sections ')' ':' IDENT
             | '(' ')'
             | '(' ')' ':' IDENT
             ;
fp_sections  : fp_section
             | fp_sections ';' fp_section
             ;
fp_section   : ident_list ':' type
             | VAR ident_list ':' type
             ;
body         : %empty
             | BEGIN stmts
             ;
stmts        : stmt
             | stmts ';' stmt
             ;
stmt         : %empty
             | designator ASSIGN expr
             | designator
             | designator '(' exprs ')'
             | IF expr THEN stmts elsifs else_opt END
             | WHILE expr DO stmts END
             | RETURN
             | RETURN expr
             ;
elsifs       : %empty
             | elsifs ELSIF expr THEN stmts
             ;
else_opt     : %empty
             | ELSE stmts
             ;
designator   : IDENT
             | designator '.' IDENT
             | designator '[' expr ']'
             | designator '^'
             ;
exprs        : expr
             | exprs ',' expr
             ;
expr         : simple_expr
             | simple_expr relop simple_expr
             ;
relop        : '=' | NE | '<' | LE | '>' | GE ;
simple_expr  : term
             | '+' term
             | '-' term
             | simple_expr '+' term
             | simple_expr '-' term
             | simple_expr OR term
             ;
term         : factor
             | term '*' factor
             | term DIV factor
             | term MOD factor
             | term '&' factor
             ;
factor       : designator
             | designator '(' exprs ')'
             | NUMBER
             | STRING
             | NIL
             | '(' expr ')'
             | '~' factor
             ;
)y";

/// A SQL SELECT subset with joins, WHERE/GROUP/ORDER clauses and boolean
/// conditions. Conflict-free.
const char MiniSqlSrc[] = R"y(
%name minisql
%token SELECT FROM WHERE GROUP BY ORDER HAVING AS AND OR NOT IN IS NULL
%token JOIN INNER LEFT OUTER ON DISTINCT ASC DESC COUNT SUM AVG MIN MAX
%token IDENT NUMBER STRING NE LE GE
%%
query        : select_stmt ';' ;
select_stmt  : SELECT distinct_opt select_list FROM table_refs
               where_opt group_opt order_opt ;
distinct_opt : %empty | DISTINCT ;
select_list  : '*'
             | select_items
             ;
select_items : select_item
             | select_items ',' select_item
             ;
select_item  : expr
             | expr AS IDENT
             ;
table_refs   : table_ref
             | table_refs ',' table_ref
             ;
table_ref    : table_primary
             | table_ref join_kind JOIN table_primary ON condition
             ;
join_kind    : %empty
             | INNER
             | LEFT
             | LEFT OUTER
             ;
table_primary : IDENT
             | IDENT AS IDENT
             | '(' select_stmt ')' AS IDENT
             ;
where_opt    : %empty | WHERE condition ;
group_opt    : %empty
             | GROUP BY column_list having_opt
             ;
having_opt   : %empty | HAVING condition ;
order_opt    : %empty | ORDER BY order_items ;
order_items  : order_item
             | order_items ',' order_item
             ;
order_item   : expr
             | expr ASC
             | expr DESC
             ;
column_list  : column
             | column_list ',' column
             ;
column       : IDENT
             | IDENT '.' IDENT
             ;
condition    : bool_term
             | condition OR bool_term
             ;
bool_term    : bool_factor
             | bool_term AND bool_factor
             ;
bool_factor  : bool_primary
             | NOT bool_factor
             ;
bool_primary : expr compare expr
             | expr IS NULL
             | expr IS NOT NULL
             | expr IN '(' expr_list ')'
             | '(' condition ')'
             ;
compare      : '=' | NE | '<' | LE | '>' | GE ;
expr_list    : expr
             | expr_list ',' expr
             ;
expr         : term
             | expr '+' term
             | expr '-' term
             ;
term         : factor
             | term '*' factor
             | term '/' factor
             ;
factor       : column
             | NUMBER
             | STRING
             | aggregate
             | '(' expr ')'
             ;
aggregate    : COUNT '(' '*' ')'
             | COUNT '(' expr ')'
             | SUM '(' expr ')'
             | AVG '(' expr ')'
             | MIN '(' expr ')'
             | MAX '(' expr ')'
             ;
)y";

/// XML-ish element structure with attributes, text, comments. The open
/// and close tag punctuation are multi-character literal tokens.
const char XmlishSrc[] = R"y(
%name xmlish
%token IDENT STRING TEXT COMMENT
%%
document  : prolog element ;
prolog    : %empty
          | '<?' IDENT attrs '?>'
          ;
element   : '<' IDENT attrs '>' content '</' IDENT '>'
          | '<' IDENT attrs '/>'
          ;
attrs     : %empty
          | attrs attr
          ;
attr      : IDENT '=' STRING ;
content   : %empty
          | content item
          ;
item      : element
          | TEXT
          | COMMENT
          ;
)y";

/// A Lua-flavoured statement/expression language, END-terminated.
const char MiniLuaSrc[] = R"y(
%name minilua
%token IF THEN ELSE ELSEIF END WHILE DO FOR IN REPEAT UNTIL FUNCTION
%token LOCAL RETURN BREAK NIL TRUE FALSE AND OR NOT IDENT NUMBER STRING
%token EQ NE LE GE CONCAT
%%
chunk       : block ;
block       : stats
            | stats laststat
            ;
stats       : %empty
            | stats stat
            ;
stat        : ';'
            | IDENT '=' expr
            | IDENT '(' args ')'
            | DO block END
            | WHILE expr DO block END
            | REPEAT block UNTIL expr
            | IF expr THEN block elseifs else_opt END
            | FOR IDENT '=' expr ',' expr DO block END
            | FOR IDENT IN expr DO block END
            | FUNCTION IDENT funcbody
            | LOCAL IDENT
            | LOCAL IDENT '=' expr
            ;
laststat    : RETURN
            | RETURN expr
            | BREAK
            ;
elseifs     : %empty
            | elseifs ELSEIF expr THEN block
            ;
else_opt    : %empty
            | ELSE block
            ;
funcbody    : '(' params ')' block END ;
params      : %empty
            | namelist
            ;
namelist    : IDENT
            | namelist ',' IDENT
            ;
args        : %empty
            | exprlist
            ;
exprlist    : expr
            | exprlist ',' expr
            ;
expr        : orexpr ;
orexpr      : andexpr
            | orexpr OR andexpr
            ;
andexpr     : cmpexpr
            | andexpr AND cmpexpr
            ;
cmpexpr     : concatexpr
            | cmpexpr cmpop concatexpr
            ;
cmpop       : '<' | '>' | LE | GE | EQ | NE ;
concatexpr  : addexpr
            | addexpr CONCAT concatexpr
            ;
addexpr     : mulexpr
            | addexpr '+' mulexpr
            | addexpr '-' mulexpr
            ;
mulexpr     : unexpr
            | mulexpr '*' unexpr
            | mulexpr '/' unexpr
            | mulexpr '%' unexpr
            ;
unexpr      : powexpr
            | NOT unexpr
            | '-' unexpr
            | '#' unexpr
            ;
powexpr     : primary
            | primary '^' unexpr
            ;
primary     : NIL
            | TRUE
            | FALSE
            | NUMBER
            | STRING
            | IDENT
            | IDENT '(' args ')'
            | FUNCTION funcbody
            | '(' expr ')'
            | tablecons
            ;
tablecons   : '{' fields '}' ;
fields      : %empty
            | fieldlist
            ;
fieldlist   : field
            | fieldlist ',' field
            ;
field       : expr
            | IDENT '=' expr
            | '[' expr ']' '=' expr
            ;
)y";

/// A Tiger-style expression language (Appel's compiler-course language):
/// everything is an expression, let/in/end scoping, declarations for
/// types/vars/functions, l-values, and the classic Tiger precedence
/// declarations that resolve its dangling else and operator ambiguity.
const char TigerSrc[] = R"y(
%name tiger
%token ID INT_LIT STRING_LIT
%token TYPE VAR FUNCTION LET IN END IF THEN ELSE WHILE FOR TO DO
%token BREAK NIL ARRAY OF ASSIGN NE LE GE
%nonassoc THEN
%nonassoc ELSE
%nonassoc DO OF
%nonassoc ASSIGN
%left '|'
%left '&'
%nonassoc '=' NE '<' LE '>' GE
%left '+' '-'
%left '*' '/'
%right UMINUS
%%
program : expr ;

expr
	: lvalue
	| NIL
	| INT_LIT
	| STRING_LIT
	| '(' expr_seq ')'
	| '-' expr %prec UMINUS
	| ID '(' arg_list ')'
	| expr '+' expr
	| expr '-' expr
	| expr '*' expr
	| expr '/' expr
	| expr '=' expr
	| expr NE expr
	| expr '<' expr
	| expr LE expr
	| expr '>' expr
	| expr GE expr
	| expr '&' expr
	| expr '|' expr
	| ID '{' field_inits '}'
	| ID '[' expr ']' OF expr
	| lvalue ASSIGN expr
	| IF expr THEN expr %prec THEN
	| IF expr THEN expr ELSE expr
	| WHILE expr DO expr
	| FOR ID ASSIGN expr TO expr DO expr
	| BREAK
	| LET decls IN expr_seq END
	;

expr_seq
	: %empty
	| expr_seq_nonempty
	;
expr_seq_nonempty
	: expr
	| expr_seq_nonempty ';' expr
	;

arg_list
	: %empty
	| arg_list_nonempty
	;
arg_list_nonempty
	: expr
	| arg_list_nonempty ',' expr
	;

field_inits
	: %empty
	| field_inits_nonempty
	;
field_inits_nonempty
	: ID '=' expr
	| field_inits_nonempty ',' ID '=' expr
	;

lvalue
	: ID
	| lvalue '.' ID
	| lvalue '[' expr ']'
	| ID '[' expr ']'
	;

decls
	: %empty
	| decls decl
	;
decl
	: type_decl
	| var_decl
	| func_decl
	;
type_decl
	: TYPE ID '=' type
	;
type
	: ID
	| '{' type_fields '}'
	| ARRAY OF ID
	;
type_fields
	: %empty
	| type_fields_nonempty
	;
type_fields_nonempty
	: ID ':' ID
	| type_fields_nonempty ',' ID ':' ID
	;
var_decl
	: VAR ID ASSIGN expr
	| VAR ID ':' ID ASSIGN expr
	;
func_decl
	: FUNCTION ID '(' type_fields ')' '=' expr
	| FUNCTION ID '(' type_fields ')' ':' ID '=' expr
	;
)y";

/// The .y dialect described in itself: terminals are GrammarLexer's
/// token kinds, rules mirror GrammarParser's recursive descent. The test
/// suite lexes every corpus source with the real lexer and parses the
/// token stream with tables generated from this grammar — the generator
/// bootstrapping itself.
const char MetaGrammarSrc[] = R"y(
%name metagrammar
%token IDENT LITERAL NUMBER PERCENT_PERCENT KW_TOKEN KW_LEFT KW_RIGHT
%token KW_NONASSOC KW_START KW_PREC KW_EMPTY KW_NAME KW_EXPECT
%%
file        : decls PERCENT_PERCENT rules ;
decls       : %empty
            | decls decl
            ;
decl        : KW_TOKEN token_names
            | KW_LEFT token_names
            | KW_RIGHT token_names
            | KW_NONASSOC token_names
            | KW_START IDENT
            | KW_NAME IDENT
            | KW_EXPECT NUMBER
            ;
token_names : token_name
            | token_names token_name
            ;
token_name  : IDENT
            | LITERAL
            ;
rules       : rule
            | rules rule
            ;
rule        : IDENT ':' alts ';' ;
alts        : alt
            | alts '|' alt
            ;
alt         : seq_opt prec_opt
            | KW_EMPTY prec_opt
            ;
seq_opt     : %empty
            | seq
            ;
seq         : symbol
            | seq symbol
            ;
symbol      : IDENT
            | LITERAL
            ;
prec_opt    : %empty
            | KW_PREC token_name
            ;
)y";

// -------------------------------------------------------------------------
// Class-separation specimens
// -------------------------------------------------------------------------

/// LR(0): fully deterministic without look-ahead.
const char Lr0SpecimenSrc[] = R"y(
%name lr0_specimen
%%
s : '(' s ')'
  | 'x'
  ;
)y";

/// SLR(1) but not LR(0): a state holds both a complete item and a shift.
const char SlrSpecimenSrc[] = R"y(
%name slr_not_lr0
%%
s : a_rule ;
a_rule : 'a'
       | 'a' 'b'
       ;
)y";

/// The dragon-book assignment grammar: LALR(1) but not SLR(1) (SLR sees a
/// bogus shift/reduce on '=' because FOLLOW(r) contains '=').
const char LalrNotSlrSrc[] = R"y(
%name lalr_not_slr
%token ID
%%
s : l '=' r
  | r
  ;
l : '*' r
  | ID
  ;
r : l ;
)y";

/// LALR(1) but not NQLALR: the aa-transitions from the 'a' and 'b'
/// contexts share their GOTO target, so a per-state follow computation
/// (NQLALR) merges their contexts and manufactures a shift/reduce
/// conflict on 'd' that true (per-transition) LALR(1) look-ahead avoids.
/// This is the construction the paper uses to show NQLALR is inadequate.
const char LalrNotNqlalrSrc[] = R"y(
%name lalr_not_nqlalr
%%
s : 'a' astuff 'c'
  | 'b' bstuff
  ;
astuff : w
       | yy
       ;
yy : 'x' 'd' ;
bstuff : w 'd' 'z' ;
w : aa opt ;
opt : %empty
    | 'y'
    ;
aa : 'x' ;
)y";

/// LR(1) but not LALR(1): merging the LR(0)-isomorphic states creates a
/// reduce/reduce conflict between e and f.
const char Lr1NotLalrSrc[] = R"y(
%name lr1_not_lalr
%%
s : 'a' e 'c'
  | 'a' f 'd'
  | 'b' f 'c'
  | 'b' e 'd'
  ;
e : 'e' ;
f : 'e' ;
)y";

/// Ambiguous, hence not LR(1) (and not LR(k) for any k, though the
/// reads-relation certificate does not fire here).
const char AmbiguousSrc[] = R"y(
%name not_lr1_ambiguous
%%
e : e '+' e
  | 'a'
  ;
)y";

/// Even-length palindromes: unambiguous yet LR(k) for no k (the parser
/// cannot find the middle with bounded look-ahead). The reads-cycle
/// certificate does NOT fire here — it is sufficient, not necessary —
/// so the classifier reports "not LR(1)" without the star.
const char PalindromeSrc[] = R"y(
%name palindrome
%%
s : 'a' s 'a'
  | 'b' s 'b'
  | %empty
  ;
)y";

/// A grammar with a cycle in the `reads` relation (nullable a_nt read
/// repeatedly in the same state): the DP certificate that the grammar is
/// LR(k) for no k.
const char ReadsCycleSrc[] = R"y(
%name not_lrk_reads_cycle
%%
s : a_nt s
  | 'b'
  ;
a_nt : %empty ;
)y";

const CorpusEntry Entries[] = {
    {"expr", "unambiguous arithmetic expressions (E/T/F)", ExprSrc,
     LrClass::Slr1, "NUM + NUM * ( NUM - IDENT )", true},
    {"expr_prec", "ambiguous expressions + %left/%right declarations",
     ExprPrecSrc, LrClass::NotLr1, "NUM + NUM * NUM POW - NUM", true},
    {"json", "RFC 8259 JSON structure", JsonSrc, LrClass::Lr0,
     "{ STRING : [ NUMBER , TRUE , { } ] , STRING : NULL }", true},
    {"minipascal", "Pascal subset with dangling else", MiniPascalSrc,
     LrClass::NotLr1,
     "PROGRAM IDENT ; VAR IDENT : INTEGER ; BEGIN IDENT ASSIGN NUMBER + "
     "NUMBER END .",
     true},
    {"minic", "C subset with the full operator tower", MiniCSrc,
     LrClass::NotLr1,
     "INT IDENT ( VOID ) { IDENT = CONSTANT * IDENT ; RETURN IDENT ; }",
     true},
    {"miniada", "Ada-flavoured subset, END-terminated", MiniAdaSrc,
     LrClass::Slr1,
     "PROCEDURE IDENT IS IDENT : IDENT ; BEGIN IDENT ASSIGN NUMBER ; IF "
     "IDENT THEN NULL ; END IF ; END IDENT ;",
     true},
    {"oberon", "Oberon-flavoured module language", OberonSrc, LrClass::Slr1,
     "MODULE IDENT ; VAR IDENT : IDENT ; BEGIN IDENT ASSIGN NUMBER END "
     "IDENT .",
     true},
    {"minisql", "SQL SELECT subset with joins", MiniSqlSrc, LrClass::Slr1,
     "SELECT IDENT , COUNT ( * ) FROM IDENT WHERE IDENT . IDENT = NUMBER "
     "GROUP BY IDENT ;",
     true},
    {"xmlish", "XML element structure", XmlishSrc, LrClass::Slr1,
     "< IDENT IDENT = STRING > TEXT < IDENT /> </ IDENT >", true},
    {"minilua", "Lua-flavoured language, END-terminated", MiniLuaSrc,
     LrClass::Slr1,
     "LOCAL IDENT = NUMBER IF IDENT < NUMBER THEN IDENT = IDENT + NUMBER "
     "END RETURN IDENT",
     true},
    {"ansic", "full ANSI C89 (the classic yacc grammar)",
     AnsiCGrammarSource, LrClass::NotLr1,
     "INT IDENTIFIER ( ) { IDENTIFIER = CONSTANT * IDENTIFIER ; IF ( "
     "IDENTIFIER EQ_OP CONSTANT ) RETURN IDENTIFIER ; RETURN CONSTANT ; }",
     true},
    {"pascal", "full ISO-7185-style Pascal", PascalGrammarSource,
     LrClass::NotLr1,
     "PROGRAM IDENT ; VAR IDENT : IDENT ; BEGIN IDENT ASSIGN UNSIGNED_INT "
     "+ UNSIGNED_INT ; IF IDENT < UNSIGNED_INT THEN IDENT ( IDENT ) END .",
     true},
    {"tiger", "Tiger-style expression language (Appel)", TigerSrc,
     LrClass::NotLr1,
     "LET VAR ID ASSIGN INT_LIT IN IF ID '>' INT_LIT THEN ID ( ID ) ELSE "
     "ID ASSIGN ID '+' INT_LIT END",
     true},
    {"metagrammar", "the .y dialect described in itself", MetaGrammarSrc,
     LrClass::Slr1,
     "KW_NAME IDENT KW_TOKEN IDENT IDENT PERCENT_PERCENT IDENT : IDENT "
     "LITERAL | KW_EMPTY ;",
     true},
    {"javasub", "JLS-style Java subset (no generics)", JavaGrammarSource,
     LrClass::Lalr1,
     "PUBLIC CLASS IDENTIFIER { INT IDENTIFIER ; IDENTIFIER ( ) { "
     "IDENTIFIER = INT_LIT + INT_LIT ; RETURN ; } }",
     true},
    // Specimens.
    {"lr0_specimen", "parenthesized x: LR(0)", Lr0SpecimenSrc, LrClass::Lr0,
     "( ( x ) )", false},
    {"slr_not_lr0", "needs FOLLOW to separate reduce from shift",
     SlrSpecimenSrc, LrClass::Slr1, "a b", false},
    {"lalr_not_slr", "dragon-book assignment grammar", LalrNotSlrSrc,
     LrClass::Nqlalr, "* ID = ID", false},
    {"lalr_not_nqlalr", "per-state follow merging breaks NQLALR",
     LalrNotNqlalrSrc, LrClass::Lalr1, "b x d z", false},
    {"lr1_not_lalr", "core merging manufactures a reduce/reduce conflict",
     Lr1NotLalrSrc, LrClass::Lr1, nullptr, false},
    {"not_lr1_ambiguous", "ambiguous expression grammar", AmbiguousSrc,
     LrClass::NotLr1, nullptr, false},
    {"not_lrk_reads_cycle", "nullable reads cycle: not LR(k) for any k",
     ReadsCycleSrc, LrClass::NotLr1, nullptr, false},
    {"palindrome", "unambiguous but not LR(k); certificate silent",
     PalindromeSrc, LrClass::NotLr1, nullptr, false},
};

} // namespace

std::span<const CorpusEntry> lalr::corpusEntries() { return Entries; }

std::span<const CorpusEntry> lalr::realisticCorpusEntries() {
  size_t N = 0;
  while (N < std::size(Entries) && Entries[N].Realistic)
    ++N;
  return std::span<const CorpusEntry>(Entries, N);
}

const CorpusEntry *lalr::findCorpusEntry(std::string_view Name) {
  for (const CorpusEntry &E : Entries)
    if (Name == E.Name)
      return &E;
  return nullptr;
}

const CorpusEntry *lalr::corpusGrammarByName(std::string_view Name) {
  return findCorpusEntry(Name);
}

std::vector<std::string_view> lalr::listCorpusGrammars(bool RealisticOnly) {
  std::vector<std::string_view> Names;
  for (const CorpusEntry &E : Entries) {
    if (RealisticOnly && !E.Realistic)
      continue;
    Names.push_back(E.Name);
  }
  return Names;
}

Grammar lalr::loadCorpusGrammar(const CorpusEntry &Entry) {
  DiagnosticEngine Diags;
  std::optional<Grammar> G = parseGrammar(Entry.Source, Diags, Entry.Name);
  if (!G) {
    std::fprintf(stderr, "corpus grammar '%s' failed to parse:\n%s",
                 Entry.Name, Diags.render().c_str());
    std::abort();
  }
  return std::move(*G);
}

Grammar lalr::loadCorpusGrammar(std::string_view Name) {
  const CorpusEntry *E = findCorpusEntry(Name);
  if (!E) {
    std::fprintf(stderr, "no corpus grammar named '%s'\n",
                 std::string(Name).c_str());
    std::abort();
  }
  return loadCorpusGrammar(*E);
}

bool lalr::corpusGrammarSupportsSentenceGen(const CorpusEntry &Entry) {
  Grammar G = loadCorpusGrammar(Entry);
  std::vector<uint32_t> MinLen = computeMinYieldLengths(G);
  return MinLen[G.startSymbol()] != UnproductiveLength;
}
