#!/usr/bin/env python3
"""Snapshot a bench-stats directory into a dated BENCH_<date>.json at the
repo root.

Gathers every PipelineStats JSON written by the bench binaries (the same
files scripts/compare_stats.py gates) and, optionally, a google-benchmark
--benchmark_out JSON from bench_micro, into one self-contained record of
how this commit performed.

By default the snapshot is COMPACT: per stats file it records the entry
count, the median and min end-to-end wall time, and the sum of each
structural counter (the same counter set compare_stats.py gates on) —
a ~100-line record that diffs meaningfully across commits. The full
per-entry embedding is available behind --raw for deep-dive archaeology;
the gate tooling always reads the live build/bench-stats files, never the
snapshot, so nothing downstream depends on the raw form.

When the micro results contain the BM_DpSetUnion pair the snapshot also
derives the slab-vs-bitset union throughput ratio explicitly, so the
flat-layout speedup is a first-class recorded number rather than
something readers re-divide by hand.

Typical use, after scripts/check.sh has populated build/bench-stats/:

  ./build/bench/bench_micro --json build/bench-stats/micro.json \
      --benchmark_filter=BM_DpSetUnion \
      --benchmark_out=build/micro_gbench.json --benchmark_out_format=json
  scripts/record_bench.py --micro build/micro_gbench.json

An existing raw snapshot can be rewritten compactly in place:

  scripts/record_bench.py --migrate BENCH_2026-08-08.json

Exit status: 0 on success, 2 on usage/IO errors.
"""

import argparse
import datetime
import json
import statistics
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from compare_stats import STRUCTURAL_COUNTERS  # noqa: E402


def git_commit():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            text=True, stderr=subprocess.DEVNULL).strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def compact_entries(entries):
    """One summary object for a bench binary's PipelineStats array:
    entry count, median/min wall, summed structural counters."""
    walls = [e["total_us"] for e in entries
             if isinstance(e.get("total_us"), (int, float))]
    counters = {}
    for e in entries:
        for c in e.get("counters", []):
            if c["name"] in STRUCTURAL_COUNTERS:
                counters[c["name"]] = counters.get(c["name"], 0) + c["value"]
    out = {"entries": len(entries)}
    if walls:
        out["wall_us"] = {"median": round(statistics.median(walls), 1),
                          "min": round(min(walls), 1)}
    if counters:
        out["counters"] = dict(sorted(counters.items()))
    return out


def load_micro(path):
    """The benchmark rows of a google-benchmark JSON, trimmed to the
    fields worth keeping in a long-lived snapshot."""
    doc = json.loads(path.read_text())
    rows = []
    for b in doc.get("benchmarks", []):
        row = {"name": b["name"]}
        for key in ("real_time", "cpu_time", "time_unit", "iterations",
                    "bytes_per_second", "label"):
            if key in b:
                row[key] = b[key]
        rows.append(row)
    return rows


def union_speedup(rows):
    """slab / bitset throughput ratio from the BM_DpSetUnion pair, or
    None when either row (or its throughput counter) is absent. Prefers
    the median aggregate when the run used --benchmark_repetitions."""
    per = {r["name"]: r for r in rows}
    for suffix in ("_median", "_mean", ""):
        base = per.get(f"BM_DpSetUnion/0{suffix}")
        slab = per.get(f"BM_DpSetUnion/1{suffix}")
        if (base and slab and base.get("bytes_per_second")
                and slab.get("bytes_per_second")):
            return slab["bytes_per_second"] / base["bytes_per_second"]
    return None


def parse_throughput(stats):
    """Aggregate parse-serving throughput (tokens/second) from the
    bench_parse_throughput entries: summed parse_tokens over summed
    parse-run wall across every parse-throughput/* label. None when no
    file carries parse traffic — the snapshot then simply omits it."""
    tokens = 0
    run_us = 0.0
    for entries in stats.values():
        if not isinstance(entries, list):
            continue  # compact summaries carry no stages
        for e in entries:
            if not str(e.get("label", "")).startswith("parse-throughput/"):
                continue
            for c in e.get("counters", []):
                if c["name"] == "parse_tokens":
                    tokens += c["value"]
            for s in e.get("stages", []):
                if s["name"] == "parse-run":
                    run_us += s["wall_us"]
    if tokens and run_us > 0:
        return tokens / (run_us / 1e6)
    return None


def socket_saturation(stats):
    """The network front end's saturation curve from the
    bench_service_throughput --socket rows: {client_count:
    requests_per_second} over every service-throughput/socket-cN entry
    (measured socket_requests over the socket-run stage wall). None when
    no file carries socket traffic — the snapshot then omits it."""
    curve = {}
    for entries in stats.values():
        if not isinstance(entries, list):
            continue  # compact summaries carry no stages
        for e in entries:
            label = str(e.get("label", ""))
            if not label.startswith("service-throughput/socket-c"):
                continue
            clients = label.rsplit("socket-c", 1)[1]
            reqs = 0
            run_us = 0.0
            for c in e.get("counters", []):
                if c["name"] == "socket_requests":
                    reqs = c["value"]
            for s in e.get("stages", []):
                if s["name"] == "socket-run":
                    run_us = s["wall_us"]
            if reqs and run_us > 0:
                curve[clients] = round(reqs / (run_us / 1e6))
    return curve or None


def migrate(path, out):
    """Rewrites an existing raw snapshot compactly, keeping every
    non-stats field (date, commit, micro, derived ratios) verbatim."""
    try:
        snap = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot parse {path}: {e}", file=sys.stderr)
        return 2
    stats = snap.get("stats")
    if not isinstance(stats, dict):
        print(f"error: {path} has no stats object", file=sys.stderr)
        return 2
    compacted = {}
    for fname, entries in sorted(stats.items()):
        if isinstance(entries, list):
            compacted[fname] = compact_entries(entries)
        else:
            compacted[fname] = entries  # already compact
    snap["stats"] = compacted
    target = out or path
    target.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"migrated {path} -> {target}: {len(compacted)} files compacted")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--stats-dir", type=Path,
                    default=Path("build/bench-stats"),
                    help="directory of PipelineStats JSON arrays "
                         "(default build/bench-stats)")
    ap.add_argument("--micro", type=Path,
                    help="google-benchmark --benchmark_out JSON to fold in")
    ap.add_argument("--raw", action="store_true",
                    help="embed the full per-entry stats arrays instead of "
                         "the compact per-file summaries")
    ap.add_argument("--migrate", type=Path,
                    help="rewrite an existing raw snapshot compactly and "
                         "exit (ignores the other inputs)")
    ap.add_argument("--date", default=datetime.date.today().isoformat(),
                    help="snapshot date (default today, ISO format); "
                         "names the output file")
    ap.add_argument("--out", type=Path,
                    help="output path (default BENCH_<date>.json)")
    args = ap.parse_args()

    if args.migrate:
        return migrate(args.migrate, args.out)

    snap = {"date": args.date}
    commit = git_commit()
    if commit:
        snap["commit"] = commit

    stats = {}
    raw = {}
    n_entries = 0
    for f in sorted(args.stats_dir.glob("*.json")):
        try:
            entries = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot parse {f}: {e}", file=sys.stderr)
            return 2
        n_entries += len(entries)
        raw[f.name] = entries
        stats[f.name] = entries if args.raw else compact_entries(entries)
    if not stats:
        print(f"error: no .json files in {args.stats_dir}", file=sys.stderr)
        return 2
    snap["stats"] = stats

    # Parse-serving throughput, when bench_parse_throughput contributed:
    # a first-class recorded number like the DP union speedup below.
    tok_s = parse_throughput(raw)
    if tok_s is not None:
        snap["parse_tokens_per_second"] = round(tok_s)

    # The network front end's saturation curve, when the --socket bench
    # contributed: clients -> requests/second as a first-class number.
    curve = socket_saturation(raw)
    if curve is not None:
        snap["socket_requests_per_second"] = curve

    if args.micro:
        try:
            rows = load_micro(args.micro)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot parse {args.micro}: {e}", file=sys.stderr)
            return 2
        snap["micro"] = rows
        ratio = union_speedup(rows)
        if ratio is not None:
            snap["dp_set_union_speedup"] = round(ratio, 3)

    out = args.out or Path(f"BENCH_{args.date}.json")
    out.write_text(json.dumps(snap, indent=2) + "\n")
    note = ""
    if "dp_set_union_speedup" in snap:
        note = f", dp_set_union_speedup={snap['dp_set_union_speedup']:.2f}x"
    form = "raw" if args.raw else "compact"
    print(f"wrote {out} ({form}): {n_entries} stats entries "
          f"in {len(stats)} files{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
