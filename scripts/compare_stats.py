#!/usr/bin/env python3
"""Compare two bench-stats directories (as written by scripts/check.sh
into build/bench-stats/: one JSON array of PipelineStats objects per bench
binary) and flag regressions.

Two kinds of drift are checked, per (file, label) entry present in both
directories:

  * Structural counters — relation/table sizes (edge counts, nt-transition
    and reduction-slot counts, state counts, ...) — must match exactly:
    the DP pipeline is deterministic and the parallel path is bit-identical
    to serial, so any size drift is a correctness change, not noise.

  * Per-stage wall-clock may regress by at most --threshold (a ratio;
    default 1.5x) relative to the baseline, and only stages slower than
    --min-us (default 100) are compared at all — micro-stage timings on CI
    machines are noise.

Exit status: 0 when clean, 1 on any regression or structural drift,
2 on usage/IO errors. Typical use:

  scripts/compare_stats.py baseline-stats/ build/bench-stats/
  scripts/compare_stats.py --self build/bench-stats/   # structure self-check
"""

import argparse
import json
import sys
from pathlib import Path

# Counters whose values describe timing-independent structure; everything
# else (union-op counts, speedup ratios, thread counts, peak bits) may
# legitimately differ across configurations and machines.
STRUCTURAL_COUNTERS = {
    "terminals", "nonterminals", "productions", "grammar_size",
    "lr0_states", "lr0_transitions", "lr1_states",
    "nt_transitions", "reduction_slots",
    "reads_edges", "includes_edges", "lookback_edges",
    "table_states", "table_conflicts",
    "unresolved_shift_reduce", "unresolved_reduce_reduce",
    "compressed_explicit_actions", "default_reduction_rows",
    # Deterministic for serial builds: the cooperative-cancellation poll
    # count is a pure function of the work done, so a drift means a stage
    # changed its polling (or its shape) — exactly what this gate is for.
    "guard_polls",
    # The artifact verifier runs a fixed check list over deterministic
    # artifacts (parallel == serial), so both its work and its findings
    # are structure; verify_issues must in fact stay 0 everywhere.
    "verify_checks", "verify_issues",
    # The flat DP layout: the arena census (bytes, set count) and the CSR
    # edge total are pure functions of the grammar, so any drift means the
    # relation build or the census changed shape.
    "slab_bytes", "slab_sets", "relation_csr_edges",
    # Selective incremental rebuild: how many edits took the patch path
    # and the dirty-frontier census behind them are pure functions of the
    # (grammar, edit script) pair — patching is bit-identical to a fresh
    # build, so a drift here means the delta planner reclassified an edit
    # or the taint radius changed.
    "incremental_builds", "dirty_nts", "dirty_sccs", "resolved_sets_reused",
    # Parse serving: bench_parse_throughput's workload is seeded random
    # sentences over a fixed sweep, so the request mix, the verdicts, the
    # token totals, the snapshot build count and the GSS/chart forest
    # census are all exact — a drift means a driver changed its language
    # or its work shape. The timing-adjacent counters (table_hits, shed
    # counts) are deliberately NOT gated: they may vary across runs with
    # deadlines in play.
    "parse_requests", "parse_accepted", "parse_rejected", "parse_tokens",
    "parse_table_builds", "parse_forest_nodes",
    # Network front end: the request count is a pure function of the
    # workload, shed/drained must stay zero in benches (no saturation or
    # shutdown inside a measured region), and a coalescing drift in a
    # deterministic fixture means the single-flight keying changed.
    # Benches whose coalescing IS timing-dependent emit it under the
    # ungated socket_coalesced name instead.
    "net_requests", "net_coalesced", "net_shed", "net_drained",
    # Lock-rank checker (support/LockRank.h). Both are 0 in the default
    # RelWithDebInfo/CI builds (the checker arms only under
    # LALR_LOCK_CHECK or !NDEBUG), so they are exact across runs; and a
    # nonzero lock_order_violations anywhere is a deadlock-ordering bug,
    # never noise.
    "lock_acquisitions", "lock_order_violations",
}

# Counters that are deliberately NOT gated: timing-, machine- or
# scheduling-dependent (cache hit/miss splits under eviction pressure,
# shed/deadline accounting, peak bit-widths, speedup ratios, ...). Every
# counter emitted under src/ or bench/ must appear in exactly one of
# STRUCTURAL_COUNTERS or VOLATILE_COUNTERS — scripts/lalr_lint.py fails
# the build on any counter that is emitted but classified in neither
# (silently-ungated counters are how structural drift sneaks past CI).
VOLATILE_COUNTERS = {
    # Grammar/DP configuration and work-shape counters that vary with
    # thread count or build mode.
    "build_threads", "read_union_ops", "follow_union_ops",
    "reads_nontrivial_sccs", "includes_nontrivial_sccs",
    "peak_read_bits", "peak_follow_bits", "peak_la_bits",
    "compressed_bytes",
    # Baseline-construction censuses (comparison tables, not gates).
    "bl_derived_nonterminals", "bl_derived_productions",
    "nqlalr_nodes", "pager_states", "pager_reprocessed",
    "yacc_links", "yacc_passes",
    # Build service: request outcomes and cache dynamics depend on
    # deadlines, eviction pressure and worker scheduling.
    "service_requests", "service_succeeded", "service_failed",
    "service_rejected", "service_expired", "service_cancelled",
    "service_limit_killed", "service_cache_hits", "service_cache_misses",
    "service_cache_evictions", "service_cache_invalidations",
    "service_cache_patched", "service_cache_invalidations_source",
    "service_cache_invalidations_explicit",
    "service_cache_invalidations_abort",
    # Parse service: outcome splits with deadlines/limits in play, the
    # table-LRU dynamics, and the per-driver request split.
    "parse_failed", "parse_expired", "parse_cancelled",
    "parse_limit_killed", "parse_table_hits", "parse_table_serves",
    "parse_table_evictions", "parse_retired_tables",
    "parse_requests_lr", "parse_requests_glr", "parse_requests_ll1",
    "parse_requests_earley",
    # Network front end: connection/flight/fault accounting varies with
    # client scheduling; the structural subset is gated above.
    "net_connections", "net_ok_responses", "net_err_responses",
    "net_bad_requests", "net_flights", "net_accept_faults",
    "net_read_faults", "net_write_faults",
    # Bench-local counters (speedups, worker counts, socket sweeps).
    "dp_speedup_x1000", "relations_speedup_x1000", "parallel_efficiency",
    "hardware_threads", "service_workers",
    "naive_sweeps", "naive_reverse_sweeps", "naive_union_ops",
    "socket_requests", "socket_clients", "socket_coalesced",
    "socket_flights",
}


def load_dir(path):
    """{filename: {label: entry}} for every .json array in the directory."""
    out = {}
    for f in sorted(path.glob("*.json")):
        try:
            entries = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot parse {f}: {e}", file=sys.stderr)
            sys.exit(2)
        by_label = {}
        for entry in entries:
            # Benches may emit several entries per label (e.g. one per
            # worker count with the same grammar label); keep the first
            # and compare like-for-like only.
            by_label.setdefault(entry.get("label", ""), entry)
        out[f.name] = by_label
    if not out:
        print(f"error: no .json files in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def counters(entry):
    return {c["name"]: c["value"] for c in entry.get("counters", [])}


def stages(entry):
    return {s["name"]: s["wall_us"] for s in entry.get("stages", [])}


def compare(base, cand, threshold, min_us, structural_only=False):
    problems = []
    for fname, base_labels in base.items():
        cand_labels = cand.get(fname)
        if cand_labels is None:
            problems.append(f"{fname}: missing from candidate directory")
            continue
        for label, base_entry in base_labels.items():
            cand_entry = cand_labels.get(label)
            if cand_entry is None:
                problems.append(f"{fname} [{label}]: entry missing")
                continue
            bc, cc = counters(base_entry), counters(cand_entry)
            for name in sorted(STRUCTURAL_COUNTERS & bc.keys() & cc.keys()):
                if bc[name] != cc[name]:
                    problems.append(
                        f"{fname} [{label}] counter {name}: "
                        f"{bc[name]} -> {cc[name]} (structural drift)")
            if structural_only:
                continue
            bs, cs = stages(base_entry), stages(cand_entry)
            for name in sorted(bs.keys() & cs.keys()):
                if bs[name] < min_us:
                    continue
                ratio = cs[name] / bs[name]
                if ratio > threshold:
                    problems.append(
                        f"{fname} [{label}] stage {name}: "
                        f"{bs[name]:.0f}us -> {cs[name]:.0f}us "
                        f"({ratio:.2f}x > {threshold:.2f}x)")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("candidate", type=Path, nargs="?")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="max allowed wall-clock ratio (default 1.5)")
    ap.add_argument("--min-us", type=float, default=100.0,
                    help="ignore stages faster than this in the baseline")
    ap.add_argument("--self", action="store_true",
                    help="compare the baseline against itself (validates "
                         "the files parse and the tool's plumbing)")
    ap.add_argument("--structural-only", action="store_true",
                    help="check structural counters only, skipping the "
                         "wall-clock comparison (for cross-machine or "
                         "cross-commit runs where timings are noise)")
    args = ap.parse_args()

    if args.self != (args.candidate is None):
        ap.error("give two directories, or one with --self")
    base = load_dir(args.baseline)
    cand = base if args.self else load_dir(args.candidate)

    problems = compare(base, cand, args.threshold, args.min_us,
                       args.structural_only)
    n_entries = sum(len(v) for v in base.values())
    if problems:
        print(f"{len(problems)} regression(s) across {n_entries} entries:")
        for p in problems:
            print(f"  {p}")
        return 1
    timing_note = ("timings skipped" if args.structural_only else
                   f"no stage slower than {args.threshold:.2f}x baseline")
    print(f"OK: {n_entries} entries in {len(base)} files, "
          f"no structural drift, {timing_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
