#!/usr/bin/env bash
# clang-format gate over the repo's .clang-format profile.
#
#   scripts/check-format.sh        # check only (CI mode)
#   scripts/check-format.sh --fix  # rewrite files in place
#
# Exits 0 with a notice when clang-format is not installed — the CI
# static-analysis job is the enforcing run.
set -euo pipefail
cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "check-format: $FMT not found; skipping (CI enforces this gate)"
  exit 0
fi

mapfile -t FILES < <(git ls-files 'src/*.cpp' 'src/*.h' 'examples/*.cpp' \
                       'tests/*.cpp' 'bench/*.cpp')

if [ "${1:-}" = "--fix" ]; then
  "$FMT" -i "${FILES[@]}"
  echo "check-format: reformatted ${#FILES[@]} file(s)"
  exit 0
fi

echo "check-format: ${#FILES[@]} file(s) with $("$FMT" --version)"
"$FMT" --dry-run -Werror "${FILES[@]}"
