#!/usr/bin/env python3
"""Self-test for scripts/compare_stats.py — stdlib unittest only, run by
scripts/check.sh and CI before the tool gates anything:

    python3 scripts/test_compare_stats.py

Covers the comparison semantics the CI gate depends on: missing files and
labels, structural-counter drift, the wall-clock threshold boundary
(exactly at the threshold passes, just above fails), the --min-us noise
filter, --structural-only, --self, and the process-level exit codes.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import compare_stats  # noqa: E402

TOOL = Path(__file__).resolve().parent / "compare_stats.py"


def entry(label, counters=None, stages=None):
    return {
        "label": label,
        "counters": [{"name": n, "value": v}
                     for n, v in (counters or {}).items()],
        "stages": [{"name": n, "wall_us": us}
                   for n, us in (stages or {}).items()],
    }


def write_dir(root, name, files):
    """files: {filename: [entry, ...]} -> a bench-stats directory."""
    d = Path(root) / name
    d.mkdir()
    for fname, entries in files.items():
        (d / fname).write_text(json.dumps(entries))
    return d


class CompareFunctionTest(unittest.TestCase):
    """Unit tests against compare_stats.compare / load_dir directly."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def load(self, name, files):
        return compare_stats.load_dir(write_dir(self.tmp.name, name, files))

    def test_identical_dirs_are_clean(self):
        files = {"b.json": [entry("g/lalr1", {"lr0_states": 10},
                                  {"lr0": 500.0})]}
        base = self.load("base", files)
        cand = self.load("cand", files)
        self.assertEqual(compare_stats.compare(base, cand, 1.5, 100.0), [])

    def test_missing_file_is_reported(self):
        base = self.load("base", {"a.json": [entry("x")],
                                  "b.json": [entry("y")]})
        cand = self.load("cand", {"a.json": [entry("x")]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn("b.json: missing from candidate directory", problems[0])

    def test_missing_label_is_reported(self):
        base = self.load("base", {"a.json": [entry("x"), entry("y")]})
        cand = self.load("cand", {"a.json": [entry("x")]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(problems, ["a.json [y]: entry missing"])

    def test_structural_counter_drift_fails(self):
        base = self.load("base", {"a.json": [entry("g", {"lr0_states": 10})]})
        cand = self.load("cand", {"a.json": [entry("g", {"lr0_states": 11})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn("counter lr0_states: 10 -> 11 (structural drift)",
                      problems[0])

    def test_verify_counters_are_structural(self):
        # The verifier's check count is a pure function of the artifacts,
        # and its issue count must stay 0; drift in either is a red flag.
        base = self.load("base", {"a.json": [entry(
            "g/lalr1", {"verify_checks": 543, "verify_issues": 0})]})
        cand = self.load("cand", {"a.json": [entry(
            "g/lalr1", {"verify_checks": 543, "verify_issues": 1})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn("counter verify_issues: 0 -> 1 (structural drift)",
                      problems[0])

    def test_incremental_counters_are_structural(self):
        # The delta planner's dirty-frontier census is deterministic for a
        # fixed edit script; reclassification shows up as counter drift.
        base = self.load("base", {"a.json": [entry(
            "g", {"incremental_builds": 22, "dirty_nts": 3,
                  "dirty_sccs": 2, "resolved_sets_reused": 140})]})
        cand = self.load("cand", {"a.json": [entry(
            "g", {"incremental_builds": 21, "dirty_nts": 3,
                  "dirty_sccs": 2, "resolved_sets_reused": 97})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 2)
        self.assertIn("counter incremental_builds: 22 -> 21", problems[0])
        self.assertIn("counter resolved_sets_reused: 140 -> 97", problems[1])

    def test_parse_counters_are_structural(self):
        # bench_parse_throughput's workload is seeded, so the verdict mix
        # and the forest census are exact; a drift means a driver changed
        # its language or its work shape. Table hits stay ungated.
        base = self.load("base", {"a.json": [entry(
            "parse-throughput/ambiguous/glr",
            {"parse_requests": 32, "parse_accepted": 32, "parse_rejected": 0,
             "parse_tokens": 312, "parse_table_builds": 1,
             "parse_forest_nodes": 656, "parse_table_hits": 31})]})
        cand = self.load("cand", {"a.json": [entry(
            "parse-throughput/ambiguous/glr",
            {"parse_requests": 32, "parse_accepted": 31, "parse_rejected": 1,
             "parse_tokens": 312, "parse_table_builds": 1,
             "parse_forest_nodes": 640, "parse_table_hits": 7})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 3)
        self.assertIn("counter parse_accepted: 32 -> 31", problems[0])
        self.assertIn("counter parse_forest_nodes: 656 -> 640", problems[1])
        self.assertIn("counter parse_rejected: 0 -> 1", problems[2])

    def test_net_counters_are_structural(self):
        # The network front end: the request count is workload-determined
        # and shed/drained must stay zero in measured regions; the
        # timing-dependent coalescing of a saturation bench rides under
        # the ungated socket_coalesced name and may drift freely.
        base = self.load("base", {"a.json": [entry(
            "service-throughput/socket-c4",
            {"net_requests": 805, "net_shed": 0, "net_drained": 0,
             "socket_coalesced": 17})]})
        cand = self.load("cand", {"a.json": [entry(
            "service-throughput/socket-c4",
            {"net_requests": 805, "net_shed": 2, "net_drained": 0,
             "socket_coalesced": 92})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn("counter net_shed: 0 -> 2 (structural drift)",
                      problems[0])

    def test_lock_counters_are_structural(self):
        # The lock-rank checker is off in the RelWithDebInfo builds that
        # produce bench stats, so both counters are exactly 0 across
        # runs; any nonzero lock_order_violations is a deadlock-ordering
        # bug, never noise, and must trip the structural gate.
        base = self.load("base", {"a.json": [entry(
            "g/lalr1", {"lock_acquisitions": 0,
                        "lock_order_violations": 0})]})
        cand = self.load("cand", {"a.json": [entry(
            "g/lalr1", {"lock_acquisitions": 0,
                        "lock_order_violations": 1})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn(
            "counter lock_order_violations: 0 -> 1 (structural drift)",
            problems[0])

    def test_non_structural_counter_drift_is_ignored(self):
        # build_threads varies across configurations by design.
        base = self.load("base", {"a.json": [entry("g", {"build_threads": 0})]})
        cand = self.load("cand", {"a.json": [entry("g", {"build_threads": 4})]})
        self.assertEqual(compare_stats.compare(base, cand, 1.5, 100.0), [])

    def test_stage_exactly_at_threshold_passes(self):
        base = self.load("base", {"a.json": [entry("g", None,
                                                   {"lr0": 1000.0})]})
        cand = self.load("cand", {"a.json": [entry("g", None,
                                                   {"lr0": 1500.0})]})
        self.assertEqual(compare_stats.compare(base, cand, 1.5, 100.0), [])

    def test_stage_just_above_threshold_fails(self):
        base = self.load("base", {"a.json": [entry("g", None,
                                                   {"lr0": 1000.0})]})
        cand = self.load("cand", {"a.json": [entry("g", None,
                                                   {"lr0": 1500.1})]})
        problems = compare_stats.compare(base, cand, 1.5, 100.0)
        self.assertEqual(len(problems), 1)
        self.assertIn("stage lr0", problems[0])

    def test_min_us_filters_fast_stages(self):
        # A 10x regression on a 50us stage is noise below min_us=100.
        base = self.load("base", {"a.json": [entry("g", None,
                                                   {"tiny": 50.0})]})
        cand = self.load("cand", {"a.json": [entry("g", None,
                                                   {"tiny": 500.0})]})
        self.assertEqual(compare_stats.compare(base, cand, 1.5, 100.0), [])
        # At min_us=10 the same drift is flagged.
        self.assertEqual(
            len(compare_stats.compare(base, cand, 1.5, 10.0)), 1)

    def test_structural_only_skips_timing(self):
        files_base = {"a.json": [entry("g", {"lr0_states": 10},
                                       {"lr0": 1000.0})]}
        files_cand = {"a.json": [entry("g", {"lr0_states": 10},
                                       {"lr0": 9000.0})]}
        base = self.load("base", files_base)
        cand = self.load("cand", files_cand)
        self.assertEqual(
            compare_stats.compare(base, cand, 1.5, 100.0,
                                  structural_only=True), [])
        # Counter drift still fails in structural-only mode.
        cand_bad = self.load(
            "cand_bad", {"a.json": [entry("g", {"lr0_states": 99})]})
        self.assertEqual(
            len(compare_stats.compare(base, cand_bad, 1.5, 100.0,
                                      structural_only=True)), 1)


class CliExitCodeTest(unittest.TestCase):
    """End-to-end: the exit codes CI branches on."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_tool(self, *args):
        return subprocess.run([sys.executable, str(TOOL), *args],
                              capture_output=True, text=True)

    def test_clean_comparison_exits_zero(self):
        files = {"b.json": [entry("g", {"lr0_states": 5}, {"lr0": 200.0})]}
        base = write_dir(self.tmp.name, "base", files)
        cand = write_dir(self.tmp.name, "cand", files)
        proc = self.run_tool(str(base), str(cand))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK:", proc.stdout)

    def test_drift_exits_one(self):
        base = write_dir(self.tmp.name, "base",
                         {"b.json": [entry("g", {"lr0_states": 5})]})
        cand = write_dir(self.tmp.name, "cand",
                         {"b.json": [entry("g", {"lr0_states": 6})]})
        proc = self.run_tool(str(base), str(cand))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("structural drift", proc.stdout)

    def test_missing_directory_exits_two(self):
        base = write_dir(self.tmp.name, "base", {"b.json": [entry("g")]})
        proc = self.run_tool(str(base), str(Path(self.tmp.name) / "absent"))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_unparseable_json_exits_two(self):
        base = write_dir(self.tmp.name, "base", {"b.json": [entry("g")]})
        bad = Path(self.tmp.name) / "bad"
        bad.mkdir()
        (bad / "b.json").write_text("{not json")
        proc = self.run_tool(str(base), str(bad))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_self_mode_exits_zero(self):
        base = write_dir(self.tmp.name, "base",
                         {"b.json": [entry("g", {"lr0_states": 5})]})
        proc = self.run_tool("--self", str(base))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_self_with_candidate_is_usage_error(self):
        base = write_dir(self.tmp.name, "base", {"b.json": [entry("g")]})
        proc = self.run_tool("--self", str(base), str(base))
        self.assertEqual(proc.returncode, 2)

    def test_structural_only_flag(self):
        base = write_dir(self.tmp.name, "base",
                         {"b.json": [entry("g", {"lr0_states": 5},
                                           {"lr0": 100.0})]})
        cand = write_dir(self.tmp.name, "cand",
                         {"b.json": [entry("g", {"lr0_states": 5},
                                           {"lr0": 100000.0})]})
        proc = self.run_tool("--structural-only", str(base), str(cand))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("timings skipped", proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
