#!/usr/bin/env bash
# ThreadSanitizer pass over the parallel DP core: Debug build (assertions
# ON) with TSan, running the parallel test suite — the ThreadPool unit
# tests plus the serial/parallel bit-identity checks — and then the whole
# look-ahead test binary with LALR_THREADS forced, so every sharded stage
# (relations build, wavefront digraph solves, la-union) runs under the
# race detector both directly and through the env-driven default path.
# The service test rides along: it exercises the BuildService batch
# scheduler, the shared ContextCache and the streaming dispatcher thread.
# The robustness and fault-injection tests run here too: cancellation
# tokens racing the parallel solver, bounded-queue close-while-full, and
# injected aborts unwinding across pool workers are exactly the shapes
# TSan exists to check. The parse test joins them for the serving layer:
# concurrent GLR/Earley traffic sharing immutable snapshots while other
# threads cancel the shared token and invalidate the snapshot LRU.
# The net test closes the sweep: concurrent wire clients racing the
# single-flight map, admission slots, drain, and injected socket faults.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build build-tsan --target parallel_test lalr_test pipeline_test \
  service_test parse_test robustness_test faultinject_test net_test

./build-tsan/tests/parallel_test
LALR_THREADS=4 ./build-tsan/tests/lalr_test
LALR_THREADS=4 ./build-tsan/tests/pipeline_test
./build-tsan/tests/service_test
LALR_THREADS=2 ./build-tsan/tests/service_test
./build-tsan/tests/parse_test
LALR_THREADS=2 ./build-tsan/tests/parse_test
LALR_THREADS=2 ./build-tsan/tests/robustness_test
./build-tsan/tests/faultinject_test
LALR_THREADS=4 ./build-tsan/tests/faultinject_test
./build-tsan/tests/net_test
LALR_THREADS=2 ./build-tsan/tests/net_test
