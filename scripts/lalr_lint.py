#!/usr/bin/env python3
"""lalr_lint: compile-free cross-layer conformance audits over src/.

The serving stack keeps several invariants that no compiler pass can see:
lock acquisition order, the failpoint-site registry, the stats-counter
gate lists, the wire `err`-code taxonomy, and guard-poll coverage of the
hot loops. Each lives in more than one place (C++ code, scripts/, docs/),
so this lint extracts every side and fails when they disagree. Audits
(run all by default; `--audit NAME` repeats to select):

  lock-graph   Every `Mutex` member under src/ must be ranked from the
               support/LockRank.h table; the per-function MutexLock
               nesting graph must be acyclic and every nesting edge must
               go from a lower to a strictly higher rank.
  failpoints   Site names used by `failPoint("...")` in code, the
               FailPoint.cpp registry (kAllSites), and the site list in
               docs/SERVICE.md must agree exactly.
  counters     Every counter emitted via setCounter/addCounter in src/
               and bench/ must be classified in scripts/compare_stats.py
               (STRUCTURAL_COUNTERS or VOLATILE_COUNTERS — an ungated
               counter is an error), must appear in the docs/API.md
               counter catalogue with the same gate class, and every
               classified/documented counter must actually be emitted.
  err-codes    Every `err` code the daemon can emit (formatErrLine
               literals, kWire* constants, the BuildStatus taxonomy) must
               be in the WireProtocol taxonomy and in the docs/SERVICE.md
               wire grammar, and vice versa.
  guard-polls  In the DP/driver hot files, every loop of >= MIN_LOOP_LINES
               lines must reach a BuildGuard poll (guardPoll /
               guardPollStrided / ->poll()) somewhere in its body, or
               carry an explicit `lalr_lint: no-poll(<reason>)` comment
               within or just above it.

Exit status: 0 clean, 1 findings, 2 usage/extraction errors. Findings are
one line each: `audit: file:line: message`.

Self-test: scripts/test_lalr_lint.py seeds one defective fixture per
audit class and asserts the real tree is clean; scripts/check.sh and the
CI static-analysis job run both.
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Shared extraction helpers
# --------------------------------------------------------------------------

AUDITS = ("lock-graph", "failpoints", "counters", "err-codes", "guard-polls")

# Hot-path files for the guard-polls audit: every file that implements a
# stage-level DP/driver loop (the set that polls a BuildGuard today; a new
# hot file must be added here when it grows its first guarded loop).
HOT_FILES = [
    "src/lalr/DigraphSolver.cpp",
    "src/lalr/LalrLookaheads.cpp",
    "src/lalr/IncrementalDp.cpp",
    "src/lalr/Relations.cpp",
    "src/lr/Lr0Automaton.cpp",
    "src/lr/ParseTable.h",
    "src/ll/Ll1Table.cpp",
    "src/glr/GlrParser.cpp",
    "src/earley/EarleyParser.cpp",
    "src/parser/ParserDriver.h",
    "src/baselines/Lr1Automaton.cpp",
    "src/baselines/PagerLr1.cpp",
]

# A loop shorter than this many lines is init/bookkeeping, not a stage
# loop; it does not need its own poll.
MIN_LOOP_LINES = 12

# Dynamic counter families: emitted as a computed name with a literal
# prefix. Maps emission prefix -> (doc row name, expanded names).
DYNAMIC_COUNTER_FAMILIES = {
    "parse_requests_": (
        "parse_requests_<driver>",
        ["parse_requests_lr", "parse_requests_glr", "parse_requests_ll1",
         "parse_requests_earley"],
    ),
}


class Finding:
    def __init__(self, audit, path, line, message):
        self.audit = audit
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else f"{self.path}"
        return f"{self.audit}: {where}: {self.message}"


def fatal(msg):
    print(f"lalr_lint: error: {msg}", file=sys.stderr)
    sys.exit(2)


def strip_comments(text):
    """C/C++ comments replaced by spaces (newlines kept: line numbers and
    string literals survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(text[i:j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_strings(text):
    """String/char literal *contents* replaced by spaces (quotes kept),
    for structural (brace-depth) scanning."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in "\"'":
            quote, j = c, i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            seg = text[i + 1:j]
            out.append(quote)
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            out.append(quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def src_files(root):
    for p in sorted((root / "src").rglob("*")):
        if p.suffix in (".h", ".cpp"):
            yield p


def rel(root, path):
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


# --------------------------------------------------------------------------
# Audit: lock-graph
# --------------------------------------------------------------------------

RANK_CONST_RE = re.compile(
    r"inline\s+constexpr\s+int\s+(\w+)\s*=\s*(\d+)\s*;")
RANKED_DECL_RE = re.compile(
    r"(?:mutable\s+)?\bMutex\s+(\w+)\s*\{\s*\"([^\"]+)\"\s*,\s*"
    r"lockrank::(\w+)\s*\}")
ANY_DECL_RE = re.compile(r"(?:mutable\s+)?\bMutex\s+(\w+)\s*([;{])")
ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(([^()]*)\)")


def load_rank_table(root):
    path = root / "src/support/LockRank.h"
    if not path.is_file():
        fatal(f"missing {path} (rank table)")
    text = strip_comments(path.read_text())
    m = re.search(r"namespace\s+lockrank\s*\{", text)
    if not m:
        fatal(f"{path}: no `namespace lockrank` block")
    end = text.find("}", m.end())
    body = text[m.end():end if end > 0 else len(text)]
    return {name: int(val) for name, val in RANK_CONST_RE.findall(body)}


class LockDecl:
    def __init__(self, path, line, member, name, const, rank):
        self.path = path          # Path of the declaring file
        self.line = line
        self.member = member      # C++ member identifier, e.g. "StatsMu"
        self.name = name          # rank-table name, e.g. "net.stats"
        self.const = const        # lockrank:: constant name
        self.rank = rank          # numeric rank (None if const unknown)


def audit_lock_graph(root):
    findings = []
    ranks = load_rank_table(root)

    skip = {root / "src/support/ThreadSafety.h",
            root / "src/support/LockRank.h"}
    decls = []
    texts = {}
    for path in src_files(root):
        if path in skip:
            continue
        text = strip_comments(path.read_text())
        texts[path] = text
        claimed = set()
        for m in RANKED_DECL_RE.finditer(text):
            member, name, const = m.group(1), m.group(2), m.group(3)
            claimed.add(m.start())
            if const not in ranks:
                findings.append(Finding(
                    "lock-graph", rel(root, path), line_of(text, m.start()),
                    f"mutex '{member}' uses unknown rank constant "
                    f"lockrank::{const} (not in support/LockRank.h)"))
                rank = None
            else:
                rank = ranks[const]
            decls.append(LockDecl(path, line_of(text, m.start()), member,
                                  name, const, rank))
        for m in ANY_DECL_RE.finditer(text):
            if m.start() in claimed:
                continue
            # A `{` opener that is not the ranked form: re-check.
            if m.group(2) == "{" and RANKED_DECL_RE.match(text, m.start()):
                continue
            findings.append(Finding(
                "lock-graph", rel(root, path), line_of(text, m.start()),
                f"mutex member '{m.group(1)}' is unranked: construct it as "
                f"Mutex{{\"<name>\", lockrank::<Const>}} "
                f"(see support/LockRank.h)"))

    # Duplicate rank-table names are an identity clash.
    by_name = {}
    for d in decls:
        by_name.setdefault(d.name, []).append(d)
    for name, ds in sorted(by_name.items()):
        if len(ds) > 1:
            locs = ", ".join(f"{rel(root, d.path)}:{d.line}" for d in ds[1:])
            findings.append(Finding(
                "lock-graph", rel(root, ds[0].path), ds[0].line,
                f"lock name \"{name}\" declared more than once "
                f"(also at {locs})"))

    by_member = {}
    for d in decls:
        by_member.setdefault(d.member, []).append(d)

    def resolve(path, member):
        """member name at an acquisition site -> LockDecl or None."""
        cands = by_member.get(member, [])
        if not cands:
            return None
        same_file = [d for d in cands if d.path == path]
        if len(same_file) == 1:
            return same_file[0]
        stem = path.stem
        same_stem = [d for d in cands if d.path.stem == stem]
        if len(same_stem) == 1:
            return same_stem[0]
        if len(cands) == 1:
            return cands[0]
        return "ambiguous"

    # Per-file scope walk: for each MutexLock, every lock still in scope
    # is an edge source. Brace depth comes from the string-blanked text.
    edges = {}  # (src LockDecl name, dst name) -> (path, line, ranks)
    for path, text in texts.items():
        struct = blank_strings(text)
        acquisitions = []
        for m in ACQUIRE_RE.finditer(text):
            arg = m.group(1)
            ids = re.findall(r"\w+", arg)
            if not ids:
                continue
            acquisitions.append((m.start(), ids[-1]))
        if not acquisitions:
            continue
        acq_iter = iter(acquisitions)
        nxt = next(acq_iter, None)
        depth = 0
        held = []  # (depth at declaration, LockDecl)
        for i, ch in enumerate(struct):
            while nxt is not None and nxt[0] <= i:
                pos, member = nxt
                d = resolve(path, member)
                if d == "ambiguous":
                    findings.append(Finding(
                        "lock-graph", rel(root, path), line_of(text, pos),
                        f"ambiguous lock member '{member}': declared in "
                        f"multiple classes and none matches this file"))
                elif d is not None:
                    for _, h in held:
                        key = (h.name, d.name)
                        if key not in edges:
                            edges[key] = (path, line_of(text, pos),
                                          h, d)
                    held.append((depth, d))
                nxt = next(acq_iter, None)
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                held = [(dd, l) for dd, l in held if dd < depth + 1]
        # (held lockers drain naturally; per-file scan ends here)

    for (src, dst), (path, line, hd, dd) in sorted(edges.items()):
        if hd.rank is None or dd.rank is None:
            continue
        if src == dst:
            findings.append(Finding(
                "lock-graph", rel(root, path), line,
                f"lock \"{src}\" acquired while already held "
                f"(self-deadlock)"))
        elif dd.rank <= hd.rank:
            findings.append(Finding(
                "lock-graph", rel(root, path), line,
                f"lock-order edge contradicts declared ranks: "
                f"\"{dst}\" (rank {dd.rank}) acquired while holding "
                f"\"{src}\" (rank {hd.rank}); ranks must strictly "
                f"increase"))

    # Cycle check over the extracted graph (redundant when every edge is
    # rank-increasing, decisive when ranks were edited into contradiction).
    graph = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
    state = {}

    def dfs(node, stack):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt, 0) == 1:
                cyc = stack[stack.index(nxt):] + [nxt]
                findings.append(Finding(
                    "lock-graph", "src", 0,
                    "lock-graph cycle: " + " -> ".join(
                        f'"{x}"' for x in cyc)))
            elif state.get(nxt, 0) == 0:
                dfs(nxt, stack)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node, [])

    return findings


# --------------------------------------------------------------------------
# Audit: failpoints
# --------------------------------------------------------------------------

def registry_sites(root):
    path = root / "src/support/FailPoint.cpp"
    if not path.is_file():
        fatal(f"missing {path} (failpoint registry)")
    text = strip_comments(path.read_text())
    m = re.search(r"kAllSites\[\]\s*=\s*\{", text)
    if not m:
        fatal(f"{path}: no kAllSites initializer")
    end = text.find("};", m.end())
    body = text[m.end():end]
    return re.findall(r"\"([^\"]+)\"", body), path, line_of(text, m.start())


def docs_failpoint_sites(root):
    path = root / "docs/SERVICE.md"
    if not path.is_file():
        return None, path, 0
    text = path.read_text()
    m = re.search(r"registered sites", text, re.IGNORECASE)
    if not m:
        return None, path, 0
    fence = re.compile(r"```[^\n]*\n(.*?)```", re.DOTALL)
    f = fence.search(text, m.end())
    if not f:
        return None, path, line_of(text, m.start())
    return re.findall(r"[\w-]+", f.group(1)), path, line_of(text, f.start())


def audit_failpoints(root):
    findings = []
    registry, reg_path, reg_line = registry_sites(root)
    reg_set = set(registry)

    dup = {s for s in registry if registry.count(s) > 1}
    for s in sorted(dup):
        findings.append(Finding(
            "failpoints", rel(root, reg_path), reg_line,
            f"site '{s}' appears more than once in kAllSites"))

    skip = {root / "src/support/FailPoint.h",
            root / "src/support/FailPoint.cpp"}
    used = {}   # site -> (path, line) of a failPoint("...") call
    quoted = set()  # every quoted literal in src/ outside the registry
    for path in src_files(root):
        if path in skip:
            continue
        text = strip_comments(path.read_text())
        for m in re.finditer(r"\bfailPoint\(\s*\"([^\"]+)\"", text):
            used.setdefault(m.group(1), (path, line_of(text, m.start())))
        for m in re.finditer(r"\"([\w-]+)\"", text):
            quoted.add(m.group(1))

    for site in sorted(used):
        if site not in reg_set:
            path, line = used[site]
            findings.append(Finding(
                "failpoints", rel(root, path), line,
                f"failPoint(\"{site}\") is not a registered site: add it "
                f"to kAllSites in src/support/FailPoint.cpp"))
    for site in sorted(reg_set):
        if site not in used and site not in quoted:
            findings.append(Finding(
                "failpoints", rel(root, reg_path), reg_line,
                f"registered site '{site}' is never referenced under src/ "
                f"(dead registry entry?)"))

    doc_sites, doc_path, doc_line = docs_failpoint_sites(root)
    if doc_sites is None:
        findings.append(Finding(
            "failpoints", rel(root, doc_path), doc_line,
            "docs/SERVICE.md has no fenced site list after a 'registered "
            "sites' marker"))
    else:
        doc_set = set(doc_sites)
        for s in sorted(reg_set - doc_set):
            findings.append(Finding(
                "failpoints", rel(root, doc_path), doc_line,
                f"registered site '{s}' missing from the docs/SERVICE.md "
                f"site list"))
        for s in sorted(doc_set - reg_set):
            findings.append(Finding(
                "failpoints", rel(root, doc_path), doc_line,
                f"docs/SERVICE.md lists unknown site '{s}' (not in "
                f"kAllSites)"))
    return findings


# --------------------------------------------------------------------------
# Audit: counters
# --------------------------------------------------------------------------

EMIT_RE = re.compile(r"\b(?:setCounter|addCounter)\(\s*\"([a-z0-9_]+)\"")
DYN_EMIT_RE = re.compile(
    r"\b(?:setCounter|addCounter)\(\s*std::string\(\s*\"([a-z0-9_]+)\"\s*\)")


def emitted_counters(root):
    emitted = {}   # name -> (path, line)
    families = {}  # prefix -> (path, line)
    dirs = [root / "src", root / "bench"]
    for d in dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            text = strip_comments(path.read_text())
            for m in EMIT_RE.finditer(text):
                emitted.setdefault(m.group(1),
                                   (path, line_of(text, m.start())))
            for m in DYN_EMIT_RE.finditer(text):
                families.setdefault(m.group(1),
                                    (path, line_of(text, m.start())))
    return emitted, families


def gate_sets(root):
    path = root / "scripts/compare_stats.py"
    if not path.is_file():
        fatal(f"missing {path}")
    text = path.read_text()
    out = {}
    for name in ("STRUCTURAL_COUNTERS", "VOLATILE_COUNTERS"):
        m = re.search(name + r"\s*=\s*\{", text)
        if m is None:
            out[name] = None
            continue
        end = text.find("}", m.end())
        out[name] = set(re.findall(r"\"([a-z0-9_]+)\"",
                                   text[m.end():end]))
    return out, path


CATALOGUE_ROW_RE = re.compile(
    r"^\|\s*`([a-z0-9_<>]+)`\s*\|\s*(structural|volatile)\s*\|",
    re.MULTILINE)


def docs_counter_catalogue(root):
    path = root / "docs/API.md"
    if not path.is_file():
        return None, path
    text = path.read_text()
    rows = {}
    for m in CATALOGUE_ROW_RE.finditer(text):
        rows[m.group(1)] = (m.group(2), line_of(text, m.start()))
    return (rows if rows else None), path


def audit_counters(root):
    findings = []
    emitted, families = emitted_counters(root)
    gates, gate_path = gate_sets(root)
    structural = gates["STRUCTURAL_COUNTERS"]
    volatile = gates["VOLATILE_COUNTERS"]
    if structural is None:
        fatal(f"{gate_path}: no STRUCTURAL_COUNTERS set")
    if volatile is None:
        findings.append(Finding(
            "counters", rel(root, gate_path), 0,
            "compare_stats.py has no VOLATILE_COUNTERS set: every emitted "
            "counter must be explicitly classified"))
        volatile = set()

    # Expand dynamic families into their exact emitted names.
    doc_alias = {}  # exact name -> catalogue row name
    for prefix, (path, line) in sorted(families.items()):
        fam = DYNAMIC_COUNTER_FAMILIES.get(prefix)
        if fam is None:
            findings.append(Finding(
                "counters", rel(root, path), line,
                f"dynamic counter family '{prefix}<...>' is not declared "
                f"in DYNAMIC_COUNTER_FAMILIES (scripts/lalr_lint.py)"))
            continue
        row_name, names = fam
        for n in names:
            emitted.setdefault(n, (path, line))
            doc_alias[n] = row_name

    for s in sorted(structural & volatile):
        findings.append(Finding(
            "counters", rel(root, gate_path), 0,
            f"counter '{s}' is both STRUCTURAL and VOLATILE in "
            f"compare_stats.py"))

    classified = structural | volatile
    for name in sorted(emitted):
        if name not in classified:
            path, line = emitted[name]
            findings.append(Finding(
                "counters", rel(root, path), line,
                f"counter '{name}' is emitted but not classified in "
                f"compare_stats.py (add to STRUCTURAL_COUNTERS if exact "
                f"across runs, else VOLATILE_COUNTERS)"))
    for name in sorted(classified - set(emitted)):
        findings.append(Finding(
            "counters", rel(root, gate_path), 0,
            f"counter '{name}' is classified in compare_stats.py but "
            f"never emitted (stale gate entry)"))

    rows, doc_path = docs_counter_catalogue(root)
    if rows is None:
        findings.append(Finding(
            "counters", rel(root, doc_path), 0,
            "docs/API.md has no counter catalogue (| `name` | gate | ... | "
            "table rows)"))
        return findings
    documented_names = set(rows)
    for name in sorted(emitted):
        doc_name = doc_alias.get(name, name)
        if doc_name not in rows:
            path, line = emitted[name]
            findings.append(Finding(
                "counters", rel(root, path), line,
                f"counter '{name}' is emitted but missing from the "
                f"docs/API.md counter catalogue (row `{doc_name}`)"))
            continue
        gate, _ = rows[doc_name]
        actual = "structural" if name in structural else "volatile"
        if gate != actual:
            _, line = rows[doc_name]
            findings.append(Finding(
                "counters", rel(root, doc_path), line,
                f"catalogue row `{doc_name}` says {gate} but "
                f"compare_stats.py classifies '{name}' as {actual}"))
    emitted_doc_names = ({doc_alias.get(n, n) for n in emitted})
    for name in sorted(documented_names - emitted_doc_names):
        _, line = rows[name]
        findings.append(Finding(
            "counters", rel(root, doc_path), line,
            f"catalogue row `{name}` documents a counter that is never "
            f"emitted"))
    return findings


# --------------------------------------------------------------------------
# Audit: err-codes
# --------------------------------------------------------------------------

def wire_taxonomy(root):
    """{code: origin} for every code the taxonomy admits."""
    codes = {}
    wp = root / "src/net/WireProtocol.h"
    if not wp.is_file():
        fatal(f"missing {wp}")
    text = strip_comments(wp.read_text())
    kwire = {}
    for m in re.finditer(r"kWire(\w+)\s*=\s*\"([^\"]+)\"", text):
        kwire[m.group(1)] = m.group(2)
        codes[m.group(2)] = "WireProtocol.h"
    canc = root / "src/support/Cancellation.cpp"
    if canc.is_file():
        ctext = strip_comments(canc.read_text())
        m = re.search(r"buildStatusCodeName\s*\(", ctext)
        if m:
            end = ctext.find("\n}", m.end())
            body = ctext[m.end():end if end > 0 else len(ctext)]
            for code in re.findall(r"return\s+\"([a-z-]+)\"", body):
                if code != "ok":
                    codes[code] = "BuildStatus taxonomy"
    return codes, kwire


def emitted_err_codes(root, kwire):
    emitted = {}  # code -> (path, line)
    net = root / "src/net"
    if not net.is_dir():
        return emitted
    status_codes = None
    for path in sorted(net.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        text = strip_comments(path.read_text())
        for m in re.finditer(r"\bformatErrLine\(\s*\"([^\"]+)\"", text):
            emitted.setdefault(m.group(1), (path, line_of(text, m.start())))
        for m in re.finditer(r"\bformatErrLine\(\s*kWire(\w+)", text):
            code = kwire.get(m.group(1))
            if code:
                emitted.setdefault(code, (path, line_of(text, m.start())))
        # formatStatusLine / statusLine render a BuildStatus: the whole
        # non-ok BuildStatus taxonomy is emittable through them.
        m = re.search(r"\b(?:formatStatusLine|statusLine)\(", text)
        if m and status_codes is None:
            status_codes = (path, line_of(text, m.start()))
    if status_codes is not None:
        canc = root / "src/support/Cancellation.cpp"
        if canc.is_file():
            ctext = strip_comments(canc.read_text())
            fm = re.search(r"buildStatusCodeName\s*\(", ctext)
            if fm:
                end = ctext.find("\n}", fm.end())
                body = ctext[fm.end():end if end > 0 else len(ctext)]
                for code in re.findall(r"return\s+\"([a-z-]+)\"", body):
                    if code != "ok":
                        emitted.setdefault(code, status_codes)
    return emitted


def docs_err_codes(root):
    path = root / "docs/SERVICE.md"
    if not path.is_file():
        return None, path, 0
    text = path.read_text()
    m = re.search(r"^\s*code\s*:=(.*)$", text, re.MULTILINE)
    if not m:
        return None, path, 0
    lines = [m.group(1)]
    for ln in text[m.end():].split("\n")[1:]:
        if re.match(r"^\s*\|", ln):
            lines.append(ln)
        else:
            break
    tokens = []
    for ln in lines:
        ln = ln.split("#", 1)[0]
        tokens.extend(re.findall(r"[a-z][a-z-]*[a-z]", ln))
    return tokens, path, line_of(text, m.start())


def audit_err_codes(root):
    findings = []
    taxonomy, kwire = wire_taxonomy(root)
    emitted = emitted_err_codes(root, kwire)

    for code in sorted(emitted):
        if code not in taxonomy:
            path, line = emitted[code]
            findings.append(Finding(
                "err-codes", rel(root, path), line,
                f"err code '{code}' is emitted but not part of the "
                f"WireProtocol/BuildStatus taxonomy"))

    doc_codes, doc_path, doc_line = docs_err_codes(root)
    if doc_codes is None:
        findings.append(Finding(
            "err-codes", rel(root, doc_path), doc_line,
            "docs/SERVICE.md has no `code :=` wire grammar"))
        return findings
    doc_set = set(doc_codes)
    for code in sorted(set(taxonomy) - doc_set):
        findings.append(Finding(
            "err-codes", rel(root, doc_path), doc_line,
            f"taxonomy code '{code}' ({taxonomy[code]}) missing from the "
            f"docs/SERVICE.md wire grammar"))
    for code in sorted(doc_set - set(taxonomy)):
        findings.append(Finding(
            "err-codes", rel(root, doc_path), doc_line,
            f"docs/SERVICE.md wire grammar lists undocumented-in-code "
            f"err code '{code}'"))
    for code in sorted(set(emitted) - doc_set):
        path, line = emitted[code]
        findings.append(Finding(
            "err-codes", rel(root, path), line,
            f"err code '{code}' is emitted but missing from the "
            f"docs/SERVICE.md wire grammar"))
    return findings


# --------------------------------------------------------------------------
# Audit: guard-polls
# --------------------------------------------------------------------------

POLL_RE = re.compile(r"guardPoll|guardPollStrided|(?:->|\.)\s*poll\s*\(")
NO_POLL_RE = re.compile(r"lalr_lint:\s*no-poll")
LAMBDA_RE = re.compile(r"\bauto\s+(\w+)\s*=\s*\[")


def polling_lambdas(text, struct):
    """Names of local lambdas whose body contains a poll: a loop that
    calls one reaches a poll through it (DigraphSolver's pushNode)."""
    names = set()
    for m in LAMBDA_RE.finditer(struct):
        brace = struct.find("{", m.end())
        if brace < 0:
            continue
        depth, k, n = 0, brace, len(struct)
        while k < n:
            if struct[k] == "{":
                depth += 1
            elif struct[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        if POLL_RE.search(text[brace:k + 1]):
            names.add(m.group(1))
    return names


def find_loops(struct):
    """(start, body_end) spans of every for/while loop with a braced body
    in string-blanked text (comments must already be gone)."""
    loops = []
    for m in re.finditer(r"\b(for|while)\s*\(", struct):
        i = m.end() - 1
        depth = 0
        n = len(struct)
        # Matching close paren of the loop header.
        while i < n:
            if struct[i] == "(":
                depth += 1
            elif struct[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < n and struct[j] in " \t\n":
            j += 1
        if j >= n or struct[j] != "{":
            continue  # single-statement loop body: too small to matter
        depth = 0
        k = j
        while k < n:
            if struct[k] == "{":
                depth += 1
            elif struct[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        loops.append((m.start(), k))
    return loops


def audit_guard_polls(root):
    findings = []
    for relpath in HOT_FILES:
        path = root / relpath
        if not path.is_file():
            findings.append(Finding(
                "guard-polls", relpath, 0,
                "hot-path file listed in lalr_lint.py HOT_FILES does not "
                "exist (update the list)"))
            continue
        raw = path.read_text()
        text = strip_comments(raw)
        struct = blank_strings(text)
        loops = find_loops(struct)
        pollers = polling_lambdas(text, struct)
        poller_call = (re.compile(
            r"\b(?:" + "|".join(re.escape(p) for p in sorted(pollers)) +
            r")\s*\(") if pollers else None)
        # Only outermost loops are stage-level: a poll anywhere in the
        # nest (the idiom is guardPollStrided at the top of the outer
        # body) covers every inner loop once per outer iteration.
        outer = [(s, e) for s, e in loops
                 if not any(s2 < s and e <= e2 for s2, e2 in loops)]
        raw_lines = raw.split("\n")
        for start, end in outer:
            lines = struct.count("\n", start, end) + 1
            if lines < MIN_LOOP_LINES:
                continue
            body = text[start:end + 1]
            if POLL_RE.search(body):
                continue
            if poller_call is not None and poller_call.search(body):
                continue
            # Suppression inside the loop or on the 3 raw lines above it.
            loop_line = line_of(text, start)
            ctx = "\n".join(raw_lines[max(0, loop_line - 4):loop_line])
            if NO_POLL_RE.search(raw[start:end + 1]) or NO_POLL_RE.search(ctx):
                continue
            findings.append(Finding(
                "guard-polls", relpath, loop_line,
                f"{lines}-line loop in a DP/driver hot path never reaches "
                f"a BuildGuard poll (add guardPoll/guardPollStrided, or "
                f"suppress with `// lalr_lint: no-poll(<reason>)`)"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

AUDIT_FUNCS = {
    "lock-graph": audit_lock_graph,
    "failpoints": audit_failpoints,
    "counters": audit_counters,
    "err-codes": audit_err_codes,
    "guard-polls": audit_guard_polls,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                    help="repository root (default: this script's ../)")
    ap.add_argument("--audit", action="append", choices=AUDITS,
                    help="run only this audit (repeatable; default: all)")
    ap.add_argument("--list", action="store_true",
                    help="list the audits and exit")
    args = ap.parse_args()

    if args.list:
        for a in AUDITS:
            print(a)
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        fatal(f"{root} has no src/ directory")

    selected = args.audit or list(AUDITS)
    findings = []
    for name in selected:
        findings.extend(AUDIT_FUNCS[name](root))

    for f in findings:
        print(f)
    if findings:
        print(f"lalr_lint: {len(findings)} finding(s) across "
              f"{len(selected)} audit(s)", file=sys.stderr)
        return 1
    print(f"lalr_lint: OK ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
