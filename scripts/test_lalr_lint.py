#!/usr/bin/env python3
"""Self-test for scripts/lalr_lint.py.

Two halves:

  * The real tree must be CLEAN: every audit returns zero findings (and
    the CLI exits 0). This is the same invocation CI runs; the test here
    pins the contract that a green lint means a green static-analysis
    job.

  * Seeded defects must be CAUGHT: for each audit class the test copies
    the real tree into a temp fixture, injects exactly one violation of
    the kind that audit exists to catch (a rank contradiction, a cycle,
    an unregistered failpoint, an unclassified counter, an off-taxonomy
    err code, an unpolled hot loop), and asserts the audit reports it.
    A lint that cannot fail is not a gate.

Run directly (python3 scripts/test_lalr_lint.py) or via scripts/check.sh.
"""

import importlib.util
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "lalr_lint", ROOT / "scripts" / "lalr_lint.py")
lalr_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lalr_lint)


def fixture_tree(tmp):
    """Copy of everything the audits read: src/, docs/, bench/ and
    scripts/compare_stats.py, rooted in a temp directory."""
    root = Path(tmp) / "tree"
    for d in ("src", "docs", "bench"):
        shutil.copytree(ROOT / d, root / d)
    (root / "scripts").mkdir()
    shutil.copy2(ROOT / "scripts" / "compare_stats.py", root / "scripts")
    return root


def messages(findings):
    return [str(f) for f in findings]


class SeededFixtureTest(unittest.TestCase):
    """Base: each test gets a pristine copy of the tree to deface."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lalr_lint_test_")
        self.addCleanup(self._tmp.cleanup)
        self.root = fixture_tree(self._tmp.name)

    def seed(self, relpath, text):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def append(self, relpath, text):
        path = self.root / relpath
        path.write_text(path.read_text() + text)


class RealTreeTest(unittest.TestCase):
    def test_every_audit_is_clean_on_the_real_tree(self):
        for name, func in lalr_lint.AUDIT_FUNCS.items():
            found = func(ROOT)
            self.assertEqual(
                messages(found), [],
                f"audit '{name}' has findings on the real tree")

    def test_cli_exits_zero_on_the_real_tree(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "lalr_lint.py"),
             "--root", str(ROOT)],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_cli_lists_all_audits(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "lalr_lint.py"),
             "--list"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(proc.stdout.split(), list(lalr_lint.AUDITS))


class LockGraphTest(SeededFixtureTest):
    def test_rank_contradiction_is_reported(self):
        # CacheMap (30) held while acquiring NetConns (10): the edge
        # contradicts the declared ranks.
        self.seed("src/support/DemoInversion.cpp", """
#include "support/ThreadSafety.h"
namespace lalr {
struct DemoInversion {
  Mutex HighFirst{"demo.high", lockrank::CacheMap};
  Mutex ThenLow{"demo.low", lockrank::NetConns};
  void f() {
    MutexLock L1(HighFirst);
    MutexLock L2(ThenLow);
  }
};
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_lock_graph(self.root))
        self.assertTrue(
            any("contradicts declared ranks" in m and "demo.low" in m
                and "demo.high" in m for m in msgs),
            msgs)

    def test_cycle_is_reported_even_without_usable_ranks(self):
        # Unknown rank constants disable the rank comparison, so only the
        # DFS over the extracted acquisition graph can catch the A->B,
        # B->A deadlock shape.
        self.seed("src/support/DemoCycle.cpp", """
#include "support/ThreadSafety.h"
namespace lalr {
struct DemoCycle {
  Mutex First{"demo.first", lockrank::DemoNotARank};
  Mutex Second{"demo.second", lockrank::DemoNotARankEither};
  void f() {
    MutexLock L1(First);
    MutexLock L2(Second);
  }
  void g() {
    MutexLock L1(Second);
    MutexLock L2(First);
  }
};
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_lock_graph(self.root))
        self.assertTrue(any("lock-graph cycle" in m for m in msgs), msgs)
        self.assertTrue(
            any("unknown rank constant" in m for m in msgs), msgs)

    def test_unranked_member_is_reported(self):
        self.seed("src/support/DemoUnranked.cpp", """
#include "support/ThreadSafety.h"
namespace lalr {
struct DemoUnranked {
  Mutex Plain;
};
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_lock_graph(self.root))
        self.assertTrue(
            any("'Plain' is unranked" in m for m in msgs), msgs)

    def test_duplicate_lock_name_is_reported(self):
        self.seed("src/support/DemoDupName.cpp", """
#include "support/ThreadSafety.h"
namespace lalr {
struct DemoDupName {
  Mutex Clash{"net.conns", lockrank::CacheMap};
};
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_lock_graph(self.root))
        self.assertTrue(
            any("declared more than once" in m and "net.conns" in m
                for m in msgs),
            msgs)


class FailpointTest(SeededFixtureTest):
    def test_unregistered_site_is_reported(self):
        self.seed("src/support/DemoSite.cpp", """
#include "support/FailPoint.h"
namespace lalr {
bool demoTrip() {
  return FailPointRegistry::instance().failPoint("demo-unregistered-site");
}
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_failpoints(self.root))
        self.assertTrue(
            any("demo-unregistered-site" in m
                and "not a registered site" in m for m in msgs),
            msgs)

    def test_docs_site_drift_is_reported(self):
        service = self.root / "docs" / "SERVICE.md"
        text = service.read_text()
        self.assertIn("analysis", text)
        # Drop one registered site from the docs' fenced list only.
        service.write_text(text.replace("analysis", "", 1))
        msgs = messages(lalr_lint.audit_failpoints(self.root))
        self.assertTrue(
            any("missing from the docs/SERVICE.md site list" in m
                for m in msgs),
            msgs)


class CounterTest(SeededFixtureTest):
    def test_unclassified_counter_is_reported(self):
        self.seed("src/support/DemoCounter.cpp", """
#include "report/PipelineStats.h"
namespace lalr {
void demoEmit(PipelineStats &Stats) {
  Stats.setCounter("demo_mystery_counter", 1);
}
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_counters(self.root))
        self.assertTrue(
            any("demo_mystery_counter" in m for m in msgs), msgs)

    def test_gate_class_must_match_docs(self):
        # Flip one structural counter's docs row to volatile: the code
        # gate and the catalogue now disagree.
        api = self.root / "docs" / "API.md"
        text = api.read_text()
        row = "| `lock_order_violations` | structural |"
        self.assertIn(row, text)
        api.write_text(text.replace(
            row, "| `lock_order_violations` | volatile |"))
        msgs = messages(lalr_lint.audit_counters(self.root))
        self.assertTrue(
            any("lock_order_violations" in m for m in msgs), msgs)


class ErrCodeTest(SeededFixtureTest):
    def test_off_taxonomy_code_is_reported(self):
        self.seed("src/net/DemoErr.cpp", """
#include "net/WireProtocol.h"
namespace lalr {
std::string demoErr() { return formatErrLine("demo-bad-code", "x"); }
} // namespace lalr
""")
        msgs = messages(lalr_lint.audit_err_codes(self.root))
        self.assertTrue(
            any("demo-bad-code" in m and "taxonomy" in m for m in msgs),
            msgs)

    def test_docs_grammar_drift_is_reported(self):
        service = self.root / "docs" / "SERVICE.md"
        text = service.read_text()
        self.assertIn("draining", text)
        service.write_text(text.replace("draining", "drainxng"))
        msgs = messages(lalr_lint.audit_err_codes(self.root))
        self.assertTrue(
            any("draining" in m and "missing from" in m for m in msgs),
            msgs)


class GuardPollTest(SeededFixtureTest):
    UNPOLLED_LOOP = """
namespace {
int demoUnpolledSweep(int N) {
  int Acc = 0;
  for (int I = 0; I < N; ++I) {
    Acc += I;
    Acc ^= I << 1;
    Acc += I * 3;
    Acc ^= I << 2;
    Acc += I * 5;
    Acc ^= I << 3;
    Acc += I * 7;
    Acc ^= I << 4;
    Acc += I * 11;
    Acc ^= I << 5;
    Acc += I * 13;
  }
  return Acc;
}
} // namespace
"""

    def test_unpolled_hot_loop_is_reported(self):
        self.append("src/lalr/Relations.cpp", self.UNPOLLED_LOOP)
        msgs = messages(lalr_lint.audit_guard_polls(self.root))
        self.assertTrue(
            any("src/lalr/Relations.cpp" in m
                and "never reaches a BuildGuard poll" in m for m in msgs),
            msgs)

    def test_no_poll_suppression_is_honored(self):
        suppressed = self.UNPOLLED_LOOP.replace(
            "  for (int I = 0;",
            "  // lalr_lint: no-poll(demo fixture)\n  for (int I = 0;")
        self.append("src/lalr/Relations.cpp", suppressed)
        self.assertEqual(
            messages(lalr_lint.audit_guard_polls(self.root)), [])

    def test_polled_loop_is_clean(self):
        polled = self.UNPOLLED_LOOP.replace(
            "    Acc += I;",
            "    guardPollStrided(Guard, I);\n    Acc += I;")
        self.append("src/lalr/Relations.cpp", polled)
        self.assertEqual(
            messages(lalr_lint.audit_guard_polls(self.root)), [])

    def test_missing_hot_file_is_reported(self):
        (self.root / "src/glr/GlrParser.cpp").unlink()
        msgs = messages(lalr_lint.audit_guard_polls(self.root))
        self.assertTrue(
            any("src/glr/GlrParser.cpp" in m and "does not exist" in m
                for m in msgs),
            msgs)


if __name__ == "__main__":
    unittest.main(verbosity=2)
