#!/usr/bin/env bash
# Full verification pipeline: configure, build (warnings are errors in
# spirit — the tree is kept warning-clean), run the complete test suite,
# and regenerate every table/figure. This is what CI would run and what
# produced test_output.txt / bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

# The bench-stats comparison tool gates CI; validate it before trusting it.
python3 scripts/test_compare_stats.py

# Cross-layer conformance: validate the lint against seeded defects,
# then run it for real (lock-graph ranks, failpoint registry/docs,
# counter gate classes, err-code taxonomy, guard-poll coverage).
python3 scripts/test_lalr_lint.py
python3 scripts/lalr_lint.py

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# Second pass with the parallel DP core forced on: LALR_THREADS seeds
# every BuildContext's worker count, so the whole suite exercises the
# sharded relations/solver/la-union paths. Results are bit-identical to
# serial (tests/parallel_test.cpp), so the same expectations must hold.
LALR_THREADS=2 ctest --test-dir build --output-on-failure 2>&1 \
  | tee test_output_threads.txt

# Third pass with the lock-rank checker armed in abort mode: any
# acquisition that contradicts the rank table in support/LockRank.h
# kills the offending test outright, so a green run certifies every
# exercised interleaving acquires locks in strictly increasing rank
# order (docs/STATIC_ANALYSIS.md, "Lock ranking").
LALR_LOCK_CHECK=abort ctest --test-dir build --output-on-failure 2>&1 \
  | tee test_output_lockcheck.txt

# Each bench also writes its per-stage PipelineStats as JSON under
# build/bench-stats/ — the machine-readable record behind the tables.
mkdir -p build/bench-stats
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "============================================================"
      echo "===== $b"
      echo "============================================================"
      "$b" --json "build/bench-stats/$(basename "$b").json"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

# The network front end's saturation curve (--socket is a mode flag, so
# the default-args loop above doesn't reach it).
./build/bench/bench_service_throughput --socket \
  --json build/bench-stats/bench_service_throughput_socket.json \
  2>&1 | tee -a bench_output.txt
