#!/usr/bin/env bash
# Loopback smoke test for the serving daemon: start lalr_served on an
# ephemeral port, drive a request mix through the retrying client
# (lalr_netc), then SIGTERM the daemon and assert a graceful drain —
# exit 0 and the stats JSON flushed. Run by ctest (example_served_smoke)
# and explicitly by scripts/check-sanitize.sh under ASan.
#
# Env: SERVED_BIN / NETC_BIN point at the built binaries (default: look
# in ./build/examples relative to the repo root).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SERVED_BIN="${SERVED_BIN:-$ROOT/build/examples/lalr_served}"
NETC_BIN="${NETC_BIN:-$ROOT/build/examples/lalr_netc}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

STATS="$WORK/served_stats.json"
OUT="$WORK/served.out"

"$SERVED_BIN" --port 0 --max-inflight 4 --deadline-ms 30000 \
  --stats-json "$STATS" >"$OUT" 2>&1 &
SERVED_PID=$!

# Scrape the ephemeral port from the daemon's first stdout line.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$OUT" | head -n1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVED_PID" 2>/dev/null || { cat "$OUT"; echo "daemon died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { cat "$OUT"; echo "no listening line"; exit 1; }

"$NETC_BIN" --port "$PORT" \
  "ping" \
  "build json lalr1" \
  "build json lalr1 compress" \
  "parse expr lr NUM + NUM" \
  "edit json prec ',' left 1" \
  "build json lalr1" \
  "invalidate json" \
  "build json lalr1" \
  "stats"

# A second client proves cross-connection reuse of the warm cache.
"$NETC_BIN" --port "$PORT" "build json lalr1" "parse json lr NULL"

kill -TERM "$SERVED_PID"
DRAIN_RC=0
wait "$SERVED_PID" || DRAIN_RC=$?
if [ "$DRAIN_RC" -ne 0 ]; then
  cat "$OUT"
  echo "daemon exited $DRAIN_RC (expected graceful 0 on SIGTERM)"
  exit 1
fi

[ -s "$STATS" ] || { cat "$OUT"; echo "stats JSON was not flushed"; exit 1; }
grep -q '"requests"' "$STATS" || { cat "$STATS"; echo "stats JSON missing counters"; exit 1; }

echo "served smoke OK (port $PORT)"
