#!/usr/bin/env bash
# Sanitizer pass: Debug build (assertions ON — the default build is
# RelWithDebInfo where NDEBUG disables them) with ASan+UBSan, running the
# full test suite except the example smoke tests and the generated-parser
# compile test (which shells out to the system compiler).
#
# This configuration caught a real latent bug during development: the
# YACC baseline unioned terminal-universe FIRST sets into look-ahead sets
# carrying one extra dummy slot, which reads out of bounds exactly when
# the terminal count is a multiple of 64 (see
# YaccTest.WordBoundaryTerminalCountRegression).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure \
  -E 'example_|CodeGenTest.GeneratedParserCompiles'

# The network front end runs its loopback smoke explicitly (the ctest
# -E above excludes the example_* smoke tests): daemon + retrying client
# over real sockets, SIGTERM drain, stats flush — all under ASan+UBSan.
SERVED_BIN=build-asan/examples/lalr_served \
  NETC_BIN=build-asan/examples/lalr_netc \
  scripts/served_smoke.sh
