#!/usr/bin/env bash
# clang-tidy gate over the repo's .clang-tidy profile.
#
#   scripts/check-tidy.sh              # full run over src/ + examples/
#   scripts/check-tidy.sh --diff [REF] # only files changed vs REF
#                                      # (default: merge-base with main)
#
# Needs a compile_commands.json, which the normal configure exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists).
# Exits 0 with a notice when clang-tidy is not installed — local boxes
# without LLVM tooling stay usable; the CI static-analysis job is the
# enforcing run.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "check-tidy: $TIDY not found; skipping (CI enforces this gate)"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check-tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure first (cmake -B $BUILD_DIR)" >&2
  exit 2
fi

if [ "${1:-}" = "--diff" ]; then
  REF="${2:-$(git merge-base HEAD main 2>/dev/null || echo HEAD~1)}"
  mapfile -t FILES < <(git diff --name-only "$REF" -- \
                         'src/*.cpp' 'examples/*.cpp' 'tests/*.cpp' \
                         'bench/*.cpp' | while read -r f; do
                         [ -f "$f" ] && echo "$f"; done)
  if [ "${#FILES[@]}" -eq 0 ]; then
    echo "check-tidy: no changed sources vs $REF"
    exit 0
  fi
else
  mapfile -t FILES < <(git ls-files 'src/*.cpp' 'examples/*.cpp')
fi

echo "check-tidy: ${#FILES[@]} file(s) with $("$TIDY" --version | head -1)"
STATUS=0
for f in "${FILES[@]}"; do
  # Headers are covered transitively through HeaderFilterRegex.
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
