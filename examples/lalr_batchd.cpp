//===- examples/lalr_batchd.cpp - Batched grammar-build driver --------------===//
///
/// \file
/// The command-line front end of the grammar-build and parse services:
/// reads a batch of requests — from a manifest file (see docs/SERVICE.md
/// for the dialect, including the `parse` token) or from repeatable
/// --request flags — runs them through one BuildService (and, for parse
/// lines, a ParseService sharing its grammar cache), prints one line per
/// result, and ends with the aggregate ServiceStats / ParseStats
/// (optionally as JSON for the compare_stats.py tooling).
///
/// Usage:
///   lalr_batchd --manifest FILE            # '-' reads stdin
///   lalr_batchd --request NAME:KIND[:compress][:require-adequate]
///               [:solver=naive] ...        # repeatable
///   lalr_batchd [--workers N] [--cache-capacity N] [--repeat N]
///               [--stats-json PATH|-] [--quiet]
///   lalr_batchd --list                     # corpus grammar names
///
/// Grammar names resolve in the corpus registry; names ending in .y are
/// loaded from disk instead.
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "grammar/GrammarPrinter.h"
#include "parse/ParseService.h"
#include "service/BuildService.h"
#include "service/Manifest.h"
#include "support/FailPoint.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace lalr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lalr_batchd --manifest FILE|- [options]\n"
      "       lalr_batchd --request NAME:KIND[:compress][:require-adequate]"
      "[:solver=naive|digraph] ... [options]\n"
      "       lalr_batchd --list   # corpus grammars ([sentencegen] = "
      "random inputs derivable)\n"
      "manifest lines: build/edit/invalidate and\n"
      "  parse <grammar> <lr|glr|ll1|earley> [dense] [kind=K] [options] "
      "<input|@file>\n"
      "options:\n"
      "  --workers N         batch-level parallelism (default 0 = serial)\n"
      "  --cache-capacity N  LRU bound on cached grammar contexts "
      "(default 16)\n"
      "  --repeat N          run the whole request list N times "
      "(warm-cache knob)\n"
      "  --stats-json PATH   write aggregate ServiceStats JSON "
      "('-' = stdout)\n"
      "  --quiet             suppress per-request lines\n"
      "  --deadline-ms N     default per-request deadline (manifest "
      "deadline-ms= overrides)\n"
      "  --limit NAME=N      service-wide build/parse limit; NAME is one "
      "of lr0_states,\n"
      "                      lr1_states, items, relation_edges, set_bits, "
      "wall_ms,\n"
      "                      input_tokens, gss_nodes, earley_items\n"
      "                      (repeatable; per-request limits override)\n"
      "  --fail-fast         stop executing after the first failed "
      "request\n"
      "  --verify            run the artifact verifier on every build "
      "(manifest\n"
      "                      lines may also opt in individually with "
      "'verify')\n");
  return 2;
}

/// Parses one --limit value NAME=N into \p Limits.
bool parseLimitFlag(const std::string &Value, BuildLimits &Limits) {
  size_t Eq = Value.find('=');
  if (Eq == std::string::npos)
    return false;
  std::string Name = Value.substr(0, Eq);
  char *End = nullptr;
  double N = std::strtod(Value.c_str() + Eq + 1, &End);
  if (!End || *End != '\0' || N <= 0)
    return false;
  if (Name == "lr0_states")
    Limits.MaxLr0States = static_cast<uint64_t>(N);
  else if (Name == "lr1_states")
    Limits.MaxLr1States = static_cast<uint64_t>(N);
  else if (Name == "items")
    Limits.MaxItems = static_cast<uint64_t>(N);
  else if (Name == "relation_edges")
    Limits.MaxRelationEdges = static_cast<uint64_t>(N);
  else if (Name == "set_bits")
    Limits.MaxSetBits = static_cast<uint64_t>(N);
  else if (Name == "wall_ms")
    Limits.MaxWallMs = N;
  else if (Name == "input_tokens")
    Limits.MaxInputTokens = static_cast<uint64_t>(N);
  else if (Name == "gss_nodes")
    Limits.MaxGssNodes = static_cast<uint64_t>(N);
  else if (Name == "earley_items")
    Limits.MaxEarleyItems = static_cast<uint64_t>(N);
  else
    return false;
  return true;
}

bool readFile(const std::string &Path, std::string &Out, bool AllowStdin) {
  if (AllowStdin && Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Parses one --request value: NAME:KIND[:option...]. Reuses the manifest
/// option vocabulary by rewriting to a one-line manifest.
bool parseRequestFlag(const std::string &Value, std::vector<ManifestEntry> &Out,
                      std::string &Error) {
  std::string Line = "build";
  for (size_t I = 0, Start = 0; I <= Value.size(); ++I) {
    if (I == Value.size() || Value[I] == ':') {
      Line += ' ';
      Line += Value.substr(Start, I - Start);
      Start = I + 1;
    }
  }
  std::optional<std::vector<ManifestEntry>> Parsed = parseManifest(Line, Error);
  if (!Parsed)
    return false;
  for (ManifestEntry &E : *Parsed)
    Out.push_back(std::move(E));
  return true;
}

/// Loads `@file` parse inputs into inline sentences so the service never
/// does file IO (the manifest dialect keeps the whole input on the parse
/// line otherwise).
bool resolveParseInputs(std::vector<ManifestEntry> &Entries,
                        std::string &Error) {
  for (ManifestEntry &E : Entries) {
    if (E.Act != ManifestEntry::Action::Parse)
      continue;
    if (E.ParseInput.empty() || E.ParseInput[0] != '@')
      continue;
    std::string Path = E.ParseInput.substr(1);
    if (!readFile(Path, E.ParseInput, /*AllowStdin=*/false)) {
      Error = "cannot open parse input file '" + Path + "'";
      return false;
    }
  }
  return true;
}

/// Loads .y-path grammars into inline sources so the service never does
/// file IO. Corpus names pass through untouched. Edit entries resolve
/// the same way (their target may be a path grammar).
bool resolvePathGrammars(std::vector<ManifestEntry> &Entries,
                         std::string &Error) {
  for (ManifestEntry &E : Entries) {
    if (!isGrammarPath(E.Request.GrammarName))
      continue;
    if (!readFile(E.Request.GrammarName, E.Request.Source,
                  /*AllowStdin=*/false)) {
      Error = "cannot open grammar file '" + E.Request.GrammarName + "'";
      return false;
    }
  }
  return true;
}

/// Per-grammar working sources for manifest `edit` entries. Each edit
/// target's base text is normalized up front via print(parse(text)):
/// print-then-parse assigns symbol ids by appearance order in the
/// printed layout and is idempotent from then on, so successive edits
/// keep a stable id space and the service's layered-hash classifier sees
/// exactly the edited layer instead of a spurious structural change.
bool normalizeEditTargets(std::vector<ManifestEntry> &Entries,
                          std::unordered_map<std::string, std::string> &Working,
                          std::string &Error) {
  for (ManifestEntry &E : Entries) {
    if (E.Act != ManifestEntry::Action::Edit)
      continue;
    auto [It, New] = Working.try_emplace(E.Request.GrammarName);
    if (!New)
      continue;
    std::string_view Base = E.Request.Source;
    if (Base.empty()) {
      const CorpusEntry *CE = corpusGrammarByName(E.Request.GrammarName);
      if (!CE) {
        Error = "edit target '" + E.Request.GrammarName +
                "' is not a corpus grammar or .y path";
        return false;
      }
      Base = CE->Source;
    }
    DiagnosticEngine Diags;
    std::optional<Grammar> G =
        parseGrammar(Base, Diags, E.Request.GrammarName);
    if (!G) {
      Error = "edit target '" + E.Request.GrammarName +
              "' failed to parse:\n" + Diags.render();
      return false;
    }
    It->second = printGrammarText(*G);
  }
  return true;
}

void printResponse(const ServiceRequest &Req, const ServiceResponse &R) {
  if (!R.Ok) {
    std::printf("FAIL %-18s %-14s [%s] %s\n", Req.GrammarName.c_str(),
                tableKindName(Req.Options.Kind),
                buildStatusCodeName(R.Status.Code), R.Error.c_str());
    return;
  }
  const ParseTable &T = R.Result->Table;
  std::printf("ok   %-18s %-14s %5zu states %3zu conflicts %9.1f us %s%s%s%s\n",
              Req.GrammarName.c_str(), tableKindName(Req.Options.Kind),
              T.numStates(), T.conflicts().size(), R.WallUs,
              R.CacheHit ? "hit " : "miss",
              R.Result->Compressed ? " compressed" : "",
              R.Result->Verify ? " verified" : "",
              R.Result->PolicySatisfied ? "" : " POLICY-VIOLATED");
}

void printParseResponse(const ParseRequest &Req, const ParseResponse &R) {
  std::string Driver = std::string("parse/") + parserKindName(Req.Driver);
  if (!R.Ok) {
    std::printf("FAIL %-18s %-14s [%s] %s\n", Req.GrammarName.c_str(),
                Driver.c_str(), buildStatusCodeName(R.Status.Code),
                R.Error.c_str());
    return;
  }
  char Extra[96] = "";
  if (R.ForestNodes)
    std::snprintf(Extra, sizeof(Extra), " %zu forest nodes", R.ForestNodes);
  std::printf("%-4s %-18s %-14s %5zu tokens %12.1f us %s%s%s\n",
              R.Accepted ? "acc" : "rej", Req.GrammarName.c_str(),
              Driver.c_str(), R.Tokens, R.ParseUs,
              R.TableHit ? "thit " : "tmiss",
              Req.Dense ? " dense" : "", Extra);
}

} // namespace

int main(int Argc, char **Argv) {
  BuildService::Options SvcOpts;
  std::string ManifestPath, StatsJsonPath;
  std::vector<ManifestEntry> Entries;
  unsigned Repeat = 1;
  bool Quiet = false;
  bool FailFast = false;
  double DeadlineMs = 0;
  std::string Error;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list") {
      // The [sentencegen] marker flags grammars whose start symbol is
      // productive — the ones random-input parse workloads can target.
      for (std::string_view Name : listCorpusGrammars()) {
        const CorpusEntry *E = corpusGrammarByName(Name);
        std::printf("%-22s %s%s\n", E->Name,
                    corpusGrammarSupportsSentenceGen(*E) ? "[sentencegen] "
                                                         : "",
                    E->Description);
      }
      return 0;
    } else if (Arg == "--list-failpoints") {
      for (const char *const *S = allFailPointSites(); *S; ++S)
        std::printf("%s\n", *S);
      return 0;
    } else if (Arg == "--manifest" && I + 1 < Argc) {
      ManifestPath = Argv[++I];
    } else if (Arg == "--request" && I + 1 < Argc) {
      if (!parseRequestFlag(Argv[++I], Entries, Error)) {
        std::fprintf(stderr, "--request %s: %s\n", Argv[I], Error.c_str());
        return 2;
      }
    } else if (Arg == "--workers" && I + 1 < Argc) {
      SvcOpts.Workers = parseBuildThreads(Argv[++I]);
    } else if (Arg == "--cache-capacity" && I + 1 < Argc) {
      SvcOpts.CacheCapacity =
          static_cast<size_t>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--repeat" && I + 1 < Argc) {
      Repeat = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
      if (Repeat == 0)
        Repeat = 1;
    } else if (Arg == "--stats-json" && I + 1 < Argc) {
      StatsJsonPath = Argv[++I];
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--fail-fast") {
      FailFast = true;
    } else if (Arg == "--verify") {
      SvcOpts.VerifyBuilds = true;
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      DeadlineMs = std::strtod(Argv[++I], nullptr);
      if (DeadlineMs <= 0) {
        std::fprintf(stderr, "--deadline-ms %s: expected a positive "
                             "millisecond count\n",
                     Argv[I]);
        return 2;
      }
    } else if (Arg == "--limit" && I + 1 < Argc) {
      if (!parseLimitFlag(Argv[++I], SvcOpts.DefaultLimits)) {
        std::fprintf(stderr,
                     "--limit %s: expected NAME=N with NAME one of "
                     "lr0_states, lr1_states, items, relation_edges, "
                     "set_bits, wall_ms\n",
                     Argv[I]);
        return 2;
      }
    } else {
      return usage();
    }
  }
  SvcOpts.DefaultDeadlineMs = DeadlineMs;

  if (!ManifestPath.empty()) {
    std::string Text;
    if (!readFile(ManifestPath, Text, /*AllowStdin=*/true)) {
      std::fprintf(stderr, "cannot open manifest '%s'\n", ManifestPath.c_str());
      return 2;
    }
    std::optional<std::vector<ManifestEntry>> Parsed =
        parseManifest(Text, Error);
    if (!Parsed) {
      std::fprintf(stderr, "%s: %s\n", ManifestPath.c_str(), Error.c_str());
      return 2;
    }
    for (ManifestEntry &E : *Parsed)
      Entries.push_back(std::move(E));
  }
  if (Entries.empty())
    return usage();
  if (!resolvePathGrammars(Entries, Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (!resolveParseInputs(Entries, Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  // Working copies of every edit target's source (normalized; see
  // normalizeEditTargets). Build requests for these grammars carry the
  // current working text as inline source.
  std::unordered_map<std::string, std::string> Working;
  if (!normalizeEditTargets(Entries, Working, Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  BuildService Svc(SvcOpts);
  // Parse lines run through a ParseService sharing Svc's grammar cache;
  // the service-wide limits and default deadline govern parses too.
  ParseService::Options ParseOpts;
  ParseOpts.DefaultLimits = SvcOpts.DefaultLimits;
  ParseOpts.DefaultDeadlineMs = DeadlineMs;
  ParseService Parser(Svc, ParseOpts);
  bool AnyFailed = false;

  // Replay the entry list --repeat times. Build entries accumulate into
  // batch segments; an invalidate entry flushes the pending segment, then
  // drops that grammar's artifacts (so order is preserved). With
  // --fail-fast, the first failed response stops the run: pending entries
  // after the failing segment are never executed.
  std::vector<ServiceRequest> Pending;
  bool Stopped = false;
  auto Flush = [&] {
    if (Pending.empty() || Stopped)
      return;
    std::vector<ServiceResponse> Responses = Svc.runBatch(Pending);
    for (size_t I = 0; I < Responses.size(); ++I) {
      AnyFailed |= !Responses[I].Ok;
      if (!Quiet)
        printResponse(Pending[I], Responses[I]);
    }
    Pending.clear();
    if (FailFast && AnyFailed) {
      Stopped = true;
      std::fprintf(stderr, "stopping: --fail-fast and a request failed\n");
    }
  };

  for (unsigned Round = 0; Round < Repeat && !Stopped; ++Round) {
    for (const ManifestEntry &E : Entries) {
      if (Stopped)
        break;
      if (E.Act == ManifestEntry::Action::Invalidate) {
        Flush();
        if (Stopped)
          break;
        if (!Quiet)
          std::printf("inv  %-18s %s\n", E.Request.GrammarName.c_str(),
                      Svc.invalidateGrammar(E.Request.GrammarName)
                          ? "artifacts dropped"
                          : "(not cached)");
        continue;
      }
      if (E.Act == ManifestEntry::Action::Edit) {
        // Mutates only the driver's working copy; pending requests
        // already hold their own source snapshots, so no flush is
        // needed — the cache absorbs the change when the first
        // post-edit request arrives.
        std::string &Src = Working[E.Request.GrammarName];
        DiagnosticEngine Diags;
        std::optional<Grammar> G =
            parseGrammar(Src, Diags, E.Request.GrammarName);
        std::optional<Grammar> Edited =
            G ? applyGrammarEdit(*G, E.Edit, Diags) : std::nullopt;
        if (!Edited) {
          AnyFailed = true;
          std::fprintf(stderr, "edit %s (line %u) failed:\n%s\n",
                       E.Request.GrammarName.c_str(), E.Line,
                       Diags.render().c_str());
          if (FailFast) {
            Stopped = true;
            std::fprintf(stderr,
                         "stopping: --fail-fast and an edit failed\n");
          }
          continue;
        }
        GrammarEditClass Class =
            computeGrammarDelta(*G, *Edited).Class;
        Src = printGrammarText(*Edited);
        if (!Quiet)
          std::printf("edit %-18s applied (%s)\n",
                      E.Request.GrammarName.c_str(),
                      grammarEditClassName(Class));
        continue;
      }
      if (E.Act == ManifestEntry::Action::Parse) {
        // Parses run in manifest order relative to builds: flush the
        // pending build segment first.
        Flush();
        if (Stopped)
          break;
        ParseRequest PReq;
        PReq.GrammarName = E.Request.GrammarName;
        PReq.Source = E.Request.Source;
        PReq.Options = E.Request.Options;
        PReq.DeadlineMs = E.Request.DeadlineMs;
        PReq.Driver = E.Driver;
        PReq.Dense = E.ParseDense;
        PReq.Input = E.ParseInput;
        // Edit targets parse against the current working text.
        auto It = Working.find(E.Request.GrammarName);
        if (It != Working.end())
          PReq.Source = It->second;
        for (unsigned R = 0; R < E.Repeat && !Stopped; ++R) {
          ParseResponse PR = Parser.run(PReq);
          AnyFailed |= !PR.Ok;
          if (!Quiet)
            printParseResponse(PReq, PR);
          if (FailFast && !PR.Ok) {
            Stopped = true;
            std::fprintf(stderr,
                         "stopping: --fail-fast and a parse failed\n");
          }
        }
        continue;
      }
      for (unsigned R = 0; R < E.Repeat; ++R) {
        Pending.push_back(E.Request);
        // Edit targets build from the current working text.
        auto It = Working.find(E.Request.GrammarName);
        if (It != Working.end())
          Pending.back().Source = It->second;
      }
    }
  }
  Flush();

  ServiceStats S = Svc.stats();
  ParseStats PS = Parser.stats();
  std::printf("%s", reportServiceStats(S).c_str());
  if (PS.Requests)
    std::printf("%s", reportParseStats(PS).c_str());

  if (!StatsJsonPath.empty()) {
    // Build-only runs keep the historical bare-ServiceStats schema;
    // once parse traffic ran, the two stat blocks nest under one object.
    std::string Json;
    if (PS.Requests) {
      Json = "{\"service\": ";
      Json += S.toJson(/*Pretty=*/true);
      Json += ",\n\"parse\": ";
      Json += PS.toJson(/*Pretty=*/true);
      Json += "}";
    } else {
      Json = S.toJson(/*Pretty=*/true);
    }
    Json += '\n';
    if (StatsJsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
    } else {
      std::ofstream Out(StatsJsonPath);
      if (!Out) {
        std::fprintf(stderr, "cannot write '%s'\n", StatsJsonPath.c_str());
        return 2;
      }
      Out << Json;
    }
  }
  return AnyFailed ? 1 : 0;
}
