//===- examples/lalr_netc.cpp - Daemon client CLI ---------------------------===//
///
/// \file
/// Command-line client for lalr_served: sends manifest-dialect request
/// lines (positional arguments, or a file of lines via --manifest) and
/// prints one response line each. Retries transport failures and
/// shed/draining responses with capped exponential backoff + jitter
/// (net/NetClient.h); exits 0 iff every request was answered `ok`.
///
/// Usage:
///   lalr_netc --port N [--retries N] [--timeout-ms N] [--seed N]
///             "build json lalr1" "parse json lr NULL" ...
///   lalr_netc --port N --manifest FILE|-
///
//===----------------------------------------------------------------------===//

#include "net/NetClient.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace lalr;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lalr_netc --port N [options] LINE...\n"
               "       lalr_netc --port N [options] --manifest FILE|-\n"
               "  --retries N     attempts per request beyond the first "
               "(default 3)\n"
               "  --timeout-ms N  per-request response timeout (default "
               "30000)\n"
               "  --seed N        jitter seed (deterministic backoff)\n"
               "  --quiet         suppress response lines\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  NetClient::Options Opts;
  std::vector<std::string> Lines;
  std::string ManifestPath;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--port" && I + 1 < Argc) {
      Opts.Port = static_cast<uint16_t>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--retries" && I + 1 < Argc) {
      Opts.MaxAttempts =
          1 + static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--timeout-ms" && I + 1 < Argc) {
      Opts.IoTimeoutMs = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Opts.JitterSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--manifest" && I + 1 < Argc) {
      ManifestPath = Argv[++I];
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Lines.push_back(Arg);
    }
  }
  if (Opts.Port == 0)
    return usage();

  if (!ManifestPath.empty()) {
    std::string Text;
    if (ManifestPath == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Text = SS.str();
    } else {
      std::ifstream In(ManifestPath);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", ManifestPath.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Text = SS.str();
    }
    std::istringstream LinesIn(Text);
    std::string Line;
    while (std::getline(LinesIn, Line)) {
      // Comments and blanks are manifest-file affordances; the wire
      // wants only real requests.
      size_t Start = Line.find_first_not_of(" \t");
      if (Start == std::string::npos || Line[Start] == '#')
        continue;
      Lines.push_back(Line);
    }
  }
  if (Lines.empty())
    return usage();

  NetClient Client(Opts);
  bool AnyFailed = false;
  for (const std::string &Line : Lines) {
    WireResponse R;
    std::string Error;
    if (!Client.request(Line, R, Error)) {
      AnyFailed = true;
      std::fprintf(stderr, "FAIL %s: %s\n", Line.c_str(), Error.c_str());
      continue;
    }
    AnyFailed |= !R.Ok;
    if (Quiet)
      continue;
    if (R.Ok)
      std::printf("ok   %s\n", R.Body.c_str());
    else
      std::printf("err  [%s] %s\n", R.Code.c_str(), R.Message.c_str());
  }
  if (Client.retries())
    std::fprintf(stderr, "(%llu retries)\n",
                 static_cast<unsigned long long>(Client.retries()));
  return AnyFailed ? 1 : 0;
}
