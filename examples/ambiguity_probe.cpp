//===- examples/ambiguity_probe.cpp - Sample-based ambiguity detection --------===//
///
/// \file
/// Ambiguity is undecidable in general; this tool does what a practical
/// grammar workbench does instead: derive many random sentences and
/// count each one's parse trees, reporting concrete ambiguous examples
/// with their degree. Conflict-free LALR(1) tables guarantee degree 1
/// (the test suite proves that link); this probe is for the grammars
/// that are *not* conflict-free, answering "is this conflict a real
/// ambiguity, and what does it look like?".
///
/// Usage: ambiguity_probe (--corpus NAME | FILE.y) [--count N]
///        [--max-len L] [--seed S]
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/Analysis.h"
#include "grammar/DerivationCount.h"
#include "grammar/GrammarParser.h"
#include "grammar/SentenceGen.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

using namespace lalr;

static int usage() {
  std::fprintf(stderr, "usage: ambiguity_probe (--corpus NAME | FILE.y) "
                       "[--count N] [--max-len L] [--seed S]\n");
  return 2;
}

int main(int Argc, char **Argv) {
  std::string CorpusName, File;
  unsigned Count = 200, MaxLen = 20;
  uint64_t Seed = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--corpus" && I + 1 < Argc)
      CorpusName = Argv[++I];
    else if (Arg == "--count" && I + 1 < Argc)
      Count = std::atoi(Argv[++I]);
    else if (Arg == "--max-len" && I + 1 < Argc)
      MaxLen = std::atoi(Argv[++I]);
    else if (Arg == "--seed" && I + 1 < Argc)
      Seed = std::atoll(Argv[++I]);
    else if (!Arg.empty() && Arg[0] != '-')
      File = Arg;
    else
      return usage();
  }

  std::optional<Grammar> G;
  if (!CorpusName.empty()) {
    if (!findCorpusEntry(CorpusName)) {
      std::fprintf(stderr, "unknown corpus grammar '%s'\n",
                   CorpusName.c_str());
      return 2;
    }
    G = loadCorpusGrammar(CorpusName);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    G = parseGrammar(SS.str(), Diags, File);
    if (!G) {
      std::cerr << Diags.render();
      return 1;
    }
  } else {
    return usage();
  }

  if (hasCycle(*G)) {
    std::printf("grammar '%s' has a derivation cycle (A =>+ A): every "
                "cycle-reachable sentence has infinitely many trees.\n",
                G->grammarName().c_str());
    return 0;
  }

  Rng R(Seed);
  std::map<uint64_t, size_t> DegreeHistogram;
  std::vector<std::pair<uint64_t, std::string>> Worst;
  for (unsigned I = 0; I < Count; ++I) {
    std::vector<SymbolId> S = randomSentence(*G, R, MaxLen);
    auto DC = countParseTrees(*G, S);
    if (!DC)
      continue;
    ++DegreeHistogram[DC->Count];
    if (DC->Count > 1)
      Worst.emplace_back(DC->Count, renderSentence(*G, S));
  }

  std::printf("ambiguity probe of '%s' (%u sentences, max-len %u):\n",
              G->grammarName().c_str(), Count, MaxLen);
  for (auto [Degree, N] : DegreeHistogram) {
    if (Degree == DerivationCount::Saturated)
      std::printf("  degree 2^64+  : %zu sentences\n", N);
    else
      std::printf("  degree %-6llu: %zu sentences\n",
                  static_cast<unsigned long long>(Degree), N);
  }
  if (Worst.empty()) {
    std::printf("no ambiguous sentence found in the sample (the grammar "
                "may still be ambiguous elsewhere).\n");
    return 0;
  }
  std::sort(Worst.begin(), Worst.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  std::printf("most ambiguous samples:\n");
  for (size_t I = 0; I < Worst.size() && I < 5; ++I)
    std::printf("  [%llu trees] %s\n",
                static_cast<unsigned long long>(Worst[I].first),
                Worst[I].second.c_str());
  return 0;
}
