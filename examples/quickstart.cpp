//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
///
/// \file
/// The README's quickstart: define a grammar programmatically, run the
/// DeRemer-Pennello pipeline, inspect the look-ahead sets, build the
/// LALR(1) table, and parse a sentence into a tree.
///
//===----------------------------------------------------------------------===//

#include "grammar/Analysis.h"
#include "grammar/GrammarBuilder.h"
#include "lalr/LalrLookaheads.h"
#include "lalr/LalrTableBuilder.h"
#include "lr/Lr0Automaton.h"
#include "parser/ParserDriver.h"
#include "report/AutomatonReport.h"

#include <cstdio>
#include <iostream>

using namespace lalr;

int main() {
  // 1. Define a grammar: the classic unambiguous expression grammar.
  GrammarBuilder B("quickstart");
  SymbolId Num = B.terminal("NUM");
  SymbolId Plus = B.terminal("'+'");
  SymbolId Star = B.terminal("'*'");
  SymbolId LPar = B.terminal("'('");
  SymbolId RPar = B.terminal("')'");
  SymbolId Expr = B.nonterminal("expr");
  SymbolId Term = B.nonterminal("term");
  SymbolId Factor = B.nonterminal("factor");
  B.production(Expr, {Expr, Plus, Term});
  B.production(Expr, {Term});
  B.production(Term, {Term, Star, Factor});
  B.production(Term, {Factor});
  B.production(Factor, {LPar, Expr, RPar});
  B.production(Factor, {Num});
  B.startSymbol(Expr);

  DiagnosticEngine Diags;
  std::optional<Grammar> G = std::move(B).build(Diags);
  if (!G) {
    std::cerr << Diags.render();
    return 1;
  }

  // 2. Build the LR(0) automaton and run the DeRemer-Pennello pipeline.
  GrammarAnalysis An(*G);
  Lr0Automaton A = Lr0Automaton::build(*G);
  LalrLookaheads LA = LalrLookaheads::compute(A, An);

  std::printf("grammar '%s': %zu terminals, %zu nonterminals, %zu "
              "productions\n",
              G->grammarName().c_str(), G->numTerminals(),
              G->numNonterminals(), G->numProductions());
  std::printf("LR(0) automaton: %zu states, %zu nonterminal transitions\n",
              A.numStates(), LA.ntTransitions().size());
  std::printf("relations: %zu reads edges, %zu includes edges, %zu "
              "lookback edges\n",
              LA.relations().readsEdgeCount(),
              LA.relations().includesEdgeCount(),
              LA.relations().lookbackEdgeCount());

  // 3. Look at one look-ahead set: where can "factor -> NUM" be reduced?
  for (StateId S = 0; S < A.numStates(); ++S)
    for (ProductionId P : A.state(S).Reductions)
      if (G->production(P).Lhs == G->findSymbol("factor") &&
          G->production(P).Rhs == std::vector<SymbolId>{Num})
        std::printf("LA(state %u, factor -> NUM) = %s\n", S,
                    renderTerminalSet(*G, LA.la(S, P)).c_str());

  // 4. Build the LALR(1) table; this grammar is conflict-free.
  ParseTable Table = buildLalrTable(A, LA);
  std::printf("table: %zu states, %zu conflicts\n", Table.numStates(),
              Table.conflicts().size());

  // 5. Parse a sentence into a concrete tree.
  std::string Error;
  auto Tokens = tokenizeSymbols(*G, "NUM + NUM * ( NUM + NUM )", &Error);
  if (!Tokens) {
    std::cerr << Error << "\n";
    return 1;
  }
  auto Outcome = parseToTree(*G, Table, *Tokens);
  if (!Outcome.clean()) {
    for (const ParseError &E : Outcome.Errors)
      std::cerr << E.Message << "\n";
    return 1;
  }
  std::printf("parse tree: %s\n", (*Outcome.Value)->toSExpr(*G).c_str());
  std::printf("derivation length: %zu reductions\n",
              Outcome.Reductions.size());
  return 0;
}
