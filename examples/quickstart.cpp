//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
///
/// \file
/// The README's quickstart: define a grammar programmatically, run the
/// grammar -> table pipeline in one call, inspect the DeRemer-Pennello
/// look-ahead sets, parse a sentence into a tree, and dump the per-stage
/// timing the pipeline recorded along the way.
///
//===----------------------------------------------------------------------===//

#include "grammar/GrammarBuilder.h"
#include "pipeline/BuildPipeline.h"
#include "report/AutomatonReport.h"

#include <cstdio>
#include <iostream>

using namespace lalr;

int main() {
  // 1. Define a grammar: the classic unambiguous expression grammar.
  GrammarBuilder B("quickstart");
  SymbolId Num = B.terminal("NUM");
  SymbolId Plus = B.terminal("'+'");
  SymbolId Star = B.terminal("'*'");
  SymbolId LPar = B.terminal("'('");
  SymbolId RPar = B.terminal("')'");
  SymbolId Expr = B.nonterminal("expr");
  SymbolId Term = B.nonterminal("term");
  SymbolId Factor = B.nonterminal("factor");
  B.production(Expr, {Expr, Plus, Term});
  B.production(Expr, {Term});
  B.production(Term, {Term, Star, Factor});
  B.production(Term, {Factor});
  B.production(Factor, {LPar, Expr, RPar});
  B.production(Factor, {Num});
  B.startSymbol(Expr);

  DiagnosticEngine Diags;
  std::optional<Grammar> Built = std::move(B).build(Diags);
  if (!Built) {
    std::cerr << Diags.render();
    return 1;
  }

  // 2. Run the pipeline: grammar -> LR(0) automaton -> DeRemer-Pennello
  //    look-aheads -> LALR(1) table, all behind one call. The context
  //    memoizes every intermediate artifact for later inspection.
  BuildContext Ctx(std::move(*Built));
  BuildResult R = BuildPipeline(Ctx).run();
  const Grammar &G = Ctx.grammar();
  const LalrLookaheads &LA = Ctx.lookaheads();
  const Lr0Automaton &A = Ctx.lr0();

  std::printf("grammar '%s': %zu terminals, %zu nonterminals, %zu "
              "productions\n",
              G.grammarName().c_str(), G.numTerminals(),
              G.numNonterminals(), G.numProductions());
  std::printf("LR(0) automaton: %zu states, %zu nonterminal transitions\n",
              A.numStates(), LA.ntTransitions().size());
  std::printf("relations: %zu reads edges, %zu includes edges, %zu "
              "lookback edges\n",
              LA.relations().readsEdgeCount(),
              LA.relations().includesEdgeCount(),
              LA.relations().lookbackEdgeCount());

  // 3. Look at one look-ahead set: where can "factor -> NUM" be reduced?
  for (StateId S = 0; S < A.numStates(); ++S)
    for (ProductionId P : A.state(S).Reductions)
      if (G.production(P).Lhs == G.findSymbol("factor") &&
          G.production(P).Rhs == std::vector<SymbolId>{Num})
        std::printf("LA(state %u, factor -> NUM) = %s\n", S,
                    renderTerminalSet(G, LA.la(S, P)).c_str());

  // 4. The finished LALR(1) table; this grammar is conflict-free.
  std::printf("table: %zu states, %zu conflicts\n", R.Table.numStates(),
              R.Table.conflicts().size());

  // 5. Parse a sentence into a concrete tree.
  std::string Error;
  auto Tokens = tokenizeSymbols(G, "NUM + NUM * ( NUM + NUM )", &Error);
  if (!Tokens) {
    std::cerr << Error << "\n";
    return 1;
  }
  auto Outcome = parseToTree(R, *Tokens);
  if (!Outcome.clean()) {
    for (const ParseError &E : Outcome.Errors)
      std::cerr << E.Message << "\n";
    return 1;
  }
  std::printf("parse tree: %s\n", (*Outcome.Value)->toSExpr(G).c_str());
  std::printf("derivation length: %zu reductions\n",
              Outcome.Reductions.size());

  // 6. Where did the time go? Every stage the pipeline ran was recorded.
  std::printf("\n%s", reportPipelineStats(R.Stats).c_str());
  return 0;
}
