//===- examples/classify_demo.cpp - The LR hierarchy, demonstrated ----------===//
///
/// \file
/// Runs the classifier over the corpus specimens and prints how each
/// grammar separates the classes LR(0) ⊂ SLR(1) ⊂ NQLALR ⊂ LALR(1) ⊂
/// LR(1) — including the paper's star witnesses: the grammar that is
/// LALR(1) but breaks the "not-quite LALR" shortcut, and the grammar whose
/// `reads` cycle certifies it is LR(k) for no k.
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "lalr/Classify.h"

#include <cstdio>

using namespace lalr;

int main() {
  std::printf("%-22s %-10s %5s %5s %7s %5s %5s %5s  notes\n", "grammar",
              "class", "LR0", "SLR", "NQLALR", "LALR", "LR1", "LL1");
  for (const CorpusEntry &E : corpusEntries()) {
    Grammar G = loadCorpusGrammar(E.Name);
    Classification C = classifyGrammar(G);
    std::printf("%-22s %-10s %5zu %5zu %7zu %5zu %5zu %5s  %s%s\n",
                E.Name, lrClassName(C.strongestClass()), C.Lr0Conflicts,
                C.SlrConflicts, C.NqlalrConflicts, C.LalrConflicts,
                C.Lr1Conflicts, C.IsLl1 ? "yes" : "no", E.Description,
                C.NotLrK ? " [reads cycle: not LR(k)]" : "");
  }
  std::printf("\n(columns are conflict counts under each method; 0 in a "
              "column means the grammar is in that class)\n");
  return 0;
}
