//===- examples/grammar_report.cpp - CLI grammar analyzer -------------------===//
///
/// \file
/// A yacc -v style command-line tool: reads a grammar file in the .y
/// dialect (or a named corpus grammar with --corpus NAME) and prints the
/// production listing, FIRST/FOLLOW sets, the automaton with DP look-ahead
/// sets, the DP relations, the conflict report, and the grammar's place in
/// the LR hierarchy.
///
/// Usage:
///   grammar_report FILE.y [--states] [--relations] [--sets]
///   grammar_report --corpus NAME [...]
///   grammar_report --list
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "grammar/GrammarPrinter.h"
#include "grammar/Lint.h"
#include "grammar/SentenceGen.h"
#include "lalr/Classify.h"
#include "ll/Ll1Table.h"
#include "pipeline/BuildPipeline.h"
#include "report/AutomatonReport.h"
#include "report/DotExport.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lalr;

static int usage() {
  std::fprintf(stderr,
               "usage: grammar_report FILE.y [--states] [--relations] "
               "[--sets] [--ll] [--dot] [--stats]\n"
               "       grammar_report --corpus NAME [flags]\n"
               "       grammar_report --list\n");
  return 2;
}

int main(int Argc, char **Argv) {
  bool ShowStates = false, ShowRelations = false, ShowSets = false;
  bool ShowLl = false, DotOnly = false, ShowStats = false;
  std::string File, CorpusName;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--states")
      ShowStates = true;
    else if (Arg == "--relations")
      ShowRelations = true;
    else if (Arg == "--sets")
      ShowSets = true;
    else if (Arg == "--ll")
      ShowLl = true;
    else if (Arg == "--stats")
      ShowStats = true;
    else if (Arg == "--dot")
      DotOnly = true;
    else if (Arg == "--list") {
      for (const CorpusEntry &E : corpusEntries())
        std::printf("%-22s %s\n", E.Name, E.Description);
      return 0;
    } else if (Arg == "--corpus" && I + 1 < Argc)
      CorpusName = Argv[++I];
    else if (!Arg.empty() && Arg[0] != '-')
      File = Arg;
    else
      return usage();
  }

  std::optional<Grammar> G;
  if (!CorpusName.empty()) {
    if (!findCorpusEntry(CorpusName)) {
      std::fprintf(stderr, "unknown corpus grammar '%s' (try --list)\n",
                   CorpusName.c_str());
      return 2;
    }
    G = loadCorpusGrammar(CorpusName);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    G = parseGrammar(SS.str(), Diags, File);
    if (!G) {
      std::cerr << Diags.render();
      return 1;
    }
  } else {
    return usage();
  }

  BuildContext Ctx(std::move(*G));
  BuildResult R = BuildPipeline(Ctx).run();
  const Grammar &Gr = Ctx.grammar();
  const GrammarAnalysis &An = Ctx.analysis();
  const Lr0Automaton &A = Ctx.lr0();
  const LalrLookaheads &LA = Ctx.lookaheads();
  const ParseTable &Table = R.Table;

  if (DotOnly) {
    std::fputs(exportDot(A, &LA).c_str(), stdout);
    return 0;
  }

  std::printf("Grammar %s: %zu terminals, %zu nonterminals, %zu "
              "productions, |G| = %zu\n\n",
              Gr.grammarName().c_str(), Gr.numTerminals(),
              Gr.numNonterminals(), Gr.numProductions(), Gr.grammarSize());
  std::printf("%s\n", printProductionListing(Gr).c_str());

  for (const LintFinding &F : lintGrammar(Gr))
    std::printf("warning: %s\n", F.toString(Gr).c_str());

  if (ShowSets) {
    std::printf("FIRST / FOLLOW / nullable:\n");
    for (uint32_t NtIdx = 0; NtIdx < Gr.numNonterminals(); ++NtIdx) {
      SymbolId Nt = Gr.ntSymbol(NtIdx);
      std::printf("  %-16s first=%s follow=%s%s\n", Gr.name(Nt).c_str(),
                  renderTerminalSet(Gr, An.first(Nt)).c_str(),
                  renderTerminalSet(Gr, An.follow(Nt)).c_str(),
                  An.isNullable(Nt) ? " nullable" : "");
    }
    std::printf("\n");
  }

  std::printf("LR(0) automaton: %zu states, %zu transitions\n",
              A.numStates(), A.numTransitions());

  if (ShowStates)
    std::printf("\n%s", reportStates(A, &LA).c_str());
  if (ShowRelations)
    std::printf("\n%s", reportRelations(A, LA).c_str());

  std::printf("\nconflicts:\n%s", reportConflicts(Gr, Table).c_str());
  if (Gr.expectedShiftReduce() >= 0) {
    size_t Actual = Table.unresolvedShiftReduce();
    if (Actual == static_cast<size_t>(Gr.expectedShiftReduce()))
      std::printf("%%expect %d satisfied\n", Gr.expectedShiftReduce());
    else
      std::printf("warning: %%expect %d but %zu unresolved shift/reduce "
                  "conflicts\n",
                  Gr.expectedShiftReduce(), Actual);
  }
  // Explain each conflict with a concrete viable prefix.
  for (const Conflict &C : Table.conflicts()) {
    StateExample Ex = exampleForState(A, C.State);
    std::printf("  state %u is reached after: %s\n", C.State,
                renderSentence(Gr, Ex.TerminalPrefix).c_str());
  }

  if (ShowLl) {
    Ll1Table Ll = Ll1Table::build(Gr, An);
    std::printf("\nLL(1): %s\n", Ll.isLl1() ? "yes" : "no");
    for (const LlConflict &C : Ll.conflicts())
      std::printf("  %s\n", C.toString(Gr).c_str());
  }

  Classification C = classifyGrammar(Gr);
  std::printf("\n%s\n", C.toString().c_str());

  if (ShowStats)
    std::printf("\n%s", reportPipelineStats(Ctx.stats()).c_str());
  return 0;
}
