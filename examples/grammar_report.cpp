//===- examples/grammar_report.cpp - CLI grammar analyzer -------------------===//
///
/// \file
/// A yacc -v style command-line tool: reads a grammar file in the .y
/// dialect (or a named corpus grammar with --corpus NAME) and prints the
/// production listing, FIRST/FOLLOW sets, the automaton with DP look-ahead
/// sets, the DP relations, the conflict report, and the grammar's place in
/// the LR hierarchy.
///
/// Usage:
///   grammar_report FILE.y [--states] [--relations] [--sets]
///   grammar_report --corpus NAME [...]
///   grammar_report --list
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/Analysis.h"
#include "grammar/GrammarParser.h"
#include "grammar/GrammarPrinter.h"
#include "grammar/Lint.h"
#include "grammar/SentenceGen.h"
#include "lalr/Classify.h"
#include "lalr/LalrLookaheads.h"
#include "lalr/LalrTableBuilder.h"
#include "ll/Ll1Table.h"
#include "lr/Lr0Automaton.h"
#include "report/AutomatonReport.h"
#include "report/DotExport.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lalr;

static int usage() {
  std::fprintf(stderr,
               "usage: grammar_report FILE.y [--states] [--relations] "
               "[--sets] [--ll] [--dot]\n"
               "       grammar_report --corpus NAME [flags]\n"
               "       grammar_report --list\n");
  return 2;
}

int main(int Argc, char **Argv) {
  bool ShowStates = false, ShowRelations = false, ShowSets = false;
  bool ShowLl = false, DotOnly = false;
  std::string File, CorpusName;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--states")
      ShowStates = true;
    else if (Arg == "--relations")
      ShowRelations = true;
    else if (Arg == "--sets")
      ShowSets = true;
    else if (Arg == "--ll")
      ShowLl = true;
    else if (Arg == "--dot")
      DotOnly = true;
    else if (Arg == "--list") {
      for (const CorpusEntry &E : corpusEntries())
        std::printf("%-22s %s\n", E.Name, E.Description);
      return 0;
    } else if (Arg == "--corpus" && I + 1 < Argc)
      CorpusName = Argv[++I];
    else if (!Arg.empty() && Arg[0] != '-')
      File = Arg;
    else
      return usage();
  }

  std::optional<Grammar> G;
  if (!CorpusName.empty()) {
    if (!findCorpusEntry(CorpusName)) {
      std::fprintf(stderr, "unknown corpus grammar '%s' (try --list)\n",
                   CorpusName.c_str());
      return 2;
    }
    G = loadCorpusGrammar(CorpusName);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    G = parseGrammar(SS.str(), Diags, File);
    if (!G) {
      std::cerr << Diags.render();
      return 1;
    }
  } else {
    return usage();
  }

  GrammarAnalysis An(*G);
  Lr0Automaton A = Lr0Automaton::build(*G);
  LalrLookaheads LA = LalrLookaheads::compute(A, An);
  ParseTable Table = buildLalrTable(A, LA);

  if (DotOnly) {
    std::fputs(exportDot(A, &LA).c_str(), stdout);
    return 0;
  }

  std::printf("Grammar %s: %zu terminals, %zu nonterminals, %zu "
              "productions, |G| = %zu\n\n",
              G->grammarName().c_str(), G->numTerminals(),
              G->numNonterminals(), G->numProductions(), G->grammarSize());
  std::printf("%s\n", printProductionListing(*G).c_str());

  for (const LintFinding &F : lintGrammar(*G))
    std::printf("warning: %s\n", F.toString(*G).c_str());

  if (ShowSets) {
    std::printf("FIRST / FOLLOW / nullable:\n");
    for (uint32_t NtIdx = 0; NtIdx < G->numNonterminals(); ++NtIdx) {
      SymbolId Nt = G->ntSymbol(NtIdx);
      std::printf("  %-16s first=%s follow=%s%s\n", G->name(Nt).c_str(),
                  renderTerminalSet(*G, An.first(Nt)).c_str(),
                  renderTerminalSet(*G, An.follow(Nt)).c_str(),
                  An.isNullable(Nt) ? " nullable" : "");
    }
    std::printf("\n");
  }

  std::printf("LR(0) automaton: %zu states, %zu transitions\n",
              A.numStates(), A.numTransitions());

  if (ShowStates)
    std::printf("\n%s", reportStates(A, &LA).c_str());
  if (ShowRelations)
    std::printf("\n%s", reportRelations(A, LA).c_str());

  std::printf("\nconflicts:\n%s", reportConflicts(*G, Table).c_str());
  if (G->expectedShiftReduce() >= 0) {
    size_t Actual = Table.unresolvedShiftReduce();
    if (Actual == static_cast<size_t>(G->expectedShiftReduce()))
      std::printf("%%expect %d satisfied\n", G->expectedShiftReduce());
    else
      std::printf("warning: %%expect %d but %zu unresolved shift/reduce "
                  "conflicts\n",
                  G->expectedShiftReduce(), Actual);
  }
  // Explain each conflict with a concrete viable prefix.
  for (const Conflict &C : Table.conflicts()) {
    StateExample Ex = exampleForState(A, C.State);
    std::printf("  state %u is reached after: %s\n", C.State,
                renderSentence(*G, Ex.TerminalPrefix).c_str());
  }

  if (ShowLl) {
    Ll1Table Ll = Ll1Table::build(*G, An);
    std::printf("\nLL(1): %s\n", Ll.isLl1() ? "yes" : "no");
    for (const LlConflict &C : Ll.conflicts())
      std::printf("  %s\n", C.toString(*G).c_str());
  }

  Classification C = classifyGrammar(*G);
  std::printf("\n%s\n", C.toString().c_str());
  return 0;
}
