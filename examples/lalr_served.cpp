//===- examples/lalr_served.cpp - Loopback serving daemon -------------------===//
///
/// \file
/// The network front end of the build/parse services: listens on
/// 127.0.0.1, speaks the manifest dialect one request line per
/// connection turn (see docs/SERVICE.md, "Wire protocol"), and shuts
/// down gracefully on SIGTERM/SIGINT — in-flight requests finish or are
/// cancelled with structured statuses, aggregate stats are flushed, and
/// the process exits 0.
///
/// Usage:
///   lalr_served [--port N]             # 0 (default) = ephemeral; the
///                                      # chosen port is printed first
///   lalr_served [--workers N] [--cache-capacity N] [--max-inflight N]
///               [--queue-depth N] [--admission-timeout-ms N]
///               [--retry-after-ms N] [--deadline-ms N] [--limit NAME=N]
///               [--drain-grace-ms N] [--stats-json PATH|-] [--verify]
///
/// The first stdout line is always `listening 127.0.0.1:<port>` so
/// scripts can scrape the ephemeral port.
///
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

using namespace lalr;

namespace {

NetServer *GServer = nullptr;
std::atomic<bool> GDrainRequested{false};

void onSignal(int) {
  GDrainRequested.store(true, std::memory_order_release);
  if (GServer)
    GServer->notifyDrainAsync(); // async-signal-safe
}

int usage() {
  std::fprintf(
      stderr,
      "usage: lalr_served [options]\n"
      "  --port N                listen port on 127.0.0.1 (default 0 = "
      "ephemeral;\n"
      "                          the bound port is printed on stdout)\n"
      "  --workers N             batch-level build parallelism\n"
      "  --cache-capacity N      LRU bound on cached grammar contexts\n"
      "  --table-capacity N      LRU bound on parse serving tables\n"
      "  --max-inflight N        concurrent request executions (default 8)\n"
      "  --queue-depth N         admission wait-queue bound (default 16)\n"
      "  --admission-timeout-ms N  max admission wait before shedding\n"
      "  --retry-after-ms N      backoff hint in shed/draining responses\n"
      "  --deadline-ms N         default per-request deadline\n"
      "  --limit NAME=N          service-wide build/parse limit "
      "(repeatable)\n"
      "  --drain-grace-ms N      drain: grace before cancelling in-flight\n"
      "  --stats-json PATH       flush stats JSON on shutdown ('-' = "
      "stdout)\n"
      "  --verify                run the artifact verifier on every build\n");
  return 2;
}

/// Same NAME=N limit vocabulary as lalr_batchd.
bool parseLimitFlag(const std::string &Value, BuildLimits &Limits) {
  size_t Eq = Value.find('=');
  if (Eq == std::string::npos)
    return false;
  std::string Name = Value.substr(0, Eq);
  char *End = nullptr;
  double N = std::strtod(Value.c_str() + Eq + 1, &End);
  if (!End || *End != '\0' || N <= 0)
    return false;
  if (Name == "lr0_states")
    Limits.MaxLr0States = static_cast<uint64_t>(N);
  else if (Name == "lr1_states")
    Limits.MaxLr1States = static_cast<uint64_t>(N);
  else if (Name == "items")
    Limits.MaxItems = static_cast<uint64_t>(N);
  else if (Name == "relation_edges")
    Limits.MaxRelationEdges = static_cast<uint64_t>(N);
  else if (Name == "set_bits")
    Limits.MaxSetBits = static_cast<uint64_t>(N);
  else if (Name == "wall_ms")
    Limits.MaxWallMs = N;
  else if (Name == "input_tokens")
    Limits.MaxInputTokens = static_cast<uint64_t>(N);
  else if (Name == "gss_nodes")
    Limits.MaxGssNodes = static_cast<uint64_t>(N);
  else if (Name == "earley_items")
    Limits.MaxEarleyItems = static_cast<uint64_t>(N);
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  NetServer::Options Opts;
  std::string StatsJsonPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextU = [&](auto &Field) {
      Field = static_cast<std::remove_reference_t<decltype(Field)>>(
          std::strtoul(Argv[++I], nullptr, 10));
    };
    if (Arg == "--port" && I + 1 < Argc) {
      NextU(Opts.Port);
    } else if (Arg == "--workers" && I + 1 < Argc) {
      Opts.Build.Workers = parseBuildThreads(Argv[++I]);
    } else if (Arg == "--cache-capacity" && I + 1 < Argc) {
      NextU(Opts.Build.CacheCapacity);
    } else if (Arg == "--table-capacity" && I + 1 < Argc) {
      NextU(Opts.Parse.TableCapacity);
    } else if (Arg == "--max-inflight" && I + 1 < Argc) {
      NextU(Opts.MaxInflight);
    } else if (Arg == "--queue-depth" && I + 1 < Argc) {
      NextU(Opts.MaxQueueDepth);
    } else if (Arg == "--admission-timeout-ms" && I + 1 < Argc) {
      Opts.AdmissionTimeoutMs = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--retry-after-ms" && I + 1 < Argc) {
      Opts.RetryAfterMs = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      Opts.DefaultDeadlineMs = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--drain-grace-ms" && I + 1 < Argc) {
      Opts.DrainGraceMs = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--limit" && I + 1 < Argc) {
      if (!parseLimitFlag(Argv[++I], Opts.Build.DefaultLimits)) {
        std::fprintf(stderr, "--limit %s: expected NAME=N\n", Argv[I]);
        return 2;
      }
      Opts.Parse.DefaultLimits = Opts.Build.DefaultLimits;
    } else if (Arg == "--stats-json" && I + 1 < Argc) {
      StatsJsonPath = Argv[++I];
    } else if (Arg == "--verify") {
      Opts.Build.VerifyBuilds = true;
    } else {
      return usage();
    }
  }
  Opts.Build.DefaultDeadlineMs = Opts.DefaultDeadlineMs;
  Opts.Parse.DefaultDeadlineMs = Opts.DefaultDeadlineMs;

  NetServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "lalr_served: %s\n", Error.c_str());
    return 1;
  }
  GServer = &Server;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::printf("listening 127.0.0.1:%u\n", Server.port());
  std::fflush(stdout);

  // Park until a signal (or an in-process drain) asks for shutdown.
  while (!Server.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Server.waitDrained();
  GServer = nullptr;

  NetStats S = Server.stats();
  std::printf("%s", reportNetStats(S).c_str());

  if (!StatsJsonPath.empty()) {
    // Nested schema mirroring lalr_batchd's: the daemon's own counters
    // plus the underlying service/parse rollups.
    std::string Json = "{\"net\": ";
    Json += S.toJson(/*Pretty=*/true);
    Json += ",\n\"service\": ";
    Json += Server.buildService().stats().toJson(/*Pretty=*/true);
    Json += ",\n\"parse\": ";
    Json += Server.parseService().stats().toJson(/*Pretty=*/true);
    Json += "}\n";
    if (StatsJsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
    } else {
      std::ofstream Out(StatsJsonPath);
      if (!Out) {
        std::fprintf(stderr, "cannot write '%s'\n", StatsJsonPath.c_str());
        return 1;
      }
      Out << Json;
    }
  }
  return 0;
}
