//===- examples/codegen_demo.cpp - Emit a standalone parser -------------------===//
///
/// \file
/// The generator as a tool: emits a self-contained C++17 parser header
/// for a corpus grammar (or a .y file) to stdout — what yacc would write
/// as y.tab.c. Pipe it to a file, add a lexer, compile.
///
/// Usage:  codegen_demo (--corpus NAME | FILE.y) [--namespace NS]
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "pipeline/BuildPipeline.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lalr;

int main(int Argc, char **Argv) {
  std::string CorpusName, File;
  CodeGenOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--corpus" && I + 1 < Argc)
      CorpusName = Argv[++I];
    else if (Arg == "--namespace" && I + 1 < Argc)
      Opts.Namespace = Argv[++I];
    else if (!Arg.empty() && Arg[0] != '-')
      File = Arg;
    else {
      std::fprintf(stderr, "usage: codegen_demo (--corpus NAME | FILE.y) "
                           "[--namespace NS]\n");
      return 2;
    }
  }

  std::optional<Grammar> G;
  if (!CorpusName.empty()) {
    if (!findCorpusEntry(CorpusName)) {
      std::fprintf(stderr, "unknown corpus grammar '%s'\n",
                   CorpusName.c_str());
      return 2;
    }
    G = loadCorpusGrammar(CorpusName);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    G = parseGrammar(SS.str(), Diags, File);
    if (!G) {
      std::cerr << Diags.render();
      return 1;
    }
  } else {
    std::fprintf(stderr, "usage: codegen_demo (--corpus NAME | FILE.y)\n");
    return 2;
  }

  BuildContext Ctx(std::move(*G));
  BuildResult R = BuildPipeline(Ctx).run();
  if (!R.Table.isAdequate())
    std::fprintf(stderr,
                 "warning: %zu unresolved conflicts; the emitted parser "
                 "uses the default resolutions\n",
                 R.Table.unresolvedShiftReduce() +
                     R.Table.unresolvedReduceReduce());
  // The emitted header carries the pipeline stats as a provenance
  // comment on its first line.
  std::fputs(generateParserSource(R, Opts).c_str(), stdout);
  return 0;
}
