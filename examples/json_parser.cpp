//===- examples/json_parser.cpp - JSON parsing end to end -------------------===//
///
/// \file
/// A complete little JSON front end on top of the library: a hand-written
/// JSON lexer feeding the LALR(1) parser generated from the corpus JSON
/// grammar, with semantic actions that pretty-print the re-serialized
/// value. Reads JSON from stdin, or runs a built-in document with --demo.
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "pipeline/BuildPipeline.h"

#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

using namespace lalr;

namespace {

/// Lexes JSON text into grammar tokens. Strings keep their quotes in
/// Token::Text; numbers keep their spelling.
std::optional<std::vector<Token>> lexJson(const Grammar &G,
                                          const std::string &Text,
                                          std::string &Error) {
  std::vector<Token> Out;
  uint32_t Line = 1, Col = 1;
  auto bump = [&](char C) {
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
  };
  for (size_t I = 0; I < Text.size();) {
    char C = Text[I];
    SourceLocation Loc{Line, Col};
    if (std::isspace(static_cast<unsigned char>(C))) {
      bump(C);
      ++I;
      continue;
    }
    Token Tok;
    Tok.Loc = Loc;
    if (C == '{' || C == '}' || C == '[' || C == ']' || C == ',' ||
        C == ':') {
      Tok.Kind = G.findSymbol(std::string("'") + C + "'");
      Tok.Text = std::string(1, C);
      bump(C);
      ++I;
    } else if (C == '"') {
      size_t Start = I;
      bump(C);
      ++I;
      while (I < Text.size() && Text[I] != '"') {
        if (Text[I] == '\\' && I + 1 < Text.size()) {
          bump(Text[I]);
          ++I;
        }
        bump(Text[I]);
        ++I;
      }
      if (I >= Text.size()) {
        Error = "unterminated string";
        return std::nullopt;
      }
      bump(Text[I]);
      ++I;
      Tok.Kind = G.findSymbol("STRING");
      Tok.Text = Text.substr(Start, I - Start);
    } else if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[I])) ||
              Text[I] == '-' || Text[I] == '+' || Text[I] == '.' ||
              Text[I] == 'e' || Text[I] == 'E')) {
        bump(Text[I]);
        ++I;
      }
      Tok.Kind = G.findSymbol("NUMBER");
      Tok.Text = Text.substr(Start, I - Start);
    } else if (std::isalpha(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < Text.size() &&
             std::isalpha(static_cast<unsigned char>(Text[I]))) {
        bump(Text[I]);
        ++I;
      }
      std::string Word = Text.substr(Start, I - Start);
      if (Word == "true")
        Tok.Kind = G.findSymbol("TRUE");
      else if (Word == "false")
        Tok.Kind = G.findSymbol("FALSE");
      else if (Word == "null")
        Tok.Kind = G.findSymbol("NULL");
      else {
        Error = "unexpected word '" + Word + "' at line " +
                std::to_string(Loc.Line);
        return std::nullopt;
      }
      Tok.Text = Word;
    } else {
      Error = std::string("unexpected character '") + C + "' at line " +
              std::to_string(Loc.Line);
      return std::nullopt;
    }
    Out.push_back(std::move(Tok));
  }
  return Out;
}

const char DemoDoc[] = R"({
  "name": "lalr",
  "paper": {"authors": ["DeRemer", "Pennello"], "year": 1979},
  "tables": [1, 2, 3, 4, 5],
  "fast": true,
  "baseline": null
})";

} // namespace

int main(int Argc, char **Argv) {
  BuildContext Ctx(loadCorpusGrammar("json"));
  BuildResult R =
      BuildPipeline(Ctx, {.Conflicts = ConflictPolicy::RequireAdequate})
          .run();
  if (!R.ok()) {
    std::cerr << "internal error: JSON grammar has conflicts\n";
    return 1;
  }
  const Grammar &G = Ctx.grammar();
  const ParseTable &Table = R.Table;

  std::string Input;
  if (Argc > 1 && std::string(Argv[1]) == "--demo") {
    Input = DemoDoc;
  } else {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Input = SS.str();
  }

  std::string Error;
  auto Tokens = lexJson(G, Input, Error);
  if (!Tokens) {
    std::cerr << "lex error: " << Error << "\n";
    return 1;
  }

  // Semantic action: re-serialize compactly (a pretty-printer / validator
  // in ~20 lines).
  auto Outcome = parseWithActions<std::string>(
      G, Table, *Tokens, [](const Token &Tok) { return Tok.Text; },
      [&](ProductionId Prod, std::span<std::string> Rhs) -> std::string {
        const Production &P = G.production(Prod);
        std::string Out;
        for (size_t I = 0; I < Rhs.size(); ++I) {
          Out += Rhs[I];
          // Space after ':' and ',' for readability.
          const std::string &Sym = G.name(P.Rhs[I]);
          if (Sym == "':'" || Sym == "','")
            Out += ' ';
        }
        return Out;
      },
      ParseOptions::strict());

  if (!Outcome.clean()) {
    for (const ParseError &E : Outcome.Errors)
      std::fprintf(stderr, "syntax error at %u:%u: %s\n", E.Loc.Line,
                   E.Loc.Column, E.Message.c_str());
    return 1;
  }
  std::printf("valid JSON (%zu tokens, %zu reductions)\n", Tokens->size(),
              Outcome.Reductions.size());
  std::printf("%s\n", Outcome.Value->c_str());
  return 0;
}
