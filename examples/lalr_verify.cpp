//===- examples/lalr_verify.cpp - DP artifact verifier CLI ----------------===//
///
/// \file
/// Sweeps the artifact verifier (verify/ArtifactVerifier.h) over grammars:
/// for each one it builds the LALR(1) table through the normal pipeline,
/// then independently re-derives every DeRemer-Pennello invariant and
/// cross-checks the relations, Read/Follow/LA set families and table
/// actions. Any violation is a red build somewhere upstream; the exit
/// status makes this a CI gate.
///
/// Usage:
///   lalr_verify                        # whole corpus
///   lalr_verify --realistic            # Table 1-3 workload only
///   lalr_verify --grammar NAME ...     # corpus names or .y paths
///   lalr_verify [--solver naive|digraph] [--threads N]
///               [--fixpoint-limit N] [--no-fixpoint] [--json] [--quiet]
///
/// Exit status: 0 when every grammar verifies clean, 1 on any issue,
/// 2 on usage/load errors.
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "pipeline/BuildPipeline.h"
#include "verify/ArtifactVerifier.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace lalr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lalr_verify [--grammar NAME|FILE.y ...] [--realistic]\n"
      "                   [--solver naive|digraph] [--threads N]\n"
      "                   [--fixpoint-limit N] [--no-fixpoint] [--json]\n"
      "                   [--quiet] [--list]\n"
      "With no --grammar the whole corpus is swept (--realistic restricts\n"
      "to the realistic-language subset). Exit 1 when any invariant check\n"
      "fails.\n");
  return 2;
}

bool isPath(const std::string &Name) {
  return Name.size() > 2 && Name.compare(Name.size() - 2, 2, ".y") == 0;
}

std::optional<Grammar> loadGrammar(const std::string &Name) {
  if (!isPath(Name)) {
    if (!findCorpusEntry(Name)) {
      std::fprintf(stderr, "unknown corpus grammar '%s' (try --list)\n",
                   Name.c_str());
      return std::nullopt;
    }
    return loadCorpusGrammar(Name);
  }
  std::ifstream In(Name);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Name.c_str());
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  DiagnosticEngine Diags;
  std::optional<Grammar> G = parseGrammar(SS.str(), Diags, Name);
  if (!G)
    std::cerr << Diags.render();
  return G;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Names;
  bool RealisticOnly = false;
  bool Json = false;
  bool Quiet = false;
  SolverKind Solver = SolverKind::Digraph;
  int Threads = -1;
  VerifyOptions VOpts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--grammar" && I + 1 < Argc) {
      Names.push_back(Argv[++I]);
    } else if (Arg == "--realistic") {
      RealisticOnly = true;
    } else if (Arg == "--solver" && I + 1 < Argc) {
      std::string V = Argv[++I];
      if (V == "digraph")
        Solver = SolverKind::Digraph;
      else if (V == "naive")
        Solver = SolverKind::NaiveFixpoint;
      else
        return usage();
    } else if (Arg == "--threads" && I + 1 < Argc) {
      bool Valid = true;
      Threads = static_cast<int>(parseBuildThreads(Argv[++I], &Valid));
      if (!Valid)
        return usage();
    } else if (Arg == "--fixpoint-limit" && I + 1 < Argc) {
      VOpts.MaxFixpointNodes =
          static_cast<size_t>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--no-fixpoint") {
      VOpts.CheckFixpoint = false;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--list") {
      for (std::string_view Name : listCorpusGrammars())
        std::printf("%s\n", std::string(Name).c_str());
      return 0;
    } else {
      return usage();
    }
  }

  if (Names.empty())
    for (std::string_view Name : listCorpusGrammars(RealisticOnly))
      Names.emplace_back(Name);

  bool AnyIssues = false;
  if (Json)
    std::printf("[");
  for (size_t N = 0; N < Names.size(); ++N) {
    std::optional<Grammar> G = loadGrammar(Names[N]);
    if (!G)
      return 2;

    BuildContext Ctx(std::move(*G));
    BuildOptions BOpts;
    BOpts.Solver = Solver;
    BOpts.Threads = Threads;
    BuildResult R = BuildPipeline(Ctx, BOpts).run();
    if (!R.ok()) {
      std::fprintf(stderr, "%s: build failed: %s\n", Names[N].c_str(),
                   R.Status.Message.c_str());
      return 2;
    }

    VerifyReport Report = verifyLalrBuild(
        Ctx.lr0(), Ctx.analysis(), Ctx.lookaheads(Solver), &R.Table, VOpts);
    AnyIssues |= !Report.ok();

    if (Json) {
      std::printf("%s\n{\"grammar\": \"%s\", \"report\": %s}",
                  N ? "," : "", Names[N].c_str(), Report.toJson().c_str());
    } else {
      if (!Quiet || !Report.ok())
        std::printf("%-6s %-22s %s%s\n", Report.ok() ? "ok" : "FAIL",
                    Names[N].c_str(), Report.summary().c_str(),
                    Report.FixpointSkipped ? " [fixpoint skipped]" : "");
      for (const VerifyIssue &Issue : Report.Issues)
        std::printf("       [%s] %s\n", Issue.Check.c_str(),
                    Issue.Detail.c_str());
    }
  }
  if (Json)
    std::printf("\n]\n");
  return AnyIssues ? 1 : 0;
}
