//===- examples/calc.cpp - Calculator with precedence and evaluation --------===//
///
/// \file
/// A calculator built on an *ambiguous* expression grammar disambiguated
/// by %left/%right declarations — the idiomatic yacc style — with
/// semantic actions evaluating on the fly. Reads one expression per line
/// from stdin (or evaluates a demo set with --demo).
///
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"
#include "pipeline/BuildPipeline.h"

#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

using namespace lalr;

namespace {

const char CalcGrammar[] = R"y(
%name calc
%token NUM
%left '+' '-'
%left '*' '/'
%right '^'
%right UMINUS
%%
e : e '+' e
  | e '-' e
  | e '*' e
  | e '/' e
  | e '^' e
  | '-' e %prec UMINUS
  | '(' e ')'
  | NUM
  ;
)y";

/// Tokenizes an arithmetic line: numbers and single-character operators.
std::optional<std::vector<Token>> lexLine(const Grammar &G,
                                          const std::string &Line,
                                          std::string &Error) {
  std::vector<Token> Out;
  for (size_t I = 0; I < Line.size();) {
    char C = Line[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    Token Tok;
    Tok.Loc = {1, static_cast<uint32_t>(I + 1)};
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < Line.size() &&
             (std::isdigit(static_cast<unsigned char>(Line[I])) ||
              Line[I] == '.'))
        ++I;
      Tok.Kind = G.findSymbol("NUM");
      Tok.Text = Line.substr(Start, I - Start);
    } else {
      SymbolId S = G.findSymbol(std::string("'") + C + "'");
      if (S == InvalidSymbol) {
        Error = std::string("unexpected character '") + C + "'";
        return std::nullopt;
      }
      Tok.Kind = S;
      Tok.Text = std::string(1, C);
      ++I;
    }
    Out.push_back(std::move(Tok));
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  DiagnosticEngine Diags;
  std::optional<Grammar> G = parseGrammar(CalcGrammar, Diags);
  if (!G) {
    std::cerr << Diags.render();
    return 1;
  }
  // Every conflict of the ambiguous grammar must be precedence-resolved,
  // which the RequireAdequate policy checks for us.
  BuildContext Ctx(std::move(*G));
  BuildResult R =
      BuildPipeline(Ctx, {.Conflicts = ConflictPolicy::RequireAdequate})
          .run();
  if (!R.ok()) {
    std::cerr << "internal error: calc grammar has unresolved conflicts\n";
    return 1;
  }
  const Grammar &Gr = Ctx.grammar();
  const ParseTable &Table = R.Table;

  auto evalLine = [&](const std::string &Line) {
    std::string Error;
    auto Tokens = lexLine(Gr, Line, Error);
    if (!Tokens) {
      std::printf("error: %s\n", Error.c_str());
      return;
    }
    if (Tokens->empty())
      return;
    auto Outcome = parseWithActions<double>(
        Gr, Table, *Tokens,
        [&](const Token &Tok) {
          if (Tok.Kind == Gr.findSymbol("NUM"))
            return std::stod(Tok.Text);
          return 0.0; // operators and parens carry no value
        },
        [&](ProductionId Prod, std::span<double> Rhs) -> double {
          const Production &P = Gr.production(Prod);
          if (P.Rhs.size() == 1)
            return Rhs[0]; // e -> NUM (value already converted)
          if (P.Rhs.size() == 2)
            return -Rhs[1]; // unary minus
          // Parenthesized or binary: look at the middle symbol.
          const std::string &Op = Gr.name(P.Rhs[1]);
          if (Op == "'+'")
            return Rhs[0] + Rhs[2];
          if (Op == "'-'")
            return Rhs[0] - Rhs[2];
          if (Op == "'*'")
            return Rhs[0] * Rhs[2];
          if (Op == "'/'")
            return Rhs[0] / Rhs[2];
          if (Op == "'^'") {
            double Base = Rhs[0], Exp = Rhs[2], R = 1;
            for (int I = 0; I < static_cast<int>(Exp); ++I)
              R *= Base;
            return R;
          }
          return Rhs[1]; // '(' e ')'
        },
        ParseOptions::strict());
    if (!Outcome.clean()) {
      for (const ParseError &E : Outcome.Errors)
        std::printf("error at column %u: %s\n", E.Loc.Column,
                    E.Message.c_str());
      return;
    }
    std::printf("%s = %g\n", Line.c_str(), *Outcome.Value);
  };

  if (Argc > 1 && std::string(Argv[1]) == "--demo") {
    for (const char *Demo :
         {"1 + 2 * 3", "(1 + 2) * 3", "2 ^ 3 ^ 2", "-4 + 10 / 2",
          "1 - 2 - 3", "((((5))))"})
      evalLine(Demo);
    return 0;
  }

  std::string Line;
  while (std::getline(std::cin, Line))
    evalLine(Line);
  return 0;
}
