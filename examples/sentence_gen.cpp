//===- examples/sentence_gen.cpp - Sentence derivation CLI -------------------===//
///
/// \file
/// Grammar-debugging companion: derives example sentences from a corpus
/// grammar (or a .y file), and explains every parse-table conflict with a
/// concrete viable prefix that drives the parser into the conflicted
/// state — the kind of diagnostics a modern generator prints next to
/// "shift/reduce conflict".
///
/// Usage:
///   sentence_gen --corpus NAME [--count N] [--max-len L] [--seed S]
///   sentence_gen --corpus NAME --explain-conflicts
///   sentence_gen FILE.y [...]
///
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "grammar/SentenceGen.h"
#include "pipeline/BuildPipeline.h"
#include "report/ConflictWitness.h"
#include "support/Rng.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lalr;

static int usage() {
  std::fprintf(stderr,
               "usage: sentence_gen (--corpus NAME | FILE.y) [--count N] "
               "[--max-len L] [--seed S] [--explain-conflicts]\n");
  return 2;
}

int main(int Argc, char **Argv) {
  std::string CorpusName, File;
  unsigned Count = 10, MaxLen = 25;
  uint64_t Seed = 1;
  bool ExplainConflicts = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--corpus" && I + 1 < Argc)
      CorpusName = Argv[++I];
    else if (Arg == "--count" && I + 1 < Argc)
      Count = std::atoi(Argv[++I]);
    else if (Arg == "--max-len" && I + 1 < Argc)
      MaxLen = std::atoi(Argv[++I]);
    else if (Arg == "--seed" && I + 1 < Argc)
      Seed = std::atoll(Argv[++I]);
    else if (Arg == "--explain-conflicts")
      ExplainConflicts = true;
    else if (!Arg.empty() && Arg[0] != '-')
      File = Arg;
    else
      return usage();
  }

  std::optional<Grammar> G;
  if (!CorpusName.empty()) {
    if (!findCorpusEntry(CorpusName)) {
      std::fprintf(stderr, "unknown corpus grammar '%s'\n",
                   CorpusName.c_str());
      return 2;
    }
    G = loadCorpusGrammar(CorpusName);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    G = parseGrammar(SS.str(), Diags, File);
    if (!G) {
      std::cerr << Diags.render();
      return 1;
    }
  } else {
    return usage();
  }

  BuildContext Ctx(std::move(*G));
  const Grammar &Gr = Ctx.grammar();

  if (ExplainConflicts) {
    BuildResult Res = BuildPipeline(Ctx).run();
    const ParseTable &T = Res.Table;
    const Lr0Automaton &A = Ctx.lr0();
    if (T.conflicts().empty()) {
      std::printf("grammar '%s' has no LALR(1) conflicts\n",
                  Gr.grammarName().c_str());
      return 0;
    }
    for (const Conflict &C : T.conflicts()) {
      std::printf("%s\n", C.toString(Gr).c_str());
      StateExample Ex = exampleForState(A, C.State);
      std::printf("  reached after:  %s\n",
                  renderSentence(Gr, Ex.TerminalPrefix).c_str());
      std::printf("  then seeing:    %s\n",
                  Gr.name(C.Terminal).c_str());
      if (auto Witness = findConflictWitness(Gr, T, C))
        std::printf("  full example:   %s\n\n",
                    renderSentence(Gr, *Witness).c_str());
      else
        std::printf("  (no complete example sentence found in the "
                    "sampling budget)\n\n");
    }
    return 0;
  }

  std::printf("shortest sentence of %s:\n  %s\n\n",
              Gr.grammarName().c_str(),
              renderSentence(Gr, shortestExpansion(Gr, Gr.startSymbol()))
                  .c_str());
  std::printf("%u random sentences (seed %llu, max-len %u):\n", Count,
              static_cast<unsigned long long>(Seed), MaxLen);
  Rng R(Seed);
  for (unsigned I = 0; I < Count; ++I)
    std::printf("  %s\n",
                renderSentence(Gr, randomSentence(Gr, R, MaxLen)).c_str());
  return 0;
}
