//===- bench/bench_service_throughput.cpp - BuildService throughput ---------===//
///
/// \file
/// Reproduction extension (not a paper table): quantifies what the
/// grammar-build service layer adds on top of the DeRemer-Pennello core —
/// context-cache amortization and batch-level parallelism. Each row runs
/// one request composition through a fresh BuildService and reports
/// requests/second, mean per-request service wall, and the cache hit
/// ratio:
///
///   cold      every grammar requested once (all misses; the baseline)
///   warm      the same grammar re-requested R times (hit path)
///   kinds     the full TableKind matrix over one grammar (one LR(0)
///             build amortized over 9 tables)
///   mixed     realistic corpus x {lalr1, slr1, clr1}, serial vs 2 workers
///
/// With --socket it instead measures the network front end: an
/// in-process NetServer serving 1/2/4/8 concurrent retrying clients
/// over real loopback connections — the saturation curve of the wire
/// path (rows service-throughput/socket-cN).
///
/// Emits the standard pipeline-stats JSON (one entry per row via
/// ServiceStats::toPipelineStats) for the compare_stats.py tooling.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "net/NetClient.h"
#include "net/NetServer.h"
#include "service/BuildService.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lalr;
using namespace lalrbench;

namespace {

ServiceRequest makeRequest(std::string_view Name, TableKind Kind) {
  ServiceRequest R;
  R.GrammarName = std::string(Name);
  R.Options.Kind = Kind;
  return R;
}

struct RowResult {
  ServiceStats Stats;
  double BatchUs = 0; ///< wall-clock of the runBatch call itself
};

RowResult runComposition(const std::vector<ServiceRequest> &Requests,
                         unsigned Workers) {
  BuildService::Options Opts;
  Opts.Workers = Workers;
  Opts.CacheCapacity = 32; // hold the whole realistic corpus
  BuildService Svc(Opts);
  Timer T;
  std::vector<ServiceResponse> Responses = Svc.runBatch(Requests);
  RowResult Out;
  Out.BatchUs = T.elapsedUs();
  for (const ServiceResponse &R : Responses)
    if (!R.Ok)
      std::fprintf(stderr, "request failed: %s\n", R.Error.c_str());
  Out.Stats = Svc.stats();
  return Out;
}

/// --socket: the saturation curve of the network front end. One
/// in-process NetServer (lalr_served's engine) per row; 1/2/4/8
/// concurrent NetClients loop a fixed request mix over real loopback
/// connections after a warm-up pass, so the measured region is the
/// serving path — wire framing, admission, single-flight, cache hits —
/// not first-build cost. Counters that are pure functions of the
/// workload (net_requests; net_shed and net_drained, both zero by
/// construction) are emitted under their gated names; concurrency-
/// dependent ones (how the duplicates coalesced) go out ungated as
/// socket_flights / socket_coalesced.
int runSocketSaturation(StatsSink &Sink) {
  const std::vector<std::string> Mix = {
      "build json lalr1",   "build expr lalr1",
      "build ansic lalr1",  "build minic slr1",
      "parse expr lr NUM + NUM",
  };
  constexpr unsigned RequestsPerClient = 200;

  std::printf("Network front-end saturation (loopback wire protocol; see "
              "docs/SERVICE.md)\n\n");
  TablePrinter P({9, 10, 11, 12, 11, 7});
  P.header({"clients", "requests", "req/s", "mean req", "coalesced", "shed"});

  for (unsigned Clients : {1u, 2u, 4u, 8u}) {
    NetServer::Options Opts;
    Opts.Build.CacheCapacity = 32;
    NetServer Server(std::move(Opts));
    std::string Error;
    if (!Server.start(Error)) {
      std::fprintf(stderr, "cannot start server: %s\n", Error.c_str());
      return 1;
    }

    // Warm pass: one client populates the build cache and the parse
    // table snapshots through the wire.
    {
      NetClient::Options CO;
      CO.Port = Server.port();
      NetClient Warm(CO);
      for (const std::string &Line : Mix) {
        WireResponse R;
        if (!Warm.request(Line, R, Error) || !R.Ok) {
          std::fprintf(stderr, "warmup '%s' failed: %s\n", Line.c_str(),
                       (R.Ok ? Error : R.Message).c_str());
          return 1;
        }
      }
    }

    std::atomic<uint64_t> Failures{0};
    Timer T;
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&] {
        NetClient::Options CO;
        CO.Port = Server.port();
        NetClient Cli(CO);
        for (unsigned I = 0; I < RequestsPerClient; ++I) {
          WireResponse R;
          std::string Err;
          if (!Cli.request(Mix[I % Mix.size()], R, Err) || !R.Ok)
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    double RunUs = T.elapsedUs();
    NetStats NS = Server.stats();
    Server.drain();
    if (Failures.load() > 0)
      std::fprintf(stderr, "socket-c%u: %llu request(s) failed\n", Clients,
                   static_cast<unsigned long long>(Failures.load()));

    uint64_t Measured = static_cast<uint64_t>(Clients) * RequestsPerClient;
    double ReqPerSec =
        RunUs > 0 ? 1e6 * static_cast<double>(Measured) / RunUs : 0;
    char Rate[24];
    std::snprintf(Rate, sizeof(Rate), "%.0f", ReqPerSec);
    P.row({fmt(Clients), fmt(Measured), Rate,
           fmtUs(Measured ? RunUs / static_cast<double>(Measured) : 0),
           fmt(NS.Coalesced), fmt(NS.Shed)});

    PipelineStats Stats;
    Stats.Label = "service-throughput/socket-c" + std::to_string(Clients);
    Stats.addStage("socket-run", RunUs);
    // Pure functions of the workload -> gated structural names.
    Stats.setCounter("net_requests", NS.Requests);
    Stats.setCounter("net_shed", NS.Shed);
    Stats.setCounter("net_drained", NS.Drained);
    // Concurrency-dependent -> ungated names.
    Stats.setCounter("socket_clients", Clients);
    Stats.setCounter("socket_requests", Measured);
    Stats.setCounter("socket_flights", NS.Flights);
    Stats.setCounter("socket_coalesced", NS.Coalesced);
    Sink.add(Stats);
  }
  return Sink.flush();
}

} // namespace

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);

  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--socket") == 0)
      return runSocketSaturation(Sink);

  struct Row {
    std::string Label;
    std::vector<ServiceRequest> Requests;
    unsigned Workers = 0;
  };
  std::vector<Row> Rows;

  // cold: one request per realistic corpus grammar — all misses.
  {
    Row R;
    R.Label = "cold-corpus";
    for (std::string_view Name : listCorpusGrammars(/*RealisticOnly=*/true))
      R.Requests.push_back(makeRequest(Name, TableKind::Lalr1));
    Rows.push_back(std::move(R));
  }

  // warm: the same grammar requested 32 times — one miss, 31 hits.
  {
    Row R;
    R.Label = "warm-ansic-x32";
    for (int I = 0; I < 32; ++I)
      R.Requests.push_back(makeRequest("ansic", TableKind::Lalr1));
    Rows.push_back(std::move(R));
  }

  // kinds: the full table-kind matrix over one grammar — one LR(0) and
  // one LR(1) build amortized across all nine constructions.
  {
    Row R;
    R.Label = "kinds-minic-x9";
    for (TableKind K : AllTableKinds)
      R.Requests.push_back(makeRequest("minic", K));
    Rows.push_back(std::move(R));
  }

  // mixed: realistic corpus x three kinds, serial then two workers (the
  // batch-parallelism knob; results are identical by contract).
  for (unsigned Workers : {0u, 2u}) {
    Row R;
    R.Label = "mixed-corpus-w" + std::to_string(Workers);
    for (std::string_view Name : listCorpusGrammars(/*RealisticOnly=*/true))
      for (TableKind K : {TableKind::Lalr1, TableKind::Slr1, TableKind::Clr1})
        R.Requests.push_back(makeRequest(Name, K));
    R.Workers = Workers;
    Rows.push_back(std::move(R));
  }

  std::printf("BuildService throughput (reproduction extension; see "
              "docs/SERVICE.md)\n\n");
  TablePrinter P({18, 9, 8, 11, 12, 10, 9});
  P.header({"composition", "requests", "workers", "req/s", "mean req",
            "hit-ratio", "misses"});

  for (Row &R : Rows) {
    RowResult Res = runComposition(R.Requests, R.Workers);
    const ServiceStats &S = Res.Stats;
    double ReqPerSec =
        Res.BatchUs > 0 ? 1e6 * static_cast<double>(S.Requests) / Res.BatchUs
                        : 0;
    char Ratio[16], Rate[24];
    std::snprintf(Ratio, sizeof(Ratio), "%.0f%%", S.cacheHitRatio() * 100.0);
    std::snprintf(Rate, sizeof(Rate), "%.0f", ReqPerSec);
    P.row({R.Label, fmt(S.Requests), fmt(R.Workers), Rate,
           fmtUs(S.Requests ? S.RequestUs / static_cast<double>(S.Requests)
                            : 0),
           Ratio, fmt(S.CacheMisses)});

    PipelineStats Stats = S.toPipelineStats("service-throughput/" + R.Label);
    Stats.setCounter("service_workers", R.Workers);
    Sink.add(Stats);
  }

  return Sink.flush();
}
