//===- bench/bench_service_throughput.cpp - BuildService throughput ---------===//
///
/// \file
/// Reproduction extension (not a paper table): quantifies what the
/// grammar-build service layer adds on top of the DeRemer-Pennello core —
/// context-cache amortization and batch-level parallelism. Each row runs
/// one request composition through a fresh BuildService and reports
/// requests/second, mean per-request service wall, and the cache hit
/// ratio:
///
///   cold      every grammar requested once (all misses; the baseline)
///   warm      the same grammar re-requested R times (hit path)
///   kinds     the full TableKind matrix over one grammar (one LR(0)
///             build amortized over 9 tables)
///   mixed     realistic corpus x {lalr1, slr1, clr1}, serial vs 2 workers
///
/// Emits the standard pipeline-stats JSON (one entry per row via
/// ServiceStats::toPipelineStats) for the compare_stats.py tooling.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "service/BuildService.h"

#include <string>
#include <vector>

using namespace lalr;
using namespace lalrbench;

namespace {

ServiceRequest makeRequest(std::string_view Name, TableKind Kind) {
  ServiceRequest R;
  R.GrammarName = std::string(Name);
  R.Options.Kind = Kind;
  return R;
}

struct RowResult {
  ServiceStats Stats;
  double BatchUs = 0; ///< wall-clock of the runBatch call itself
};

RowResult runComposition(const std::vector<ServiceRequest> &Requests,
                         unsigned Workers) {
  BuildService::Options Opts;
  Opts.Workers = Workers;
  Opts.CacheCapacity = 32; // hold the whole realistic corpus
  BuildService Svc(Opts);
  Timer T;
  std::vector<ServiceResponse> Responses = Svc.runBatch(Requests);
  RowResult Out;
  Out.BatchUs = T.elapsedUs();
  for (const ServiceResponse &R : Responses)
    if (!R.Ok)
      std::fprintf(stderr, "request failed: %s\n", R.Error.c_str());
  Out.Stats = Svc.stats();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);

  struct Row {
    std::string Label;
    std::vector<ServiceRequest> Requests;
    unsigned Workers = 0;
  };
  std::vector<Row> Rows;

  // cold: one request per realistic corpus grammar — all misses.
  {
    Row R;
    R.Label = "cold-corpus";
    for (std::string_view Name : listCorpusGrammars(/*RealisticOnly=*/true))
      R.Requests.push_back(makeRequest(Name, TableKind::Lalr1));
    Rows.push_back(std::move(R));
  }

  // warm: the same grammar requested 32 times — one miss, 31 hits.
  {
    Row R;
    R.Label = "warm-ansic-x32";
    for (int I = 0; I < 32; ++I)
      R.Requests.push_back(makeRequest("ansic", TableKind::Lalr1));
    Rows.push_back(std::move(R));
  }

  // kinds: the full table-kind matrix over one grammar — one LR(0) and
  // one LR(1) build amortized across all nine constructions.
  {
    Row R;
    R.Label = "kinds-minic-x9";
    for (TableKind K : AllTableKinds)
      R.Requests.push_back(makeRequest("minic", K));
    Rows.push_back(std::move(R));
  }

  // mixed: realistic corpus x three kinds, serial then two workers (the
  // batch-parallelism knob; results are identical by contract).
  for (unsigned Workers : {0u, 2u}) {
    Row R;
    R.Label = "mixed-corpus-w" + std::to_string(Workers);
    for (std::string_view Name : listCorpusGrammars(/*RealisticOnly=*/true))
      for (TableKind K : {TableKind::Lalr1, TableKind::Slr1, TableKind::Clr1})
        R.Requests.push_back(makeRequest(Name, K));
    R.Workers = Workers;
    Rows.push_back(std::move(R));
  }

  std::printf("BuildService throughput (reproduction extension; see "
              "docs/SERVICE.md)\n\n");
  TablePrinter P({18, 9, 8, 11, 12, 10, 9});
  P.header({"composition", "requests", "workers", "req/s", "mean req",
            "hit-ratio", "misses"});

  for (Row &R : Rows) {
    RowResult Res = runComposition(R.Requests, R.Workers);
    const ServiceStats &S = Res.Stats;
    double ReqPerSec =
        Res.BatchUs > 0 ? 1e6 * static_cast<double>(S.Requests) / Res.BatchUs
                        : 0;
    char Ratio[16], Rate[24];
    std::snprintf(Ratio, sizeof(Ratio), "%.0f%%", S.cacheHitRatio() * 100.0);
    std::snprintf(Rate, sizeof(Rate), "%.0f", ReqPerSec);
    P.row({R.Label, fmt(S.Requests), fmt(R.Workers), Rate,
           fmtUs(S.Requests ? S.RequestUs / static_cast<double>(S.Requests)
                            : 0),
           Ratio, fmt(S.CacheMisses)});

    PipelineStats Stats = S.toPipelineStats("service-throughput/" + R.Label);
    Stats.setCounter("service_workers", R.Workers);
    Sink.add(Stats);
  }

  return Sink.flush();
}
