//===- bench/bench_table3_timing.cpp - Table 3 -------------------------------===//
///
/// \file
/// Table 3 (reconstructed): look-ahead computation time per grammar for
/// four LALR(1) methods — DeRemer-Pennello (this paper), YACC's
/// spontaneous+propagation method, the Bermudez-Logothetis derived-FOLLOW
/// method, and the defining canonical-LR(1)-merge construction. All four
/// produce identical LA sets (asserted by the test suite); the point of
/// the table is the cost gap. The paper reports
/// DP beating the YACC method by roughly an order of magnitude on its
/// corpus and LR(1)-merge being far more expensive still; the reproduced
/// *shape* is DP < YACC << merge.
///
/// Times are medians over repeated runs; LR(0) construction is excluded
/// (it is shared by DP and YACC; the merge column includes LR(1)
/// construction, which is its defining cost). All four methods run over
/// ONE BuildContext: the shared LR(0) automaton is built exactly once,
/// which this bench asserts via the context's build counter.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/BermudezLogothetis.h"
#include "baselines/MergedLalrBuilder.h"
#include "baselines/YaccLalrBuilder.h"
#include "corpus/CorpusGrammars.h"
#include "pipeline/BuildContext.h"

#include <cmath>

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  const int Reps = 15;
  std::printf("Table 3: LALR(1) look-ahead computation time "
              "(median of %d runs)\n\n",
              Reps);
  TablePrinter T({12, 7, 10, 10, 10, 12, 9, 9});
  T.header({"grammar", "states", "DP", "YACC", "BL-FOLLOW", "LR(1)-merge",
            "yacc/DP", "merge/DP"});
  double GeoYacc = 1.0, GeoMerge = 1.0;
  size_t Count = 0;
  for (const CorpusEntry &E : realisticCorpusEntries()) {
    BuildContext Ctx(loadCorpusGrammar(E.Name));
    const Grammar &G = Ctx.grammar();
    const GrammarAnalysis &An = Ctx.analysis();
    const Lr0Automaton &A = Ctx.lr0();

    double DpUs = medianTimeUs(
        Reps, [&] { LalrLookaheads::compute(A, An); });
    double YaccUs = medianTimeUs(
        Reps, [&] { YaccLalrLookaheads::compute(A, An); });
    double MergeUs = medianTimeUs(Reps, [&] {
      Lr1Automaton L1 = Lr1Automaton::build(G, An);
      MergedLalrLookaheads::compute(A, L1);
    });
    double BlUs = medianTimeUs(
        Reps, [&] { DerivedFollowLookaheads::compute(A, An); });

    // Artifact-reuse regression: every method above consumed the one
    // memoized automaton; a second accessor call must return the same
    // instance without rebuilding.
    if (&Ctx.lr0() != &A || Ctx.lr0BuildCount() != 1 ||
        Ctx.analysisBuildCount() != 1) {
      std::fprintf(stderr,
                   "BuildContext memoization broken: lr0 built %zu times, "
                   "analysis %zu times\n",
                   Ctx.lr0BuildCount(), Ctx.analysisBuildCount());
      return 1;
    }

    T.row({E.Name, fmt(A.numStates()), fmtUs(DpUs), fmtUs(YaccUs),
           fmtUs(BlUs), fmtUs(MergeUs), fmtX(YaccUs / DpUs),
           fmtX(MergeUs / DpUs)});
    GeoYacc *= YaccUs / DpUs;
    GeoMerge *= MergeUs / DpUs;
    ++Count;

    // One instrumented run per method so the JSON carries the per-stage
    // split behind the medians.
    PipelineStats &S = Ctx.stats();
    LalrLookaheads::compute(A, An, SolverKind::Digraph, &S);
    YaccLalrLookaheads::compute(A, An, &S);
    DerivedFollowLookaheads::compute(A, An, &S);
    Sink.add(S);
  }
  double GY = std::pow(GeoYacc, 1.0 / Count);
  double GM = std::pow(GeoMerge, 1.0 / Count);
  std::printf("\ngeometric-mean speedup of DP: %s vs YACC, %s vs "
              "LR(1)-merge\n",
              fmtX(GY).c_str(), fmtX(GM).c_str());
  return Sink.flush();
}
