//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
///
/// \file
/// Column formatting and timing helpers shared by the table/figure
/// benches. Each bench binary prints the rows of one reconstructed table
/// or the series of one figure (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BENCH_BENCHUTIL_H
#define LALR_BENCH_BENCHUTIL_H

#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

namespace lalrbench {

/// Prints a row of right-aligned columns under a fixed layout.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<int> Widths)
      : Widths(std::move(Widths)) {}

  void header(const std::vector<std::string> &Cells) {
    row(Cells);
    size_t Total = 0;
    for (int W : Widths)
      Total += static_cast<size_t>(W) + 2;
    std::printf("%s\n", std::string(Total, '-').c_str());
  }

  void row(const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size() && I < Widths.size(); ++I)
      std::printf("%*s  ", Widths[I], Cells[I].c_str());
    std::printf("\n");
  }

private:
  std::vector<int> Widths;
};

inline std::string fmt(size_t V) { return std::to_string(V); }

inline std::string fmtUs(double Us) {
  char Buf[32];
  if (Us >= 10000)
    std::snprintf(Buf, sizeof(Buf), "%.1f ms", Us / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1f us", Us);
  return Buf;
}

inline std::string fmtX(double Ratio) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fx", Ratio);
  return Buf;
}

} // namespace lalrbench

#endif // LALR_BENCH_BENCHUTIL_H
