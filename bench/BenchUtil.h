//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
///
/// \file
/// Column formatting helpers plus the PipelineStats JSON sink shared by
/// the table/figure benches. Each bench binary prints the rows of one
/// reconstructed table or the series of one figure (see EXPERIMENTS.md)
/// and, via StatsSink, a machine-readable JSON array of the per-stage
/// pipeline stats behind those rows.
///
//===----------------------------------------------------------------------===//

#ifndef LALR_BENCH_BENCHUTIL_H
#define LALR_BENCH_BENCHUTIL_H

#include "pipeline/PipelineStats.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace lalrbench {

/// Prints a row of right-aligned columns under a fixed layout.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<int> Widths)
      : Widths(std::move(Widths)) {}

  void header(const std::vector<std::string> &Cells) {
    row(Cells);
    size_t Total = 0;
    for (int W : Widths)
      Total += static_cast<size_t>(W) + 2;
    std::printf("%s\n", std::string(Total, '-').c_str());
  }

  void row(const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size() && I < Widths.size(); ++I)
      std::printf("%*s  ", Widths[I], Cells[I].c_str());
    std::printf("\n");
  }

private:
  std::vector<int> Widths;
};

inline std::string fmt(size_t V) { return std::to_string(V); }

inline std::string fmtUs(double Us) {
  char Buf[32];
  if (Us >= 10000)
    std::snprintf(Buf, sizeof(Buf), "%.1f ms", Us / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1f us", Us);
  return Buf;
}

inline std::string fmtX(double Ratio) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fx", Ratio);
  return Buf;
}

/// Marker line separating the human-readable table from the JSON block a
/// bench appends to stdout (when no --json path was given). Harness
/// scripts split on it.
inline constexpr const char *StatsJsonMarker = "--- pipeline-stats-json ---";

/// Collects the PipelineStats behind a bench's rows and emits them as one
/// JSON array — to the file named by a `--json PATH` argument (stripped
/// from argc/argv by the constructor, so benches stay argument-free
/// otherwise), or to stdout after StatsJsonMarker.
class StatsSink {
public:
  StatsSink(int &Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
        Path = Argv[I + 1];
        // Strip both arguments.
        for (int J = I; J + 2 <= Argc; ++J)
          Argv[J] = Argv[J + 2];
        Argc -= 2;
        break;
      }
    }
  }

  void add(const lalr::PipelineStats &Stats) {
    Entries.push_back(Stats.toJson(/*Pretty=*/true));
  }

  /// Writes the collected array; returns the bench's exit code (1 only
  /// when a --json path was given and cannot be written).
  int flush() const {
    std::string Out = "[";
    for (size_t I = 0; I < Entries.size(); ++I) {
      Out += I ? ",\n" : "\n";
      Out += Entries[I];
    }
    Out += Entries.empty() ? "]\n" : "\n]\n";
    if (Path.empty()) {
      std::printf("\n%s\n%s", StatsJsonMarker, Out.c_str());
      return 0;
    }
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return 1;
    }
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
    return 0;
  }

private:
  std::string Path;
  std::vector<std::string> Entries;
};

} // namespace lalrbench

#endif // LALR_BENCH_BENCHUTIL_H
