//===- bench/bench_parse_throughput.cpp - ParseService throughput -----------===//
///
/// \file
/// Reproduction extension (not a paper table): parse-serving throughput
/// over the four runtime drivers. The paper's evaluation ends at table
/// construction; this bench measures what the serving layer built on top
/// of those tables delivers — tokens/second per driver, across the
/// corpus's ambiguity classes, with the "N parses, one build" snapshot
/// amortization visible in the table-hit column:
///
///   deterministic   json / expr — unambiguous LALR(1); the LR driver's
///                   home turf, run compressed and dense
///   prec-ambiguous  expr_prec — ambiguous until %left/%right resolves
///                   it; LR parses the resolved table, GLR forks on the
///                   unresolved one
///   ambiguous       not_lr1_ambiguous — truly ambiguous; GLR/Earley
///                   only (no deterministic table exists)
///   non-lrk         palindrome — unambiguous but LR(k) for no k
///   ll1             lr0_specimen — in LL(1); the predictive driver
///
/// Inputs are seeded random sentences of each grammar's own language
/// (SentenceGen), so every run parses the same corpus and the structural
/// counters (tokens, forest nodes) are exact across machines. Each
/// sentence is parsed several times through one ParseService per row:
/// the first request builds the serving snapshot, the rest hit it.
///
/// Emits the standard pipeline-stats JSON (one entry per row via
/// ParseStats::toPipelineStats) for compare_stats.py / record_bench.py.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "grammar/SentenceGen.h"
#include "parse/ParseService.h"
#include "support/Rng.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace lalr;
using namespace lalrbench;

namespace {

struct RowSpec {
  const char *Class;   ///< ambiguity class label
  const char *Grammar; ///< corpus grammar name
  ParserKind Driver;
  bool Dense = false;    ///< LR only: dense vs compressed table
  size_t MaxLen = 128;   ///< sentence length budget
  size_t Sentences = 8;  ///< distinct seeded inputs
  size_t Repeats = 8;    ///< parses per input (amortization)
};

std::string rowLabel(const RowSpec &Spec) {
  std::string L = std::string(Spec.Class) + "/" + Spec.Grammar + "/" +
                  parserKindName(Spec.Driver);
  if (Spec.Driver == ParserKind::Lr)
    L += Spec.Dense ? "-dense" : "-compressed";
  return L;
}

} // namespace

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);

  // The sweep: driver x ambiguity class x (compressed | dense) where the
  // combination is meaningful. GLR/Earley inputs stay short — their work
  // grows superlinearly on ambiguous inputs, and the bench measures
  // steady-state serving, not worst-case blowup (the governance tests
  // cover that).
  const RowSpec Rows[] = {
      {"deterministic", "json", ParserKind::Lr, false, 128, 8, 8},
      {"deterministic", "json", ParserKind::Lr, true, 128, 8, 8},
      {"deterministic", "expr", ParserKind::Lr, false, 128, 8, 8},
      {"deterministic", "expr", ParserKind::Lr, true, 128, 8, 8},
      {"deterministic", "expr", ParserKind::Glr, false, 64, 8, 4},
      {"deterministic", "expr", ParserKind::Earley, false, 32, 4, 2},
      {"prec-ambiguous", "expr_prec", ParserKind::Lr, false, 128, 8, 8},
      {"prec-ambiguous", "expr_prec", ParserKind::Lr, true, 128, 8, 8},
      {"prec-ambiguous", "expr_prec", ParserKind::Glr, false, 32, 8, 4},
      {"prec-ambiguous", "expr_prec", ParserKind::Earley, false, 24, 4, 2},
      {"ambiguous", "not_lr1_ambiguous", ParserKind::Glr, false, 32, 8, 4},
      {"ambiguous", "not_lr1_ambiguous", ParserKind::Earley, false, 24, 4, 2},
      {"non-lrk", "palindrome", ParserKind::Glr, false, 32, 8, 4},
      {"non-lrk", "palindrome", ParserKind::Earley, false, 24, 4, 2},
      {"ll1", "lr0_specimen", ParserKind::Ll1, false, 64, 8, 8},
      {"ll1", "lr0_specimen", ParserKind::Lr, false, 64, 8, 8},
  };

  std::printf("ParseService throughput (reproduction extension; see "
              "docs/SERVICE.md and EXPERIMENTS.md)\n\n");
  TablePrinter P({34, 9, 8, 11, 10, 7, 13});
  P.header({"class/grammar/driver", "requests", "tokens", "tok/s",
            "mean req", "thits", "forest nodes"});

  int Failures = 0;
  for (const RowSpec &Spec : Rows) {
    const CorpusEntry *Entry = corpusGrammarByName(Spec.Grammar);
    if (!Entry || !corpusGrammarSupportsSentenceGen(*Entry)) {
      std::fprintf(stderr, "skipping %s: no sentence generation\n",
                   Spec.Grammar);
      continue;
    }
    Grammar G = loadCorpusGrammar(*Entry);

    // Seeded per row (class+driver vary the stream only through MaxLen),
    // so the workload is bit-identical across runs and machines.
    Rng R(0x5eedull ^ (static_cast<uint64_t>(Spec.MaxLen) << 32) ^
          std::hash<std::string_view>{}(Spec.Grammar));
    std::vector<std::string> Inputs;
    for (size_t I = 0; I < Spec.Sentences; ++I)
      Inputs.push_back(renderSentence(G, randomSentence(G, R, Spec.MaxLen)));

    BuildService::Options BuildOpts;
    BuildService Build(BuildOpts);
    ParseService Parser(Build);
    std::vector<ParseRequest> Requests;
    for (size_t Rep = 0; Rep < Spec.Repeats; ++Rep)
      for (const std::string &In : Inputs) {
        ParseRequest Q;
        Q.GrammarName = Spec.Grammar;
        Q.Input = In;
        Q.Driver = Spec.Driver;
        Q.Dense = Spec.Dense;
        Requests.push_back(std::move(Q));
      }

    Timer T;
    std::vector<ParseResponse> Responses = Parser.runBatch(Requests);
    double BatchUs = T.elapsedUs();

    for (const ParseResponse &Resp : Responses)
      if (!Resp.Ok) {
        std::fprintf(stderr, "%s: request failed: %s\n",
                     rowLabel(Spec).c_str(), Resp.Error.c_str());
        ++Failures;
      } else if (!Resp.Accepted) {
        // Seeded sentences are in L(G) by construction; a rejection is a
        // driver bug, exactly what this bench must not paper over.
        std::fprintf(stderr, "%s: sentence rejected\n", rowLabel(Spec).c_str());
        ++Failures;
      }

    ParseStats S = Parser.stats();
    char Rate[24];
    std::snprintf(Rate, sizeof(Rate), "%.0f", S.tokensPerSecond());
    P.row({rowLabel(Spec), fmt(S.Requests), fmt(S.TokensParsed), Rate,
           fmtUs(S.Requests ? BatchUs / static_cast<double>(S.Requests) : 0),
           fmt(S.TableHits), fmt(S.ForestNodes)});

    PipelineStats Stats = S.toPipelineStats("parse-throughput/" +
                                            rowLabel(Spec));
    Sink.add(Stats);
  }

  if (Failures)
    std::fprintf(stderr, "%d request(s) failed\n", Failures);
  int SinkRc = Sink.flush();
  return Failures ? 1 : SinkRc;
}
