//===- bench/bench_table5_pipeline.cpp - Table 5 -----------------------------===//
///
/// \file
/// Table 5 (reconstructed): end-to-end generator time — grammar text to
/// finished parse table — for the practical methods a generator could
/// ship: SLR(1), LALR(1) via DP (this paper), LALR(1) via YACC's method,
/// and canonical LR(1). This is the whole-pipeline view of Table 3: it
/// shows DP's look-ahead phase is cheap enough that LALR costs barely
/// more than SLR, which is the practical argument of the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/Clr1Builder.h"
#include "baselines/SlrBuilder.h"
#include "baselines/YaccLalrBuilder.h"
#include "corpus/CorpusGrammars.h"
#include "grammar/Analysis.h"
#include "grammar/GrammarParser.h"
#include "lalr/LalrTableBuilder.h"
#include "lr/Lr0Automaton.h"

using namespace lalr;
using namespace lalrbench;

int main() {
  const int Reps = 9;
  std::printf("Table 5: full pipeline time, grammar text -> parse table "
              "(median of %d runs)\n\n",
              Reps);
  TablePrinter T({12, 10, 12, 12, 12});
  T.header({"grammar", "SLR", "LALR (DP)", "LALR (YACC)", "CLR(1)"});
  for (const CorpusEntry &E : realisticCorpusEntries()) {
    auto parseG = [&] {
      DiagnosticEngine Diags;
      return *parseGrammar(E.Source, Diags, E.Name);
    };
    double SlrUs = medianTimeUs(Reps, [&] {
      Grammar G = parseG();
      GrammarAnalysis An(G);
      Lr0Automaton A = Lr0Automaton::build(G);
      buildSlrTable(A, An);
    });
    double DpUs = medianTimeUs(Reps, [&] {
      Grammar G = parseG();
      GrammarAnalysis An(G);
      Lr0Automaton A = Lr0Automaton::build(G);
      buildLalrTable(A, An);
    });
    double YaccUs = medianTimeUs(Reps, [&] {
      Grammar G = parseG();
      GrammarAnalysis An(G);
      Lr0Automaton A = Lr0Automaton::build(G);
      buildYaccLalrTable(A, An);
    });
    double ClrUs = medianTimeUs(Reps, [&] {
      Grammar G = parseG();
      GrammarAnalysis An(G);
      Lr1Automaton L1 = Lr1Automaton::build(G, An);
      buildClr1Table(L1);
    });
    T.row({E.Name, fmtUs(SlrUs), fmtUs(DpUs), fmtUs(YaccUs),
           fmtUs(ClrUs)});
  }
  std::printf("\nAll columns include grammar parsing and automaton "
              "construction; CLR builds the\n(larger) canonical LR(1) "
              "automaton instead of the LR(0) one.\n");
  return 0;
}
