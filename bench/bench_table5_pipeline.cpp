//===- bench/bench_table5_pipeline.cpp - Table 5 -----------------------------===//
///
/// \file
/// Table 5 (reconstructed): end-to-end generator time — grammar text to
/// finished parse table — for the practical methods a generator could
/// ship: SLR(1), LALR(1) via DP (this paper), LALR(1) via YACC's method,
/// and canonical LR(1). This is the whole-pipeline view of Table 3: it
/// shows DP's look-ahead phase is cheap enough that LALR costs barely
/// more than SLR, which is the practical argument of the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "grammar/GrammarParser.h"
#include "pipeline/BuildPipeline.h"

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  const int Reps = 9;
  std::printf("Table 5: full pipeline time, grammar text -> parse table "
              "(median of %d runs)\n\n",
              Reps);
  TablePrinter T({12, 10, 12, 12, 12});
  T.header({"grammar", "SLR", "LALR (DP)", "LALR (YACC)", "CLR(1)"});
  for (const CorpusEntry &E : realisticCorpusEntries()) {
    auto parseG = [&] {
      DiagnosticEngine Diags;
      return *parseGrammar(E.Source, Diags, E.Name);
    };
    // Each timed run owns a fresh context: Table 5 measures the whole
    // pipeline including grammar parsing and automaton construction, so
    // nothing may be memoized across runs.
    auto endToEndUs = [&](TableKind K) {
      return medianTimeUs(Reps, [&] {
        BuildContext C(parseG());
        BuildPipeline(C, {.Kind = K}).run();
      });
    };
    double SlrUs = endToEndUs(TableKind::Slr1);
    double DpUs = endToEndUs(TableKind::Lalr1);
    double YaccUs = endToEndUs(TableKind::YaccLalr);
    double ClrUs = endToEndUs(TableKind::Clr1);
    T.row({E.Name, fmtUs(SlrUs), fmtUs(DpUs), fmtUs(YaccUs),
           fmtUs(ClrUs)});
    // One instrumented pass over a shared context for the JSON record:
    // the four kinds reuse one LR(0) automaton there, so the per-stage
    // numbers isolate each method's own work.
    BuildContext Ctx(parseG());
    for (TableKind K : {TableKind::Slr1, TableKind::Lalr1,
                        TableKind::YaccLalr, TableKind::Clr1})
      BuildPipeline(Ctx, {.Kind = K}).run();
    PipelineStats S = Ctx.stats();
    S.Label = E.Name;
    Sink.add(S);
  }
  std::printf("\nAll columns include grammar parsing and automaton "
              "construction; CLR builds the\n(larger) canonical LR(1) "
              "automaton instead of the LR(0) one.\n");
  return Sink.flush();
}
