//===- bench/bench_table8_state_counts.cpp - Table 8 --------------------------===//
///
/// \file
/// Table 8 (extension study): automaton sizes across the construction
/// spectrum — LR(0) (shared by SLR/NQLALR/LALR), Pager's minimal LR(1),
/// and canonical LR(1) — with each method's adequacy. This is the
/// size-vs-power trade-off the DeRemer-Pennello algorithm resolves in
/// LALR's favour: the DP method keeps the LR(0) state count, canonical
/// LR(1) pays the blow-up shown here, and Pager's method (a later
/// development) splits only where LR(1) power truly requires it.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/Clr1Builder.h"
#include "baselines/PagerLr1.h"
#include "corpus/CorpusGrammars.h"
#include "grammar/Analysis.h"
#include "lalr/LalrTableBuilder.h"
#include "lr/Lr0Automaton.h"

using namespace lalr;
using namespace lalrbench;

int main() {
  std::printf("Table 8: automaton sizes and adequacy across "
              "constructions\n\n");
  TablePrinter T({14, 7, 7, 7, 8, 7, 7, 7});
  T.header({"grammar", "LR(0)", "Pager", "LR(1)", "blowup", "LALR?",
            "Pager?", "LR(1)?"});
  for (const CorpusEntry &E : corpusEntries()) {
    if (!E.Realistic && std::string(E.Name) != "lr1_not_lalr")
      continue; // realistic set + the motivating specimen
    Grammar G = loadCorpusGrammar(E.Name);
    GrammarAnalysis An(G);
    Lr0Automaton A0 = Lr0Automaton::build(G);
    ParseTable Lalr = buildLalrTable(A0, An);
    PagerLr1Automaton AP = PagerLr1Automaton::build(G, An);
    ParseTable Pager = buildPagerTable(AP);
    Lr1Automaton A1 = Lr1Automaton::build(G, An);
    ParseTable Clr = buildClr1Table(A1);
    char Blowup[16];
    std::snprintf(Blowup, sizeof(Blowup), "%.2f",
                  double(A1.numStates()) / A0.numStates());
    auto Mark = [](const ParseTable &T) {
      return std::string(T.conflicts().empty() ? "yes" : "no");
    };
    T.row({E.Name, fmt(A0.numStates()), fmt(AP.numStates()),
           fmt(A1.numStates()), Blowup, Mark(Lalr), Mark(Pager),
           Mark(Clr)});
  }
  std::printf("\n'yes' = conflict-free before precedence resolution. The "
              "DP algorithm delivers the LALR\ncolumn at the LR(0) state "
              "count; Pager splits only where LR(1) power requires it\n"
              "(see lr1_not_lalr); canonical LR(1) pays the full "
              "blow-up.\n");
  return 0;
}
