//===- bench/bench_table8_state_counts.cpp - Table 8 --------------------------===//
///
/// \file
/// Table 8 (extension study): automaton sizes across the construction
/// spectrum — LR(0) (shared by SLR/NQLALR/LALR), Pager's minimal LR(1),
/// and canonical LR(1) — with each method's adequacy. This is the
/// size-vs-power trade-off the DeRemer-Pennello algorithm resolves in
/// LALR's favour: the DP method keeps the LR(0) state count, canonical
/// LR(1) pays the blow-up shown here, and Pager's method (a later
/// development) splits only where LR(1) power truly requires it.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "pipeline/BuildPipeline.h"

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  std::printf("Table 8: automaton sizes and adequacy across "
              "constructions\n\n");
  TablePrinter T({14, 7, 7, 7, 8, 7, 7, 7});
  T.header({"grammar", "LR(0)", "Pager", "LR(1)", "blowup", "LALR?",
            "Pager?", "LR(1)?"});
  for (const CorpusEntry &E : corpusEntries()) {
    if (!E.Realistic && std::string(E.Name) != "lr1_not_lalr")
      continue; // realistic set + the motivating specimen
    BuildContext Ctx(loadCorpusGrammar(E.Name));
    BuildResult Lalr = BuildPipeline(Ctx).run();
    BuildResult Pager = BuildPipeline(Ctx, {.Kind = TableKind::Pager}).run();
    BuildResult Clr = BuildPipeline(Ctx, {.Kind = TableKind::Clr1}).run();
    size_t Lr0States = Ctx.lr0().numStates();
    size_t PagerStates = Ctx.stats().counter("pager_states");
    size_t Lr1States = Ctx.lr1().numStates();
    char Blowup[16];
    std::snprintf(Blowup, sizeof(Blowup), "%.2f",
                  double(Lr1States) / Lr0States);
    auto Mark = [](const BuildResult &R) {
      return std::string(R.Table.conflicts().empty() ? "yes" : "no");
    };
    T.row({E.Name, fmt(Lr0States), fmt(PagerStates), fmt(Lr1States),
           Blowup, Mark(Lalr), Mark(Pager), Mark(Clr)});
    Sink.add(Ctx.stats());
  }
  std::printf("\n'yes' = conflict-free before precedence resolution. The "
              "DP algorithm delivers the LALR\ncolumn at the LR(0) state "
              "count; Pager splits only where LR(1) power requires it\n"
              "(see lr1_not_lalr); canonical LR(1) pays the full "
              "blow-up.\n");
  return Sink.flush();
}
