//===- bench/bench_fig5_parallel_scaling.cpp - Figure 5 (extension) ----------===//
///
/// \file
/// Figure 5 (reproduction extension, not in the 1979 evaluation): strong
/// scaling of the parallel DP core. For each corpus grammar and worker
/// count, measures the relations build and the full look-ahead pipeline
/// against the serial path, reporting speedup and parallel efficiency
/// (speedup / workers). The parallel path is bit-identical to serial
/// (tests/parallel_test.cpp), so this bench is purely about wall time.
///
/// Note: speedup depends on the machine's core count; on a single-core
/// host the parallel path only measures sharding overhead. The stats JSON
/// carries the measured ratios either way.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "lalr/LalrLookaheads.h"
#include "pipeline/BuildContext.h"
#include "support/ThreadPool.h"

#include <thread>

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  const int Reps = 7;
  const unsigned HwCores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Figure 5: parallel DP-core scaling (median of %d; %u "
              "hardware thread%s)\n\n",
              Reps, HwCores, HwCores == 1 ? "" : "s");
  TablePrinter T({9, 8, 10, 10, 8, 10, 10, 8, 6});
  T.header({"grammar", "workers", "rel-ser", "rel-par", "rel-spd", "dp-ser",
            "dp-par", "dp-spd", "eff"});
  for (const char *Name : {"ansic", "javasub", "pascal"}) {
    BuildContext Ctx(loadCorpusGrammar(Name));
    const GrammarAnalysis &An = Ctx.analysis();
    const Lr0Automaton &A = Ctx.lr0();
    NtTransitionIndex NtIdx(A);
    ReductionIndex RedIdx(A);

    const double SerRelUs = medianTimeUs(Reps, [&] {
      buildLalrRelations(A, An, NtIdx, RedIdx);
    });
    const double SerDpUs = medianTimeUs(Reps, [&] {
      LalrLookaheads::compute(A, An);
    });

    for (unsigned Workers : {1u, 2u, 4u, 8u}) {
      ThreadPool Pool(Workers);
      const double RelUs = medianTimeUs(Reps, [&] {
        buildLalrRelations(A, An, NtIdx, RedIdx, &Pool);
      });
      const double DpUs = medianTimeUs(Reps, [&] {
        LalrLookaheads::compute(A, An, SolverKind::Digraph, nullptr, &Pool);
      });
      const double RelSpd = SerRelUs / RelUs;
      const double DpSpd = SerDpUs / DpUs;
      const double Eff = DpSpd / Workers;
      T.row({Name, fmt(Workers), fmtUs(SerRelUs), fmtUs(RelUs), fmtX(RelSpd),
             fmtUs(SerDpUs), fmtUs(DpUs), fmtX(DpSpd), fmtX(Eff)});

      // One instrumented run per point: per-stage wall times and thread
      // counts from the pipeline itself, the measured ratios as counters
      // (x1000 / percent — counters are integral).
      PipelineStats S;
      S.Label = std::string(Name) + "/workers-" + std::to_string(Workers);
      LalrLookaheads::compute(A, An, SolverKind::Digraph, &S, &Pool);
      S.setCounter("hardware_threads", HwCores);
      S.setCounter("relations_speedup_x1000",
                   static_cast<uint64_t>(RelSpd * 1000.0));
      S.setCounter("dp_speedup_x1000", static_cast<uint64_t>(DpSpd * 1000.0));
      S.setCounter("parallel_efficiency",
                   static_cast<uint64_t>(Eff * 100.0));
      Sink.add(S);
    }
  }
  std::printf("\nrel = relations build, dp = full look-ahead pipeline; spd "
              "is serial/parallel,\neff is dp speedup per worker. Expect "
              "spd to track min(workers, cores): the\nrelations build and "
              "la-union shard with no shared writes, the digraph solves\n"
              "parallelize per SCC-condensation wavefront.\n");
  return Sink.flush();
}
