//===- bench/bench_table2_relations.cpp - Table 2 ----------------------------===//
///
/// \file
/// Table 2 (reconstructed): sizes of the DeRemer-Pennello relations per
/// grammar — the quantities that bound the algorithm's running time
/// (the paper's efficiency claim is O(|reads| + |includes|) set
/// operations) — plus the SCC structure the solver encountered.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "pipeline/BuildContext.h"

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  std::printf("Table 2: DeRemer-Pennello relation sizes\n\n");
  TablePrinter T({12, 8, 8, 9, 9, 9, 9, 10, 10});
  T.header({"grammar", "nt-trans", "DR-bits", "reads", "includes",
            "lookback", "unions", "reads-SCC", "incl-SCC"});
  for (const CorpusEntry &E : realisticCorpusEntries()) {
    BuildContext Ctx(loadCorpusGrammar(E.Name));
    const LalrLookaheads &LA = Ctx.lookaheads();
    const LalrRelations &R = LA.relations();
    size_t DrBits = 0;
    for (size_t X = 0; X < R.DirectRead.size(); ++X)
      DrBits += R.DirectRead.count(X);
    size_t Unions = LA.readsSolverStats().UnionOps +
                    LA.includesSolverStats().UnionOps;
    T.row({E.Name, fmt(LA.ntTransitions().size()), fmt(DrBits),
           fmt(R.readsEdgeCount()), fmt(R.includesEdgeCount()),
           fmt(R.lookbackEdgeCount()), fmt(Unions),
           fmt(LA.readsSolverStats().NontrivialSccs),
           fmt(LA.includesSolverStats().NontrivialSccs)});
    Sink.add(Ctx.stats());
  }
  std::printf("\n'unions' counts BitSet unionWith calls across both "
              "digraph passes; a nonzero reads-SCC\nwould certify the "
              "grammar not LR(k) (none of the realistic grammars has "
              "one).\n");
  return Sink.flush();
}
