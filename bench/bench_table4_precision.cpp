//===- bench/bench_table4_precision.cpp - Table 4 ----------------------------===//
///
/// \file
/// Table 4 (reconstructed): precision of the look-ahead methods — parse
/// table conflicts per grammar under LR(0), SLR(1), NQLALR, LALR(1) and
/// canonical LR(1), over the whole corpus (realistic grammars and the
/// class-separating specimens). This reproduces the paper's comparison of
/// LALR(1) against SLR(1) and the "not-quite LALR" shortcut: the LALR
/// column must never exceed the SLR/NQLALR columns, and the specimen rows
/// pin each inclusion in the hierarchy as strict.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/CorpusGrammars.h"
#include "lalr/Classify.h"

using namespace lalr;
using namespace lalrbench;

int main(int Argc, char **Argv) {
  StatsSink Sink(Argc, Argv);
  std::printf("Table 4: parse-table conflicts by look-ahead method\n\n");
  TablePrinter T({20, 6, 6, 8, 6, 6, 11});
  T.header(
      {"grammar", "LR0", "SLR", "NQLALR", "LALR", "LR1", "class"});
  for (const CorpusEntry &E : corpusEntries()) {
    Grammar G = loadCorpusGrammar(E.Name);
    PipelineStats Stats;
    Stats.Label = E.Name;
    Classification C = classifyGrammar(G, &Stats);
    T.row({E.Name, fmt(C.Lr0Conflicts), fmt(C.SlrConflicts),
           fmt(C.NqlalrConflicts), fmt(C.LalrConflicts),
           fmt(C.Lr1Conflicts),
           std::string(lrClassName(C.strongestClass())) +
               (C.NotLrK ? "*" : "")});
    Sink.add(Stats);
  }
  std::printf("\n* = reads-relation cycle: the DP certificate that the "
              "grammar is LR(k) for no k.\nColumns count all conflicts "
              "before precedence resolution; 0 in a column places the\n"
              "grammar in that class. Strict separations: slr_not_lr0, "
              "lalr_not_slr, lalr_not_nqlalr,\nlr1_not_lalr.\n");
  return Sink.flush();
}
